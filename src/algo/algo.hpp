// STL-like parallel algorithms on top of the adaptive task model — the
// paper layers "a set of higher parallel algorithms, like those of the STL"
// over adaptive tasks (§II-D, Traoré et al. [27]). Everything here builds on
// xk::parallel_for / xk::parallel_reduce / xk::spawn and therefore inherits
// the on-demand splitting behaviour: no tasks are created until a core goes
// idle.
//
// prefix_sum is the poster child of the paper's §II-D argument: Fich's bound
// says a log-depth parallel prefix needs >= 4n operations vs n-1 sequential,
// so creating fine-grain tasks eagerly cannot be work-optimal; the blocked
// two-pass scheme below does 2n + P·block work and only parallelizes when
// workers actually show up.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <vector>

#include "core/xkaapi.hpp"

namespace xk::algo {

/// Applies `fn(in[i])` into out[i] over [0, n).
template <typename In, typename Out, typename Fn>
void transform(const In* in, Out* out, std::int64_t n, Fn fn,
               ForeachOptions opt = {}) {
  parallel_for(
      0, n,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          out[i] = fn(in[i]);
        }
      },
      opt);
}

/// Calls `fn(v[i])` for each element (order unspecified across chunks).
template <typename T, typename Fn>
void for_each(T* data, std::int64_t n, Fn fn, ForeachOptions opt = {}) {
  parallel_for(
      0, n,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) fn(data[i]);
      },
      opt);
}

/// Sum-reduction of fn(i) over [0, n) — see also xk::parallel_sum.
template <typename T, typename In>
T accumulate(const In* in, std::int64_t n, T init) {
  return init + parallel_reduce(
                    0, n, T{},
                    [&](std::int64_t lo, std::int64_t hi, T& acc) {
                      for (std::int64_t i = lo; i < hi; ++i) acc += in[i];
                    },
                    [](T a, T b) { return a + b; });
}

/// Number of elements satisfying `pred`.
template <typename T, typename Pred>
std::int64_t count_if(const T* in, std::int64_t n, Pred pred) {
  return parallel_reduce(
      0, n, std::int64_t{0},
      [&](std::int64_t lo, std::int64_t hi, std::int64_t& acc) {
        for (std::int64_t i = lo; i < hi; ++i) {
          if (pred(in[i])) ++acc;
        }
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
}

/// Index of the first element satisfying `pred`, or n when none does.
/// Chunks past an already-found index are skipped (cooperative early exit),
/// so the scan stays work-efficient even on adversarial inputs.
template <typename T, typename Pred>
std::int64_t find_first(const T* in, std::int64_t n, Pred pred) {
  std::atomic<std::int64_t> best{n};
  parallel_for(0, n, [&](std::int64_t lo, std::int64_t hi) {
    if (lo >= best.load(std::memory_order_relaxed)) return;
    for (std::int64_t i = lo; i < hi; ++i) {
      if (pred(in[i])) {
        std::int64_t cur = best.load(std::memory_order_relaxed);
        while (i < cur &&
               !best.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
        }
        return;
      }
    }
  });
  // Relaxed: parallel_for's join already ordered every worker's CAS.
  return best.load(std::memory_order_relaxed);
}

/// Exclusive prefix sum: out[i] = sum of in[0..i). Two-pass blocked scan —
/// parallel block sums, sequential scan of the (few) block totals, parallel
/// offset add. ~2n operations versus Fich's 4n lower bound for log-depth
/// circuits; depth is O(n/P + P).
template <typename T>
void prefix_sum_exclusive(const T* in, T* out, std::int64_t n) {
  if (n <= 0) return;
  Worker* w = this_worker();
  const std::int64_t nblocks =
      w != nullptr ? std::max<std::int64_t>(1, 4 * w->runtime().nworkers())
                   : 1;
  const std::int64_t block = (n + nblocks - 1) / nblocks;
  std::vector<T> sums(static_cast<std::size_t>(nblocks), T{});

  parallel_for(0, nblocks, [&](std::int64_t blo, std::int64_t bhi) {
    for (std::int64_t b = blo; b < bhi; ++b) {
      const std::int64_t lo = b * block;
      const std::int64_t hi = std::min(n, lo + block);
      T s{};
      for (std::int64_t i = lo; i < hi; ++i) s += in[i];
      sums[static_cast<std::size_t>(b)] = s;
    }
  });
  T running{};
  for (std::int64_t b = 0; b < nblocks; ++b) {
    const T next = running + sums[static_cast<std::size_t>(b)];
    sums[static_cast<std::size_t>(b)] = running;
    running = next;
  }
  parallel_for(0, nblocks, [&](std::int64_t blo, std::int64_t bhi) {
    for (std::int64_t b = blo; b < bhi; ++b) {
      const std::int64_t lo = b * block;
      const std::int64_t hi = std::min(n, lo + block);
      T s = sums[static_cast<std::size_t>(b)];
      for (std::int64_t i = lo; i < hi; ++i) {
        out[i] = s;
        s += in[i];
      }
    }
  });
}

namespace detail {

template <typename T, typename Cmp>
void merge_sort_rec(T* data, T* scratch, std::int64_t lo, std::int64_t hi,
                    Cmp& cmp, int depth) {
  const std::int64_t n = hi - lo;
  if (n <= 1024 || depth <= 0) {
    std::sort(data + lo, data + hi, cmp);
    return;
  }
  const std::int64_t mid = lo + n / 2;
  spawn([data, scratch, lo, mid, &cmp, depth] {
    merge_sort_rec(data, scratch, lo, mid, cmp, depth - 1);
  });
  merge_sort_rec(data, scratch, mid, hi, cmp, depth - 1);
  sync();
  std::merge(data + lo, data + mid, data + mid, data + hi, scratch + lo, cmp);
  std::copy(scratch + lo, scratch + hi, data + lo);
}

}  // namespace detail

/// Fork-join parallel merge sort (recursive tasks — the capability the
/// paper contrasts against flat dataflow runtimes, §V).
template <typename T, typename Cmp = std::less<T>>
void sort(T* data, std::int64_t n, Cmp cmp = Cmp{}) {
  if (n <= 1) return;
  std::vector<T> scratch(static_cast<std::size_t>(n));
  detail::merge_sort_rec(data, scratch.data(), 0, n, cmp, 24);
}

}  // namespace xk::algo
