#include "quark/quark.h"

#include <cassert>
#include <cstdarg>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/central_queue.hpp"
#include "core/xkaapi.hpp"
#include "support/env.hpp"

namespace {

struct QuarkArg {
  std::vector<char> value;  // VALUE: copied bytes; SCRATCH: buffer storage
  void* ptr = nullptr;      // dependency/NODEP flags: the user pointer
  std::size_t size = 0;
  int flags = 0;
};

struct QuarkTaskArgs {
  void (*function)(Quark*) = nullptr;
  Quark* quark = nullptr;
  std::vector<QuarkArg> args;
};

thread_local QuarkTaskArgs* g_running = nullptr;

xk::AccessMode mode_for(int flags) {
  switch (flags) {
    case QUARK_INPUT:
      return xk::AccessMode::kRead;
    case QUARK_OUTPUT:
      return xk::AccessMode::kWrite;
    case QUARK_INOUT:
      return xk::AccessMode::kReadWrite;
    default:
      return xk::AccessMode::kNone;
  }
}

void run_quark_task(QuarkTaskArgs& a) {
  QuarkTaskArgs* saved = g_running;
  g_running = &a;
  a.function(a.quark);
  g_running = saved;
}

/// X-Kaapi backend trampoline: the args block lives in the frame arena and
/// is destroyed after the call (same contract as xk::spawn's SpawnBlock).
void xk_quark_trampoline(void* p, xk::Worker&) {
  auto* blk = static_cast<QuarkTaskArgs*>(p);
  struct Destroy {
    QuarkTaskArgs* b;
    ~Destroy() { b->~QuarkTaskArgs(); }
  } destroy{blk};
  run_quark_task(*blk);
}

}  // namespace

struct quark_s {
  QuarkBackend backend = QUARK_BACKEND_XKAAPI;
  std::unique_ptr<xk::Runtime> rt;
  std::unique_ptr<xk::baseline::CentralQueueRuntime> central;
  unsigned nthreads = 0;
  unsigned long long inserted = 0;
};

Quark* QUARK_New_Backend(int num_threads, QuarkBackend backend) {
  auto* q = new quark_s();
  q->backend = backend;
  const unsigned n = num_threads > 0 ? static_cast<unsigned>(num_threads)
                                     : xk::default_worker_count();
  q->nthreads = n;
  if (backend == QUARK_BACKEND_XKAAPI) {
    xk::Config cfg = xk::Config::from_env();
    cfg.nworkers = n;
    cfg.bind_threads = false;  // the master thread is the caller's
    q->rt = std::make_unique<xk::Runtime>(cfg);
    q->rt->begin();  // persistent section: insert from the master thread
  } else {
    q->central = std::make_unique<xk::baseline::CentralQueueRuntime>(n);
  }
  return q;
}

Quark* QUARK_New(int num_threads) {
  const auto name = xk::env_string("XK_QUARK_BACKEND").value_or("xkaapi");
  return QUARK_New_Backend(
      num_threads,
      name == "central" ? QUARK_BACKEND_CENTRAL : QUARK_BACKEND_XKAAPI);
}

void QUARK_Delete(Quark* quark) {
  if (quark == nullptr) return;
  QUARK_Barrier(quark);
  if (quark->rt) quark->rt->end();
  delete quark;
}

void QUARK_Barrier(Quark* quark) {
  if (quark->backend == QUARK_BACKEND_XKAAPI) {
    xk::sync();
  } else {
    quark->central->barrier();
  }
}

int QUARK_Thread_Count(Quark* quark) {
  return static_cast<int>(quark->nthreads);
}

unsigned long long QUARK_Insert_Task(Quark* quark, void (*function)(Quark*),
                                     const Quark_Task_Flags* flags, ...) {
  (void)flags;
  QuarkTaskArgs packed;
  packed.function = function;
  packed.quark = quark;

  // Varargs: (size_t size, void* ptr, int flags) triplets, 0-terminated.
  va_list ap;
  va_start(ap, flags);
  for (;;) {
    const std::size_t size = va_arg(ap, std::size_t);
    if (size == 0) break;
    void* ptr = va_arg(ap, void*);
    const int aflags = va_arg(ap, int);
    QuarkArg arg;
    arg.size = size;
    arg.flags = aflags;
    if (aflags == QUARK_VALUE) {
      const char* bytes = static_cast<const char*>(ptr);
      arg.value.assign(bytes, bytes + size);
    } else if (aflags == QUARK_SCRATCH) {
      arg.value.resize(size);  // per-execution temporary
    } else {
      arg.ptr = ptr;
    }
    packed.args.push_back(std::move(arg));
  }
  va_end(ap);
  ++quark->inserted;

  if (quark->backend == QUARK_BACKEND_XKAAPI) {
    xk::Worker* w = xk::this_worker();
    assert(w != nullptr && w->depth_relaxed() > 0 &&
           "QUARK_Insert_Task must run on the QUARK_New thread");
    // Count dependency-carrying arguments, then build the descriptor, the
    // argument block and the access array in the frame arena.
    std::uint32_t nacc = 0;
    for (const QuarkArg& a : packed.args) {
      if (mode_for(a.flags) != xk::AccessMode::kNone) ++nacc;
    }
    auto* t = new (w->frame_alloc(sizeof(xk::Task), alignof(xk::Task)))
        xk::Task();
    auto* blk = new (w->frame_alloc(sizeof(QuarkTaskArgs),
                                    alignof(QuarkTaskArgs)))
        QuarkTaskArgs(std::move(packed));
    if (nacc > 0) {
      auto* acc = static_cast<xk::Access*>(
          w->frame_alloc(sizeof(xk::Access) * nacc, alignof(xk::Access)));
      std::uint32_t k = 0;
      for (std::uint32_t i = 0; i < blk->args.size(); ++i) {
        const QuarkArg& a = blk->args[i];
        const xk::AccessMode mode = mode_for(a.flags);
        if (mode == xk::AccessMode::kNone) continue;
        new (acc + k) xk::Access();
        acc[k].region = xk::MemRegion::contiguous(a.ptr, a.size);
        acc[k].mode = mode;
        acc[k].arg_index = i;
        acc[k].arg_offset = xk::kNoArgOffset;  // pointers live in a vector
        ++k;
      }
      t->accesses = acc;
      t->naccesses = nacc;
    }
    t->body = &xk_quark_trampoline;
    t->args = blk;
    w->push_task(t);
  } else {
    // Central backend: QUARK's own model — dependencies resolved at
    // insertion, one global ready list.
    std::vector<xk::baseline::CqAccess> cq;
    for (const QuarkArg& a : packed.args) {
      const xk::AccessMode mode = mode_for(a.flags);
      if (mode == xk::AccessMode::kNone) continue;
      cq.push_back({xk::MemRegion::contiguous(a.ptr, a.size), mode});
    }
    auto shared = std::make_shared<QuarkTaskArgs>(std::move(packed));
    quark->central->insert([shared] { run_quark_task(*shared); },
                           std::move(cq));
  }
  return quark->inserted;
}

void QUARK_Arg_Fetch(Quark* /*quark*/, int index, void* dest,
                     std::size_t bytes) {
  QuarkTaskArgs* a = g_running;
  assert(a != nullptr && "QUARK_Arg_Fetch outside a task");
  assert(index >= 0 && static_cast<std::size_t>(index) < a->args.size());
  QuarkArg& arg = a->args[static_cast<std::size_t>(index)];
  if (arg.flags == QUARK_VALUE) {
    std::memcpy(dest, arg.value.data(), std::min(bytes, arg.size));
  } else if (arg.flags == QUARK_SCRATCH) {
    void* p = arg.value.data();
    std::memcpy(dest, &p, sizeof(void*));
  } else {
    std::memcpy(dest, &arg.ptr, sizeof(void*));
  }
}
