// QUARK-style API (modeled on ICL-UT-11-02, "QUARK Users' Guide") — the
// paper ported QUARK onto X-Kaapi to schedule PLASMA's algorithms (§III-B):
// "we have ported QUARK on top of X-KAAPI to produce a binary compatible
// QUARK library, which is linked with PLASMA algorithms".
//
// This reproduction provides the subset PLASMA-style tiled algorithms use:
//   QUARK_New / QUARK_Delete / QUARK_Barrier / QUARK_Insert_Task
// with VALUE / INPUT / OUTPUT / INOUT / SCRATCH argument flags and the
// quark_unpack_args_N macros.
//
// Two interchangeable backends:
//   QUARK_BACKEND_XKAAPI  — tasks become X-Kaapi dataflow tasks (distributed
//                           work stealing, steal-time readiness, ready-list);
//   QUARK_BACKEND_CENTRAL — the original QUARK scheduling model (centralized
//                           ready list, insertion-time dependencies).
// Fig. 2 is the comparison between the two under identical task streams.
#pragma once

#include <cstddef>

typedef struct quark_s Quark;

enum QuarkArgFlags {
  QUARK_VALUE = 0x01,   // copied by value at insertion
  QUARK_INPUT = 0x02,   // read dependency
  QUARK_OUTPUT = 0x03,  // write dependency
  QUARK_INOUT = 0x04,   // exclusive dependency
  QUARK_SCRATCH = 0x05, // per-execution temporary, no dependency
  QUARK_NODEP = 0x06,   // pointer passed through, no dependency
};

enum QuarkBackend {
  QUARK_BACKEND_XKAAPI = 0,
  QUARK_BACKEND_CENTRAL = 1,
};

struct Quark_Task_Flags {
  int priority = 0;  // accepted, unused (QUARK compat)
};

/// Creates a runtime with `num_threads` workers (0 = one per core) using the
/// backend named by XK_QUARK_BACKEND ("central" or "xkaapi", default xkaapi).
Quark* QUARK_New(int num_threads);

/// Creates a runtime with an explicit backend.
Quark* QUARK_New_Backend(int num_threads, QuarkBackend backend);

/// Waits for all inserted tasks, then tears the runtime down.
void QUARK_Delete(Quark* quark);

/// Waits for every task inserted so far.
void QUARK_Barrier(Quark* quark);

/// Inserts one task. Varargs are (size, pointer, flags) triplets terminated
/// by 0, exactly like QUARK:
///   QUARK_Insert_Task(q, fn, &flags,
///                     sizeof(int), &n, QUARK_VALUE,
///                     nb*nb*sizeof(double), tileA, QUARK_INPUT,
///                     nb*nb*sizeof(double), tileC, QUARK_INOUT,
///                     0);
/// For VALUE the bytes are copied now; for SCRATCH a per-execution buffer of
/// `size` bytes is provided; for the dependency flags the pointer defines a
/// contiguous memory region of `size` bytes.
unsigned long long QUARK_Insert_Task(Quark* quark, void (*function)(Quark*),
                                     const Quark_Task_Flags* flags, ...);

/// Copies the bytes of argument `index` of the currently running task into
/// `dest` (VALUE) or stores the argument pointer (dependency/scratch flags).
/// Used by the quark_unpack_args_N macros.
void QUARK_Arg_Fetch(Quark* quark, int index, void* dest, std::size_t bytes);

/// Worker count of the runtime behind `quark`.
int QUARK_Thread_Count(Quark* quark);

// quark_unpack_args_N: copy the N arguments of the running task into the
// named variables (VALUE args by value; pointer args as pointers).
#define XK_QUARK_FETCH(q, i, var) QUARK_Arg_Fetch((q), (i), &(var), sizeof(var))
#define quark_unpack_args_1(q, a) do { XK_QUARK_FETCH(q, 0, a); } while (0)
#define quark_unpack_args_2(q, a, b) \
  do { XK_QUARK_FETCH(q, 0, a); XK_QUARK_FETCH(q, 1, b); } while (0)
#define quark_unpack_args_3(q, a, b, c) \
  do { quark_unpack_args_2(q, a, b); XK_QUARK_FETCH(q, 2, c); } while (0)
#define quark_unpack_args_4(q, a, b, c, d) \
  do { quark_unpack_args_3(q, a, b, c); XK_QUARK_FETCH(q, 3, d); } while (0)
#define quark_unpack_args_5(q, a, b, c, d, e) \
  do { quark_unpack_args_4(q, a, b, c, d); XK_QUARK_FETCH(q, 4, e); } while (0)
#define quark_unpack_args_6(q, a, b, c, d, e, f) \
  do { quark_unpack_args_5(q, a, b, c, d, e); XK_QUARK_FETCH(q, 5, f); } while (0)
#define quark_unpack_args_7(q, a, b, c, d, e, f, g) \
  do { quark_unpack_args_6(q, a, b, c, d, e, f); XK_QUARK_FETCH(q, 6, g); } while (0)
#define quark_unpack_args_8(q, a, b, c, d, e, f, g, h) \
  do { quark_unpack_args_7(q, a, b, c, d, e, f, g); XK_QUARK_FETCH(q, 7, h); } while (0)
