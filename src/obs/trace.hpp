// Per-worker bounded trace rings — the record side of the xk_obs
// subsystem.
//
// Design constraints (the hot paths these hooks sit on are the paper's
// whole subject):
//
//  * owner-written: each ring belongs to one worker thread; the record
//    path is a plain (non-atomic) head increment and one 64-byte slot
//    store. Draining happens only while the owning worker is provably
//    idle (Runtime::end() waits the pool into its between-sections park,
//    the same mutex edge stats_snapshot uses), so no synchronization is
//    needed anywhere.
//  * zero allocation: slots are preallocated at Runtime construction;
//    wrap-around overwrites the oldest events (the newest window is what
//    a timeline viewer needs; the drop count is reported in the trace).
//  * branch-disabled: tracing costs one thread-local load and a branch
//    per hook when XK_TRACE is unset — the TLS ring pointer stays null
//    and no clock is read. Compiling with -DXK_OBS_OFF (the XK_OBS=OFF
//    CMake option) removes even that: every emit helper becomes an empty
//    inline and the CI overhead gate compares the two builds.
//  * cache-line-padded slots: a slot is exactly one cache line, so a
//    record never straddles lines and the ring's write stream does not
//    false-share with whatever the worker touches next.
//
// Timestamps come from xk::monotonic_ns() (support/timing.hpp): raw
// steady-clock nanoseconds, epoch-shifted only at drain time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/event.hpp"
#include "support/cache.hpp"
#include "support/timing.hpp"

namespace xk::obs {

/// One recorded event: one cache line, owner-written.
struct alignas(kCacheLine) TraceEvent {
  std::uint64_t ts = 0;   ///< start, monotonic ns
  std::uint64_t dur = 0;  ///< span length ns (0 for instants)
  std::uint64_t arg[3] = {0, 0, 0};
  std::uint32_t kind = 0;  ///< Ev
  std::uint32_t seq = 0;   ///< low word of the record serial (wrap tests)
};
static_assert(sizeof(TraceEvent) == kCacheLine);

/// Bounded per-worker event ring. All mutators are owner-thread-only;
/// drain() is called only while the owner is quiesced (see header note).
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<TraceEvent[]>(cap);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Instant event at now().
  void record(Ev k, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
              std::uint64_t a2 = 0) {
    record_span_at(k, monotonic_ns(), 0, a0, a1, a2);
  }

  /// Span event: [t0, now()). `t0` comes from an earlier monotonic_ns()
  /// read at the site (see span_begin below).
  void record_span(Ev k, std::uint64_t t0, std::uint64_t a0 = 0,
                   std::uint64_t a1 = 0, std::uint64_t a2 = 0) {
    const std::uint64_t now = monotonic_ns();
    record_span_at(k, t0, now > t0 ? now - t0 : 0, a0, a1, a2);
  }

  void record_span_at(Ev k, std::uint64_t t0, std::uint64_t dur,
                      std::uint64_t a0, std::uint64_t a1, std::uint64_t a2) {
    TraceEvent& e = slots_[head_ & mask_];
    e.ts = t0;
    e.dur = dur;
    e.arg[0] = a0;
    e.arg[1] = a1;
    e.arg[2] = a2;
    e.kind = static_cast<std::uint32_t>(k);
    e.seq = static_cast<std::uint32_t>(head_);
    ++head_;
  }

  /// Events recorded since construction / the last clear() (monotonically
  /// increasing; the ring retains the last min(recorded, capacity)).
  std::uint64_t recorded() const { return head_; }

  /// Events overwritten by wrap-around.
  std::uint64_t dropped() const {
    return head_ > capacity() ? head_ - capacity() : 0;
  }

  /// Copies the retained events oldest-first into `out` (appending).
  /// Owner quiesced; see class comment.
  void drain(std::vector<TraceEvent>& out) const {
    const std::uint64_t n =
        head_ < capacity() ? head_ : static_cast<std::uint64_t>(capacity());
    for (std::uint64_t i = head_ - n; i < head_; ++i) {
      out.push_back(slots_[i & mask_]);
    }
  }

  /// Forgets everything recorded (between sections; keeps the allocation).
  void clear() { head_ = 0; }

 private:
  std::unique_ptr<TraceEvent[]> slots_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;
};

// ---------------------------------------------------------------------------
// Thread-binding + the hook-site emit API.
//
// The runtime binds each scheduler thread to its worker's ring alongside
// the worker TLS itself (detail::set_this_worker); hook sites anywhere in
// the scheduler (worker.cpp, readylist.cpp, foreach.cpp) then emit
// without needing a Worker in scope. When tracing is off every thread's
// ring pointer stays null and each hook is one TLS load + branch.
// ---------------------------------------------------------------------------

#ifndef XK_OBS_OFF

inline thread_local TraceRing* tls_trace_ring = nullptr;

inline void bind_thread_ring(TraceRing* r) { tls_trace_ring = r; }
inline TraceRing* thread_ring() { return tls_trace_ring; }

/// Instant event on the calling thread's ring (no-op untraced).
inline void emit(Ev k, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                 std::uint64_t a2 = 0) {
  if (TraceRing* r = tls_trace_ring) r->record(k, a0, a1, a2);
}

/// Span-start timestamp: 0 (and no clock read) when untraced. Pair with
/// emit_span, which treats t0 == 0 as "span never started".
inline std::uint64_t span_begin() {
  return tls_trace_ring != nullptr ? monotonic_ns() : 0;
}

/// Span end: records [t0, now()) when tracing was on at span_begin.
inline void emit_span(Ev k, std::uint64_t t0, std::uint64_t a0 = 0,
                      std::uint64_t a1 = 0, std::uint64_t a2 = 0) {
  if (t0 == 0) return;
  if (TraceRing* r = tls_trace_ring) r->record_span(k, t0, a0, a1, a2);
}

#else  // XK_OBS_OFF: compiled-out instrumentation (the overhead baseline)

inline void bind_thread_ring(TraceRing*) {}
inline TraceRing* thread_ring() { return nullptr; }
inline void emit(Ev, std::uint64_t = 0, std::uint64_t = 0,
                 std::uint64_t = 0) {}
inline std::uint64_t span_begin() { return 0; }
inline void emit_span(Ev, std::uint64_t, std::uint64_t = 0,
                      std::uint64_t = 0, std::uint64_t = 0) {}

#endif  // XK_OBS_OFF

}  // namespace xk::obs
