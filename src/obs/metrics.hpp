// Machine-readable metrics snapshot — the counter side of the xk_obs
// subsystem.
//
// A MetricsSnapshot is a generic bag of named counters plus the
// per-domain gauge rows of the starvation/occupancy board, filled by
// Runtime::metrics_snapshot() (core depends on obs, not the other way
// round — this type deliberately knows nothing about WorkerStats or
// StarvationBoard). Three consumers share it:
//  * bench/common.hpp embeds to_json() output as the `counters` /
//    `domains` objects of a schema-v1 BENCH_*.json record;
//  * the Chrome trace writer appends one snapshot per traced runtime
//    under the file's top-level "metrics" key;
//  * XK_STATS=1 dumps it human-readably to stderr at section end.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace xk::obs {

struct MetricsSnapshot {
  /// Aggregated scheduler counters, in WorkerStats declaration order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  /// One row per dense locality-domain rank of the StarvationBoard.
  struct DomainGauge {
    unsigned rank = 0;
    std::int64_t ready = 0;       ///< queued ready-shard depth
    std::uint64_t failed = 0;     ///< failed local rounds since last progress
    std::int64_t occupied = 0;    ///< workers with a non-empty frame stack
  };
  std::vector<DomainGauge> domains;

  std::int64_t root_occupied = 0;  ///< machine-wide occupied-domain count
  unsigned nworkers = 0;

  /// JSON object:
  ///   {"nworkers":N,"root_occupied":R,
  ///    "counters":{"tasks_spawned":...,...},
  ///    "domains":[{"rank":0,"ready":...,"failed":...,"occupied":...},...]}
  /// `indent` spaces prefix every line after the first (for embedding in
  /// an already-indented report); 0 keeps it multi-line but flush-left.
  std::string to_json(int indent = 0) const;

  /// Human-readable dump (the XK_STATS=1 stderr format): one counters
  /// line in declaration order, then one gauge line per domain.
  void dump(std::ostream& os) const;
};

}  // namespace xk::obs
