#include "obs/chrome_writer.hpp"

#include <cstdio>
#include <fstream>
#include <limits>

#include "obs/event.hpp"

namespace xk::obs {

namespace {

/// ts/dur in Chrome traces are microseconds; emit the nanosecond
/// remainder as three decimals so no precision is lost.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000;
  const auto frac = static_cast<unsigned>(ns % 1000);
  char buf[8];
  std::snprintf(buf, sizeof(buf), ".%03u", frac);
  os << buf;
}

void write_args(std::ostream& os, const EventInfo& info, const TraceEvent& e) {
  os << "\"args\":{";
  bool first = true;
  for (int i = 0; i < 3; ++i) {
    if (info.arg[i] == nullptr) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << info.arg[i] << "\":" << e.arg[i];
  }
  os << "}";
}

}  // namespace

ChromeTraceWriter& ChromeTraceWriter::instance() {
  static ChromeTraceWriter w;
  return w;
}

void ChromeTraceWriter::set_path(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (path_.empty()) path_ = path;
}

bool ChromeTraceWriter::enabled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !path_.empty();
}

int ChromeTraceWriter::add_process(const std::string& name,
                                   unsigned nworkers) {
  std::lock_guard<std::mutex> lk(mu_);
  const int pid = static_cast<int>(procs_.size()) + 1;
  Process p;
  p.pid = pid;
  p.name = name;
  p.nworkers = nworkers;
  procs_.push_back(std::move(p));
  return pid;
}

void ChromeTraceWriter::add_events(int pid, unsigned tid,
                                   const std::vector<TraceEvent>& events,
                                   std::uint64_t dropped) {
  std::lock_guard<std::mutex> lk(mu_);
  rows_.reserve(rows_.size() + events.size());
  for (const TraceEvent& e : events) rows_.push_back(Row{pid, tid, e});
  for (Process& p : procs_) {
    if (p.pid == pid) {
      p.dropped += dropped;
      break;
    }
  }
}

void ChromeTraceWriter::add_metrics(int pid, const MetricsSnapshot& m) {
  std::lock_guard<std::mutex> lk(mu_);
  for (Process& p : procs_) {
    if (p.pid == pid) {
      p.metrics_json = m.to_json(4);
      break;
    }
  }
}

void ChromeTraceWriter::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (path_.empty()) return;
  std::ofstream os(path_);
  if (!os) {
    std::fprintf(stderr, "[xk] XK_TRACE: cannot open '%s' for writing\n",
                 path_.c_str());
    return;
  }

  // Re-base to the earliest drained timestamp so the viewer's time axis
  // starts near zero instead of at steady-clock boot offset.
  std::uint64_t epoch = std::numeric_limits<std::uint64_t>::max();
  for (const Row& r : rows_) {
    if (r.ev.ts < epoch) epoch = r.ev.ts;
  }
  if (rows_.empty()) epoch = 0;

  os << "{\n\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    os << (first ? "\n" : ",\n");
    first = false;
    return os;
  };

  for (const Process& p : procs_) {
    sep() << "{\"ph\":\"M\",\"pid\":" << p.pid
          << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
          << p.name << "\"}}";
    for (unsigned t = 0; t < p.nworkers; ++t) {
      sep() << "{\"ph\":\"M\",\"pid\":" << p.pid << ",\"tid\":" << t
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << t
            << "\"}}";
    }
  }

  for (const Row& r : rows_) {
    const auto kind = static_cast<std::size_t>(r.ev.kind);
    if (kind >= kEventKinds) continue;  // corrupt slot: skip, don't crash
    const EventInfo& info = kEventInfo[kind];
    sep() << "{\"name\":\"" << info.name << "\",\"cat\":\"" << info.cat
          << "\",\"ph\":\"" << (info.span ? "X" : "i") << "\",\"pid\":" << r.pid
          << ",\"tid\":" << r.tid << ",\"ts\":";
    write_us(os, r.ev.ts - epoch);
    if (info.span) {
      os << ",\"dur\":";
      write_us(os, r.ev.dur);
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",";
    write_args(os, info, r.ev);
    os << "}";
  }

  os << "\n],\n\"displayTimeUnit\":\"ns\",\n\"metrics\":[";
  first = true;
  for (const Process& p : procs_) {
    sep() << "  {\"pid\":" << p.pid << ",\"name\":\"" << p.name
          << "\",\"dropped\":" << p.dropped << ",\"snapshot\":"
          << (p.metrics_json.empty() ? "null" : p.metrics_json) << "}";
  }
  os << "\n]\n}\n";
}

ChromeTraceWriter::~ChromeTraceWriter() { flush(); }

}  // namespace xk::obs
