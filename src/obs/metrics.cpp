#include "obs/metrics.hpp"

#include <ostream>
#include <sstream>

namespace xk::obs {

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
  std::ostringstream os;
  os << "{\n";
  os << pad << "  \"nworkers\": " << nworkers << ",\n";
  os << pad << "  \"root_occupied\": " << root_occupied << ",\n";
  os << pad << "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << pad << "    \"" << counters[i].first
       << "\": " << counters[i].second;
  }
  os << "\n" << pad << "  },\n";
  os << pad << "  \"domains\": [";
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const DomainGauge& d = domains[i];
    os << (i == 0 ? "\n" : ",\n") << pad << "    {\"rank\": " << d.rank
       << ", \"ready\": " << d.ready << ", \"failed\": " << d.failed
       << ", \"occupied\": " << d.occupied << "}";
  }
  os << "\n" << pad << "  ]\n";
  os << pad << "}";
  return os.str();
}

void MetricsSnapshot::dump(std::ostream& os) const {
  os << "[xk] stats nworkers=" << nworkers
     << " root_occupied=" << root_occupied << "\n[xk] counters";
  for (const auto& [name, value] : counters) {
    os << " " << name << "=" << value;
  }
  os << "\n";
  for (const DomainGauge& d : domains) {
    os << "[xk] domain rank=" << d.rank << " ready=" << d.ready
       << " failed=" << d.failed << " occupied=" << d.occupied << "\n";
  }
}

}  // namespace xk::obs
