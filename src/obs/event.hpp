// Scheduler trace-event taxonomy (the xk_obs subsystem).
//
// Every event the per-worker trace rings can record is declared here, with
// the static metadata the Chrome writer needs to serialize it: display
// name, category (the Perfetto "cat" field — also what check_trace.py's
// category coverage check keys on), span-vs-instant phase, and the names
// of up to three integer arguments. Keeping the metadata in one table
// means adding an event is one line here plus the hook at the record
// site; the writer, the validator docs (docs/OBSERVABILITY.md) and the
// tests all read the same table.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xk::obs {

/// Event kinds. Values are stable within a build only (the trace file
/// carries names, not kind numbers), so reordering is safe.
enum class Ev : std::uint32_t {
  // -- cat "task": task body execution spans ------------------------------
  kTaskOwner,     ///< span: run_task via the owner FIFO fast path
  kTaskThief,     ///< span: run_task after a successful steal claim
  // -- cat "steal": the request/reply/aggregation protocol ----------------
  kStealServed,   ///< span: request post -> served reply consumed
                  ///  (args: victim id, tasks won, remote?)
  kStealFailed,   ///< span: request post -> kFailed observed (args: victim)
  kCombine,       ///< span: one combiner round on a victim
                  ///  (args: victim id, pending requests, served)
  // -- cat "ready": the ready-list accelerating structure -----------------
  kRlAttach,      ///< instant: a frame crossed the threshold and got a list
  kRlPush,        ///< instant: a released/ready task entered a shard
                  ///  (args: shard, provenance, live depth after)
  kRlPop,         ///< instant: a pop left a shard (args: home shard,
                  ///  serving shard, provenance)
  // -- cat "idle": park/unpark and quiescence -----------------------------
  kPark,          ///< span: one Parker::park sleep (args: woken by notify?)
  kQuiesceFold,   ///< instant: a 0<->1 occupancy transition climbed the
                  ///  board fold (args: levels climbed, now occupied?)
  // -- cat "foreach": adaptive-loop chunk execution -----------------------
  kForeachChunk,  ///< span: one grain invocation (args: lo, n)
  // -- cat "section": parallel-section lifetime (master slots) ------------
  kSection,       ///< span: Runtime::begin() -> Runtime::end() drain
  // -- cat "job": service-mode job execution (Runtime::submit) ------------
  kJob,           ///< span: one submitted job's body (args: tenant)
  // -- cat "check": invariant-checker reports (XK_CHECK=ON builds) --------
  kCheckViolation,  ///< instant: an XK_EXPECT seam assertion failed
                    ///  (args: invariant id, a0, a1 — see check/check.hpp)

  kCount_  // sentinel
};

inline constexpr std::size_t kEventKinds = static_cast<std::size_t>(Ev::kCount_);

/// Provenance values for kRlPush/kRlPop's `prov` argument: which physical
/// queue inside the shard the entry moved through.
enum RlProv : std::uint64_t {
  kProvDeque = 0,  ///< split/global: the shard's mutex-guarded deque
  kProvRing = 1,   ///< lockfree: the bounded MPMC ring
  kProvSide = 2,   ///< lockfree: the overflow side deque (a spill)
};

struct EventInfo {
  const char* name;  ///< Chrome "name"
  const char* cat;   ///< Chrome "cat" (the category coverage unit)
  bool span;         ///< true: complete event ("X"); false: instant ("i")
  const char* arg[3];  ///< arg names; nullptr = unused slot
};

/// Static metadata, indexed by Ev. Order must match the enum.
inline constexpr EventInfo kEventInfo[kEventKinds] = {
    {"task.owner", "task", true, {"depth", nullptr, nullptr}},
    {"task.thief", "task", true, {"depth", nullptr, nullptr}},
    {"steal.served", "steal", true, {"victim", "tasks", "remote"}},
    {"steal.failed", "steal", true, {"victim", nullptr, nullptr}},
    {"steal.combine", "steal", true, {"victim", "pending", "served"}},
    {"ready.attach", "ready", false, {"covered", nullptr, nullptr}},
    {"ready.push", "ready", false, {"shard", "prov", "depth"}},
    {"ready.pop", "ready", false, {"home", "from", "prov"}},
    {"idle.park", "idle", true, {"woken", nullptr, nullptr}},
    {"idle.quiesce_fold", "idle", false, {"levels", "occupied", nullptr}},
    {"foreach.chunk", "foreach", true, {"lo", "n", nullptr}},
    {"section", "section", true, {"nworkers", nullptr, nullptr}},
    {"job", "job", true, {"tenant", nullptr, nullptr}},
    {"check.violation", "check", false, {"invariant", "a0", "a1"}},
};

inline constexpr const EventInfo& event_info(Ev e) {
  return kEventInfo[static_cast<std::size_t>(e)];
}

}  // namespace xk::obs
