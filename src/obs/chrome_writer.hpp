// Chrome trace-event JSON export — the drain side of the xk_obs
// subsystem.
//
// One process-global writer accumulates the drained per-worker rings of
// every traced Runtime in the process and serializes them once, to the
// XK_TRACE path, as Chrome's JSON object format:
//
//   {"traceEvents":[...], "displayTimeUnit":"ns", "metrics":[...]}
//
// loadable in chrome://tracing and https://ui.perfetto.dev. Each Runtime
// instance becomes one pid (micro_steal constructs a runtime per sweep
// point — each shows up as its own process track), each worker one tid,
// with process_name/thread_name metadata events naming the tracks. The
// extra top-level "metrics" key (ignored by viewers, consumed by
// scripts/check_trace.py) carries one MetricsSnapshot per pid plus the
// ring-overflow drop count.
//
// The file is written once, from the writer's destructor at process exit
// (same discipline as bench JsonReport) or an explicit flush(); draining
// a section therefore costs one ring copy, not a file rewrite per
// section. Timestamps are re-based to the earliest drained event and
// emitted as microseconds with nanosecond decimals.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xk::obs {

class ChromeTraceWriter {
 public:
  /// The process-global writer (constructed on first use, flushed at
  /// static destruction).
  static ChromeTraceWriter& instance();

  /// Sets the output path. First non-empty path wins — every traced
  /// Runtime in the process shares one file, so a second Runtime created
  /// with a different XK_TRACE value keeps appending to the first file.
  void set_path(const std::string& path);

  bool enabled() const;

  /// Registers one Runtime as a trace process. Returns its pid (1-based)
  /// and queues the process_name / thread_name metadata events.
  int add_process(const std::string& name, unsigned nworkers);

  /// Appends worker `tid`'s drained events under process `pid`.
  /// `dropped` is the ring's wrap-overwrite count for the drain.
  void add_events(int pid, unsigned tid, const std::vector<TraceEvent>& events,
                  std::uint64_t dropped);

  /// Attaches the end-of-run metrics snapshot for process `pid`.
  void add_metrics(int pid, const MetricsSnapshot& m);

  /// Serializes everything accumulated so far to the path (overwriting).
  /// Idempotent and callable mid-process (tests); the destructor calls it
  /// for the normal at-exit write.
  void flush();

  ~ChromeTraceWriter();

 private:
  ChromeTraceWriter() = default;

  struct Row {
    int pid;
    unsigned tid;
    TraceEvent ev;
  };
  struct Process {
    int pid;
    std::string name;
    unsigned nworkers;
    std::uint64_t dropped = 0;
    std::string metrics_json;  // empty until add_metrics
  };

  mutable std::mutex mu_;
  std::string path_;
  std::vector<Process> procs_;
  std::vector<Row> rows_;
};

}  // namespace xk::obs
