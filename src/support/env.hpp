// Environment-variable configuration helpers. All tunables of the runtime
// and the benchmark harness are overridable through XK_* / XKREPRO_*
// variables; these helpers centralise the parsing and defaulting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace xk {

/// Returns the raw value of `name`, or nullopt when unset/empty.
std::optional<std::string> env_string(const char* name);

/// Parses `name` as a signed 64-bit integer; returns `fallback` when unset
/// or unparsable (a malformed value is ignored rather than fatal so that a
/// stray variable cannot brick a run).
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Parses `name` as a double with the same defaulting policy as env_int.
double env_double(const char* name, double fallback);

/// Parses `name` as a boolean: "1/true/yes/on" => true, "0/false/no/off"
/// => false, anything else => fallback.
bool env_bool(const char* name, bool fallback);

}  // namespace xk
