// Wall-clock timing and summary statistics for the benchmark harness.
// The paper reports times averaged over 30 runs (§III); RunStats carries the
// same aggregation (mean/min/max/stddev over repetitions).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace xk {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch — the
/// timestamp source of the trace rings (src/obs/). Same steady clock as
/// Timer, exposed raw so an event record is one clock read and one store,
/// with the epoch subtraction deferred to trace-drain time.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock timer with double-seconds reads.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Summary statistics over repeated measurements.
struct RunStats {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;

  static RunStats from_samples(const std::vector<double>& samples);
};

/// Runs `fn` `repeats` times (after `warmups` unmeasured runs) and returns
/// the per-repetition wall-clock seconds. `fn` must be invocable with no
/// arguments.
template <typename Fn>
std::vector<double> time_samples(Fn&& fn, std::size_t repeats,
                                 std::size_t warmups = 1) {
  for (std::size_t i = 0; i < warmups; ++i) fn();
  std::vector<double> samples;
  samples.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    Timer t;
    fn();
    samples.push_back(t.seconds());
  }
  return samples;
}

}  // namespace xk
