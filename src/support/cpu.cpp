#include "support/cpu.hpp"

#include "support/env.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace xk {

unsigned hardware_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

bool bind_self_to_core(unsigned core) {
#if defined(__linux__)
  const unsigned ncores = hardware_cores();
  if (ncores <= 1) return true;  // nothing to choose between
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % ncores, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

unsigned default_worker_count() {
  const std::int64_t requested = env_int("XK_NCPU", 0);
  if (requested > 0) return static_cast<unsigned>(requested);
  return hardware_cores();
}

}  // namespace xk
