// Bounded MPMC ring buffer (Vyukov's bounded queue): per-slot sequence
// counters instead of a shared lock, so producers and consumers on
// different slots never touch the same cache line and a full/empty verdict
// costs one acquire load.
//
// Protocol: slot i's `seq` cycles through the values
//   push-ready:  pos          (a producer may claim ticket pos)
//   pop-ready:   pos + 1      (the value for ticket pos is published)
//   reused:      pos + cap    (the slot is push-ready for the next lap)
// A producer claims ticket `pos` by CASing the shared tail cursor, writes
// the value, then publishes with seq.store(pos + 1, release); a consumer
// claims ticket `pos` off the head cursor once it observes seq == pos + 1
// (acquire — this load is the happens-before edge carrying the producer's
// writes, both the value and everything the producer did before pushing),
// reads the value, and recycles the slot with seq.store(pos + cap,
// release). Cursors are 64-bit and never wrap in practice, so a lapped
// sequence can't be mistaken for a current one (no ABA).
//
// try_push/try_pop are lock-free (a stalled *claimer* cannot block other
// claimers — only the slot it owns stays unavailable for one lap) and
// never spin-wait on a slot: full and empty return false immediately, so
// callers can fall back (the ReadyList spills to a mutex-guarded side
// deque) instead of blocking.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "check/check.hpp"
#include "support/cache.hpp"

namespace xk {

template <typename T>
class MpmcRing {
 public:
  /// `capacity` must be a power of two (the index mask) and >= 2.
  explicit MpmcRing(std::size_t capacity)
      : slots_(new Slot[capacity]), mask_(capacity - 1) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "MpmcRing capacity must be a power of two");
    for (std::size_t i = 0; i < capacity; ++i) {
      // xk-order: pre-publication init — the ring is not shared until the
      // constructor returns, and the owner hands it off with its own edge.
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// False when the ring is full (the caller spills). `retries`, when
  /// given, accumulates lost CAS races against other producers — the
  /// ring-contention telemetry.
  bool try_push(const T& v, std::uint64_t* retries = nullptr) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq == pos) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          // Sound even though head_ races: head_ only advances, so the
          // claimed ticket can only look *closer* to the consumers than it
          // was at claim time — a distance beyond capacity is a genuine
          // protocol break (a producer claimed past an unrecycled slot),
          // never a stale read.
          XK_EXPECT(ring_overflow,
                    pos - head_.load(std::memory_order_relaxed) <= mask_, pos);
          s.value = v;
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: `pos` was reloaded by compare_exchange; another
        // producer claimed this ticket first.
        if (retries != nullptr) ++*retries;
      } else if (seq < pos) {
        // The slot still holds the value from one lap ago: the ring is
        // full (the consumer for ticket pos - capacity has not recycled
        // it). Report full rather than wait on that consumer.
        return false;
      } else {
        // seq > pos: another producer already claimed and published past
        // this ticket; refetch the cursor.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when the ring is empty. `retries` accumulates lost CAS races
  /// against other consumers.
  bool try_pop(T& out, std::uint64_t* retries = nullptr) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq == pos + 1) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = s.value;
          s.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
        if (retries != nullptr) ++*retries;
      } else if (seq < pos + 1) {
        // Ticket pos has no published value yet: empty (or a claimed push
        // is mid-write — indistinguishable, and waiting on it here would
        // forfeit lock-freedom; the caller re-probes).
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Racy size estimate (relaxed cursor reads; may be momentarily
  /// negative under concurrent claims, clamped to 0). Telemetry only.
  std::size_t approx_size() const {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  /// One slot per cache line: neighbouring slots are claimed by different
  /// workers in steady state, and sharing lines would turn every publish
  /// into false-sharing traffic.
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  /// Producer and consumer cursors on their own lines (producers hammer
  /// tail_, consumers hammer head_; sharing one line would couple them).
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
};

}  // namespace xk
