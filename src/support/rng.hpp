// Deterministic pseudo-random number generation.
//
// Everything in the benchmark harness and the synthetic workload generators
// (meshes, matrices, DAGs) must be reproducible run-to-run, so we use our own
// small, seedable generators instead of std::random_device-seeded engines.
// SplitMix64 seeds Xoshiro256**, the standard pairing.
#pragma once

#include <cstdint>

namespace xk {

/// SplitMix64: used to expand one 64-bit seed into a full generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality, 2^256-1 period. Not cryptographic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free mapping is fine here: the tiny
    // modulo bias (< 2^-64 * bound) is irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace xk
