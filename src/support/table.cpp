#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/env.hpp"

namespace xk {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_auto(std::ostream& os) const {
  if (env_bool("XKREPRO_CSV", false)) {
    print_csv(os);
  } else {
    print(os);
  }
}

}  // namespace xk
