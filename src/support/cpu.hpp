// CPU topology and thread-placement helpers.
//
// The paper binds threads to cores with an affinity mask (§III-C); on the
// reproduction machine core counts vary, so binding is best-effort and the
// worker count is an independent knob (XK_NCPU) that may oversubscribe.
#pragma once

#include <cstdint>
#include <thread>

namespace xk {

/// Number of hardware threads visible to this process (>= 1).
unsigned hardware_cores();

/// Best-effort pinning of the calling thread to `core % hardware_cores()`.
/// Returns true when the affinity call succeeded. On single-core containers
/// this is a no-op that still returns true so tests don't depend on topology.
bool bind_self_to_core(unsigned core);

/// Default worker count: XK_NCPU when set, otherwise hardware_cores().
unsigned default_worker_count();

}  // namespace xk
