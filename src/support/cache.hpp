// Cache-layout helpers: cache-line constants and padding wrappers used to
// keep per-worker mutable state on private cache lines (avoids false sharing
// between the owner's hot path and thieves probing neighbouring counters).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace xk {

/// Size every concurrently-touched per-thread structure is padded to.
/// std::hardware_destructive_interference_size is 64 on x86-64 but GCC warns
/// it is ABI-unstable, so we pin the conventional value.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps a T so that distinct array elements never share a cache line.
/// Used for per-worker counters, steal-request slots and reduction cells.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<int>) == kCacheLine);
static_assert(sizeof(Padded<int>) % kCacheLine == 0);

/// Rounds `n` up to the next multiple of `align` (power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace xk
