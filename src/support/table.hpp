// Plain-text table emitter for the benchmark harness.
//
// Every bench binary prints the rows/series of the corresponding paper figure
// in a fixed-width table (human-readable) and can also emit CSV for plotting
// (XKREPRO_CSV=1).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace xk {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells are blank, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string num(double value, int precision = 3);

  /// Fixed-width rendering with a header rule.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (no padding).
  void print_csv(std::ostream& os) const;

  /// Honors XKREPRO_CSV: csv when set, pretty table otherwise.
  void print_auto(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xk
