// Sense-reversing centralized barrier.
//
// Used by the baseline loop schedulers (an OpenMP `parallel for` ends with an
// implicit barrier) and by tests that need to line threads up at a point.
// std::barrier exists but its completion-function machinery is more than we
// need and this version lets tests inspect the arrival count.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace xk {

class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Blocks until all `parties` threads have arrived. Spin-then-yield wait so
  /// the barrier stays correct (if slow) when threads outnumber cores.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // xk-order: only next-round arrivers read remaining_, and each is
      // ordered behind the sense_ release below via its own acquire spin.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);  // releases waiters
      return;
    }
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (++spins > 64) std::this_thread::yield();
    }
  }

  std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace xk
