// Parker — a timed eventcount for idle-worker parking.
//
// Idle workers must not saturate the steal mutexes and the memory bus with
// an unbounded spin (the cost shows up as flat scaling curves on small
// machines and as stolen cycles on oversubscribed ones). The scheduler's
// idle loops instead back off and then *park* on this primitive; a worker
// that publishes new stealable work wakes one parked peer.
//
// The protocol is the classic eventcount (prepare / announce / re-validate /
// park), with a timed wait as the lost-wakeup backstop:
//
//   waiter                                 publisher
//   ------                                 ---------
//   e = prepare();          // read seq    publish work (release store)
//   announce();             // waiters++
//   re-validate (steal once more)          if (has_waiters()) notify_one();
//   park(e, timeout);       // sleeps only while seq == e
//   retract();              // waiters--
//
// A notify between prepare() and park() advances seq, so park() returns
// immediately — no wakeup is lost once the waiter announced. The one
// remaining hole is publisher-side store/load reordering (the publisher's
// has_waiters() load may execute before its work store drains, missing a
// waiter that announced in between); closing it would need a full fence on
// the publish hot path, so instead park() takes a bounded timeout and the
// waiter re-validates on expiry. Wakeup latency is therefore bounded by the
// timeout even if every notification is lost.
//
// Sleep implementation: on Linux, a raw FUTEX_WAIT on the seq word with a
// *relative* timeout — the kernel measures it against CLOCK_MONOTONIC, so a
// wall-clock step (VM time sync, NTP) cannot stretch the sleep. The
// portable fallback uses std::condition_variable, whose wait_for lowers to
// a CLOCK_REALTIME absolute deadline in glibc and is therefore only used
// where futexes are unavailable. FUTEX_WAIT atomically re-checks
// seq == epoch in the kernel, which is the no-lost-wakeup core.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#include <condition_variable>
#include <mutex>
#endif

namespace xk {

class Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  /// Epoch to pass to park(); read *before* the final work re-validation.
  std::uint32_t prepare() const { return seq_.load(std::memory_order_acquire); }

  /// Registers the caller as a prospective sleeper. seq_cst so a publisher
  /// whose has_waiters() load is ordered after this increment must see it.
  void announce() { waiters_.fetch_add(1, std::memory_order_seq_cst); }
  void retract() { waiters_.fetch_sub(1, std::memory_order_relaxed); }

  /// Publisher-side probe: only pay for a wake when someone may be asleep.
  bool has_waiters() const {
    return waiters_.load(std::memory_order_seq_cst) != 0;
  }

  /// Approximate sleeper count (diagnostics / tests).
  std::uint32_t waiters() const {
    return waiters_.load(std::memory_order_relaxed);
  }

  /// Blocks until seq advances past `epoch` or `timeout` expires. Returns
  /// true when notified (seq moved), false on timeout. Returns immediately
  /// when a notification already happened after prepare().
  bool park(std::uint32_t epoch, std::chrono::nanoseconds timeout) {
    bool notified;
#if defined(__linux__)
    if (seq_.load(std::memory_order_acquire) == epoch) {
      const auto secs = std::chrono::duration_cast<std::chrono::seconds>(timeout);
      struct timespec ts;
      ts.tv_sec = static_cast<time_t>(secs.count());
      ts.tv_nsec = static_cast<long>((timeout - secs).count());
      // Atomically sleeps only while seq still equals epoch; EAGAIN means
      // a notify already advanced it, EINTR/ETIMEDOUT fall through to the
      // re-check below. The happens-before edges come from the seq_
      // atomics, not the syscall.
      syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&seq_),
              FUTEX_WAIT_PRIVATE, epoch, &ts, nullptr, 0);
    }
    notified = seq_.load(std::memory_order_acquire) != epoch;
#else
    {
      std::unique_lock<std::mutex> lock(mu_);
      notified = cv_.wait_for(lock, timeout, [&] {
        return seq_.load(std::memory_order_acquire) != epoch;
      });
    }
#endif
    // This worker is back in the game; let publishers send the next wake.
    wake_pending_.store(false, std::memory_order_release);
    return notified;
  }

  /// Wakes one parked worker (new stealable work: any worker can take it).
  /// Rate-limited: while a previously woken worker has not returned from
  /// park() yet, further notifies are dropped — a publisher spawning many
  /// tasks while peers sleep pays a relaxed flag probe, not a wake, each.
  /// The waiter-side timeout covers any work a dropped notify leaves behind
  /// (and a woken worker keeps stealing until it runs dry anyway).
  void notify_one() {
    // Test-and-test-and-set keeps the common already-pending case RMW-free.
    if (wake_pending_.load(std::memory_order_relaxed)) return;
    if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
    bump();
    wake(1);
  }

  /// Wakes every parked worker (progress events a *specific* waiter may be
  /// blocked on — stolen-task completion, section end — where waking the
  /// wrong single worker would leave the right one asleep until timeout).
  void notify_all() {
    bump();
    wake(std::numeric_limits<int>::max());
  }

 private:
  void bump() {
#if defined(__linux__)
    seq_.fetch_add(1, std::memory_order_release);
#else
    // The cv fallback needs the bump under the mutex so the wait_for
    // predicate cannot miss it (standard cv no-lost-wakeup argument).
    std::lock_guard<std::mutex> lock(mu_);
    seq_.fetch_add(1, std::memory_order_release);
#endif
  }

  void wake(int n) {
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&seq_),
            FUTEX_WAKE_PRIVATE, n, nullptr, nullptr, 0);
#else
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
#endif
  }

  std::atomic<std::uint32_t> seq_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::atomic<bool> wake_pending_{false};
#if !defined(__linux__)
  std::mutex mu_;
  std::condition_variable cv_;
#endif
};

}  // namespace xk
