#include "support/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace xk {

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(*raw, &pos);
    if (pos != raw->size()) return fallback;
    return value;
  } catch (...) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const double value = std::stod(*raw, &pos);
    if (pos != raw->size()) return fallback;
    return value;
  } catch (...) {
    return fallback;
  }
}

bool env_bool(const char* name, bool fallback) {
  auto raw = env_string(name);
  if (!raw) return fallback;
  std::string v = *raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace xk
