#include "support/timing.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace xk {

RunStats RunStats::from_samples(const std::vector<double>& samples) {
  RunStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;

  stats.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
               static_cast<double>(samples.size());
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  stats.min = *lo;
  stats.max = *hi;

  double sq = 0.0;
  for (double s : samples) sq += (s - stats.mean) * (s - stats.mean);
  stats.stddev = samples.size() > 1
                     ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                     : 0.0;
  return stats;
}

}  // namespace xk
