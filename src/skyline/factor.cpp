#include "skyline/factor.hpp"

#include <atomic>
#include <vector>

#include "baselines/gomp_pool.hpp"
#include "core/xkaapi.hpp"
#include "linalg/blas.hpp"

namespace xk::skyline {

using linalg::gemm_nt;
using linalg::gemv_minus;
using linalg::gemv_minus_trans;
using linalg::potrf_lower;
using linalg::syrk_lower;
using linalg::trsm_right_lower_trans;
using linalg::trsv_lower_notrans;
using linalg::trsv_lower_trans;

int factor_sequential(BlockSkylineMatrix& a) {
  const int nbk = a.nbk();
  const int bs = a.bs();
  for (int k = 0; k < nbk; ++k) {
    const int info = potrf_lower(bs, a.block(k, k), bs);
    if (info != 0) return k * bs + info;
    for (int m = k + 1; m < nbk; ++m) {
      if (a.is_empty(m, k)) continue;
      trsm_right_lower_trans(bs, bs, a.block(k, k), bs, a.block(m, k), bs);
    }
    for (int m = k + 1; m < nbk; ++m) {
      if (a.is_empty(m, k)) continue;
      syrk_lower(bs, bs, a.block(m, k), bs, a.block(m, m), bs);
      for (int n = k + 1; n < m; ++n) {
        if (a.is_empty(n, k)) continue;
        if (a.is_empty(m, n)) continue;
        gemm_nt(bs, bs, bs, a.block(m, k), bs, a.block(n, k), bs,
                a.block(m, n), bs);
      }
    }
  }
  return 0;
}

int factor_xkaapi(BlockSkylineMatrix& a, Runtime& rt) {
  const int nbk = a.nbk();
  const int bs = a.bs();
  const std::size_t be = static_cast<std::size_t>(bs) * bs;
  std::atomic<int> info{0};

  auto submit = [&] {
    for (int k = 0; k < nbk; ++k) {
      xk::spawn(
          [bs, k, &info](double* akk) {
            const int r = potrf_lower(bs, akk, bs);
            if (r != 0) {
              int expected = 0;
              info.compare_exchange_strong(expected, k * bs + r,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed);
            }
          },
          xk::rw(a.block(k, k), be));
      for (int m = k + 1; m < nbk; ++m) {
        if (a.is_empty(m, k)) continue;
        xk::spawn(
            [bs](const double* akk, double* amk) {
              trsm_right_lower_trans(bs, bs, akk, bs, amk, bs);
            },
            xk::read(a.block(k, k), be), xk::rw(a.block(m, k), be));
      }
      for (int m = k + 1; m < nbk; ++m) {
        if (a.is_empty(m, k)) continue;
        xk::spawn(
            [bs](const double* amk, double* amm) {
              syrk_lower(bs, bs, amk, bs, amm, bs);
            },
            xk::read(a.block(m, k), be), xk::rw(a.block(m, m), be));
        for (int n = k + 1; n < m; ++n) {
          if (a.is_empty(n, k)) continue;
          if (a.is_empty(m, n)) continue;
          xk::spawn(
              [bs](const double* amk, const double* ank, double* amn) {
                gemm_nt(bs, bs, bs, amk, bs, ank, bs, amn, bs);
              },
              xk::read(a.block(m, k), be), xk::read(a.block(n, k), be),
              xk::rw(a.block(m, n), be));
        }
      }
    }
    xk::sync();
  };
  // Usable standalone or from inside an open section (the EPX time loop
  // factors H at every step inside one long-lived section).
  if (rt.in_section()) {
    submit();
  } else {
    rt.run(submit);
  }
  // Relaxed: the sync/join above already ordered every CAS.
  return info.load(std::memory_order_relaxed);
}

int factor_gomp(BlockSkylineMatrix& a, baseline::GompLikePool& pool) {
  const int nbk = a.nbk();
  const int bs = a.bs();
  std::atomic<int> info{0};

  pool.parallel([&] {
    for (int k = 0; k < nbk; ++k) {
      // potrf stays on the master (only lines 7/12/17 create tasks in the
      // paper's OpenMP port).
      const int r = potrf_lower(bs, a.block(k, k), bs);
      if (r != 0) {
        int expected = 0;
        info.compare_exchange_strong(expected, k * bs + r,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed);
        return;
      }
      for (int m = k + 1; m < nbk; ++m) {
        if (a.is_empty(m, k)) continue;
        pool.spawn([&a, bs, k, m] {
          trsm_right_lower_trans(bs, bs, a.block(k, k), bs, a.block(m, k), bs);
        });
      }
      pool.taskwait();  // the paper's taskwait "after line 8"
      for (int m = k + 1; m < nbk; ++m) {
        if (a.is_empty(m, k)) continue;
        pool.spawn([&a, bs, k, m] {
          syrk_lower(bs, bs, a.block(m, k), bs, a.block(m, m), bs);
        });
        for (int n = k + 1; n < m; ++n) {
          if (a.is_empty(n, k)) continue;
          if (a.is_empty(m, n)) continue;
          pool.spawn([&a, bs, k, m, n] {
            gemm_nt(bs, bs, bs, a.block(m, k), bs, a.block(n, k), bs,
                    a.block(m, n), bs);
          });
        }
      }
      pool.taskwait();  // the paper's taskwait "after line 19"
    }
  });
  // Relaxed: the sync/join above already ordered every CAS.
  return info.load(std::memory_order_relaxed);
}

void solve_factored(const BlockSkylineMatrix& lfac, const double* b,
                    double* x) {
  const int nbk = lfac.nbk();
  const int bs = lfac.bs();
  const int n = lfac.n();
  const int padded = nbk * bs;
  std::vector<double> y(static_cast<std::size_t>(padded), 0.0);
  for (int i = 0; i < n; ++i) y[static_cast<std::size_t>(i)] = b[i];

  // Forward: L y' = y, block rows ascending.
  for (int i = 0; i < nbk; ++i) {
    double* yi = y.data() + static_cast<std::size_t>(i) * bs;
    for (int j = lfac.bjmin(i); j < i; ++j) {
      gemv_minus(bs, bs, lfac.block(i, j), bs,
                 y.data() + static_cast<std::size_t>(j) * bs, yi);
    }
    trsv_lower_notrans(bs, lfac.block(i, i), bs, yi);
  }
  // Backward: L^T x = y', block rows descending. Column i of L^T gathers
  // the sub-diagonal blocks (m, i) of L.
  for (int i = nbk - 1; i >= 0; --i) {
    double* yi = y.data() + static_cast<std::size_t>(i) * bs;
    for (int m = i + 1; m < nbk; ++m) {
      if (lfac.is_empty(m, i)) continue;
      gemv_minus_trans(bs, bs, lfac.block(m, i), bs,
                       y.data() + static_cast<std::size_t>(m) * bs, yi);
    }
    trsv_lower_trans(bs, lfac.block(i, i), bs, yi);
  }
  for (int i = 0; i < n; ++i) x[i] = y[static_cast<std::size_t>(i)];
}

double factor_flops(const BlockSkylineMatrix& a) {
  const int nbk = a.nbk();
  const double bs = a.bs();
  const double potrf = bs * bs * bs / 3.0;
  const double trsm = bs * bs * bs;
  const double syrk = bs * bs * bs;
  const double gemm = 2.0 * bs * bs * bs;
  double total = 0.0;
  for (int k = 0; k < nbk; ++k) {
    total += potrf;
    for (int m = k + 1; m < nbk; ++m) {
      if (a.is_empty(m, k)) continue;
      total += trsm + syrk;
      for (int n = k + 1; n < m; ++n) {
        if (!a.is_empty(n, k) && !a.is_empty(m, n)) total += gemm;
      }
    }
  }
  return total;
}

}  // namespace xk::skyline
