// Block-skyline symmetric matrix storage — the paper's "Skyline storage
// format" (§I, §IV-B) at block granularity.
//
// EPX condenses the dynamic equilibrium equations onto Lagrange multipliers,
// yielding a sparse symmetric H matrix factored at every time step. The
// skyline (profile) format stores, for each row, the contiguous range from
// the first nonzero column to the diagonal. The paper's blocked algorithm
// (Fig. 7) partitions the matrix into BS x BS blocks and tests `is_empty`
// per block; this class is exactly that representation: per block-row I a
// first nonempty block column `bjmin[I]`, blocks stored dense (column-major)
// from bjmin[I] to the diagonal block.
//
// Key property used by the factorization: a skyline profile is closed under
// Cholesky fill-in — if blocks (m,k) and (n,k) are inside the profile with
// k < n <= m, then (m,n) is too (bjmin[m] <= k < n).
#pragma once

#include <cstdint>
#include <vector>

namespace xk::skyline {

class BlockSkylineMatrix {
 public:
  /// n: logical dimension; bs: block size; bjmin[i]: first nonempty block
  /// column of block row i (bjmin[i] <= i; bjmin.size() determines the
  /// number of block rows, which must cover n).
  BlockSkylineMatrix(int n, int bs, std::vector<int> bjmin);

  int n() const { return n_; }
  int bs() const { return bs_; }
  /// Number of block rows/columns.
  int nbk() const { return static_cast<int>(bjmin_.size()); }

  /// The paper's is_empty(m, k, &sli): true when block (i, j) lies outside
  /// the (lower) profile.
  bool is_empty(int i, int j) const {
    return j < bjmin_[static_cast<std::size_t>(i)] || j > i;
  }

  int bjmin(int i) const { return bjmin_[static_cast<std::size_t>(i)]; }

  /// Pointer to dense bs x bs storage of block (i, j); valid only when
  /// !is_empty(i, j). Blocks of one row are contiguous.
  double* block(int i, int j) {
    return blocks_.data() + block_offset(i, j);
  }
  const double* block(int i, int j) const {
    return blocks_.data() + block_offset(i, j);
  }

  /// Stored blocks (lower profile, diagonal included).
  std::size_t stored_blocks() const { return total_blocks_; }

  /// Fraction of nonzero entries of the full symmetric matrix the profile
  /// stores (the paper reports 3.59 % for the MAXPLANE H matrix).
  double density() const;

  /// Fills the profile with a deterministic symmetric positive-definite
  /// matrix (random in [-1,1], diagonal shifted by `shift`; pass 0 to use
  /// a shift that guarantees SPD for this profile).
  void fill_spd(std::uint64_t seed, double shift = 0.0);

  /// Zeroes all stored blocks.
  void clear();

  /// Element access (0 outside the profile); slow, for tests/verification.
  double get(int i, int j) const;

  /// Dense symmetric column-major copy (n x n), for verification.
  std::vector<double> to_dense() const;

  /// y := A * x using the symmetric profile (reference matvec for residual
  /// checks; A must be unfactored).
  void matvec(const double* x, double* y) const;

 private:
  std::size_t block_offset(int i, int j) const {
    return (row_offset_[static_cast<std::size_t>(i)] +
            static_cast<std::size_t>(j - bjmin_[static_cast<std::size_t>(i)])) *
           static_cast<std::size_t>(bs_) * static_cast<std::size_t>(bs_);
  }

  int n_;
  int bs_;
  std::vector<int> bjmin_;
  std::vector<std::size_t> row_offset_;  // in blocks
  std::size_t total_blocks_ = 0;
  std::vector<double> blocks_;
};

/// Generates an FEM-envelope-like profile: the block bandwidth follows a
/// bounded random walk calibrated so the stored fraction approximates
/// `target_density` (e.g. 0.0359 to match the paper's MAXPLANE matrix).
BlockSkylineMatrix make_fem_like(int n, int bs, double target_density,
                                 std::uint64_t seed);

}  // namespace xk::skyline
