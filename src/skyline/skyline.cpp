#include "skyline/skyline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"

namespace xk::skyline {

BlockSkylineMatrix::BlockSkylineMatrix(int n, int bs, std::vector<int> bjmin)
    : n_(n), bs_(bs), bjmin_(std::move(bjmin)) {
  const int nbk = static_cast<int>(bjmin_.size());
  if (nbk * bs < n) {
    throw std::invalid_argument("skyline: profile does not cover n");
  }
  row_offset_.resize(bjmin_.size());
  std::size_t offset = 0;
  for (int i = 0; i < nbk; ++i) {
    if (bjmin_[static_cast<std::size_t>(i)] < 0 ||
        bjmin_[static_cast<std::size_t>(i)] > i) {
      throw std::invalid_argument("skyline: bjmin out of range");
    }
    row_offset_[static_cast<std::size_t>(i)] = offset;
    offset += static_cast<std::size_t>(i - bjmin_[static_cast<std::size_t>(i)] + 1);
  }
  total_blocks_ = offset;
  blocks_.assign(total_blocks_ * static_cast<std::size_t>(bs_) * bs_, 0.0);
}

double BlockSkylineMatrix::density() const {
  // Stored entries mirrored to the upper triangle, diagonal counted once.
  const auto bb = static_cast<double>(bs_) * bs_;
  const double stored = static_cast<double>(total_blocks_) * bb;
  const double diag_blocks = nbk() * bb;
  const double nnz = 2.0 * stored - diag_blocks;
  return nnz / (static_cast<double>(n_) * static_cast<double>(n_));
}

void BlockSkylineMatrix::fill_spd(std::uint64_t seed, double shift) {
  Rng rng(seed);
  if (shift <= 0.0) {
    // Row sums of |off-diagonal| are bounded by the widest profile row;
    // a shift above that guarantees diagonal dominance, hence SPD.
    int max_width_blocks = 1;
    for (int i = 0; i < nbk(); ++i) {
      max_width_blocks = std::max(max_width_blocks, i - bjmin(i) + 1);
    }
    shift = 2.0 * static_cast<double>(max_width_blocks) * bs_ + 1.0;
  }
  clear();
  const int padded = nbk() * bs_;
  for (int bi = 0; bi < nbk(); ++bi) {
    for (int bj = bjmin(bi); bj <= bi; ++bj) {
      double* blk = block(bi, bj);
      for (int jj = 0; jj < bs_; ++jj) {
        for (int ii = 0; ii < bs_; ++ii) {
          const int gi = bi * bs_ + ii;
          const int gj = bj * bs_ + jj;
          if (gj > gi) continue;  // lower triangle only within diag blocks
          double v;
          if (gi >= n_ || gj >= n_) {
            v = (gi == gj) ? 1.0 : 0.0;  // identity padding
          } else if (gi == gj) {
            v = rng.next_double(0.0, 1.0) + shift;
          } else {
            v = rng.next_double(-1.0, 1.0);
          }
          blk[ii + jj * bs_] = v;
          if (bi == bj && gi != gj) blk[jj + ii * bs_] = v;  // mirror in diag
        }
      }
    }
  }
  (void)padded;
}

void BlockSkylineMatrix::clear() {
  std::fill(blocks_.begin(), blocks_.end(), 0.0);
}

double BlockSkylineMatrix::get(int i, int j) const {
  if (j > i) std::swap(i, j);
  const int bi = i / bs_, bj = j / bs_;
  if (is_empty(bi, bj)) return 0.0;
  return block(bi, bj)[(i % bs_) + (j % bs_) * bs_];
}

std::vector<double> BlockSkylineMatrix::to_dense() const {
  const auto nn = static_cast<std::size_t>(n_);
  std::vector<double> dense(nn * nn, 0.0);
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = get(i, j);
      dense[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * nn] = v;
      dense[static_cast<std::size_t>(j) + static_cast<std::size_t>(i) * nn] = v;
    }
  }
  return dense;
}

void BlockSkylineMatrix::matvec(const double* x, double* y) const {
  for (int i = 0; i < n_; ++i) y[i] = 0.0;
  for (int i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (int j = 0; j <= i; ++j) {
      const double v = get(i, j);
      if (v == 0.0) continue;
      acc += v * x[j];
      if (j != i) y[j] += v * x[i];
    }
    y[i] += acc;
  }
}

BlockSkylineMatrix make_fem_like(int n, int bs, double target_density,
                                 std::uint64_t seed) {
  const int nbk = (n + bs - 1) / bs;
  // Stored fraction ~= 2*avg_width_blocks*bs^2*nbk / n^2; solve for the
  // average block bandwidth that hits the target.
  const double nd = n;
  double avg_width =
      target_density * nd * nd / (2.0 * static_cast<double>(bs) * bs * nbk);
  avg_width = std::max(1.0, avg_width);

  Rng rng(seed);
  std::vector<int> bjmin(static_cast<std::size_t>(nbk));
  double walk = avg_width;
  for (int i = 0; i < nbk; ++i) {
    // Bounded random walk around the calibrated average (FEM envelopes vary
    // smoothly as element connectivity changes along the numbering).
    walk += rng.next_double(-0.35, 0.35) * avg_width;
    walk = std::clamp(walk, 1.0, 2.0 * avg_width + 1.0);
    const int width = std::max(1, static_cast<int>(std::lround(walk)));
    bjmin[static_cast<std::size_t>(i)] = std::max(0, i - (width - 1));
  }
  return BlockSkylineMatrix(n, bs, std::move(bjmin));
}

}  // namespace xk::skyline
