// Blocked Cholesky (L·L^T) of a block-skyline matrix — the paper's sparse
// CHOLESKY kernel (Fig. 7). The block loop nest is exactly the paper's
// pseudo-code, including the is_empty() profile tests:
//
//   for (k = 0; k < N; k += BS) {
//     potrf(k);                                   // task in X-Kaapi only
//     for (m) if (!is_empty(m,k)) trsm(k,m);      // tasks
//     /* OpenMP: taskwait */
//     for (m) if (!is_empty(m,k)) { syrk(k,m);    // tasks
//       for (n) if (!is_empty(n,k) && !is_empty(m,n)) gemm(k,m,n); }
//     /* OpenMP: taskwait */
//   }
//
// Variants:
//   sequential : loop nest calling the kernels;
//   xkaapi     : every call is a dataflow task; block indices define the
//                accessed memory regions, synchronization is implicit;
//   gomp       : the paper's OpenMP port — potrf on the master, trsm and
//                syrk/gemm as tasks with a taskwait after each phase (the
//                extra synchronization that limits speedup in Fig. 7).
#pragma once

#include "skyline/skyline.hpp"

namespace xk {
class Runtime;
}
namespace xk::baseline {
class GompLikePool;
}

namespace xk::skyline {

/// In-place blocked Cholesky; returns 0 or the failing global pivot + 1.
int factor_sequential(BlockSkylineMatrix& a);
int factor_xkaapi(BlockSkylineMatrix& a, Runtime& rt);
int factor_gomp(BlockSkylineMatrix& a, baseline::GompLikePool& pool);

/// Solves L·L^T x = b given the factored matrix; b and x have length n().
void solve_factored(const BlockSkylineMatrix& lfac, const double* b,
                    double* x);

/// Flop count of the blocked factorization for this profile (for GFlop/s
/// and for sizing benchmark runs).
double factor_flops(const BlockSkylineMatrix& a);

}  // namespace xk::skyline
