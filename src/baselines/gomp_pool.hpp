// GompLikePool — the OpenMP-3.0 task model as shipped by GCC's libGOMP
// (the paper benchmarks gcc 4.6.2 in §III-A and Fig. 7).
//
// Mechanisms modeled:
//  * one team-wide task queue protected by a single mutex + condvar
//    (every spawn takes the lock — the cost the paper's Fig. 1 exposes);
//  * heap allocation of one std::function-based record per task;
//  * `taskwait` blocks on the *direct* children of the current task and may
//    execute only those children while waiting (GOMP's rule — it is also
//    what keeps the worker stack bounded by the task-tree depth);
//  * the 64×nthreads creation throttle: beyond it, spawn degenerates to an
//    inline call ("libGOMP implements a threshold heuristic that limits task
//    creation when the number of tasks is greater than 64 times the number
//    of threads", §V) — switchable, since it is also the mechanism that
//    saves GOMP from the worst of Fig. 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xk::baseline {

struct GompOptions {
  bool throttle = true;
  int throttle_factor = 64;
};

class GompLikePool {
 public:
  using Options = GompOptions;

  explicit GompLikePool(unsigned nthreads, Options opt = Options());
  ~GompLikePool();

  GompLikePool(const GompLikePool&) = delete;
  GompLikePool& operator=(const GompLikePool&) = delete;

  /// Runs `master_fn` on the calling thread as the team master (an
  /// `omp parallel` region with a single master producer). Returns after
  /// every task completed (implicit barrier).
  void parallel(const std::function<void()>& master_fn);

  /// `#pragma omp task`: queues fn (or runs it inline past the throttle).
  /// Must be called from inside parallel().
  void spawn(std::function<void()> fn);

  /// `#pragma omp taskwait`: waits for the current task's direct children,
  /// executing queued tasks meanwhile.
  void taskwait();

  unsigned nthreads() const { return static_cast<unsigned>(threads_.size()) + 1; }
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Task record (public so the implementation's thread_local can name it).
  struct TaskRec {
    std::function<void()> fn;
    TaskRec* parent = nullptr;
    std::atomic<int> children{0};
    std::atomic<bool> taken{false};
    std::vector<TaskRec*> child_list;  // direct children, for taskwait
    std::size_t child_cursor = 0;      // first possibly-untaken child
  };

 private:
  void worker_main();
  void run_one(TaskRec* t);
  bool try_run_queued();
  bool try_run_child_of(TaskRec* parent);
  void collect_garbage();

  Options opt_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<TaskRec*> queue_;
  std::vector<TaskRec*> garbage_;  // freed at region end (see run_one)
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> region_active_{false};
  bool shutdown_ = false;
  std::uint64_t epoch_ = 0;

  std::vector<std::thread> threads_;
};

}  // namespace xk::baseline
