#include "baselines/loop_schedulers.hpp"

#include <algorithm>

namespace xk::baseline {

LoopTeam::LoopTeam(unsigned nthreads)
    : nthreads_(nthreads == 0 ? 1 : nthreads), end_barrier_(nthreads_) {
  threads_.reserve(nthreads_ - 1);
  for (unsigned i = 1; i < nthreads_; ++i) {
    threads_.emplace_back(&LoopTeam::member_main, this, i);
  }
}

LoopTeam::~LoopTeam() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void LoopTeam::execute_share(unsigned index) {
  const std::int64_t first = desc_.first;
  const std::int64_t last = desc_.last;
  const std::int64_t total = last - first;
  const Body& body = *desc_.body;

  switch (desc_.schedule) {
    case LoopSchedule::kStatic: {
      // Contiguous near-equal blocks (OpenMP static without chunk).
      const std::int64_t base = total / nthreads_;
      const std::int64_t rem = total % nthreads_;
      const std::int64_t lo =
          first + base * index + std::min<std::int64_t>(index, rem);
      const std::int64_t hi = lo + base + (index < static_cast<unsigned>(rem) ? 1 : 0);
      if (lo < hi) body(lo, hi, index);
      break;
    }
    case LoopSchedule::kDynamic: {
      const std::int64_t chunk = std::max<std::int64_t>(1, desc_.chunk);
      for (;;) {
        const std::int64_t lo = desc_.next.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= last) break;
        body(lo, std::min(lo + chunk, last), index);
      }
      break;
    }
    case LoopSchedule::kGuided: {
      const std::int64_t min_chunk = std::max<std::int64_t>(1, desc_.chunk);
      for (;;) {
        std::int64_t lo = desc_.next.load(std::memory_order_relaxed);
        std::int64_t take;
        do {
          if (lo >= last) return;
          const std::int64_t remaining = last - lo;
          take = std::max(min_chunk, remaining / (2 * nthreads_));
          take = std::min(take, remaining);
        } while (!desc_.next.compare_exchange_weak(lo, lo + take,
                                                   std::memory_order_relaxed));
        body(lo, lo + take, index);
      }
      break;
    }
  }
}

void LoopTeam::member_main(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    execute_share(index);
    end_barrier_.arrive_and_wait();  // the implicit barrier of `omp for`
  }
}

void LoopTeam::run(std::int64_t first, std::int64_t last, LoopSchedule schedule,
                   std::int64_t chunk, const Body& body) {
  if (last < first) last = first;
  desc_.first = first;
  desc_.last = last;
  desc_.schedule = schedule;
  desc_.chunk = chunk;
  desc_.body = &body;
  // xk-order: the epoch bump under mu_ just below is the publication edge
  // (workers read desc_ only after observing the new epoch under mu_).
  desc_.next.store(first, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    ++epoch_;
  }
  cv_.notify_all();
  execute_share(0);
  end_barrier_.arrive_and_wait();
  desc_.body = nullptr;
}

}  // namespace xk::baseline
