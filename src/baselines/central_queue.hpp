// CentralQueueRuntime — the QUARK scheduling model (§III-B).
//
// "QUARK implements a centralized list of ready tasks, with some heuristics
// to avoid accesses to the global list. For fine grain tasks and due to a
// contention point to access the global list, X-KAAPI outperforms QUARK."
//
// Faithful mechanisms modeled here:
//  * dependencies computed eagerly at *insertion* time (per-region last
//    writer / reader lists), on the master thread, under the global lock;
//  * a single mutex-protected ready deque shared by every worker — the
//    contention point the paper measures;
//  * task descriptors heap-allocated per insertion;
//  * a barrier that waits for the whole submitted graph.
//
// This runtime backs the "PLASMA/Quark" series of Fig. 2 (via the QUARK ABI
// layer) and the OpenMP-task comparators of Fig. 1/7 (via GompLikePool,
// which reuses the same central pool with the libGOMP throttle heuristic).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/access.hpp"

namespace xk::baseline {

/// One declared access of a central-queue task (same vocabulary as the core
/// runtime; regions compared by exact overlap).
struct CqAccess {
  MemRegion region;
  AccessMode mode = AccessMode::kNone;
};

class CentralQueueRuntime {
 public:
  using Body = std::function<void()>;

  /// Spawns `nthreads` workers; they spin on the shared ready deque.
  explicit CentralQueueRuntime(unsigned nthreads);
  ~CentralQueueRuntime();

  CentralQueueRuntime(const CentralQueueRuntime&) = delete;
  CentralQueueRuntime& operator=(const CentralQueueRuntime&) = delete;

  /// Inserts a task with dataflow accesses. Dependencies against previously
  /// inserted tasks are resolved now, under the global lock (QUARK model).
  void insert(Body body, std::vector<CqAccess> accesses);

  /// Convenience: independent task.
  void insert(Body body) { insert(std::move(body), {}); }

  /// Waits until every inserted task has completed.
  void barrier();

  unsigned nthreads() const { return static_cast<unsigned>(threads_.size()); }

  /// Number of tasks executed so far (diagnostics).
  std::uint64_t executed() const;

 private:
  struct TaskNode {
    Body body;
    std::vector<CqAccess> accesses;
    std::uint32_t npred = 0;
    std::vector<TaskNode*> successors;
    bool done = false;
  };

  void worker_main();
  void finish(TaskNode* t);

  // Global lock protecting the graph, the ready deque and the counters —
  // deliberately a single contention point (see header comment).
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<TaskNode*> ready_;
  // Region bookkeeping: last writer + readers since, per exact base address
  // bucket with true-overlap checks inside the bucket list.
  struct RegionUse {
    TaskNode* task;
    CqAccess access;
  };
  std::vector<RegionUse> live_uses_;
  std::vector<TaskNode*> retired_;  // completed nodes, freed at barrier()
  std::uint64_t pending_ = 0;
  std::uint64_t executed_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace xk::baseline
