// ClassicWS — classic distributed-deque work stealing, the Cilk+/TBB
// stand-in for Fig. 1 (both are proprietary and unavailable offline).
//
// Mechanisms:
//  * one deque per worker: owner pushes/pops at the bottom (LIFO, depth-
//    first like Cilk's work-first execution), thieves steal from the top
//    (oldest, biggest piece of work);
//  * no request aggregation, no dataflow, no splitters — the comparison
//    axis the paper uses Cilk+/TBB for;
//  * `pooled_tasks = true` recycles task records from a per-worker free
//    list (Cilk-like cheap spawn); `false` heap-allocates each record with
//    a type-erased std::function (TBB-like heavier spawn). The two settings
//    bracket the Cilk+/TBB overhead gap of Fig. 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/cache.hpp"
#include "support/rng.hpp"

namespace xk::baseline {

struct WsOptions {
  bool pooled_tasks = true;  ///< per-worker record recycling (Cilk-like)
};

class ClassicWS {
 public:
  using Options = WsOptions;

  explicit ClassicWS(unsigned nthreads, Options opt = Options());
  ~ClassicWS();

  ClassicWS(const ClassicWS&) = delete;
  ClassicWS& operator=(const ClassicWS&) = delete;

  /// Runs `root` on the calling thread as worker 0; returns when the whole
  /// task tree completed.
  void parallel(const std::function<void()>& root);

  /// Spawns a child of the current task (callable from task code only).
  void spawn(std::function<void()> fn);

  /// Waits for the current task's direct children; pops own deque (LIFO)
  /// first, steals when empty.
  void taskwait();

  unsigned nthreads() const { return static_cast<unsigned>(deques_.size()); }
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct TaskRec {
    std::function<void()> fn;
    TaskRec* parent = nullptr;
    std::atomic<int> children{0};
    TaskRec* pool_next = nullptr;
  };

  struct Deque {
    std::mutex mu;
    std::deque<TaskRec*> q;  // bottom = back, top = front
  };

  void worker_main(unsigned index);
  void run_one(TaskRec* t, unsigned self);
  bool pop_or_steal(unsigned self);
  TaskRec* allocate(unsigned self);
  void recycle(TaskRec* t, unsigned self);

  Options opt_;
  std::vector<Padded<Deque>> deques_;
  std::vector<Padded<TaskRec*>> pools_;  // per-worker free lists
  std::vector<Padded<Rng>> rngs_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> region_active_{false};

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace xk::baseline
