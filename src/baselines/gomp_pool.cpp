#include "baselines/gomp_pool.hpp"

namespace xk::baseline {

namespace {
thread_local GompLikePool::TaskRec* g_current = nullptr;
}  // namespace

GompLikePool::GompLikePool(unsigned nthreads, Options opt) : opt_(opt) {
  const unsigned extra = nthreads > 0 ? nthreads - 1 : 0;
  threads_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i) {
    threads_.emplace_back(&GompLikePool::worker_main, this);
  }
}

GompLikePool::~GompLikePool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  collect_garbage();
}

void GompLikePool::collect_garbage() {
  std::vector<TaskRec*> local;
  {
    std::lock_guard lock(mu_);
    // Tasks run through taskwait's child scan are taken without being
    // popped from queue_; drop those stale entries while holding mu_ so a
    // concurrent try_run_queued can never pop a record freed below.
    std::erase_if(queue_,
                  [](TaskRec* t) { return t->taken.load(std::memory_order_acquire); });
    local.swap(garbage_);
  }
  for (TaskRec* t : local) delete t;
}

void GompLikePool::run_one(TaskRec* t) {
  TaskRec* saved = g_current;
  g_current = t;
  t->fn();
  g_current = saved;
  if (t->parent != nullptr) {
    t->parent->children.fetch_sub(1, std::memory_order_acq_rel);
  }
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  executed_.fetch_add(1, std::memory_order_relaxed);
  // Records are kept until the region's barrier: parents still scan their
  // child lists from taskwait (matching GOMP, which also defers freeing).
  std::lock_guard lock(mu_);
  garbage_.push_back(t);
}

bool GompLikePool::try_run_queued() {
  TaskRec* t = nullptr;
  {
    std::lock_guard lock(mu_);
    while (!queue_.empty()) {
      TaskRec* cand = queue_.front();
      queue_.pop_front();
      if (!cand->taken.exchange(true, std::memory_order_acq_rel)) {
        t = cand;
        break;
      }
    }
  }
  if (t == nullptr) return false;
  run_one(t);
  return true;
}

bool GompLikePool::try_run_child_of(TaskRec* parent) {
  TaskRec* t = nullptr;
  {
    std::lock_guard lock(mu_);
    // Scan from the parent's cursor: earlier children are taken or done.
    while (parent->child_cursor < parent->child_list.size()) {
      TaskRec* cand = parent->child_list[parent->child_cursor];
      if (cand->taken.load(std::memory_order_acquire)) {
        ++parent->child_cursor;
        continue;
      }
      if (!cand->taken.exchange(true, std::memory_order_acq_rel)) {
        ++parent->child_cursor;
        t = cand;
      }
      break;
    }
  }
  if (t == nullptr) return false;
  run_one(t);
  return true;
}

void GompLikePool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (!queue_.empty() &&
                region_active_.load(std::memory_order_acquire)) ||
               epoch_ > seen;
      });
      if (shutdown_) return;
      seen = epoch_;
    }
    while (region_active_.load(std::memory_order_acquire)) {
      if (!try_run_queued()) std::this_thread::yield();
    }
  }
}

void GompLikePool::parallel(const std::function<void()>& master_fn) {
  TaskRec root;
  root.fn = nullptr;
  g_current = &root;
  region_active_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(mu_);
    ++epoch_;
  }
  work_cv_.notify_all();
  master_fn();
  // Implicit barrier: help until every queued task drained.
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (!try_run_queued()) std::this_thread::yield();
  }
  region_active_.store(false, std::memory_order_release);
  g_current = nullptr;
  collect_garbage();
}

void GompLikePool::spawn(std::function<void()> fn) {
  const auto limit = static_cast<std::uint64_t>(opt_.throttle_factor) *
                     static_cast<std::uint64_t>(nthreads());
  if (opt_.throttle && pending_.load(std::memory_order_relaxed) >= limit) {
    fn();  // inline past the throttle (GOMP's task-creation cutoff)
    return;
  }
  auto* t = new TaskRec();
  t->fn = std::move(fn);
  t->parent = g_current;
  if (g_current != nullptr) {
    g_current->children.fetch_add(1, std::memory_order_acq_rel);
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard lock(mu_);
    queue_.push_back(t);
    if (g_current != nullptr) g_current->child_list.push_back(t);
  }
  work_cv_.notify_one();
}

void GompLikePool::taskwait() {
  TaskRec* cur = g_current;
  if (cur == nullptr) return;
  // GOMP semantics: only *direct children* of the waiting task may execute
  // here. This is also what bounds the stack: nesting depth follows the
  // task tree depth instead of the queue length.
  while (cur->children.load(std::memory_order_acquire) != 0) {
    if (!try_run_child_of(cur)) std::this_thread::yield();
  }
}

}  // namespace xk::baseline
