#include "baselines/ws_classic.hpp"

namespace xk::baseline {

namespace {
thread_local void* g_current_task = nullptr;  // TaskRec* of the running task
thread_local unsigned g_self = 0;             // worker index within the pool
}  // namespace

ClassicWS::ClassicWS(unsigned nthreads, Options opt)
    : opt_(opt), deques_(nthreads), pools_(nthreads), rngs_(nthreads) {
  for (unsigned i = 0; i < nthreads; ++i) {
    rngs_[i].value = Rng(0x1234567 + i * 977);
    pools_[i].value = nullptr;
  }
  threads_.reserve(nthreads > 0 ? nthreads - 1 : 0);
  for (unsigned i = 1; i < nthreads; ++i) {
    threads_.emplace_back(&ClassicWS::worker_main, this, i);
  }
}

ClassicWS::~ClassicWS() {
  {
    std::lock_guard lock(park_mu_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  for (auto& pool : pools_) {
    TaskRec* t = pool.value;
    while (t != nullptr) {
      TaskRec* next = t->pool_next;
      delete t;
      t = next;
    }
  }
}

ClassicWS::TaskRec* ClassicWS::allocate(unsigned self) {
  if (opt_.pooled_tasks) {
    TaskRec*& head = pools_[self].value;
    if (head != nullptr) {
      TaskRec* t = head;
      head = t->pool_next;
      t->pool_next = nullptr;
      // xk-order: recycling an owner-local free-list record; the deque
      // publish that makes it stealable carries the release edge.
      t->children.store(0, std::memory_order_relaxed);
      return t;
    }
  }
  return new TaskRec();
}

void ClassicWS::recycle(TaskRec* t, unsigned self) {
  if (opt_.pooled_tasks) {
    t->fn = nullptr;
    t->parent = nullptr;
    t->pool_next = pools_[self].value;
    pools_[self].value = t;
  } else {
    delete t;
  }
}

void ClassicWS::run_one(TaskRec* t, unsigned self) {
  void* saved = g_current_task;
  g_current_task = t;
  t->fn();
  g_current_task = saved;
  // Completion requires the children to have completed too (taskwait inside
  // the body is the user's responsibility, as in Cilk/TBB; direct-children
  // accounting here mirrors those runtimes' reference counts).
  if (t->parent != nullptr) {
    t->parent->children.fetch_sub(1, std::memory_order_acq_rel);
  }
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  recycle(t, self);
}

void ClassicWS::spawn(std::function<void()> fn) {
  const unsigned self = g_self;
  TaskRec* t = allocate(self);
  t->fn = std::move(fn);
  t->parent = static_cast<TaskRec*>(g_current_task);
  if (t->parent != nullptr) {
    t->parent->children.fetch_add(1, std::memory_order_acq_rel);
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  Deque& d = deques_[self].value;
  {
    std::lock_guard lock(d.mu);
    d.q.push_back(t);
  }
}

bool ClassicWS::pop_or_steal(unsigned self) {
  // Own deque: bottom (LIFO, depth-first).
  {
    Deque& d = deques_[self].value;
    TaskRec* t = nullptr;
    {
      std::lock_guard lock(d.mu);
      if (!d.q.empty()) {
        t = d.q.back();
        d.q.pop_back();
      }
    }
    if (t != nullptr) {
      run_one(t, self);
      return true;
    }
  }
  // Steal: random victim, top (FIFO, oldest).
  const unsigned n = nthreads();
  if (n < 2) return false;
  const auto start = static_cast<unsigned>(rngs_[self]->next_below(n));
  for (unsigned k = 0; k < n; ++k) {
    const unsigned v = (start + k) % n;
    if (v == self) continue;
    Deque& d = deques_[v].value;
    TaskRec* t = nullptr;
    {
      std::lock_guard lock(d.mu);
      if (!d.q.empty()) {
        t = d.q.front();
        d.q.pop_front();
      }
    }
    if (t != nullptr) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      run_one(t, self);
      return true;
    }
  }
  return false;
}

void ClassicWS::worker_main(unsigned index) {
  g_self = index;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(park_mu_);
      park_cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    while (region_active_.load(std::memory_order_acquire)) {
      if (!pop_or_steal(index)) std::this_thread::yield();
    }
  }
}

void ClassicWS::parallel(const std::function<void()>& root) {
  g_self = 0;
  TaskRec root_rec;
  root_rec.fn = nullptr;
  g_current_task = &root_rec;
  region_active_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(park_mu_);
    ++epoch_;
  }
  park_cv_.notify_all();
  root();
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (!pop_or_steal(0)) std::this_thread::yield();
  }
  region_active_.store(false, std::memory_order_release);
  g_current_task = nullptr;
}

void ClassicWS::taskwait() {
  auto* cur = static_cast<TaskRec*>(g_current_task);
  if (cur == nullptr) return;
  const unsigned self = g_self;
  while (cur->children.load(std::memory_order_acquire) != 0) {
    // Pop only the own deque (LIFO) while waiting: the bottom task is the
    // most recently spawned child, so nesting follows the spawn tree.
    // Stealing from here would stack unrelated subtrees without bound
    // (Cilk avoids this via continuation stealing; TBB via depth limits).
    Deque& d = deques_[self].value;
    TaskRec* t = nullptr;
    {
      std::lock_guard lock(d.mu);
      if (!d.q.empty()) {
        t = d.q.back();
        d.q.pop_back();
      }
    }
    if (t != nullptr) {
      run_one(t, self);
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace xk::baseline
