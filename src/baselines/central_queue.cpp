#include "baselines/central_queue.hpp"

namespace xk::baseline {

CentralQueueRuntime::CentralQueueRuntime(unsigned nthreads) {
  threads_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    threads_.emplace_back(&CentralQueueRuntime::worker_main, this);
  }
}

CentralQueueRuntime::~CentralQueueRuntime() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  for (TaskNode* t : retired_) delete t;
  for (TaskNode* t : ready_) delete t;  // destruction without barrier()
}

void CentralQueueRuntime::insert(Body body, std::vector<CqAccess> accesses) {
  auto* node = new TaskNode{std::move(body), std::move(accesses), 0, {}, false};
  {
    std::lock_guard lock(mu_);
    // Eager dependency resolution against live uses (QUARK: at insertion).
    for (const CqAccess& acc : node->accesses) {
      if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch) {
        continue;
      }
      for (RegionUse& use : live_uses_) {
        if (use.task->done) continue;
        Access before{use.access.region, use.access.mode, 0, kNoArgOffset};
        Access after{acc.region, acc.mode, 0, kNoArgOffset};
        if (accesses_conflict(before, after)) {
          use.task->successors.push_back(node);
          ++node->npred;
        }
      }
    }
    for (const CqAccess& acc : node->accesses) {
      if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch) {
        continue;
      }
      live_uses_.push_back(RegionUse{node, acc});
    }
    ++pending_;
    if (node->npred == 0) {
      ready_.push_back(node);
      work_cv_.notify_one();
    }
  }
}

void CentralQueueRuntime::finish(TaskNode* t) {
  std::unique_lock lock(mu_);
  t->done = true;
  std::size_t woken = 0;
  for (TaskNode* succ : t->successors) {
    if (--succ->npred == 0) {
      ready_.push_back(succ);
      ++woken;
    }
  }
  // Garbage-collect completed uses occasionally to bound the scan cost the
  // way QUARK's window does. The node itself must stay alive: live_uses_
  // entries and predecessors' successor lists still point at it — it is
  // reclaimed at the barrier, when the whole graph has drained.
  if (live_uses_.size() > 4096) {
    std::erase_if(live_uses_, [](const RegionUse& u) { return u.task->done; });
  }
  retired_.push_back(t);
  --pending_;
  ++executed_;
  const bool all_done = pending_ == 0;
  lock.unlock();
  for (std::size_t i = 0; i < woken; ++i) work_cv_.notify_one();
  if (all_done) done_cv_.notify_all();
}

void CentralQueueRuntime::worker_main() {
  for (;;) {
    TaskNode* t = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !ready_.empty(); });
      if (shutdown_ && ready_.empty()) return;
      t = ready_.front();
      ready_.pop_front();
    }
    t->body();
    finish(t);
  }
}

void CentralQueueRuntime::barrier() {
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  // Graph drained: reclaim the retired nodes and reset the region history
  // so the next phase starts fresh.
  live_uses_.clear();
  for (TaskNode* t : retired_) delete t;
  retired_.clear();
}

std::uint64_t CentralQueueRuntime::executed() const {
  std::lock_guard lock(mu_);
  return executed_;
}

}  // namespace xk::baseline
