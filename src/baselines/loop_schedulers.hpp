// OpenMP-style loop schedulers on a persistent thread team — the Fig. 3
// comparators ("OpenMP /static" and "OpenMP /dynamic", plus guided).
//
//  * static : contiguous near-equal blocks, zero scheduling overhead,
//             no load balancing (GCC's schedule(static));
//  * dynamic: shared atomic chunk counter, fixed chunk size
//             (schedule(dynamic, chunk));
//  * guided : exponentially decreasing chunks, remaining/(2P) floor at
//             `chunk` (schedule(guided, chunk)).
//
// A LoopTeam keeps its threads parked between loops (like an OpenMP parallel
// region executing consecutive for-loops) and closes every loop with a
// sense-reversing barrier, the implicit barrier of `omp for`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/barrier.hpp"
#include "support/cache.hpp"

namespace xk::baseline {

enum class LoopSchedule { kStatic, kDynamic, kGuided };

class LoopTeam {
 public:
  /// Body receives [lo, hi) and the member index.
  using Body = std::function<void(std::int64_t, std::int64_t, unsigned)>;

  explicit LoopTeam(unsigned nthreads);
  ~LoopTeam();

  LoopTeam(const LoopTeam&) = delete;
  LoopTeam& operator=(const LoopTeam&) = delete;

  /// Runs one loop over [first, last); the caller participates as member 0
  /// and the call returns after the closing barrier.
  void run(std::int64_t first, std::int64_t last, LoopSchedule schedule,
           std::int64_t chunk, const Body& body);

  unsigned nthreads() const { return nthreads_; }

 private:
  struct LoopDesc {
    std::int64_t first = 0;
    std::int64_t last = 0;
    LoopSchedule schedule = LoopSchedule::kStatic;
    std::int64_t chunk = 1;
    const Body* body = nullptr;
    std::atomic<std::int64_t> next{0};  // dynamic/guided cursor
  };

  void member_main(unsigned index);
  void execute_share(unsigned index);

  const unsigned nthreads_;
  LoopDesc desc_;
  SenseBarrier end_barrier_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace xk::baseline
