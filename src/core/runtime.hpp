// Runtime: the thread pool and session management.
//
// "The execution of a X-KAAPI program ... starts by the creation of a pool of
// threads responsible to execute the tasks generated at runtime" (§II). The
// calling thread is registered as worker 0; `workers() - 1` additional
// threads are spawned and parked between parallel sections.
//
// Three usage styles:
//   Runtime rt(cfg);
//   rt.run([&]{ xk::spawn(...); xk::sync(); });          // scoped section
// or
//   rt.begin();  ...spawn/sync from the calling thread...  rt.end();
// or
//   JobToken t = rt.submit([]{ ... });  t.wait();        // service mode
// The second style backs long-lived clients such as the QUARK ABI layer
// (insert tasks / barrier / finalize); the third is the async job
// submission surface (see core/service.hpp and docs/SERVICE.md).
//
// Sections may overlap: up to Config::sections threads can hold open
// begin()/end() pairs concurrently. Each open section binds its caller to
// a distinct *master slot* — worker 0 plus Config::sections - 1 extra
// Worker instances that exist beyond the pool (ids >= nworkers()). All
// masters' frames are stealable by the pool; quiescence detection, the
// starvation gauges and the trace drain key off the *last* section
// closing, serialized by section_mu_.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/service.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"
#include "core/worker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/parker.hpp"
#include "topo/topology.hpp"

namespace xk {

class Runtime {
 public:
  explicit Runtime(Config cfg = Config::from_env());
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const Config& config() const { return cfg_; }

  /// Pool worker count (what benches, foreach partitioning and the victim
  /// draw's "how parallel is this machine" questions mean by "workers").
  unsigned nworkers() const { return nw_; }

  /// Pool workers plus the extra master slots (Config::sections - 1) that
  /// back overlapping sections. Protocol-level scans — join-waiter wakes,
  /// reqbox sizing, trace-ring drains — must span this count: a master's
  /// frames are stealable and its joins parkable like any pool worker's.
  unsigned nworkers_total() const {
    return static_cast<unsigned>(workers_.size());
  }

  Worker& worker(unsigned i) { return *workers_[i]; }

  /// The machine shape this runtime was placed on (real sysfs discovery or
  /// the XK_TOPO synthetic override) and the worker→(cpu, domain) map
  /// derived from it. Computed once at construction; read-only afterwards.
  const Topology& topology() const { return topo_; }
  const Placement& placement() const { return placement_; }

  /// Distinct locality domains actually occupied by workers (1 on a flat
  /// machine). The foreach auto-partition mode and the ready-list shard
  /// count key off this.
  unsigned ndomains() const { return placement_.ndomains; }

  /// Shared per-domain starvation gauges (see stats.hpp): thieves record
  /// failed local rounds / progress, ready-list shards record their depth,
  /// and both the victim draw and the combiner's reply deal consult the
  /// verdict. Sized to ndomains() at construction.
  StarvationBoard& starvation() { return starvation_; }
  const StarvationBoard& starvation() const { return starvation_; }

  /// Opens a parallel section: binds the caller to a free master slot
  /// (worker 0 when available), pushes its root frame and — if this is the
  /// first open section — wakes the pool. Throws std::logic_error when the
  /// calling thread is already bound (nesting) or when every one of the
  /// Config::sections master slots is busy.
  void begin();

  /// Closes the caller's section: drains its root frame (implicit sync),
  /// releases the master slot and unregisters the caller. The last section
  /// to close parks the pool and drains observability. Rethrows the first
  /// task exception.
  void end();

  /// Scoped section: begin(); fn(); end(). fn runs on the caller thread as
  /// the root task and may spawn/sync freely.
  template <typename Fn>
  void run(Fn&& fn) {
    begin();
    try {
      fn();
    } catch (...) {
      end_silent();
      throw;
    }
    end();
  }

  /// True while at least one section is open (spawn/sync are legal on the
  /// threads bound to those sections).
  bool in_section() const {
    return open_sections_.load(std::memory_order_acquire) > 0;
  }

  // ---- service mode (async job submission; see core/service.hpp) --------

  /// Submits a job from any thread (worker or not). The job body runs on
  /// the pool inside a dispatcher-owned section; the returned token
  /// supports completion waiting, cooperative + pre-execution
  /// cancellation, and error retrieval. A submit to a full tenant lane
  /// (Config::svc_queue_cap) returns an already-terminal kRejected token.
  /// The first submit lazily starts the service dispatcher thread.
  JobToken submit(std::function<void()> fn, SubmitOptions opts = {});

  /// Cancellation-aware variant: the body receives a JobContext to poll
  /// for cooperative cancellation (JobToken::request_cancel).
  JobToken submit(std::function<void(JobContext&)> fn,
                  SubmitOptions opts = {});

  /// Sets tenant `tenant`'s scheduling weight (see Config::svc_weights).
  void set_tenant_weight(unsigned tenant, unsigned weight);

  /// Service accounting (zeros when no submit ever happened).
  ServiceStats service_stats() const;

  /// Aggregated scheduler counters across all workers.
  WorkerStats stats_snapshot() const;

  /// Machine-readable telemetry: the aggregated counters in declaration
  /// order plus the starvation board's per-domain gauges (ready depth,
  /// failed rounds, occupancy) and the root occupancy count. The shape
  /// benches embed into their JSON reports, the trace file carries under
  /// "metrics", and XK_STATS dumps to stderr.
  obs::MetricsSnapshot metrics_snapshot() const;

  /// Resets all counters (between benchmark repetitions).
  void reset_stats();

  /// True when XK_TRACE armed the per-worker trace rings at construction.
  bool tracing() const { return trace_pid_ != 0; }

  /// Worker `i`'s trace ring, or nullptr when tracing is off (tests).
  obs::TraceRing* trace_ring(unsigned i) {
    return i < trace_rings_.size() ? trace_rings_[i].get() : nullptr;
  }

  /// Serialization guard for cumulative-write (reduction) task bodies: two
  /// CW tasks on overlapping regions are independent for the scheduler but
  /// their bodies must not interleave; the runtime hashes the region base to
  /// one of these locks around the body.
  std::mutex& cw_guard(std::uintptr_t base) {
    return cw_locks_[(base >> 6) % kCwLocks].value;
  }

  /// Idle-loop coordination: workers steal while a section is open.
  bool section_active() const {
    return section_active_.load(std::memory_order_acquire);
  }

  /// Eventcounts for in-section idle parking (see support/parker.hpp and
  /// docs/STEALING.md), split by what the sleeper waits for so wakeups
  /// stay targeted:
  ///  * work_parker — idle thieves waiting for anything stealable; woken
  ///    one at a time by task publication (any of them can take it);
  ///  * progress_parker — workers suspended on a shared predicate with
  ///    potentially several legitimate waiters (a foreach retiring);
  ///    these are few, so retirement can afford notify_all.
  /// A worker suspended on one specific stolen task waits on its private
  /// join parker instead (Worker::join_parker), woken exactly once by the
  /// finishing thief; section end is signalled once by the occupancy
  /// board's quiescence fold (StarvationBoard::arm_quiesce), which fires
  /// both shared parkers when the master's root-frame pop empties the
  /// machine. Neither event broadcasts per completion any more.
  Parker& work_parker() { return work_parker_; }
  Parker& progress_parker() { return progress_parker_; }

  /// New stealable work was published: wake one idle thief. Hot path — a
  /// probe load (or two) when nobody sleeps.
  void notify_work() {
    if (work_parker_.has_waiters()) work_parker_.notify_one();
  }

  /// A waited-on multi-waiter progress event fired (foreach retirement):
  /// wake every suspended waiter — waking the wrong single worker would
  /// leave the right one asleep until its timeout. Stolen-task completions
  /// no longer come through here (see Worker::wake_joiner).
  void notify_progress() {
    if (progress_parker_.has_waiters()) progress_parker_.notify_all();
  }


 private:
  friend class Worker;
  friend struct detail::ServiceState;

  void worker_main(unsigned index);
  void end_silent();  // end() that never throws (exception cleanup path)

  /// Lazily constructs the service dispatcher (first submit).
  detail::ServiceState& service();

  /// End-of-section observability: records the section span, drains every
  /// worker's trace ring into the global Chrome writer (after quiescing
  /// the pool — the same mutex edge stats_snapshot rides, so no ring is
  /// drained while its owner can still record), refreshes the writer's
  /// metrics snapshot, and honors XK_STATS. No-op when neither is armed.
  void drain_observability();

  /// Blocks until every pool worker is back in its between-sections wait
  /// (no-op while a section is open). Gives counter reads a defined order.
  void quiesce_pool() const;

  static constexpr std::size_t kCwLocks = 64;

  Config cfg_;
  unsigned nw_ = 0;  ///< pool worker count (workers_ also holds masters)
  Topology topo_;
  Placement placement_;
  StarvationBoard starvation_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Section lifecycle. section_mu_ serializes every master-slot claim /
  // release, the root-frame push/pop of each section, and the first-open /
  // last-close transitions (quiesce arming, pool wake, observability
  // drain) — so overlapping sections cannot double-drain a trace ring,
  // bleed starvation gauges across each other, or race a begin() against
  // the previous batch's ring copy-out. The invariant it maintains: while
  // the lock is free, open_sections_ equals the number of pushed master
  // root frames, so the board's root-occupancy count stays >= 1 for as
  // long as any section is open and the only firing 1->0 edge is the last
  // section's root pop. Lock order: section_mu_ before park_mutex_.
  std::mutex section_mu_;
  std::atomic<unsigned> open_sections_{0};
  std::vector<unsigned> master_slots_;  ///< worker ids usable as masters
  std::vector<char> master_open_;       ///< parallel to master_slots_
  // Checked-build (XK_CHECK=ON) section-batch accounting, written only
  // under section_mu_: a batch is first-open -> last-close, and the
  // observability drain must run exactly once per batch (the invariant
  // XK_EXPECT(section_drain) pins in begin()/end()). Plain fields so the
  // header layout does not depend on the build flavor; unused otherwise.
  std::uint64_t check_batches_ = 0;  ///< first-opens observed
  std::uint64_t check_drains_ = 0;   ///< last-close drains observed

  // Service mode (lazily created by the first submit; destroyed first in
  // ~Runtime so the dispatcher's sections close before pool shutdown).
  std::mutex service_mu_;
  std::atomic<detail::ServiceState*> service_live_{nullptr};
  std::unique_ptr<detail::ServiceState> service_;

  // Between-sections park/wake machinery (pool idle between begin/end
  // pairs). In-section idle parking goes through the Parkers instead.
  // Mutable: quiesce_pool() is conceptually const (stats readers).
  mutable std::mutex park_mutex_;
  mutable std::condition_variable park_cv_;
  mutable std::condition_variable idle_cv_;
  std::size_t idle_workers_ = 0;  ///< workers inside the park_cv_ wait
  Parker work_parker_;
  Parker progress_parker_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
  std::atomic<bool> section_active_{false};

  // Observability (src/obs/): one owner-written trace ring per worker
  // (masters included) when XK_TRACE armed tracing, the runtime's pid in
  // the process-global Chrome writer (0 = untraced), each master slot's
  // section span start stamp, and the XK_STATS stderr-dump flag.
  std::vector<std::unique_ptr<obs::TraceRing>> trace_rings_;
  int trace_pid_ = 0;
  std::vector<std::uint64_t> section_t0_;
  bool stats_dump_ = false;

  std::vector<Padded<std::mutex>> cw_locks_{kCwLocks};
};

}  // namespace xk
