// Runtime: the thread pool and session management.
//
// "The execution of a X-KAAPI program ... starts by the creation of a pool of
// threads responsible to execute the tasks generated at runtime" (§II). The
// calling thread is registered as worker 0; `workers() - 1` additional
// threads are spawned and parked between parallel sections.
//
// Two usage styles:
//   Runtime rt(cfg);
//   rt.run([&]{ xk::spawn(...); xk::sync(); });          // scoped section
// or
//   rt.begin();  ...spawn/sync from the calling thread...  rt.end();
// The second style backs long-lived clients such as the QUARK ABI layer
// (insert tasks / barrier / finalize).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"
#include "core/worker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/parker.hpp"
#include "topo/topology.hpp"

namespace xk {

class Runtime {
 public:
  explicit Runtime(Config cfg = Config::from_env());
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const Config& config() const { return cfg_; }
  unsigned nworkers() const { return static_cast<unsigned>(workers_.size()); }
  Worker& worker(unsigned i) { return *workers_[i]; }

  /// The machine shape this runtime was placed on (real sysfs discovery or
  /// the XK_TOPO synthetic override) and the worker→(cpu, domain) map
  /// derived from it. Computed once at construction; read-only afterwards.
  const Topology& topology() const { return topo_; }
  const Placement& placement() const { return placement_; }

  /// Distinct locality domains actually occupied by workers (1 on a flat
  /// machine). The foreach auto-partition mode and the ready-list shard
  /// count key off this.
  unsigned ndomains() const { return placement_.ndomains; }

  /// Shared per-domain starvation gauges (see stats.hpp): thieves record
  /// failed local rounds / progress, ready-list shards record their depth,
  /// and both the victim draw and the combiner's reply deal consult the
  /// verdict. Sized to ndomains() at construction.
  StarvationBoard& starvation() { return starvation_; }
  const StarvationBoard& starvation() const { return starvation_; }

  /// Opens a parallel section: registers the caller as worker 0, pushes the
  /// root frame and wakes the pool. Calls cannot nest.
  void begin();

  /// Closes the section: drains the root frame (implicit sync), parks the
  /// pool and unregisters the caller. Rethrows the first task exception.
  void end();

  /// Scoped section: begin(); fn(); end(). fn runs on the caller thread as
  /// the root task and may spawn/sync freely.
  template <typename Fn>
  void run(Fn&& fn) {
    begin();
    try {
      fn();
    } catch (...) {
      end_silent();
      throw;
    }
    end();
  }

  /// True while a section is open (spawn/sync are legal).
  bool in_section() const { return section_open_; }

  /// Aggregated scheduler counters across all workers.
  WorkerStats stats_snapshot() const;

  /// Machine-readable telemetry: the aggregated counters in declaration
  /// order plus the starvation board's per-domain gauges (ready depth,
  /// failed rounds, occupancy) and the root occupancy count. The shape
  /// benches embed into their JSON reports, the trace file carries under
  /// "metrics", and XK_STATS dumps to stderr.
  obs::MetricsSnapshot metrics_snapshot() const;

  /// Resets all counters (between benchmark repetitions).
  void reset_stats();

  /// True when XK_TRACE armed the per-worker trace rings at construction.
  bool tracing() const { return trace_pid_ != 0; }

  /// Worker `i`'s trace ring, or nullptr when tracing is off (tests).
  obs::TraceRing* trace_ring(unsigned i) {
    return i < trace_rings_.size() ? trace_rings_[i].get() : nullptr;
  }

  /// Serialization guard for cumulative-write (reduction) task bodies: two
  /// CW tasks on overlapping regions are independent for the scheduler but
  /// their bodies must not interleave; the runtime hashes the region base to
  /// one of these locks around the body.
  std::mutex& cw_guard(std::uintptr_t base) {
    return cw_locks_[(base >> 6) % kCwLocks].value;
  }

  /// Idle-loop coordination: workers steal while a section is open.
  bool section_active() const {
    return section_active_.load(std::memory_order_acquire);
  }

  /// Eventcounts for in-section idle parking (see support/parker.hpp and
  /// docs/STEALING.md), split by what the sleeper waits for so wakeups
  /// stay targeted:
  ///  * work_parker — idle thieves waiting for anything stealable; woken
  ///    one at a time by task publication (any of them can take it);
  ///  * progress_parker — workers suspended on a shared predicate with
  ///    potentially several legitimate waiters (a foreach retiring);
  ///    these are few, so retirement can afford notify_all.
  /// A worker suspended on one specific stolen task waits on its private
  /// join parker instead (Worker::join_parker), woken exactly once by the
  /// finishing thief; section end is signalled once by the occupancy
  /// board's quiescence fold (StarvationBoard::arm_quiesce), which fires
  /// both shared parkers when the master's root-frame pop empties the
  /// machine. Neither event broadcasts per completion any more.
  Parker& work_parker() { return work_parker_; }
  Parker& progress_parker() { return progress_parker_; }

  /// New stealable work was published: wake one idle thief. Hot path — a
  /// probe load (or two) when nobody sleeps.
  void notify_work() {
    if (work_parker_.has_waiters()) work_parker_.notify_one();
  }

  /// A waited-on multi-waiter progress event fired (foreach retirement):
  /// wake every suspended waiter — waking the wrong single worker would
  /// leave the right one asleep until its timeout. Stolen-task completions
  /// no longer come through here (see Worker::wake_joiner).
  void notify_progress() {
    if (progress_parker_.has_waiters()) progress_parker_.notify_all();
  }


 private:
  friend class Worker;

  void worker_main(unsigned index);
  void end_silent();  // end() that never throws (exception cleanup path)

  /// End-of-section observability: records the section span, drains every
  /// worker's trace ring into the global Chrome writer (after quiescing
  /// the pool — the same mutex edge stats_snapshot rides, so no ring is
  /// drained while its owner can still record), refreshes the writer's
  /// metrics snapshot, and honors XK_STATS. No-op when neither is armed.
  void drain_observability();

  /// Blocks until every pool worker is back in its between-sections wait
  /// (no-op while a section is open). Gives counter reads a defined order.
  void quiesce_pool() const;

  static constexpr std::size_t kCwLocks = 64;

  Config cfg_;
  Topology topo_;
  Placement placement_;
  StarvationBoard starvation_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Between-sections park/wake machinery (pool idle between begin/end
  // pairs). In-section idle parking goes through the Parkers instead.
  // Mutable: quiesce_pool() is conceptually const (stats readers).
  mutable std::mutex park_mutex_;
  mutable std::condition_variable park_cv_;
  mutable std::condition_variable idle_cv_;
  std::size_t idle_workers_ = 0;  ///< workers inside the park_cv_ wait
  Parker work_parker_;
  Parker progress_parker_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
  std::atomic<bool> section_active_{false};
  bool section_open_ = false;

  // Observability (src/obs/): one owner-written trace ring per worker when
  // XK_TRACE armed tracing, the runtime's pid in the process-global Chrome
  // writer (0 = untraced), the section span's start stamp, and the
  // XK_STATS stderr-dump flag.
  std::vector<std::unique_ptr<obs::TraceRing>> trace_rings_;
  int trace_pid_ = 0;
  std::uint64_t section_t0_ = 0;
  bool stats_dump_ = false;

  std::vector<Padded<std::mutex>> cw_locks_{kCwLocks};
};

}  // namespace xk
