// ReadyList — the "accelerating data structure for steal operations" (§II-C),
// sharded by locality domain with two-level graph/shard locking.
//
// "When the cost of computing ready tasks becomes important, the runtime
// attaches to the victim an accelerating data structure ... a list that gets
// updated with tasks becoming ready due to the completion of their data flow
// dependencies. A subsequent steal operation is reduced to the pop of a task
// from the ready list."
//
// Scope and soundness: the list covers one frame. Dependencies are computed
// from region overlap between the frame's tasks, with completion counted at
// Term (strict completion: body + descendants). Cross-frame conflicts are
// covered by the hierarchical-dataflow contract (a dataflow task spawning
// dataflow children declares accesses covering theirs — see spawn.hpp), which
// makes the per-frame graph conservative-correct.
//
// Sharding: the ready deque is split into one shard per locality domain
// (dense domain rank). Producers — the worker notifying a completion, the
// combiner covering tasks via extend() — push released tasks into *their
// own* domain's shard; consumers pop local-shard-first and cross into other
// shards only when their own runs dry, so on multi-domain machines the
// common case keeps a domain's release/steal traffic on that domain's cache
// lines and successors tend to run where their predecessor's output is hot.
// Flat machines construct one shard and keep the original global-FIFO
// behavior exactly. The optional StarvationBoard hook mirrors each shard's
// live depth into the runtime's per-domain gauges so "this domain has queued
// ready work" can veto the starvation verdict.
//
// Locking (XK_RL_LOCK=split, the default): two levels instead of the old
// single per-frame mutex, so a pop in one domain no longer stalls a
// completion in another.
//
//  * `graph_mu_` guards the dependence graph: `nodes_` growth, `index_`,
//    `early_completions_`, coverage (`covered_count_` + the frame-epoch
//    check), the live-access interval index and the watch deque. It is
//    taken by extend()/add_node, by the graph half of a completion, and by
//    the rare pop-side paths (claim-race folds, the lazy watch sweep,
//    batched watch registration) — never by the per-entry pop hot path.
//  * each `Shard{mutex, deque, depth}` guards its own ready deque. Pops
//    take only their home shard's lock, crossing other shards via try_lock
//    in rank order and falling back to blocking locks only when every
//    shard's try produced nothing. A completion's release batch takes
//    exactly one shard lock (the finisher's — all released successors are
//    routed there).
//
// Lock order is strictly graph_mu_ -> one shard mutex; no path ever holds
// two shard locks or acquires graph_mu_ while holding a shard lock.
//
// The release/acquire edge the old single lock provided — a completed
// task's memory effects are visible to whichever worker claims a successor
// — is re-established per shard: the finisher pushes released successors
// while holding the target shard's mutex, and the popper acquires that same
// mutex before reading the deque. When a successor has several
// predecessors, the non-final completions chain through `graph_mu_` (every
// completion's graph half runs under it) and, belt-and-braces, through the
// acq_rel read-modify-write chain on the atomic `npred` — the final
// decrementer observes every earlier decrementer's writes before it
// publishes the successor. `nready_` is a relaxed atomic used only for the
// O(1) "anything queued anywhere?" check on the pop path; shard mutexes
// provide the real ordering.
//
// XK_RL_LOCK=global restores the pre-split discipline — graph_mu_ taken at
// every public entry point, shard mutexes never touched — byte-for-byte
// reproducing the old pop order (the ablation baseline and a debugging
// fallback).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/frame.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"
#include "support/cache.hpp"

namespace xk {

/// Locking discipline for a ReadyList (the XK_RL_LOCK ablation knob):
/// kSplit = two-level graph/shard locking; kGlobal = the pre-split single
/// mutex (graph_mu_ serializes everything, exact old behavior).
enum class RlLockMode : std::uint8_t { kGlobal, kSplit };

class ReadyList {
 public:
  /// `nshards` is the runtime's dense domain count (1 collapses to the
  /// unsharded behavior); `board`, when given, tracks shard depths in the
  /// runtime's per-domain starvation gauges.
  explicit ReadyList(Frame& frame, unsigned nshards = 1,
                     StarvationBoard* board = nullptr,
                     RlLockMode lock_mode = RlLockMode::kSplit);
  ~ReadyList();

  ReadyList(const ReadyList&) = delete;
  ReadyList& operator=(const ReadyList&) = delete;

  unsigned nshards() const { return static_cast<unsigned>(shards_.size()); }
  RlLockMode lock_mode() const {
    return split_ ? RlLockMode::kSplit : RlLockMode::kGlobal;
  }

  /// Extends coverage to every task currently published in the frame.
  /// Called by the combiner (steal mutex held); initially-ready tasks land
  /// in the combiner's own `shard`. Detects a frame recycle through the
  /// frame epoch and drops every prior incarnation's coverage state first
  /// (stale early-completion records must never mark an address-aliased
  /// new task as already done).
  void extend(unsigned shard = 0);

  /// Pops the oldest ready task — local `shard` first — and claims it
  /// (Init -> StolenClaim). Returns nullptr when no covered task is ready
  /// and unclaimed in any shard.
  Task* pop_ready_claimed(unsigned shard = 0);

  /// Pops and claims up to `max` ready tasks (the batched-reply path: one
  /// combiner pass hands every waiting thief work). Pops drain the
  /// popper's own `shard` oldest-first before crossing into other shards
  /// (rank order, wrapping); `shard_hits`/`shard_misses`, when non-null,
  /// are incremented per pop with the local/cross split. Returns the
  /// number of tasks written to `out`.
  ///
  /// Under split locking a batch is *not* an atomic snapshot of the list:
  /// entries pushed by concurrent completions may or may not be seen, and
  /// an empty return only means every shard looked dry when probed.
  /// Callers (the combiner's pour/deal) already tolerate short batches —
  /// an unserved thief simply retries next round. Under XK_RL_LOCK=global
  /// the whole batch runs under one graph_mu_ acquisition, exactly the old
  /// single-lock semantics.
  std::size_t pop_ready_claimed_batch(Task** out, std::size_t max,
                                      unsigned shard = 0,
                                      std::uint64_t* shard_hits = nullptr,
                                      std::uint64_t* shard_misses = nullptr);

  /// Completion notification; must be invoked *before* the Term store by
  /// whoever finished the task, passing the finisher's domain `shard` (the
  /// producer-side routing: released successors join the finisher's
  /// shard). Unknown tasks (not yet covered) are recorded so a later
  /// extend() does not resurrect them.
  void on_complete(Task* t, unsigned shard = 0);

  /// Approximate live ready depth summed over every shard (relaxed reads
  /// of the per-shard depth gauges, no locks): the adaptive combiner's
  /// steal-half sizing input. Staleness only skews a reply size by a task
  /// or two — the deal itself still pops under the shard locks.
  std::int64_t approx_ready() const {
    std::int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.depth.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Diagnostics for tests.
  std::size_t covered() const;
  std::size_t ready_size() const;  ///< total queued over all shards (racy
                                   ///  under split locking: a relaxed read)
  std::size_t shard_ready_size(unsigned shard) const;  ///< deque length,
                                                       ///  dead ids included
  std::int64_t shard_live_depth(unsigned shard) const;  ///< live entries only
  std::size_t watched_size() const;
  std::size_t early_completion_count() const;
  std::uint64_t missed_folds() const;

 private:
  // Live-access interval index entry type (declared early: Node refs it).
  struct ChainEntry;
  using LiveMap = std::multimap<std::uintptr_t, ChainEntry>;

  /// One covered task. Nodes live in a std::deque so their addresses are
  /// stable while extend() grows the graph: shard deques and the watch
  /// list hold Node pointers that the pop path dereferences *without*
  /// graph_mu_, so node storage must never relocate.
  struct Node {
    Task* task = nullptr;
    /// Unreleased predecessor count. Atomic: the final decrementer's
    /// acq_rel RMW chains the memory effects of every earlier completion
    /// into the successor's publication even though pops never take
    /// graph_mu_ (all writers do hold graph_mu_; see the header comment).
    std::atomic<std::uint32_t> npred{0};
    /// Graph-side completion flag, written under graph_mu_. Atomic so the
    /// lock-free pop path can skip settled (dead) deque entries with a
    /// relaxed read instead of paying a graph_mu_ round trip; false->true
    /// is the only transition, so a stale false merely costs the lock.
    std::atomic<bool> completed{false};
    /// In the watch deque right now (guarded by graph_mu_). The dedupe
    /// flag: a node can qualify for watching more than once (covered while
    /// already claimed, then again on the pop-path claim-race branch);
    /// without it the lazy sweep walks duplicates forever.
    bool watched = false;
    /// Shard deque this node sits in, -1 if none. Settled (exchanged to
    /// -1) by whichever of pop and completion comes first, so the board's
    /// ready gauge and the shard's live depth are returned the moment the
    /// node completes, even while its (now dead) entry still waits in the
    /// deque — otherwise owner-executed tasks would leave phantom depth
    /// that vetoes legitimate starvation verdicts. Atomic: the split pop
    /// settles it after dropping the shard lock, completion settles it
    /// under graph_mu_ — the exchange itself is the only synchronization
    /// between them.
    std::atomic<std::int32_t> queued{-1};
    std::vector<Node*> successors;       ///< guarded by graph_mu_
    std::vector<LiveMap::iterator> live_refs;  ///< guarded by graph_mu_
  };

  struct ChainEntry {
    Node* node;
    const Access* acc;
  };

  /// One per-domain ready deque with its own lock (split mode; global mode
  /// leaves the mutex untouched and relies on graph_mu_). `depth` counts
  /// *live* queued nodes (the board-gauge mirror, maintained even without
  /// a board); the deque itself may additionally hold dead entries whose
  /// gauge was settled at completion.
  struct alignas(kCacheLine) Shard {
    std::mutex mu;
    std::deque<Node*> q;
    std::atomic<std::int64_t> depth{0};
  };

  /// RAII shard lock that collapses to a no-op in global mode (where
  /// graph_mu_, held by every caller, is the lock).
  class ShardGuard {
   public:
    ShardGuard(Shard& s, bool split) : mu_(split ? &s.mu : nullptr) {
      if (mu_ != nullptr) mu_->lock();
    }
    ~ShardGuard() {
      if (mu_ != nullptr) mu_->unlock();
    }
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

   private:
    std::mutex* mu_;
  };

  /// Maps a caller's domain rank onto a shard. Out-of-range ranks are only
  /// legitimate when the list collapsed to a single shard (XK_RL_SHARD=0 /
  /// flat machines funnel every rank into shard 0); with real shards an
  /// oversized rank is an upstream routing bug — assert in debug builds,
  /// and wrap by modulo (not fold onto shard 0) in release so a bad rank
  /// at least spreads instead of mis-crediting shard 0's board depth and
  /// hit/miss telemetry.
  unsigned wrap_shard(unsigned shard) const;

  // Graph-side helpers; caller holds graph_mu_ (and, in global mode, that
  // is the only lock anywhere).
  void check_epoch_graph_held();
  void check_epoch_pop_path();  // no locks held; takes graph_mu_ on mismatch
  void add_node_graph_held(Task* t, unsigned shard);
  std::size_t complete_node_graph_held(Node* n, unsigned shard);
  bool sweep_watch_graph_held(unsigned shard);
  void watch_graph_held(Node* n);
  void reset_coverage_graph_held();

  // Shard-side helpers.
  void push_ready_shard_held(Node* n, unsigned shard);
  void settle_queued(Node* n);
  Node* take_front_shard_held(unsigned rank, unsigned* from);
  Node* pop_entry_split(unsigned home, unsigned* from);

  std::size_t pop_batch_global(Task** out, std::size_t max, unsigned home,
                               std::uint64_t* shard_hits,
                               std::uint64_t* shard_misses);
  std::size_t pop_batch_split(Task** out, std::size_t max, unsigned home,
                              std::uint64_t* shard_hits,
                              std::uint64_t* shard_misses);
  void fold_or_watch(Node* n, unsigned home);

  Frame& frame_;
  StarvationBoard* board_;
  const bool split_;

  /// Graph lock (and, in global mode, the single list-wide lock).
  mutable std::mutex graph_mu_;

  // ---- guarded by graph_mu_ --------------------------------------------
  std::deque<Node> nodes_;  ///< stable addresses; grown by extend() only
  std::unordered_map<const Task*, Node*> index_;
  std::unordered_map<const Task*, bool> early_completions_;
  std::uint32_t covered_count_ = 0;
  /// Frame incarnation the coverage state matches. Written only under
  /// graph_mu_; atomic so the split pop path can pre-check "did the frame
  /// recycle under us?" with one relaxed load before touching any shard —
  /// on a mismatch it upgrades to graph_mu_ and resets. The reset itself
  /// is only reachable on a list that outlived Frame::reset(), which the
  /// owner performs with every task at Term and no scanner active, so no
  /// concurrent popper can hold a stale Node across it.
  std::atomic<std::uint64_t> frame_epoch_;

  // Live-access interval index: ordered by region lo() so a new access only
  // examines entries whose bounding interval can overlap. `max_span_` bounds
  // how far below lo() a candidate's start can be.
  LiveMap live_;
  std::uintptr_t max_span_ = 0;

  // Claimed-elsewhere nodes whose Term may race a notification (their
  // pre-Term load of frame.ready_list can miss the attach): watched in FIFO
  // order and lazily swept when every ready shard runs dry. O(claimed-in-
  // flight), and oldest claims fold first so successor release order tracks
  // the original ready order. Entries are deduplicated through
  // Node::watched.
  std::deque<Node*> watch_;
  std::uint64_t missed_folds_ = 0;

  /// extend()-local scratch for initially-ready nodes of the current
  /// coverage round, published under one shard-lock acquisition at the
  /// end of the round (guarded by graph_mu_ like every extend-side field;
  /// a member only to reuse its capacity across rounds).
  std::vector<Node*> extend_ready_scratch_;

  // ---- guarded per shard (split) / by graph_mu_ (global) ---------------
  std::vector<Shard> shards_;

  /// Total deque entries over all shards (dead ids included) — the O(1)
  /// empty check on the pop path. Relaxed: shard mutexes order the actual
  /// deque contents; a stale read costs one spurious probe or one benign
  /// early "dry" verdict.
  std::atomic<std::size_t> nready_{0};
};

}  // namespace xk
