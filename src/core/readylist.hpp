// ReadyList — the "accelerating data structure for steal operations" (§II-C),
// sharded by locality domain.
//
// "When the cost of computing ready tasks becomes important, the runtime
// attaches to the victim an accelerating data structure ... a list that gets
// updated with tasks becoming ready due to the completion of their data flow
// dependencies. A subsequent steal operation is reduced to the pop of a task
// from the ready list."
//
// Scope and soundness: the list covers one frame. Dependencies are computed
// from region overlap between the frame's tasks, with completion counted at
// Term (strict completion: body + descendants). Cross-frame conflicts are
// covered by the hierarchical-dataflow contract (a dataflow task spawning
// dataflow children declares accesses covering theirs — see spawn.hpp), which
// makes the per-frame graph conservative-correct.
//
// Sharding: the ready deque is split into one shard per locality domain
// (dense domain rank). Producers — the worker notifying a completion, the
// combiner covering tasks via extend() — push released tasks into *their
// own* domain's shard; consumers pop local-shard-first and cross into other
// shards only when their own runs dry, so on multi-domain machines the
// common case keeps a domain's release/steal traffic on that domain's cache
// lines and successors tend to run where their predecessor's output is hot.
// Flat machines construct one shard and keep the original global-FIFO
// behavior exactly. The optional StarvationBoard hook mirrors each shard's
// depth into the runtime's per-domain gauges so "this domain has queued
// ready work" can veto the starvation verdict.
//
// Locking: every mutation (extend / completion / pop) happens under `mu_`.
// The dependence graph (nodes_, index_, live_) is shared across shards, so
// sharding splits the *deques* (routing + cache locality), not the lock;
// combiner passes already serialize on the victim's steal mutex above this
// one. The lock also provides the release/acquire edge that makes a
// completed task's memory effects visible to the worker that claims a
// successor from any shard.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/frame.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"

namespace xk {

class ReadyList {
 public:
  /// `nshards` is the runtime's dense domain count (1 collapses to the
  /// unsharded behavior); `board`, when given, tracks shard depths in the
  /// runtime's per-domain starvation gauges.
  explicit ReadyList(Frame& frame, unsigned nshards = 1,
                     StarvationBoard* board = nullptr);
  ~ReadyList();

  ReadyList(const ReadyList&) = delete;
  ReadyList& operator=(const ReadyList&) = delete;

  unsigned nshards() const { return static_cast<unsigned>(shards_.size()); }

  /// Extends coverage to every task currently published in the frame.
  /// Called by the combiner (steal mutex held); initially-ready tasks land
  /// in the combiner's own `shard`.
  void extend(unsigned shard = 0);

  /// Pops the oldest ready task — local `shard` first — and claims it
  /// (Init -> StolenClaim). Returns nullptr when no covered task is ready
  /// and unclaimed in any shard.
  Task* pop_ready_claimed(unsigned shard = 0);

  /// Pops and claims up to `max` ready tasks under a single lock
  /// acquisition (the batched-reply path: one combiner pass hands every
  /// waiting thief work without re-taking the mutex per task). Pops drain
  /// the popper's own `shard` oldest-first before crossing into other
  /// shards (rank order, wrapping); `shard_hits`/`shard_misses`, when
  /// non-null, are incremented per pop with the local/cross split. Returns
  /// the number of tasks written to `out`.
  std::size_t pop_ready_claimed_batch(Task** out, std::size_t max,
                                      unsigned shard = 0,
                                      std::uint64_t* shard_hits = nullptr,
                                      std::uint64_t* shard_misses = nullptr);

  /// Completion notification; must be invoked *before* the Term store by
  /// whoever finished the task, passing the finisher's domain `shard` (the
  /// producer-side routing: released successors join the finisher's
  /// shard). Unknown tasks (not yet covered) are recorded so a later
  /// extend() does not resurrect them.
  void on_complete(Task* t, unsigned shard = 0);

  /// Diagnostics for tests.
  std::size_t covered() const;
  std::size_t ready_size() const;  ///< total over all shards
  std::size_t shard_ready_size(unsigned shard) const;
  std::size_t watched_size() const;
  std::uint64_t missed_folds() const;

 private:
  struct Node {
    Task* task = nullptr;
    std::uint32_t npred = 0;
    bool completed = false;
    std::int32_t queued = -1;  ///< shard deque this node sits in, -1 if none;
                               ///  keyed so the board's ready gauge can be
                               ///  returned the moment the node completes,
                               ///  even while its (now dead) id still waits
                               ///  in the deque — otherwise owner-executed
                               ///  tasks would leave phantom depth that
                               ///  vetoes legitimate starvation verdicts
    std::vector<std::uint32_t> successors;
  };

  // One live access chain entry: a non-completed covered task's access.
  struct ChainEntry {
    std::uint32_t node;
    const Access* acc;
  };

  unsigned clamp_shard(unsigned shard) const {
    return shard < nshards() ? shard : 0;
  }
  void push_ready_locked(std::uint32_t id, unsigned shard);
  void unaccount_ready_locked(std::uint32_t id);
  void add_node_locked(Task* t, unsigned shard);
  void complete_node_locked(std::uint32_t id, unsigned shard);
  std::size_t pop_batch_locked(Task** out, std::size_t max, unsigned shard,
                               std::uint64_t* shard_hits,
                               std::uint64_t* shard_misses);
  bool sweep_watch_locked(unsigned shard);

  Frame& frame_;
  StarvationBoard* board_;
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::unordered_map<const Task*, std::uint32_t> index_;
  std::unordered_map<const Task*, bool> early_completions_;

  // Per-domain ready shards; `nready_` caches the total so the empty check
  // on the pop path stays O(1) regardless of shard count.
  std::vector<std::deque<std::uint32_t>> shards_;
  std::size_t nready_ = 0;
  std::uint32_t covered_count_ = 0;

  // Live-access interval index: ordered by region lo() so a new access only
  // examines entries whose bounding interval can overlap. `max_span_` bounds
  // how far below lo() a candidate's start can be.
  std::multimap<std::uintptr_t, ChainEntry> live_;
  std::vector<std::vector<std::multimap<std::uintptr_t, ChainEntry>::iterator>>
      live_refs_;  // per node: its live_ entries, erased at completion
  std::uintptr_t max_span_ = 0;

  // Claimed-elsewhere nodes whose Term may race a notification (their
  // pre-Term load of frame.ready_list can miss the attach): watched in FIFO
  // order and lazily swept when every ready shard runs dry. This replaces
  // the old rotating full-node catch-up sweep — O(claimed-in-flight), not
  // O(covered), and oldest claims fold first so successor release order
  // tracks the original ready order.
  std::deque<std::uint32_t> watch_;
  std::uint64_t missed_folds_ = 0;
};

}  // namespace xk
