// ReadyList — the "accelerating data structure for steal operations" (§II-C).
//
// "When the cost of computing ready tasks becomes important, the runtime
// attaches to the victim an accelerating data structure ... a list that gets
// updated with tasks becoming ready due to the completion of their data flow
// dependencies. A subsequent steal operation is reduced to the pop of a task
// from the ready list."
//
// Scope and soundness: the list covers one frame. Dependencies are computed
// from region overlap between the frame's tasks, with completion counted at
// Term (strict completion: body + descendants). Cross-frame conflicts are
// covered by the hierarchical-dataflow contract (a dataflow task spawning
// dataflow children declares accesses covering theirs — see spawn.hpp), which
// makes the per-frame graph conservative-correct.
//
// Locking: every mutation (extend / completion / pop) happens under `mu_`.
// Combiners call extend/pop while holding the victim's steal mutex; runners
// call on_complete right before publishing Term. The lock also provides the
// release/acquire edge that makes a completed task's memory effects visible
// to the worker that claims a successor from the list.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/frame.hpp"
#include "core/task.hpp"

namespace xk {

class ReadyList {
 public:
  explicit ReadyList(Frame& frame) : frame_(frame) {}

  ReadyList(const ReadyList&) = delete;
  ReadyList& operator=(const ReadyList&) = delete;

  /// Extends coverage to every task currently published in the frame.
  /// Called by the combiner (steal mutex held).
  void extend();

  /// Pops the oldest ready task and claims it (Init -> StolenClaim).
  /// Returns nullptr when no covered task is ready and unclaimed.
  Task* pop_ready_claimed();

  /// Pops and claims up to `max` ready tasks under a single lock
  /// acquisition (the batched-reply path: one combiner pass hands every
  /// waiting thief work without re-taking the mutex per task). Returns the
  /// number of tasks written to `out`, oldest-ready first.
  std::size_t pop_ready_claimed_batch(Task** out, std::size_t max);

  /// Completion notification; must be invoked *before* the Term store by
  /// whoever finished the task. Unknown tasks (not yet covered) are recorded
  /// so a later extend() does not resurrect them.
  void on_complete(Task* t);

  /// Diagnostics for tests.
  std::size_t covered() const;
  std::size_t ready_size() const;
  std::size_t watched_size() const;
  std::uint64_t missed_folds() const;

 private:
  struct Node {
    Task* task = nullptr;
    std::uint32_t npred = 0;
    bool completed = false;
    std::vector<std::uint32_t> successors;
  };

  // One live access chain entry: a non-completed covered task's access.
  struct ChainEntry {
    std::uint32_t node;
    const Access* acc;
  };

  void add_node_locked(Task* t);
  void complete_node_locked(std::uint32_t id);
  std::size_t pop_batch_locked(Task** out, std::size_t max);
  bool sweep_watch_locked();

  Frame& frame_;
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::unordered_map<const Task*, std::uint32_t> index_;
  std::unordered_map<const Task*, bool> early_completions_;
  std::deque<std::uint32_t> ready_;
  std::uint32_t covered_count_ = 0;

  // Live-access interval index: ordered by region lo() so a new access only
  // examines entries whose bounding interval can overlap. `max_span_` bounds
  // how far below lo() a candidate's start can be.
  std::multimap<std::uintptr_t, ChainEntry> live_;
  std::vector<std::vector<std::multimap<std::uintptr_t, ChainEntry>::iterator>>
      live_refs_;  // per node: its live_ entries, erased at completion
  std::uintptr_t max_span_ = 0;

  // Claimed-elsewhere nodes whose Term may race a notification (their
  // pre-Term load of frame.ready_list can miss the attach): watched in FIFO
  // order and lazily swept when the ready deque runs dry. This replaces the
  // old rotating full-node catch-up sweep — O(claimed-in-flight), not
  // O(covered), and oldest claims fold first so successor release order
  // tracks the original ready order.
  std::deque<std::uint32_t> watch_;
  std::uint64_t missed_folds_ = 0;
};

}  // namespace xk
