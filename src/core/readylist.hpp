// ReadyList — the "accelerating data structure for steal operations" (§II-C),
// sharded by locality domain with two-level graph/shard locking.
//
// "When the cost of computing ready tasks becomes important, the runtime
// attaches to the victim an accelerating data structure ... a list that gets
// updated with tasks becoming ready due to the completion of their data flow
// dependencies. A subsequent steal operation is reduced to the pop of a task
// from the ready list."
//
// Scope and soundness: the list covers one frame. Dependencies are computed
// from region overlap between the frame's tasks, with completion counted at
// Term (strict completion: body + descendants). Cross-frame conflicts are
// covered by the hierarchical-dataflow contract (a dataflow task spawning
// dataflow children declares accesses covering theirs — see spawn.hpp), which
// makes the per-frame graph conservative-correct.
//
// Sharding: the ready deque is split into one shard per locality domain
// (dense domain rank). Producers — the worker notifying a completion, the
// combiner covering tasks via extend() — push released tasks into *their
// own* domain's shard; consumers pop local-shard-first and cross into other
// shards only when their own runs dry, so on multi-domain machines the
// common case keeps a domain's release/steal traffic on that domain's cache
// lines and successors tend to run where their predecessor's output is hot.
// Flat machines construct one shard and keep the original global-FIFO
// behavior exactly. The optional StarvationBoard hook mirrors each shard's
// live depth into the runtime's per-domain gauges so "this domain has queued
// ready work" can veto the starvation verdict.
//
// Locking (XK_RL_LOCK=split, the default): two levels instead of the old
// single per-frame mutex, so a pop in one domain no longer stalls a
// completion in another.
//
//  * `graph_mu_` guards the dependence graph: `nodes_` growth, `index_`,
//    `early_completions_`, coverage (`covered_count_` + the frame-epoch
//    check), the live-access interval index and the watch deque. It is
//    taken by extend()/add_node, by the graph half of a completion, and by
//    the rare pop-side paths (claim-race folds, the lazy watch sweep,
//    batched watch registration) — never by the per-entry pop hot path.
//  * each `Shard{mutex, deque, depth}` guards its own ready deque. Pops
//    take only their home shard's lock, crossing other shards via try_lock
//    in rank order and falling back to blocking locks only when every
//    shard's try produced nothing. A completion's release batch takes
//    exactly one shard lock (the finisher's — all released successors are
//    routed there).
//
// Lock order is strictly graph_mu_ -> one shard mutex; no path ever holds
// two shard locks or acquires graph_mu_ while holding a shard lock.
//
// The release/acquire edge the old single lock provided — a completed
// task's memory effects are visible to whichever worker claims a successor
// — is re-established per shard: the finisher pushes released successors
// while holding the target shard's mutex, and the popper acquires that same
// mutex before reading the deque. When a successor has several
// predecessors, the non-final completions chain through `graph_mu_` (every
// completion's graph half runs under it) and, belt-and-braces, through the
// acq_rel read-modify-write chain on the atomic `npred` — the final
// decrementer observes every earlier decrementer's writes before it
// publishes the successor. `nready_` is a relaxed atomic used only for the
// O(1) "anything queued anywhere?" check on the pop path; shard mutexes
// provide the real ordering.
//
// XK_RL_LOCK=global restores the pre-split discipline — graph_mu_ taken at
// every public entry point, shard mutexes never touched — byte-for-byte
// reproducing the old pop order (the ablation baseline and a debugging
// fallback).
//
// XK_RL_LOCK=lockfree goes the rest of the way: the pop and completion hot
// paths stop taking any mutex at all. graph_mu_ still guards coverage
// growth (extend/add_node), the watch machinery and the rare fold paths —
// those run at combiner cadence — but the per-task steady state becomes:
//
//  * each shard's primary queue is a bounded MPMC ring (support/ring.hpp,
//    kRingCapacity entries, per-slot sequence counters). A full ring
//    spills to the shard's mutex-guarded side deque — the old deque,
//    demoted to overflow duty — and pushes keep landing there until the
//    side deque drains, so ring entries predate side entries and
//    per-shard FIFO order survives the spill (best-effort: the divert
//    gate is read without the side mutex, and a pusher observing a stale
//    empty gauge can ring a node ahead of older spilled entries — see
//    push_ready_lockfree). The ring's seq release/acquire pair replaces
//    the shard mutex as the edge handing a finisher's writes to the
//    popper.
//  * a completion looks its node up in a lock-free open-addressed index
//    (atomic Node* slots keyed by Task*; inserted and grown only under
//    graph_mu_, read with one acquire load per probe). A miss — racing
//    grow, or a task covered after it completed — degrades to the old
//    graph_mu_ slow path against the authoritative map.
//  * the completion itself runs under the node's one-byte edge spinlock
//    (leaf lock, spin-only): it marks the node completed and takes the
//    successor list in O(1), so it cannot race extend() appending edges.
//    add_node takes the same spinlock per conflict edge and re-checks
//    `completed` under it — either the edge lands before the completion
//    swallows the list (and gets decremented), or it observes the
//    completion and never counts the predecessor. The scan's *unlocked*
//    pre-check rides a dedicated release/acquire pair on `completed`
//    instead: skipping an edge means the successor can publish with no
//    decrement from that predecessor, so the flag load is the edge
//    carrying its body writes.
//  * live-access-interval retirement is deferred: a lock-free completion
//    pushes its node onto a Treiber stack instead of erasing live_ (a
//    graph_mu_ structure); extend() and the watch sweep — the places that
//    next need an accurate interval index, and which already hold
//    graph_mu_ — drain the stack first. Until then the completed
//    predecessor's intervals linger but are skipped by add_node's
//    `completed` check, exactly like the old same-lock path.
//  * a node under construction carries a +1 npred bias so a concurrent
//    predecessor completion can never release it mid-add_node (its edge
//    and interval sets are still growing); add_node's final bias release
//    is the decrement that decides initially-ready.
//
// Lock order gains one leaf level: graph_mu_ -> edge spinlock -> side-deque
// mutex; no path acquires in the reverse direction. `split` and `global`
// never touch the ring, the spinlock or the index table — their code paths
// are untouched ablation baselines.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"  // RlLockMode
#include "core/frame.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"
#include "support/cache.hpp"
#include "support/ring.hpp"

namespace xk {

class ReadyList {
 public:
  /// `nshards` is the runtime's dense domain count (1 collapses to the
  /// unsharded behavior); `board`, when given, tracks shard depths in the
  /// runtime's per-domain starvation gauges.
  explicit ReadyList(Frame& frame, unsigned nshards = 1,
                     StarvationBoard* board = nullptr,
                     RlLockMode lock_mode = RlLockMode::kSplit);
  ~ReadyList();

  ReadyList(const ReadyList&) = delete;
  ReadyList& operator=(const ReadyList&) = delete;

  /// Ring capacity per shard in lockfree mode (power of two; overflow
  /// spills to the shard's side deque). Public so tests can drive the
  /// spill path deterministically.
  static constexpr std::size_t kRingCapacity = 512;

  unsigned nshards() const { return static_cast<unsigned>(shards_.size()); }
  RlLockMode lock_mode() const { return mode_; }

  /// Extends coverage to every task currently published in the frame.
  /// Called by the combiner (steal mutex held); initially-ready tasks land
  /// in the combiner's own `shard`. Detects a frame recycle through the
  /// frame epoch and drops every prior incarnation's coverage state first
  /// (stale early-completion records must never mark an address-aliased
  /// new task as already done).
  void extend(unsigned shard = 0);

  /// Pops the oldest ready task — local `shard` first — and claims it
  /// (Init -> StolenClaim). Returns nullptr when no covered task is ready
  /// and unclaimed in any shard. `shard_hits`/`shard_misses`, when
  /// non-null, record whether the pop was served by the caller's own
  /// shard or crossed into another domain's (same telemetry contract as
  /// the batch form — previously the single-pop path discarded the split
  /// and cross-shard pops were indistinguishable from local ones).
  Task* pop_ready_claimed(unsigned shard = 0,
                          std::uint64_t* shard_hits = nullptr,
                          std::uint64_t* shard_misses = nullptr);

  /// Pops and claims up to `max` ready tasks (the batched-reply path: one
  /// combiner pass hands every waiting thief work). Pops drain the
  /// popper's own `shard` oldest-first before crossing into other shards
  /// (rank order, wrapping); `shard_hits`/`shard_misses`, when non-null,
  /// are incremented per pop with the local/cross split. Returns the
  /// number of tasks written to `out`.
  ///
  /// Under split locking a batch is *not* an atomic snapshot of the list:
  /// entries pushed by concurrent completions may or may not be seen, and
  /// an empty return only means every shard looked dry when probed.
  /// Callers (the combiner's pour/deal) already tolerate short batches —
  /// an unserved thief simply retries next round. Under XK_RL_LOCK=global
  /// the whole batch runs under one graph_mu_ acquisition, exactly the old
  /// single-lock semantics.
  /// Under `lockfree`, pops are mutex-free (ring first, side deque on
  /// spill) and `stats`, when given, receives the ring contention/spill
  /// counters (rl_ring_retries / rl_side_pops).
  std::size_t pop_ready_claimed_batch(Task** out, std::size_t max,
                                      unsigned shard = 0,
                                      std::uint64_t* shard_hits = nullptr,
                                      std::uint64_t* shard_misses = nullptr,
                                      WorkerStats* stats = nullptr);

  /// Completion notification; must be invoked *before* the Term store by
  /// whoever finished the task, passing the finisher's domain `shard` (the
  /// producer-side routing: released successors join the finisher's
  /// shard). Unknown tasks (not yet covered) are recorded so a later
  /// extend() does not resurrect them. Under `lockfree` the common case
  /// (node indexed, successors released into the ring) never takes a
  /// mutex; `stats`, when given, receives the ring telemetry.
  void on_complete(Task* t, unsigned shard = 0, WorkerStats* stats = nullptr);

  /// Approximate live ready depth summed over every shard (relaxed reads
  /// of the per-shard depth gauges, no locks): the adaptive combiner's
  /// steal-half sizing input. Staleness only skews a reply size by a task
  /// or two — the deal itself still pops under the shard locks.
  std::int64_t approx_ready() const {
    std::int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.depth.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Diagnostics for tests.
  std::size_t covered() const;
  std::size_t ready_size() const;  ///< total queued over all shards (racy
                                   ///  under split locking: a relaxed read)
  std::size_t shard_ready_size(unsigned shard) const;  ///< deque length,
                                                       ///  dead ids included
  std::int64_t shard_live_depth(unsigned shard) const;  ///< live entries only
  std::size_t watched_size() const;
  std::size_t early_completion_count() const;
  std::uint64_t missed_folds() const;
  // Lockfree-mode internals telemetry (always 0 in split/global). The
  // list-internal mirrors exist so white-box tests — which pass no
  // WorkerStats — can still observe spills and contention.
  std::uint64_t ring_spills() const {
    return ring_spills_.load(std::memory_order_relaxed);
  }
  std::uint64_t side_pops() const {
    return side_pops_.load(std::memory_order_relaxed);
  }
  std::size_t retire_pending() const;  ///< completed nodes awaiting the
                                       ///  next graph_mu_ retirement drain

 private:
  // Live-access interval index entry type (declared early: Node refs it).
  struct ChainEntry;
  using LiveMap = std::multimap<std::uintptr_t, ChainEntry>;

  /// One covered task. Nodes live in a std::deque so their addresses are
  /// stable while extend() grows the graph: shard deques and the watch
  /// list hold Node pointers that the pop path dereferences *without*
  /// graph_mu_, so node storage must never relocate.
  struct Node {
    Task* task = nullptr;
    /// Unreleased predecessor count. Atomic: the final decrementer's
    /// acq_rel RMW chains the memory effects of every earlier completion
    /// into the successor's publication even though pops never take
    /// graph_mu_ (all writers do hold graph_mu_; see the header comment).
    std::atomic<std::uint32_t> npred{0};
    /// Graph-side completion flag, written under graph_mu_ (split/global)
    /// or by the mutex-free completer (lockfree). Atomic so the pop path
    /// can skip settled (dead) deque entries with a relaxed read instead
    /// of paying a graph_mu_ round trip; false->true is the only
    /// transition, so a stale false merely costs the lock. In lockfree
    /// mode the completer's store is a RELEASE and add_node's unlocked
    /// conflict-scan pre-check loads it with ACQUIRE: observing the flag
    /// there skips the conflict edge, so the flag itself must carry the
    /// predecessor's body writes to the successor it stops gating.
    std::atomic<bool> completed{false};
    /// In the watch deque right now (guarded by graph_mu_). The dedupe
    /// flag: a node can qualify for watching more than once (covered while
    /// already claimed, then again on the pop-path claim-race branch);
    /// without it the lazy sweep walks duplicates forever.
    bool watched = false;
    /// Shard deque this node sits in, -1 if none. Settled (exchanged to
    /// -1) by whichever of pop and completion comes first, so the board's
    /// ready gauge and the shard's live depth are returned the moment the
    /// node completes, even while its (now dead) entry still waits in the
    /// deque — otherwise owner-executed tasks would leave phantom depth
    /// that vetoes legitimate starvation verdicts. Atomic: the split pop
    /// settles it after dropping the shard lock, completion settles it
    /// under graph_mu_ — the exchange itself is the only synchronization
    /// between them.
    std::atomic<std::int32_t> queued{-1};
    /// One-byte edge spinlock (lockfree mode only; split/global never
    /// touch it). Serializes add_node's edge appends against the
    /// completion's {mark completed, take successors} — the only two
    /// touchers of `successors` once completions stop holding graph_mu_.
    /// A leaf lock: held for a handful of instructions, never while
    /// acquiring anything else.
    std::atomic<std::uint8_t> edge_lock{0};
    /// Treiber-stack link for deferred live-interval retirement (lockfree
    /// mode): written once by the completing worker (before the CAS that
    /// publishes the node on retire_head_), consumed under graph_mu_.
    Node* retire_next = nullptr;
    std::vector<Node*> successors;  ///< guarded by graph_mu_ (split/global)
                                    ///  or by edge_lock (lockfree)
    std::vector<LiveMap::iterator> live_refs;  ///< guarded by graph_mu_
  };

  struct ChainEntry {
    Node* node;
    const Access* acc;
  };

  /// One per-domain ready queue. Split mode: `q` is the primary deque
  /// under `mu` (global mode leaves the mutex untouched and relies on
  /// graph_mu_). Lockfree mode: `ring` is the primary queue and `q`+`mu`
  /// are demoted to the overflow side deque (`side` mirrors its length so
  /// the pop path can skip the mutex when there is nothing spilled).
  /// `depth` counts *live* queued nodes (the board-gauge mirror,
  /// maintained even without a board); the queues themselves may
  /// additionally hold dead entries whose gauge was settled at completion.
  struct alignas(kCacheLine) Shard {
    std::mutex mu;
    std::deque<Node*> q;
    std::atomic<std::int64_t> depth{0};
    std::unique_ptr<MpmcRing<Node*>> ring;  ///< allocated in lockfree mode
    std::atomic<std::int64_t> side{0};      ///< spilled entries in q
  };

  /// RAII shard lock that collapses to a no-op in global mode (where
  /// graph_mu_, held by every caller, is the lock).
  class ShardGuard {
   public:
    ShardGuard(Shard& s, bool split) : mu_(split ? &s.mu : nullptr) {
      if (mu_ != nullptr) mu_->lock();
    }
    ~ShardGuard() {
      if (mu_ != nullptr) mu_->unlock();
    }
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

   private:
    std::mutex* mu_;
  };

  /// Maps a caller's domain rank onto a shard. Out-of-range ranks are only
  /// legitimate when the list collapsed to a single shard (XK_RL_SHARD=0 /
  /// flat machines funnel every rank into shard 0); with real shards an
  /// oversized rank is an upstream routing bug — assert in debug builds,
  /// and wrap by modulo (not fold onto shard 0) in release so a bad rank
  /// at least spreads instead of mis-crediting shard 0's board depth and
  /// hit/miss telemetry.
  unsigned wrap_shard(unsigned shard) const;

  // Graph-side helpers; caller holds graph_mu_ (and, in global mode, that
  // is the only lock anywhere).
  void check_epoch_graph_held();
  void check_epoch_pop_path();  // no locks held; takes graph_mu_ on mismatch
  void add_node_graph_held(Task* t);
  std::size_t complete_node_graph_held(Node* n, unsigned shard);
  bool sweep_watch_graph_held(unsigned shard);
  void watch_graph_held(Node* n);
  void reset_coverage_graph_held();

  // Shard-side helpers.
  void push_ready_shard_held(Node* n, unsigned shard);
  void settle_queued(Node* n);
  Node* take_front_shard_held(unsigned rank, unsigned* from);
  Node* pop_entry_split(unsigned home, unsigned* from);

  std::size_t pop_batch_global(Task** out, std::size_t max, unsigned home,
                               std::uint64_t* shard_hits,
                               std::uint64_t* shard_misses);
  std::size_t pop_batch_split(Task** out, std::size_t max, unsigned home,
                              std::uint64_t* shard_hits,
                              std::uint64_t* shard_misses,
                              WorkerStats* stats);
  void fold_or_watch(Node* n, unsigned home);

  // ---- lockfree-mode helpers (mode_ == kLockFree only) -----------------

  /// One-byte test-and-set spin on Node::edge_lock (leaf lock; the
  /// critical sections it guards are a few loads/stores, so plain
  /// spinning beats any parking machinery).
  static void edge_lock_acquire(Node* n) {
    while (n->edge_lock.exchange(1, std::memory_order_acquire) != 0) {
      while (n->edge_lock.load(std::memory_order_relaxed) != 0) {
      }
    }
  }
  static void edge_lock_release(Node* n) {
    n->edge_lock.store(0, std::memory_order_release);
  }

  /// Lock-free probe of the open-addressed index. A null result is only
  /// "not visible in the current table" — callers must fall back to the
  /// graph_mu_ slow path against the authoritative `index_` map.
  Node* index_lookup_lockfree(const Task* t) const;
  /// Inserts into (growing, if needed) the lock-free table. Caller holds
  /// graph_mu_; the node must be fully initialized — the slot store is
  /// the release that publishes it to lock-free completers.
  void index_insert_graph_held(Node* n);

  /// Drains the deferred-retirement Treiber stack, erasing each drained
  /// node's live_ intervals. Caller holds graph_mu_; called wherever the
  /// interval index is about to be consulted or reset (extend, the watch
  /// sweep, coverage reset) — the epoch boundaries of the scheme.
  void drain_retired_graph_held();

  /// Lock-free completion: edge_lock for the completed/successors
  /// handoff, ring pushes for released successors, Treiber push for the
  /// deferred interval retirement. Safe to call with or without graph_mu_
  /// (the slow-lookup and sweep paths hold it; the hot path does not).
  std::size_t complete_node_lockfree(Node* n, unsigned shard,
                                     WorkerStats* stats);
  /// Mode dispatch for the shared fold/sweep paths (caller holds
  /// graph_mu_): split/global complete under the graph lock, lockfree
  /// runs its own protocol.
  std::size_t complete_node_any(Node* n, unsigned shard);

  void push_ready_lockfree(Node* n, unsigned shard, WorkerStats* stats);
  Node* pop_entry_lockfree(unsigned home, unsigned* from, WorkerStats* stats);

  /// Checked-build accounting audit (XK_EXPECT(rl_accounting)): at a
  /// quiesced fold point — destruction, or a coverage reset — nready_
  /// must equal the entries still sitting in the shard queues (ring +
  /// side/deque), dead entries included: every push paired one increment
  /// with exactly one pop-side decrement, so any drift is a lost or
  /// double-counted entry. Only meaningful quiesced (the gauges are
  /// deliberately stale mid-flight); callers gate on check::kEnabled.
  void verify_accounting_quiesced(const char* where);

  Frame& frame_;
  StarvationBoard* board_;
  const RlLockMode mode_;
  const bool split_;     ///< mode_ == kSplit: shard mutexes are primary
  const bool lockfree_;  ///< mode_ == kLockFree: rings are primary

  /// Graph lock (and, in global mode, the single list-wide lock).
  mutable std::mutex graph_mu_;

  // ---- guarded by graph_mu_ --------------------------------------------
  std::deque<Node> nodes_;  ///< stable addresses; grown by extend() only
  std::unordered_map<const Task*, Node*> index_;
  std::unordered_map<const Task*, bool> early_completions_;

  /// Lock-free task->node index (lockfree mode): open-addressed, linear
  /// probing, power-of-2 sized. Written (insert, grow) only under
  /// graph_mu_; read with acquire loads and no lock by the completion
  /// hot path. Old tables are retired into `index_tabs_` rather than
  /// freed — a reader may still hold a pointer into one — and reclaimed
  /// only at coverage reset / destruction, when no reader can exist.
  struct IndexTable {
    explicit IndexTable(std::size_t cap) : mask(cap - 1), slots(cap) {}
    std::size_t mask;
    std::vector<std::atomic<Node*>> slots;
  };
  std::atomic<IndexTable*> index_tab_{nullptr};
  std::vector<std::unique_ptr<IndexTable>> index_tabs_;  ///< current + retired
  std::size_t index_count_ = 0;  ///< entries in the current table
  std::uint32_t covered_count_ = 0;
  /// Frame incarnation the coverage state matches. Written only under
  /// graph_mu_; atomic so the split pop path can pre-check "did the frame
  /// recycle under us?" with one relaxed load before touching any shard —
  /// on a mismatch it upgrades to graph_mu_ and resets. The reset itself
  /// is only reachable on a list that outlived Frame::reset(), which the
  /// owner performs with every task at Term and no scanner active, so no
  /// concurrent popper can hold a stale Node across it.
  std::atomic<std::uint64_t> frame_epoch_;

  // Live-access interval index: ordered by region lo() so a new access only
  // examines entries whose bounding interval can overlap. `max_span_` bounds
  // how far below lo() a candidate's start can be.
  LiveMap live_;
  std::uintptr_t max_span_ = 0;

  // Claimed-elsewhere nodes whose Term may race a notification (their
  // pre-Term load of frame.ready_list can miss the attach): watched in FIFO
  // order and lazily swept when every ready shard runs dry. O(claimed-in-
  // flight), and oldest claims fold first so successor release order tracks
  // the original ready order. Entries are deduplicated through
  // Node::watched.
  std::deque<Node*> watch_;
  std::uint64_t missed_folds_ = 0;

  /// extend()-local scratch for initially-ready nodes of the current
  /// coverage round, published under one shard-lock acquisition at the
  /// end of the round (guarded by graph_mu_ like every extend-side field;
  /// a member only to reuse its capacity across rounds).
  std::vector<Node*> extend_ready_scratch_;

  // ---- guarded per shard (split) / by graph_mu_ (global) ---------------
  std::vector<Shard> shards_;

  /// Total deque entries over all shards (dead ids included) — the O(1)
  /// empty check on the pop path. Relaxed: shard mutexes order the actual
  /// deque contents; a stale read costs one spurious probe or one benign
  /// early "dry" verdict.
  std::atomic<std::size_t> nready_{0};

  // ---- lockfree-mode shared state --------------------------------------

  /// Deferred-retirement Treiber stack head: lock-free completions push
  /// their node here (release CAS; Node::retire_next is the link) instead
  /// of erasing live_ intervals; drained under graph_mu_ (acquire
  /// exchange) at the epoch boundaries.
  std::atomic<Node*> retire_head_{nullptr};

  /// List-internal telemetry mirrors (see the accessors): counted
  /// alongside the caller's WorkerStats so statless callers (tests,
  /// extend's own pushes) still show up.
  std::atomic<std::uint64_t> ring_spills_{0};
  std::atomic<std::uint64_t> side_pops_{0};
};

}  // namespace xk
