#include "core/foreach.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/runtime.hpp"
#include "obs/trace.hpp"

namespace xk::detail {

int WorkInterval::split_tail(
    int parts, std::int64_t min_keep,
    std::vector<std::pair<std::int64_t, std::int64_t>>& out) {
  lk.lock();
  const std::int64_t r = e - b;
  if (r <= min_keep || parts < 2) {
    lk.unlock();
    return 0;
  }
  const auto pieces =
      static_cast<int>(std::min<std::int64_t>(parts, r));  // each >= 1
  const std::int64_t q = r / pieces;
  const std::int64_t rem = r % pieces;
  // The owner keeps the first piece: [b, b + q + (rem ? 1 : 0)).
  std::int64_t cut = b + q + (rem > 0 ? 1 : 0);
  const std::int64_t old_e = e;
  e = cut;
  lk.unlock();
  // The carved tail [cut, old_e) is now exclusively ours; partition it.
  int emitted = 0;
  for (int p = 1; p < pieces; ++p) {
    const std::int64_t len = q + (p < rem ? 1 : 0);
    if (len <= 0) break;
    out.emplace_back(cut, cut + len);
    cut += len;
    ++emitted;
  }
  // Rounding slack (if any) goes to the last piece.
  if (emitted > 0 && cut < old_e) out.back().second = old_e;
  return emitted;
}

void ForeachShared::record_error(std::exception_ptr e) {
  {
    std::lock_guard lock(exc_mu);
    if (!exc) exc = e;
  }
  error.store(true, std::memory_order_release);
}

namespace {

/// Tries to claim one unclaimed reserved slice into `w.interval`,
/// restricted to slices homed to `domain` when `domain_only` is set.
bool claim_slice_pass(ForeachShared& sh, ForeachWork& w, unsigned domain,
                      bool domain_only) {
  for (auto& padded : sh.slices) {
    ForeachShared::Slice& s = padded.value;
    if (domain_only && s.domain != domain) continue;
    if (s.taken.load(std::memory_order_relaxed)) continue;
    if (!s.taken.exchange(true, std::memory_order_acq_rel)) {
      w.interval.lk.lock();
      w.interval.b = s.b;
      w.interval.e = s.e;
      w.interval.lk.unlock();
      return true;
    }
  }
  return false;
}

/// Claims an unclaimed reserved slice into `w.interval`. Under the domain
/// partition the claimer drains its own domain's remainder queue before
/// going remote (the slices double as per-domain remainder queues); the
/// flat partition keeps the original first-fit order. The local/cross
/// split feeds the same shard_hits/shard_misses telemetry as the sharded
/// ready lists — one consistent "stayed in my domain's pool" signal.
/// (Only the *counters* are shared: slice claims are a per-slice atomic
/// exchange and take no ReadyList lock, so the XK_RL_LOCK graph/shard
/// split cannot change foreach behavior — the rl-global ablation series
/// in micro_locality pins that independence.)
/// Returns false when all slices are claimed.
bool claim_reserved_slice(ForeachShared& sh, ForeachWork& w, Worker& self) {
  const unsigned domain = self.domain();
  if (!sh.domain_mode) {
    return claim_slice_pass(sh, w, domain, /*domain_only=*/false);
  }
  // Count the local/cross split only when the placement actually spans
  // several domains — mirroring the ready-list rule that a single shard
  // reports no telemetry (a forced kDomain run on a one-domain machine
  // would read as all-hits and pollute the ablation comparison).
  const bool count = self.runtime().ndomains() > 1;
  if (claim_slice_pass(sh, w, domain, /*domain_only=*/true)) {
    if (count) self.stats().shard_hits++;
    return true;
  }
  // Own remainder queue dry (the local-only pass saw every local slice
  // taken): any slice the fallback pass finds is another domain's.
  if (claim_slice_pass(sh, w, domain, /*domain_only=*/false)) {
    if (count) self.stats().shard_misses++;
    return true;
  }
  return false;
}

/// Splitter-produced piece: owns a shared ref, runs the work loop, then
/// retires. Move-only so the single live instance releases exactly once.
struct PieceFn {
  ForeachWork work;

  explicit PieceFn(ForeachShared* sh, std::int64_t b, std::int64_t e) {
    work.shared = sh;
    work.interval.b = b;
    work.interval.e = e;
  }
  PieceFn(PieceFn&& o) noexcept {
    work.shared = o.work.shared;
    o.work.shared = nullptr;
    o.work.interval.lk.lock();  // no real contention: o not yet published
    work.interval.b = o.work.interval.b;
    work.interval.e = o.work.interval.e;
    o.work.interval.lk.unlock();
  }
  PieceFn(const PieceFn&) = delete;
  PieceFn& operator=(const PieceFn&) = delete;
  PieceFn& operator=(PieceFn&&) = delete;
  ~PieceFn() {
    if (work.shared != nullptr) work.shared->release();
  }

  void operator()(Worker& wk) {
    ForeachShared& sh = *work.shared;
    foreach_run(work, wk);
    if (sh.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Possibly the last live body: the master may be parked on
      // sh.finished() in foreach_execute — wake the parked set.
      wk.runtime().notify_progress();
    }
  }
};

/// Creates one splitter reply covering [b, e). The new task is itself
/// adaptive (recursively splittable). Callers check sc.size() > 0 right
/// before each call and the SplitContext is consumed by this thread only,
/// so the reply slot is guaranteed; losing iterations here would be silent
/// data corruption, hence the hard stop.
void reply_piece(SplitContext& sc, ForeachShared& sh, std::int64_t b,
                 std::int64_t e) {
  sh.add_ref();
  sh.outstanding.fetch_add(1, std::memory_order_acq_rel);
  Task* t = make_heap_task(PieceFn(&sh, b, e));
  auto* fn = static_cast<PieceFn*>(t->args);
  arm_splitter(*t, &foreach_splitter, &fn->work);
  if (!sc.reply_raw(t)) std::abort();
}

}  // namespace

void foreach_run(ForeachWork& w, Worker& self) {
  ForeachShared& sh = *w.shared;
  const unsigned wid = self.id();
  for (;;) {
    if (sh.error.load(std::memory_order_acquire)) break;
    std::int64_t lo = 0;
    const std::int64_t n = w.interval.pop_front(sh.grain, &lo);
    if (n > 0) {
      const std::uint64_t chunk_t0 = obs::span_begin();
      try {
        sh.invoke(sh.ctx, lo, lo + n, wid);
      } catch (...) {
        sh.record_error(std::current_exception());
        break;
      }
      sh.done.fetch_add(n, std::memory_order_acq_rel);
      self.stats().foreach_chunks++;
      obs::emit_span(obs::Ev::kForeachChunk, chunk_t0,
                     static_cast<std::uint64_t>(lo),
                     static_cast<std::uint64_t>(n));
      continue;
    }
    if (!claim_reserved_slice(sh, w, self)) break;
  }
}

namespace {

/// One splitter pass over the reserved slices; hands each claimed slice to
/// a pending request. Restricted to `domain`-homed slices when asked.
void split_reserved_pass(SplitContext& sc, ForeachShared& sh, unsigned domain,
                         bool domain_only) {
  while (sc.size() > 0) {
    bool got = false;
    for (auto& padded : sh.slices) {
      ForeachShared::Slice& s = padded.value;
      if (domain_only && s.domain != domain) continue;
      if (s.taken.load(std::memory_order_relaxed)) continue;
      if (!s.taken.exchange(true, std::memory_order_acq_rel)) {
        reply_piece(sc, sh, s.b, s.e);
        got = true;
        break;
      }
    }
    if (!got) break;
  }
}

}  // namespace

void foreach_splitter(void* state, SplitContext& sc) {
  auto* w = static_cast<ForeachWork*>(state);
  ForeachShared& sh = *w->shared;
  if (sh.error.load(std::memory_order_acquire)) return;

  // 1. Hand out reserved slices first (§II-E: "it grabs the reserved slice
  //    if available"). The splitter runs on the combiner's thread, so its
  //    domain is the domain the stolen pieces will (mostly) execute in:
  //    under the domain partition, drain that domain's remainder queue
  //    before pulling slices homed to other domains.
  if (sh.domain_mode) {
    Worker* combiner = this_worker();
    const unsigned domain = combiner != nullptr ? combiner->domain() : 0u;
    split_reserved_pass(sc, sh, domain, /*domain_only=*/true);
  }
  split_reserved_pass(sc, sh, 0, /*domain_only=*/false);

  // 2. Split this task's live interval into k+1 equal parts, one kept by
  //    the victim (§II-E aggregation-aware split).
  const auto k = static_cast<int>(sc.size());
  if (k > 0) {
    std::vector<std::pair<std::int64_t, std::int64_t>> parts;
    parts.reserve(static_cast<std::size_t>(k));
    w->interval.split_tail(k + 1, sh.grain, parts);
    for (const auto& [b, e] : parts) reply_piece(sc, sh, b, e);
  }
}

void foreach_execute(ForeachShared& sh, std::int64_t first, std::int64_t last,
                     ForeachPartition partition) {
  Worker& w = *this_worker();
  Runtime& rt = w.runtime();
  const unsigned nw = rt.nworkers();

  // Drain pending siblings first: the loop must not run concurrently with
  // program-order predecessors (OpenMP-like region semantics).
  sync();

  // Reserved slices: near-equal partition of [first, last), one per worker.
  //
  // Flat mode deals slices in worker-id order (the original scheme). Domain
  // mode deals them in domain-grouped order instead, so each locality
  // domain owns one contiguous sub-range of the iteration space
  // (first-touch-friendly) and slice i is homed to worker i's domain —
  // the per-domain remainder queues that claim_reserved_slice and the
  // splitter drain locally first.
  sh.domain_mode =
      partition == ForeachPartition::kDomain ||
      (partition == ForeachPartition::kAuto && rt.ndomains() > 1);
  sh.slices = std::vector<Padded<ForeachShared::Slice>>(nw);
  std::vector<unsigned> deal_order(nw);
  for (unsigned i = 0; i < nw; ++i) deal_order[i] = i;
  if (sh.domain_mode) {
    std::stable_sort(deal_order.begin(), deal_order.end(),
                     [&](unsigned a, unsigned b) {
                       return rt.worker(a).domain() < rt.worker(b).domain();
                     });
  }
  const std::int64_t total = last - first;
  std::int64_t pos = first;
  for (unsigned i = 0; i < nw; ++i) {
    const unsigned slot = deal_order[i];
    const std::int64_t len =
        total / nw + (static_cast<std::int64_t>(i) < total % nw ? 1 : 0);
    sh.slices[slot]->b = pos;
    sh.slices[slot]->e = pos + len;
    sh.slices[slot]->domain = sh.domain_mode ? rt.worker(slot).domain() : 0u;
    pos += len;
  }

  // Root work: claims its own reserved slice up front (slice 0 in flat
  // mode, preserving the original behavior; the caller's own domain-homed
  // slice in domain mode). A master slot (id >= nworkers) folds onto the
  // pool slot whose placement it shares — slices stay one-per-pool-worker.
  const unsigned root_slot = sh.domain_mode ? (w.id() % nw) : 0u;
  ForeachWork root;
  root.shared = &sh;
  // xk-order: pre-publication init — `sh` is invisible to thieves until
  // the adaptive root task lands in the frame below; that publication
  // carries the release edge for these stores.
  sh.slices[root_slot]->taken.store(true, std::memory_order_relaxed);
  root.interval.b = sh.slices[root_slot]->b;
  root.interval.e = sh.slices[root_slot]->e;
  sh.outstanding.store(1, std::memory_order_relaxed);

  // Publish the adaptive root task in the current frame and run it through
  // the normal FIFO path (sync claims it; if a thief wins the claim race the
  // sync suspends and helps, §II-B).
  auto* t = new (w.frame_alloc(sizeof(Task), alignof(Task))) Task();
  t->body = [](void* a, Worker& self) {
    auto* rw = static_cast<ForeachWork*>(a);
    foreach_run(*rw, self);
    if (rw->shared->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      self.runtime().notify_progress();
    }
  };
  t->args = &root;
  arm_splitter(*t, &foreach_splitter, &root);
  w.push_task(t);
  sync();

  // The root's slice is done; other pieces may still run. Help until the
  // whole interval completed (§II-E completion).
  w.steal_until([&] { return sh.finished(); });

  // An in-flight combiner may still hold pointers into `root` (it read the
  // task before it terminated); the steal mutex is held for the whole round,
  // so one lock/unlock flushes it before `root` leaves scope.
  w.scan_barrier();

  std::exception_ptr exc = sh.exc;  // safe: all writers retired
  sh.release();
  if (exc) std::rethrow_exception(exc);
}

}  // namespace xk::detail
