#include "core/foreach.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/runtime.hpp"

namespace xk::detail {

int WorkInterval::split_tail(
    int parts, std::int64_t min_keep,
    std::vector<std::pair<std::int64_t, std::int64_t>>& out) {
  lk.lock();
  const std::int64_t r = e - b;
  if (r <= min_keep || parts < 2) {
    lk.unlock();
    return 0;
  }
  const auto pieces =
      static_cast<int>(std::min<std::int64_t>(parts, r));  // each >= 1
  const std::int64_t q = r / pieces;
  const std::int64_t rem = r % pieces;
  // The owner keeps the first piece: [b, b + q + (rem ? 1 : 0)).
  std::int64_t cut = b + q + (rem > 0 ? 1 : 0);
  const std::int64_t old_e = e;
  e = cut;
  lk.unlock();
  // The carved tail [cut, old_e) is now exclusively ours; partition it.
  int emitted = 0;
  for (int p = 1; p < pieces; ++p) {
    const std::int64_t len = q + (p < rem ? 1 : 0);
    if (len <= 0) break;
    out.emplace_back(cut, cut + len);
    cut += len;
    ++emitted;
  }
  // Rounding slack (if any) goes to the last piece.
  if (emitted > 0 && cut < old_e) out.back().second = old_e;
  return emitted;
}

void ForeachShared::record_error(std::exception_ptr e) {
  {
    std::lock_guard lock(exc_mu);
    if (!exc) exc = e;
  }
  error.store(true, std::memory_order_release);
}

namespace {

/// Claims an unclaimed reserved slice into `w.interval`. Returns false when
/// all slices are claimed.
bool claim_reserved_slice(ForeachShared& sh, ForeachWork& w) {
  for (auto& padded : sh.slices) {
    ForeachShared::Slice& s = padded.value;
    if (s.taken.load(std::memory_order_relaxed)) continue;
    if (!s.taken.exchange(true, std::memory_order_acq_rel)) {
      w.interval.lk.lock();
      w.interval.b = s.b;
      w.interval.e = s.e;
      w.interval.lk.unlock();
      return true;
    }
  }
  return false;
}

/// Splitter-produced piece: owns a shared ref, runs the work loop, then
/// retires. Move-only so the single live instance releases exactly once.
struct PieceFn {
  ForeachWork work;

  explicit PieceFn(ForeachShared* sh, std::int64_t b, std::int64_t e) {
    work.shared = sh;
    work.interval.b = b;
    work.interval.e = e;
  }
  PieceFn(PieceFn&& o) noexcept {
    work.shared = o.work.shared;
    o.work.shared = nullptr;
    o.work.interval.lk.lock();  // no real contention: o not yet published
    work.interval.b = o.work.interval.b;
    work.interval.e = o.work.interval.e;
    o.work.interval.lk.unlock();
  }
  PieceFn(const PieceFn&) = delete;
  PieceFn& operator=(const PieceFn&) = delete;
  PieceFn& operator=(PieceFn&&) = delete;
  ~PieceFn() {
    if (work.shared != nullptr) work.shared->release();
  }

  void operator()(Worker& wk) {
    ForeachShared& sh = *work.shared;
    foreach_run(work, wk);
    if (sh.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Possibly the last live body: the master may be parked on
      // sh.finished() in foreach_execute — wake the parked set.
      wk.runtime().notify_progress();
    }
  }
};

/// Creates one splitter reply covering [b, e). The new task is itself
/// adaptive (recursively splittable). Callers check sc.size() > 0 right
/// before each call and the SplitContext is consumed by this thread only,
/// so the reply slot is guaranteed; losing iterations here would be silent
/// data corruption, hence the hard stop.
void reply_piece(SplitContext& sc, ForeachShared& sh, std::int64_t b,
                 std::int64_t e) {
  sh.add_ref();
  sh.outstanding.fetch_add(1, std::memory_order_acq_rel);
  Task* t = make_heap_task(PieceFn(&sh, b, e));
  auto* fn = static_cast<PieceFn*>(t->args);
  arm_splitter(*t, &foreach_splitter, &fn->work);
  if (!sc.reply_raw(t)) std::abort();
}

}  // namespace

void foreach_run(ForeachWork& w, Worker& self) {
  ForeachShared& sh = *w.shared;
  const unsigned wid = self.id();
  for (;;) {
    if (sh.error.load(std::memory_order_acquire)) break;
    std::int64_t lo = 0;
    const std::int64_t n = w.interval.pop_front(sh.grain, &lo);
    if (n > 0) {
      try {
        sh.invoke(sh.ctx, lo, lo + n, wid);
      } catch (...) {
        sh.record_error(std::current_exception());
        break;
      }
      sh.done.fetch_add(n, std::memory_order_acq_rel);
      self.stats().foreach_chunks++;
      continue;
    }
    if (!claim_reserved_slice(sh, w)) break;
  }
}

void foreach_splitter(void* state, SplitContext& sc) {
  auto* w = static_cast<ForeachWork*>(state);
  ForeachShared& sh = *w->shared;
  if (sh.error.load(std::memory_order_acquire)) return;

  // 1. Hand out reserved slices first (§II-E: "it grabs the reserved slice
  //    if available").
  while (sc.size() > 0) {
    bool got = false;
    for (auto& padded : sh.slices) {
      ForeachShared::Slice& s = padded.value;
      if (s.taken.load(std::memory_order_relaxed)) continue;
      if (!s.taken.exchange(true, std::memory_order_acq_rel)) {
        reply_piece(sc, sh, s.b, s.e);
        got = true;
        break;
      }
    }
    if (!got) break;
  }

  // 2. Split this task's live interval into k+1 equal parts, one kept by
  //    the victim (§II-E aggregation-aware split).
  const auto k = static_cast<int>(sc.size());
  if (k > 0) {
    std::vector<std::pair<std::int64_t, std::int64_t>> parts;
    parts.reserve(static_cast<std::size_t>(k));
    w->interval.split_tail(k + 1, sh.grain, parts);
    for (const auto& [b, e] : parts) reply_piece(sc, sh, b, e);
  }
}

void foreach_execute(ForeachShared& sh, std::int64_t first, std::int64_t last) {
  Worker& w = *this_worker();
  const unsigned nw = w.runtime().nworkers();

  // Drain pending siblings first: the loop must not run concurrently with
  // program-order predecessors (OpenMP-like region semantics).
  sync();

  // Reserved slices: near-equal partition of [first, last), one per worker.
  sh.slices = std::vector<Padded<ForeachShared::Slice>>(nw);
  const std::int64_t total = last - first;
  std::int64_t pos = first;
  for (unsigned i = 0; i < nw; ++i) {
    const std::int64_t len =
        total / nw + (static_cast<std::int64_t>(i) < total % nw ? 1 : 0);
    sh.slices[i]->b = pos;
    sh.slices[i]->e = pos + len;
    pos += len;
  }

  // Root work: claims slice 0 up front.
  ForeachWork root;
  root.shared = &sh;
  sh.slices[0]->taken.store(true, std::memory_order_relaxed);
  root.interval.b = sh.slices[0]->b;
  root.interval.e = sh.slices[0]->e;
  sh.outstanding.store(1, std::memory_order_relaxed);

  // Publish the adaptive root task in the current frame and run it through
  // the normal FIFO path (sync claims it; if a thief wins the claim race the
  // sync suspends and helps, §II-B).
  auto* t = new (w.frame_alloc(sizeof(Task), alignof(Task))) Task();
  t->body = [](void* a, Worker& self) {
    auto* rw = static_cast<ForeachWork*>(a);
    foreach_run(*rw, self);
    if (rw->shared->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      self.runtime().notify_progress();
    }
  };
  t->args = &root;
  arm_splitter(*t, &foreach_splitter, &root);
  w.push_task(t);
  sync();

  // The root's slice is done; other pieces may still run. Help until the
  // whole interval completed (§II-E completion).
  w.steal_until([&] { return sh.finished(); });

  // An in-flight combiner may still hold pointers into `root` (it read the
  // task before it terminated); the steal mutex is held for the whole round,
  // so one lock/unlock flushes it before `root` leaves scope.
  w.scan_barrier();

  std::exception_ptr exc = sh.exc;  // safe: all writers retired
  sh.release();
  if (exc) std::rethrow_exception(exc);
}

}  // namespace xk::detail
