// Worker implementation: FIFO owner execution, the steal protocol with
// request aggregation, incremental steal-time readiness computation,
// batched replies, renaming, idle parking, and the ready-list integration.
// See worker.hpp for the protocol overview.
#include "core/worker.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/adaptive.hpp"
#include "core/readylist.hpp"
#include "core/runtime.hpp"
#include "obs/trace.hpp"

namespace xk {

namespace {
thread_local Worker* tls_worker = nullptr;

/// Checked-build guard for the plain (non-CAS) task state stores: loads
/// the prior state and asserts the edge against the claim/commit table
/// (task.hpp). The CAS transitions need no guard — their from-state is
/// part of the exchange. Compiles to nothing without XK_CHECK=ON.
inline void check_task_store(Task* t, TaskState next) {
  if constexpr (check::kEnabled) {
    const TaskState prev = t->load_state(std::memory_order_relaxed);
    XK_EXPECT(task_transition, task_transition_ok(prev, next),
              static_cast<std::uint64_t>(prev),
              static_cast<std::uint64_t>(next));
    (void)prev;  // XK_EXPECT is a no-op in the discarded-branch compile
  }
  (void)t;
  (void)next;
}
}  // namespace

Worker* this_worker() { return tls_worker; }

namespace detail {
void set_this_worker(Worker* w) { tls_worker = w; }
}  // namespace detail

Worker::Worker(Runtime& rt, unsigned id, unsigned nworkers)
    : rt_(rt),
      id_(id),
      backoff_limit_(rt.config().steal_backoff),
      park_threshold_(rt.config().park_threshold),
      steal_batch_(std::clamp<std::size_t>(rt.config().steal_batch, 1,
                                           StealRequest::kMaxBatch)),
      reclaim_enabled_(!rt.config().renaming),
      adaptive_steal_(rt.config().steal_adaptive),
      occ_hint_(rt.config().occupancy_hint),
      work_parker_(&rt.work_parker()),
      progress_parker_(&rt.progress_parker()),
      frames_(kMaxDepth),
      reqbox_(nworkers),
      scan_state_(kMaxDepth),
      rng_(0x853c49e6748fea9bULL ^ (id * 0x9e3779b97f4a7c15ULL)) {
  // Parking engages only after the yield phase; a threshold at or below the
  // spin limit would park before ever yielding.
  if (park_threshold_ > 0 && park_threshold_ <= backoff_limit_) {
    park_threshold_ = backoff_limit_ + 1;
  }
  // Locality snapshot: Runtime computes the placement (and sizes the
  // starvation board) before constructing any worker, so the victim
  // ordering and the board pointer are stable for the runtime's life.
  const Placement& pl = rt.placement();
  if (id_ < pl.slots.size()) {
    domain_ = pl.slots[id_].domain;
    domain_rank_ = pl.slots[id_].domain_rank;
  }
  VictimOrder vo = steal_victim_order(pl, id_);
  victim_order_ = std::move(vo.order);
  nlocal_victims_ = vo.nlocal;
  steal_local_tries_ = rt.config().steal_local_tries;
  starve_rounds_ = std::max(rt.config().starve_rounds, 0);
  shard_ready_ = rt.config().shard_ready_list;
  rl_lock_mode_ = rt.config().rl_lock;
  starvation_ = &rt.starvation();
  deterministic_victims_ = pl.deterministic;
  victim_rr_ = id_;  // stagger rotating thieves off a common first victim
}

Worker::~Worker() = default;

// ---------------------------------------------------------------------------
// Frame stack: owner push / Dekker-protected pop (see worker.hpp).
// ---------------------------------------------------------------------------

Frame& Worker::push_frame() {
  const std::uint32_t d = depth_.load(std::memory_order_relaxed);
  if (d >= kMaxDepth) throw std::runtime_error("xk: frame stack overflow");
  Frame& f = frames_[d];
  // Release, not seq_cst: publishing a *larger* depth needs no Dekker
  // round — a combiner that misses the new frame simply does not scan it,
  // and one that sees it acquires the owner's prior writes (including the
  // frame's last reset) through this store. Only the shrinking store in
  // pop_frame arbitrates against scanners. This removes a full fence from
  // the per-task execution path (run_task pushes a frame per task).
  depth_.store(d + 1, std::memory_order_release);
  // Occupancy hint: publish "has work" only on the 0->1 transition (once
  // per stolen reply / section root, not per task), so the board line the
  // victim draw reads stays read-mostly. Published after the depth store:
  // a thief that sees the bit and probes finds the frame already there.
  if (d == 0) {
    const unsigned folds = starvation_->publish_occupied(id_, true);
    stats_->quiesce_folds += folds;
    if (folds != 0) obs::emit(obs::Ev::kQuiesceFold, folds, 1);
  }
  return f;
}

void Worker::pop_frame() {
  const std::uint32_t d = depth_.load(std::memory_order_relaxed);
  Frame& f = frames_[d - 1];
  if (f.pristine()) {
    // Fast path for pristine leaf frames (never pushed to in this
    // incarnation): a combiner that races with this pop can only read the
    // frame's atomics (size 0 both before and after the reset, epoch,
    // null ready_list) — it never dereferences chunk or arena memory,
    // because no task was ever published. So the store-buffering round the
    // seq_cst Dekker pair exists for has nothing to protect, and the
    // shrink can be a plain release (ordering the pop before this stack
    // slot's next push_frame publication). A scanner's cached entry list
    // for this frame is necessarily empty, so even a stale-epoch read
    // cannot resurrect dangling pointers — worst case is one spurious
    // cache rebuild. run_task pushes a frame per executed task, so every
    // leaf task (the bulk of a fork-join tree) skips a full fence here —
    // the ROADMAP-named spawn-path cost.
    assert(f.ready_list.load(std::memory_order_relaxed) == nullptr);
    assert(!f.steal_claimed());
    depth_.store(d - 1, std::memory_order_release);
    f.reset();
    // 1->0 transition: clear the occupancy bit and fold the change up the
    // board's domain/root counts. On worker 0's root-frame pop this is the
    // quiescence edge that fires the section-end wake (Runtime::end).
    if (d == 1) {
      const unsigned folds = starvation_->publish_occupied(id_, false);
      stats_->quiesce_folds += folds;
      if (folds != 0) obs::emit(obs::Ev::kQuiesceFold, folds, 0);
    }
    return;
  }
  // seq_cst on both sides of the Dekker handshake (store-buffering litmus):
  // a combiner sets scanning_ (seq_cst) before reading depth_ (seq_cst).
  // Either it sees the decremented depth and never touches this frame, or
  // we see scanning_ true here and wait the scan out before recycling the
  // frame's memory. Neither store may be demoted: with plain release the
  // combiner's depth load and our scanning_ load could both read the old
  // values and the frame would be reset under a live scan.
  depth_.store(d - 1, std::memory_order_seq_cst);
  while (scanning_.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }
  if (f.steal_claimed()) {
    // Join-side reclaim can terminate a steal-claimed task before the
    // thief holding its reply consumed it; drain in-flight replies so no
    // stale pointer into this frame survives the reset. Bounded: a thief
    // with a Served slot is spinning on exactly that slot, and replies
    // produced after the Dekker handshake cannot reference this frame.
    for (auto& slot : reqbox_) {
      while (slot.value.status.load(std::memory_order_acquire) ==
             StealRequest::kServed) {
        std::this_thread::yield();
      }
    }
  }
  f.reset();
  if (d == 1) {
    const unsigned folds = starvation_->publish_occupied(id_, false);
    stats_->quiesce_folds += folds;
    if (folds != 0) obs::emit(obs::Ev::kQuiesceFold, folds, 0);
  }
}

// ---------------------------------------------------------------------------
// Owner-side execution.
// ---------------------------------------------------------------------------

namespace {

/// Commits renamed writes in program order and frees the records.
void commit_renames(Task* t) {
  RenameRecord* r = t->renames;
  while (r != nullptr) {
    std::memcpy(r->target, r->buffer, r->bytes);
    RenameRecord* next = r->next;
    delete[] static_cast<unsigned char*>(r->buffer);
    delete r;
    r = next;
  }
  t->renames = nullptr;
}

/// Locks (in address order) the serialization guards of a task's
/// cumulative-write regions for the duration of the body. Two CW tasks on
/// the same region are scheduler-independent; this guard keeps their bodies
/// from interleaving (see Runtime::cw_guard).
class CwBodyGuard {
 public:
  CwBodyGuard(Runtime& rt, const Task& t) {
    for (std::uint32_t i = 0; i < t.naccesses; ++i) {
      const Access& a = t.accesses[i];
      if (a.mode == AccessMode::kCumulWrite) {
        locks_.push_back(&rt.cw_guard(a.region.base));
      }
    }
    std::sort(locks_.begin(), locks_.end());
    locks_.erase(std::unique(locks_.begin(), locks_.end()), locks_.end());
    for (std::mutex* m : locks_) m->lock();
  }
  ~CwBodyGuard() {
    for (auto it = locks_.rbegin(); it != locks_.rend(); ++it) (*it)->unlock();
  }

 private:
  std::vector<std::mutex*> locks_;
};

}  // namespace

void Worker::run_task(Task* t, Frame* src, bool stolen) {
  // Adaptive feedback input: everything run since the last successful
  // steal — stolen children fanning out locally included — counts as work
  // the reply seeded (see next_stealhalf).
  ++run_since_steal_;
  if (stolen) {
    // The caller already won the StolenClaim -> RunThief CAS (the second
    // arbitration point against a frame owner's reclaim; see
    // try_steal_once and wait_and_finalize).
    stats_->tasks_run_thief++;
  } else {
    stats_->tasks_run_owner++;
  }
  // The task span covers body + child drain (the frame's lifetime), not
  // the rename-commit / successor-release tail — that tail is what the
  // steal/ready events attribute.
  const std::uint64_t span_t0 = obs::span_begin();
  push_frame();
  try {
    if (t->naccesses != 0) {
      CwBodyGuard guard(rt_, *t);
      t->body(t->args, *this);
    } else {
      t->body(t->args, *this);
    }
  } catch (...) {
    t->exception = std::current_exception();
  }
  if (t->splitter != nullptr) {
    t->splitter_armed.store(false, std::memory_order_release);
  }
  check_task_store(
      t, stolen ? TaskState::kBodyDoneThief : TaskState::kBodyDoneOwner);
  t->state.store(stolen ? TaskState::kBodyDoneThief : TaskState::kBodyDoneOwner,
                 std::memory_order_release);
  try {
    drain_current_frame();
  } catch (...) {
    if (!t->exception) t->exception = std::current_exception();
  }
  pop_frame();
  obs::emit_span(stolen ? obs::Ev::kTaskThief : obs::Ev::kTaskOwner, span_t0,
                 depth_.load(std::memory_order_relaxed));

  if (stolen && t->renames != nullptr) {
    // The body wrote into rename buffers; the frame owner commits them in
    // program order (wait_and_finalize) and publishes Term. seq_cst store:
    // half of the no-lost-wakeup pairing with the owner's registration
    // (see wake_joiner).
    check_task_store(t, TaskState::kCommitReady);
    t->state.store(TaskState::kCommitReady, std::memory_order_seq_cst);
    // The owner may be parked waiting on exactly this task — wake it and
    // only it (the old path broadcast to every suspended waiter).
    wake_joiner(t);
    return;
  }
  if (!stolen && t->renames != nullptr) {
    // Reclaimed after the combiner applied renaming: the drain is in-order,
    // so every program-order predecessor already terminated and the renamed
    // writes can land immediately.
    commit_renames(t);
  }
  if (src != nullptr) {
    if (ReadyList* rl = src->ready_list.load(std::memory_order_acquire)) {
      // Before Term (see ReadyList locking notes); released successors
      // join this worker's domain shard — it just wrote their inputs.
      rl->on_complete(t, domain_rank_, &stats_.value);
    }
  }
  check_task_store(t, TaskState::kTerm);
  t->state.store(TaskState::kTerm,
                 stolen ? std::memory_order_seq_cst
                        : std::memory_order_release);
  if (stolen) {
    // Targeted completion wake: only the frame owner registered on this
    // task (if any) can be blocked on it — wake exactly that worker. The
    // completion may also have released dataflow successors into the ready
    // list above, which is new stealable work: ping one idle thief through
    // the standard (rate-limited) work wake. Together these replace the
    // old notify_progress broadcast that woke every suspended worker on
    // every stolen completion.
    wake_joiner(t);
    rt_.notify_work();
  }
}

void Worker::wake_joiner(Task* t) {
  // Runs after this thief's final seq_cst state store. `t` is used only
  // as a pointer *value* from here on — the owner may observe that store,
  // return from its join and recycle the descriptor's arena block at any
  // moment, so dereferencing it again would race with the reuse. The scan
  // reads each worker's stable join cell instead: seq_cst loads paired
  // with the waiter's seq_cst registration store, so either this scan
  // observes the registration (and the wake below lands) or the waiter's
  // seq_cst state re-check is ordered after our final state store and it
  // never parks on a completed task. At most one worker (the frame owner)
  // can be registered on a given live task, so the wake stays targeted.
  // The scan spans the master slots too: a section's master draining its
  // root frame joins stolen tasks exactly like a pool worker.
  const unsigned n = rt_.nworkers_total();
  for (unsigned i = 0; i < n; ++i) {
    Worker& w = rt_.worker(i);
    if (w.join_target_.load(std::memory_order_seq_cst) == t) {
      stats_->join_wakes++;
      w.join_parker_.notify_all();
    }
  }
}

void Worker::drain_current_frame() {
  Frame& f = current_frame();
  std::exception_ptr first_exc;
  for (;;) {
    const std::uint32_t n = f.size_relaxed();
    if (f.exec_cursor() >= n) break;
    Task* t = f.exec_current();
    f.exec_advance();
    if (t->try_claim(TaskState::kRunOwner)) {
      run_task(t, &f, /*stolen=*/false);
    } else {
      wait_and_finalize(t, f);
    }
    if (t->exception) {
      if (!first_exc) first_exc = t->exception;
      // Arena-allocated descriptors are recycled without destruction; drop
      // the exception_ptr reference here so it cannot leak.
      t->exception = nullptr;
    }
  }
  if (first_exc) std::rethrow_exception(first_exc);
}

void Worker::wait_and_finalize(Task* t, Frame& f) {
  // Reclaim: if the steal side claimed this descriptor but no thief has
  // started it (the reply may be parked at a busy or descheduled worker),
  // take it back and run it inline — this is exactly the task the drain is
  // idle waiting for, so running it here is optimal for the critical path.
  // Disabled under renaming: a combiner applies renaming *after* winning
  // the claim CAS, so a reclaim could start the body while the combiner is
  // still rewriting the argument pointers; without renaming the descriptor
  // is immutable once published and the reclaim is race-free.
  TaskState s = t->load_state();
  if (reclaim_enabled_ && s == TaskState::kStolenClaim &&
      t->state.compare_exchange_strong(s, TaskState::kRunOwner,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    stats_->steal_reclaims++;
    run_task(t, &f, /*stolen=*/false);
    return;
  }
  // Register the task in this worker's own join cell, then steal (and
  // eventually park on the private join parker) until the thief parks the
  // task in a final state. The registration is re-asserted on *every*
  // predicate evaluation: stolen work executed inside steal_until_on may
  // itself sync and overwrite the cell with a nested wait, and the
  // re-store restores the outer registration before the next park. Both
  // thief-side final transitions are seq_cst stores followed by a seq_cst
  // scan of these cells; the seq_cst registration + seq_cst predicate
  // load close the store-buffering window, so either the thief's scan
  // sees the registration (wake lands) or this load sees the final state
  // (never parks) — the park timeout remains only as the generic
  // backstop.
  steal_until_on(join_parker_, [&] {
    join_target_.store(t, std::memory_order_seq_cst);
    const TaskState cur = t->load_state(std::memory_order_seq_cst);
    return cur == TaskState::kTerm || cur == TaskState::kCommitReady;
  });
  // xk-order: deregistration only — the seq_cst *registration* store is
  // the half of the no-lost-wakeup pairing that matters; a thief reading
  // a stale non-null target sends one spurious (benign) wake.
  join_target_.store(nullptr, std::memory_order_relaxed);
  if (t->load_state() == TaskState::kCommitReady) {
    // All program-order predecessors terminated (the drain is in-order),
    // so the renamed writes can land on their true targets.
    commit_renames(t);
    if (ReadyList* rl = f.ready_list.load(std::memory_order_acquire)) {
      rl->on_complete(t, domain_rank_, &stats_.value);
    }
    check_task_store(t, TaskState::kTerm);
    t->state.store(TaskState::kTerm, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Thief side: request posting, combining, readiness.
// ---------------------------------------------------------------------------

Worker* Worker::pick_victim(bool& local_phase) {
  const auto nv = static_cast<unsigned>(victim_order_.size());
  local_phase = nlocal_victims_ != 0 && nlocal_victims_ != nv &&
                steal_local_tries_ > 0 && local_fails_ < steal_local_tries_;
  if (local_phase && starve_rounds_ > 0 &&
      starvation_->starving(domain_rank_,
                            static_cast<std::uint64_t>(starve_rounds_))) {
    // The domain-wide signal overrides the per-thief budget: every thief
    // of this domain together has come up empty starve_rounds times since
    // the domain last obtained work, so burning the rest of this thief's
    // own local tries would only delay the inevitable remote pull.
    stats_->starvation_escalations++;
    local_phase = false;
  }
  // The draw never lands on this worker: victim_order_ excludes self by
  // construction, so the first probe is always a real victim (the old flat
  // draw could burn its start slot on self and fall through to the busy
  // scan). Synthetic topologies rotate deterministically so tests can
  // predict the probe sequence; real machines keep the random start.
  const unsigned turn = deterministic_victims_
                            ? victim_rr_++
                            : static_cast<unsigned>(rng_.next());
  if (steal_local_tries_ <= 0) {
    // Local preference disabled (XK_STEAL_LOCAL_TRIES=0): one flat draw
    // over every victim, the PR 2 ablation baseline.
    const unsigned start = turn % nv;
    for (unsigned k = 0; k < nv; ++k) {
      Worker& v = rt_.worker(victim_order_[(start + k) % nv]);
      if (probe_victim(v)) return &v;
    }
    return nullptr;
  }
  // Tier 1: the local tier, rotated start within it. Probing tiers in
  // order (rather than one draw over the whole vector) is what makes the
  // preference strict: a busy same-domain victim always beats a remote
  // one, even after escalation.
  if (nlocal_victims_ != 0) {
    const unsigned start = turn % nlocal_victims_;
    for (unsigned k = 0; k < nlocal_victims_; ++k) {
      Worker& v =
          rt_.worker(victim_order_[(start + k) % nlocal_victims_]);
      if (probe_victim(v)) return &v;
    }
  }
  if (local_phase) return nullptr;  // escalation not yet earned
  // Tier 2: remote domains, rotated start within the remote slice.
  const unsigned nremote = nv - nlocal_victims_;
  if (nremote == 0) return nullptr;
  const unsigned start = turn % nremote;
  for (unsigned k = 0; k < nremote; ++k) {
    Worker& v = rt_.worker(
        victim_order_[nlocal_victims_ + (start + k) % nremote]);
    if (probe_victim(v)) return &v;
  }
  return nullptr;
}

bool Worker::try_steal_once() {
  // Master slots count as victims (and thieves): a one-worker pool with a
  // service section open still moves work between the two.
  const unsigned nw = rt_.nworkers_total();
  if (nw < 2) return false;
  // Helping while suspended nests the stolen subtree on this C++ stack;
  // refuse new work near the frame-stack ceiling and just wait instead.
  if (depth_.load(std::memory_order_relaxed) > kMaxDepth - 64) return false;
  bool local_phase = false;
  Worker* victim = pick_victim(local_phase);
  if (victim == nullptr) {
    // An idle local tier counts as a failed local round: steal_local_tries
    // such rounds escalate the draw to remote domains (work may all be
    // remote while this domain drains). Each failed round costs a yield —
    // without it the escalation budget burns in a handful of relaxed loads
    // and the local preference is meaningless; with it, a runnable peer
    // that is about to publish (or a closer thief racing for the same
    // remote victim) gets the cpu first.
    if (local_phase) {
      ++local_fails_;
      if (starve_rounds_ > 0) starvation_->record_failed_round(domain_rank_);
      std::this_thread::yield();
    }
    return false;
  }
  stats_->steal_attempts++;
  // Steal round-trip span: request post -> reply consumed. Started before
  // the post so combiner self-election time is attributed to the request.
  const std::uint64_t req_t0 = obs::span_begin();

  if (adaptive_steal_) {
    // Evaluate the steal-width feedback once per posted request: the last
    // successful reply's size against everything run since. Failed rounds
    // (last_reply_tasks_ == 0) keep the current width.
    const bool next =
        next_stealhalf(stealhalf_, last_reply_tasks_, run_since_steal_);
    if (next != stealhalf_) {
      stealhalf_ = next;
      stats_->adaptive_flips++;
    }
    last_reply_tasks_ = 0;
  }

  StealRequest& slot = victim->request_slot(id_);
  slot.nreplies = 0;
  slot.stealhalf = adaptive_steal_ && stealhalf_;
  // Idle = nothing on the frame stack (a pure thief). A suspended owner
  // helping while it waits still holds runnable work, so scarce combiners
  // serve it last.
  slot.idle = depth_.load(std::memory_order_relaxed) == 0;
  // Release suffices (down from seq_cst): the combiner's acquire load of
  // the status sees the cleared reply fields (and the request bits above),
  // and a combiner that misses the post entirely is benign — the thief
  // keeps spinning and, when the mutex frees up, elects itself and serves
  // its own slot.
  slot.status.store(StealRequest::kPosted, std::memory_order_release);

  int spins = 0;
  for (;;) {
    const int s = slot.status.load(std::memory_order_acquire);
    if (s == StealRequest::kServed) {
      // Start-claim every reply (StolenClaim -> RunThief) *while the slot
      // is still Served*: the victim's pop_frame treats a Served slot as a
      // live reference into its frames, and a task we won cannot reach
      // Term without us, pinning its frame past this point. A task whose
      // CAS fails was reclaimed by the frame owner (wait_and_finalize) —
      // drop it before the slot clears and never touch it again.
      const std::uint32_t n = slot.nreplies;
      Task* tasks[StealRequest::kMaxBatch];
      Frame* frames[StealRequest::kMaxBatch];
      std::uint32_t won = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        Task* t = slot.reply[i];
        Frame* fr = slot.reply_frame[i];
        if (t->heap_owned && fr == nullptr) {
          // Fresh splitter reply: unclaimed, exclusively ours.
          tasks[won] = t;
          frames[won] = nullptr;
          ++won;
          continue;
        }
        TaskState expected = TaskState::kStolenClaim;
        if (t->state.compare_exchange_strong(expected, TaskState::kRunThief,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          tasks[won] = t;
          frames[won] = fr;
          ++won;
        }
      }
      // Release: the victim's pop_frame acquires this store when draining
      // in-flight replies before a frame reset (stale-reply protection).
      slot.status.store(StealRequest::kEmpty, std::memory_order_release);
      stats_->steals_ok++;
      stats_->steal_tasks += won;
      const bool remote = victim->domain() != domain_;
      if (remote) {
        stats_->steals_remote++;
      } else {
        stats_->steals_local++;
      }
      obs::emit_span(obs::Ev::kStealServed, req_t0, victim->id(), won,
                     remote ? 1 : 0);
      // Any success re-engages the local-first preference and clears the
      // domain's shared failed-round gauge (work is reaching it again).
      local_fails_ = 0;
      if (starve_rounds_ > 0) starvation_->record_progress(domain_rank_);
      if (adaptive_steal_ && won != 0) {
        // Reset the feedback window: the flip decision at the next post
        // compares this reply's size against what it seeds.
        last_reply_tasks_ = won;
        run_since_steal_ = 0;
        if (slot.stealhalf) stats_->steals_half++;
      }
      for (std::uint32_t i = 0; i < won; ++i) {
        execute_reply(tasks[i], frames[i]);
      }
      return true;
    }
    if (s == StealRequest::kFailed) {
      // xk-order: recycling the thief's own reply slot after the verdict
      // acquire-load above; the next request's posting store re-publishes
      // the slot with its own release edge.
      slot.status.store(StealRequest::kEmpty, std::memory_order_relaxed);
      obs::emit_span(obs::Ev::kStealFailed, req_t0, victim->id());
      if (local_phase) {
        ++local_fails_;
        if (starve_rounds_ > 0) starvation_->record_failed_round(domain_rank_);
      }
      return false;
    }
    if (victim->steal_mutex_.try_lock()) {
      victim->scanning_.store(true, std::memory_order_seq_cst);
      combine_on(*victim);
      victim->scanning_.store(false, std::memory_order_release);
      victim->steal_mutex_.unlock();
      continue;  // our own slot is now Served or Failed
    }
    if (++spins > 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void Worker::execute_reply(Task* t, Frame* src) {
  if (t->heap_owned && src == nullptr) {
    // Splitter-produced task (fresh, unclaimed, owned by no frame yet):
    // host it in a fresh frame of this stack so it is visible to further
    // steals/splits, then run it like a local child. A heap task WITH a
    // source frame is one stolen out of the frame already hosting it —
    // re-hosting it would give it two owning frames (double delete at
    // reset), so it runs below as a regular stolen descriptor instead.
    Frame& f = push_frame();
    f.push_task(t);
    try {
      drain_current_frame();
    } catch (...) {
      // Adaptive tasks own their error reporting (e.g. the foreach body
      // captures user exceptions into the loop's shared state); an exception
      // escaping here has already been recorded on the task.
    }
    pop_frame();
  } else {
    run_task(t, src, /*stolen=*/true);
  }
}

namespace {

/// Conflict check of candidate `t` against one predecessor. Updates
/// `false_only` (starts true): stays true only while every conflict is a
/// breakable WAR/WAW against a renameable contiguous Write access of `t`.
bool conflicts_with(const Task& pred, const Task& t, bool& false_only) {
  bool any = false;
  for (std::uint32_t i = 0; i < pred.naccesses; ++i) {
    for (std::uint32_t j = 0; j < t.naccesses; ++j) {
      const Access& pa = pred.accesses[i];
      const Access& ta = t.accesses[j];
      if (!accesses_conflict(pa, ta)) continue;
      any = true;
      const bool breakable = ta.mode == AccessMode::kWrite &&
                             ta.region.runs == 1 &&
                             ta.arg_offset != kNoArgOffset &&
                             conflict_is_false_dependency(pa, ta);
      if (!breakable) false_only = false;
    }
  }
  return any;
}

/// Redirects every contiguous Write access of a claimed task to a fresh
/// buffer; the frame owner commits the buffers in program order.
void apply_renaming(Task& t) {
  for (std::uint32_t j = 0; j < t.naccesses; ++j) {
    const Access& a = t.accesses[j];
    if (a.mode != AccessMode::kWrite || a.region.runs != 1 ||
        a.arg_offset == kNoArgOffset) {
      continue;
    }
    auto* buffer = new unsigned char[a.region.run_bytes];
    auto* rec = new RenameRecord{reinterpret_cast<void*>(a.region.base), buffer,
                                 a.region.run_bytes, t.renames};
    t.renames = rec;
    *reinterpret_cast<void**>(static_cast<char*>(t.args) + a.arg_offset) =
        buffer;
  }
}

/// Is a claimed (non-Init) task still interesting to future scans? Pure
/// fork-join descriptors stop mattering the moment their claim settles —
/// they block nobody and can never be claimed again — unless a splitter may
/// still be invoked on them.
bool entry_retired(const Task& t, TaskState s) {
  if (s == TaskState::kTerm || s == TaskState::kBodyDoneOwner) return true;
  return s != TaskState::kInit && t.naccesses == 0 && !t.splittable();
}

}  // namespace

void Worker::refresh_scan_state(FrameScanState& fs, Frame& f) {
  const std::uint64_t fe = f.epoch();
  if (fs.epoch != fe) {
    // The frame was recycled since we last saw it (or never seen): every
    // cached pointer is stale. Restart from index 0 of this incarnation.
    fs.epoch = fe;
    fs.ingested = 0;
    fs.listed_round = 0;
    fs.entries.clear();
    stats_->scan_rebuilds++;
  }
  const std::uint32_t published = f.size_acquire();
  if (fs.ingested >= published) return;
  Frame::Iterator it(f);
  it.seek(fs.ingested);
  for (std::uint32_t i = fs.ingested; i < published; ++i, it.advance()) {
    Task* t = it.get();
    // Ingest-time filter: tasks that already settled never enter the cache.
    if (!entry_retired(*t, t->load_state())) {
      fs.entries.push_back(FrameScanState::Entry{t, i});
    }
  }
  fs.ingested = published;
}

FrameScanState& Worker::ensure_scan_lists(Worker& victim, std::uint32_t d,
                                          std::uint64_t round) {
  FrameScanState& fs = victim.scan_state_[d];
  if (fs.listed_round == round) return fs;
  refresh_scan_state(fs, victim.frame_at(d));
  fs.listed_round = round;
  fs.thief_side.clear();
  fs.strong.clear();
  std::size_t w = 0;
  for (const FrameScanState::Entry& e : fs.entries) {
    const TaskState s = e.task->load_state();
    if (entry_retired(*e.task, s)) {
      stats_->scan_retired++;
      continue;
    }
    if (e.task->naccesses != 0) {
      switch (s) {
        case TaskState::kStolenClaim:
        case TaskState::kRunThief:
        case TaskState::kBodyDoneThief:
        case TaskState::kCommitReady:
          fs.thief_side.push_back(e.task);
          fs.strong.push_back(e.task);
          break;
        case TaskState::kInit:
        case TaskState::kRunOwner:
          fs.strong.push_back(e.task);
          break;
        default:
          break;  // unreachable: retired above
      }
    }
    fs.entries[w++] = e;
  }
  fs.entries.resize(w);
  return fs;
}

/// Readiness of candidate `t` in frame `d` given the already-walked live
/// prefix of its own frame. Scans all program-order predecessors still in
/// flight (§II-C "traversal of the victim stack from the top most task (the
/// oldest), to look all its predecessors have been completed").
///
/// Predecessor rules (see task.hpp for the state rationale):
///   frames < d : only thief-side tasks precede the candidate (Init tasks
///                there run after the whole subtree; RunOwner/BodyDoneOwner
///                are its ancestors);
///   frame == d : every earlier, still-blocking sibling precedes it (the
///                `prefix` scratch built by the candidate walk);
///   frames > d : every blocking task precedes it (descendants of an earlier
///                sibling).
///
/// Cross-frame lists are pulled lazily per consulted frame and memoized for
/// the round; a single-frame dataflow program therefore never pays for a
/// cross-frame sweep at all. Sound under state monotonicity + the
/// hierarchical-dataflow contract: a blocker observed late can only have
/// *stopped* blocking, and children published after a list was built are
/// covered by their still-listed running ancestor's declared accesses.
Readiness Worker::check_ready(Worker& victim, std::uint64_t round,
                              std::uint32_t depth, std::uint32_t d,
                              const std::vector<const Task*>& prefix,
                              const Task& t) {
  if (t.naccesses == 0) return Readiness::kReady;
  bool blocked = false;
  bool false_only = true;
  for (std::uint32_t f = 0; f < d; ++f) {
    const FrameScanState& fs = ensure_scan_lists(victim, f, round);
    for (const Task* p : fs.thief_side) {
      blocked |= conflicts_with(*p, t, false_only);
    }
  }
  for (const Task* p : prefix) {
    blocked |= conflicts_with(*p, t, false_only);
  }
  for (std::uint32_t f = d + 1; f < depth; ++f) {
    const FrameScanState& fs = ensure_scan_lists(victim, f, round);
    for (const Task* p : fs.strong) {
      blocked |= conflicts_with(*p, t, false_only);
    }
  }
  if (!blocked) return Readiness::kReady;
  return false_only ? Readiness::kFalseOnly : Readiness::kBlocked;
}

// Batch-pops from the frame's ready list into the reply pool. Under split
// locking (XK_RL_LOCK=split, the default) the batch is not an atomic
// snapshot of the whole list — completions land concurrently and a short
// (even empty) batch only means the shards looked dry when probed. That is
// fine here: the deal serves whatever the pool holds, an unserved thief's
// request simply fails and is re-posted, and the next combiner round
// re-pours. Nothing below assumes "one lock acquisition saw everything".
void Worker::pour_ready_list(ReadyList& rl, Frame& f,
                             std::size_t pool_target, std::size_t npending) {
  if (reply_scratch_.size() >= pool_target) return;
  if (adaptive_steal_) {
    // Steal-half cap per list: grant the one-each floor, then take half of
    // the remaining live depth and leave the victim the other half (the
    // relaxed depth gauge can lag — adaptive_take_cap still probes one pop
    // on a stale zero so the deal cannot starve).
    const std::size_t cap =
        adaptive_take_cap(rl.approx_ready(), npending);
    pool_target = std::min(pool_target, reply_scratch_.size() + cap);
    if (reply_scratch_.size() >= pool_target) return;
  }
  batch_scratch_.resize(pool_target - reply_scratch_.size());
  const std::size_t got = rl.pop_ready_claimed_batch(
      batch_scratch_.data(), batch_scratch_.size(), domain_rank_,
      &stats_->shard_hits, &stats_->shard_misses, &stats_.value);
  stats_->readylist_pops += got;
  if (got != 0) f.mark_steal_claimed();
  for (std::size_t k = 0; k < got; ++k) {
    reply_scratch_.push_back({batch_scratch_[k], &f});
  }
}

std::size_t Worker::deal_pool(std::vector<PendingReq>& pending,
                              std::size_t served, StealRequest* self_slot) {
  std::vector<PooledReply>& pool = reply_scratch_;
  if (pool.empty()) return served;
  const std::size_t remaining = pending.size() - served;
  if (pool.size() < remaining) {
    // Scarce replies: not every waiting thief gets one this round. Serve
    // the desperate first — thieves of starving domains (nothing local to
    // fall back on), then idle thieves (empty stacks; a suspended owner
    // that gets kFailed here still has its own frames to mind and a
    // reclaim fallback). A thief of a healthy domain that misses out will
    // land on a local victim on its next draw. The reorder is a stable
    // partition through a reused scratch vector (std::stable_partition may
    // malloc a temporary buffer, and this runs under the victim's steal
    // mutex); box order still breaks ties, and when every requester is an
    // equally-idle thief of a healthy domain (the common flat-machine
    // round) the order is untouched. The combiner's own slot gets no
    // special treatment: if it ends up past the receiver window, the deal
    // below hands one task to each receiver and strands nothing (see the
    // stranding note).
    const auto thr = static_cast<std::uint64_t>(starve_rounds_);
    std::vector<PendingReq>& scratch = deal_scratch_;
    scratch.resize(remaining);
    // Evaluate the (racy, relaxed) verdict exactly once per request:
    // desperate entries fill the scratch from the front, the rest from the
    // back in reverse — one reverse restores their box order, giving a
    // stable partition without a second starving() pass that a concurrent
    // gauge update could contradict.
    std::size_t lo = 0, hi = remaining;
    for (std::size_t i = served; i < pending.size(); ++i) {
      const bool desperate =
          (starve_rounds_ > 0 &&
           starvation_->starving(pending[i].domain_rank, thr)) ||
          pending[i].idle;
      if (desperate) {
        scratch[lo++] = pending[i];
      } else {
        scratch[--hi] = pending[i];
      }
    }
    if (lo != 0 && lo != remaining) {
      std::reverse(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
                   scratch.end());
      std::copy(scratch.begin(), scratch.end(),
                pending.begin() + static_cast<std::ptrdiff_t>(served));
    }
  }
  // Want-honoring deal. Pass 1: every receiver gets one distinct task
  // (steal-one semantics never fail a thief the pool can cover). Pass 2:
  // the surplus tops receivers up to their want — the combiner's own slot
  // first (it executes immediately after releasing the mutex, so a large
  // batch there never strands claimed work), then steal-half thieves
  // round-robin. In fixed mode every other want is 1, so pass 2 feeds the
  // self slot only and the deal reproduces the old steal-k split exactly.
  // Handing multi-task batches to other thieves parks claimed chain heads
  // on threads that may be descheduled; that risk is what the feedback bit
  // gates — only a thief that proved it drains full replies asks for more.
  const std::size_t receivers = std::min(remaining, pool.size());
  std::vector<std::uint32_t>& alloc = alloc_scratch_;
  alloc.assign(receivers, 1);
  std::size_t avail = pool.size() - receivers;
  std::size_t self_r = receivers;  // index of our own slot, if it received
  for (std::size_t r = 0; r < receivers; ++r) {
    if (pending[served + r].slot == self_slot) {
      self_r = r;
      break;
    }
  }
  if (self_r != receivers) {
    const std::uint32_t want = pending[served + self_r].want;
    const auto extra = static_cast<std::uint32_t>(
        std::min<std::size_t>(avail, want > 1 ? want - 1 : 0));
    alloc[self_r] += extra;
    avail -= extra;
  }
  for (bool progress = true; avail != 0 && progress;) {
    progress = false;
    for (std::size_t r = 0; r < receivers && avail != 0; ++r) {
      if (r == self_r || alloc[r] >= pending[served + r].want) continue;
      ++alloc[r];
      --avail;
      progress = true;
    }
  }
  // avail is now 0: the pour targets never exceed the summed wants of the
  // unserved requests, and with pool.size() > receivers every request is a
  // receiver, so the wants can absorb the whole pool — nothing claimed is
  // ever stranded in the scratch.
  assert(avail == 0);
  for (std::size_t r = 0; avail != 0 && r < receivers; ++r) {
    // Unreachable by the invariant above; kept so a future pour-target bug
    // can only over-serve a thief (capped by the reply array), never leak
    // a claimed task out of the scheduler.
    const auto extra = static_cast<std::uint32_t>(std::min<std::size_t>(
        avail, StealRequest::kMaxBatch - alloc[r]));
    alloc[r] += extra;
    avail -= extra;
  }
  // Hand the *youngest* pooled tasks to the other thieves and keep the
  // oldest for our own slot: we execute immediately, so the oldest work —
  // whose program-order successors the victim's drain reaches first —
  // starts with no pickup latency, while a briefly-descheduled peer only
  // delays work the drain is farthest from.
  std::size_t back = pool.size();  // youngest not-yet-assigned task
  for (std::size_t r = 0; r < receivers; ++r) {
    if (r == self_r) continue;  // filled below from the front of the pool
    StealRequest* s = pending[served + r].slot;
    const std::uint32_t n = alloc[r];
    back -= n;
    for (std::uint32_t k = 0; k < n; ++k) {
      s->reply[k] = pool[back + k].task;
      s->reply_frame[k] = pool[back + k].frame;
    }
    s->nreplies = n;
  }
  if (self_r != receivers) {
    // Our slot takes the remaining pool[0..back): the oldest tasks plus
    // whatever surplus pass 2 granted.
    assert(back == alloc[self_r]);
    StealRequest* s = pending[served + self_r].slot;
    std::uint32_t n = 0;
    for (std::size_t i = 0; i < back; ++i, ++n) {
      s->reply[n] = pool[i].task;
      s->reply_frame[n] = pool[i].frame;
    }
    s->nreplies = n;
  }
  // Publish only after every reply array is complete.
  for (std::size_t r = 0; r < receivers; ++r) {
    pending[served + r].slot->status.store(StealRequest::kServed,
                                           std::memory_order_release);
  }
  pool.clear();
  return served + receivers;
}

void Worker::combine_on(Worker& victim) {
  stats_->combiner_rounds++;
  const std::uint64_t round_t0 = obs::span_begin();
  const bool aggregate = rt_.config().steal_aggregation;
  StealRequest* const self_slot = &victim.request_slot(id_);
  std::vector<PendingReq>& pending = pending_scratch_;
  pending.clear();
  for (unsigned i = 0; i < victim.nslots(); ++i) {
    StealRequest& s = victim.request_slot(i);
    if (s.status.load(std::memory_order_acquire) == StealRequest::kPosted) {
      if (aggregate || i == id_) {
        // Reply-size ceiling per request. Fixed mode: one task per other
        // thief, the steal_batch surplus for our own slot (we execute it
        // immediately). Adaptive mode: the request's stealhalf bit asks
        // for up to a full reply array; the pour's depth cap decides how
        // much of that ceiling a round can actually fund.
        std::uint32_t want = 1;
        if (adaptive_steal_) {
          if (s.stealhalf) want = StealRequest::kMaxBatch;
        } else if (&s == self_slot) {
          want = static_cast<std::uint32_t>(steal_batch_);
        }
        pending.push_back({&s, rt_.worker(i).domain_rank(), want, s.idle});
      }
    }
  }
  if (pending.empty()) {
    obs::emit_span(obs::Ev::kCombine, round_t0, victim.id(), 0, 0);
    return;
  }

  std::size_t served = 0;
  const std::uint64_t round = ++victim.scan_round_;
  const std::uint32_t depth = victim.depth_acquire();
  std::vector<Task*>& adaptives = adaptive_scratch_;
  adaptives.clear();
  // Pooling: one traversal claims up to the summed reply ceilings into the
  // pool; a single deal after the loop serves every thief. The walk still
  // stops early — once the pool is full there is nothing left to look for.
  auto pool_target_for = [&](std::size_t served_now) {
    std::size_t t = 0;
    for (std::size_t i = served_now; i < pending.size(); ++i) {
      t += pending[i].want;
    }
    return t;
  };
  std::vector<PooledReply>& pool = reply_scratch_;
  pool.clear();
  const std::size_t pool_target = pool_target_for(0);
  std::size_t scanned_blocked = 0;
  Frame* hottest = nullptr;
  std::size_t hottest_blocked = 0;
  const bool renaming = rt_.config().renaming;
  const std::size_t threshold = rt_.config().ready_list_threshold;

  for (std::uint32_t d = 0; d < depth && pool.size() < pool_target; ++d) {
    Frame& f = victim.frame_at(d);

    if (ReadyList* rl = f.ready_list.load(std::memory_order_acquire)) {
      // Accelerated path (§II-C): the list is authoritative for this frame.
      rl->extend(domain_rank_);
      pour_ready_list(*rl, f, pool_target, pending.size() - served);
      continue;
    }

    // Candidate walk over the frame's persistent scan entries: every task
    // is state-loaded once, settled entries are compacted out so the next
    // round never revisits them, and the walk stops the moment all pending
    // requests are served.
    FrameScanState& fs = victim.scan_state_[d];
    refresh_scan_state(fs, f);
    std::vector<const Task*>& prefix = prefix_scratch_;
    prefix.clear();
    std::size_t blocked_here = 0;
    std::vector<FrameScanState::Entry>& es = fs.entries;
    std::size_t w = 0;  // compaction write cursor
    std::size_t i = 0;
    bool stop = false;

    for (; i < es.size() && !stop; ++i) {
      Task* t = es[i].task;
      const TaskState s = t->load_state();
      stats_->scan_entries++;
      if (entry_retired(*t, s)) {
        stats_->scan_retired++;
        continue;
      }
      if (s == TaskState::kInit) {
        stats_->scan_visited++;
        const Readiness r = check_ready(victim, round, depth, d, prefix, *t);
        if (r == Readiness::kReady ||
            (r == Readiness::kFalseOnly && renaming)) {
          if (t->try_claim(TaskState::kStolenClaim)) {
            f.mark_steal_claimed();
            if (r == Readiness::kFalseOnly) {
              apply_renaming(*t);
              stats_->renames++;
            }
            pool.push_back({t, &f});
            if (t->naccesses != 0 && fs.listed_round == round) {
              // Deeper frames consult this frame's thief-side list later
              // this round; the claim just moved t into that category.
              fs.thief_side.push_back(t);
            }
            if (pool.size() == pool_target) stop = true;
          }
        } else {
          ++blocked_here;
          ++scanned_blocked;
          // Don't finish an expensive traversal that already qualified this
          // frame for the accelerating structure: bail out and attach it
          // (the per-candidate cost grows with the live prefix, so full
          // scans of big blocked frames are quadratic — exactly the cost
          // §II-C's ready list exists to remove).
          if (threshold != 0 && scanned_blocked > threshold) {
            hottest_blocked = blocked_here;
            hottest = &f;
            stop = true;
          }
        }
      } else if ((s == TaskState::kRunOwner || s == TaskState::kRunThief) &&
                 t->splittable()) {
        adaptives.push_back(t);
      }
      // Still-relevant entry: keep it and record it as a program-order
      // blocker for the candidates that follow in this frame.
      if (t->naccesses != 0) prefix.push_back(t);
      es[w++] = es[i];
    }
    // Close the compaction gap without touching the unwalked tail.
    if (w < i) es.erase(es.begin() + static_cast<std::ptrdiff_t>(w),
                        es.begin() + static_cast<std::ptrdiff_t>(i));

    if (blocked_here > hottest_blocked) {
      hottest_blocked = blocked_here;
      hottest = &f;
    }
    if (threshold != 0 && scanned_blocked > threshold) break;
  }

  served = deal_pool(pending, served, self_slot);

  // On-demand task creation (§II-D): ask running adaptive tasks to split.
  if (served < pending.size()) {
    for (Task* t : adaptives) {
      if (served >= pending.size()) break;
      std::vector<StealRequest*> rest;
      rest.reserve(pending.size() - served);
      for (std::size_t i = served; i < pending.size(); ++i) {
        rest.push_back(pending[i].slot);
      }
      SplitContext sc(rest.data(), rest.size());
      stats_->splitter_calls++;
      t->splitter(t->adaptive_state, sc);
      served += sc.replied();
    }
  }

  // Attach the accelerating structure once traversals get expensive
  // (§II-C), sharded one ready deque per locality domain so producers and
  // consumers of different domains stop funneling through one deque's
  // cache lines (flat machines and XK_RL_SHARD=0 get a single shard).
  if (served < pending.size() && threshold != 0 &&
      scanned_blocked > threshold && hottest != nullptr &&
      hottest->ready_list.load(std::memory_order_relaxed) == nullptr) {
    // The board hook only makes sense with domain-keyed shards: a single
    // forced shard (XK_RL_SHARD=0) would credit every domain's ready depth
    // to rank 0 and corrupt the starvation veto, so the unsharded ablation
    // runs without depth tracking (starvation falls back to pure
    // failed-round counting). The lock mode (XK_RL_LOCK) picks between
    // two-level graph/shard locking, the lock-free ring scheme, and the
    // single-mutex baseline.
    auto* rl = shard_ready_
                   ? new ReadyList(*hottest, rt_.ndomains(),
                                   &rt_.starvation(), rl_lock_mode_)
                   : new ReadyList(*hottest, 1, nullptr, rl_lock_mode_);
    hottest->ready_list.store(rl, std::memory_order_release);
    rl->extend(domain_rank_);
    stats_->readylist_attach++;
    obs::emit(obs::Ev::kRlAttach, hottest->size_acquire());
    pour_ready_list(*rl, *hottest, pool_target_for(served),
                    pending.size() - served);
    served = deal_pool(pending, served, self_slot);
  }

  stats_->requests_served += served;
  for (std::size_t i = 0; i < served; ++i) {
    if (pending[i].slot != &victim.request_slot(id_)) {
      stats_->requests_aggregated++;
    }
  }
  for (std::size_t i = served; i < pending.size(); ++i) {
    pending[i].slot->status.store(StealRequest::kFailed,
                                  std::memory_order_release);
  }
  obs::emit_span(obs::Ev::kCombine, round_t0, victim.id(), pending.size(),
                 served);
}

}  // namespace xk
