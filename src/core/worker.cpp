// Worker implementation: FIFO owner execution, the steal protocol with
// request aggregation, steal-time readiness computation, renaming, and the
// ready-list integration. See worker.hpp for the protocol overview.
#include "core/worker.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/adaptive.hpp"
#include "core/readylist.hpp"
#include "core/runtime.hpp"

namespace xk {

namespace {
thread_local Worker* tls_worker = nullptr;
}  // namespace

Worker* this_worker() { return tls_worker; }

namespace detail {
void set_this_worker(Worker* w) { tls_worker = w; }
}  // namespace detail

Worker::Worker(Runtime& rt, unsigned id, unsigned nworkers)
    : rt_(rt),
      id_(id),
      backoff_limit_(rt.config().steal_backoff),
      frames_(kMaxDepth),
      reqbox_(nworkers),
      rng_(0x853c49e6748fea9bULL ^ (id * 0x9e3779b97f4a7c15ULL)) {}

Worker::~Worker() = default;

// ---------------------------------------------------------------------------
// Frame stack: owner push / Dekker-protected pop (see worker.hpp).
// ---------------------------------------------------------------------------

Frame& Worker::push_frame() {
  const std::uint32_t d = depth_.load(std::memory_order_relaxed);
  if (d >= kMaxDepth) throw std::runtime_error("xk: frame stack overflow");
  Frame& f = frames_[d];
  depth_.store(d + 1, std::memory_order_seq_cst);
  return f;
}

void Worker::pop_frame() {
  const std::uint32_t d = depth_.load(std::memory_order_relaxed);
  Frame& f = frames_[d - 1];
  depth_.store(d - 1, std::memory_order_seq_cst);
  // Dekker handshake: a combiner sets scanning_ (seq_cst) before reading
  // depth_ (seq_cst). Either it sees the decremented depth and never touches
  // this frame, or we see scanning_ true here and wait the scan out before
  // recycling the frame's memory.
  while (scanning_.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }
  f.reset();
}

// ---------------------------------------------------------------------------
// Owner-side execution.
// ---------------------------------------------------------------------------

namespace {

/// Commits renamed writes in program order and frees the records.
void commit_renames(Task* t) {
  RenameRecord* r = t->renames;
  while (r != nullptr) {
    std::memcpy(r->target, r->buffer, r->bytes);
    RenameRecord* next = r->next;
    delete[] static_cast<unsigned char*>(r->buffer);
    delete r;
    r = next;
  }
  t->renames = nullptr;
}

/// Locks (in address order) the serialization guards of a task's
/// cumulative-write regions for the duration of the body. Two CW tasks on
/// the same region are scheduler-independent; this guard keeps their bodies
/// from interleaving (see Runtime::cw_guard).
class CwBodyGuard {
 public:
  CwBodyGuard(Runtime& rt, const Task& t) {
    for (std::uint32_t i = 0; i < t.naccesses; ++i) {
      const Access& a = t.accesses[i];
      if (a.mode == AccessMode::kCumulWrite) {
        locks_.push_back(&rt.cw_guard(a.region.base));
      }
    }
    std::sort(locks_.begin(), locks_.end());
    locks_.erase(std::unique(locks_.begin(), locks_.end()), locks_.end());
    for (std::mutex* m : locks_) m->lock();
  }
  ~CwBodyGuard() {
    for (auto it = locks_.rbegin(); it != locks_.rend(); ++it) (*it)->unlock();
  }

 private:
  std::vector<std::mutex*> locks_;
};

}  // namespace

void Worker::run_task(Task* t, Frame* src, bool stolen) {
  if (stolen) {
    t->state.store(TaskState::kRunThief, std::memory_order_release);
    stats_->tasks_run_thief++;
  } else {
    stats_->tasks_run_owner++;
  }
  push_frame();
  try {
    if (t->naccesses != 0) {
      CwBodyGuard guard(rt_, *t);
      t->body(t->args, *this);
    } else {
      t->body(t->args, *this);
    }
  } catch (...) {
    t->exception = std::current_exception();
  }
  if (t->splitter != nullptr) {
    t->splitter_armed.store(false, std::memory_order_release);
  }
  t->state.store(stolen ? TaskState::kBodyDoneThief : TaskState::kBodyDoneOwner,
                 std::memory_order_release);
  try {
    drain_current_frame();
  } catch (...) {
    if (!t->exception) t->exception = std::current_exception();
  }
  pop_frame();

  if (stolen && t->renames != nullptr) {
    // The body wrote into rename buffers; the frame owner commits them in
    // program order (wait_and_finalize) and publishes Term.
    t->state.store(TaskState::kCommitReady, std::memory_order_release);
    return;
  }
  if (!stolen && t->renames != nullptr) {
    // Owner-claimed after a combiner renamed-but-lost the claim race can not
    // happen (claim precedes renaming); renames imply the steal path.
    commit_renames(t);
  }
  if (src != nullptr) {
    if (ReadyList* rl = src->ready_list.load(std::memory_order_acquire)) {
      rl->on_complete(t);  // before Term: see ReadyList locking notes
    }
  }
  t->state.store(TaskState::kTerm, std::memory_order_release);
}

void Worker::drain_current_frame() {
  Frame& f = current_frame();
  std::exception_ptr first_exc;
  for (;;) {
    const std::uint32_t n = f.size_relaxed();
    if (f.exec_cursor() >= n) break;
    Task* t = f.exec_current();
    f.exec_advance();
    if (t->try_claim(TaskState::kRunOwner)) {
      run_task(t, &f, /*stolen=*/false);
    } else {
      wait_and_finalize(t, f);
    }
    if (t->exception) {
      if (!first_exc) first_exc = t->exception;
      // Arena-allocated descriptors are recycled without destruction; drop
      // the exception_ptr reference here so it cannot leak.
      t->exception = nullptr;
    }
  }
  if (first_exc) std::rethrow_exception(first_exc);
}

void Worker::wait_and_finalize(Task* t, Frame& f) {
  int failures = 0;
  for (;;) {
    const TaskState s = t->load_state();
    if (s == TaskState::kTerm) return;
    if (s == TaskState::kCommitReady) {
      // All program-order predecessors terminated (the drain is in-order),
      // so the renamed writes can land on their true targets.
      commit_renames(t);
      if (ReadyList* rl = f.ready_list.load(std::memory_order_acquire)) {
        rl->on_complete(t);
      }
      t->state.store(TaskState::kTerm, std::memory_order_release);
      return;
    }
    if (try_steal_once()) {
      failures = 0;
    } else if (++failures >= backoff_limit_) {
      std::this_thread::yield();
    }
  }
}

// ---------------------------------------------------------------------------
// Thief side: request posting, combining, readiness.
// ---------------------------------------------------------------------------

bool Worker::try_steal_once() {
  const unsigned nw = rt_.nworkers();
  if (nw < 2) return false;
  // Helping while suspended nests the stolen subtree on this C++ stack;
  // refuse new work near the frame-stack ceiling and just wait instead.
  if (depth_.load(std::memory_order_relaxed) > kMaxDepth - 64) return false;
  // Random starting point, first victim that looks busy.
  const auto start = static_cast<unsigned>(rng_.next_below(nw));
  Worker* victim = nullptr;
  for (unsigned k = 0; k < nw; ++k) {
    const unsigned v = (start + k) % nw;
    if (v == id_) continue;
    if (rt_.worker(v).looks_busy()) {
      victim = &rt_.worker(v);
      break;
    }
  }
  if (victim == nullptr) return false;
  stats_->steal_attempts++;

  StealRequest& slot = victim->request_slot(id_);
  slot.reply = nullptr;
  slot.reply_frame = nullptr;
  slot.status.store(StealRequest::kPosted, std::memory_order_seq_cst);

  int spins = 0;
  for (;;) {
    const int s = slot.status.load(std::memory_order_acquire);
    if (s == StealRequest::kServed) {
      Task* t = slot.reply;
      Frame* src = slot.reply_frame;
      slot.status.store(StealRequest::kEmpty, std::memory_order_relaxed);
      stats_->steals_ok++;
      execute_reply(t, src);
      return true;
    }
    if (s == StealRequest::kFailed) {
      slot.status.store(StealRequest::kEmpty, std::memory_order_relaxed);
      return false;
    }
    if (victim->steal_mutex_.try_lock()) {
      victim->scanning_.store(true, std::memory_order_seq_cst);
      combine_on(*victim);
      victim->scanning_.store(false, std::memory_order_release);
      victim->steal_mutex_.unlock();
      continue;  // our own slot is now Served or Failed
    }
    if (++spins > 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void Worker::execute_reply(Task* t, Frame* src) {
  if (t->heap_owned) {
    // Splitter-produced task: host it in a fresh frame of this stack so it
    // is visible to further steals/splits, then run it like a local child.
    Frame& f = push_frame();
    f.push_task(t);
    try {
      drain_current_frame();
    } catch (...) {
      // Adaptive tasks own their error reporting (e.g. the foreach body
      // captures user exceptions into the loop's shared state); an exception
      // escaping here has already been recorded on the task.
    }
    pop_frame();
  } else {
    run_task(t, src, /*stolen=*/true);
  }
}

namespace {

/// Snapshot of the cross-frame blockers used by readiness checks, built at
/// most once per combiner round (lazily, on the first dataflow candidate).
/// Sound under state monotonicity + the hierarchical-dataflow contract; see
/// the readiness rules below.
struct ScanSnapshot {
  bool built = false;
  // Per frame: descriptors whose state was on the thief side (their subtree
  // runs on another stack) — these block candidates in *lower* scan frames.
  std::vector<std::vector<const Task*>> thief_side;
  // Per frame: descriptors in any successor-blocking state — these block
  // candidates in *shallower* frames.
  std::vector<std::vector<const Task*>> strong;

  void build(Worker& victim, std::uint32_t depth) {
    built = true;
    thief_side.assign(depth, {});
    strong.assign(depth, {});
    for (std::uint32_t d = 0; d < depth; ++d) {
      Frame& f = victim.frame_at(d);
      const std::uint32_t n = f.size_acquire();
      Frame::Iterator it(f);
      const std::uint32_t from = std::min(f.scan_hint(), n);
      it.seek(from);
      for (std::uint32_t i = from; i < n; ++i, it.advance()) {
        const Task* t = it.get();
        if (t->naccesses == 0) continue;
        switch (t->load_state()) {
          case TaskState::kStolenClaim:
          case TaskState::kRunThief:
          case TaskState::kBodyDoneThief:
          case TaskState::kCommitReady:
            thief_side[d].push_back(t);
            strong[d].push_back(t);
            break;
          case TaskState::kInit:
          case TaskState::kRunOwner:
            strong[d].push_back(t);
            break;
          case TaskState::kBodyDoneOwner:
          case TaskState::kTerm:
            break;
        }
      }
    }
  }
};

enum class Readiness { kReady, kBlocked, kFalseOnly };

/// Conflict check of candidate `t` against one predecessor. Updates
/// `false_only` (starts true): stays true only while every conflict is a
/// breakable WAR/WAW against a renameable contiguous Write access of `t`.
bool conflicts_with(const Task& pred, const Task& t, bool& false_only) {
  bool any = false;
  for (std::uint32_t i = 0; i < pred.naccesses; ++i) {
    for (std::uint32_t j = 0; j < t.naccesses; ++j) {
      const Access& pa = pred.accesses[i];
      const Access& ta = t.accesses[j];
      if (!accesses_conflict(pa, ta)) continue;
      any = true;
      const bool breakable = ta.mode == AccessMode::kWrite &&
                             ta.region.runs == 1 &&
                             ta.arg_offset != kNoArgOffset &&
                             conflict_is_false_dependency(pa, ta);
      if (!breakable) false_only = false;
    }
  }
  return any;
}

/// Readiness of candidate `t` at (frame `d`, index `idx`): scans all program-
/// order predecessors still in flight (§II-C "traversal of the victim stack
/// from the top most task (the oldest), to look all its predecessors have
/// been completed").
///
/// Predecessor rules (see task.hpp for the state rationale):
///   frames < d : only thief-side tasks precede the candidate (Init tasks
///                there run after the whole subtree; RunOwner/BodyDoneOwner
///                are its ancestors);
///   frame == d : every earlier, still-blocking sibling precedes it;
///   frames > d : every blocking task precedes it (descendants of an earlier
///                sibling).
Readiness check_ready(Worker& victim, std::uint32_t depth, std::uint32_t d,
                      const std::vector<const Task*>& prefix_live,
                      const Task& t, ScanSnapshot& snap) {
  if (t.naccesses == 0) return Readiness::kReady;
  if (!snap.built) snap.build(victim, depth);
  bool blocked = false;
  bool false_only = true;
  for (std::uint32_t f = 0; f < d; ++f) {
    for (const Task* p : snap.thief_side[f]) {
      blocked |= conflicts_with(*p, t, false_only);
    }
  }
  for (const Task* p : prefix_live) {
    blocked |= conflicts_with(*p, t, false_only);
  }
  for (std::uint32_t f = d + 1; f < depth; ++f) {
    for (const Task* p : snap.strong[f]) {
      blocked |= conflicts_with(*p, t, false_only);
    }
  }
  if (!blocked) return Readiness::kReady;
  return false_only ? Readiness::kFalseOnly : Readiness::kBlocked;
}

/// Redirects every contiguous Write access of a claimed task to a fresh
/// buffer; the frame owner commits the buffers in program order.
void apply_renaming(Task& t) {
  for (std::uint32_t j = 0; j < t.naccesses; ++j) {
    const Access& a = t.accesses[j];
    if (a.mode != AccessMode::kWrite || a.region.runs != 1 ||
        a.arg_offset == kNoArgOffset) {
      continue;
    }
    auto* buffer = new unsigned char[a.region.run_bytes];
    auto* rec = new RenameRecord{reinterpret_cast<void*>(a.region.base), buffer,
                                 a.region.run_bytes, t.renames};
    t.renames = rec;
    *reinterpret_cast<void**>(static_cast<char*>(t.args) + a.arg_offset) =
        buffer;
  }
}

}  // namespace

void Worker::combine_on(Worker& victim) {
  stats_->combiner_rounds++;
  const bool aggregate = rt_.config().steal_aggregation;
  std::vector<StealRequest*> pending;
  for (unsigned i = 0; i < victim.nslots(); ++i) {
    StealRequest& s = victim.request_slot(i);
    if (s.status.load(std::memory_order_acquire) == StealRequest::kPosted) {
      if (aggregate || i == id_) pending.push_back(&s);
    }
  }
  if (pending.empty()) return;

  std::size_t served = 0;
  auto reply_with = [&](Task* t, Frame* f) {
    StealRequest* s = pending[served++];
    s->reply = t;
    s->reply_frame = f;
    s->status.store(StealRequest::kServed, std::memory_order_release);
  };

  const std::uint32_t depth = victim.depth_acquire();
  ScanSnapshot snap;
  std::vector<Task*> adaptives;
  std::size_t scanned_blocked = 0;
  Frame* hottest = nullptr;
  std::size_t hottest_blocked = 0;
  const bool renaming = rt_.config().renaming;
  const std::size_t threshold = rt_.config().ready_list_threshold;

  for (std::uint32_t d = 0; d < depth && served < pending.size(); ++d) {
    Frame& f = victim.frame_at(d);

    if (ReadyList* rl = f.ready_list.load(std::memory_order_acquire)) {
      // Accelerated path (§II-C): the list is authoritative for this frame.
      rl->extend();
      while (served < pending.size()) {
        Task* t = rl->pop_ready_claimed();
        if (t == nullptr) break;
        stats_->readylist_pops++;
        reply_with(t, &f);
      }
      continue;
    }

    const std::uint32_t n = f.size_acquire();
    std::uint32_t idx = std::min(f.scan_hint(), n);
    Frame::Iterator it(f);
    it.seek(idx);
    std::vector<const Task*> prefix_live;  // blocking siblings before cursor
    bool all_term_prefix = true;
    std::size_t blocked_here = 0;

    for (; idx < n; ++idx, it.advance()) {
      Task* t = it.get();
      const TaskState s = t->load_state();
      if (s == TaskState::kTerm) {
        if (all_term_prefix) f.raise_scan_hint(idx + 1);
        continue;
      }
      all_term_prefix = false;

      if (s == TaskState::kInit) {
        stats_->scan_visited++;
        const Readiness r = check_ready(victim, depth, d, prefix_live, *t, snap);
        if (r == Readiness::kReady ||
            (r == Readiness::kFalseOnly && renaming)) {
          if (t->try_claim(TaskState::kStolenClaim)) {
            if (r == Readiness::kFalseOnly) {
              apply_renaming(*t);
              stats_->renames++;
            }
            reply_with(t, &f);
            if (t->naccesses != 0) prefix_live.push_back(t);
            if (served == pending.size()) break;
            continue;
          }
        } else {
          ++blocked_here;
          ++scanned_blocked;
          // Don't finish an expensive traversal that already qualified this
          // frame for the accelerating structure: bail out and attach it
          // (the per-candidate cost grows with the live prefix, so full
          // scans of big blocked frames are quadratic — exactly the cost
          // §II-C's ready list exists to remove).
          if (threshold != 0 && scanned_blocked > threshold) {
            hottest_blocked = blocked_here;
            hottest = &f;
            break;
          }
        }
      } else if ((s == TaskState::kRunOwner || s == TaskState::kRunThief) &&
                 t->splittable()) {
        adaptives.push_back(t);
      }
      if (t->naccesses != 0 && s != TaskState::kBodyDoneOwner) {
        prefix_live.push_back(t);
      }
    }
    if (blocked_here > hottest_blocked) {
      hottest_blocked = blocked_here;
      hottest = &f;
    }
    if (threshold != 0 && scanned_blocked > threshold) break;
  }

  // On-demand task creation (§II-D): ask running adaptive tasks to split.
  if (served < pending.size()) {
    for (Task* t : adaptives) {
      if (served >= pending.size()) break;
      std::vector<StealRequest*> rest(pending.begin() +
                                          static_cast<std::ptrdiff_t>(served),
                                      pending.end());
      SplitContext sc(rest.data(), rest.size());
      stats_->splitter_calls++;
      t->splitter(t->adaptive_state, sc);
      served += sc.replied();
    }
  }

  // Attach the accelerating structure once traversals get expensive (§II-C).
  if (served < pending.size() && threshold != 0 &&
      scanned_blocked > threshold && hottest != nullptr &&
      hottest->ready_list.load(std::memory_order_relaxed) == nullptr) {
    auto* rl = new ReadyList(*hottest);
    hottest->ready_list.store(rl, std::memory_order_release);
    rl->extend();
    stats_->readylist_attach++;
    while (served < pending.size()) {
      Task* t = rl->pop_ready_claimed();
      if (t == nullptr) break;
      stats_->readylist_pops++;
      reply_with(t, hottest);
    }
  }

  stats_->requests_served += served;
  for (std::size_t i = 0; i < served; ++i) {
    if (pending[i] != &victim.request_slot(id_)) stats_->requests_aggregated++;
  }
  for (std::size_t i = served; i < pending.size(); ++i) {
    pending[i]->status.store(StealRequest::kFailed, std::memory_order_release);
  }
}

}  // namespace xk
