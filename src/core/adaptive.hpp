// Adaptive tasks (§II-D): on-demand task creation.
//
// A running task may publish a *splitter*. When the combiner's traversal
// finds fewer ready tasks than pending steal requests, it invokes splitters
// of running adaptive tasks with a SplitContext holding the unserved
// requests. The steal mutex guarantees the paper's invariant: at most one
// thief executes a splitter concurrently with the task body, so body/splitter
// coordination can use simple protocols (here: a spinlocked interval).
//
// A splitter replies with freshly heap-allocated tasks; the receiving thief
// pushes the reply into a fresh frame of its own stack and executes it there,
// which makes the reply itself visible to further steals and splits.
#pragma once

#include <cstddef>
#include <utility>

#include "core/task.hpp"
#include "core/worker.hpp"

namespace xk {

namespace detail {

/// Heap-allocated task wrapper produced by splitters. Deleted by the frame
/// that hosted the reply (Frame::reset) through Task::heap_deleter.
template <typename F>
struct HeapTask {
  Task task;
  F fn;
  explicit HeapTask(F f) : fn(std::move(f)) {}
};

template <typename F>
void heap_task_trampoline(void* args, Worker& w) {
  (*static_cast<F*>(args))(w);
}

template <typename F>
void heap_task_deleter(void* box) {
  delete static_cast<HeapTask<F>*>(box);
}

}  // namespace detail

/// Creates a heap task running `fn(Worker&)`. Ownership passes to the frame
/// that eventually hosts it (see Frame::reset).
template <typename F>
Task* make_heap_task(F fn) {
  auto* box = new detail::HeapTask<F>(std::move(fn));
  box->task.heap_owned = true;
  box->task.heap_deleter = &detail::heap_task_deleter<F>;
  box->task.heap_box = box;
  box->task.body = &detail::heap_task_trampoline<F>;
  box->task.args = &box->fn;
  return &box->task;
}

/// Arms a prepared (unpublished) task as adaptive. Must be called before the
/// descriptor is pushed into a frame; after publication the splitter fields
/// are immutable and only `splitter_armed` may change (the body clears it
/// via `task.splitter_armed.store(false)` when no divisible work remains).
inline void arm_splitter(Task& task, TaskSplitter splitter, void* state) {
  task.splitter = splitter;
  task.adaptive_state = state;
  task.splitter_armed.store(true, std::memory_order_release);
}

/// View over the unserved steal requests handed to a splitter.
class SplitContext {
 public:
  SplitContext(StealRequest** slots, std::size_t n) : slots_(slots), n_(n) {}

  /// Number of requests still waiting for work.
  std::size_t size() const { return n_ - next_; }

  /// Replies to the next unserved request with a heap task running
  /// `fn(Worker&)`. Returns false when no request remains.
  template <typename F>
  bool reply(F fn) {
    if (size() == 0) return false;
    return reply_raw(make_heap_task(std::move(fn)));
  }

  /// Low-level reply with a prepared heap task. Returns false (and leaves
  /// the task untouched) when no request remains.
  bool reply_raw(Task* t);

  /// Requests consumed so far by this splitter invocation.
  std::size_t replied() const { return next_; }

 private:
  StealRequest** slots_;
  std::size_t n_;
  std::size_t next_ = 0;
};

}  // namespace xk
