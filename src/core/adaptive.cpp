#include "core/adaptive.hpp"

namespace xk {

bool SplitContext::reply_raw(Task* t) {
  if (next_ >= n_) return false;
  StealRequest* slot = slots_[next_++];
  slot->reply[0] = t;
  slot->reply_frame[0] = nullptr;  // heap task: no ready-list notification
  slot->nreplies = 1;
  slot->status.store(StealRequest::kServed, std::memory_order_release);
  return true;
}

}  // namespace xk
