// Task descriptor and the state machine shared by victim and thieves.
//
// A task is "a function call that returns no value except through the shared
// memory and the list of its effective parameters" (§II-B). The descriptor is
// bump-allocated in its frame's arena by the owner and, once published
// (frame task-count release-store), becomes immutable except for `state`,
// `exception` and the renaming records.
//
// State machine (the single atomic below is our T.H.E analog: the victim's
// FIFO claim and a thief's steal claim race on one CAS):
//
//   Init ──CAS(owner)──► RunOwner ──► BodyDoneOwner ──► Term
//     └───CAS(combiner)► StolenClaim ──► RunThief ──► BodyDoneThief ──► Term
//                              └──CAS(owner reclaim)──► RunOwner ──► ...
//
// StolenClaim is itself a second arbitration point: the receiving thief
// must CAS StolenClaim -> RunThief before executing, and a frame owner
// whose FIFO drain reaches a claimed-but-unstarted task may CAS
// StolenClaim -> RunOwner to *reclaim* it and run it inline (the thief's
// later CAS fails and it drops the reply). Reclaim keeps joins from
// stalling on replies parked at thieves that are descheduled or busy —
// the claimed task is exactly the one the owner is idle waiting for.
//
// "Owner" means: claimed by the thread whose frame stack holds the
// descriptor, so the task's children are spawned onto the same stack and
// remain visible to readiness scans of that stack. "Thief" means the subtree
// moved to another worker's stack. A task *blocks* its program-order
// successors while its writes may still be in flight:
//
//   blocking(s) = (s != Term) && (s != BodyDoneOwner)
//
// BodyDoneOwner does not block because the body's writes are done and any
// still-running children have their own descriptors in deeper frames of the
// same stack, where the scan sees them individually. BodyDoneThief must
// block: the children live on the thief's stack, invisible to this scan.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

#include "check/check.hpp"
#include "core/access.hpp"

namespace xk {

class Worker;
struct Task;
class SplitContext;

/// Task body: receives the argument block allocated next to the descriptor.
using TaskBody = void (*)(void* args, Worker& worker);

/// Splitter for adaptive tasks (§II-D): invoked by the elected combiner, at
/// most one concurrently with the running body, to extract work on demand.
using TaskSplitter = void (*)(void* adaptive_state, SplitContext& ctx);

enum class TaskState : std::uint8_t {
  kInit = 0,
  kRunOwner = 1,
  kStolenClaim = 2,
  kRunThief = 3,
  kBodyDoneOwner = 4,
  kBodyDoneThief = 5,
  /// Stolen + renamed: body and subtree done, renamed writes awaiting the
  /// frame owner's in-order commit (then Term).
  kCommitReady = 6,
  kTerm = 7,
};

/// Does this state order the task before later tasks in a readiness scan?
constexpr bool state_blocks_successors(TaskState s) {
  return s != TaskState::kTerm && s != TaskState::kBodyDoneOwner;
}

/// The edges of the claim/commit machine drawn above, as a predicate: the
/// checked build (XK_CHECK=ON) asserts every non-CAS state store against
/// it (XK_EXPECT(task_transition) at the worker.cpp seams). The CAS
/// transitions enforce their from-state by construction; the plain stores
/// are where a scheduler bug could teleport a task — e.g. a double
/// completion storing BodyDone over Term.
constexpr bool task_transition_ok(TaskState from, TaskState to) {
  switch (from) {
    case TaskState::kInit:
      return to == TaskState::kRunOwner || to == TaskState::kStolenClaim;
    case TaskState::kStolenClaim:  // thief start, or the owner's reclaim
      return to == TaskState::kRunThief || to == TaskState::kRunOwner;
    case TaskState::kRunOwner:
      return to == TaskState::kBodyDoneOwner;
    case TaskState::kRunThief:
      return to == TaskState::kBodyDoneThief;
    case TaskState::kBodyDoneOwner:
      return to == TaskState::kTerm;
    case TaskState::kBodyDoneThief:  // CommitReady only under renaming
      return to == TaskState::kCommitReady || to == TaskState::kTerm;
    case TaskState::kCommitReady:
      return to == TaskState::kTerm;
    case TaskState::kTerm:  // terminal: nothing moves a task out of Term
      return false;
  }
  return false;
}

/// Deferred-write record created when the scheduler renames a Write access:
/// the body wrote into `buffer`; the owner copies it to `target` when the
/// task's program-order turn arrives (all predecessors terminated).
struct RenameRecord {
  void* target = nullptr;
  void* buffer = nullptr;
  std::size_t bytes = 0;
  RenameRecord* next = nullptr;
};

struct Task {
  std::atomic<TaskState> state{TaskState::kInit};
  /// Set when the descriptor was heap-allocated by a splitter reply rather
  /// than arena-allocated in a frame; the hosting frame deletes it at reset
  /// through heap_deleter(heap_box).
  bool heap_owned = false;
  void (*heap_deleter)(void*) = nullptr;
  void* heap_box = nullptr;

  TaskBody body = nullptr;
  void* args = nullptr;

  /// Declared accesses (arena-allocated array), empty for pure fork-join.
  const Access* accesses = nullptr;
  std::uint32_t naccesses = 0;

  /// Adaptive-task hooks (§II-D); null for regular tasks. Both fields are
  /// set before the descriptor is published (spawn time) and are immutable
  /// afterwards; `splitter_armed` is the dynamic on/off switch the body may
  /// clear when no divisible work remains.
  TaskSplitter splitter = nullptr;
  void* adaptive_state = nullptr;
  std::atomic<bool> splitter_armed{false};

  /// Renamed writes awaiting commit, owner-ordered (see RenameRecord).
  RenameRecord* renames = nullptr;

  /// First exception thrown by the body, adopted by the parent at its sync.
  std::exception_ptr exception;

  TaskState load_state(std::memory_order order = std::memory_order_acquire) const {
    return state.load(order);
  }

  bool try_claim(TaskState desired) {
    // The CAS itself forbids double claims (one winner out of Init); the
    // checked build additionally pins the *target*: claiming straight
    // into a run-done or terminal state would corrupt the machine while
    // still winning the CAS.
    XK_EXPECT(task_claim_state,
              desired == TaskState::kRunOwner ||
                  desired == TaskState::kStolenClaim,
              static_cast<std::uint64_t>(desired));
    TaskState expected = TaskState::kInit;
    return state.compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  /// True when a combiner may currently invoke the splitter.
  bool splittable() const {
    return splitter != nullptr &&
           splitter_armed.load(std::memory_order_acquire);
  }
};

}  // namespace xk
