// Parallel independent loops on the adaptive task model (§II-E).
//
// `parallel_for(first, last, body)` creates one adaptive task. The iteration
// interval is pre-partitioned into `P` reserved slices (one per worker); the
// caller iterates slice 0 chunk-by-chunk. A thief's splitter first claims an
// unclaimed reserved slice; when none remain it splits the victim's live
// interval [b_t, e) into k+1 equal parts for k aggregated requests, leaving
// one part on the victim. Owner chunk-pop and splitter tail-split are
// arbitrated by a per-interval spinlock (a T.H.E-style two-ended protocol
// with the collision window collapsed into a ~10ns critical section).
//
// The body signature is either
//   void(std::int64_t lo, std::int64_t hi)                 or
//   void(std::int64_t lo, std::int64_t hi, unsigned worker_id)
// and must treat iterations as independent. Exceptions thrown by the body
// cancel the remaining iterations and are rethrown at the call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/adaptive.hpp"
#include "core/spawn.hpp"
#include "support/cache.hpp"

namespace xk {

/// How the reserved slices partition the iteration space across workers:
///  * kFlat   — one near-equal slice per worker in id order (the original
///    topology-blind deal); any worker claims any unclaimed slice.
///  * kDomain — workers are grouped by locality domain and each domain gets
///    one contiguous sub-range (first-touch-friendly: a domain's workers
///    initialize and re-traverse the same pages). The unclaimed slices of a
///    domain form its remainder queue: workers and splitters exhaust their
///    own domain's queue before taking from a remote one, so adaptive
///    splitting stays domain-local until a domain runs dry.
///  * kAuto   — kDomain when the runtime's placement spans more than one
///    locality domain, kFlat otherwise (flat machines keep the old paths).
enum class ForeachPartition { kAuto, kFlat, kDomain };

struct ForeachOptions {
  /// Iterations per owner chunk pop; 0 = auto (total / (16 * workers),
  /// clamped to [1, 8192]).
  std::int64_t grain = 0;

  /// Reserved-slice partition mode (see ForeachPartition).
  ForeachPartition partition = ForeachPartition::kAuto;
};

namespace detail {

struct SpinLock {
  std::atomic_flag flag = ATOMIC_FLAG_INIT;
  void lock() noexcept {
    while (flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { flag.clear(std::memory_order_release); }
};

/// The live interval of one foreach (sub)task. Owner pops from the front,
/// the splitter carves the tail; both under the spinlock.
struct WorkInterval {
  std::int64_t b = 0;
  std::int64_t e = 0;
  SpinLock lk;

  /// Takes up to `n` iterations from the front; returns the count taken and
  /// stores the start in *out.
  std::int64_t pop_front(std::int64_t n, std::int64_t* out) {
    lk.lock();
    const std::int64_t take = std::min(n, e - b);
    *out = b;
    b += take > 0 ? take : 0;
    lk.unlock();
    return take > 0 ? take : 0;
  }

  /// Splits the remaining tail into `parts` near-equal pieces, keeping the
  /// first for the owner. Appends up to parts-1 [b,e) pairs to `out` and
  /// returns how many were appended. No split happens when fewer than
  /// `min_keep` iterations remain.
  int split_tail(int parts, std::int64_t min_keep,
                 std::vector<std::pair<std::int64_t, std::int64_t>>& out);

  /// Racy size hint (diagnostics only).
  std::int64_t remaining_hint() const { return e - b; }
};

/// State shared by the root foreach call and all split-off pieces.
/// Heap-allocated and reference-counted: splitter-produced closures may
/// outlive the parallel_for call frame by a few instructions (until their
/// host frame resets).
struct ForeachShared {
  using InvokeFn = void (*)(void* ctx, std::int64_t lo, std::int64_t hi,
                            unsigned wid);

  InvokeFn invoke = nullptr;
  void* ctx = nullptr;
  std::int64_t total = 0;
  std::int64_t grain = 1;

  std::atomic<std::int64_t> done{0};
  std::atomic<int> outstanding{0};  ///< live work bodies (root + pieces)
  std::atomic<int> refs{1};
  std::atomic<bool> error{false};
  std::mutex exc_mu;
  std::exception_ptr exc;

  struct Slice {
    std::atomic<bool> taken{false};
    std::int64_t b = 0;
    std::int64_t e = 0;
    unsigned domain = 0;  ///< locality domain this slice is homed to
  };
  std::vector<Padded<Slice>> slices;  ///< reserved slices, one per worker
  bool domain_mode = false;  ///< slices are domain-homed (ForeachPartition)

  void add_ref() { refs.fetch_add(1, std::memory_order_relaxed); }
  void release() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
  bool finished() const {
    const bool work_done =
        done.load(std::memory_order_acquire) == total ||
        error.load(std::memory_order_acquire);
    return work_done && outstanding.load(std::memory_order_acquire) == 0;
  }
  void record_error(std::exception_ptr e);
};

/// Adaptive state of one foreach (sub)task.
struct ForeachWork {
  ForeachShared* shared = nullptr;
  WorkInterval interval;
};

/// The work loop: pop chunks, invoke, then claim reserved slices (§II-E).
void foreach_run(ForeachWork& w, Worker& self);

/// The splitter invoked by combiners (at most one concurrently, §II-D).
void foreach_splitter(void* state, SplitContext& sc);

/// Full protocol from the caller's thread (sync, adaptive root task,
/// completion wait, scan barrier, error propagation).
void foreach_execute(ForeachShared& sh, std::int64_t first, std::int64_t last,
                     ForeachPartition partition);

template <typename B>
void invoke_body(B& body, std::int64_t lo, std::int64_t hi, unsigned wid) {
  if constexpr (std::is_invocable_v<B&, std::int64_t, std::int64_t, unsigned>) {
    body(lo, hi, wid);
  } else {
    static_assert(std::is_invocable_v<B&, std::int64_t, std::int64_t>,
                  "foreach body must be callable as (lo, hi) or (lo, hi, wid)");
    body(lo, hi);
  }
}

}  // namespace detail

/// Parallel loop over [first, last). See the header comment for semantics.
template <typename Body>
void parallel_for(std::int64_t first, std::int64_t last, Body&& body,
                  ForeachOptions opt = {}) {
  if (last <= first) return;
  using B = std::decay_t<Body>;
  B local_body(std::forward<Body>(body));

  Worker* w = this_worker();
  if (w == nullptr || w->depth_relaxed() == 0 || w->runtime().nworkers() < 2) {
    detail::invoke_body(local_body, first, last, w != nullptr ? w->id() : 0u);
    return;
  }

  auto* sh = new detail::ForeachShared();
  sh->invoke = [](void* ctx, std::int64_t lo, std::int64_t hi, unsigned wid) {
    detail::invoke_body(*static_cast<B*>(ctx), lo, hi, wid);
  };
  sh->ctx = &local_body;
  sh->total = last - first;
  const auto nw = static_cast<std::int64_t>(w->runtime().nworkers());
  sh->grain = opt.grain > 0
                  ? opt.grain
                  : std::max<std::int64_t>(
                        1, std::min<std::int64_t>(8192, sh->total / (16 * nw)));
  detail::foreach_execute(*sh, first, last,
                          opt.partition);  // releases the caller's ref
}

/// Element-wise convenience: body(i) per index.
template <typename Body>
void parallel_for_index(std::int64_t first, std::int64_t last, Body&& body,
                        ForeachOptions opt = {}) {
  using B = std::decay_t<Body>;
  B b(std::forward<Body>(body));
  parallel_for(
      first, last,
      [&b](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) b(i);
      },
      opt);
}

}  // namespace xk
