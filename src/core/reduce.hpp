// Loop reductions on top of parallel_for: per-worker accumulators on private
// cache lines, merged sequentially at loop end (the paper's reduction access
// mode applied to loops, §II-B/§II-E).
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/foreach.hpp"
#include "support/cache.hpp"

namespace xk {

/// Reduces body results over [first, last).
///   body: void(std::int64_t lo, std::int64_t hi, T& acc) — accumulate the
///         chunk into acc (which starts at `identity` per worker);
///   combine: T(T, T) — associative merge of two accumulators.
/// Deterministic iff `combine` is associative-commutative over the values
/// produced (floating-point reductions vary by schedule, as in OpenMP).
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::int64_t first, std::int64_t last, T identity,
                  Body&& body, Combine&& combine, ForeachOptions opt = {}) {
  Worker* w = this_worker();
  const unsigned nw = w != nullptr ? w->runtime().nworkers() : 1u;
  std::vector<Padded<T>> accs;
  accs.reserve(nw);
  for (unsigned i = 0; i < nw; ++i) accs.emplace_back(identity);

  parallel_for(
      first, last,
      [&](std::int64_t lo, std::int64_t hi, unsigned wid) {
        body(lo, hi, accs[wid].value);
      },
      opt);

  T result = identity;
  for (unsigned i = 0; i < nw; ++i) result = combine(result, accs[i].value);
  return result;
}

/// Convenience sum-reduction with per-index values: T(std::int64_t i).
template <typename T, typename Fn>
T parallel_sum(std::int64_t first, std::int64_t last, Fn&& fn,
               ForeachOptions opt = {}) {
  return parallel_reduce(
      first, last, T{},
      [&fn](std::int64_t lo, std::int64_t hi, T& acc) {
        for (std::int64_t i = lo; i < hi; ++i) acc += fn(i);
      },
      [](T a, T b) { return a + b; }, opt);
}

}  // namespace xk
