#include "core/readylist.hpp"

#include <algorithm>

namespace xk {

void ReadyList::extend() {
  // Cap the per-round coverage growth: extend() runs inside the victim's
  // scanning window, and the frame owner's pop_frame waits that window out —
  // covering a 100k-task frame in one go would stall the owner for the whole
  // build. Remaining tasks are covered by subsequent combiner rounds.
  constexpr std::uint32_t kMaxPerRound = 2048;
  std::lock_guard lock(mu_);
  const std::uint32_t published = frame_.size_acquire();
  if (covered_count_ >= published) return;
  Frame::Iterator it(frame_);
  it.seek(covered_count_);
  std::uint32_t added = 0;
  while (covered_count_ < published && added < kMaxPerRound) {
    add_node_locked(it.get());
    it.advance();
    ++covered_count_;
    ++added;
  }
}

void ReadyList::add_node_locked(Task* t) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{t, 0, false, {}});
  live_refs_.emplace_back();
  index_.emplace(t, id);
  Node& node = nodes_.back();

  // A task that already completed before coverage: record and move on.
  const TaskState s = t->load_state();
  const bool already_done =
      s == TaskState::kTerm || early_completions_.count(t) != 0;
  if (already_done) {
    node.completed = true;
    early_completions_.erase(t);
    return;
  }
  // Covered while already claimed: it may have loaded frame.ready_list
  // before the attach and thus terminate without notifying — watch it so
  // the lazy sweep folds the completion in.
  if (s != TaskState::kInit) watch_.push_back(id);

  // Count conflicts against live (non-completed) predecessors' accesses.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t hi = acc.region.hi();
    // Candidate predecessors: entries whose interval start is in
    // [lo - max_span_, hi). Anything starting earlier cannot reach lo.
    const std::uintptr_t from = lo > max_span_ ? lo - max_span_ : 0;
    for (auto itv = live_.lower_bound(from);
         itv != live_.end() && itv->first < hi; ++itv) {
      const ChainEntry& e = itv->second;
      if (e.node == id) continue;
      if (!accesses_conflict(*e.acc, acc)) continue;
      Node& pred = nodes_[e.node];
      if (pred.completed) continue;
      pred.successors.push_back(id);
      ++node.npred;
    }
  }

  // Publish this task's own accesses as live entries for later tasks.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t span = acc.region.hi() - lo;
    max_span_ = std::max(max_span_, span);
    auto itv = live_.emplace(lo, ChainEntry{id, &acc});
    live_refs_[id].push_back(itv);
  }

  if (node.npred == 0 && t->load_state() == TaskState::kInit) {
    ready_.push_back(id);
  }
}

void ReadyList::on_complete(Task* t) {
  std::lock_guard lock(mu_);
  auto found = index_.find(t);
  if (found == index_.end()) {
    early_completions_.emplace(t, true);
    return;
  }
  complete_node_locked(found->second);
}

void ReadyList::complete_node_locked(std::uint32_t id) {
  Node& node = nodes_[id];
  if (node.completed) return;
  node.completed = true;
  for (auto itv : live_refs_[id]) live_.erase(itv);
  live_refs_[id].clear();
  for (std::uint32_t succ : node.successors) {
    Node& s = nodes_[succ];
    if (s.npred > 0 && --s.npred == 0 && !s.completed) {
      ready_.push_back(succ);
    }
  }
  node.successors.clear();
}

Task* ReadyList::pop_ready_claimed() {
  Task* t = nullptr;
  return pop_ready_claimed_batch(&t, 1) == 1 ? t : nullptr;
}

std::size_t ReadyList::pop_ready_claimed_batch(Task** out, std::size_t max) {
  std::lock_guard lock(mu_);
  return pop_batch_locked(out, max);
}

std::size_t ReadyList::pop_batch_locked(Task** out, std::size_t max) {
  std::size_t got = 0;
  bool swept = false;
  while (got < max) {
    if (ready_.empty()) {
      // One lazy catch-up pass over the watched (claimed-elsewhere) nodes
      // per call: fold in completions whose notification raced the attach.
      if (swept || !sweep_watch_locked()) break;
      swept = true;
      continue;
    }
    const std::uint32_t id = ready_.front();
    ready_.pop_front();
    Node& node = nodes_[id];
    Task* t = node.task;
    if (t->try_claim(TaskState::kStolenClaim)) {
      // Watched as a safety net: the thief that runs a popped task re-reads
      // frame.ready_list before Term, but watching costs one sweep visit
      // and makes a silently-terminated claim impossible to strand.
      watch_.push_back(id);
      out[got++] = t;
      continue;
    }
    // Claimed elsewhere (victim FIFO won the race). Fold a missed
    // completion immediately — its successors enter ready_ now, ahead of
    // younger releases, so oldest-ready order survives the contention —
    // otherwise watch it for the lazy sweep.
    if (!node.completed) {
      if (t->load_state() == TaskState::kTerm) {
        ++missed_folds_;
        complete_node_locked(id);
      } else {
        watch_.push_back(id);
      }
    }
  }
  return got;
}

/// Walks the watch deque once, dropping settled nodes and folding in
/// terminations whose on_complete never arrived. Returns true when the
/// fold released at least one task into ready_.
bool ReadyList::sweep_watch_locked() {
  bool released = false;
  for (std::size_t n = watch_.size(); n > 0; --n) {
    const std::uint32_t id = watch_.front();
    watch_.pop_front();
    Node& node = nodes_[id];
    if (node.completed) continue;  // notified normally; settled
    if (node.task->load_state() == TaskState::kTerm) {
      ++missed_folds_;
      complete_node_locked(id);
      released = released || !ready_.empty();
      continue;
    }
    watch_.push_back(id);  // still in flight; keep watching, FIFO order
  }
  return released;
}

std::size_t ReadyList::covered() const {
  std::lock_guard lock(mu_);
  return covered_count_;
}

std::size_t ReadyList::ready_size() const {
  std::lock_guard lock(mu_);
  return ready_.size();
}

std::size_t ReadyList::watched_size() const {
  std::lock_guard lock(mu_);
  return watch_.size();
}

std::uint64_t ReadyList::missed_folds() const {
  std::lock_guard lock(mu_);
  return missed_folds_;
}

}  // namespace xk
