#include "core/readylist.hpp"

#include <algorithm>

namespace xk {

void ReadyList::extend() {
  // Cap the per-round coverage growth: extend() runs inside the victim's
  // scanning window, and the frame owner's pop_frame waits that window out —
  // covering a 100k-task frame in one go would stall the owner for the whole
  // build. Remaining tasks are covered by subsequent combiner rounds.
  constexpr std::uint32_t kMaxPerRound = 2048;
  std::lock_guard lock(mu_);
  const std::uint32_t published = frame_.size_acquire();
  if (covered_count_ >= published) return;
  Frame::Iterator it(frame_);
  it.seek(covered_count_);
  std::uint32_t added = 0;
  while (covered_count_ < published && added < kMaxPerRound) {
    add_node_locked(it.get());
    it.advance();
    ++covered_count_;
    ++added;
  }
}

void ReadyList::add_node_locked(Task* t) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{t, 0, false, {}});
  live_refs_.emplace_back();
  index_.emplace(t, id);
  Node& node = nodes_.back();

  // A task that already completed before coverage: record and move on.
  const TaskState s = t->load_state();
  const bool already_done =
      s == TaskState::kTerm || early_completions_.count(t) != 0;
  if (already_done) {
    node.completed = true;
    early_completions_.erase(t);
    return;
  }

  // Count conflicts against live (non-completed) predecessors' accesses.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t hi = acc.region.hi();
    // Candidate predecessors: entries whose interval start is in
    // [lo - max_span_, hi). Anything starting earlier cannot reach lo.
    const std::uintptr_t from = lo > max_span_ ? lo - max_span_ : 0;
    for (auto itv = live_.lower_bound(from);
         itv != live_.end() && itv->first < hi; ++itv) {
      const ChainEntry& e = itv->second;
      if (e.node == id) continue;
      if (!accesses_conflict(*e.acc, acc)) continue;
      Node& pred = nodes_[e.node];
      if (pred.completed) continue;
      pred.successors.push_back(id);
      ++node.npred;
    }
  }

  // Publish this task's own accesses as live entries for later tasks.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t span = acc.region.hi() - lo;
    max_span_ = std::max(max_span_, span);
    auto itv = live_.emplace(lo, ChainEntry{id, &acc});
    live_refs_[id].push_back(itv);
  }

  if (node.npred == 0 && t->load_state() == TaskState::kInit) {
    ready_.push_back(id);
  }
}

void ReadyList::on_complete(Task* t) {
  std::lock_guard lock(mu_);
  auto found = index_.find(t);
  if (found == index_.end()) {
    early_completions_.emplace(t, true);
    return;
  }
  complete_node_locked(found->second);
}

void ReadyList::complete_node_locked(std::uint32_t id) {
  Node& node = nodes_[id];
  if (node.completed) return;
  node.completed = true;
  for (auto itv : live_refs_[id]) live_.erase(itv);
  live_refs_[id].clear();
  for (std::uint32_t succ : node.successors) {
    Node& s = nodes_[succ];
    if (s.npred > 0 && --s.npred == 0 && !s.completed) {
      ready_.push_back(succ);
    }
  }
  node.successors.clear();
}

Task* ReadyList::pop_ready_claimed() {
  std::lock_guard lock(mu_);
  for (int attempt = 0; attempt < 2; ++attempt) {
    while (!ready_.empty()) {
      const std::uint32_t id = ready_.front();
      ready_.pop_front();
      Task* t = nodes_[id].task;
      if (t->try_claim(TaskState::kStolenClaim)) return t;
      // Claimed elsewhere (victim FIFO or a previous pop); skip.
    }
    if (attempt == 1 || nodes_.empty()) break;
    // Catch-up sweep: a task that was already claimed when its node was
    // added may have terminated before it could observe this list (its
    // pre-Term load of frame.ready_list raced the attach). Walk a bounded
    // rotating window of nodes and fold in completions the notifications
    // missed, then retry the pop once.
    const std::size_t window = std::min<std::size_t>(nodes_.size(), 4096);
    for (std::size_t k = 0; k < window; ++k) {
      if (sweep_cursor_ >= nodes_.size()) sweep_cursor_ = 0;
      const auto id = static_cast<std::uint32_t>(sweep_cursor_++);
      Node& node = nodes_[id];
      if (!node.completed && node.task->load_state() == TaskState::kTerm) {
        complete_node_locked(id);
      }
    }
  }
  return nullptr;
}

std::size_t ReadyList::covered() const {
  std::lock_guard lock(mu_);
  return covered_count_;
}

std::size_t ReadyList::ready_size() const {
  std::lock_guard lock(mu_);
  return ready_.size();
}

}  // namespace xk
