#include "core/readylist.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "check/check.hpp"
#include "obs/trace.hpp"

namespace xk {

ReadyList::ReadyList(Frame& frame, unsigned nshards, StarvationBoard* board,
                     RlLockMode lock_mode)
    : frame_(frame),
      board_(board),
      mode_(lock_mode),
      split_(lock_mode == RlLockMode::kSplit),
      lockfree_(lock_mode == RlLockMode::kLockFree),
      frame_epoch_(frame.epoch()),
      shards_(std::max(nshards, 1u)) {
  if (lockfree_) {
    for (Shard& s : shards_) {
      s.ring = std::make_unique<MpmcRing<Node*>>(kRingCapacity);
    }
  }
}

ReadyList::~ReadyList() {
  // A frame can recycle with tasks still queued (released successors the
  // owner's FIFO claimed and ran without a combiner ever popping them);
  // return any gauge contribution not already returned at completion so
  // the board never drifts. Keyed off Node::queued, not the deque sizes:
  // deques may hold dead entries whose contribution was settled when their
  // completion arrived. No locks: destruction is owner-only, after the
  // Dekker handshake has excluded every scanner and every task reached
  // Term (see Worker::pop_frame / Frame::reset).
  if constexpr (check::kEnabled) verify_accounting_quiesced("~ReadyList");
  if (board_ == nullptr) return;
  for (Node& n : nodes_) {
    const std::int32_t q = n.queued.load(std::memory_order_relaxed);
    if (q >= 0) board_->add_ready(static_cast<unsigned>(q), -1);
  }
}

void ReadyList::verify_accounting_quiesced(const char* where) {
  if constexpr (!check::kEnabled) {
    (void)where;
    return;
  }
  // Quiesced by contract (owner-only destruction, or a graph-held coverage
  // reset with no concurrent popper), so the relaxed reads below are exact:
  // the ring's cursors cannot move and the deques have no writer. Dead
  // entries count on both sides — nready_ tracks queue occupancy, not
  // liveness.
  std::uint64_t entries = 0;
  for (Shard& s : shards_) {
    if (lockfree_ && s.ring != nullptr) entries += s.ring->approx_size();
    entries += s.q.size();
  }
  const std::uint64_t counted = nready_.load(std::memory_order_relaxed);
  if (entries != counted) {
    std::fprintf(stderr, "xk_check: ready-list accounting audited at %s\n",
                 where);
  }
  XK_EXPECT(rl_accounting, entries == counted, entries, counted);
}

unsigned ReadyList::wrap_shard(unsigned shard) const {
  const unsigned ns = nshards();
  assert((shard < ns || ns == 1) &&
         "domain rank out of shard range (routing bug upstream)");
  return shard < ns ? shard : shard % ns;
}

/// Settles `n`'s board/depth contribution if it still has one. Called
/// right after a pop (split mode: the popper has already dropped the
/// shard lock by then) and at completion (under graph_mu_) — whichever
/// comes first wins the exchange; the other sees -1 and does nothing.
/// The atomic exchange is the whole synchronization: the two callers
/// share no lock.
void ReadyList::settle_queued(Node* n) {
  // xk-order: the exchange's atomicity alone elects the single settler;
  // the value gates nothing but the relaxed gauge decrements below.
  const std::int32_t q = n->queued.exchange(-1, std::memory_order_relaxed);
  if (q < 0) return;
  shards_[static_cast<unsigned>(q)].depth.fetch_sub(1,
                                                    std::memory_order_relaxed);
  if (board_ != nullptr) board_->add_ready(static_cast<unsigned>(q), -1);
}

/// Appends `n` to `shard`'s deque. Caller holds the shard's mutex (split)
/// or graph_mu_ (global).
void ReadyList::push_ready_shard_held(Node* n, unsigned shard) {
  // xk-order: the shard lock (or graph_mu_) the caller holds is the
  // publication edge; poppers read `queued` only after taking it too.
  n->queued.store(static_cast<std::int32_t>(shard), std::memory_order_relaxed);
  shards_[shard].q.push_back(n);
  const std::int64_t depth =
      shards_[shard].depth.fetch_add(1, std::memory_order_relaxed) + 1;
  nready_.fetch_add(1, std::memory_order_relaxed);
  // The board's ready-depth update rides the same shard lock as the deque
  // push, so a starvation reader never sees depth lag the queue by more
  // than the relaxed-gauge staleness it already tolerates.
  if (board_ != nullptr) board_->add_ready(shard, 1);
  obs::emit(obs::Ev::kRlPush, shard, obs::kProvDeque,
            static_cast<std::uint64_t>(depth > 0 ? depth : 0));
}

void ReadyList::check_epoch_graph_held() {
  const std::uint64_t e = frame_.epoch();
  if (e == frame_epoch_.load(std::memory_order_relaxed)) return;
  // xk-order: written under graph_mu_; the lock-free pop-path probe that
  // races this store upgrades to graph_mu_ on any mismatch, so a stale
  // read costs one slow-path round, never a wrong verdict.
  frame_epoch_.store(e, std::memory_order_relaxed);
  reset_coverage_graph_held();
}

/// Lock-free recycle probe for the pop paths: almost always a single pair
/// of relaxed loads that match. On a mismatch — only possible on a list
/// that survived a Frame::reset(), when no concurrent popper can exist
/// (see the frame_epoch_ declaration) — upgrade to graph_mu_ and drop the
/// stale coverage, so a pop issued before the new incarnation's first
/// extend()/on_complete() cannot serve prior-incarnation entries whose
/// task pointers alias freshly recycled arena storage.
void ReadyList::check_epoch_pop_path() {
  if (frame_.epoch() == frame_epoch_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(graph_mu_);
  check_epoch_graph_held();
}

/// The frame recycled under this list: every Task* in the graph — and
/// every early-completion key — may now alias a *new* task bump-allocated
/// at the same arena address. Drop the whole coverage state (nodes, index,
/// shard deques, watch list, early completions, live intervals) and
/// restart from index 0 of the new incarnation. Without this, stale
/// `early_completions_` entries leak across sections: the map grows
/// without bound on a long-lived list whose sections end before extend()
/// reaches full coverage, and a leaked entry can mark an address-aliased
/// new task completed before it ever ran.
///
/// Scope note: in-tree this path is defensive — Frame::reset() deletes
/// the attached list before bumping the epoch, so only a list owned
/// *outside* the frame (the test-suite idiom, or an embedder holding its
/// own list) ever observes a recycle. The check makes the list's
/// lifetime contract self-contained instead of relying on every owner to
/// destroy it first; its steady-state cost is one relaxed epoch compare
/// per public entry point.
void ReadyList::reset_coverage_graph_held() {
  if constexpr (check::kEnabled) verify_accounting_quiesced("reset_coverage");
  for (Node& n : nodes_) settle_queued(&n);
  for (unsigned s = 0; s < nshards(); ++s) {
    if (lockfree_) {
      // Reset is only reachable quiesced (see above), so draining the ring
      // single-threadedly is safe; the side deque rides its own mutex.
      Node* dead = nullptr;
      while (shards_[s].ring->try_pop(dead)) {
      }
      std::lock_guard lock(shards_[s].mu);
      shards_[s].q.clear();
      // xk-order: quiesced reset (no concurrent pusher/popper exists, see
      // the function comment); the side mutex held here is belt-and-braces.
      shards_[s].side.store(0, std::memory_order_relaxed);
    } else {
      ShardGuard guard(shards_[s], split_);
      shards_[s].q.clear();
    }
  }
  // xk-order: same quiesced-reset contract as the shard drains above.
  nready_.store(0, std::memory_order_relaxed);
  nodes_.clear();
  index_.clear();
  early_completions_.clear();
  watch_.clear();
  live_.clear();
  extend_ready_scratch_.clear();
  max_span_ = 0;
  covered_count_ = 0;
  if (lockfree_) {
    // xk-order: the retired chain and the lock-free index point into the
    // nodes_ storage just cleared; no reader can exist here (quiesced).
    retire_head_.store(nullptr, std::memory_order_relaxed);
    index_tab_.store(nullptr, std::memory_order_relaxed);
    index_tabs_.clear();
    index_count_ = 0;
  }
}

void ReadyList::extend(unsigned shard) {
  // Cap the per-round coverage growth: extend() runs inside the victim's
  // scanning window, and the frame owner's pop_frame waits that window out —
  // covering a 100k-task frame in one go would stall the owner for the whole
  // build. Remaining tasks are covered by subsequent combiner rounds.
  constexpr std::uint32_t kMaxPerRound = 2048;
  std::lock_guard lock(graph_mu_);
  shard = wrap_shard(shard);
  check_epoch_graph_held();
  // Epoch boundary of the deferred-retirement scheme: the interval scans
  // below must not walk intervals of long-completed predecessors (they
  // would be skipped via `completed` anyway, but the scan cost compounds).
  if (lockfree_) drain_retired_graph_held();
  const std::uint32_t published = frame_.size_acquire();
  if (covered_count_ >= published) return;
  Frame::Iterator it(frame_);
  it.seek(covered_count_);
  std::uint32_t added = 0;
  extend_ready_scratch_.clear();
  while (covered_count_ < published && added < kMaxPerRound) {
    add_node_graph_held(it.get());
    it.advance();
    ++covered_count_;
    ++added;
  }
  // Initially-ready nodes collected by add_node_graph_held land in the
  // covering combiner's shard under ONE lock acquisition — per-node
  // lock round trips on the combiner's own (hottest) shard would inflate
  // the coverage stall the per-round cap exists to bound. Coverage order
  // is preserved; only the publication is batched.
  if (!extend_ready_scratch_.empty()) {
    if (lockfree_) {
      for (Node* n : extend_ready_scratch_) {
        push_ready_lockfree(n, shard, nullptr);
      }
    } else {
      ShardGuard guard(shards_[shard], split_);
      for (Node* n : extend_ready_scratch_) push_ready_shard_held(n, shard);
    }
    extend_ready_scratch_.clear();
  }
}

void ReadyList::watch_graph_held(Node* n) {
  if (n->watched) return;  // already on the watch deque: one entry suffices
  n->watched = true;
  watch_.push_back(n);
}

void ReadyList::add_node_graph_held(Task* t) {
  nodes_.emplace_back();
  Node* node = &nodes_.back();
  node->task = t;
  index_.emplace(t, node);

  // A task that already completed before coverage: record and move on.
  const TaskState s = t->load_state();
  const bool already_done =
      s == TaskState::kTerm || early_completions_.count(t) != 0;
  if (already_done) {
    // xk-order: mid-construction node, not yet published to any shard,
    // watcher or index; graph_mu_ covers every reader that can find it.
    node->completed.store(true, std::memory_order_relaxed);
    early_completions_.erase(t);
    return;
  }
  // Covered while already claimed: it may have loaded frame.ready_list
  // before the attach and thus terminate without notifying — watch it so
  // the lazy sweep folds the completion in.
  if (s != TaskState::kInit) watch_graph_held(node);

  // Lockfree: a +1 construction bias on npred. Predecessor completions no
  // longer hold graph_mu_, so one could decrement a mid-construction
  // node's count to zero and push it into a ring before the remaining
  // accesses below have contributed their edges. The bias keeps the count
  // positive until this function's closing fetch_sub, which is then the
  // decision point for initially-ready.
  // xk-order: pre-publication bias store — the node reaches the index (and
  // thus any decrementer) only via index_insert's release store below.
  if (lockfree_) node->npred.store(1, std::memory_order_relaxed);

  // Count conflicts against live (non-completed) predecessors' accesses.
  // npred stores are relaxed: the node is not published to any shard or
  // watcher until this function returns, and all graph-side writers hold
  // graph_mu_ (lockfree mode additionally rides the construction bias).
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t hi = acc.region.hi();
    // Candidate predecessors: entries whose interval start is in
    // [lo - max_span_, hi). Anything starting earlier cannot reach lo.
    const std::uintptr_t from = lo > max_span_ ? lo - max_span_ : 0;
    for (auto itv = live_.lower_bound(from);
         itv != live_.end() && itv->first < hi; ++itv) {
      const ChainEntry& e = itv->second;
      if (e.node == node) continue;
      if (!accesses_conflict(*e.acc, acc)) continue;
      // Acquire: skipping the edge can make this node initially-ready and
      // publish it with NO predecessor decrement on its npred — so the
      // skip itself must carry the predecessor's data writes. In lockfree
      // mode the flag is release-stored by a completer that holds no
      // mutex (complete_node_lockfree); this acquire pairs with it and
      // hands those writes to whichever popper later claims the node. In
      // split/global modes graph_mu_ already provides the edge and the
      // acquire is redundant (and free on x86).
      if (e.node->completed.load(std::memory_order_acquire)) continue;
      if (lockfree_) {
        // The append must not race the predecessor's completion swapping
        // its successor list out: take its edge spinlock and re-check.
        // Either the edge lands before the swap (the completion will
        // decrement it) or the completion is observed and no edge is
        // counted — never an increment without a matching decrement.
        edge_lock_acquire(e.node);
        if (!e.node->completed.load(std::memory_order_relaxed)) {
          e.node->successors.push_back(node);
          node->npred.fetch_add(1, std::memory_order_relaxed);
        }
        edge_lock_release(e.node);
      } else {
        e.node->successors.push_back(node);
        node->npred.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Publish this task's own accesses as live entries for later tasks.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t span = acc.region.hi() - lo;
    max_span_ = std::max(max_span_, span);
    auto itv = live_.emplace(lo, ChainEntry{node, &acc});
    node->live_refs.push_back(itv);
  }

  if (lockfree_) {
    // Publish to the lock-free index only now: every field a lock-free
    // completer touches is initialized, and the slot store's release
    // makes them visible. (on_complete calls racing in before this line
    // miss the table and block on graph_mu_, where the authoritative
    // `index_` map — populated at the top — covers them.)
    index_insert_graph_held(node);
    // Release the construction bias. Observing 1 means every counted
    // predecessor already decremented (or none existed): this decrement
    // is the final one, and no concurrent completer can release the node
    // — the initially-ready decision is ours alone.
    if (node->npred.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        t->load_state() == TaskState::kInit) {
      extend_ready_scratch_.push_back(node);
    }
    return;
  }
  if (node->npred.load(std::memory_order_relaxed) == 0 &&
      t->load_state() == TaskState::kInit) {
    // Deferred to extend()'s one batched shard-lock acquisition. A claim
    // landing between this check and the batched push just produces a
    // queued-while-claimed entry — the same race the per-node push had,
    // absorbed by the pop path's claim-race fold/watch machinery.
    extend_ready_scratch_.push_back(node);
  }
}

void ReadyList::on_complete(Task* t, unsigned shard, WorkerStats* stats) {
  shard = wrap_shard(shard);
  if (lockfree_) {
    // The completion hot path: one lock-free index probe, then the
    // edge-spinlock completion protocol — no mutex, so completions of
    // different domains no longer serialize on graph_mu_ here.
    check_epoch_pop_path();
    if (Node* n = index_lookup_lockfree(t)) {
      complete_node_lockfree(n, shard, stats);
      return;
    }
    // Table miss: covered-but-not-yet-published (racing extend), or not
    // covered at all. The authoritative map under graph_mu_ decides;
    // recording an early completion must also happen under it.
    std::lock_guard lock(graph_mu_);
    check_epoch_graph_held();
    auto found = index_.find(t);
    if (found == index_.end()) {
      early_completions_.emplace(t, true);
      return;
    }
    complete_node_lockfree(found->second, shard, stats);
    return;
  }
  std::lock_guard lock(graph_mu_);
  check_epoch_graph_held();
  auto found = index_.find(t);
  if (found == index_.end()) {
    early_completions_.emplace(t, true);
    return;
  }
  complete_node_graph_held(found->second, shard);
}

/// Graph half of a completion (caller holds graph_mu_): marks the node
/// done, settles its gauge, retires its live-access intervals, then
/// releases successors whose last predecessor this was. The release batch
/// takes exactly one shard lock — the target shard's — because producer
/// routing sends every released successor to the finisher's shard; that
/// single lock acquisition is the release/acquire edge handing the
/// finisher's writes to whichever popper claims a successor. Returns the
/// number of successors released.
std::size_t ReadyList::complete_node_graph_held(Node* n, unsigned shard) {
  if (n->completed.load(std::memory_order_relaxed)) return 0;
  // xk-order: graph_mu_ is held (every graph-side reader takes it); the
  // body-writes handoff to poppers rides the shard lock taken below.
  n->completed.store(true, std::memory_order_relaxed);
  // A node can complete while still sitting in a shard deque (the owner's
  // FIFO claimed and ran it); its entry stays queued as a dead one until a
  // pop discards it, but its board contribution must not — phantom depth
  // would veto real starvation verdicts for the shard's domain.
  settle_queued(n);
  for (auto itv : n->live_refs) live_.erase(itv);
  n->live_refs.clear();
  std::size_t released = 0;
  if (!n->successors.empty()) {
    ShardGuard guard(shards_[shard], split_);
    for (Node* succ : n->successors) {
      // The npred>0 probe guards against underflow on defensive grounds
      // only: every (pred, succ) conflict edge pairs one increment at
      // coverage with one decrement at the predecessor's single
      // completion. acq_rel on the decrement chains the memory effects of
      // every non-final completer into the final one (see readylist.hpp).
      XK_EXPECT(rl_npred_underflow,
                succ->npred.load(std::memory_order_relaxed) != 0);
      if (succ->npred.load(std::memory_order_relaxed) == 0) continue;
      if (succ->npred.fetch_sub(1, std::memory_order_acq_rel) != 1) continue;
      if (succ->completed.load(std::memory_order_relaxed)) continue;
      // Producer-side routing: the released successor joins the finisher's
      // shard — its inputs were just written by a worker of that domain.
      push_ready_shard_held(succ, shard);
      ++released;
    }
    n->successors.clear();
  }
  return released;
}

// ---- lockfree-mode machinery ----------------------------------------------

/// Pointer hash for the lock-free index: drop the alignment bits, then a
/// Fibonacci multiply + fold so bump-allocated (arithmetically clustered)
/// task addresses spread over the table.
static std::size_t task_hash(const Task* t) {
  std::uintptr_t x = reinterpret_cast<std::uintptr_t>(t) >> 4;
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 32;
  return static_cast<std::size_t>(x);
}

void ReadyList::index_insert_graph_held(Node* n) {
  // Linear-probe insert. Single writer (graph_mu_); the release store
  // publishes the fully-initialized node to lock-free readers.
  // Termination: the grow policy keeps every table below 0.7 load.
  auto raw_insert = [](IndexTable* tab, Node* node, const Task* key) {
    for (std::size_t i = task_hash(key) & tab->mask;;
         i = (i + 1) & tab->mask) {
      if (tab->slots[i].load(std::memory_order_relaxed) == nullptr) {
        tab->slots[i].store(node, std::memory_order_release);
        return;
      }
    }
  };
  IndexTable* tab = index_tab_.load(std::memory_order_relaxed);
  if (tab == nullptr || (index_count_ + 1) * 10 > (tab->mask + 1) * 7) {
    // Grow 2x (seed 1024), rehashing from the OLD TABLE, not the
    // authoritative map: the map also holds every node that was already
    // completed at coverage (those skip the table on purpose), so on
    // owner-heavy frames it can exceed any table capacity derived from
    // the table's own occupancy — rehashing from it could overfill the
    // fresh table and turn the linear probe into an infinite loop.
    // Completed nodes are dropped during the rehash as compaction (a
    // lookup miss for them degrades to the graph_mu_ slow path, which
    // finds the completed node in the map and no-ops). The defensive
    // doubling loop keeps the surviving count below the 0.7 bound even
    // when compaction removes nothing. The old table stays allocated in
    // index_tabs_: a racing lookup may still be probing it, and a stale
    // table only costs that lookup a miss (-> the graph_mu_ slow path),
    // never a wrong hit.
    std::size_t ncap = tab == nullptr ? 1024 : (tab->mask + 1) * 2;
    while ((index_count_ + 2) * 10 > ncap * 7) ncap *= 2;
    auto fresh = std::make_unique<IndexTable>(ncap);
    std::size_t live = 0;
    if (tab != nullptr) {
      for (std::size_t i = 0; i <= tab->mask; ++i) {
        Node* old = tab->slots[i].load(std::memory_order_relaxed);
        if (old == nullptr) continue;
        if (old->completed.load(std::memory_order_relaxed)) continue;
        raw_insert(fresh.get(), old, old->task);
        ++live;
      }
    }
    raw_insert(fresh.get(), n, n->task);
    ++live;
    IndexTable* published = fresh.get();
    index_tabs_.push_back(std::move(fresh));
    index_tab_.store(published, std::memory_order_release);
    index_count_ = live;
    return;
  }
  raw_insert(tab, n, n->task);
  ++index_count_;
}

ReadyList::Node* ReadyList::index_lookup_lockfree(const Task* t) const {
  const IndexTable* tab = index_tab_.load(std::memory_order_acquire);
  if (tab == nullptr) return nullptr;
  for (std::size_t i = task_hash(t) & tab->mask;; i = (i + 1) & tab->mask) {
    Node* n = tab->slots[i].load(std::memory_order_acquire);
    if (n == nullptr) return nullptr;  // not in this table: caller's miss path
    if (n->task == t) return n;
  }
}

void ReadyList::drain_retired_graph_held() {
  Node* n = retire_head_.exchange(nullptr, std::memory_order_acquire);
  while (n != nullptr) {
    // A node only joins the Treiber stack after its completion published
    // `completed` and settle_queued() returned its gauge contribution
    // (complete_node_lockfree orders both before the CAS push) — a retired
    // node that is still live, or still holding a gauge, escaped the
    // completion protocol.
    XK_EXPECT(rl_retire_incomplete,
              n->completed.load(std::memory_order_relaxed));
    XK_EXPECT(rl_retire_unsettled, n->queued.load(std::memory_order_relaxed) < 0,
              static_cast<std::uint64_t>(
                  n->queued.load(std::memory_order_relaxed)));
    for (auto itv : n->live_refs) live_.erase(itv);
    n->live_refs.clear();
    Node* next = n->retire_next;
    n->retire_next = nullptr;
    n = next;
  }
}

/// Appends `n` to `shard`'s queue without holding any lock on the common
/// path: the MPMC ring when it has room (and nothing is spilled), the
/// mutex-guarded side deque otherwise. The side-deque divert rule — spill
/// whenever the side deque is non-empty, even if the ring has room again —
/// keeps per-shard pop order intact across a spill episode: every ring
/// entry predates every side entry, and the shard self-heals back to
/// ring-only pushes once poppers drain the side deque. (Concurrent pushes
/// racing a spill can still interleave the two queues, but concurrent
/// pushes have no defined order to preserve.)
///
/// The divert gate is best-effort by design: `side` is read without the
/// side-deque mutex, so a pusher can observe a stale 0 — from before a
/// concurrent spill's increment became visible — and ring a node while
/// older entries still sit in the side deque, inverting per-shard FIFO
/// for that episode. Tolerated: oldest-ready order is a locality
/// heuristic, not a correctness invariant (no entry is ever lost — the
/// popper serves both queues), and closing the window would put the
/// mutex back on every push. The acquire read does pin down the
/// self-heal transition: a pusher that sees the 0 produced by the final
/// side pop's release decrement is ordered after that drain, so once a
/// spill episode is *observed* drained, subsequent ring entries are
/// genuinely younger than everything the side deque held.
void ReadyList::push_ready_lockfree(Node* n, unsigned shard,
                                    WorkerStats* stats) {
  // xk-order: the ring push's per-slot seq release (or the side-deque
  // mutex on spill) publishes the entry; `queued` travels behind it.
  n->queued.store(static_cast<std::int32_t>(shard), std::memory_order_relaxed);
  Shard& s = shards_[shard];
  // Gauges BEFORE the entry becomes visible: a popper can pop the node
  // the instant the ring push's release lands and run the matching
  // decrements; were the increments ordered after the push, nready_
  // (size_t) would transiently wrap to ~2^64 and the shard depth / board
  // gauges would dip negative. Incremented first, the counts can only
  // *lead* the visible entry — the staleness every reader already
  // tolerates (pop_batch_split's dry retry, the board's relaxed gauge) —
  // and the ring push's release (or the side deque's mutex) sequences
  // each increment before the pop that triggers its decrement, so the
  // pairs can never invert. Split mode needs none of this: its push and
  // gauge bump share the shard lock.
  const std::int64_t depth =
      s.depth.fetch_add(1, std::memory_order_relaxed) + 1;
  nready_.fetch_add(1, std::memory_order_relaxed);
  if (board_ != nullptr) board_->add_ready(shard, 1);
  bool ringed = false;
  if (s.side.load(std::memory_order_acquire) == 0) {
    std::uint64_t retries = 0;
    ringed = s.ring->try_push(n, &retries);
    if (stats != nullptr) stats->rl_ring_retries += retries;
  }
  if (!ringed) {
    {
      std::lock_guard lock(s.mu);
      s.q.push_back(n);
      s.side.fetch_add(1, std::memory_order_relaxed);
    }
    ring_spills_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) stats->rl_ring_spills++;
  }
  obs::emit(obs::Ev::kRlPush, shard,
            ringed ? obs::kProvRing : obs::kProvSide,
            static_cast<std::uint64_t>(depth > 0 ? depth : 0));
}

/// Pops one entry without a mutex on the common path: per shard in rank
/// order from `home`, the ring first, then — only when the side gauge says
/// something spilled — the side deque under its mutex. The ring pop's
/// seq acquire is the edge carrying the pushing finisher's writes.
ReadyList::Node* ReadyList::pop_entry_lockfree(unsigned home, unsigned* from,
                                               WorkerStats* stats) {
  const unsigned ns = nshards();
  for (unsigned k = 0; k < ns; ++k) {
    const unsigned r = (home + k) % ns;
    Shard& s = shards_[r];
    Node* n = nullptr;
    std::uint64_t retries = 0;
    const bool got = s.ring->try_pop(n, &retries);
    if (stats != nullptr) stats->rl_ring_retries += retries;
    if (got) {
      nready_.fetch_sub(1, std::memory_order_relaxed);
      *from = r;
      obs::emit(obs::Ev::kRlPop, home, r, obs::kProvRing);
      return n;
    }
    if (s.side.load(std::memory_order_relaxed) != 0) {
      std::lock_guard lock(s.mu);
      if (!s.q.empty()) {
        n = s.q.front();
        s.q.pop_front();
        // Release: pairs with the push-side gate's acquire, so a pusher
        // that observes the drained-to-0 gauge is ordered after this pop
        // (see push_ready_lockfree's divert-rule comment).
        s.side.fetch_sub(1, std::memory_order_release);
        nready_.fetch_sub(1, std::memory_order_relaxed);
        side_pops_.fetch_add(1, std::memory_order_relaxed);
        if (stats != nullptr) stats->rl_side_pops++;
        *from = r;
        obs::emit(obs::Ev::kRlPop, home, r, obs::kProvSide);
        return n;
      }
    }
  }
  return nullptr;
}

/// Lock-free completion. The edge spinlock makes {completed := true, take
/// successors} one atomic step against add_node's {check completed, append
/// edge}, so the successor list can neither lose an append nor be read
/// mid-reallocation. Successor decrements are acq_rel — the final
/// decrementer observes every earlier completer's writes before it
/// publishes the successor into a ring. Interval retirement is deferred
/// to the Treiber stack (drained under graph_mu_ at the epoch
/// boundaries); `completed` keeps the lingering intervals inert meanwhile.
std::size_t ReadyList::complete_node_lockfree(Node* n, unsigned shard,
                                              WorkerStats* stats) {
  if (n->completed.load(std::memory_order_relaxed)) return 0;
  edge_lock_acquire(n);
  if (n->completed.load(std::memory_order_relaxed)) {
    edge_lock_release(n);
    return 0;
  }
  // Release: the completer holds no mutex here, and add_node's unlocked
  // conflict-scan pre-check may observe this store and skip the edge —
  // publishing the successor with no npred decrement from this
  // predecessor. The release (paired with the pre-check's acquire) is the
  // only happens-before edge carrying this task's body writes in that
  // case; the edge-locked re-check path gets it from the spinlock instead.
  n->completed.store(true, std::memory_order_release);
  std::vector<Node*> succs = std::move(n->successors);
  n->successors.clear();
  edge_lock_release(n);
  settle_queued(n);
  if (!n->live_refs.empty()) {
    // live_refs is stable from here on: add_node finished writing it
    // before the node became findable, and only the graph_mu_ drain —
    // which this push gates — clears it.
    Node* head = retire_head_.load(std::memory_order_relaxed);
    do {
      n->retire_next = head;
    } while (!retire_head_.compare_exchange_weak(head, n,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed));
  }
  std::size_t released = 0;
  for (Node* succ : succs) {
    // Every counted edge pairs exactly one increment with one decrement
    // (the edge-lock protocol above), and the construction bias keeps the
    // count positive until add_node finished — so a zero-crossing here is
    // the unique release point.
    const std::uint32_t prev =
        succ->npred.fetch_sub(1, std::memory_order_acq_rel);
    assert(prev != 0 && "npred underflow: unpaired edge decrement");
    XK_EXPECT(rl_npred_underflow, prev != 0, prev);
    if (prev != 1) continue;
    if (succ->completed.load(std::memory_order_relaxed)) continue;
    push_ready_lockfree(succ, shard, stats);
    ++released;
  }
  return released;
}

std::size_t ReadyList::complete_node_any(Node* n, unsigned shard) {
  return lockfree_ ? complete_node_lockfree(n, shard, nullptr)
                   : complete_node_graph_held(n, shard);
}

// ---------------------------------------------------------------------------

Task* ReadyList::pop_ready_claimed(unsigned shard, std::uint64_t* shard_hits,
                                   std::uint64_t* shard_misses) {
  Task* t = nullptr;
  return pop_ready_claimed_batch(&t, 1, shard, shard_hits, shard_misses) == 1
             ? t
             : nullptr;
}

std::size_t ReadyList::pop_ready_claimed_batch(Task** out, std::size_t max,
                                               unsigned shard,
                                               std::uint64_t* shard_hits,
                                               std::uint64_t* shard_misses,
                                               WorkerStats* stats) {
  shard = wrap_shard(shard);
  if (mode_ == RlLockMode::kGlobal) {
    std::lock_guard lock(graph_mu_);
    check_epoch_graph_held();
    return pop_batch_global(out, max, shard, shard_hits, shard_misses);
  }
  check_epoch_pop_path();
  return pop_batch_split(out, max, shard, shard_hits, shard_misses, stats);
}

/// Global-mode batch pop: the whole call under graph_mu_, preserving the
/// pre-split behavior exactly — pop order, inline claim-race folds, the
/// single lazy sweep per call (the XK_RL_LOCK ablation baseline).
std::size_t ReadyList::pop_batch_global(Task** out, std::size_t max,
                                        unsigned home,
                                        std::uint64_t* shard_hits,
                                        std::uint64_t* shard_misses) {
  std::size_t got = 0;
  bool swept = false;
  const unsigned ns = nshards();
  while (got < max) {
    if (nready_.load(std::memory_order_relaxed) == 0) {
      // One lazy catch-up pass over the watched (claimed-elsewhere) nodes
      // per call: fold in completions whose notification raced the attach.
      if (swept || !sweep_watch_graph_held(home)) break;
      swept = true;
      continue;
    }
    // Local-shard-first: drain the popper's own domain shard oldest-first,
    // then cross shards in rank order starting just above it. Crossing
    // (the miss path) is what keeps work flowing when a domain's own shard
    // is dry; the hit/miss split is the locality telemetry.
    unsigned shard = home;
    for (unsigned k = 1; k < ns && shards_[shard].q.empty(); ++k) {
      shard = (home + k) % ns;
    }
    Node* node = shards_[shard].q.front();
    shards_[shard].q.pop_front();
    nready_.fetch_sub(1, std::memory_order_relaxed);
    obs::emit(obs::Ev::kRlPop, home, shard, obs::kProvDeque);
    settle_queued(node);  // no-op for dead entries settled at completion
    Task* t = node->task;
    if (t->try_claim(TaskState::kStolenClaim)) {
      // The hit/miss split is only meaningful when there is more than one
      // shard; counting a forced single shard as all-hits would make the
      // sharded-vs-unsharded ablation (XK_RL_SHARD=0, flat machines)
      // indistinguishable from a perfectly-local sharded run.
      if (ns > 1) {
        if (shard == home) {
          if (shard_hits != nullptr) ++*shard_hits;
        } else if (shard_misses != nullptr) {
          ++*shard_misses;
        }
      }
      // Watched as a safety net: the thief that runs a popped task re-reads
      // frame.ready_list before Term, but watching costs one sweep visit
      // and makes a silently-terminated claim impossible to strand.
      watch_graph_held(node);
      out[got++] = t;
      continue;
    }
    // Claimed elsewhere (victim FIFO won the race). Fold a missed
    // completion immediately — its successors enter the popper's shard
    // now, ahead of younger releases, so oldest-ready order survives the
    // contention — otherwise watch it for the lazy sweep.
    if (!node->completed.load(std::memory_order_relaxed)) {
      if (t->load_state() == TaskState::kTerm) {
        ++missed_folds_;
        complete_node_graph_held(node, home);
      } else {
        watch_graph_held(node);
      }
    }
  }
  return got;
}

/// Pops `rank`'s oldest entry, or nullptr when the deque is empty. Caller
/// holds the shard's mutex — this is the one place split-mode pop
/// bookkeeping (deque + nready_) happens, shared by all three passes of
/// pop_entry_split so they cannot drift apart.
ReadyList::Node* ReadyList::take_front_shard_held(unsigned rank,
                                                  unsigned* from) {
  Shard& s = shards_[rank];
  if (s.q.empty()) return nullptr;
  Node* n = s.q.front();
  s.q.pop_front();
  nready_.fetch_sub(1, std::memory_order_relaxed);
  *from = rank;
  return n;
}

/// Pops one entry under shard locks only: the home shard with a blocking
/// lock (it is this domain's own lock — the common case is uncontended and
/// a busy hold is a neighbor about to finish), then every other shard via
/// try_lock in rank order (never stall on a remote domain's lock while it
/// serves its own traffic). Only when the full try pass produced nothing —
/// every other shard either empty or busy — does a pass fall back to
/// blocking locks, so a popper cannot spin past work pinned behind a
/// momentarily-held lock. Returns nullptr when every shard was seen empty.
ReadyList::Node* ReadyList::pop_entry_split(unsigned home, unsigned* from) {
  const unsigned ns = nshards();
  {
    std::lock_guard lock(shards_[home].mu);
    if (Node* n = take_front_shard_held(home, from)) return n;
  }
  bool any_busy = false;
  for (unsigned k = 1; k < ns; ++k) {
    const unsigned r = (home + k) % ns;
    Shard& s = shards_[r];
    if (!s.mu.try_lock()) {
      any_busy = true;
      continue;
    }
    std::lock_guard lock(s.mu, std::adopt_lock);
    if (Node* n = take_front_shard_held(r, from)) return n;
  }
  if (!any_busy) return nullptr;  // every shard inspected and empty
  // Blocking fallback. Any shard seen empty under its lock above — home
  // included: a completion may have routed successors there since the
  // entry probe — could by now hold work again, so the pass re-probes all
  // of them rather than tracking which try_lock failed. The extra
  // uncontended lock/unlock is cheaper than it sounds, and this path only
  // runs when the try pass came up dry with at least one shard busy.
  for (unsigned k = 0; k < ns; ++k) {
    const unsigned r = (home + k) % ns;
    std::lock_guard lock(shards_[r].mu);
    if (Node* n = take_front_shard_held(r, from)) return n;
  }
  return nullptr;
}

/// Claim-race handling off the split pop path (no shard lock held — the
/// entry was already popped): under graph_mu_, fold a silently-terminated
/// claim's completion into the popper's home shard, or put the still-
/// running claim under watch. The rare path: claim races only happen when
/// the owner's FIFO reached a task a combiner had queued.
void ReadyList::fold_or_watch(Node* n, unsigned home) {
  std::lock_guard lock(graph_mu_);
  if (n->completed.load(std::memory_order_relaxed)) return;  // settled
  if (n->task->load_state() == TaskState::kTerm) {
    ++missed_folds_;
    complete_node_any(n, home);
  } else {
    watch_graph_held(n);
  }
}

/// Split- and lockfree-mode batch pop: per-entry shard locking (split) or
/// mutex-free ring pops (lockfree), graph_mu_ only on the rare paths
/// (claim-race folds, the dry-list sweep, and one batched watch
/// registration before returning). The two modes share everything except
/// the per-entry pop primitive, so the claim-race / watch / sweep
/// machinery cannot drift between them.
std::size_t ReadyList::pop_batch_split(Task** out, std::size_t max,
                                       unsigned home,
                                       std::uint64_t* shard_hits,
                                       std::uint64_t* shard_misses,
                                       WorkerStats* stats) {
  std::size_t got = 0;
  bool swept = false;
  int dry_probes = 0;
  const unsigned ns = nshards();
  // Claim-success nodes awaiting watch registration, batched into one
  // graph_mu_ acquisition per kWatchBuf pops (one per call in practice:
  // batches are steal-k sized): the claimed tasks are handed out only when
  // this call returns, so none can run — let alone silently terminate —
  // before its watch entry exists.
  constexpr std::size_t kWatchBuf = 16;
  Node* to_watch[kWatchBuf];
  std::size_t nwatch = 0;
  auto flush_watches = [&] {
    if (nwatch == 0) return;
    std::lock_guard lock(graph_mu_);
    for (std::size_t i = 0; i < nwatch; ++i) watch_graph_held(to_watch[i]);
    nwatch = 0;
  };
  while (got < max) {
    if (nready_.load(std::memory_order_relaxed) == 0) {
      // One lazy catch-up pass over the watched (claimed-elsewhere) nodes
      // per call: fold in completions whose notification raced the attach.
      if (swept) break;
      swept = true;
      bool released;
      {
        std::lock_guard lock(graph_mu_);
        released = sweep_watch_graph_held(home);
      }
      if (!released) break;
      continue;
    }
    unsigned from = home;
    Node* node = lockfree_ ? pop_entry_lockfree(home, &from, stats)
                           : pop_entry_split(home, &from);
    if (node == nullptr) {
      // nready_ was stale: concurrent poppers drained the shards between
      // our read and our probes (or a push's count preceded visibility of
      // its entry). One clean retry, then report what we have — a missed
      // straggler is re-found by the next combiner round, and spinning
      // here against an active producer would hold up the whole deal.
      if (++dry_probes >= 2) break;
      continue;
    }
    dry_probes = 0;
    // Lockfree pops record inside pop_entry_lockfree (they know ring-vs-
    // side provenance); split-mode deque pops are uniform, record here.
    if (!lockfree_) obs::emit(obs::Ev::kRlPop, home, from, obs::kProvDeque);
    settle_queued(node);  // no-op for dead entries settled at completion
    Task* t = node->task;
    if (t->try_claim(TaskState::kStolenClaim)) {
      if (ns > 1) {  // single-shard runs report no telemetry (see global)
        if (from == home) {
          if (shard_hits != nullptr) ++*shard_hits;
        } else if (shard_misses != nullptr) {
          ++*shard_misses;
        }
      }
      if (nwatch == kWatchBuf) flush_watches();
      to_watch[nwatch++] = node;
      out[got++] = t;
      continue;
    }
    // Claimed elsewhere (victim FIFO won the race): settled entries are
    // skipped with a relaxed read; live races fold or watch under
    // graph_mu_ — taken here with no shard lock held (the lock order
    // graph_mu_ -> shard forbids the reverse nesting).
    if (!node->completed.load(std::memory_order_relaxed)) {
      fold_or_watch(node, home);
    }
  }
  flush_watches();
  return got;
}

/// Walks the watch deque once, dropping settled nodes and folding in
/// terminations whose on_complete never arrived (releases land in the
/// sweeping popper's `shard`). Returns true when the fold released at
/// least one task into a shard. Caller holds graph_mu_.
bool ReadyList::sweep_watch_graph_held(unsigned shard) {
  // The sweep's folds consult and mutate the graph; it is also the second
  // epoch boundary of the deferred-retirement scheme (extend is the
  // first) — drain before folding so a fold's released successors are
  // computed against a current interval index.
  if (lockfree_) drain_retired_graph_held();
  std::size_t released = 0;
  for (std::size_t n = watch_.size(); n > 0; --n) {
    Node* node = watch_.front();
    watch_.pop_front();
    if (node->completed.load(std::memory_order_relaxed)) {
      node->watched = false;  // notified normally; settled
      continue;
    }
    if (node->task->load_state() == TaskState::kTerm) {
      ++missed_folds_;
      node->watched = false;
      released += complete_node_any(node, shard);
      continue;
    }
    watch_.push_back(node);  // still in flight; keep watching, FIFO order
  }
  return released != 0;
}

std::size_t ReadyList::covered() const {
  std::lock_guard lock(graph_mu_);
  return covered_count_;
}

std::size_t ReadyList::ready_size() const {
  return nready_.load(std::memory_order_relaxed);
}

std::size_t ReadyList::shard_ready_size(unsigned shard) const {
  if (shard >= nshards()) return 0;
  auto& self = *const_cast<ReadyList*>(this);
  if (lockfree_) {
    // Ring occupancy is a racy estimate by construction; the side deque
    // rides its mutex.
    std::lock_guard lock(self.shards_[shard].mu);
    return self.shards_[shard].ring->approx_size() +
           self.shards_[shard].q.size();
  }
  // Global mode guards the deques with graph_mu_, not the (unused) shard
  // mutexes — a no-op guard here would race writers under graph_mu_.
  std::unique_lock<std::mutex> graph_lock;
  if (!split_) graph_lock = std::unique_lock(self.graph_mu_);
  ShardGuard guard(self.shards_[shard], split_);
  return shards_[shard].q.size();
}

std::int64_t ReadyList::shard_live_depth(unsigned shard) const {
  if (shard >= nshards()) return 0;
  return shards_[shard].depth.load(std::memory_order_relaxed);
}

std::size_t ReadyList::watched_size() const {
  std::lock_guard lock(graph_mu_);
  return watch_.size();
}

std::size_t ReadyList::early_completion_count() const {
  std::lock_guard lock(graph_mu_);
  return early_completions_.size();
}

std::uint64_t ReadyList::missed_folds() const {
  std::lock_guard lock(graph_mu_);
  return missed_folds_;
}

std::size_t ReadyList::retire_pending() const {
  // graph_mu_ excludes the drain; concurrent pushes only prepend ahead of
  // the head we load, so the walked chain is stable.
  std::lock_guard lock(graph_mu_);
  std::size_t count = 0;
  for (const Node* n = retire_head_.load(std::memory_order_acquire);
       n != nullptr; n = n->retire_next) {
    ++count;
  }
  return count;
}

}  // namespace xk
