#include "core/readylist.hpp"

#include <algorithm>
#include <cassert>

namespace xk {

ReadyList::ReadyList(Frame& frame, unsigned nshards, StarvationBoard* board,
                     RlLockMode lock_mode)
    : frame_(frame),
      board_(board),
      split_(lock_mode == RlLockMode::kSplit),
      frame_epoch_(frame.epoch()),
      shards_(std::max(nshards, 1u)) {}

ReadyList::~ReadyList() {
  // A frame can recycle with tasks still queued (released successors the
  // owner's FIFO claimed and ran without a combiner ever popping them);
  // return any gauge contribution not already returned at completion so
  // the board never drifts. Keyed off Node::queued, not the deque sizes:
  // deques may hold dead entries whose contribution was settled when their
  // completion arrived. No locks: destruction is owner-only, after the
  // Dekker handshake has excluded every scanner and every task reached
  // Term (see Worker::pop_frame / Frame::reset).
  if (board_ == nullptr) return;
  for (Node& n : nodes_) {
    const std::int32_t q = n.queued.load(std::memory_order_relaxed);
    if (q >= 0) board_->add_ready(static_cast<unsigned>(q), -1);
  }
}

unsigned ReadyList::wrap_shard(unsigned shard) const {
  const unsigned ns = nshards();
  assert((shard < ns || ns == 1) &&
         "domain rank out of shard range (routing bug upstream)");
  return shard < ns ? shard : shard % ns;
}

/// Settles `n`'s board/depth contribution if it still has one. Called
/// right after a pop (split mode: the popper has already dropped the
/// shard lock by then) and at completion (under graph_mu_) — whichever
/// comes first wins the exchange; the other sees -1 and does nothing.
/// The atomic exchange is the whole synchronization: the two callers
/// share no lock.
void ReadyList::settle_queued(Node* n) {
  const std::int32_t q = n->queued.exchange(-1, std::memory_order_relaxed);
  if (q < 0) return;
  shards_[static_cast<unsigned>(q)].depth.fetch_sub(1,
                                                    std::memory_order_relaxed);
  if (board_ != nullptr) board_->add_ready(static_cast<unsigned>(q), -1);
}

/// Appends `n` to `shard`'s deque. Caller holds the shard's mutex (split)
/// or graph_mu_ (global).
void ReadyList::push_ready_shard_held(Node* n, unsigned shard) {
  n->queued.store(static_cast<std::int32_t>(shard), std::memory_order_relaxed);
  shards_[shard].q.push_back(n);
  shards_[shard].depth.fetch_add(1, std::memory_order_relaxed);
  nready_.fetch_add(1, std::memory_order_relaxed);
  // The board's ready-depth update rides the same shard lock as the deque
  // push, so a starvation reader never sees depth lag the queue by more
  // than the relaxed-gauge staleness it already tolerates.
  if (board_ != nullptr) board_->add_ready(shard, 1);
}

void ReadyList::check_epoch_graph_held() {
  const std::uint64_t e = frame_.epoch();
  if (e == frame_epoch_.load(std::memory_order_relaxed)) return;
  frame_epoch_.store(e, std::memory_order_relaxed);
  reset_coverage_graph_held();
}

/// Lock-free recycle probe for the pop paths: almost always a single pair
/// of relaxed loads that match. On a mismatch — only possible on a list
/// that survived a Frame::reset(), when no concurrent popper can exist
/// (see the frame_epoch_ declaration) — upgrade to graph_mu_ and drop the
/// stale coverage, so a pop issued before the new incarnation's first
/// extend()/on_complete() cannot serve prior-incarnation entries whose
/// task pointers alias freshly recycled arena storage.
void ReadyList::check_epoch_pop_path() {
  if (frame_.epoch() == frame_epoch_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(graph_mu_);
  check_epoch_graph_held();
}

/// The frame recycled under this list: every Task* in the graph — and
/// every early-completion key — may now alias a *new* task bump-allocated
/// at the same arena address. Drop the whole coverage state (nodes, index,
/// shard deques, watch list, early completions, live intervals) and
/// restart from index 0 of the new incarnation. Without this, stale
/// `early_completions_` entries leak across sections: the map grows
/// without bound on a long-lived list whose sections end before extend()
/// reaches full coverage, and a leaked entry can mark an address-aliased
/// new task completed before it ever ran.
///
/// Scope note: in-tree this path is defensive — Frame::reset() deletes
/// the attached list before bumping the epoch, so only a list owned
/// *outside* the frame (the test-suite idiom, or an embedder holding its
/// own list) ever observes a recycle. The check makes the list's
/// lifetime contract self-contained instead of relying on every owner to
/// destroy it first; its steady-state cost is one relaxed epoch compare
/// per public entry point.
void ReadyList::reset_coverage_graph_held() {
  for (Node& n : nodes_) settle_queued(&n);
  for (unsigned s = 0; s < nshards(); ++s) {
    ShardGuard guard(shards_[s], split_);
    shards_[s].q.clear();
  }
  nready_.store(0, std::memory_order_relaxed);
  nodes_.clear();
  index_.clear();
  early_completions_.clear();
  watch_.clear();
  live_.clear();
  extend_ready_scratch_.clear();
  max_span_ = 0;
  covered_count_ = 0;
}

void ReadyList::extend(unsigned shard) {
  // Cap the per-round coverage growth: extend() runs inside the victim's
  // scanning window, and the frame owner's pop_frame waits that window out —
  // covering a 100k-task frame in one go would stall the owner for the whole
  // build. Remaining tasks are covered by subsequent combiner rounds.
  constexpr std::uint32_t kMaxPerRound = 2048;
  std::lock_guard lock(graph_mu_);
  shard = wrap_shard(shard);
  check_epoch_graph_held();
  const std::uint32_t published = frame_.size_acquire();
  if (covered_count_ >= published) return;
  Frame::Iterator it(frame_);
  it.seek(covered_count_);
  std::uint32_t added = 0;
  extend_ready_scratch_.clear();
  while (covered_count_ < published && added < kMaxPerRound) {
    add_node_graph_held(it.get(), shard);
    it.advance();
    ++covered_count_;
    ++added;
  }
  // Initially-ready nodes collected by add_node_graph_held land in the
  // covering combiner's shard under ONE lock acquisition — per-node
  // lock round trips on the combiner's own (hottest) shard would inflate
  // the coverage stall the per-round cap exists to bound. Coverage order
  // is preserved; only the publication is batched.
  if (!extend_ready_scratch_.empty()) {
    ShardGuard guard(shards_[shard], split_);
    for (Node* n : extend_ready_scratch_) push_ready_shard_held(n, shard);
    extend_ready_scratch_.clear();
  }
}

void ReadyList::watch_graph_held(Node* n) {
  if (n->watched) return;  // already on the watch deque: one entry suffices
  n->watched = true;
  watch_.push_back(n);
}

void ReadyList::add_node_graph_held(Task* t, unsigned shard) {
  nodes_.emplace_back();
  Node* node = &nodes_.back();
  node->task = t;
  index_.emplace(t, node);

  // A task that already completed before coverage: record and move on.
  const TaskState s = t->load_state();
  const bool already_done =
      s == TaskState::kTerm || early_completions_.count(t) != 0;
  if (already_done) {
    node->completed.store(true, std::memory_order_relaxed);
    early_completions_.erase(t);
    return;
  }
  // Covered while already claimed: it may have loaded frame.ready_list
  // before the attach and thus terminate without notifying — watch it so
  // the lazy sweep folds the completion in.
  if (s != TaskState::kInit) watch_graph_held(node);

  // Count conflicts against live (non-completed) predecessors' accesses.
  // npred stores are relaxed: the node is not published to any shard or
  // watcher until this function returns, and all graph-side writers hold
  // graph_mu_.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t hi = acc.region.hi();
    // Candidate predecessors: entries whose interval start is in
    // [lo - max_span_, hi). Anything starting earlier cannot reach lo.
    const std::uintptr_t from = lo > max_span_ ? lo - max_span_ : 0;
    for (auto itv = live_.lower_bound(from);
         itv != live_.end() && itv->first < hi; ++itv) {
      const ChainEntry& e = itv->second;
      if (e.node == node) continue;
      if (!accesses_conflict(*e.acc, acc)) continue;
      if (e.node->completed.load(std::memory_order_relaxed)) continue;
      e.node->successors.push_back(node);
      node->npred.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Publish this task's own accesses as live entries for later tasks.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t span = acc.region.hi() - lo;
    max_span_ = std::max(max_span_, span);
    auto itv = live_.emplace(lo, ChainEntry{node, &acc});
    node->live_refs.push_back(itv);
  }

  if (node->npred.load(std::memory_order_relaxed) == 0 &&
      t->load_state() == TaskState::kInit) {
    // Deferred to extend()'s one batched shard-lock acquisition. A claim
    // landing between this check and the batched push just produces a
    // queued-while-claimed entry — the same race the per-node push had,
    // absorbed by the pop path's claim-race fold/watch machinery.
    extend_ready_scratch_.push_back(node);
  }
}

void ReadyList::on_complete(Task* t, unsigned shard) {
  shard = wrap_shard(shard);
  std::lock_guard lock(graph_mu_);
  check_epoch_graph_held();
  auto found = index_.find(t);
  if (found == index_.end()) {
    early_completions_.emplace(t, true);
    return;
  }
  complete_node_graph_held(found->second, shard);
}

/// Graph half of a completion (caller holds graph_mu_): marks the node
/// done, settles its gauge, retires its live-access intervals, then
/// releases successors whose last predecessor this was. The release batch
/// takes exactly one shard lock — the target shard's — because producer
/// routing sends every released successor to the finisher's shard; that
/// single lock acquisition is the release/acquire edge handing the
/// finisher's writes to whichever popper claims a successor. Returns the
/// number of successors released.
std::size_t ReadyList::complete_node_graph_held(Node* n, unsigned shard) {
  if (n->completed.load(std::memory_order_relaxed)) return 0;
  n->completed.store(true, std::memory_order_relaxed);
  // A node can complete while still sitting in a shard deque (the owner's
  // FIFO claimed and ran it); its entry stays queued as a dead one until a
  // pop discards it, but its board contribution must not — phantom depth
  // would veto real starvation verdicts for the shard's domain.
  settle_queued(n);
  for (auto itv : n->live_refs) live_.erase(itv);
  n->live_refs.clear();
  std::size_t released = 0;
  if (!n->successors.empty()) {
    ShardGuard guard(shards_[shard], split_);
    for (Node* succ : n->successors) {
      // The npred>0 probe guards against underflow on defensive grounds
      // only: every (pred, succ) conflict edge pairs one increment at
      // coverage with one decrement at the predecessor's single
      // completion. acq_rel on the decrement chains the memory effects of
      // every non-final completer into the final one (see readylist.hpp).
      if (succ->npred.load(std::memory_order_relaxed) == 0) continue;
      if (succ->npred.fetch_sub(1, std::memory_order_acq_rel) != 1) continue;
      if (succ->completed.load(std::memory_order_relaxed)) continue;
      // Producer-side routing: the released successor joins the finisher's
      // shard — its inputs were just written by a worker of that domain.
      push_ready_shard_held(succ, shard);
      ++released;
    }
    n->successors.clear();
  }
  return released;
}

Task* ReadyList::pop_ready_claimed(unsigned shard) {
  Task* t = nullptr;
  return pop_ready_claimed_batch(&t, 1, shard) == 1 ? t : nullptr;
}

std::size_t ReadyList::pop_ready_claimed_batch(Task** out, std::size_t max,
                                               unsigned shard,
                                               std::uint64_t* shard_hits,
                                               std::uint64_t* shard_misses) {
  shard = wrap_shard(shard);
  if (!split_) {
    std::lock_guard lock(graph_mu_);
    check_epoch_graph_held();
    return pop_batch_global(out, max, shard, shard_hits, shard_misses);
  }
  check_epoch_pop_path();
  return pop_batch_split(out, max, shard, shard_hits, shard_misses);
}

/// Global-mode batch pop: the whole call under graph_mu_, preserving the
/// pre-split behavior exactly — pop order, inline claim-race folds, the
/// single lazy sweep per call (the XK_RL_LOCK ablation baseline).
std::size_t ReadyList::pop_batch_global(Task** out, std::size_t max,
                                        unsigned home,
                                        std::uint64_t* shard_hits,
                                        std::uint64_t* shard_misses) {
  std::size_t got = 0;
  bool swept = false;
  const unsigned ns = nshards();
  while (got < max) {
    if (nready_.load(std::memory_order_relaxed) == 0) {
      // One lazy catch-up pass over the watched (claimed-elsewhere) nodes
      // per call: fold in completions whose notification raced the attach.
      if (swept || !sweep_watch_graph_held(home)) break;
      swept = true;
      continue;
    }
    // Local-shard-first: drain the popper's own domain shard oldest-first,
    // then cross shards in rank order starting just above it. Crossing
    // (the miss path) is what keeps work flowing when a domain's own shard
    // is dry; the hit/miss split is the locality telemetry.
    unsigned shard = home;
    for (unsigned k = 1; k < ns && shards_[shard].q.empty(); ++k) {
      shard = (home + k) % ns;
    }
    Node* node = shards_[shard].q.front();
    shards_[shard].q.pop_front();
    nready_.fetch_sub(1, std::memory_order_relaxed);
    settle_queued(node);  // no-op for dead entries settled at completion
    Task* t = node->task;
    if (t->try_claim(TaskState::kStolenClaim)) {
      // The hit/miss split is only meaningful when there is more than one
      // shard; counting a forced single shard as all-hits would make the
      // sharded-vs-unsharded ablation (XK_RL_SHARD=0, flat machines)
      // indistinguishable from a perfectly-local sharded run.
      if (ns > 1) {
        if (shard == home) {
          if (shard_hits != nullptr) ++*shard_hits;
        } else if (shard_misses != nullptr) {
          ++*shard_misses;
        }
      }
      // Watched as a safety net: the thief that runs a popped task re-reads
      // frame.ready_list before Term, but watching costs one sweep visit
      // and makes a silently-terminated claim impossible to strand.
      watch_graph_held(node);
      out[got++] = t;
      continue;
    }
    // Claimed elsewhere (victim FIFO won the race). Fold a missed
    // completion immediately — its successors enter the popper's shard
    // now, ahead of younger releases, so oldest-ready order survives the
    // contention — otherwise watch it for the lazy sweep.
    if (!node->completed.load(std::memory_order_relaxed)) {
      if (t->load_state() == TaskState::kTerm) {
        ++missed_folds_;
        complete_node_graph_held(node, home);
      } else {
        watch_graph_held(node);
      }
    }
  }
  return got;
}

/// Pops `rank`'s oldest entry, or nullptr when the deque is empty. Caller
/// holds the shard's mutex — this is the one place split-mode pop
/// bookkeeping (deque + nready_) happens, shared by all three passes of
/// pop_entry_split so they cannot drift apart.
ReadyList::Node* ReadyList::take_front_shard_held(unsigned rank,
                                                  unsigned* from) {
  Shard& s = shards_[rank];
  if (s.q.empty()) return nullptr;
  Node* n = s.q.front();
  s.q.pop_front();
  nready_.fetch_sub(1, std::memory_order_relaxed);
  *from = rank;
  return n;
}

/// Pops one entry under shard locks only: the home shard with a blocking
/// lock (it is this domain's own lock — the common case is uncontended and
/// a busy hold is a neighbor about to finish), then every other shard via
/// try_lock in rank order (never stall on a remote domain's lock while it
/// serves its own traffic). Only when the full try pass produced nothing —
/// every other shard either empty or busy — does a pass fall back to
/// blocking locks, so a popper cannot spin past work pinned behind a
/// momentarily-held lock. Returns nullptr when every shard was seen empty.
ReadyList::Node* ReadyList::pop_entry_split(unsigned home, unsigned* from) {
  const unsigned ns = nshards();
  {
    std::lock_guard lock(shards_[home].mu);
    if (Node* n = take_front_shard_held(home, from)) return n;
  }
  bool any_busy = false;
  for (unsigned k = 1; k < ns; ++k) {
    const unsigned r = (home + k) % ns;
    Shard& s = shards_[r];
    if (!s.mu.try_lock()) {
      any_busy = true;
      continue;
    }
    std::lock_guard lock(s.mu, std::adopt_lock);
    if (Node* n = take_front_shard_held(r, from)) return n;
  }
  if (!any_busy) return nullptr;  // every shard inspected and empty
  // Blocking fallback. Any shard seen empty under its lock above — home
  // included: a completion may have routed successors there since the
  // entry probe — could by now hold work again, so the pass re-probes all
  // of them rather than tracking which try_lock failed. The extra
  // uncontended lock/unlock is cheaper than it sounds, and this path only
  // runs when the try pass came up dry with at least one shard busy.
  for (unsigned k = 0; k < ns; ++k) {
    const unsigned r = (home + k) % ns;
    std::lock_guard lock(shards_[r].mu);
    if (Node* n = take_front_shard_held(r, from)) return n;
  }
  return nullptr;
}

/// Claim-race handling off the split pop path (no shard lock held — the
/// entry was already popped): under graph_mu_, fold a silently-terminated
/// claim's completion into the popper's home shard, or put the still-
/// running claim under watch. The rare path: claim races only happen when
/// the owner's FIFO reached a task a combiner had queued.
void ReadyList::fold_or_watch(Node* n, unsigned home) {
  std::lock_guard lock(graph_mu_);
  if (n->completed.load(std::memory_order_relaxed)) return;  // settled
  if (n->task->load_state() == TaskState::kTerm) {
    ++missed_folds_;
    complete_node_graph_held(n, home);
  } else {
    watch_graph_held(n);
  }
}

/// Split-mode batch pop: per-entry shard locking, graph_mu_ only on the
/// rare paths (claim-race folds, the dry-list sweep, and one batched watch
/// registration before returning).
std::size_t ReadyList::pop_batch_split(Task** out, std::size_t max,
                                       unsigned home,
                                       std::uint64_t* shard_hits,
                                       std::uint64_t* shard_misses) {
  std::size_t got = 0;
  bool swept = false;
  int dry_probes = 0;
  const unsigned ns = nshards();
  // Claim-success nodes awaiting watch registration, batched into one
  // graph_mu_ acquisition per kWatchBuf pops (one per call in practice:
  // batches are steal-k sized): the claimed tasks are handed out only when
  // this call returns, so none can run — let alone silently terminate —
  // before its watch entry exists.
  constexpr std::size_t kWatchBuf = 16;
  Node* to_watch[kWatchBuf];
  std::size_t nwatch = 0;
  auto flush_watches = [&] {
    if (nwatch == 0) return;
    std::lock_guard lock(graph_mu_);
    for (std::size_t i = 0; i < nwatch; ++i) watch_graph_held(to_watch[i]);
    nwatch = 0;
  };
  while (got < max) {
    if (nready_.load(std::memory_order_relaxed) == 0) {
      // One lazy catch-up pass over the watched (claimed-elsewhere) nodes
      // per call: fold in completions whose notification raced the attach.
      if (swept) break;
      swept = true;
      bool released;
      {
        std::lock_guard lock(graph_mu_);
        released = sweep_watch_graph_held(home);
      }
      if (!released) break;
      continue;
    }
    unsigned from = home;
    Node* node = pop_entry_split(home, &from);
    if (node == nullptr) {
      // nready_ was stale: concurrent poppers drained the shards between
      // our read and our probes (or a push's count preceded visibility of
      // its entry). One clean retry, then report what we have — a missed
      // straggler is re-found by the next combiner round, and spinning
      // here against an active producer would hold up the whole deal.
      if (++dry_probes >= 2) break;
      continue;
    }
    dry_probes = 0;
    settle_queued(node);  // no-op for dead entries settled at completion
    Task* t = node->task;
    if (t->try_claim(TaskState::kStolenClaim)) {
      if (ns > 1) {  // single-shard runs report no telemetry (see global)
        if (from == home) {
          if (shard_hits != nullptr) ++*shard_hits;
        } else if (shard_misses != nullptr) {
          ++*shard_misses;
        }
      }
      if (nwatch == kWatchBuf) flush_watches();
      to_watch[nwatch++] = node;
      out[got++] = t;
      continue;
    }
    // Claimed elsewhere (victim FIFO won the race): settled entries are
    // skipped with a relaxed read; live races fold or watch under
    // graph_mu_ — taken here with no shard lock held (the lock order
    // graph_mu_ -> shard forbids the reverse nesting).
    if (!node->completed.load(std::memory_order_relaxed)) {
      fold_or_watch(node, home);
    }
  }
  flush_watches();
  return got;
}

/// Walks the watch deque once, dropping settled nodes and folding in
/// terminations whose on_complete never arrived (releases land in the
/// sweeping popper's `shard`). Returns true when the fold released at
/// least one task into a shard. Caller holds graph_mu_.
bool ReadyList::sweep_watch_graph_held(unsigned shard) {
  std::size_t released = 0;
  for (std::size_t n = watch_.size(); n > 0; --n) {
    Node* node = watch_.front();
    watch_.pop_front();
    if (node->completed.load(std::memory_order_relaxed)) {
      node->watched = false;  // notified normally; settled
      continue;
    }
    if (node->task->load_state() == TaskState::kTerm) {
      ++missed_folds_;
      node->watched = false;
      released += complete_node_graph_held(node, shard);
      continue;
    }
    watch_.push_back(node);  // still in flight; keep watching, FIFO order
  }
  return released != 0;
}

std::size_t ReadyList::covered() const {
  std::lock_guard lock(graph_mu_);
  return covered_count_;
}

std::size_t ReadyList::ready_size() const {
  return nready_.load(std::memory_order_relaxed);
}

std::size_t ReadyList::shard_ready_size(unsigned shard) const {
  if (shard >= nshards()) return 0;
  auto& self = *const_cast<ReadyList*>(this);
  // Global mode guards the deques with graph_mu_, not the (unused) shard
  // mutexes — a no-op guard here would race writers under graph_mu_.
  std::unique_lock<std::mutex> graph_lock;
  if (!split_) graph_lock = std::unique_lock(self.graph_mu_);
  ShardGuard guard(self.shards_[shard], split_);
  return shards_[shard].q.size();
}

std::int64_t ReadyList::shard_live_depth(unsigned shard) const {
  if (shard >= nshards()) return 0;
  return shards_[shard].depth.load(std::memory_order_relaxed);
}

std::size_t ReadyList::watched_size() const {
  std::lock_guard lock(graph_mu_);
  return watch_.size();
}

std::size_t ReadyList::early_completion_count() const {
  std::lock_guard lock(graph_mu_);
  return early_completions_.size();
}

std::uint64_t ReadyList::missed_folds() const {
  std::lock_guard lock(graph_mu_);
  return missed_folds_;
}

}  // namespace xk
