#include "core/readylist.hpp"

#include <algorithm>

namespace xk {

ReadyList::ReadyList(Frame& frame, unsigned nshards, StarvationBoard* board)
    : frame_(frame),
      board_(board),
      shards_(std::max(nshards, 1u)) {}

ReadyList::~ReadyList() {
  // A frame can recycle with tasks still queued (released successors the
  // owner's FIFO claimed and ran without a combiner ever popping them);
  // return any gauge contribution not already returned at completion so
  // the board never drifts. Keyed off Node::queued, not the deque sizes:
  // deques may hold dead ids whose contribution was settled when their
  // completion arrived.
  if (board_ == nullptr) return;
  for (const Node& n : nodes_) {
    if (n.queued >= 0) board_->add_ready(static_cast<unsigned>(n.queued), -1);
  }
}

void ReadyList::push_ready_locked(std::uint32_t id, unsigned shard) {
  shards_[shard].push_back(id);
  nodes_[id].queued = static_cast<std::int32_t>(shard);
  ++nready_;
  if (board_ != nullptr) board_->add_ready(shard, 1);
}

/// Returns `id`'s board contribution if it still has one (called at pop and
/// at completion — whichever comes first settles the gauge; the other finds
/// queued already cleared).
void ReadyList::unaccount_ready_locked(std::uint32_t id) {
  Node& node = nodes_[id];
  if (node.queued < 0) return;
  if (board_ != nullptr) {
    board_->add_ready(static_cast<unsigned>(node.queued), -1);
  }
  node.queued = -1;
}

void ReadyList::extend(unsigned shard) {
  // Cap the per-round coverage growth: extend() runs inside the victim's
  // scanning window, and the frame owner's pop_frame waits that window out —
  // covering a 100k-task frame in one go would stall the owner for the whole
  // build. Remaining tasks are covered by subsequent combiner rounds.
  constexpr std::uint32_t kMaxPerRound = 2048;
  std::lock_guard lock(mu_);
  shard = clamp_shard(shard);
  const std::uint32_t published = frame_.size_acquire();
  if (covered_count_ >= published) return;
  Frame::Iterator it(frame_);
  it.seek(covered_count_);
  std::uint32_t added = 0;
  while (covered_count_ < published && added < kMaxPerRound) {
    add_node_locked(it.get(), shard);
    it.advance();
    ++covered_count_;
    ++added;
  }
}

void ReadyList::add_node_locked(Task* t, unsigned shard) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{t, 0, false, {}});
  live_refs_.emplace_back();
  index_.emplace(t, id);
  Node& node = nodes_.back();

  // A task that already completed before coverage: record and move on.
  const TaskState s = t->load_state();
  const bool already_done =
      s == TaskState::kTerm || early_completions_.count(t) != 0;
  if (already_done) {
    node.completed = true;
    early_completions_.erase(t);
    return;
  }
  // Covered while already claimed: it may have loaded frame.ready_list
  // before the attach and thus terminate without notifying — watch it so
  // the lazy sweep folds the completion in.
  if (s != TaskState::kInit) watch_.push_back(id);

  // Count conflicts against live (non-completed) predecessors' accesses.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t hi = acc.region.hi();
    // Candidate predecessors: entries whose interval start is in
    // [lo - max_span_, hi). Anything starting earlier cannot reach lo.
    const std::uintptr_t from = lo > max_span_ ? lo - max_span_ : 0;
    for (auto itv = live_.lower_bound(from);
         itv != live_.end() && itv->first < hi; ++itv) {
      const ChainEntry& e = itv->second;
      if (e.node == id) continue;
      if (!accesses_conflict(*e.acc, acc)) continue;
      Node& pred = nodes_[e.node];
      if (pred.completed) continue;
      pred.successors.push_back(id);
      ++node.npred;
    }
  }

  // Publish this task's own accesses as live entries for later tasks.
  for (std::uint32_t a = 0; a < t->naccesses; ++a) {
    const Access& acc = t->accesses[a];
    if (acc.mode == AccessMode::kNone || acc.mode == AccessMode::kScratch)
      continue;
    const std::uintptr_t lo = acc.region.lo();
    const std::uintptr_t span = acc.region.hi() - lo;
    max_span_ = std::max(max_span_, span);
    auto itv = live_.emplace(lo, ChainEntry{id, &acc});
    live_refs_[id].push_back(itv);
  }

  if (node.npred == 0 && t->load_state() == TaskState::kInit) {
    push_ready_locked(id, shard);
  }
}

void ReadyList::on_complete(Task* t, unsigned shard) {
  std::lock_guard lock(mu_);
  auto found = index_.find(t);
  if (found == index_.end()) {
    early_completions_.emplace(t, true);
    return;
  }
  complete_node_locked(found->second, clamp_shard(shard));
}

void ReadyList::complete_node_locked(std::uint32_t id, unsigned shard) {
  Node& node = nodes_[id];
  if (node.completed) return;
  node.completed = true;
  // A node can complete while still sitting in a shard deque (the owner's
  // FIFO claimed and ran it); its id stays queued as a dead entry until a
  // pop discards it, but its board contribution must not — phantom depth
  // would veto real starvation verdicts for the shard's domain.
  unaccount_ready_locked(id);
  for (auto itv : live_refs_[id]) live_.erase(itv);
  live_refs_[id].clear();
  for (std::uint32_t succ : node.successors) {
    Node& s = nodes_[succ];
    if (s.npred > 0 && --s.npred == 0 && !s.completed) {
      // Producer-side routing: the released successor joins the finisher's
      // shard — its inputs were just written by a worker of that domain.
      push_ready_locked(succ, shard);
    }
  }
  node.successors.clear();
}

Task* ReadyList::pop_ready_claimed(unsigned shard) {
  Task* t = nullptr;
  return pop_ready_claimed_batch(&t, 1, shard) == 1 ? t : nullptr;
}

std::size_t ReadyList::pop_ready_claimed_batch(Task** out, std::size_t max,
                                               unsigned shard,
                                               std::uint64_t* shard_hits,
                                               std::uint64_t* shard_misses) {
  std::lock_guard lock(mu_);
  return pop_batch_locked(out, max, clamp_shard(shard), shard_hits,
                          shard_misses);
}

std::size_t ReadyList::pop_batch_locked(Task** out, std::size_t max,
                                        unsigned home,
                                        std::uint64_t* shard_hits,
                                        std::uint64_t* shard_misses) {
  std::size_t got = 0;
  bool swept = false;
  const unsigned ns = nshards();
  while (got < max) {
    if (nready_ == 0) {
      // One lazy catch-up pass over the watched (claimed-elsewhere) nodes
      // per call: fold in completions whose notification raced the attach.
      if (swept || !sweep_watch_locked(home)) break;
      swept = true;
      continue;
    }
    // Local-shard-first: drain the popper's own domain shard oldest-first,
    // then cross shards in rank order starting just above it. Crossing
    // (the miss path) is what keeps work flowing when a domain's own shard
    // is dry; the hit/miss split is the locality telemetry.
    unsigned shard = home;
    for (unsigned k = 1; k < ns && shards_[shard].empty(); ++k) {
      shard = (home + k) % ns;
    }
    const std::uint32_t id = shards_[shard].front();
    shards_[shard].pop_front();
    --nready_;
    unaccount_ready_locked(id);  // no-op for dead ids settled at completion
    Node& node = nodes_[id];
    Task* t = node.task;
    if (t->try_claim(TaskState::kStolenClaim)) {
      // The hit/miss split is only meaningful when there is more than one
      // shard; counting a forced single shard as all-hits would make the
      // sharded-vs-unsharded ablation (XK_RL_SHARD=0, flat machines)
      // indistinguishable from a perfectly-local sharded run.
      if (ns > 1) {
        if (shard == home) {
          if (shard_hits != nullptr) ++*shard_hits;
        } else if (shard_misses != nullptr) {
          ++*shard_misses;
        }
      }
      // Watched as a safety net: the thief that runs a popped task re-reads
      // frame.ready_list before Term, but watching costs one sweep visit
      // and makes a silently-terminated claim impossible to strand.
      watch_.push_back(id);
      out[got++] = t;
      continue;
    }
    // Claimed elsewhere (victim FIFO won the race). Fold a missed
    // completion immediately — its successors enter the popper's shard
    // now, ahead of younger releases, so oldest-ready order survives the
    // contention — otherwise watch it for the lazy sweep.
    if (!node.completed) {
      if (t->load_state() == TaskState::kTerm) {
        ++missed_folds_;
        complete_node_locked(id, home);
      } else {
        watch_.push_back(id);
      }
    }
  }
  return got;
}

/// Walks the watch deque once, dropping settled nodes and folding in
/// terminations whose on_complete never arrived (releases land in the
/// sweeping popper's `shard`). Returns true when the fold released at
/// least one task into a shard.
bool ReadyList::sweep_watch_locked(unsigned shard) {
  bool released = false;
  for (std::size_t n = watch_.size(); n > 0; --n) {
    const std::uint32_t id = watch_.front();
    watch_.pop_front();
    Node& node = nodes_[id];
    if (node.completed) continue;  // notified normally; settled
    if (node.task->load_state() == TaskState::kTerm) {
      ++missed_folds_;
      complete_node_locked(id, shard);
      released = released || nready_ != 0;
      continue;
    }
    watch_.push_back(id);  // still in flight; keep watching, FIFO order
  }
  return released;
}

std::size_t ReadyList::covered() const {
  std::lock_guard lock(mu_);
  return covered_count_;
}

std::size_t ReadyList::ready_size() const {
  std::lock_guard lock(mu_);
  return nready_;
}

std::size_t ReadyList::shard_ready_size(unsigned shard) const {
  std::lock_guard lock(mu_);
  return shard < nshards() ? shards_[shard].size() : 0;
}

std::size_t ReadyList::watched_size() const {
  std::lock_guard lock(mu_);
  return watch_.size();
}

std::uint64_t ReadyList::missed_folds() const {
  std::lock_guard lock(mu_);
  return missed_folds_;
}

}  // namespace xk
