// kaapic-flavor C API — a thin veneer over the C++ runtime mirroring the
// paper's C interface (RT-0417: kaapic_init/kaapic_finalize/kaapic_spawn/
// kaapic_foreach/kaapic_sync). The ROSE-based source-to-source compiler of
// the original stack lowered `#pragma kaapi` annotations to exactly these
// entry points; this reproduction keeps the C++ API primary and provides
// this header for API-compatibility flavor and for C callers.
#pragma once

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/// Access modes for kaapic_spawn arguments (paper §II-B).
typedef enum {
  KAAPIC_MODE_V = 0,  /* by value */
  KAAPIC_MODE_R = 1,  /* read */
  KAAPIC_MODE_W = 2,  /* write */
  KAAPIC_MODE_RW = 3, /* exclusive */
  KAAPIC_MODE_CW = 4, /* cumulative write */
} kaapic_mode_t;

/// Starts the runtime with `ncpu` workers (0 = one per core) and opens the
/// implicit parallel section. Returns 0 on success.
int kaapic_init(int32_t ncpu);

/// Drains outstanding tasks and stops the runtime. Returns 0 on success.
int kaapic_finalize(void);

/// Number of workers of the live runtime (0 when not initialized).
int32_t kaapic_get_concurrency(void);

/// Spawns `body(arg)` as an independent task.
int kaapic_spawn(void (*body)(void*), void* arg);

/// Spawns `body(ptr)` as a dataflow task with one declared access of
/// `bytes` bytes at `ptr` in the given mode.
int kaapic_spawn_1(void (*body)(void*), void* ptr, uint64_t bytes,
                   kaapic_mode_t mode);

/// Waits for all tasks spawned so far by this thread (paper: implicit or
/// `#pragma kaapi sync`).
int kaapic_sync(void);

/// Parallel loop over [first, last): `body(lo, hi, tid, arg)` per chunk —
/// the paper's kaapic_foreach (§II-E).
int kaapic_foreach(int64_t first, int64_t last, void* arg,
                   void (*body)(int64_t lo, int64_t hi, int32_t tid,
                                void* arg));

#ifdef __cplusplus
}
#endif
