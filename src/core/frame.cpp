#include "core/frame.hpp"

#include "core/readylist.hpp"

namespace xk {

Frame::~Frame() {
  delete_heap_tasks();
  delete ready_list.load(std::memory_order_relaxed);
}

void Frame::delete_heap_tasks() {
  if (!has_heap_tasks_) return;
  const std::uint32_t n = ntasks_.load(std::memory_order_relaxed);
  Iterator it(*this);
  for (std::uint32_t i = 0; i < n; ++i, it.advance()) {
    Task* t = it.get();
    if (t->heap_owned && t->heap_deleter != nullptr) {
      t->heap_deleter(t->heap_box);
    }
  }
  has_heap_tasks_ = false;
}

void Frame::reset() {
  delete_heap_tasks();
  // The ReadyList destructor returns any still-queued shard entries to the
  // runtime's starvation gauges, so recycling a frame cannot leave a
  // domain's ready-depth permanently inflated. It runs lock-free: the
  // owner only resets after every task reached Term and the Dekker
  // handshake excluded scanners, so neither the list's graph mutex nor any
  // shard mutex can be contended (or held) here. The epoch bump below is
  // also what a *surviving* list would key its coverage reset off — a
  // ReadyList constructed on this frame checks Frame::epoch() at every
  // graph-side entry and drops stale coverage (and early-completion
  // records, which would otherwise alias recycled task addresses). Under
  // XK_RL_LOCK=lockfree that same coverage reset additionally discards
  // the deferred-retirement stack and the lock-free task->node index —
  // both hold pointers into the node storage the reset frees, and both
  // are keyed by task addresses this recycle is about to reissue.
  // xk-order: owner-only quiesced recycle — the Dekker handshake excluded
  // every scanner before reset() runs, and the next push_frame publishes
  // the recycled frame with its own release edge.
  delete ready_list.load(std::memory_order_relaxed);
  ready_list.store(nullptr, std::memory_order_relaxed);
  head_.next.store(nullptr, std::memory_order_relaxed);  // xk-order: ditto
  tail_ = &head_;
  ntasks_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  steal_claimed_.store(false, std::memory_order_relaxed);  // xk-order: ditto
  exec_chunk_ = &head_;
  exec_index_ = 0;
  exec_slot_ = 0;
  arena.reset();
}

}  // namespace xk
