// Umbrella header: the public X-Kaapi reproduction API.
//
//   #include "core/xkaapi.hpp"
//
//   xk::Runtime rt;                       // pool of one worker per core
//   rt.run([] {
//     xk::spawn(task_fn, xk::read(&a), xk::write(&b));   // dataflow task
//     xk::spawn([] { recursive(); });                    // fork-join task
//     xk::sync();                                        // wait children
//     xk::parallel_for(0, n, [&](int64_t lo, int64_t hi) { ... });
//   });
#pragma once

#include "core/access.hpp"       // IWYU pragma: export
#include "core/adaptive.hpp"     // IWYU pragma: export
#include "core/config.hpp"       // IWYU pragma: export
#include "core/foreach.hpp"      // IWYU pragma: export
#include "core/reduce.hpp"       // IWYU pragma: export
#include "core/runtime.hpp"      // IWYU pragma: export
#include "core/service.hpp"      // IWYU pragma: export
#include "core/spawn.hpp"        // IWYU pragma: export
#include "core/stats.hpp"        // IWYU pragma: export
#include "core/task.hpp"         // IWYU pragma: export
#include "core/worker.hpp"       // IWYU pragma: export
