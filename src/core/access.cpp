#include "core/access.hpp"

#include <algorithm>

namespace xk {
namespace {

/// Overlap between a contiguous interval [lo, hi) and a strided region.
bool interval_overlaps_strided(std::uintptr_t lo, std::uintptr_t hi,
                               const MemRegion& s) {
  if (lo >= hi || s.empty()) return false;
  if (hi <= s.lo() || lo >= s.hi()) return false;
  if (s.runs == 1 || s.stride_bytes == 0) return true;  // bounding is exact
  // Find the run whose start is the last at or before `lo`.
  const std::uintptr_t rel = lo > s.base ? lo - s.base : 0;
  std::size_t k = rel / s.stride_bytes;
  if (k >= s.runs) k = s.runs - 1;
  // The interval can only intersect run k or run k+1 given hi > lo.
  for (std::size_t i = k; i < std::min(s.runs, k + 2); ++i) {
    const std::uintptr_t run_lo = s.base + i * s.stride_bytes;
    const std::uintptr_t run_hi = run_lo + s.run_bytes;
    if (lo < run_hi && run_lo < hi) return true;
  }
  // Interval may span multiple strides entirely (hi far beyond lo).
  if (hi - lo >= s.stride_bytes) return true;  // covers at least one full run
  return false;
}

}  // namespace

bool regions_overlap(const MemRegion& a, const MemRegion& b) {
  if (a.empty() || b.empty()) return false;
  if (a.hi() <= b.lo() || b.hi() <= a.lo()) return false;  // bounding check
  if (a.runs == 1 && b.runs == 1) return true;             // both contiguous
  // Iterate the runs of the region with fewer runs, testing each contiguous
  // run against the other region.
  const MemRegion& outer = a.runs <= b.runs ? a : b;
  const MemRegion& inner = a.runs <= b.runs ? b : a;
  for (std::size_t k = 0; k < outer.runs; ++k) {
    const std::uintptr_t lo = outer.base + k * outer.stride_bytes;
    if (interval_overlaps_strided(lo, lo + outer.run_bytes, inner)) return true;
  }
  return false;
}

bool accesses_conflict(const Access& before, const Access& after) {
  const AccessMode mb = before.mode;
  const AccessMode ma = after.mode;
  if (mb == AccessMode::kNone || ma == AccessMode::kNone) return false;
  if (mb == AccessMode::kScratch || ma == AccessMode::kScratch) return false;
  if (mb == AccessMode::kRead && ma == AccessMode::kRead) return false;
  if (mb == AccessMode::kCumulWrite && ma == AccessMode::kCumulWrite)
    return false;
  return regions_overlap(before.region, after.region);
}

bool conflict_is_false_dependency(const Access& before, const Access& after) {
  // True dependency (RAW): `after` reads what `before` writes.
  if (mode_writes(before.mode) && mode_reads(after.mode)) return false;
  // WAR / WAW are false dependencies.
  return accesses_conflict(before, after);
}

}  // namespace xk
