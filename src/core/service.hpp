// Service mode: async job submission from non-worker threads.
//
// The paper's runtime is entered one closed parallel region at a time; a
// server substrate instead absorbs an open stream of independent jobs.
// This header is the submission surface:
//
//  * `JobToken` — the caller's handle: completion waiting (wait/wait_for),
//    pre-execution cancellation (cancel: a single CAS against the job's
//    state machine, it wins iff the body has not started), cooperative
//    in-flight cancellation (request_cancel + JobContext polling), and
//    error retrieval (get rethrows the body's exception).
//  * `ServiceQueue` — per-tenant admission-controlled lanes drained by
//    smooth weighted round-robin. Deterministic (no clock, no RNG): given
//    the same push sequence it yields the same pick sequence, which is
//    what the seeded priority tests pin.
//  * `detail::ServiceState` — the dispatcher: one thread that parks on a
//    submit eventcount, opens a runtime section on one of the master
//    slots (see Runtime::begin), spawns queued jobs as ordinary tasks
//    (stealable by the whole pool), and closes the section after an idle
//    grace so bursts don't pay a begin/end per job.
//
// Job state machine (one atomic byte):
//
//   kQueued --submit            kQueued  -> kRunning   (executor's CAS)
//   kQueued --cancel()--------> kCancelled             (caller's CAS)
//   kRunning -> kDone | kFailed                        (executor store)
//   full lane at submit ------> kRejected              (never queued)
//
// Exactly one of the two CASes out of kQueued wins; every terminal store
// notifies the job's parker, so waiters never sleep past completion.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "support/parker.hpp"

namespace xk {

class Runtime;
class JobContext;

enum class JobStatus : std::uint8_t {
  kQueued,     ///< admitted, waiting for the dispatcher
  kRunning,    ///< body executing on some worker
  kDone,       ///< body returned normally
  kFailed,     ///< body threw; JobToken::get rethrows
  kCancelled,  ///< cancel() won before execution; body never ran
  kRejected,   ///< admission control refused it (full tenant lane)
};

namespace detail {

/// The edges of the job state machine drawn above, as a predicate: the
/// checked build asserts every terminal settle against it. kDone/kFailed/
/// kCancelled/kRejected are terminal — no edge leaves them, which is what
/// makes XK_EXPECT(job_settle_twice) below equivalent to "terminal states
/// are mutually exclusive and settle exactly once".
constexpr bool job_transition_ok(JobStatus from, JobStatus to) {
  switch (from) {
    case JobStatus::kQueued:
      return to == JobStatus::kRunning || to == JobStatus::kCancelled ||
             to == JobStatus::kRejected;
    case JobStatus::kRunning:
      return to == JobStatus::kDone || to == JobStatus::kFailed;
    case JobStatus::kDone:
    case JobStatus::kFailed:
    case JobStatus::kCancelled:
    case JobStatus::kRejected:
      return false;
  }
  return false;
}

struct JobState {
  std::atomic<std::uint8_t> status{
      static_cast<std::uint8_t>(JobStatus::kQueued)};
  std::atomic<bool> cancel_requested{false};
  std::exception_ptr exc;  ///< written before the kFailed release store
  std::function<void(JobContext&)> fn;
  unsigned tenant = 0;
  Parker done;  ///< notified on every terminal transition

  JobStatus load_status() const {
    return static_cast<JobStatus>(status.load(std::memory_order_acquire));
  }

  bool terminal() const {
    const JobStatus s = load_status();
    return s != JobStatus::kQueued && s != JobStatus::kRunning;
  }

  /// Terminal store + waiter wake (executor side). The unchecked build
  /// stores; the checked build exchanges so the displaced status is
  /// available to assert against the state machine — this plain store
  /// (unlike the two CASes out of kQueued) is where a double settle or a
  /// terminal->terminal overwrite would otherwise pass silently.
  void finish(JobStatus s) {
    if constexpr (check::kEnabled) {
      const auto prev = static_cast<JobStatus>(status.exchange(
          static_cast<std::uint8_t>(s), std::memory_order_acq_rel));
      XK_EXPECT(job_settle_twice,
                prev == JobStatus::kQueued || prev == JobStatus::kRunning,
                static_cast<std::uint64_t>(prev),
                static_cast<std::uint64_t>(s));
      XK_EXPECT(job_transition, job_transition_ok(prev, s),
                static_cast<std::uint64_t>(prev),
                static_cast<std::uint64_t>(s));
      (void)prev;  // XK_EXPECT is a no-op in the discarded-branch compile
    } else {
      status.store(static_cast<std::uint8_t>(s), std::memory_order_release);
    }
    done.notify_all();
  }
};

struct ServiceState;

}  // namespace detail

/// Handed to cancellation-aware job bodies; polling is the only
/// cooperation channel (the runtime never interrupts a running body).
class JobContext {
 public:
  explicit JobContext(detail::JobState* st) : st_(st) {}
  bool cancel_requested() const {
    return st_->cancel_requested.load(std::memory_order_acquire);
  }

 private:
  detail::JobState* st_;
};

struct SubmitOptions {
  /// Tenant lane (folded into [0, ServiceQueue::kMaxTenants)). Lanes have
  /// independent admission caps and scheduling weights.
  unsigned tenant = 0;
};

/// Caller-side job handle. Copyable; an empty (default) token is invalid.
class JobToken {
 public:
  JobToken() = default;

  bool valid() const { return st_ != nullptr; }

  JobStatus status() const { return st_->load_status(); }

  /// True once the job reached kDone/kFailed/kCancelled/kRejected.
  bool done() const { return st_->terminal(); }

  /// Pre-execution cancellation: wins iff the body has not started (and
  /// was not already cancelled/rejected). On success the body will never
  /// run and waiters wake immediately. Always sets the cooperative flag,
  /// so a body that already started can still observe the request.
  bool cancel() {
    st_->cancel_requested.store(true, std::memory_order_release);
    std::uint8_t expected = static_cast<std::uint8_t>(JobStatus::kQueued);
    if (st_->status.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(JobStatus::kCancelled),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      st_->done.notify_all();
      return true;
    }
    return false;
  }

  /// Cooperative-only cancellation: sets the flag a JobContext-polling
  /// body sees, without trying to stop a queued job from starting.
  void request_cancel() {
    st_->cancel_requested.store(true, std::memory_order_release);
  }

  bool cancel_requested() const {
    return st_->cancel_requested.load(std::memory_order_acquire);
  }

  /// Blocks until the job is terminal (eventcount park with a timed
  /// backstop, same discipline as the scheduler's idle parking).
  void wait() const {
    while (!st_->terminal()) {
      const std::uint32_t e = st_->done.prepare();
      st_->done.announce();
      if (st_->terminal()) {
        st_->done.retract();
        return;
      }
      st_->done.park(e, std::chrono::milliseconds(2));
      st_->done.retract();
    }
  }

  /// wait() with a deadline; true when the job turned terminal in time.
  bool wait_for(std::chrono::nanoseconds timeout) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!st_->terminal()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return st_->terminal();
      const std::uint32_t e = st_->done.prepare();
      st_->done.announce();
      if (st_->terminal()) {
        st_->done.retract();
        return true;
      }
      st_->done.park(e, std::min<std::chrono::nanoseconds>(
                            deadline - now, std::chrono::milliseconds(2)));
      st_->done.retract();
    }
    return true;
  }

  /// wait(), then rethrows a kFailed body's exception; a kRejected token
  /// throws std::runtime_error (the job never ran).
  void get() const {
    wait();
    const JobStatus s = st_->load_status();
    if (s == JobStatus::kFailed && st_->exc) {
      std::rethrow_exception(st_->exc);
    }
    if (s == JobStatus::kRejected) {
      throw std::runtime_error("xk::JobToken::get: job rejected (full lane)");
    }
  }

 private:
  friend class Runtime;
  friend struct detail::ServiceState;
  explicit JobToken(std::shared_ptr<detail::JobState> st)
      : st_(std::move(st)) {}

  std::shared_ptr<detail::JobState> st_;
};

/// Service accounting, all monotonically increasing except `queued`.
/// Cancel/complete counts are settled by the dispatcher when it pops the
/// job, so they can lag the token-visible state by one scheduling round.
struct ServiceStats {
  std::uint64_t submitted = 0;   ///< admitted into a lane
  std::uint64_t rejected = 0;    ///< refused at admission
  std::uint64_t completed = 0;   ///< bodies that returned (kDone)
  std::uint64_t failed = 0;      ///< bodies that threw (kFailed)
  std::uint64_t cancelled = 0;   ///< cancel() wins observed at dispatch
  std::uint64_t sections = 0;    ///< dispatcher sections opened
  std::uint64_t queued = 0;      ///< currently waiting in lanes
  std::uint64_t max_queued = 0;  ///< lane-total high-water mark
};

/// Per-tenant admission + smooth weighted round-robin pick. Thread-safe;
/// one mutex (the dispatcher is the only popper, submitters only push).
/// Deterministic by construction — the priority tests replay it.
class ServiceQueue {
 public:
  static constexpr unsigned kMaxTenants = 32;

  /// `cap` = per-tenant queued-job limit (0 = unbounded).
  explicit ServiceQueue(std::size_t cap) : cap_(cap) {}

  static unsigned fold_tenant(unsigned tenant) {
    return tenant % kMaxTenants;
  }

  void set_weight(unsigned tenant, unsigned weight) {
    std::lock_guard lock(mu_);
    Lane& l = lane(fold_tenant(tenant));
    l.weight = std::max(weight, 1u);
  }

  /// Admission: false when the tenant's lane is at cap (caller marks the
  /// job kRejected; it was never queued).
  bool push(std::shared_ptr<detail::JobState> job) {
    std::lock_guard lock(mu_);
    Lane& l = lane(fold_tenant(job->tenant));
    if (cap_ != 0 && l.q.size() >= cap_) return false;
    l.q.push_back(std::move(job));
    ++depth_;
    if (depth_ > max_depth_) max_depth_ = depth_;
    return true;
  }

  /// Smooth weighted round-robin over non-empty lanes: each pick adds
  /// every contender's weight to its credit, takes the highest-credit
  /// lane (lowest tenant id on ties) and charges it the contenders' total
  /// weight. A weight-w lane gets w picks per sum-of-weights rounds and a
  /// weight-1 lane is never starved. Returns null when everything is dry.
  std::shared_ptr<detail::JobState> pop() {
    std::lock_guard lock(mu_);
    std::int64_t total = 0;
    Lane* best = nullptr;
    for (Lane& l : lanes_) {
      if (l.q.empty()) continue;
      l.credit += l.weight;
      total += l.weight;
      if (best == nullptr || l.credit > best->credit) best = &l;
    }
    if (best == nullptr) return nullptr;
    best->credit -= total;
    auto job = std::move(best->q.front());
    best->q.pop_front();
    --depth_;
    return job;
  }

  std::size_t depth() const {
    std::lock_guard lock(mu_);
    return depth_;
  }

  std::size_t max_depth() const {
    std::lock_guard lock(mu_);
    return max_depth_;
  }

 private:
  struct Lane {
    std::deque<std::shared_ptr<detail::JobState>> q;
    std::int64_t credit = 0;
    unsigned weight = 1;
  };

  /// Lanes materialize on first touch (mu_ held).
  Lane& lane(unsigned t) {
    if (t >= lanes_.size()) lanes_.resize(t + 1);
    return lanes_[t];
  }

  mutable std::mutex mu_;
  std::vector<Lane> lanes_;
  std::size_t cap_;
  std::size_t depth_ = 0;
  std::size_t max_depth_ = 0;
};

namespace detail {

/// The dispatcher: owns the queue, the submit eventcount and the thread
/// that turns queued jobs into spawned tasks inside master-slot sections.
/// Created lazily by Runtime::submit; destroyed first in ~Runtime (stops,
/// runs every job still queued — admission is a promise — then joins).
struct ServiceState {
  explicit ServiceState(Runtime& rt);
  ~ServiceState();

  JobToken submit(std::function<void(JobContext&)> fn,
                  const SubmitOptions& opts);
  ServiceStats stats() const;

  Runtime& rt;
  ServiceQueue queue;
  Parker submit_parker;  ///< dispatcher sleeps here between arrivals
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> sections{0};
  std::thread thread;

 private:
  void dispatcher_main();
  void run_open_section();
  void spawn_job(std::shared_ptr<JobState> job);
};

}  // namespace detail

}  // namespace xk
