#include "core/capi.h"

#include <memory>

#include "core/xkaapi.hpp"

namespace {
std::unique_ptr<xk::Runtime> g_runtime;
}  // namespace

extern "C" {

int kaapic_init(int32_t ncpu) {
  if (g_runtime) return -1;
  xk::Config cfg = xk::Config::from_env();
  if (ncpu > 0) cfg.nworkers = static_cast<unsigned>(ncpu);
  try {
    g_runtime = std::make_unique<xk::Runtime>(cfg);
    g_runtime->begin();
  } catch (...) {
    g_runtime.reset();
    return -1;
  }
  return 0;
}

int kaapic_finalize(void) {
  if (!g_runtime) return -1;
  try {
    g_runtime->end();
    g_runtime.reset();
  } catch (...) {
    g_runtime.reset();
    return -1;
  }
  return 0;
}

int32_t kaapic_get_concurrency(void) {
  return g_runtime ? static_cast<int32_t>(g_runtime->nworkers()) : 0;
}

int kaapic_spawn(void (*body)(void*), void* arg) {
  if (!g_runtime) return -1;
  xk::spawn([body, arg] { body(arg); });
  return 0;
}

int kaapic_spawn_1(void (*body)(void*), void* ptr, uint64_t bytes,
                   kaapic_mode_t mode) {
  if (!g_runtime) return -1;
  auto* p = static_cast<char*>(ptr);
  const auto n = static_cast<std::size_t>(bytes);
  switch (mode) {
    case KAAPIC_MODE_R:
      xk::spawn([body](const char* q) { body(const_cast<char*>(q)); },
                xk::read(p, n));
      break;
    case KAAPIC_MODE_W:
      xk::spawn([body](char* q) { body(q); }, xk::write(p, n));
      break;
    case KAAPIC_MODE_RW:
      xk::spawn([body](char* q) { body(q); }, xk::rw(p, n));
      break;
    case KAAPIC_MODE_CW:
      xk::spawn([body](char* q) { body(q); }, xk::cw(p, n));
      break;
    case KAAPIC_MODE_V:
    default:
      xk::spawn([body, ptr] { body(ptr); });
      break;
  }
  return 0;
}

int kaapic_sync(void) {
  if (!g_runtime) return -1;
  try {
    xk::sync();
  } catch (...) {
    return -1;
  }
  return 0;
}

int kaapic_foreach(int64_t first, int64_t last, void* arg,
                   void (*body)(int64_t lo, int64_t hi, int32_t tid,
                                void* arg)) {
  if (!g_runtime) return -1;
  try {
    xk::parallel_for(first, last,
                     [body, arg](std::int64_t lo, std::int64_t hi,
                                 unsigned wid) {
                       body(lo, hi, static_cast<int32_t>(wid), arg);
                     });
  } catch (...) {
    return -1;
  }
  return 0;
}

}  // extern "C"
