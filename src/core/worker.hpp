// Worker: one scheduler thread (the paper: one per core by default).
//
// Each worker owns a stack of frames (its "workqueue stack"), a steal-request
// box where thieves post requests, and a steal mutex that elects the single
// combiner allowed to traverse this worker's stack (§II-C request
// aggregation: "one of the thieves is elected to reply to all requests").
//
// Victim/thief synchronization is split into two protocols:
//  * per-task: a single CAS on Task::state arbitrates the victim's FIFO claim
//    against a combiner's steal claim (T.H.E-style: common case uncontended);
//  * per-frame: a Dekker handshake (depth store + scanning flag, both seq_cst)
//    lets the owner recycle a popped frame only when no combiner can still be
//    reading it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/frame.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"
#include "obs/trace.hpp"
#include "support/cache.hpp"
#include "support/parker.hpp"
#include "support/rng.hpp"
#include "topo/topology.hpp"

namespace xk {

class Runtime;
class Worker;

/// Returns the worker bound to the calling thread, or nullptr outside a
/// runtime section.
Worker* this_worker();

namespace detail {
/// Binds/unbinds the calling thread's worker (Runtime internal).
void set_this_worker(Worker* w);
}  // namespace detail

/// A steal request slot: thief `i` posts into victim's box slot `i`; the
/// combiner answers every posted slot before releasing the steal mutex.
///
/// A reply carries up to kMaxBatch (task, frame) pairs: when ready tasks
/// come cheap (ready-list pops) the combiner hands a thief several in one
/// handshake, amortizing the post/spin/serve round trip. All reply fields
/// are written by the combiner before the kServed release store and read by
/// the thief after its acquire load of the status. The request-side fields
/// (`stealhalf`, `idle`) are the tasking-2.0-style bits the thief writes
/// before the kPosted release store; the combiner reads them after its
/// acquire load of the status (see docs/STEALING.md).
struct StealRequest {
  enum Status : int { kEmpty = 0, kPosted, kServed, kFailed };
  static constexpr std::uint32_t kMaxBatch = 8;
  std::atomic<int> status{kEmpty};
  std::uint32_t nreplies = 0;
  /// Thief asks for half of the victim's ready work (adaptive feedback bit;
  /// false = steal-one). Meaningful only under XK_STEAL_ADAPTIVE.
  bool stealhalf = false;
  /// Thief has an empty frame stack (a pure idle thief, not a suspended
  /// owner helping while it waits). Scarce combiners serve idle thieves
  /// before suspended ones, which still hold runnable work of their own.
  bool idle = false;
  Task* reply[kMaxBatch] = {};
  Frame* reply_frame[kMaxBatch] = {};  ///< source frame per task (for ready-list notify); null for heap tasks
};

/// Next value of a thief's steal-half feedback bit, evaluated just before
/// it posts a new request (XK_STEAL_ADAPTIVE; pure so tests can pin the
/// flip conditions). `received` is the size of the thief's last successful
/// reply (0 = the previous round failed: keep the current width), and
/// `executed` counts every task the thief ran since that reply. Executing
/// no more than what was received means the stolen subtree fanned out into
/// nothing and the thief is back begging immediately — ask for half next
/// time; executing more means the reply seeded enough local work — drop
/// back to steal-one and leave the victim its locality.
constexpr bool next_stealhalf(bool current, std::uint32_t received,
                              std::uint64_t executed) {
  if (received == 0) return current;
  return executed <= received;
}

/// How many tasks an adaptive combiner may drain from a ready list holding
/// `depth` live tasks while `npending` requests wait (pure; the steal-half
/// cap pour_ready_list applies per list). One task per pending thief is
/// always grantable — steal-one semantics never fail a thief just to hoard
/// — and of the remainder the victim keeps half. A non-positive `depth`
/// (the relaxed gauge can lag pushes) still probes one pop so a stale
/// gauge cannot starve the deal.
constexpr std::size_t adaptive_take_cap(std::int64_t depth,
                                        std::size_t npending) {
  if (depth <= 0) return npending == 0 ? 0 : 1;
  const auto d = static_cast<std::size_t>(depth);
  const std::size_t base = npending < d ? npending : d;
  return base + (d - base) / 2;
}

/// Per-frame combiner scan state, owned by the victim and persisted across
/// steal rounds (the "incremental readiness" core of the steal-path
/// overhaul). Mutated only by the elected combiner, which holds the
/// victim's steal mutex inside a scanning window, so no further locking is
/// needed; a frame recycle is detected through Frame::epoch().
///
/// `entries` is the index-ordered list of still-relevant published tasks:
/// candidates (Init), blockers (claimed dataflow tasks), and armed adaptive
/// tasks. Tasks that can never matter again (Term, BodyDoneOwner, claimed
/// pure fork-join) are dropped the first time a scan sees them, so repeat
/// scans of a long frame touch only its live suffix instead of rescanning
/// from index 0 — the cross-round analog of the old per-round scan-hint.
/// Verdict of a steal-time readiness check (see Worker::check_ready).
enum class Readiness : std::uint8_t { kReady, kBlocked, kFalseOnly };

struct FrameScanState {
  struct Entry {
    Task* task;
    std::uint32_t index;  ///< publication index (program order) in the frame
  };
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

  std::uint64_t epoch = kNoEpoch;  ///< frame incarnation `entries` matches
  std::uint32_t ingested = 0;      ///< published prefix already ingested
  std::uint64_t listed_round = 0;  ///< round the cross-frame lists are valid for
  std::vector<Entry> entries;
  // Round-local cross-frame blocker lists (see worker.cpp readiness rules):
  // thief-side tasks block candidates in *lower* frames; successor-blocking
  // ("strong") tasks block candidates in *deeper* frames. Built lazily, at
  // most once per round per frame, only when a candidate consults them.
  std::vector<const Task*> thief_side;
  std::vector<const Task*> strong;
};

class Worker {
 public:
  static constexpr std::uint32_t kMaxDepth = 512;

  Worker(Runtime& rt, unsigned id, unsigned nworkers);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  unsigned id() const { return id_; }
  Runtime& runtime() { return rt_; }
  WorkerStats& stats() { return *stats_; }

  /// Locality domain (NUMA node) this worker was placed in. Thieves prefer
  /// same-domain victims (see try_steal_once); the foreach domain partition
  /// keys slices off it.
  unsigned domain() const { return domain_; }

  /// Dense domain index in [0, Runtime::ndomains()): the key for ready-list
  /// shards and the starvation board (node ids can be sparse; see
  /// Placement::Slot::domain_rank).
  unsigned domain_rank() const { return domain_rank_; }

  /// Hierarchical victim ordering snapshot (tests/diagnostics): every other
  /// worker, same-domain first. The first nlocal_victims() entries are the
  /// local tier. Never contains this worker's own id.
  const std::vector<unsigned>& victim_order() const { return victim_order_; }
  unsigned nlocal_victims() const { return nlocal_victims_; }

  // ---- owner-side execution -------------------------------------------

  /// Current (deepest) frame; valid only while depth > 0.
  Frame& current_frame() { return frames_[depth_.load(std::memory_order_relaxed) - 1]; }

  /// Spawns `t` into the current frame. Fast path of §II-B. The parked-peer
  /// probe costs one load of a read-mostly line when nobody sleeps.
  void push_task(Task* t) {
    current_frame().push_task(t);
    stats_->tasks_spawned++;
    if (work_parker_->has_waiters()) work_parker_->notify_one();
  }

  /// Allocates from the current frame's arena.
  void* frame_alloc(std::size_t bytes, std::size_t align) {
    return current_frame().arena.allocate(bytes, align);
  }

  /// Runs `t` (claim already performed by the caller): pushes a frame,
  /// executes the body, drains children FIFO, handles renaming/exceptions,
  /// publishes Term. `src` is the frame holding the descriptor (for
  /// ready-list notification); may be null (root / heap tasks).
  void run_task(Task* t, Frame* src, bool stolen);

  /// FIFO-executes the current frame from its cursor until all its tasks
  /// reached Term (the implicit sync at body end; also the body of
  /// xk::sync()). Rethrows the first child exception after the drain.
  void drain_current_frame();

  /// Enters the idle loop until `done` becomes true: posts steal requests
  /// to random victims, backing off as failures accumulate — spin, then
  /// yield, then park (bounded exponential sleep with the timeout as the
  /// lost-wakeup backstop). Used by foreach completion waits; the sleeper
  /// waits on the *progress* parker, woken by foreach retirement and the
  /// section-end quiescence fire (and re-validates stealable work before
  /// sleeping). A join on one specific stolen task uses steal_until_on
  /// with the private join parker instead (see wait_and_finalize).
  template <typename Pred>
  void steal_until(Pred&& done) {
    steal_until_on(*progress_parker_, done);
  }

  /// Same loop for a pure work-waiter (the scheduler idle loop): parks on
  /// the *work* parker, woken one at a time by task publication.
  template <typename Pred>
  void steal_idle(Pred&& done) {
    steal_until_on(*work_parker_, done);
  }

  template <typename Pred>
  void steal_until_on(Parker& parker, Pred&& done) {
    int failures = 0;
    while (!done()) {
      if (try_steal_once()) {
        failures = 0;
        continue;
      }
      ++failures;
      if (failures <= backoff_limit_) continue;  // hot spin: retry at once
      if (park_threshold_ <= 0 || failures < park_threshold_) {
        std::this_thread::yield();
        continue;
      }
      // Park. Announce first, then re-validate inside the announce window
      // (a publisher that saw the announce notifies; one that published
      // just before is caught by the extra steal attempt), then sleep with
      // a bounded, escalating timeout as the lost-wakeup backstop.
      const std::uint32_t epoch = parker.prepare();
      parker.announce();
      if (done() || try_steal_once()) {
        parker.retract();
        failures = 0;
        continue;
      }
      stats_->parks++;
      const std::uint64_t park_t0 = obs::span_begin();
      const bool woken = parker.park(epoch, park_timeout(failures));
      if (woken) stats_->park_wakes++;
      obs::emit_span(obs::Ev::kPark, park_t0, woken ? 1 : 0);
      parker.retract();
    }
  }

  /// One steal attempt: pick a victim (same-domain first, escalating to
  /// remote domains after steal_local_tries failed local rounds), post a
  /// request, spin until it is served or failed (possibly becoming the
  /// combiner). Returns true when work was obtained *and executed*.
  bool try_steal_once();

  /// Suspends on a task claimed by another worker until it terminates,
  /// stealing meanwhile (§II-B: "it suspends its execution and switches to
  /// the workstealing scheduler"). Registers the task in this worker's own
  /// `join_target_` cell so the finishing thief wakes exactly this
  /// worker's join parker (see wake_joiner), and commits pending renamed
  /// writes when the task parks in CommitReady.
  void wait_and_finalize(Task* t, Frame& f);

  /// This worker's private join parker: parked on only in
  /// wait_and_finalize, notified only by the thief that finishes the
  /// registered task (wake_joiner). notify_all is used there — the single
  /// waiter makes it as cheap as notify_one without the rate limiter that
  /// can drop wakes.
  Parker& join_parker() { return join_parker_; }

  std::uint32_t depth_relaxed() const {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Waits out any combiner currently traversing this worker's stack (it
  /// holds the steal mutex for the whole round, splitter calls included).
  /// Used before freeing state that an in-flight splitter may reference.
  void scan_barrier() { std::lock_guard<std::mutex> lock(steal_mutex_); }

  // ---- victim-side state read by thieves --------------------------------

  std::uint32_t depth_acquire() const {
    return depth_.load(std::memory_order_seq_cst);
  }
  Frame& frame_at(std::uint32_t d) { return frames_[d]; }
  StealRequest& request_slot(unsigned thief) { return reqbox_[thief].value; }
  unsigned nslots() const { return static_cast<unsigned>(reqbox_.size()); }

  /// Quick "might have work" probe used for victim selection.
  bool looks_busy() const {
    return depth_.load(std::memory_order_relaxed) > 0;
  }

  // ---- frame stack management (owner only) ------------------------------

  Frame& push_frame();
  void pop_frame();

 private:
  friend class Runtime;

  /// Two-level victim draw over victim_order_: while local_fails_ has not
  /// exhausted steal_local_tries_ — and the starvation board does not
  /// declare this worker's whole domain starving — the draw spans only the
  /// local tier; afterwards it spans every victim (local tier still first
  /// in the order). Returns the first busy-looking candidate from a random
  /// (or, under a synthetic topology, deterministically rotating) start, or
  /// nullptr when nothing looks busy. Sets `local_phase` to whether this
  /// draw was restricted to the local tier.
  Worker* pick_victim(bool& local_phase);

  /// Serves every posted request in `victim`'s box (only its own when
  /// aggregation is off). Caller must hold the victim's steal mutex and have
  /// raised the victim's scanning flag.
  void combine_on(Worker& victim);

  /// Brings `fs` up to date with frame `f`: detects a recycle through the
  /// frame epoch and ingests newly published tasks past the cursor.
  void refresh_scan_state(FrameScanState& fs, Frame& f);

  /// Builds (at most once per `round`) the cross-frame blocker lists of
  /// victim frame `d`, compacting dead entries along the way.
  FrameScanState& ensure_scan_lists(Worker& victim, std::uint32_t d,
                                    std::uint64_t round);

  /// Readiness of candidate `t` in victim frame `d` against the candidate
  /// walk's own-frame `prefix` and the lazily-built cross-frame lists.
  Readiness check_ready(Worker& victim, std::uint64_t round,
                        std::uint32_t depth, std::uint32_t d,
                        const std::vector<const Task*>& prefix, const Task& t);

  /// A claimed task waiting in the combiner's reply pool with its source
  /// frame (for ready-list completion notification).
  struct PooledReply {
    Task* task;
    Frame* frame;
  };

  /// One posted request the combiner will answer, with the locality of the
  /// thief behind it (box slot i belongs to thief i): the starvation-aware
  /// deal serves thieves of starving domains first when replies are scarce.
  /// `want` is the reply-size ceiling this round's deal honors for the
  /// request (fixed mode: 1 per other thief, steal_batch for the combiner's
  /// own slot; adaptive mode: kMaxBatch for a steal-half request, 1 for
  /// steal-one). `idle` snapshots the request's idle bit for the scarce
  /// deal's priority partition.
  struct PendingReq {
    StealRequest* slot;
    unsigned domain_rank;
    std::uint32_t want;
    bool idle;
  };

  /// Batch-pops ready tasks from `rl` into the reply pool, up to
  /// `pool_target` pooled tasks total (local shard first; the hit/miss
  /// split lands in this worker's stats). Under XK_STEAL_ADAPTIVE the take
  /// is additionally capped by adaptive_take_cap over the list's live
  /// depth and `npending` still-unserved requests (steal-half: the victim
  /// keeps half of what the one-each floor leaves). Under XK_RL_LOCK=split
  /// the pops ride per-shard locks and the batch is not an atomic
  /// whole-list snapshot; under =global it is one lock acquisition (old
  /// behavior).
  void pour_ready_list(ReadyList& rl, Frame& f, std::size_t pool_target,
                       std::size_t npending);

  /// Deals the reply pool to pending[served..]: every receiver gets one
  /// distinct task first, then the surplus tops requests up to their
  /// `want` — the combiner's own slot first (it executes immediately),
  /// then steal-half thieves round-robin. Publishes the served slots and
  /// returns the new served count. When the pool cannot cover every
  /// waiting thief, thieves of starving domains — and then idle thieves —
  /// are served first. In fixed mode (every other want == 1) this
  /// degenerates to the old steal-k deal exactly.
  std::size_t deal_pool(std::vector<PendingReq>& pending, std::size_t served,
                        StealRequest* self_slot);

  /// Executes a steal reply: a stolen descriptor (runs as thief) or a
  /// splitter-produced heap task (hosted in a fresh frame of this stack).
  void execute_reply(Task* t, Frame* src);

  /// Consumes a stolen task's join-waiter registration (if any) and wakes
  /// that worker's join parker — the targeted replacement for the old
  /// every-completion progress broadcast.
  void wake_joiner(Task* t);

  /// Victim-draw probe: the occupancy-board bit when XK_OCC_HINT is on
  /// (skips counted as probes_skipped), the victim's depth word otherwise.
  bool probe_victim(Worker& v) {
    if (occ_hint_) {
      if (starvation_->occupied(v.id())) return true;
      stats_->probes_skipped++;
      return false;
    }
    return v.looks_busy();
  }

  /// Escalating park timeout: 50us doubling to a 1.6ms cap as consecutive
  /// failures mount past the park threshold.
  std::chrono::nanoseconds park_timeout(int failures) const {
    const int k = std::min(failures - park_threshold_, 5);
    return std::chrono::microseconds{50u << (k < 0 ? 0 : k)};
  }

  Runtime& rt_;
  const unsigned id_;
  int backoff_limit_;
  int park_threshold_;
  std::size_t steal_batch_;
  bool reclaim_enabled_;  ///< join-side reclaim; off under renaming (see wait_and_finalize)
  bool adaptive_steal_;   ///< XK_STEAL_ADAPTIVE: feedback-sized replies
  bool occ_hint_;         ///< XK_OCC_HINT: occupancy-bit victim probes

  // Adaptive steal-width feedback (thief-private; see next_stealhalf).
  bool stealhalf_ = false;            ///< width the next request will carry
  std::uint32_t last_reply_tasks_ = 0;  ///< size of the last successful reply
  std::uint64_t run_since_steal_ = 0;   ///< tasks run since that reply

  // Locality-aware victim selection (snapshotted from Runtime::placement()
  // at construction; immutable afterwards).
  unsigned domain_ = 0;
  unsigned domain_rank_ = 0;            ///< dense domain index (shard key)
  std::vector<unsigned> victim_order_;  ///< local tier first, self excluded
  unsigned nlocal_victims_ = 0;
  int steal_local_tries_ = 0;           ///< failed local rounds before escalating
  int starve_rounds_ = 0;               ///< domain-wide threshold (0 = off)
  bool shard_ready_ = true;             ///< attach domain-sharded ready lists
  RlLockMode rl_lock_mode_ = RlLockMode::kSplit;  ///< XK_RL_LOCK discipline
  bool deterministic_victims_ = false;  ///< synthetic topo: rotate, don't draw
  unsigned victim_rr_ = 0;              ///< rotation cursor (deterministic mode)
  int local_fails_ = 0;                 ///< consecutive failed local-tier rounds
  StarvationBoard* starvation_ = nullptr;  ///< the runtime's shared gauges
  // The runtime's shared parkers (cached: Runtime is incomplete here).
  Parker* work_parker_;
  Parker* progress_parker_;
  // Private join parker for targeted stolen-completion wakes, and the
  // stolen task this worker is currently suspended on (null otherwise).
  // The cell lives in the *waiter*, not the task: a completing thief may
  // not touch task memory after its final state store — the owner can
  // observe that store, return from the join, pop the frame and recycle
  // the descriptor's arena block while the thief is still mid-wake. The
  // thief therefore only compares task *pointers* against these
  // stable-for-runtime-lifetime cells (wake_joiner).
  Parker join_parker_;
  std::atomic<Task*> join_target_{nullptr};

  // Frame stack. `depth_` is the Dekker-side publication; frames above the
  // published depth are owner-private.
  std::vector<Frame> frames_;
  std::atomic<std::uint32_t> depth_{0};

  // Steal election + scanner handshake.
  std::mutex steal_mutex_;
  std::atomic<bool> scanning_{false};

  // Request box: slot i belongs to thief i.
  std::vector<Padded<StealRequest>> reqbox_;

  // Victim-side combiner scan state: one slot per frame depth plus the
  // round serial that scopes the per-round blocker lists. Guarded by
  // steal_mutex_ (only the elected combiner touches it).
  std::vector<FrameScanState> scan_state_;
  std::uint64_t scan_round_ = 0;

  // Combiner-side scratch, reused across rounds to kill per-round heap
  // churn. Only this worker (as combiner) touches its own scratch.
  std::vector<PendingReq> pending_scratch_;
  std::vector<PendingReq> deal_scratch_;  ///< desperate-first reorder buffer
  std::vector<std::uint32_t> alloc_scratch_;  ///< per-receiver deal counts
  std::vector<Task*> adaptive_scratch_;
  std::vector<const Task*> prefix_scratch_;
  std::vector<Task*> batch_scratch_;
  std::vector<PooledReply> reply_scratch_;

  Padded<WorkerStats> stats_;
  Rng rng_;
};

}  // namespace xk
