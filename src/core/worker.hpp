// Worker: one scheduler thread (the paper: one per core by default).
//
// Each worker owns a stack of frames (its "workqueue stack"), a steal-request
// box where thieves post requests, and a steal mutex that elects the single
// combiner allowed to traverse this worker's stack (§II-C request
// aggregation: "one of the thieves is elected to reply to all requests").
//
// Victim/thief synchronization is split into two protocols:
//  * per-task: a single CAS on Task::state arbitrates the victim's FIFO claim
//    against a combiner's steal claim (T.H.E-style: common case uncontended);
//  * per-frame: a Dekker handshake (depth store + scanning flag, both seq_cst)
//    lets the owner recycle a popped frame only when no combiner can still be
//    reading it.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/frame.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"
#include "support/cache.hpp"
#include "support/rng.hpp"

namespace xk {

class Runtime;
class Worker;

/// Returns the worker bound to the calling thread, or nullptr outside a
/// runtime section.
Worker* this_worker();

namespace detail {
/// Binds/unbinds the calling thread's worker (Runtime internal).
void set_this_worker(Worker* w);
}  // namespace detail

/// A steal request slot: thief `i` posts into victim's box slot `i`; the
/// combiner answers every posted slot before releasing the steal mutex.
struct StealRequest {
  enum Status : int { kEmpty = 0, kPosted, kServed, kFailed };
  std::atomic<int> status{kEmpty};
  Task* reply = nullptr;
  Frame* reply_frame = nullptr;  ///< source frame (for ready-list notify); null for heap tasks
};

class Worker {
 public:
  static constexpr std::uint32_t kMaxDepth = 512;

  Worker(Runtime& rt, unsigned id, unsigned nworkers);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  unsigned id() const { return id_; }
  Runtime& runtime() { return rt_; }
  WorkerStats& stats() { return *stats_; }

  // ---- owner-side execution -------------------------------------------

  /// Current (deepest) frame; valid only while depth > 0.
  Frame& current_frame() { return frames_[depth_.load(std::memory_order_relaxed) - 1]; }

  /// Spawns `t` into the current frame. Fast path of §II-B.
  void push_task(Task* t) {
    current_frame().push_task(t);
    stats_->tasks_spawned++;
  }

  /// Allocates from the current frame's arena.
  void* frame_alloc(std::size_t bytes, std::size_t align) {
    return current_frame().arena.allocate(bytes, align);
  }

  /// Runs `t` (claim already performed by the caller): pushes a frame,
  /// executes the body, drains children FIFO, handles renaming/exceptions,
  /// publishes Term. `src` is the frame holding the descriptor (for
  /// ready-list notification); may be null (root / heap tasks).
  void run_task(Task* t, Frame* src, bool stolen);

  /// FIFO-executes the current frame from its cursor until all its tasks
  /// reached Term (the implicit sync at body end; also the body of
  /// xk::sync()). Rethrows the first child exception after the drain.
  void drain_current_frame();

  /// Enters the idle loop until `done` becomes true: posts steal requests to
  /// random victims with backoff. Used by the scheduler loop, by victims
  /// suspended on a stolen task, and by foreach completion waits.
  template <typename Pred>
  void steal_until(Pred&& done) {
    int failures = 0;
    while (!done()) {
      if (try_steal_once()) {
        failures = 0;
      } else if (++failures >= backoff_limit_) {
        std::this_thread::yield();
      }
    }
  }

  /// One steal attempt: pick a victim, post a request, spin until it is
  /// served or failed (possibly becoming the combiner). Returns true when
  /// work was obtained *and executed*.
  bool try_steal_once();

  /// Suspends on a task claimed by another worker until it terminates,
  /// stealing meanwhile (§II-B: "it suspends its execution and switches to
  /// the workstealing scheduler"). Commits pending renamed writes when the
  /// task parks in CommitReady.
  void wait_and_finalize(Task* t, Frame& f);

  std::uint32_t depth_relaxed() const {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Waits out any combiner currently traversing this worker's stack (it
  /// holds the steal mutex for the whole round, splitter calls included).
  /// Used before freeing state that an in-flight splitter may reference.
  void scan_barrier() { std::lock_guard<std::mutex> lock(steal_mutex_); }

  // ---- victim-side state read by thieves --------------------------------

  std::uint32_t depth_acquire() const {
    return depth_.load(std::memory_order_seq_cst);
  }
  Frame& frame_at(std::uint32_t d) { return frames_[d]; }
  StealRequest& request_slot(unsigned thief) { return reqbox_[thief].value; }
  unsigned nslots() const { return static_cast<unsigned>(reqbox_.size()); }

  /// Quick "might have work" probe used for victim selection.
  bool looks_busy() const {
    return depth_.load(std::memory_order_relaxed) > 0;
  }

  // ---- frame stack management (owner only) ------------------------------

  Frame& push_frame();
  void pop_frame();

 private:
  friend class Runtime;

  /// Serves every posted request in `victim`'s box (only its own when
  /// aggregation is off). Caller must hold the victim's steal mutex and have
  /// raised the victim's scanning flag.
  void combine_on(Worker& victim);

  /// Executes a steal reply: a stolen descriptor (runs as thief) or a
  /// splitter-produced heap task (hosted in a fresh frame of this stack).
  void execute_reply(Task* t, Frame* src);

  Runtime& rt_;
  const unsigned id_;
  int backoff_limit_;

  // Frame stack. `depth_` is the Dekker-side publication; frames above the
  // published depth are owner-private.
  std::vector<Frame> frames_;
  std::atomic<std::uint32_t> depth_{0};

  // Steal election + scanner handshake.
  std::mutex steal_mutex_;
  std::atomic<bool> scanning_{false};

  // Request box: slot i belongs to thief i.
  std::vector<Padded<StealRequest>> reqbox_;

  Padded<WorkerStats> stats_;
  Rng rng_;
};

}  // namespace xk
