#include "core/runtime.hpp"

#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>

#include "obs/chrome_writer.hpp"
#include "support/cpu.hpp"
#include "support/env.hpp"

namespace xk {

Config Config::from_env() {
  Config cfg;
  cfg.nworkers = static_cast<unsigned>(env_int("XK_NCPU", 0));
  cfg.bind_threads = env_bool("XK_BIND", true);
  cfg.steal_aggregation = env_bool("XK_AGGREGATION", true);
  cfg.ready_list_threshold = static_cast<std::size_t>(
      env_int("XK_READYLIST_THRESHOLD",
              static_cast<std::int64_t>(cfg.ready_list_threshold)));
  cfg.renaming = env_bool("XK_RENAMING", false);
  cfg.steal_backoff = static_cast<int>(env_int("XK_BACKOFF", cfg.steal_backoff));
  cfg.steal_batch = static_cast<std::size_t>(env_int(
      "XK_STEAL_BATCH", static_cast<std::int64_t>(cfg.steal_batch)));
  cfg.steal_adaptive = env_bool("XK_STEAL_ADAPTIVE", cfg.steal_adaptive);
  cfg.occupancy_hint = env_bool("XK_OCC_HINT", cfg.occupancy_hint);
  cfg.park_threshold =
      static_cast<int>(env_int("XK_PARK_THRESHOLD", cfg.park_threshold));
  cfg.topo = env_string("XK_TOPO").value_or(cfg.topo);
  cfg.cpuset = env_string("XK_CPUSET").value_or(cfg.cpuset);
  cfg.place = env_string("XK_PLACE").value_or(cfg.place);
  cfg.steal_local_tries = static_cast<int>(
      env_int("XK_STEAL_LOCAL_TRIES", cfg.steal_local_tries));
  cfg.shard_ready_list = env_bool("XK_RL_SHARD", cfg.shard_ready_list);
  if (auto lock = env_string("XK_RL_LOCK")) {
    if (*lock == "split") {
      cfg.rl_lock = RlLockMode::kSplit;
    } else if (*lock == "global") {
      cfg.rl_lock = RlLockMode::kGlobal;
    } else if (*lock == "lockfree") {
      cfg.rl_lock = RlLockMode::kLockFree;
    } else {
      std::fprintf(stderr,
                   "xk: ignoring unknown XK_RL_LOCK=%s (split|global|lockfree)\n",
                   lock->c_str());
    }
  }
  cfg.starve_rounds =
      static_cast<int>(env_int("XK_STARVE_ROUNDS", cfg.starve_rounds));
  cfg.trace_path = env_string("XK_TRACE").value_or(cfg.trace_path);
  cfg.trace_cap = static_cast<std::size_t>(
      env_int("XK_TRACE_CAP", static_cast<std::int64_t>(cfg.trace_cap)));
  cfg.stats_dump = env_bool("XK_STATS", cfg.stats_dump);
  return cfg;
}

Runtime::Runtime(Config cfg) : cfg_(cfg) {
  const unsigned nw = cfg_.workers();

  // Topology + placement first: workers snapshot their domain and victim
  // order from placement_ in their constructors. Empty topo/place fields
  // defer to the environment (see config.hpp), and malformed knob values
  // degrade to discovery/compact rather than failing the run (the same
  // policy env_int applies to numeric knobs).
  const std::string topo_spec =
      !cfg_.topo.empty() ? cfg_.topo : env_string("XK_TOPO").value_or("");
  topo_ = Topology::from_spec_or_discover(topo_spec);
  const std::string place_name =
      !cfg_.place.empty() ? cfg_.place : env_string("XK_PLACE").value_or("");
  const PlacePolicy policy =
      parse_place_policy(place_name).value_or(PlacePolicy::kCompact);
  placement_ = Placement::compute(topo_, nw, policy);
  const std::string cpuset =
      !cfg_.cpuset.empty() ? cfg_.cpuset
                           : env_string("XK_CPUSET").value_or("");
  if (!cpuset.empty()) {
    if (auto cpus = parse_cpulist(cpuset)) {
      placement_ = Placement::from_cpuset(topo_, *cpus, nw);
    } else {
      std::fprintf(stderr, "xk: ignoring malformed XK_CPUSET=%s\n",
                   cpuset.c_str());
    }
  }
  // The starvation board must exist before the first worker constructor
  // caches its pointer; its size is the dense domain-rank count. The
  // occupancy side is keyed by worker id with the domain rank folded in.
  starvation_.init(placement_.ndomains);
  std::vector<unsigned> worker_ranks(nw, 0);
  for (unsigned i = 0; i < nw && i < placement_.slots.size(); ++i) {
    worker_ranks[i] = placement_.slots[i].domain_rank;
  }
  starvation_.init_occupancy(worker_ranks);

  workers_.reserve(nw);
  for (unsigned i = 0; i < nw; ++i) {
    workers_.push_back(std::make_unique<Worker>(*this, i, nw));
  }

  // Observability arming. The rings must exist before any pool thread
  // starts (worker_main binds its ring right after its worker TLS).
  stats_dump_ = cfg_.stats_dump || env_bool("XK_STATS", false);
#ifdef XK_OBS_OFF
  // The -DXK_OBS=OFF baseline build stubs every record helper, so a trace
  // would be all metadata and no events — don't write one at all.
  const std::string trace_path;
#else
  const std::string trace_path =
      !cfg_.trace_path.empty() ? cfg_.trace_path
                               : env_string("XK_TRACE").value_or("");
#endif
  if (!trace_path.empty()) {
    std::size_t cap = cfg_.trace_cap != 0
                          ? cfg_.trace_cap
                          : static_cast<std::size_t>(
                                env_int("XK_TRACE_CAP", 16384));
    if (cap == 0) cap = 16384;
    trace_rings_.reserve(nw);
    for (unsigned i = 0; i < nw; ++i) {
      trace_rings_.push_back(std::make_unique<obs::TraceRing>(cap));
    }
    auto& writer = obs::ChromeTraceWriter::instance();
    writer.set_path(trace_path);
    trace_pid_ = writer.add_process(
        "xk runtime (" + std::to_string(nw) + " workers)", nw);
  }

  threads_.reserve(nw > 0 ? nw - 1 : 0);
  for (unsigned i = 1; i < nw; ++i) {
    threads_.emplace_back(&Runtime::worker_main, this, i);
  }
}

Runtime::~Runtime() {
  if (section_open_) end_silent();
  {
    std::lock_guard lock(park_mutex_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Runtime::worker_main(unsigned index) {
  Worker& w = *workers_[index];
  detail::set_this_worker(&w);
  obs::bind_thread_ring(trace_ring(index));
  if (cfg_.bind_threads) bind_self_to_core(placement_.slots[index].cpu_os_id);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(park_mutex_);
      // Publish "between sections": stats_snapshot/reset_stats use this
      // (and the mutex edge it implies) to read per-worker counters only
      // after every worker's last unsynchronized write.
      ++idle_workers_;
      idle_cv_.notify_all();
      park_cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
      --idle_workers_;
      if (shutdown_) break;
      seen = epoch_;
    }
    // In-section idle loop: spin, yield, then park on the work parker
    // (woken one at a time by push_task; section end notifies all).
    w.steal_idle(
        [&] { return !section_active_.load(std::memory_order_acquire); });
  }
  obs::bind_thread_ring(nullptr);
  detail::set_this_worker(nullptr);
}

void Runtime::begin() {
  if (section_open_) {
    throw std::logic_error("xk::Runtime::begin: section already open");
  }
  if (this_worker() != nullptr) {
    throw std::logic_error("xk::Runtime::begin: thread already bound");
  }
  Worker& w0 = *workers_[0];
  detail::set_this_worker(&w0);
  obs::bind_thread_ring(trace_ring(0));
  section_t0_ = obs::span_begin();
  if (cfg_.bind_threads) bind_self_to_core(placement_.slots[0].cpu_os_id);
  // The previous section's end-of-work famine saturated the failed-round
  // gauges; a fresh section starts with no domain pre-declared starving.
  starvation_.reset_rounds();
  // Arm the quiescence event *before* the root frame publishes worker 0's
  // occupancy: from here to Runtime::end the root occupied count stays
  // >= 1 (the master's stack is non-empty for the whole section), so the
  // only 1->0 root edge — the master's root-frame pop in end() — is the
  // one that fires, waking parked workers exactly once at section close.
  starvation_.arm_quiesce(&work_parker_, &progress_parker_);
  w0.push_frame();  // root frame
  section_open_ = true;
  {
    std::lock_guard lock(park_mutex_);
    ++epoch_;
    section_active_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
}

void Runtime::end() {
  if (!section_open_) {
    throw std::logic_error("xk::Runtime::end: no open section");
  }
  Worker& w0 = *workers_[0];
  std::exception_ptr exc;
  try {
    w0.drain_current_frame();
  } catch (...) {
    exc = std::current_exception();
  }
  section_active_.store(false, std::memory_order_release);
  // No explicit broadcasts here: the root-frame pop below clears worker
  // 0's occupancy bit, the board fold sees the machine-wide root count hit
  // zero — quiescence — and fires the armed parkers exactly once. A worker
  // about to park re-validates the section predicate inside its announce
  // window (after the release store above), so it either sees the close or
  // its prepare()-epoch park is cut short by the fire's seq bump.
  w0.pop_frame();
  starvation_.disarm_quiesce();  // no-op after a normal fire (defensive)
  section_open_ = false;
  // The section span closes before the drain (it must be in this drain's
  // batch), and the drain waits the pool quiescent — so every ring is
  // final for this section when it is copied out.
  obs::emit_span(obs::Ev::kSection, section_t0_, nworkers());
  section_t0_ = 0;
  drain_observability();
  obs::bind_thread_ring(nullptr);
  detail::set_this_worker(nullptr);
  if (exc) std::rethrow_exception(exc);
}

void Runtime::end_silent() {
  try {
    end();
  } catch (...) {
    // Cleanup path of Runtime::run: the user's exception wins.
  }
}

WorkerStats Runtime::stats_snapshot() const {
  quiesce_pool();
  WorkerStats total;
  for (const auto& w : workers_) total += *w->stats_;
  return total;
}

obs::MetricsSnapshot Runtime::metrics_snapshot() const {
  obs::MetricsSnapshot m;
  m.nworkers = nworkers();
  const WorkerStats total = stats_snapshot();
  m.counters.reserve(kWorkerStatCount);
  total.for_each([&](const char* name, std::uint64_t v) {
    m.counters.emplace_back(name, v);
  });
  m.domains.reserve(starvation_.ndomains());
  for (unsigned r = 0; r < starvation_.ndomains(); ++r) {
    m.domains.push_back(obs::MetricsSnapshot::DomainGauge{
        r, starvation_.ready_depth(r), starvation_.failed_rounds(r),
        starvation_.domain_occupied(r)});
  }
  m.root_occupied = starvation_.root_occupied();
  return m;
}

void Runtime::drain_observability() {
  if (trace_pid_ == 0 && !stats_dump_) return;
  // quiesce_pool (inside stats_snapshot / directly) waits every pool
  // worker back into its between-sections park; the park mutex is the
  // ordering edge that makes their last ring writes visible here.
  const obs::MetricsSnapshot m = metrics_snapshot();
  if (stats_dump_) m.dump(std::cerr);
  if (trace_pid_ == 0) return;
  auto& writer = obs::ChromeTraceWriter::instance();
  std::vector<obs::TraceEvent> events;
  for (unsigned i = 0; i < trace_rings_.size(); ++i) {
    obs::TraceRing& ring = *trace_rings_[i];
    events.clear();
    ring.drain(events);
    writer.add_events(trace_pid_, i, events, ring.dropped());
    ring.clear();
  }
  writer.add_metrics(trace_pid_, m);
}

void Runtime::reset_stats() {
  quiesce_pool();
  for (auto& w : workers_) *w->stats_ = WorkerStats{};
}

void Runtime::quiesce_pool() const {
  // Per-worker counters are plain (hot-path) fields; between sections we
  // wait for every pool worker to re-enter the park_cv_ wait so the mutex
  // provides the ordering edge that makes their final writes visible. With
  // a section open the caller owns the raciness (documented in stats.hpp).
  if (section_open_) return;
  std::unique_lock lock(park_mutex_);
  idle_cv_.wait(lock, [&] {
    return idle_workers_ + 1 == workers_.size() || shutdown_;
  });
}

}  // namespace xk
