#include "core/runtime.hpp"

#include <chrono>
#include <stdexcept>

#include "support/cpu.hpp"
#include "support/env.hpp"

namespace xk {

Config Config::from_env() {
  Config cfg;
  cfg.nworkers = static_cast<unsigned>(env_int("XK_NCPU", 0));
  cfg.bind_threads = env_bool("XK_BIND", true);
  cfg.steal_aggregation = env_bool("XK_AGGREGATION", true);
  cfg.ready_list_threshold = static_cast<std::size_t>(
      env_int("XK_READYLIST_THRESHOLD",
              static_cast<std::int64_t>(cfg.ready_list_threshold)));
  cfg.renaming = env_bool("XK_RENAMING", false);
  cfg.steal_backoff = static_cast<int>(env_int("XK_BACKOFF", cfg.steal_backoff));
  return cfg;
}

Runtime::Runtime(Config cfg) : cfg_(cfg) {
  const unsigned nw = cfg_.workers();
  workers_.reserve(nw);
  for (unsigned i = 0; i < nw; ++i) {
    workers_.push_back(std::make_unique<Worker>(*this, i, nw));
  }
  threads_.reserve(nw > 0 ? nw - 1 : 0);
  for (unsigned i = 1; i < nw; ++i) {
    threads_.emplace_back(&Runtime::worker_main, this, i);
  }
}

Runtime::~Runtime() {
  if (section_open_) end_silent();
  {
    std::lock_guard lock(park_mutex_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Runtime::worker_main(unsigned index) {
  Worker& w = *workers_[index];
  detail::set_this_worker(&w);
  if (cfg_.bind_threads) bind_self_to_core(index);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(park_mutex_);
      park_cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
      if (shutdown_) break;
      seen = epoch_;
    }
    int failures = 0;
    while (section_active_.load(std::memory_order_acquire)) {
      if (w.try_steal_once()) {
        failures = 0;
      } else if (++failures > cfg_.steal_backoff) {
        // Oversubscription-friendly: yield first, then back off harder so
        // idle thieves don't starve the workers that hold actual work.
        if (failures > 256) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          std::this_thread::yield();
        }
      }
    }
  }
  detail::set_this_worker(nullptr);
}

void Runtime::begin() {
  if (section_open_) {
    throw std::logic_error("xk::Runtime::begin: section already open");
  }
  if (this_worker() != nullptr) {
    throw std::logic_error("xk::Runtime::begin: thread already bound");
  }
  Worker& w0 = *workers_[0];
  detail::set_this_worker(&w0);
  if (cfg_.bind_threads) bind_self_to_core(0);
  w0.push_frame();  // root frame
  section_open_ = true;
  {
    std::lock_guard lock(park_mutex_);
    ++epoch_;
    section_active_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
}

void Runtime::end() {
  if (!section_open_) {
    throw std::logic_error("xk::Runtime::end: no open section");
  }
  Worker& w0 = *workers_[0];
  std::exception_ptr exc;
  try {
    w0.drain_current_frame();
  } catch (...) {
    exc = std::current_exception();
  }
  section_active_.store(false, std::memory_order_release);
  w0.pop_frame();
  section_open_ = false;
  detail::set_this_worker(nullptr);
  if (exc) std::rethrow_exception(exc);
}

void Runtime::end_silent() {
  try {
    end();
  } catch (...) {
    // Cleanup path of Runtime::run: the user's exception wins.
  }
}

WorkerStats Runtime::stats_snapshot() const {
  WorkerStats total;
  for (const auto& w : workers_) total += *w->stats_;
  return total;
}

void Runtime::reset_stats() {
  for (auto& w : workers_) *w->stats_ = WorkerStats{};
}

}  // namespace xk
