#include "core/runtime.hpp"

#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>

#include "check/check.hpp"
#include "obs/chrome_writer.hpp"
#include "support/cpu.hpp"
#include "support/env.hpp"

namespace xk {

Config Config::from_env() {
  Config cfg;
  // Clamped readers: the raw static_casts this function used to do turned
  // XK_SECTIONS=-1 into 4294967295 master slots (and a negative queue cap
  // into "unbounded"); a value the cast cannot represent now falls back to
  // the compiled-in default, with a warning so a typoed deployment knob is
  // visible instead of silently shaping the runtime. Upper bounds are
  // generous — they reject sign-wraps and absurdities, not big tunings.
  const auto env_unsigned = [](const char* name, unsigned dflt,
                               unsigned max = 1u << 20) -> unsigned {
    const std::int64_t v =
        env_int(name, static_cast<std::int64_t>(dflt));
    if (v < 0 || v > static_cast<std::int64_t>(max)) {
      std::fprintf(stderr, "xk: ignoring out-of-range %s=%lld (default %u)\n",
                   name, static_cast<long long>(v), dflt);
      return dflt;
    }
    return static_cast<unsigned>(v);
  };
  const auto env_size = [](const char* name, std::size_t dflt) -> std::size_t {
    const std::int64_t v =
        env_int(name, static_cast<std::int64_t>(dflt));
    if (v < 0) {
      std::fprintf(stderr, "xk: ignoring out-of-range %s=%lld (default %zu)\n",
                   name, static_cast<long long>(v), dflt);
      return dflt;
    }
    return static_cast<std::size_t>(v);
  };
  cfg.nworkers = env_unsigned("XK_NCPU", 0, 4096);
  cfg.bind_threads = env_bool("XK_BIND", true);
  cfg.steal_aggregation = env_bool("XK_AGGREGATION", true);
  cfg.ready_list_threshold =
      env_size("XK_READYLIST_THRESHOLD", cfg.ready_list_threshold);
  cfg.renaming = env_bool("XK_RENAMING", false);
  cfg.steal_backoff = static_cast<int>(env_int("XK_BACKOFF", cfg.steal_backoff));
  cfg.steal_batch = env_size("XK_STEAL_BATCH", cfg.steal_batch);
  cfg.steal_adaptive = env_bool("XK_STEAL_ADAPTIVE", cfg.steal_adaptive);
  cfg.occupancy_hint = env_bool("XK_OCC_HINT", cfg.occupancy_hint);
  cfg.park_threshold =
      static_cast<int>(env_int("XK_PARK_THRESHOLD", cfg.park_threshold));
  cfg.topo = env_string("XK_TOPO").value_or(cfg.topo);
  cfg.cpuset = env_string("XK_CPUSET").value_or(cfg.cpuset);
  cfg.place = env_string("XK_PLACE").value_or(cfg.place);
  cfg.steal_local_tries = static_cast<int>(
      env_int("XK_STEAL_LOCAL_TRIES", cfg.steal_local_tries));
  cfg.shard_ready_list = env_bool("XK_RL_SHARD", cfg.shard_ready_list);
  if (auto lock = env_string("XK_RL_LOCK")) {
    if (*lock == "split") {
      cfg.rl_lock = RlLockMode::kSplit;
    } else if (*lock == "global") {
      cfg.rl_lock = RlLockMode::kGlobal;
    } else if (*lock == "lockfree") {
      cfg.rl_lock = RlLockMode::kLockFree;
    } else {
      std::fprintf(stderr,
                   "xk: ignoring unknown XK_RL_LOCK=%s (split|global|lockfree)\n",
                   lock->c_str());
    }
  }
  cfg.starve_rounds =
      static_cast<int>(env_int("XK_STARVE_ROUNDS", cfg.starve_rounds));
  cfg.trace_path = env_string("XK_TRACE").value_or(cfg.trace_path);
  cfg.trace_cap = env_size("XK_TRACE_CAP", cfg.trace_cap);
  cfg.stats_dump = env_bool("XK_STATS", cfg.stats_dump);
  // Each section beyond the first costs a full Worker instance; 4096 is
  // far past any plausible overlap while rejecting cast wrap-arounds.
  cfg.sections = env_unsigned("XK_SECTIONS", cfg.sections, 4096);
  cfg.svc_queue_cap = env_size("XK_SVC_QUEUE_CAP", cfg.svc_queue_cap);
  cfg.svc_batch = env_size("XK_SVC_BATCH", cfg.svc_batch);
  {
    const std::int64_t idle = env_int(
        "XK_SVC_IDLE_US", static_cast<std::int64_t>(cfg.svc_idle_us));
    if (idle < 0) {
      std::fprintf(stderr,
                   "xk: ignoring out-of-range XK_SVC_IDLE_US=%lld\n",
                   static_cast<long long>(idle));
    } else {
      cfg.svc_idle_us = static_cast<std::uint64_t>(idle);
    }
  }
  cfg.svc_section_cap = env_size("XK_SVC_SECTION_CAP", cfg.svc_section_cap);
  cfg.svc_weights = env_string("XK_SVC_WEIGHTS").value_or(cfg.svc_weights);
  return cfg;
}

Runtime::Runtime(Config cfg) : cfg_(cfg) {
  const unsigned nw = cfg_.workers();
  nw_ = nw;
  // Master slots back overlapping sections: worker 0 (the traditional
  // master, kept first so single-section runs bind exactly as before)
  // plus sections-1 extra Worker instances appended after the pool.
  const unsigned extra = std::max(cfg_.sections, 1u) - 1;
  const unsigned nw_total = nw + extra;

  // Topology + placement first: workers snapshot their domain and victim
  // order from placement_ in their constructors. Empty topo/place fields
  // defer to the environment (see config.hpp), and malformed knob values
  // degrade to discovery/compact rather than failing the run (the same
  // policy env_int applies to numeric knobs).
  const std::string topo_spec =
      !cfg_.topo.empty() ? cfg_.topo : env_string("XK_TOPO").value_or("");
  topo_ = Topology::from_spec_or_discover(topo_spec);
  const std::string place_name =
      !cfg_.place.empty() ? cfg_.place : env_string("XK_PLACE").value_or("");
  const PlacePolicy policy =
      parse_place_policy(place_name).value_or(PlacePolicy::kCompact);
  placement_ = Placement::compute(topo_, nw, policy);
  const std::string cpuset =
      !cfg_.cpuset.empty() ? cfg_.cpuset
                           : env_string("XK_CPUSET").value_or("");
  if (!cpuset.empty()) {
    if (auto cpus = parse_cpulist(cpuset)) {
      placement_ = Placement::from_cpuset(topo_, *cpus, nw);
    } else {
      std::fprintf(stderr, "xk: ignoring malformed XK_CPUSET=%s\n",
                   cpuset.c_str());
    }
  }
  // Extra master slots reuse an existing pool slot's placement (slot
  // id % nw): they inherit its domain/rank — so occupancy folds, ready
  // shards and victim orders see a valid rank — without changing the pool
  // placement or the domain count. Masters are never CPU-bound (their
  // threads are the sections' callers) except slot 0, which keeps the old
  // bind-the-caller behavior.
  if (!placement_.slots.empty()) {
    const std::size_t npool = placement_.slots.size();
    for (unsigned id = nw; id < nw_total; ++id) {
      placement_.slots.push_back(placement_.slots[id % npool]);
    }
  }

  // The starvation board must exist before the first worker constructor
  // caches its pointer; its size is the dense domain-rank count. The
  // occupancy side is keyed by worker id (masters included) with the
  // domain rank folded in.
  starvation_.init(placement_.ndomains);
  std::vector<unsigned> worker_ranks(nw_total, 0);
  for (unsigned i = 0; i < nw_total && i < placement_.slots.size(); ++i) {
    worker_ranks[i] = placement_.slots[i].domain_rank;
  }
  starvation_.init_occupancy(worker_ranks);

  workers_.reserve(nw_total);
  for (unsigned i = 0; i < nw_total; ++i) {
    workers_.push_back(std::make_unique<Worker>(*this, i, nw_total));
  }
  master_slots_.push_back(0);
  for (unsigned id = nw; id < nw_total; ++id) master_slots_.push_back(id);
  master_open_.assign(master_slots_.size(), 0);
  section_t0_.assign(nw_total, 0);

  // Observability arming. The rings must exist before any pool thread
  // starts (worker_main binds its ring right after its worker TLS).
  stats_dump_ = cfg_.stats_dump || env_bool("XK_STATS", false);
#ifdef XK_OBS_OFF
  // The -DXK_OBS=OFF baseline build stubs every record helper, so a trace
  // would be all metadata and no events — don't write one at all.
  const std::string trace_path;
#else
  const std::string trace_path =
      !cfg_.trace_path.empty() ? cfg_.trace_path
                               : env_string("XK_TRACE").value_or("");
#endif
  if (!trace_path.empty()) {
    std::size_t cap = cfg_.trace_cap != 0
                          ? cfg_.trace_cap
                          : static_cast<std::size_t>(
                                env_int("XK_TRACE_CAP", 16384));
    if (cap == 0) cap = 16384;
    trace_rings_.reserve(nw_total);
    for (unsigned i = 0; i < nw_total; ++i) {
      trace_rings_.push_back(std::make_unique<obs::TraceRing>(cap));
    }
    auto& writer = obs::ChromeTraceWriter::instance();
    writer.set_path(trace_path);
    trace_pid_ = writer.add_process(
        "xk runtime (" + std::to_string(nw) + " workers)", nw_total);
  }

  threads_.reserve(nw > 0 ? nw - 1 : 0);
  for (unsigned i = 1; i < nw; ++i) {
    threads_.emplace_back(&Runtime::worker_main, this, i);
  }
}

Runtime::~Runtime() {
  // The service dispatcher goes first: its destructor runs every job
  // still queued and closes its sections, all of which needs the pool.
  service_live_.store(nullptr, std::memory_order_release);
  service_.reset();
  // A section left open by the destroying thread itself (begin without
  // end) is closed on its behalf; sections owned by *other* threads
  // cannot be drained from here and are a caller bug.
  if (Worker* w = this_worker();
      w != nullptr && &w->runtime() == this && in_section()) {
    end_silent();
  }
  {
    std::lock_guard lock(park_mutex_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Runtime::worker_main(unsigned index) {
  Worker& w = *workers_[index];
  detail::set_this_worker(&w);
  obs::bind_thread_ring(trace_ring(index));
  if (cfg_.bind_threads) bind_self_to_core(placement_.slots[index].cpu_os_id);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(park_mutex_);
      // Publish "between sections": stats_snapshot/reset_stats use this
      // (and the mutex edge it implies) to read per-worker counters only
      // after every worker's last unsynchronized write.
      ++idle_workers_;
      idle_cv_.notify_all();
      park_cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
      --idle_workers_;
      if (shutdown_) break;
      seen = epoch_;
    }
    // In-section idle loop: spin, yield, then park on the work parker
    // (woken one at a time by push_task; section end notifies all).
    w.steal_idle(
        [&] { return !section_active_.load(std::memory_order_acquire); });
  }
  obs::bind_thread_ring(nullptr);
  detail::set_this_worker(nullptr);
}

void Runtime::begin() {
  if (this_worker() != nullptr) {
    throw std::logic_error("xk::Runtime::begin: thread already bound");
  }
  std::lock_guard lock(section_mu_);
  unsigned id = 0;
  bool found = false;
  for (std::size_t k = 0; k < master_slots_.size(); ++k) {
    if (!master_open_[k]) {
      master_open_[k] = 1;
      id = master_slots_[k];
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::logic_error(
        "xk::Runtime::begin: all section slots busy (raise XK_SECTIONS)");
  }
  Worker& w = *workers_[id];
  detail::set_this_worker(&w);
  obs::bind_thread_ring(trace_ring(id));
  section_t0_[id] = obs::span_begin();
  if (cfg_.bind_threads && id == 0) {
    bind_self_to_core(placement_.slots[0].cpu_os_id);
  }
  const bool first =
      open_sections_.load(std::memory_order_relaxed) == 0;
  if constexpr (check::kEnabled) {
    // A new batch begins on every 0 -> 1 open transition; its matching
    // last-close drain is asserted in end(). Guarded by section_mu_.
    if (first) ++check_batches_;
  }
  if (first) {
    // The previous batch's end-of-work famine saturated the failed-round
    // gauges; a fresh batch starts with no domain pre-declared starving.
    // (Only the first of a set of overlapping sections resets: a reset
    // mid-batch would erase live famine signals of the running sections —
    // the cross-section gauge bleed this lock exists to prevent.)
    starvation_.reset_rounds();
    // Arm the quiescence event *before* any root frame publishes a
    // master's occupancy. Every root push/pop happens under section_mu_,
    // so from here until the *last* overlapping section closes the root
    // occupied count stays >= 1 and the only 1->0 root edge — the final
    // root-frame pop in end() — is the one that fires, waking parked
    // workers exactly once when the whole batch is over.
    starvation_.arm_quiesce(&work_parker_, &progress_parker_);
  }
  w.push_frame();  // root frame
  open_sections_.fetch_add(1, std::memory_order_release);
  if (first) {
    {
      std::lock_guard plock(park_mutex_);
      ++epoch_;
      section_active_.store(true, std::memory_order_release);
    }
    park_cv_.notify_all();
  }
}

void Runtime::end() {
  Worker* w = this_worker();
  const bool master =
      w != nullptr && &w->runtime() == this &&
      (w->id() == 0 || w->id() >= nw_);
  if (!master || !in_section()) {
    throw std::logic_error("xk::Runtime::end: no open section");
  }
  std::exception_ptr exc;
  try {
    w->drain_current_frame();
  } catch (...) {
    exc = std::current_exception();
  }
  const unsigned id = w->id();
  {
    std::lock_guard lock(section_mu_);
    const unsigned open = open_sections_.load(std::memory_order_relaxed);
    // in_section() above already rejected a bare end(); this guards the
    // counter itself — an open_sections_ underflow here would wrap the
    // gauge and wedge every later first-open/last-close transition.
    XK_EXPECT(section_underflow, open > 0, open);
    const bool last = open == 1;
    if (last) section_active_.store(false, std::memory_order_release);
    // No explicit broadcasts here: when this is the last open section the
    // root-frame pop below clears the final master occupancy bit, the
    // board fold sees the machine-wide root count hit zero — quiescence —
    // and fires the armed parkers exactly once. A worker about to park
    // re-validates the section predicate inside its announce window
    // (after the release store above), so it either sees the close or its
    // prepare()-epoch park is cut short by the fire's seq bump. A
    // non-last close pops under the same lock while some other master's
    // root frame is still pushed, so the root count never dips to zero
    // and nothing fires early.
    w->pop_frame();
    open_sections_.fetch_sub(1, std::memory_order_release);
    if (last) starvation_.disarm_quiesce();  // defensive; fold consumed it
    // The section span closes before the final drain (it must be in that
    // drain's batch). Non-last sections leave their span in the master's
    // ring; the last close copies every ring out after quiescing the
    // pool — all under section_mu_, so no begin() can re-open (and no
    // worker can record) while rings are being copied: one drain per
    // batch, never two.
    obs::emit_span(obs::Ev::kSection, section_t0_[id], nworkers());
    section_t0_[id] = 0;
    if constexpr (check::kEnabled) {
      // Exactly-once drain per batch: after the last close's drain, the
      // drain count must have caught up with the batch count — a second
      // drain in the same batch (or a skipped one) breaks the equality.
      // The open_sections_ check pins the other half: rings are only
      // copied out while no section can be recording into them.
      if (last) {
        XK_EXPECT(section_drain,
                  open_sections_.load(std::memory_order_relaxed) == 0,
                  open_sections_.load(std::memory_order_relaxed));
        ++check_drains_;
        XK_EXPECT(section_drain, check_drains_ == check_batches_,
                  check_drains_, check_batches_);
      }
    }
    if (last) drain_observability();
    for (std::size_t k = 0; k < master_slots_.size(); ++k) {
      if (master_slots_[k] == id) master_open_[k] = 0;
    }
  }
  obs::bind_thread_ring(nullptr);
  detail::set_this_worker(nullptr);
  if (exc) std::rethrow_exception(exc);
}

void Runtime::end_silent() {
  try {
    end();
  } catch (...) {
    // Cleanup path of Runtime::run: the user's exception wins.
  }
}

WorkerStats Runtime::stats_snapshot() const {
  quiesce_pool();
  WorkerStats total;
  for (const auto& w : workers_) total += *w->stats_;
  return total;
}

obs::MetricsSnapshot Runtime::metrics_snapshot() const {
  obs::MetricsSnapshot m;
  m.nworkers = nworkers();
  const WorkerStats total = stats_snapshot();
  m.counters.reserve(kWorkerStatCount);
  total.for_each([&](const char* name, std::uint64_t v) {
    m.counters.emplace_back(name, v);
  });
  m.domains.reserve(starvation_.ndomains());
  for (unsigned r = 0; r < starvation_.ndomains(); ++r) {
    m.domains.push_back(obs::MetricsSnapshot::DomainGauge{
        r, starvation_.ready_depth(r), starvation_.failed_rounds(r),
        starvation_.domain_occupied(r)});
  }
  m.root_occupied = starvation_.root_occupied();
  return m;
}

void Runtime::drain_observability() {
  if (trace_pid_ == 0 && !stats_dump_) return;
  // quiesce_pool (inside stats_snapshot / directly) waits every pool
  // worker back into its between-sections park; the park mutex is the
  // ordering edge that makes their last ring writes visible here.
  const obs::MetricsSnapshot m = metrics_snapshot();
  if (stats_dump_) m.dump(std::cerr);
  if (trace_pid_ == 0) return;
  auto& writer = obs::ChromeTraceWriter::instance();
  std::vector<obs::TraceEvent> events;
  for (unsigned i = 0; i < trace_rings_.size(); ++i) {
    obs::TraceRing& ring = *trace_rings_[i];
    events.clear();
    ring.drain(events);
    writer.add_events(trace_pid_, i, events, ring.dropped());
    ring.clear();
  }
  writer.add_metrics(trace_pid_, m);
}

void Runtime::reset_stats() {
  quiesce_pool();
  for (auto& w : workers_) *w->stats_ = WorkerStats{};
}

void Runtime::quiesce_pool() const {
  // Per-worker counters are plain (hot-path) fields; between sections we
  // wait for every pool worker to re-enter the park_cv_ wait so the mutex
  // provides the ordering edge that makes their final writes visible. With
  // a section open the caller owns the raciness (documented in stats.hpp).
  if (in_section()) return;
  std::unique_lock lock(park_mutex_);
  idle_cv_.wait(lock, [&] {
    return idle_workers_ == threads_.size() || shutdown_;
  });
}

}  // namespace xk
