// Per-worker scheduler counters, plus the shared per-domain starvation /
// occupancy board.
//
// The WorkerStats counters are plain (non-atomic) because each instance is
// written only by its owning worker and sits on its own cache line;
// aggregation snapshots tolerate slight staleness (they are for
// tests/benches, not control flow). The StarvationBoard is the opposite: a
// deliberately *shared* signal surface, written with relaxed atomics from
// the steal path. It carries two families of state:
//  * per-domain starvation gauges (ready depth + failed rounds) that replace
//    purely per-thief escalation state with a "this whole domain is
//    starving" verdict;
//  * per-worker occupancy bits with a domain/root fold — the victim-hint and
//    quiescence side (see the occupancy section below).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "support/cache.hpp"
#include "support/parker.hpp"

namespace xk {

/// Every WorkerStats counter, in declaration order. The aggregation
/// (operator+=), the dump (operator<<) and the metrics snapshot are all
/// generated from this one list, so a counter cannot be summed but
/// silently missing from a dump again; the static_assert below the
/// struct catches a field added to the struct but not to the list.
#define XK_WORKER_COUNTERS(X) \
  X(tasks_spawned)            \
  X(tasks_run_owner)          \
  X(tasks_run_thief)          \
  X(steal_attempts)           \
  X(steals_ok)                \
  X(steal_tasks)              \
  X(steals_local)             \
  X(steals_remote)            \
  X(steal_reclaims)           \
  X(combiner_rounds)          \
  X(requests_served)          \
  X(requests_aggregated)      \
  X(splitter_calls)           \
  X(readylist_attach)         \
  X(readylist_pops)           \
  X(shard_hits)               \
  X(shard_misses)             \
  X(rl_ring_spills)           \
  X(rl_ring_retries)          \
  X(rl_side_pops)             \
  X(starvation_escalations)   \
  X(renames)                  \
  X(scan_visited)             \
  X(scan_entries)             \
  X(scan_retired)             \
  X(scan_rebuilds)            \
  X(parks)                    \
  X(park_wakes)               \
  X(probes_skipped)           \
  X(adaptive_flips)           \
  X(steals_half)              \
  X(quiesce_folds)            \
  X(join_wakes)               \
  X(foreach_chunks)           \
  X(svc_jobs_run)             \
  X(svc_jobs_skipped)

struct WorkerStats {
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_run_owner = 0;   ///< claimed via the FIFO fast path
  std::uint64_t tasks_run_thief = 0;   ///< executed after a successful steal
  std::uint64_t steal_attempts = 0;    ///< requests posted
  std::uint64_t steals_ok = 0;         ///< requests answered with work
  std::uint64_t steal_tasks = 0;       ///< tasks received across all replies
  std::uint64_t steals_local = 0;      ///< successful steals from a same-domain victim
  std::uint64_t steals_remote = 0;     ///< successful steals across a domain boundary
  std::uint64_t steal_reclaims = 0;    ///< claimed-unstarted tasks taken back at a join
  std::uint64_t combiner_rounds = 0;   ///< times this worker was the combiner
  std::uint64_t requests_served = 0;   ///< replies produced as combiner
  std::uint64_t requests_aggregated = 0;  ///< replies produced for *others*
  std::uint64_t splitter_calls = 0;
  std::uint64_t readylist_attach = 0;
  std::uint64_t readylist_pops = 0;
  std::uint64_t shard_hits = 0;    ///< pops served from the popper's own domain
                                   ///  shard (ready shards + foreach remainder
                                   ///  queues)
  std::uint64_t shard_misses = 0;  ///< pops that crossed into another domain's
                                   ///  shard after the local one ran dry
  std::uint64_t rl_ring_spills = 0;   ///< ready-ring pushes that overflowed to
                                      ///  the mutex-guarded side deque
                                      ///  (XK_RL_LOCK=lockfree)
  std::uint64_t rl_ring_retries = 0;  ///< ring push/pop CAS races lost against
                                      ///  another worker (ring contention)
  std::uint64_t rl_side_pops = 0;     ///< pops served from a side deque instead
                                      ///  of the ring (spill drain traffic)
  std::uint64_t starvation_escalations = 0;  ///< victim draws widened to remote
                                             ///  domains early by the shared
                                             ///  starvation signal
  std::uint64_t renames = 0;
  std::uint64_t scan_visited = 0;      ///< candidates readiness-checked
  std::uint64_t scan_entries = 0;      ///< live cache entries walked by scans
  std::uint64_t scan_retired = 0;      ///< entries dropped as never-again relevant
  std::uint64_t scan_rebuilds = 0;     ///< per-frame scan caches (re)built from scratch
  std::uint64_t parks = 0;             ///< times this worker went to sleep idle
  std::uint64_t park_wakes = 0;        ///< parks ended by a notification (rest timed out)
  std::uint64_t probes_skipped = 0;    ///< victim draws that skipped a candidate on
                                       ///  its cleared occupancy bit (XK_OCC_HINT)
  std::uint64_t adaptive_flips = 0;    ///< steal-one <-> steal-half feedback flips
  std::uint64_t steals_half = 0;       ///< successful steals posted in steal-half mode
  std::uint64_t quiesce_folds = 0;     ///< occupancy fold levels climbed by this
                                       ///  worker's 0<->1 depth transitions
  std::uint64_t join_wakes = 0;        ///< targeted wakes of a registered join
                                       ///  waiter after a stolen-task completion
  std::uint64_t foreach_chunks = 0;
  std::uint64_t svc_jobs_run = 0;      ///< service jobs whose body this worker
                                       ///  executed (owner or thief)
  std::uint64_t svc_jobs_skipped = 0;  ///< service job tasks claimed but not
                                       ///  run: the job was cancelled while
                                       ///  still queued

  WorkerStats& operator+=(const WorkerStats& o) {
#define XK_STAT_ADD(f) f += o.f;
    XK_WORKER_COUNTERS(XK_STAT_ADD)
#undef XK_STAT_ADD
    return *this;
  }

  /// Visits (name, value) for every counter in declaration order — the one
  /// enumeration path behind operator<< and the metrics snapshot.
  template <typename Fn>
  void for_each(Fn&& fn) const {
#define XK_STAT_VISIT(f) fn(#f, f);
    XK_WORKER_COUNTERS(XK_STAT_VISIT)
#undef XK_STAT_VISIT
  }
};

/// Counters in the X-macro list.
inline constexpr std::size_t kWorkerStatCount = []() {
  std::size_t n = 0;
#define XK_STAT_COUNT(f) ++n;
  XK_WORKER_COUNTERS(XK_STAT_COUNT)
#undef XK_STAT_COUNT
  return n;
}();

// Every field is a std::uint64_t, so a field present in the struct but
// missing from XK_WORKER_COUNTERS (or vice versa) changes one side of
// this equality.
static_assert(sizeof(WorkerStats) == kWorkerStatCount * sizeof(std::uint64_t),
              "WorkerStats fields and XK_WORKER_COUNTERS out of sync");

inline std::ostream& operator<<(std::ostream& os, const WorkerStats& s) {
  bool first = true;
  s.for_each([&](const char* name, std::uint64_t v) {
    os << (first ? "" : " ") << name << "=" << v;
    first = false;
  });
  return os;
}

/// Global per-domain starvation gauges — the "domain is starving" signal
/// the sharded steal path keys off. One cache-line-padded gauge per dense
/// locality-domain rank (Placement::Slot::domain_rank):
///
///  * `ready`  — tasks currently sitting in this domain's ready-list shards
///    (across all frames). A domain with queued ready work is never
///    starving, no matter how many of its thieves report failure.
///  * `failed` — failed *local* victim rounds accumulated across every
///    thief of the domain since its last successful steal.
///
/// All accesses are relaxed: the signal is a heuristic and tolerates
/// staleness. What it buys over the per-thief `local_fails_` counter is
/// that the failures of *other* thieves in the domain count too — one thief
/// can conclude "my whole domain is dry" after far fewer of its own rounds,
/// and a combiner on the far side can see which requesters are desperate.
class StarvationBoard {
 public:
  /// Sizes the board for `ndomains` dense domain ranks. Must be called
  /// before workers run (Runtime does it right after computing placement);
  /// all methods are safe no-ops on an un-init'ed board.
  void init(unsigned ndomains) {
    gauges_ = std::vector<Padded<Gauge>>(std::max(ndomains, 1u));
  }

  unsigned ndomains() const { return static_cast<unsigned>(gauges_.size()); }

  /// Ready-shard depth accounting. Increments ride the owning shard's
  /// lock (two-level ReadyList locking: the push and the gauge bump are
  /// one critical section, so depth never lags the deque by more than the
  /// relaxed-gauge staleness the verdict already tolerates). Decrements
  /// come from ReadyList's lock-free settle — an atomic exchange on the
  /// node's queued-shard field performed by whichever of a pop (after it
  /// dropped the shard lock) and a completion (graph lock held) gets
  /// there first; the exchange alone orders the two.
  void add_ready(unsigned rank, std::int64_t delta) {
    if (Gauge* g = gauge(rank)) {
      g->ready.fetch_add(delta, std::memory_order_relaxed);
    }
  }

  std::int64_t ready_depth(unsigned rank) const {
    const Gauge* g = gauge(rank);
    return g != nullptr ? g->ready.load(std::memory_order_relaxed) : 0;
  }

  /// A thief of this domain finished a local victim round empty-handed.
  void record_failed_round(unsigned rank) {
    if (Gauge* g = gauge(rank)) {
      g->failed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// A thief of this domain obtained work: the domain is provably not dry.
  void record_progress(unsigned rank) {
    if (Gauge* g = gauge(rank)) {
      // xk-order: starvation gauge reset — readers are heuristic (victim
      // draw, reply deal) and tolerate arbitrary staleness by design.
      g->failed.store(0, std::memory_order_relaxed);
    }
  }

  /// Clears every domain's failed-round gauge (ready depths are left
  /// alone — they track real shard contents). Runtime::begin() calls this:
  /// the famine at the end of one parallel section would otherwise carry a
  /// stale "everything is starving" verdict into the next section's first
  /// draws.
  void reset_rounds() {
    for (auto& g : gauges_) {
      // xk-order: same heuristic-gauge contract as record_progress; the
      // section open this rides is serialized by section_mu_ anyway.
      g->failed.store(0, std::memory_order_relaxed);
    }
  }

  std::uint64_t failed_rounds(unsigned rank) const {
    const Gauge* g = gauge(rank);
    return g != nullptr ? g->failed.load(std::memory_order_relaxed) : 0;
  }

  /// The shared verdict: at least `threshold` failed local rounds since the
  /// domain's last progress, with nothing queued in its ready shards.
  /// `threshold` 0 disables the signal.
  bool starving(unsigned rank, std::uint64_t threshold) const {
    if (threshold == 0) return false;
    const Gauge* g = gauge(rank);
    return g != nullptr &&
           g->failed.load(std::memory_order_relaxed) >= threshold &&
           g->ready.load(std::memory_order_relaxed) <= 0;
  }

  // ---- occupancy bits + quiescence fold (PR 6) -------------------------
  //
  // One "has work" byte per worker, published by the owner only on its
  // 0<->1 frame-depth transitions, plus a two-level fold: per-domain
  // occupied-worker counts (in the padded Gauge, written at the worker's
  // 0<->1 bit transitions) and a machine-wide occupied-domain count at the
  // root (written at a domain's 0<->1 transitions). The bytes are packed
  // unpadded on purpose: transitions are rare (once per stolen reply, not
  // per task), so the line stays read-mostly and a thief's victim draw
  // reads many bits from one line instead of many workers' hot depth
  // words. Everything is a heuristic hint EXCEPT the root count's last
  // 1->0 edge, which doubles as the section-quiescence event: when armed,
  // it fires the registered parkers exactly once (the exchange below), in
  // place of per-completion progress broadcasts.

  /// Sizes the per-worker occupancy bits; `worker_ranks[i]` is worker i's
  /// dense domain rank. Must be called after init() and before workers run.
  void init_occupancy(const std::vector<unsigned>& worker_ranks) {
    occ_ = std::vector<OccSlot>(std::max<std::size_t>(worker_ranks.size(), 1));
    for (std::size_t i = 0; i < worker_ranks.size(); ++i) {
      occ_[i].domain_rank = worker_ranks[i];
    }
  }

  /// Publishes worker `w`'s has-work bit and folds the change up the
  /// domain/root counts. Owner-called only (one writer per bit). Returns
  /// the number of fold levels the transition climbed (0 when the bit did
  /// not change, up to 3 for bit + domain + root) — the quiesce_folds
  /// telemetry — and fires the armed quiescence parkers on the root's
  /// 1->0 edge.
  unsigned publish_occupied(unsigned w, bool occupied) {
    if (w >= occ_.size() || gauges_.empty()) return 0;
    OccSlot& s = occ_[w];
    const std::uint8_t bit = occupied ? 1 : 0;
    if (s.occupied.load(std::memory_order_relaxed) == bit) return 0;
    // xk-order: owner-written edge-detect bit; only this worker writes its
    // slot, and the quiescence decision below rides the gauge fetch_adds
    // (whose counts, not this bit, are what fire_quiesce consumes).
    s.occupied.store(bit, std::memory_order_relaxed);
    unsigned folds = 1;
    Gauge* g = gauge(s.domain_rank);
    const std::int64_t before =
        g->occupied.fetch_add(occupied ? 1 : -1, std::memory_order_relaxed);
    if (occupied ? before != 0 : before != 1) return folds;
    ++folds;
    const std::int64_t root_before =
        root_occupied_.value.fetch_add(occupied ? 1 : -1,
                                       std::memory_order_relaxed);
    if (!occupied && root_before == 1) {
      ++folds;
      fire_quiesce();
    }
    return folds;
  }

  bool occupied(unsigned w) const {
    return w < occ_.size() &&
           occ_[w].occupied.load(std::memory_order_relaxed) != 0;
  }

  std::int64_t domain_occupied(unsigned rank) const {
    const Gauge* g = gauge(rank);
    return g != nullptr ? g->occupied.load(std::memory_order_relaxed) : 0;
  }

  std::int64_t root_occupied() const {
    return root_occupied_.value.load(std::memory_order_relaxed);
  }

  /// Arms the quiescence event: the next root 1->0 fold notify_all()s both
  /// parkers exactly once (each pointer is consumed by an exchange).
  /// Runtime::begin() arms before pushing the root frame, so the root
  /// count is non-zero for the entire section and the only firing edge is
  /// the master's root-frame pop in Runtime::end().
  void arm_quiesce(Parker* work, Parker* progress) {
    quiesce_work_.store(work, std::memory_order_release);
    quiesce_progress_.store(progress, std::memory_order_release);
  }

  /// Drops an unfired arming (defensive; after a normal section end the
  /// fold already consumed both pointers).
  void disarm_quiesce() {
    quiesce_work_.store(nullptr, std::memory_order_release);
    quiesce_progress_.store(nullptr, std::memory_order_release);
  }

  /// True while at least one quiescence parker is still armed (tests).
  bool quiesce_armed() const {
    return quiesce_work_.load(std::memory_order_acquire) != nullptr ||
           quiesce_progress_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  struct Gauge {
    std::atomic<std::int64_t> ready{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::int64_t> occupied{0};  ///< workers of this domain with
                                            ///  a non-empty frame stack
  };

  /// Per-worker occupancy byte. Deliberately unpadded (see above); the
  /// domain rank rides along so the fold never needs a placement lookup.
  struct OccSlot {
    std::atomic<std::uint8_t> occupied{0};
    std::uint32_t domain_rank = 0;
  };

  void fire_quiesce() {
    // The exchange is the exactly-once guarantee: two racing 1->0 edges
    // cannot both see a non-null pointer. notify_all (not notify_one): the
    // work parker's rate limiter may drop notify_one wakes, and section
    // close must reach every sleeper.
    if (Parker* p = quiesce_progress_.exchange(nullptr,
                                               std::memory_order_acq_rel)) {
      p->notify_all();
    }
    if (Parker* p =
            quiesce_work_.exchange(nullptr, std::memory_order_acq_rel)) {
      p->notify_all();
    }
  }

  Gauge* gauge(unsigned rank) {
    if (gauges_.empty()) return nullptr;
    return &gauges_[rank < gauges_.size() ? rank : 0].value;
  }
  const Gauge* gauge(unsigned rank) const {
    if (gauges_.empty()) return nullptr;
    return &gauges_[rank < gauges_.size() ? rank : 0].value;
  }

  std::vector<Padded<Gauge>> gauges_;
  std::vector<OccSlot> occ_;
  Padded<std::atomic<std::int64_t>> root_occupied_;
  std::atomic<Parker*> quiesce_work_{nullptr};
  std::atomic<Parker*> quiesce_progress_{nullptr};
};

}  // namespace xk
