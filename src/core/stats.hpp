// Per-worker scheduler counters.
//
// The counters are plain (non-atomic) because each instance is written only
// by its owning worker and sits on its own cache line; aggregation snapshots
// tolerate slight staleness (they are for tests/benches, not control flow).
#pragma once

#include <cstdint>
#include <ostream>

namespace xk {

struct WorkerStats {
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_run_owner = 0;   ///< claimed via the FIFO fast path
  std::uint64_t tasks_run_thief = 0;   ///< executed after a successful steal
  std::uint64_t steal_attempts = 0;    ///< requests posted
  std::uint64_t steals_ok = 0;         ///< requests answered with work
  std::uint64_t steal_tasks = 0;       ///< tasks received across all replies
  std::uint64_t steals_local = 0;      ///< successful steals from a same-domain victim
  std::uint64_t steals_remote = 0;     ///< successful steals across a domain boundary
  std::uint64_t steal_reclaims = 0;    ///< claimed-unstarted tasks taken back at a join
  std::uint64_t combiner_rounds = 0;   ///< times this worker was the combiner
  std::uint64_t requests_served = 0;   ///< replies produced as combiner
  std::uint64_t requests_aggregated = 0;  ///< replies produced for *others*
  std::uint64_t splitter_calls = 0;
  std::uint64_t readylist_attach = 0;
  std::uint64_t readylist_pops = 0;
  std::uint64_t renames = 0;
  std::uint64_t scan_visited = 0;      ///< candidates readiness-checked
  std::uint64_t scan_entries = 0;      ///< live cache entries walked by scans
  std::uint64_t scan_retired = 0;      ///< entries dropped as never-again relevant
  std::uint64_t scan_rebuilds = 0;     ///< per-frame scan caches (re)built from scratch
  std::uint64_t parks = 0;             ///< times this worker went to sleep idle
  std::uint64_t park_wakes = 0;        ///< parks ended by a notification (rest timed out)
  std::uint64_t foreach_chunks = 0;

  WorkerStats& operator+=(const WorkerStats& o) {
    tasks_spawned += o.tasks_spawned;
    tasks_run_owner += o.tasks_run_owner;
    tasks_run_thief += o.tasks_run_thief;
    steal_attempts += o.steal_attempts;
    steals_ok += o.steals_ok;
    steal_tasks += o.steal_tasks;
    steals_local += o.steals_local;
    steals_remote += o.steals_remote;
    steal_reclaims += o.steal_reclaims;
    combiner_rounds += o.combiner_rounds;
    requests_served += o.requests_served;
    requests_aggregated += o.requests_aggregated;
    splitter_calls += o.splitter_calls;
    readylist_attach += o.readylist_attach;
    readylist_pops += o.readylist_pops;
    renames += o.renames;
    scan_visited += o.scan_visited;
    scan_entries += o.scan_entries;
    scan_retired += o.scan_retired;
    scan_rebuilds += o.scan_rebuilds;
    parks += o.parks;
    park_wakes += o.park_wakes;
    foreach_chunks += o.foreach_chunks;
    return *this;
  }
};

inline std::ostream& operator<<(std::ostream& os, const WorkerStats& s) {
  os << "spawned=" << s.tasks_spawned << " run_owner=" << s.tasks_run_owner
     << " run_thief=" << s.tasks_run_thief << " steals_ok=" << s.steals_ok
     << " local=" << s.steals_local << " remote=" << s.steals_remote
     << " attempts=" << s.steal_attempts << " combiner=" << s.combiner_rounds
     << " aggregated=" << s.requests_aggregated
     << " splits=" << s.splitter_calls << " rl_pops=" << s.readylist_pops
     << " renames=" << s.renames << " parks=" << s.parks
     << " park_wakes=" << s.park_wakes;
  return os;
}

}  // namespace xk
