// Per-frame bump allocator for task descriptors, argument blocks and access
// arrays. Only the frame owner allocates; thieves only read the published
// objects, so no synchronization is needed beyond the frame's task-count
// publication. Memory is recycled when the frame is reset (all tasks Term
// and no scanner active — see Worker's frame-pop protocol).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "support/cache.hpp"

namespace xk {

class Arena {
 public:
  Arena() = default;
  ~Arena() { release_all(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align`. Never returns null
  /// (allocates a new block when the current one is exhausted).
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uintptr_t p = round_up(cursor_, align);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = round_up(cursor_, align);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
  }

  /// Recycles all blocks for reuse; does not run destructors (callers that
  /// need destruction run it in the task trampoline).
  void reset() {
    blocks_in_use_ = nullptr;
    if (first_ != nullptr) {
      // Rewind to the first block; the spare list keeps the others.
      cursor_ = first_->payload();
      limit_ = first_->payload() + first_->capacity;
      blocks_in_use_ = first_;
      Block* extra = first_->next;
      first_->next = nullptr;
      while (extra != nullptr) {
        Block* n = extra->next;
        extra->next = spares_;
        spares_ = extra;
        extra = n;
      }
    } else {
      cursor_ = limit_ = 0;
    }
  }

  std::size_t bytes_allocated() const { return total_allocated_; }

 private:
  struct Block {
    Block* next = nullptr;
    std::size_t capacity = 0;
    std::uintptr_t payload() const {
      return round_up(reinterpret_cast<std::uintptr_t>(this) + sizeof(Block),
                      kCacheLine);
    }
  };

  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;

  void grow(std::size_t need) {
    // Reuse a spare block when large enough, else malloc a fresh one.
    Block** prev = &spares_;
    for (Block* b = spares_; b != nullptr; prev = &b->next, b = b->next) {
      if (b->capacity >= need) {
        *prev = b->next;
        attach(b);
        return;
      }
    }
    const std::size_t cap = need > kDefaultBlockBytes ? need : kDefaultBlockBytes;
    const std::size_t raw = sizeof(Block) + kCacheLine + cap;
    auto* b = static_cast<Block*>(::operator new(raw));
    b->next = nullptr;
    b->capacity = cap;
    total_allocated_ += raw;
    if (first_ == nullptr) first_ = b;
    attach(b);
  }

  void attach(Block* b) {
    b->next = nullptr;
    if (blocks_in_use_ != nullptr && blocks_in_use_ != b) {
      // Chain after the current block list head for later reset/release.
      Block* tail = blocks_in_use_;
      while (tail->next != nullptr) tail = tail->next;
      tail->next = b;
    } else if (blocks_in_use_ == nullptr) {
      blocks_in_use_ = b;
      if (first_ == nullptr) first_ = b;
    }
    cursor_ = b->payload();
    limit_ = b->payload() + b->capacity;
  }

  void release_all() {
    auto free_chain = [](Block* b) {
      while (b != nullptr) {
        Block* n = b->next;
        ::operator delete(b);
        b = n;
      }
    };
    free_chain(first_);
    free_chain(spares_);
    first_ = blocks_in_use_ = spares_ = nullptr;
  }

  Block* first_ = nullptr;          // head of the in-use chain (kept on reset)
  Block* blocks_in_use_ = nullptr;  // current chain
  Block* spares_ = nullptr;         // recycled blocks
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t total_allocated_ = 0;
};

}  // namespace xk
