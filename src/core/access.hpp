// Access modes and memory regions — the dataflow vocabulary of §II-B.
//
// A task declares, per shared argument, *how* it accesses a memory region
// (read / write / read-write a.k.a. exclusive / cumulative-write a.k.a.
// reduction / scratch). The runtime never inspects user data; dependencies
// are computed purely from region overlap plus mode compatibility, and only
// at steal time (work-first principle, §II-C).
//
// Regions are byte-addressed and may be strided (the paper: "multi-
// dimensional array" shaped sets of addresses): `runs` contiguous segments of
// `run_bytes` each, separated by `stride_bytes`. runs == 1 describes the
// common contiguous case.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xk {

enum class AccessMode : std::uint8_t {
  kNone = 0,   ///< by-value argument, invisible to the scheduler
  kRead,       ///< task reads the region
  kWrite,      ///< task overwrites the region (no read of prior value)
  kReadWrite,  ///< exclusive access (read-modify-write)
  kCumulWrite, ///< reduction: commutative/associative accumulation
  kScratch,    ///< task-private temporary, never creates dependencies
};

/// True when `mode` writes memory visible to successors.
constexpr bool mode_writes(AccessMode mode) {
  return mode == AccessMode::kWrite || mode == AccessMode::kReadWrite ||
         mode == AccessMode::kCumulWrite;
}

/// True when `mode` reads memory produced by predecessors.
constexpr bool mode_reads(AccessMode mode) {
  return mode == AccessMode::kRead || mode == AccessMode::kReadWrite;
}

/// A strided set of byte addresses: `runs` segments of `run_bytes`, the
/// start of segment k at `base + k * stride_bytes`.
struct MemRegion {
  std::uintptr_t base = 0;
  std::size_t run_bytes = 0;
  std::size_t runs = 1;
  std::size_t stride_bytes = 0;

  static MemRegion contiguous(const void* ptr, std::size_t bytes) {
    return MemRegion{reinterpret_cast<std::uintptr_t>(ptr), bytes, 1, 0};
  }

  static MemRegion strided(const void* ptr, std::size_t run_bytes,
                           std::size_t runs, std::size_t stride_bytes) {
    return MemRegion{reinterpret_cast<std::uintptr_t>(ptr), run_bytes, runs,
                     stride_bytes};
  }

  bool empty() const { return run_bytes == 0 || runs == 0; }

  /// First byte address covered.
  std::uintptr_t lo() const { return base; }

  /// One past the last byte address covered (bounding interval).
  std::uintptr_t hi() const {
    if (empty()) return base;
    return base + (runs - 1) * stride_bytes + run_bytes;
  }

  std::size_t total_bytes() const { return run_bytes * runs; }
};

/// Exact overlap test between two strided regions. O(min(runs_a, runs_b))
/// worst case; O(1) for the dominant contiguous-vs-contiguous case.
bool regions_overlap(const MemRegion& a, const MemRegion& b);

/// Sentinel for Access::arg_offset: the access cannot be renamed because the
/// runtime does not know where the body's pointer lives.
inline constexpr std::uint32_t kNoArgOffset = 0xffffffffu;

/// One declared access of a task.
struct Access {
  MemRegion region;
  AccessMode mode = AccessMode::kNone;
  /// Positional index of the argument (diagnostics).
  std::uint32_t arg_index = 0;
  /// Byte offset, within the task's argument block, of the pointer the body
  /// dereferences for this access. Lets the renaming machinery (§II-B)
  /// retarget a Write access to a runtime buffer. kNoArgOffset disables
  /// renaming for this access.
  std::uint32_t arg_offset = kNoArgOffset;
};

/// Dependency test used by the steal-time readiness scan: does an earlier
/// task's access `before` order against a later task's access `after`?
///
///   R  vs R   -> independent
///   CW vs CW  -> independent (reductions commute; the runtime serializes
///                their bodies per-region, see Runtime::cw_guard)
///   scratch   -> independent of everything
///   otherwise -> dependent when the regions overlap
bool accesses_conflict(const Access& before, const Access& after);

/// True when the only reason `after` depends on `before` is a false (WAR or
/// WAW) dependency, i.e. `after` does not read anything `before` writes.
/// Such dependencies are breakable by renaming.
bool conflict_is_false_dependency(const Access& before, const Access& after);

}  // namespace xk
