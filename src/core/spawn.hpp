// Typed spawn API: non-blocking task creation with declared access modes.
//
//   xk::spawn([]{ heavy(); });                         // fork-join task
//   xk::spawn(fn, xk::read(&a), xk::write(&b), 42);    // dataflow task
//   xk::sync();                                        // wait for children
//
// The semantics are sequential (§II-B): the program is correct when every
// spawn is replaced by a direct call in program order. Outside a runtime
// section spawn does exactly that (sequential elision).
//
// Hierarchical dataflow contract: a dataflow task that itself spawns
// dataflow children must declare accesses covering its children's accesses.
// This is what makes steal-time readiness sound for work spawned while a
// traversal is in flight, and what makes the ready-list's per-frame
// dependence graph conservative (see readylist.hpp). Flat task graphs
// (the common case) need nothing.
#pragma once

#include <cstddef>
#include <tuple>
#include <type_traits>
#include <utility>

#include "core/access.hpp"
#include "core/runtime.hpp"
#include "core/task.hpp"
#include "core/worker.hpp"

namespace xk {

// ---------------------------------------------------------------------------
// Access wrappers.
// ---------------------------------------------------------------------------

template <typename T>
struct ReadArg {
  const T* ptr;
  MemRegion region;
};
template <typename T>
struct WriteArg {
  T* ptr;
  MemRegion region;
};
template <typename T>
struct RwArg {
  T* ptr;
  MemRegion region;
};
template <typename T>
struct CwArg {
  T* ptr;
  MemRegion region;
};
template <typename T>
struct ScratchArg {
  T* ptr;
  MemRegion region;
};

/// Read access to `count` elements starting at `p`.
template <typename T>
ReadArg<T> read(const T* p, std::size_t count = 1) {
  return {p, MemRegion::contiguous(p, count * sizeof(T))};
}

/// Write (output-only) access; renameable when contiguous.
template <typename T>
WriteArg<T> write(T* p, std::size_t count = 1) {
  return {p, MemRegion::contiguous(p, count * sizeof(T))};
}

/// Exclusive read-modify-write access.
template <typename T>
RwArg<T> rw(T* p, std::size_t count = 1) {
  return {p, MemRegion::contiguous(p, count * sizeof(T))};
}

/// Cumulative write (reduction) access: CW tasks on the same region are
/// mutually independent; the runtime serializes their bodies per region.
template <typename T>
CwArg<T> cw(T* p, std::size_t count = 1) {
  return {p, MemRegion::contiguous(p, count * sizeof(T))};
}

/// Task-private scratch: never creates dependencies.
template <typename T>
ScratchArg<T> scratch(T* p, std::size_t count = 1) {
  return {p, MemRegion::contiguous(p, count * sizeof(T))};
}

/// Strided (multi-dimensional, §II-B) variants: `runs` segments of
/// `run_elems` elements, segment starts `stride_elems` apart.
template <typename T>
ReadArg<T> read_strided(const T* p, std::size_t run_elems, std::size_t runs,
                        std::size_t stride_elems) {
  return {p, MemRegion::strided(p, run_elems * sizeof(T), runs,
                                stride_elems * sizeof(T))};
}
template <typename T>
WriteArg<T> write_strided(T* p, std::size_t run_elems, std::size_t runs,
                          std::size_t stride_elems) {
  return {p, MemRegion::strided(p, run_elems * sizeof(T), runs,
                                stride_elems * sizeof(T))};
}
template <typename T>
RwArg<T> rw_strided(T* p, std::size_t run_elems, std::size_t runs,
                    std::size_t stride_elems) {
  return {p, MemRegion::strided(p, run_elems * sizeof(T), runs,
                                stride_elems * sizeof(T))};
}

// ---------------------------------------------------------------------------
// Wrapper traits.
// ---------------------------------------------------------------------------

namespace detail {

template <typename A>
struct wrapper_traits {
  static constexpr bool is_wrapper = false;
  using value_type = A;
};
template <typename T>
struct wrapper_traits<ReadArg<T>> {
  static constexpr bool is_wrapper = true;
  static constexpr AccessMode mode = AccessMode::kRead;
  using value_type = const T*;
  static value_type unwrap(const ReadArg<T>& a) { return a.ptr; }
};
template <typename T>
struct wrapper_traits<WriteArg<T>> {
  static constexpr bool is_wrapper = true;
  static constexpr AccessMode mode = AccessMode::kWrite;
  using value_type = T*;
  static value_type unwrap(const WriteArg<T>& a) { return a.ptr; }
};
template <typename T>
struct wrapper_traits<RwArg<T>> {
  static constexpr bool is_wrapper = true;
  static constexpr AccessMode mode = AccessMode::kReadWrite;
  using value_type = T*;
  static value_type unwrap(const RwArg<T>& a) { return a.ptr; }
};
template <typename T>
struct wrapper_traits<CwArg<T>> {
  static constexpr bool is_wrapper = true;
  static constexpr AccessMode mode = AccessMode::kCumulWrite;
  using value_type = T*;
  static value_type unwrap(const CwArg<T>& a) { return a.ptr; }
};
template <typename T>
struct wrapper_traits<ScratchArg<T>> {
  static constexpr bool is_wrapper = true;
  static constexpr AccessMode mode = AccessMode::kScratch;
  using value_type = T*;
  static value_type unwrap(const ScratchArg<T>& a) { return a.ptr; }
};

template <typename A>
inline constexpr bool is_wrapper_v = wrapper_traits<std::decay_t<A>>::is_wrapper;

template <typename A>
using unwrapped_t = typename wrapper_traits<std::decay_t<A>>::value_type;

template <typename A>
decltype(auto) unwrap(A&& a) {
  using W = wrapper_traits<std::decay_t<A>>;
  if constexpr (W::is_wrapper) {
    return W::unwrap(a);
  } else {
    return std::forward<A>(a);
  }
}

/// Argument block placed in the frame arena next to the descriptor. The
/// trampoline destroys it after the call (the arena never runs destructors).
template <typename F, typename Tuple>
struct SpawnBlock {
  F fn;
  Tuple args;
};

template <typename F, typename Tuple>
void spawn_trampoline(void* p, Worker&) {
  auto* blk = static_cast<SpawnBlock<F, Tuple>*>(p);
  struct Destroy {
    SpawnBlock<F, Tuple>* b;
    ~Destroy() { b->~SpawnBlock<F, Tuple>(); }
  } destroy{blk};
  std::apply(blk->fn, blk->args);
}

template <typename Block, typename... Args, std::size_t... I>
void fill_accesses(Access* out, Block& blk, std::index_sequence<I...>,
                   const Args&... args) {
  std::size_t n = 0;
  auto one = [&](auto index, const auto& a) {
    using W = wrapper_traits<std::decay_t<decltype(a)>>;
    if constexpr (W::is_wrapper) {
      constexpr std::size_t i = decltype(index)::value;
      Access& acc = out[n++];
      acc.region = a.region;
      acc.mode = W::mode;
      acc.arg_index = static_cast<std::uint32_t>(i);
      acc.arg_offset = static_cast<std::uint32_t>(
          reinterpret_cast<const char*>(&std::get<i>(blk.args)) -
          reinterpret_cast<const char*>(&blk));
    }
  };
  (one(std::integral_constant<std::size_t, I>{}, args), ...);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// spawn / sync.
// ---------------------------------------------------------------------------

/// Creates a task executing `fn(args...)` where access wrappers are replaced
/// by their pointers. Non-blocking: the caller continues immediately.
/// Outside a runtime section the call is executed inline (sequential
/// elision — a valid schedule by construction).
template <typename F, typename... Args>
void spawn(F&& fn, Args&&... args) {
  using Fd = std::decay_t<F>;
  using Tuple = std::tuple<detail::unwrapped_t<Args>...>;
  Worker* w = this_worker();
  if (w == nullptr || w->depth_relaxed() == 0) {
    Fd f(std::forward<F>(fn));
    std::apply(f, Tuple(detail::unwrap(std::forward<Args>(args))...));
    return;
  }
  using Block = detail::SpawnBlock<Fd, Tuple>;
  constexpr std::size_t nacc =
      (std::size_t{0} + ... + (detail::is_wrapper_v<Args> ? 1u : 0u));

  auto* t = new (w->frame_alloc(sizeof(Task), alignof(Task))) Task();
  auto* blk = new (w->frame_alloc(sizeof(Block), alignof(Block)))
      Block{Fd(std::forward<F>(fn)),
            Tuple(detail::unwrap(std::forward<Args>(args))...)};
  if constexpr (nacc > 0) {
    auto* acc = static_cast<Access*>(
        w->frame_alloc(sizeof(Access) * nacc, alignof(Access)));
    for (std::size_t i = 0; i < nacc; ++i) new (acc + i) Access();
    detail::fill_accesses(acc, *blk, std::index_sequence_for<Args...>{},
                          args...);
    t->accesses = acc;
    t->naccesses = static_cast<std::uint32_t>(nacc);
  }
  t->body = &detail::spawn_trampoline<Fd, Tuple>;
  t->args = blk;
  w->push_task(t);
}

/// Executes the current frame's pending children in FIFO order and waits for
/// stolen ones (§II-B). Rethrows the first child exception. No-op outside a
/// runtime section.
inline void sync() {
  Worker* w = this_worker();
  if (w == nullptr || w->depth_relaxed() == 0) return;
  w->drain_current_frame();
}

}  // namespace xk
