// Runtime configuration knobs.
//
// Every mechanism the paper describes as an optimization (steal-request
// aggregation §II-C, the ready-list accelerating structure §II-C, renaming
// §II-B) is individually switchable so the ablation benches can isolate its
// contribution, and so tests can exercise each code path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/cpu.hpp"

namespace xk {

/// Locking discipline for a frame's ReadyList (the XK_RL_LOCK ablation
/// knob). kSplit = two-level graph/shard locking; kGlobal = the pre-split
/// single mutex (graph_mu_ serializes everything, exact old behavior);
/// kLockFree = split's graph lock plus lock-free shard rings and a
/// lock-free completion path (see readylist.hpp). Declared here, not in
/// readylist.hpp, so Config and the env parser can name it without
/// dragging in the ReadyList internals.
enum class RlLockMode : std::uint8_t { kGlobal, kSplit, kLockFree };

struct Config {
  /// Worker thread count (the paper: one thread per core by default).
  unsigned nworkers = 0;  // 0 => default_worker_count()

  /// Bind worker i to core i (mod cores); the paper binds via affinity mask.
  bool bind_threads = true;

  /// Steal-request aggregation: one elected thief (the combiner) replies to
  /// all pending requests in a single victim traversal (§II-C). When off,
  /// a combiner serves only its own request — classic work stealing.
  bool steal_aggregation = true;

  /// Attach the ready-list accelerating structure to a frame once a steal
  /// traversal has scanned this many tasks without serving all requests.
  /// 0 disables the ready list entirely.
  std::size_t ready_list_threshold = 256;

  /// Break WAR/WAW dependencies by renaming (redirecting a writer task to a
  /// runtime-owned buffer, committed in program order). Costs one copy per
  /// renamed region, exactly as the paper states.
  bool renaming = false;

  /// Failed steal attempts before the idle loop starts yielding the CPU.
  /// Low values keep oversubscribed (threads > cores) runs healthy.
  int steal_backoff = 16;

  /// Max tasks handed to one thief per steal reply when they come cheap
  /// (ready-list pops). Amortizes the request/reply handshake; clamped to
  /// [1, StealRequest::kMaxBatch]. 1 restores one-task-per-steal. Under
  /// steal_adaptive this is only the self-reply width of the fixed
  /// baseline; adaptive replies are sized from the victim's ready depth.
  std::size_t steal_batch = 4;

  /// Adaptive steal-one/steal-half reply sizing (XK_STEAL_ADAPTIVE). Each
  /// thief carries a feedback bit on its posted request: a thief that comes
  /// back begging immediately after executing its whole reply asks for half
  /// of the victim's ready work next time; one whose stolen subtree fanned
  /// out into more local work than it received drops back to steal-one. The
  /// combiner sizes replies from the shard depth and the number of pending
  /// thieves instead of the fixed steal_batch split. Off restores the
  /// fixed-batch deal exactly (the ablation baseline).
  bool steal_adaptive = true;

  /// Victim occupancy hints (XK_OCC_HINT): thieves consult the occupancy
  /// board's per-worker "has work" bit — published only on the worker's
  /// 0<->1 frame-depth transitions, so the line stays read-mostly — instead
  /// of loading every candidate victim's hot depth word during the draw.
  /// Provably-empty victims are skipped without touching their queues or
  /// locks (counted as probes_skipped). Off restores the depth probe.
  bool occupancy_hint = true;

  /// Consecutive failed steal attempts before an idle worker parks on the
  /// runtime's Parker (bounded exponential sleep, woken on task publication).
  /// Must exceed steal_backoff; 0 disables parking (pure spin/yield).
  int park_threshold = 128;

  /// Synthetic topology spec (XK_TOPO, "<nodes>x<cores>[x<smt>]"). Empty
  /// defers to the XK_TOPO environment variable when set, else sysfs
  /// discovery — mirroring nworkers = 0 → XK_NCPU, so directly-constructed
  /// Configs (the test-suite idiom) still honor a CI-provided shape.
  /// Malformed specs are ignored with a note.
  std::string topo;

  /// Explicit worker→cpu map (XK_CPUSET, Linux cpulist syntax: "0-3,8").
  /// Worker i binds to the i-th listed cpu (wrapping); overrides the
  /// placement policy. Empty defers to XK_CPUSET when set, else places by
  /// policy.
  std::string cpuset;

  /// Placement policy (XK_PLACE): "compact" packs a NUMA node before
  /// spilling to the next, "scatter" round-robins nodes. Empty defers to
  /// XK_PLACE when set, else compact; unknown values fall back to compact.
  std::string place;

  /// Failed same-domain steal rounds before a thief escalates its victim
  /// draw to remote locality domains (XK_STEAL_LOCAL_TRIES). 0 = never
  /// prefer local (flat victim selection over all workers).
  int steal_local_tries = 4;

  /// Shard each frame's ready list by locality domain (XK_RL_SHARD):
  /// producers push released tasks into their own domain's shard and
  /// combiners pop local-shard-first, crossing shards only when their own
  /// runs dry. Off forces one shard (the pre-sharding behavior); flat
  /// one-domain machines collapse to one shard either way.
  bool shard_ready_list = true;

  /// Ready-list locking discipline (XK_RL_LOCK=split|global|lockfree).
  /// `split` (the default) gives each frame's ReadyList a two-level
  /// scheme: a graph mutex for the dependence graph plus one lock per
  /// domain shard, so steal-path pops never contend with completions or
  /// coverage growth outside their own shard. `lockfree` keeps the graph
  /// mutex for coverage growth but replaces each shard's mutex+deque with
  /// a bounded MPMC ring (mutex-guarded side deque on overflow) and moves
  /// the completion hot path off the graph mutex entirely (lock-free
  /// task->node index, deferred live-interval retirement). `global`
  /// restores the single per-frame mutex — the pre-split behavior. Both
  /// `split` and `global` are kept byte-for-byte as ablation baselines.
  RlLockMode rl_lock = RlLockMode::kSplit;

  /// Failed local steal rounds accumulated across a *whole domain's*
  /// thieves (since the domain's last successful steal) before the domain
  /// counts as starving (XK_STARVE_ROUNDS). A starving domain's thieves
  /// skip the remainder of their per-thief XK_STEAL_LOCAL_TRIES budget and
  /// escalate to remote victims at once, and combiners deal scarce batched
  /// replies to its thieves first. 0 disables the shared signal (pure
  /// per-thief escalation, the PR 3 behavior).
  int starve_rounds = 8;

  /// Chrome trace-event output path (XK_TRACE). Non-empty arms the
  /// per-worker trace rings: every scheduler hook records into its
  /// worker's ring and Runtime::end() drains them into this file (one pid
  /// per runtime, one tid per worker; see src/obs/ and
  /// docs/OBSERVABILITY.md). Empty defers to the XK_TRACE environment
  /// variable (the topo/cpuset idiom), so directly-constructed Configs
  /// still honor a CI-provided path; empty both ways disables recording
  /// entirely — the hooks reduce to one thread-local load and a branch.
  std::string trace_path;

  /// Per-worker trace-ring capacity in events (XK_TRACE_CAP, rounded up
  /// to a power of two; one event is a cache line). The ring overwrites
  /// its oldest events on overflow — the drop count lands in the trace
  /// file. 0 defers to XK_TRACE_CAP, else 16384 (~1 MiB per worker).
  std::size_t trace_cap = 0;

  /// XK_STATS: dump the aggregated WorkerStats counters and the
  /// starvation board's per-domain gauges to stderr at every section end
  /// (Runtime::end()), so counter telemetry needs no bench harness.
  bool stats_dump = false;

  /// Maximum concurrently open parallel sections (XK_SECTIONS). Each
  /// section binds its opening thread to a master worker slot; slots
  /// beyond the first are extra Worker instances placed alongside the
  /// pool (ids >= nworkers), stealable like any other victim but never
  /// backed by a pool thread. begin() throws when every slot is busy.
  /// Clamped to >= 1. The service dispatcher claims one of these, so a
  /// client mixing Runtime::submit with its own run()/begin() sections
  /// needs at least 2 (the default).
  unsigned sections = 2;

  /// Service-mode admission control (XK_SVC_QUEUE_CAP): per-tenant queued
  /// job cap. A submit to a full tenant lane is rejected immediately
  /// (JobStatus::kRejected) instead of queued — open-loop overload sheds
  /// at the door rather than growing an unbounded backlog. 0 = unbounded.
  std::size_t svc_queue_cap = 4096;

  /// Jobs the service dispatcher spawns per scheduling burst before it
  /// re-consults the tenant scheduler (XK_SVC_BATCH). Small values track
  /// priority changes tightly; larger ones amortize queue locking.
  std::size_t svc_batch = 32;

  /// Microseconds the dispatcher keeps its section open waiting for new
  /// arrivals after the queue runs dry (XK_SVC_IDLE_US). Absorbs bursts
  /// without paying a section close/reopen per lull; after the grace the
  /// section closes and the pool parks.
  std::uint64_t svc_idle_us = 200;

  /// Jobs dispatched into one service section before it is closed and
  /// reopened (XK_SVC_SECTION_CAP). Spawned task descriptors live in the
  /// section's root frame arena until the section ends, so an unbounded
  /// section would grow memory with the job stream; recycling bounds it.
  std::size_t svc_section_cap = 8192;

  /// Per-tenant scheduling weights (XK_SVC_WEIGHTS, comma list "4,2,1"
  /// for tenants 0,1,2). Unlisted tenants weigh 1. The dispatcher picks
  /// tenants by smooth weighted round-robin over non-empty lanes, so a
  /// weight-4 tenant gets 4 of every 5 picks against a weight-1 tenant
  /// while the weight-1 lane still drains (no starvation).
  std::string svc_weights;

  /// Builds a config from XK_* environment variables layered over defaults.
  static Config from_env();

  /// Resolved worker count (never 0).
  unsigned workers() const {
    return nworkers != 0 ? nworkers : default_worker_count();
  }
};

}  // namespace xk
