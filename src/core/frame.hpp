// Frame: the per-task workqueue of §II-B.
//
// "A thread that performs a task may create child tasks and pushes them in
// its own workqueue. The workqueue is represented as a stack. The enqueue
// operation is very fast, typically about ten cycles." Each running task gets
// a frame; spawned children are appended; when the body returns (or at an
// explicit sync) the owner executes them in FIFO order.
//
// Concurrency contract:
//  * Only the owner appends tasks and advances the exec cursor.
//  * Thieves (the elected combiner, holding the worker's steal mutex) read
//    `size()` with acquire and then read published descriptors.
//  * The frame is reset only after every task reached Term and no scanner is
//    active (Worker::pop_frame implements the Dekker-style handshake).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/arena.hpp"
#include "core/task.hpp"

namespace xk {

class ReadyList;

class Frame {
 public:
  static constexpr std::uint32_t kChunkTasks = 128;

  struct Chunk {
    Task* tasks[kChunkTasks];
    std::atomic<Chunk*> next{nullptr};
  };

  Frame() = default;
  ~Frame();

  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  /// Owner-only: appends a published descriptor. The release store on the
  /// size counter is the publication point for the descriptor's contents.
  void push_task(Task* t) {
    const std::uint32_t n = ntasks_.load(std::memory_order_relaxed);
    const std::uint32_t slot = n % kChunkTasks;
    if (slot == 0 && n != 0) {
      Chunk* fresh = arena.allocate_array<Chunk>(1);
      new (fresh) Chunk();
      tail_->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
    }
    tail_->tasks[slot] = t;
    ntasks_.store(n + 1, std::memory_order_release);
    if (t->heap_owned) has_heap_tasks_ = true;
  }

  std::uint32_t size_acquire() const {
    return ntasks_.load(std::memory_order_acquire);
  }
  std::uint32_t size_relaxed() const {
    return ntasks_.load(std::memory_order_relaxed);
  }

  /// Owner-only: true while no task was ever published in this incarnation.
  /// A pristine frame is invisible to thieves in every way that matters (a
  /// scanner reads size 0 and stops), which lets Worker::pop_frame skip the
  /// seq_cst Dekker round when popping it.
  bool pristine() const { return ntasks_.load(std::memory_order_relaxed) == 0; }

  /// Sequential reader over published descriptors; valid for indexes below a
  /// previously loaded size_acquire().
  class Iterator {
   public:
    explicit Iterator(const Frame& f)
        : chunk_(&f.head_), index_(0), slot_(0) {}

    Task* get() const { return chunk_->tasks[slot_]; }
    std::uint32_t index() const { return index_; }

    void advance() {
      ++index_;
      if (++slot_ == kChunkTasks) {
        slot_ = 0;
        chunk_ = chunk_->next.load(std::memory_order_acquire);
      }
    }

    /// Moves forward to `target` (must be >= current index).
    void seek(std::uint32_t target) {
      while (index_ < target) advance();
    }

   private:
    const Chunk* chunk_;
    std::uint32_t index_;
    std::uint32_t slot_;
  };

  /// Owner-only random access (used on the FIFO execution path).
  Task* task_at(std::uint32_t i) {
    Iterator it(*this);
    it.seek(i);
    return it.get();
  }

  /// Incarnation counter: bumped by reset() so combiner-side scan caches
  /// (FrameScanState in worker.hpp) self-invalidate when a frame is
  /// recycled. Read only inside a scanning window, where the Dekker
  /// handshake in Worker::pop_frame guarantees no concurrent reset; relaxed
  /// suffices because the handshake already provides the happens-before
  /// edge. (The per-scan "skip the Term prefix" hint this replaces lived
  /// here as scan_hint; the persistent per-frame entry cache subsumes it.)
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Owner-only: recycles arena + counters. Precondition: all tasks Term and
  /// no active scanner (enforced by Worker::pop_frame).
  void reset();

  /// Ready-list accelerating structure (§II-C); attached by a combiner under
  /// the steal mutex, consulted by the Term path with a single acquire load.
  /// The list is sharded by locality domain (one ready deque per domain
  /// rank; see readylist.hpp) — callers pass their domain rank so releases
  /// and pops route through their own domain's shard first. Internally the
  /// list uses two-level graph/shard locking, or lock-free MPMC rings plus
  /// a lock-free completion index (XK_RL_LOCK); the frame never
  /// participates in that synchronization — reset()/~Frame delete the list
  /// only after the Dekker handshake excluded every scanner, so no list
  /// lock can be held or wanted (and no lock-free reader in flight) at
  /// that point. The epoch bump in reset() is the boundary every list-side
  /// cache keys off: coverage, early completions, and in lockfree mode the
  /// task->node index and deferred interval retirement.
  std::atomic<ReadyList*> ready_list{nullptr};

  /// Set by a combiner (inside the scanning window) when it steal-claims a
  /// task of this frame. The owner's pop_frame then drains in-flight reply
  /// slots before recycling: with join-side reclaim a claimed task can
  /// reach Term before the thief holding its reply ever looks at it, so
  /// the reply may dangle into this frame past the last Term. Ordering is
  /// covered by the Dekker handshake (the flag is written only while the
  /// scan window is open).
  void mark_steal_claimed() {
    // xk-order: the Dekker handshake above is the ordering edge — the
    // flag is only written inside an open scan window the owner waits out.
    steal_claimed_.store(true, std::memory_order_relaxed);
  }
  bool steal_claimed() const {
    return steal_claimed_.load(std::memory_order_relaxed);
  }

  // Owner-private FIFO dispatch cursor. Kept as a (chunk, slot) position so
  // repeated syncs on a long-lived frame (e.g. a QUARK master inserting
  // across many barriers) dispatch in O(1) instead of re-walking the chunk
  // list from the head. The hop to the next chunk is deferred until the
  // next access: at a boundary the successor chunk may not exist yet (it is
  // allocated by the push that needs it).
  std::uint32_t exec_cursor() const { return exec_index_; }
  Task* exec_current() {
    if (exec_slot_ == kChunkTasks) {
      exec_chunk_ = exec_chunk_->next.load(std::memory_order_acquire);
      exec_slot_ = 0;
    }
    return exec_chunk_->tasks[exec_slot_];
  }
  void exec_advance() {
    ++exec_index_;
    ++exec_slot_;  // may park at kChunkTasks until exec_current() hops
  }

  /// Arena holding descriptors, argument blocks and chunk storage.
  Arena arena;

 private:
  Chunk head_;
  Chunk* tail_ = &head_;
  Chunk* exec_chunk_ = &head_;
  std::uint32_t exec_index_ = 0;
  std::uint32_t exec_slot_ = 0;
  std::atomic<std::uint32_t> ntasks_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> steal_claimed_{false};
  bool has_heap_tasks_ = false;

  void delete_heap_tasks();
};

}  // namespace xk
