// Service-mode implementation: the dispatcher thread and the job wrapper
// (see service.hpp for the state machine and runtime.hpp for how master
// slots make the dispatcher's sections overlap client begin()/end() pairs).
#include "core/service.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/runtime.hpp"
#include "core/spawn.hpp"
#include "obs/trace.hpp"

namespace xk {
namespace detail {

namespace {

/// Executes one job on whichever worker claimed its task. The CAS out of
/// kQueued races only the token's cancel(); exactly one wins. Every
/// exception is captured into the job state — a job body must never leak
/// into Task::exception, where it would surface at the *dispatcher's*
/// section end instead of the submitter's token.
void run_job(JobState& st, ServiceState& svc) {
  std::uint8_t expected = static_cast<std::uint8_t>(JobStatus::kQueued);
  if (!st.status.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(JobStatus::kRunning),
          std::memory_order_acq_rel, std::memory_order_acquire)) {
    // cancel() won while the job sat queued; the token already turned
    // terminal and woke its waiters. Settle the accounting here, on the
    // executor side, so the counter writer always outlives the write.
    if (Worker* w = this_worker()) w->stats().svc_jobs_skipped++;
    svc.cancelled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t t0 = obs::span_begin();
  JobContext ctx(&st);
  try {
    // Move the body out so captured resources die at job completion, not
    // at the shared_ptr's last release (a waiter may hold the token long
    // after).
    auto fn = std::move(st.fn);
    st.fn = nullptr;
    fn(ctx);
    // Counters before finish(): a waiter woken by the terminal store must
    // already see this job in service_stats() (the release store orders
    // the increment ahead of the status flip).
    svc.completed.fetch_add(1, std::memory_order_relaxed);
    st.finish(JobStatus::kDone);
  } catch (...) {
    st.exc = std::current_exception();
    svc.failed.fetch_add(1, std::memory_order_relaxed);
    st.finish(JobStatus::kFailed);
  }
  if (Worker* w = this_worker()) w->stats().svc_jobs_run++;
  obs::emit_span(obs::Ev::kJob, t0, st.tenant);
}

}  // namespace

ServiceState::ServiceState(Runtime& runtime)
    : rt(runtime), queue(runtime.config().svc_queue_cap) {
  // XK_SVC_WEIGHTS="4,2,1" seeds tenants 0,1,2; set_tenant_weight can
  // override later. Malformed entries are skipped (env knob policy).
  const std::string& spec = rt.config().svc_weights;
  unsigned tenant = 0;
  std::size_t pos = 0;
  while (pos < spec.size() && tenant < ServiceQueue::kMaxTenants) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) {
      char* endp = nullptr;
      const long w = std::strtol(tok.c_str(), &endp, 10);
      // Upper bound alongside the sign check: a 64-bit long narrowed to
      // unsigned could wrap a huge weight to 0 and silently starve the
      // tenant the operator meant to boost.
      if (endp != tok.c_str() && w > 0 && w <= 0xffffffffL) {
        queue.set_weight(tenant, static_cast<unsigned>(w));
      }
    }
    ++tenant;
    pos = comma + 1;
  }
  thread = std::thread(&ServiceState::dispatcher_main, this);
}

ServiceState::~ServiceState() {
  stop.store(true, std::memory_order_release);
  submit_parker.notify_all();
  if (thread.joinable()) thread.join();
}

JobToken ServiceState::submit(std::function<void(JobContext&)> fn,
                              const SubmitOptions& opts) {
  auto st = std::make_shared<JobState>();
  st->fn = std::move(fn);
  st->tenant = ServiceQueue::fold_tenant(opts.tenant);
  if (stop.load(std::memory_order_acquire) || !queue.push(st)) {
    st->fn = nullptr;
    st->finish(JobStatus::kRejected);
    rejected.fetch_add(1, std::memory_order_relaxed);
    return JobToken(std::move(st));
  }
  submitted.fetch_add(1, std::memory_order_relaxed);
  JobToken token(std::move(st));
  if (submit_parker.has_waiters()) submit_parker.notify_all();
  return token;
}

ServiceStats ServiceState::stats() const {
  ServiceStats s;
  s.submitted = submitted.load(std::memory_order_relaxed);
  s.rejected = rejected.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.failed = failed.load(std::memory_order_relaxed);
  s.cancelled = cancelled.load(std::memory_order_relaxed);
  s.sections = sections.load(std::memory_order_relaxed);
  s.queued = queue.depth();
  s.max_queued = queue.max_depth();
  return s;
}

void ServiceState::spawn_job(std::shared_ptr<JobState> job) {
  ServiceState* svc = this;
  xk::spawn([job = std::move(job), svc] { run_job(*job, *svc); });
}

void ServiceState::dispatcher_main() {
  for (;;) {
    // Long park between job batches (queue empty, no section open).
    while (!stop.load(std::memory_order_acquire) && queue.depth() == 0) {
      const std::uint32_t e = submit_parker.prepare();
      submit_parker.announce();
      if (stop.load(std::memory_order_acquire) || queue.depth() != 0) {
        submit_parker.retract();
        break;
      }
      submit_parker.park(e, std::chrono::milliseconds(5));
      submit_parker.retract();
    }
    if (stop.load(std::memory_order_acquire) && queue.depth() == 0) return;
    run_open_section();
  }
  // Unreached: the loop above returns only through the stop branch — a
  // stopping dispatcher still drains the whole queue first (admission is
  // a promise; tokens must all turn terminal before ~ServiceState joins).
}

void ServiceState::run_open_section() {
  const Config& cfg = rt.config();
  const std::size_t batch = std::max<std::size_t>(cfg.svc_batch, 1);
  const std::size_t section_cap = std::max<std::size_t>(
      cfg.svc_section_cap, batch);
  // With a lone pool worker there is no thief to execute spawned jobs
  // while the dispatcher keeps feeding; sync after every burst instead.
  const bool solo = rt.nworkers() < 2;

  try {
    rt.begin();  // claims a free master slot
  } catch (const std::logic_error&) {
    // Every master slot is busy with client sections (XK_SECTIONS too
    // low for this mix). Back off and retry from the dispatcher loop —
    // the queued jobs stay admitted.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return;
  }
  sections.fetch_add(1, std::memory_order_relaxed);
  std::size_t dispatched = 0;
  for (;;) {
    std::size_t burst = 0;
    while (burst < batch && dispatched < section_cap) {
      auto job = queue.pop();
      if (!job) break;
      spawn_job(std::move(job));
      ++burst;
      ++dispatched;
    }
    if (dispatched >= section_cap) break;  // recycle the section's arena
    if (burst != 0) {
      if (solo) xk::sync();
      continue;
    }
    // Queue dry: finish what's in flight (helping the pool), then hold
    // the section open for an idle grace so a burst in progress doesn't
    // pay a close/reopen per lull.
    xk::sync();
    if (queue.depth() != 0) continue;
    if (stop.load(std::memory_order_acquire)) break;
    const std::uint32_t e = submit_parker.prepare();
    submit_parker.announce();
    if (queue.depth() == 0 && !stop.load(std::memory_order_acquire)) {
      submit_parker.park(e, std::chrono::microseconds(std::max<std::uint64_t>(
                                cfg.svc_idle_us, 1)));
    }
    submit_parker.retract();
    if (queue.depth() == 0) break;  // grace expired: close and long-park
  }
  rt.end();  // drains everything still in flight
}

}  // namespace detail

// ---- Runtime service glue (declared in runtime.hpp) -----------------------

detail::ServiceState& Runtime::service() {
  if (detail::ServiceState* s = service_live_.load(std::memory_order_acquire)) {
    return *s;
  }
  std::lock_guard lock(service_mu_);
  if (!service_) {
    service_ = std::make_unique<detail::ServiceState>(*this);
    service_live_.store(service_.get(), std::memory_order_release);
  }
  return *service_;
}

JobToken Runtime::submit(std::function<void()> fn, SubmitOptions opts) {
  return service().submit(
      [fn = std::move(fn)](JobContext&) { fn(); }, opts);
}

JobToken Runtime::submit(std::function<void(JobContext&)> fn,
                         SubmitOptions opts) {
  return service().submit(std::move(fn), opts);
}

void Runtime::set_tenant_weight(unsigned tenant, unsigned weight) {
  service().queue.set_weight(tenant, weight);
}

ServiceStats Runtime::service_stats() const {
  // const_cast-free read path: the atomic pointer is set once service()
  // constructs the state and cleared only in ~Runtime.
  if (detail::ServiceState* s = service_live_.load(std::memory_order_acquire)) {
    return s->stats();
  }
  return ServiceStats{};
}

}  // namespace xk
