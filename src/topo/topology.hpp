// Machine topology discovery and locality-aware thread placement.
//
// The paper binds workers to cores with an affinity mask (§III-C) but leaves
// *which* core to the flat worker index. On multi-socket machines that makes
// victim selection topology-blind: a thief is as likely to pull work (and
// the data behind it) across a NUMA boundary as not. This module gives the
// runtime the machine's shape so placement and victim choice can be
// locality-aware:
//
//  * `Topology` — machine → package → NUMA node → core → SMT sibling,
//    discovered from /sys/devices/system/{cpu,node}. A synthetic override
//    (`XK_TOPO=<nodes>x<cores>[x<smt>]`) lets single-box CI exercise
//    multi-node shapes deterministically.
//  * `Placement` — worker → (cpu, locality domain) map computed from the
//    topology under a policy (compact packs a node before spilling to the
//    next, scatter round-robins nodes), or taken verbatim from `XK_CPUSET`.
//  * `steal_victim_order` — the two-level victim ordering (same-domain
//    workers first) that Worker::try_steal_once draws from.
//
// A locality domain is a NUMA node. Everything here is plain data computed
// once at Runtime construction; no part of the steal hot path calls into
// this module.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace xk {

/// One logical CPU in the topology. `os_id` is what the affinity syscall
/// wants; the rest orders the cpu within the machine hierarchy.
struct TopoCpu {
  unsigned os_id = 0;    ///< OS cpu number (sysfs cpuN / synthetic index)
  unsigned node = 0;     ///< NUMA node == locality domain
  unsigned package = 0;  ///< physical package (socket)
  unsigned core = 0;     ///< machine-global core index
  unsigned smt = 0;      ///< sibling rank within the core (0 = first thread)
};

/// Parses a Linux cpulist ("0-3,8,10-11") into ascending OS cpu ids.
/// Returns nullopt on malformed input (empty, junk, inverted ranges).
std::optional<std::vector<unsigned>> parse_cpulist(const std::string& list);

class Topology {
 public:
  /// Single-node fallback shape: `ncpus` cpus, one core each, one domain.
  /// `ncpus == 0` resolves to the visible hardware thread count.
  static Topology flat(unsigned ncpus = 0);

  /// Deterministic synthetic machine: `nodes` NUMA nodes of `cores` cores
  /// with `smt` threads each. OS ids enumerate node-major, core, then smt.
  static Topology synthetic(unsigned nodes, unsigned cores, unsigned smt = 1);

  /// Parses the `XK_TOPO` spec: '+'-separated groups, each
  /// "<nodes>x<cores>[x<smt>]" (all counts >= 1). With more than one group
  /// a bare "<cores>" is shorthand for one node of that many cores, so
  /// "2+6" == "1x2+1x6" — an asymmetric two-domain machine (the shape CI
  /// uses to exercise imbalance deterministically). A single group keeps
  /// requiring the explicit "<nodes>x<cores>" form, so a stray number in
  /// XK_TOPO stays malformed. Returns nullopt on malformed input so a
  /// stray value cannot brick a run.
  static std::optional<Topology> parse_spec(const std::string& spec);

  /// Reads `<sysfs_root>/devices/system/cpu/cpu*/topology/` and
  /// `<sysfs_root>/devices/system/node/node*/cpulist`. Degrades gracefully:
  /// missing node files collapse to one domain, an unreadable tree falls
  /// back to flat(). `sysfs_root` is overridable for fixture-based tests.
  static Topology discover(const std::string& sysfs_root = "/sys");

  /// Resolves an `XK_TOPO`-style spec string: synthetic shape when `spec`
  /// is non-empty and well-formed, discover() otherwise (with an stderr
  /// note for a malformed spec, mirroring the env_int lenience). This is
  /// the single policy point the Runtime constructor goes through.
  static Topology from_spec_or_discover(const std::string& spec);

  unsigned ncpus() const { return static_cast<unsigned>(cpus_.size()); }
  unsigned nnodes() const { return static_cast<unsigned>(node_cpus_.size()); }
  unsigned ncores() const { return ncores_; }
  unsigned npackages() const { return npackages_; }

  /// True for synthetic()/parse_spec() shapes: placement and victim order
  /// derived from them are reproducible run-to-run (no machine dependence),
  /// which the topology tests and the CI topo matrix rely on.
  bool is_synthetic() const { return synthetic_; }

  /// Cpus in canonical order: (node, core, smt) ascending. Dense index
  /// `i` below refers to a position in this vector, not an OS id.
  const std::vector<TopoCpu>& cpus() const { return cpus_; }
  const TopoCpu& cpu(unsigned i) const { return cpus_[i]; }

  /// Dense cpu indexes belonging to NUMA node `n`, canonical order.
  const std::vector<unsigned>& node_cpus(unsigned n) const {
    return node_cpus_[n];
  }

  /// Dense index of the cpu with OS id `os_id`, if present.
  std::optional<unsigned> index_of_os_id(unsigned os_id) const;

 private:
  /// Normalizes raw (os_id, package, core_id, node) tuples into canonical
  /// order with dense global core indexes and SMT ranks.
  struct RawCpu {
    unsigned os_id, package, core_id, node;
  };
  static Topology build(std::vector<RawCpu> raw, bool synthetic);

  std::vector<TopoCpu> cpus_;
  std::vector<std::vector<unsigned>> node_cpus_;
  unsigned ncores_ = 0;
  unsigned npackages_ = 0;
  bool synthetic_ = false;
};

/// How Placement::compute fills the machine (`XK_PLACE`):
///  * compact — pack workers onto node 0's cpus (cores, then their SMT
///    siblings) before spilling to node 1; adjacent workers share caches.
///  * scatter — round-robin workers across nodes (distinct cores before
///    SMT siblings within each node); maximizes aggregate bandwidth.
enum class PlacePolicy { kCompact, kScatter };

/// Parses "compact"/"scatter" (case-insensitive); nullopt otherwise.
std::optional<PlacePolicy> parse_place_policy(const std::string& name);

/// The worker → (cpu, domain) map the runtime pins and steals by.
struct Placement {
  struct Slot {
    unsigned cpu_os_id = 0;   ///< bind target (mod visible cores, best-effort)
    unsigned domain = 0;      ///< locality domain (NUMA node id)
    unsigned domain_rank = 0; ///< dense domain index in [0, ndomains) — what
                              ///  ready-list shards and the starvation board
                              ///  are keyed by (node ids can be sparse, e.g.
                              ///  an XK_CPUSET spanning nodes 0 and 2)
  };

  std::vector<Slot> slots;    ///< one per worker
  unsigned ndomains = 1;      ///< distinct domains across slots
  bool deterministic = false; ///< synthetic shape: use rotating victim draw

  /// Places `nworkers` workers onto `topo` under `policy`. More workers
  /// than cpus wrap around (oversubscription keeps working).
  static Placement compute(const Topology& topo, unsigned nworkers,
                           PlacePolicy policy);

  /// Explicit `XK_CPUSET` map: worker i binds to the i-th cpu of `os_ids`
  /// (wrapping), with the domain looked up in `topo` (0 when the id is not
  /// in the topology, e.g. a cpuset wider than a synthetic shape).
  static Placement from_cpuset(const Topology& topo,
                               const std::vector<unsigned>& os_ids,
                               unsigned nworkers);
};

/// Hierarchical victim ordering for worker `self`: first every same-domain
/// worker (ascending id, rotated to start just after `self`), then remote
/// workers grouped by domain (domains ascending from self's, ids ascending
/// within each). `self` itself never appears, so a thief can never probe
/// itself. The first `nlocal` entries of `order` are the local tier.
struct VictimOrder {
  std::vector<unsigned> order;
  unsigned nlocal = 0;
};
VictimOrder steal_victim_order(const Placement& placement, unsigned self);

}  // namespace xk
