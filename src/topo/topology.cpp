#include "topo/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "support/cpu.hpp"
#include "support/env.hpp"

namespace xk {

namespace {

namespace fs = std::filesystem;

/// Strict unsigned parse of a whole string (no sign, no trailing junk).
std::optional<unsigned> parse_unsigned(const std::string& s) {
  if (s.empty()) return std::nullopt;
  unsigned long value = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 0xffffffffUL) return std::nullopt;
  }
  return static_cast<unsigned>(value);
}

/// First line of a sysfs attribute file, whitespace-trimmed.
std::optional<std::string> read_line(const fs::path& p) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back()))) {
    line.pop_back();
  }
  return line;
}

std::optional<unsigned> read_unsigned(const fs::path& p) {
  auto line = read_line(p);
  if (!line) return std::nullopt;
  return parse_unsigned(*line);
}

/// The numeric suffix of a directory entry named `<prefix><N>`.
std::optional<unsigned> dir_index(const fs::directory_entry& e,
                                  const char* prefix) {
  const std::string name = e.path().filename().string();
  const std::size_t plen = std::char_traits<char>::length(prefix);
  if (name.compare(0, plen, prefix) != 0) return std::nullopt;
  return parse_unsigned(name.substr(plen));
}

}  // namespace

std::optional<std::vector<unsigned>> parse_cpulist(const std::string& list) {
  // Linux caps NR_CPUS at 8192; anything wider is a typo, and expanding it
  // eagerly below must not be able to exhaust memory (env knobs degrade,
  // they never abort the process).
  constexpr unsigned kMaxCpuId = 8192;
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string tok = list.substr(pos, comma - pos);
    const std::size_t dash = tok.find('-');
    if (dash == std::string::npos) {
      const auto v = parse_unsigned(tok);
      if (!v || *v >= kMaxCpuId) return std::nullopt;
      out.push_back(*v);
    } else {
      const auto lo = parse_unsigned(tok.substr(0, dash));
      const auto hi = parse_unsigned(tok.substr(dash + 1));
      if (!lo || !hi || *lo > *hi || *hi >= kMaxCpuId) return std::nullopt;
      for (unsigned v = *lo; v <= *hi; ++v) out.push_back(v);
    }
    pos = comma + 1;
  }
  if (out.empty()) return std::nullopt;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Topology Topology::build(std::vector<RawCpu> raw, bool synthetic) {
  Topology t;
  t.synthetic_ = synthetic;
  if (raw.empty()) return t;

  // Canonical order: (node, package, core_id, os_id). The os_id tiebreak
  // makes SMT ranks deterministic (lowest os id = sibling 0, the Linux
  // convention for thread_siblings_list).
  std::sort(raw.begin(), raw.end(), [](const RawCpu& a, const RawCpu& b) {
    return std::tie(a.node, a.package, a.core_id, a.os_id) <
           std::tie(b.node, b.package, b.core_id, b.os_id);
  });

  std::map<std::pair<unsigned, unsigned>, unsigned> core_index;
  std::map<unsigned, unsigned> package_seen;
  unsigned max_node = 0;
  for (const RawCpu& r : raw) {
    TopoCpu c;
    c.os_id = r.os_id;
    c.node = r.node;
    c.package = r.package;
    const auto key = std::make_pair(r.package, r.core_id);
    c.core = core_index.emplace(key, static_cast<unsigned>(core_index.size()))
                 .first->second;
    package_seen.emplace(r.package, 0u);
    max_node = std::max(max_node, r.node);
    t.cpus_.push_back(c);
  }
  // SMT rank = position within the canonical run of the same core.
  for (std::size_t i = 0; i < t.cpus_.size(); ++i) {
    t.cpus_[i].smt =
        (i > 0 && t.cpus_[i - 1].core == t.cpus_[i].core)
            ? t.cpus_[i - 1].smt + 1
            : 0u;
  }
  t.ncores_ = static_cast<unsigned>(core_index.size());
  t.npackages_ = static_cast<unsigned>(package_seen.size());
  t.node_cpus_.assign(max_node + 1, {});
  for (unsigned i = 0; i < t.ncpus(); ++i) {
    t.node_cpus_[t.cpus_[i].node].push_back(i);
  }
  return t;
}

Topology Topology::flat(unsigned ncpus) {
  if (ncpus == 0) ncpus = hardware_cores();
  std::vector<RawCpu> raw;
  raw.reserve(ncpus);
  for (unsigned i = 0; i < ncpus; ++i) raw.push_back({i, 0, i, 0});
  return build(std::move(raw), /*synthetic=*/false);
}

Topology Topology::synthetic(unsigned nodes, unsigned cores, unsigned smt) {
  nodes = std::max(nodes, 1u);
  cores = std::max(cores, 1u);
  smt = std::max(smt, 1u);
  std::vector<RawCpu> raw;
  raw.reserve(static_cast<std::size_t>(nodes) * cores * smt);
  unsigned os = 0;
  for (unsigned n = 0; n < nodes; ++n) {
    for (unsigned c = 0; c < cores; ++c) {
      for (unsigned s = 0; s < smt; ++s) {
        raw.push_back({os++, n, n * cores + c, n});
      }
    }
  }
  return build(std::move(raw), /*synthetic=*/true);
}

std::optional<Topology> Topology::parse_spec(const std::string& spec) {
  // '+'-separated groups of "<nodes>x<cores>[x<smt>]". Multiple groups
  // model asymmetric machines; a bare "<cores>" group is then shorthand
  // for one node ("2+6" == "1x2+1x6"). A single group keeps the original
  // strictness: a plain number stays malformed.
  struct Group {
    unsigned nodes, cores, smt;
  };
  std::vector<Group> groups;
  const bool multi = spec.find('+') != std::string::npos;
  std::size_t gpos = 0;
  while (gpos <= spec.size()) {
    std::size_t plus = spec.find('+', gpos);
    if (plus == std::string::npos) plus = spec.size();
    const std::string group = spec.substr(gpos, plus - gpos);
    unsigned dims[3] = {0, 0, 1};
    std::size_t ndims = 0;
    std::size_t pos = 0;
    while (pos <= group.size()) {
      std::size_t x = group.find('x', pos);
      if (x == std::string::npos) x = group.size();
      if (ndims >= 3) return std::nullopt;
      const auto v = parse_unsigned(group.substr(pos, x - pos));
      if (!v || *v == 0) return std::nullopt;
      dims[ndims++] = *v;
      if (x == group.size()) break;
      pos = x + 1;
    }
    if (ndims == 1) {
      if (!multi) return std::nullopt;
      groups.push_back({1, dims[0], 1});
    } else {
      groups.push_back({dims[0], dims[1], dims[2]});
    }
    if (plus == spec.size()) break;
    gpos = plus + 1;
  }
  if (groups.empty()) return std::nullopt;

  // Enumerate node-major across groups, so node and core ids stay dense
  // and a group boundary is just the next node id.
  std::vector<RawCpu> raw;
  unsigned os = 0, node_base = 0, core_base = 0;
  for (const Group& g : groups) {
    for (unsigned n = 0; n < g.nodes; ++n) {
      for (unsigned c = 0; c < g.cores; ++c) {
        for (unsigned s = 0; s < g.smt; ++s) {
          raw.push_back(
              {os++, node_base + n, core_base + n * g.cores + c, node_base + n});
        }
      }
    }
    node_base += g.nodes;
    core_base += g.nodes * g.cores;
  }
  return build(std::move(raw), /*synthetic=*/true);
}

Topology Topology::discover(const std::string& sysfs_root) {
  std::error_code ec;
  const fs::path cpu_root = fs::path(sysfs_root) / "devices/system/cpu";

  // Pass 1: every cpuN with a topology/ directory is a visible cpu.
  std::vector<RawCpu> raw;
  for (const auto& e : fs::directory_iterator(cpu_root, ec)) {
    const auto idx = dir_index(e, "cpu");
    if (!idx) continue;
    const fs::path topo_dir = e.path() / "topology";
    if (!fs::is_directory(topo_dir, ec)) continue;
    RawCpu r;
    r.os_id = *idx;
    r.package = read_unsigned(topo_dir / "physical_package_id").value_or(0);
    r.core_id = read_unsigned(topo_dir / "core_id").value_or(*idx);
    r.node = 0;  // filled from the node tree below
    raw.push_back(r);
  }
  if (raw.empty()) return flat();

  // Pass 2: node*/cpulist maps cpus to NUMA nodes; cpus not claimed by any
  // node stay in node 0 (also the no-node-tree single-domain case).
  const fs::path node_root = fs::path(sysfs_root) / "devices/system/node";
  for (const auto& e : fs::directory_iterator(node_root, ec)) {
    const auto idx = dir_index(e, "node");
    if (!idx) continue;
    const auto line = read_line(e.path() / "cpulist");
    if (!line) continue;
    const auto cpus = parse_cpulist(*line);
    if (!cpus) continue;
    for (RawCpu& r : raw) {
      if (std::binary_search(cpus->begin(), cpus->end(), r.os_id)) {
        r.node = *idx;
      }
    }
  }
  return build(std::move(raw), /*synthetic=*/false);
}

Topology Topology::from_spec_or_discover(const std::string& spec) {
  if (!spec.empty()) {
    if (auto t = parse_spec(spec)) return *t;
    std::fprintf(stderr, "xk: ignoring malformed XK_TOPO=%s\n", spec.c_str());
  }
  return discover();
}

std::optional<unsigned> Topology::index_of_os_id(unsigned os_id) const {
  for (unsigned i = 0; i < ncpus(); ++i) {
    if (cpus_[i].os_id == os_id) return i;
  }
  return std::nullopt;
}

namespace {

/// Derives ndomains and the dense per-slot domain ranks from the slots'
/// (possibly sparse) domain ids: sorted distinct ids, rank = position.
void finalize_domains(Placement& p) {
  std::vector<unsigned> domains;
  domains.reserve(p.slots.size());
  for (const Placement::Slot& s : p.slots) domains.push_back(s.domain);
  std::sort(domains.begin(), domains.end());
  domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
  p.ndomains = std::max<unsigned>(1, static_cast<unsigned>(domains.size()));
  for (Placement::Slot& s : p.slots) {
    s.domain_rank = static_cast<unsigned>(
        std::lower_bound(domains.begin(), domains.end(), s.domain) -
        domains.begin());
  }
}

}  // namespace

std::optional<PlacePolicy> parse_place_policy(const std::string& name) {
  std::string v = name;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (v == "compact") return PlacePolicy::kCompact;
  if (v == "scatter") return PlacePolicy::kScatter;
  return std::nullopt;
}

Placement Placement::compute(const Topology& topo, unsigned nworkers,
                             PlacePolicy policy) {
  Placement p;
  p.deterministic = topo.is_synthetic();
  if (topo.ncpus() == 0 || nworkers == 0) {
    p.slots.assign(nworkers, Slot{});
    finalize_domains(p);
    return p;
  }

  // Per-node fill order: distinct cores before their SMT siblings, so a
  // worker count at or below the core count never doubles up a core (and
  // the default compact placement on a flat SMT machine reduces to the old
  // worker-i -> cpu-i mapping, where Linux enumerates distinct cores
  // first).
  std::vector<std::vector<unsigned>> per_node;
  for (unsigned n = 0; n < topo.nnodes(); ++n) {
    std::vector<unsigned> cpus = topo.node_cpus(n);
    std::stable_sort(cpus.begin(), cpus.end(), [&](unsigned a, unsigned b) {
      return topo.cpu(a).smt < topo.cpu(b).smt;
    });
    if (!cpus.empty()) per_node.push_back(std::move(cpus));
  }

  // Fill order over dense cpu indexes: compact concatenates the node fills
  // (pack node 0 before spilling into node 1), scatter deals one cpu per
  // node round-robin.
  std::vector<unsigned> order;
  order.reserve(topo.ncpus());
  if (policy == PlacePolicy::kCompact) {
    for (const std::vector<unsigned>& cpus : per_node) {
      order.insert(order.end(), cpus.begin(), cpus.end());
    }
  } else {
    std::vector<std::size_t> cursor(per_node.size(), 0);
    while (order.size() < topo.ncpus()) {
      for (std::size_t n = 0; n < per_node.size(); ++n) {
        if (cursor[n] < per_node[n].size()) {
          order.push_back(per_node[n][cursor[n]++]);
        }
      }
    }
  }

  p.slots.resize(nworkers);
  for (unsigned w = 0; w < nworkers; ++w) {
    const TopoCpu& c = topo.cpu(order[w % order.size()]);
    p.slots[w].cpu_os_id = c.os_id;
    p.slots[w].domain = c.node;
  }
  finalize_domains(p);
  return p;
}

Placement Placement::from_cpuset(const Topology& topo,
                                 const std::vector<unsigned>& os_ids,
                                 unsigned nworkers) {
  Placement p;
  p.deterministic = topo.is_synthetic();
  p.slots.resize(nworkers);
  if (os_ids.empty()) return p;
  for (unsigned w = 0; w < nworkers; ++w) {
    const unsigned os = os_ids[w % os_ids.size()];
    unsigned domain = 0;
    if (auto idx = topo.index_of_os_id(os)) domain = topo.cpu(*idx).node;
    p.slots[w].cpu_os_id = os;
    p.slots[w].domain = domain;
  }
  finalize_domains(p);
  return p;
}

VictimOrder steal_victim_order(const Placement& placement, unsigned self) {
  VictimOrder vo;
  const auto nw = static_cast<unsigned>(placement.slots.size());
  if (nw < 2 || self >= nw) return vo;
  const unsigned home = placement.slots[self].domain;

  // Local tier: same-domain workers, ascending id rotated to start just
  // after self (so two local thieves don't hammer the same first victim).
  for (unsigned k = 1; k < nw; ++k) {
    const unsigned w = (self + k) % nw;
    if (placement.slots[w].domain == home) vo.order.push_back(w);
  }
  vo.nlocal = static_cast<unsigned>(vo.order.size());

  // Remote tier: group by domain, domains ascending starting just above
  // self's (wrapping), ids ascending within a domain.
  std::vector<unsigned> domains;
  for (const Placement::Slot& s : placement.slots) {
    if (s.domain != home) domains.push_back(s.domain);
  }
  std::sort(domains.begin(), domains.end());
  domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
  std::stable_partition(domains.begin(), domains.end(),
                        [&](unsigned d) { return d > home; });
  for (unsigned d : domains) {
    for (unsigned w = 0; w < nw; ++w) {
      if (w != self && placement.slots[w].domain == d) vo.order.push_back(w);
    }
  }
  return vo;
}

}  // namespace xk
