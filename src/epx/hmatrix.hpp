// Condensation of the kinematic constraints onto Lagrange multipliers —
// EPX's H matrix (§I, §IV-B): "sparse Cholesky factorization of the
// so-called H matrix, obtained from the condensation of dynamic equilibrium
// equations onto Lagrange multipliers, in a Skyline representation".
//
// With unilateral contact constraints C (one row per active node-facet
// pair) and lumped masses M, the condensed operator is H = C M^{-1} C^T:
// H[i][j] is nonzero exactly when constraints i and j share a node, so
// ordering the multipliers by slave node index yields the banded/skyline
// profile this module assembles directly into a BlockSkylineMatrix.
#pragma once

#include <vector>

#include "epx/kernels.hpp"
#include "epx/mesh.hpp"
#include "skyline/skyline.hpp"

namespace xk::epx {

/// Assembled condensed system: H (block skyline) plus the right-hand side
/// b_i = -(C v)_i / dt - penetration correction, ready for factor + solve.
struct CondensedSystem {
  skyline::BlockSkylineMatrix h;
  std::vector<double> rhs;
  std::vector<Constraint> constraints;  // row order of H
};

/// Builds H = C M^{-1} C^T and the contact right-hand side from the active
/// constraints (sorted by slave node to keep the profile tight). `bs` is
/// the skyline block size (the paper's BS); `dt` scales the gap-rate RHS.
CondensedSystem build_condensed_system(const Mesh& mesh,
                                       std::vector<Constraint> constraints,
                                       int bs, double dt);

/// Applies the solved multipliers as velocity impulses:
/// v += M^{-1} C^T lambda.
void apply_multipliers(Mesh& mesh, const CondensedSystem& sys,
                       const std::vector<double>& lambda);

}  // namespace xk::epx
