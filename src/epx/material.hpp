// Elasto-plastic material update for the LOOPELM kernel.
//
// A simplified small-strain von-Mises model with isotropic hardening and an
// iterative radial-return mapping. The iteration count is the knob that
// makes MEPPEN's elements expensive and irregular (dynamic buckling: "large
// ratios between finite elements", §IV) and MAXPLANE's cheap and regular.
// The physics is deliberately minimal; what matters for the reproduction is
// the kernel's arithmetic intensity and its per-element cost variance.
#pragma once

#include <array>

namespace xk::epx {

struct Material {
  double young = 2.1e11;
  double shear = 8.0e10;
  double bulk = 1.6e11;
  double yield0 = 2.5e8;
  double hardening = 1.0e9;
};

/// Per-element persistent state: Voigt stress + accumulated plastic strain.
struct ElemState {
  std::array<double, 6> stress{};  // xx yy zz xy yz zx
  double eps_plastic = 0.0;
};

/// Returns the two materials of the mini-app (0: steel-like, 1: composite-
/// ply-like with lower stiffness/yield).
const Material& material(int id);

/// Updates `state` from a Voigt strain increment; `return_iters` controls
/// the radial-return cost (≥1). Returns the von-Mises stress after update
/// (diagnostics). Deterministic: no branches depend on anything but the
/// inputs.
double material_update(const Material& mat, ElemState& state,
                       const std::array<double, 6>& dstrain, int return_iters);

}  // namespace xk::epx
