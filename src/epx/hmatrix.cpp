#include "epx/hmatrix.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace xk::epx {

namespace {

/// Degrees of freedom touched by one constraint row: the slave node with
/// weight 1 along the normal, (deformable facets) the four facet nodes with
/// weight -1/4, and an optional structurally-coupled partner node (the
/// through-thickness neighbour) that chains adjacent interfaces together.
struct RowDofs {
  int nodes[6];
  double weight[6];
  int count = 0;
};

RowDofs row_dofs(const Constraint& c) {
  RowDofs r;
  r.nodes[r.count] = c.node;
  r.weight[r.count] = 1.0;
  ++r.count;
  if (c.facet_nodes[0] >= 0) {
    for (int n : c.facet_nodes) {
      r.nodes[r.count] = n;
      r.weight[r.count] = -0.25;
      ++r.count;
    }
  }
  if (c.partner >= 0) {
    r.nodes[r.count] = c.partner;
    r.weight[r.count] = 0.5;
    ++r.count;
  }
  return r;
}

/// H[i][j] = sum over shared nodes of w_i w_j (n_i . n_j) / m_node.
double h_entry(const Mesh& mesh, const Constraint& ci, const RowDofs& ri,
               const Constraint& cj, const RowDofs& rj) {
  const double ndot = ci.normal.x * cj.normal.x + ci.normal.y * cj.normal.y +
                      ci.normal.z * cj.normal.z;
  double sum = 0.0;
  for (int a = 0; a < ri.count; ++a) {
    for (int b = 0; b < rj.count; ++b) {
      if (ri.nodes[a] != rj.nodes[b]) continue;
      sum += ri.weight[a] * rj.weight[b] * ndot /
             mesh.mass[static_cast<std::size_t>(ri.nodes[a])];
    }
  }
  return sum;
}

}  // namespace

CondensedSystem build_condensed_system(const Mesh& mesh,
                                       std::vector<Constraint> constraints,
                                       int bs, double dt) {
  // Multipliers ordered by the scenario's sort key (spatial by default):
  // neighbouring constraints share nodes, so the profile stays close to the
  // interface bandwidth even when several interfaces couple.
  std::sort(constraints.begin(), constraints.end(),
            [](const Constraint& a, const Constraint& b) {
              return a.sort_key != b.sort_key ? a.sort_key < b.sort_key
                                              : a.node < b.node;
            });
  const int m = static_cast<int>(constraints.size());

  std::vector<RowDofs> dofs;
  dofs.reserve(constraints.size());
  for (const Constraint& c : constraints) dofs.push_back(row_dofs(c));

  // Exact row profile: jmin[i] = first j whose row shares a node with i =
  // min over i's nodes of the first constraint using that node.
  std::vector<int> jmin(static_cast<std::size_t>(m), 0);
  {
    std::unordered_map<int, int> first_use;
    first_use.reserve(static_cast<std::size_t>(m) * 5);
    for (int i = 0; i < m; ++i) {
      int first = i;
      const RowDofs& r = dofs[static_cast<std::size_t>(i)];
      for (int a = 0; a < r.count; ++a) {
        const auto [it, inserted] = first_use.try_emplace(r.nodes[a], i);
        first = std::min(first, it->second);
      }
      jmin[static_cast<std::size_t>(i)] = first;
    }
  }

  // Blockify the profile (skyline fill-in closure needs monotone coverage:
  // a block row's bjmin is the min over its scalar rows).
  const int nbk = std::max(1, (m + bs - 1) / bs);
  std::vector<int> bjmin(static_cast<std::size_t>(nbk), 0);
  for (int bi = 0; bi < nbk; ++bi) {
    int lo = bi;
    for (int i = bi * bs; i < std::min(m, (bi + 1) * bs); ++i) {
      lo = std::min(lo, jmin[static_cast<std::size_t>(i)] / bs);
    }
    bjmin[static_cast<std::size_t>(bi)] = lo;
  }

  CondensedSystem sys{
      skyline::BlockSkylineMatrix(std::max(1, m), bs, std::move(bjmin)),
      std::vector<double>(static_cast<std::size_t>(std::max(1, m)), 0.0),
      std::move(constraints)};

  // Assemble entries (lower triangle within the profile) + SPD-stabilizing
  // diagonal regularization (unilateral contact sets can be rank-deficient).
  for (int i = 0; i < m; ++i) {
    const Constraint& ci = sys.constraints[static_cast<std::size_t>(i)];
    for (int j = jmin[static_cast<std::size_t>(i)]; j <= i; ++j) {
      const double v = h_entry(mesh, ci, dofs[static_cast<std::size_t>(i)],
                               sys.constraints[static_cast<std::size_t>(j)],
                               dofs[static_cast<std::size_t>(j)]);
      if (v == 0.0 && i != j) continue;
      const int bi = i / bs, bj = j / bs;
      double* blk = sys.h.block(bi, bj);
      blk[(i % bs) + (j % bs) * bs] = v;
      if (bi == bj && i != j) blk[(j % bs) + (i % bs) * bs] = v;
    }
    double* diag = sys.h.block(i / bs, i / bs);
    diag[(i % bs) * (bs + 1)] += 1e-9 + 1e-3 / mesh.mass[static_cast<std::size_t>(ci.node)];
  }
  // Identity padding for the tail of the last block.
  for (int i = m; i < sys.h.nbk() * bs; ++i) {
    double* diag = sys.h.block(i / bs, i / bs);
    diag[(i % bs) * (bs + 1)] = 1.0;
  }

  // RHS: approach-velocity rate (the constraint must cancel the normal
  // closing velocity) plus a penetration pushback.
  for (int i = 0; i < m; ++i) {
    const Constraint& c = sys.constraints[static_cast<std::size_t>(i)];
    const RowDofs& r = dofs[static_cast<std::size_t>(i)];
    double vn = 0.0;
    for (int a = 0; a < r.count; ++a) {
      const Vec3& v = mesh.v[static_cast<std::size_t>(r.nodes[a])];
      vn += r.weight[a] *
            (v.x * c.normal.x + v.y * c.normal.y + v.z * c.normal.z);
    }
    const double pushback = c.gap < 0.0 ? -0.1 * c.gap / dt : 0.0;
    // Only resist approach (unilateral): clamp separating constraints to 0.
    sys.rhs[static_cast<std::size_t>(i)] = vn < 0.0 ? -vn + pushback : pushback;
  }
  return sys;
}

void apply_multipliers(Mesh& mesh, const CondensedSystem& sys,
                       const std::vector<double>& lambda) {
  const int m = static_cast<int>(sys.constraints.size());
  for (int i = 0; i < m; ++i) {
    // Unilateral contact: only push, never glue.
    const double l = std::max(0.0, lambda[static_cast<std::size_t>(i)]);
    if (l == 0.0) continue;
    const Constraint& c = sys.constraints[static_cast<std::size_t>(i)];
    const RowDofs r = row_dofs(c);
    for (int a = 0; a < r.count; ++a) {
      const auto n = static_cast<std::size_t>(r.nodes[a]);
      const double s = l * r.weight[a] / mesh.mass[n];
      mesh.v[n].x += s * c.normal.x;
      mesh.v[n].y += s * c.normal.y;
      mesh.v[n].z += s * c.normal.z;
    }
  }
}

}  // namespace xk::epx
