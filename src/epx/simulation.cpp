#include "epx/simulation.hpp"

#include <cmath>

#include "core/xkaapi.hpp"
#include "skyline/factor.hpp"
#include "support/timing.hpp"

namespace xk::epx {

double state_checksum(const Mesh& mesh) {
  // Order-fixed Kahan-free sum with index mixing: any schedule-dependent
  // divergence in x or v changes the value.
  double sum = 0.0;
  for (int n = 0; n < mesh.nnodes(); ++n) {
    const Vec3& p = mesh.x[static_cast<std::size_t>(n)];
    const Vec3& v = mesh.v[static_cast<std::size_t>(n)];
    const double w = 1.0 + (n % 17) * 1e-3;
    sum += w * (p.x + 2.0 * p.y + 3.0 * p.z) +
           w * 1e-4 * (v.x + 2.0 * v.y + 3.0 * v.z);
  }
  return sum;
}

PhaseTimes simulate(Scenario& scenario, int steps, const SimOptions& opt) {
  Mesh& mesh = scenario.mesh;
  const double dt = scenario.dt;
  const LoopRunner run = opt.loop ? opt.loop : seq_runner();
  const int repera_every =
      opt.repera_every > 0 ? opt.repera_every : scenario.repera_every;

  PhaseTimes times;
  LoopelmState elm;
  elm.resize(mesh.nelems());
  ReperaState rep;
  std::vector<Constraint> constraints;

  const bool own_section = opt.rt != nullptr && !opt.rt->in_section();
  if (own_section) opt.rt->begin();

  Timer phase;
  for (int step = 0; step < steps; ++step) {
    // --- LOOPELM: internal forces --------------------------------------
    phase.reset();
    loopelm(mesh, elm, dt, scenario.material_iters, run);
    times.loopelm += phase.seconds();

    // --- REPERA: contact candidates (cadenced) --------------------------
    if (step % repera_every == 0) {
      phase.reset();
      repera(mesh, rep, run);
      times.repera += phase.seconds();

      phase.reset();
      constraints = select_constraints(mesh, rep);
      times.other += phase.seconds();
    }

    // --- integrate free velocities (central difference) -----------------
    phase.reset();
    for (int n = 0; n < mesh.nnodes(); ++n) {
      const auto i = static_cast<std::size_t>(n);
      const double inv_m = 1.0 / mesh.mass[i];
      mesh.v[i].x += dt * (mesh.f_ext[i].x - mesh.f_int[i].x) * inv_m;
      mesh.v[i].y += dt * (mesh.f_ext[i].y - mesh.f_int[i].y) * inv_m;
      mesh.v[i].z += dt * (mesh.f_ext[i].z - mesh.f_int[i].z) * inv_m;
    }
    times.other += phase.seconds();

    // --- condensed contact system: build (other) + factor/solve (chol) --
    if (!constraints.empty()) {
      phase.reset();
      CondensedSystem sys = build_condensed_system(
          mesh, constraints, scenario.cholesky_block, dt);
      times.other += phase.seconds();

      phase.reset();
      int info;
      if (opt.rt != nullptr) {
        info = skyline::factor_xkaapi(sys.h, *opt.rt);
      } else {
        info = skyline::factor_sequential(sys.h);
      }
      std::vector<double> lambda(sys.rhs.size(), 0.0);
      if (info == 0) {
        skyline::solve_factored(sys.h, sys.rhs.data(), lambda.data());
      }
      times.cholesky += phase.seconds();
      times.factorizations++;
      times.constraints_total +=
          static_cast<std::int64_t>(sys.constraints.size());

      phase.reset();
      apply_multipliers(mesh, sys, lambda);
      times.other += phase.seconds();
    }

    // --- advance positions ----------------------------------------------
    phase.reset();
    for (int n = 0; n < mesh.nnodes(); ++n) {
      const auto i = static_cast<std::size_t>(n);
      mesh.x[i].x += dt * mesh.v[i].x;
      mesh.x[i].y += dt * mesh.v[i].y;
      mesh.x[i].z += dt * mesh.v[i].z;
    }
    times.other += phase.seconds();
    times.steps++;
  }

  if (own_section) opt.rt->end();
  return times;
}

}  // namespace xk::epx
