#include "epx/kernels.hpp"

#include <algorithm>
#include <cmath>


#include "core/foreach.hpp"

namespace xk::epx {

LoopRunner seq_runner() {
  return [](std::int64_t n,
            const std::function<void(std::int64_t, std::int64_t)>& body) {
    body(0, n);
  };
}

LoopRunner xkaapi_runner(std::int64_t grain) {
  return [grain](std::int64_t n,
                 const std::function<void(std::int64_t, std::int64_t)>& body) {
    ForeachOptions opt;
    opt.grain = grain;
    xk::parallel_for(
        0, n, [&body](std::int64_t lo, std::int64_t hi) { body(lo, hi); },
        opt);
  };
}

// ---------------------------------------------------------------------------
// LOOPELM
// ---------------------------------------------------------------------------

namespace {

// Corner sets of the +x / +y / +z faces for the structured hex ordering of
// make_box (0..3 bottom CCW, 4..7 top).
constexpr int kFaceXP[4] = {1, 2, 5, 6};
constexpr int kFaceXM[4] = {0, 3, 4, 7};
constexpr int kFaceYP[4] = {2, 3, 6, 7};
constexpr int kFaceYM[4] = {0, 1, 4, 5};
constexpr int kFaceZP[4] = {4, 5, 6, 7};
constexpr int kFaceZM[4] = {0, 1, 2, 3};

struct Gather {
  Vec3 x[8];
  Vec3 x0[8];
  Vec3 v[8];
};

double face_avg(const Vec3* p, const int idx[4], double Vec3::*comp) {
  return 0.25 * (p[idx[0]].*comp + p[idx[1]].*comp + p[idx[2]].*comp +
                 p[idx[3]].*comp);
}

}  // namespace

void loopelm(Mesh& mesh, LoopelmState& state, double dt, int material_iters,
             const LoopRunner& run) {
  const auto nelems = static_cast<std::int64_t>(mesh.nelems());

  // Phase A: independent loop over elements (the paper's LOOPELM proper).
  run(nelems, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t e = lo; e < hi; ++e) {
      const auto& conn = mesh.elems[static_cast<std::size_t>(e)];
      Gather g;
      for (int c = 0; c < 8; ++c) {
        const auto n = static_cast<std::size_t>(conn[static_cast<std::size_t>(c)]);
        g.x[c] = mesh.x[n];
        g.x0[c] = mesh.x0[n];
        g.v[c] = mesh.v[n];
      }
      // Reference edge lengths.
      const double hx = face_avg(g.x0, kFaceXP, &Vec3::x) -
                        face_avg(g.x0, kFaceXM, &Vec3::x);
      const double hy = face_avg(g.x0, kFaceYP, &Vec3::y) -
                        face_avg(g.x0, kFaceYM, &Vec3::y);
      const double hz = face_avg(g.x0, kFaceZP, &Vec3::z) -
                        face_avg(g.x0, kFaceZM, &Vec3::z);
      // Velocity-gradient proxy from face-averaged velocities.
      const double dvxdx = (face_avg(g.v, kFaceXP, &Vec3::x) -
                            face_avg(g.v, kFaceXM, &Vec3::x)) / hx;
      const double dvydy = (face_avg(g.v, kFaceYP, &Vec3::y) -
                            face_avg(g.v, kFaceYM, &Vec3::y)) / hy;
      const double dvzdz = (face_avg(g.v, kFaceZP, &Vec3::z) -
                            face_avg(g.v, kFaceZM, &Vec3::z)) / hz;
      const double dvxdy = (face_avg(g.v, kFaceYP, &Vec3::x) -
                            face_avg(g.v, kFaceYM, &Vec3::x)) / hy;
      const double dvydx = (face_avg(g.v, kFaceXP, &Vec3::y) -
                            face_avg(g.v, kFaceXM, &Vec3::y)) / hx;
      const double dvydz = (face_avg(g.v, kFaceZP, &Vec3::y) -
                            face_avg(g.v, kFaceZM, &Vec3::y)) / hz;
      const double dvzdy = (face_avg(g.v, kFaceYP, &Vec3::z) -
                            face_avg(g.v, kFaceYM, &Vec3::z)) / hy;
      const double dvzdx = (face_avg(g.v, kFaceXP, &Vec3::z) -
                            face_avg(g.v, kFaceXM, &Vec3::z)) / hx;
      const double dvxdz = (face_avg(g.v, kFaceZP, &Vec3::x) -
                            face_avg(g.v, kFaceZM, &Vec3::x)) / hz;

      const std::array<double, 6> dstrain = {
          dvxdx * dt,           dvydy * dt,           dvzdz * dt,
          (dvxdy + dvydx) * dt, (dvydz + dvzdy) * dt, (dvzdx + dvxdz) * dt};

      ElemState& es = state.elem_state[static_cast<std::size_t>(e)];
      const Material& mat =
          material(mesh.elem_material[static_cast<std::size_t>(e)]);
      material_update(mat, es, dstrain, material_iters);

      // Nodal forces: stress times face areas, distributed to face corners.
      const double ax = hy * hz / 4.0, ay = hx * hz / 4.0, az = hx * hy / 4.0;
      auto& f = state.elem_force[static_cast<std::size_t>(e)];
      f.fill(0.0);
      auto add = [&](const int idx[4], int comp, double val) {
        for (int c = 0; c < 4; ++c) f[static_cast<std::size_t>(idx[c] * 3 + comp)] += val;
      };
      const auto& s = es.stress;
      // Normal components.
      add(kFaceXP, 0, -s[0] * ax);
      add(kFaceXM, 0, +s[0] * ax);
      add(kFaceYP, 1, -s[1] * ay);
      add(kFaceYM, 1, +s[1] * ay);
      add(kFaceZP, 2, -s[2] * az);
      add(kFaceZM, 2, +s[2] * az);
      // Shear components (xy, yz, zx).
      add(kFaceXP, 1, -s[3] * ax);
      add(kFaceXM, 1, +s[3] * ax);
      add(kFaceYP, 0, -s[3] * ay);
      add(kFaceYM, 0, +s[3] * ay);
      add(kFaceYP, 2, -s[4] * ay);
      add(kFaceYM, 2, +s[4] * ay);
      add(kFaceZP, 1, -s[4] * az);
      add(kFaceZM, 1, +s[4] * az);
      add(kFaceZP, 0, -s[5] * az);
      add(kFaceZM, 0, +s[5] * az);
      add(kFaceXP, 2, -s[5] * ax);
      add(kFaceXM, 2, +s[5] * ax);
    }
  });

  // Phase B: independent loop over nodes — deterministic assembly through
  // the incidence table (fixed order regardless of schedule).
  const auto nnodes = static_cast<std::int64_t>(mesh.nnodes());
  run(nnodes, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t n = lo; n < hi; ++n) {
      Vec3 acc;
      for (const Mesh::Incidence& inc :
           mesh.node_elems[static_cast<std::size_t>(n)]) {
        const auto& f = state.elem_force[static_cast<std::size_t>(inc.elem)];
        acc.x += f[static_cast<std::size_t>(inc.corner * 3 + 0)];
        acc.y += f[static_cast<std::size_t>(inc.corner * 3 + 1)];
        acc.z += f[static_cast<std::size_t>(inc.corner * 3 + 2)];
      }
      mesh.f_int[static_cast<std::size_t>(n)] = acc;
    }
  });
}

// ---------------------------------------------------------------------------
// REPERA
// ---------------------------------------------------------------------------

namespace {

/// Dense cell grid over the facet bounding box: probes are pure index
/// arithmetic (facet sets are compact surfaces, so the box stays small).
struct FlatGrid {
  double cell = 1.0;
  Vec3 lo;
  int nx = 1, ny = 1, nz = 1;
  std::vector<std::vector<int>> cells;

  void build(const std::vector<Vec3>& centers, double cell_size) {
    cell = cell_size;
    Vec3 hi{-1e300, -1e300, -1e300};
    lo = Vec3{1e300, 1e300, 1e300};
    for (const Vec3& c : centers) {
      lo.x = std::min(lo.x, c.x);
      lo.y = std::min(lo.y, c.y);
      lo.z = std::min(lo.z, c.z);
      hi.x = std::max(hi.x, c.x);
      hi.y = std::max(hi.y, c.y);
      hi.z = std::max(hi.z, c.z);
    }
    if (centers.empty()) lo = hi = Vec3{};
    nx = static_cast<int>((hi.x - lo.x) / cell) + 1;
    ny = static_cast<int>((hi.y - lo.y) / cell) + 1;
    nz = static_cast<int>((hi.z - lo.z) / cell) + 1;
    cells.assign(static_cast<std::size_t>(nx) * ny * nz, {});
    for (std::size_t fi = 0; fi < centers.size(); ++fi) {
      cells[index_of(centers[fi])].push_back(static_cast<int>(fi));
    }
  }

  std::size_t index_of(const Vec3& p) const {
    const int ix = clampi(static_cast<int>((p.x - lo.x) / cell), nx);
    const int iy = clampi(static_cast<int>((p.y - lo.y) / cell), ny);
    const int iz = clampi(static_cast<int>((p.z - lo.z) / cell), nz);
    return (static_cast<std::size_t>(iz) * ny + iy) * nx + ix;
  }

  /// Cell at offset (dx,dy,dz) from p's cell; nullptr when outside the box.
  const std::vector<int>* cell_at(const Vec3& p, int dx, int dy,
                                  int dz) const {
    const int ix = static_cast<int>(std::floor((p.x - lo.x) / cell)) + dx;
    const int iy = static_cast<int>(std::floor((p.y - lo.y) / cell)) + dy;
    const int iz = static_cast<int>(std::floor((p.z - lo.z) / cell)) + dz;
    if (ix < 0 || ix >= nx || iy < 0 || iy >= ny || iz < 0 || iz >= nz) {
      return nullptr;
    }
    return &cells[(static_cast<std::size_t>(iz) * ny + iy) * nx + ix];
  }

  static int clampi(int v, int n) { return v < 0 ? 0 : (v >= n ? n - 1 : v); }
};

double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

Vec3 sub(const Vec3& a, const Vec3& b) {
  return Vec3{a.x - b.x, a.y - b.y, a.z - b.z};
}

}  // namespace

void repera(const Mesh& mesh, ReperaState& out, const LoopRunner& run) {
  out.total = 0;
  std::size_t slots = 0;
  for (const ContactSurface& cs : mesh.contacts) slots += cs.slave_nodes.size();
  // resize (not assign) keeps each per-slave list's capacity across the
  // periodic searches — the lists are cleared in the slave loop below.
  out.candidates.resize(slots);

  std::size_t slot_base = 0;
  for (std::size_t si = 0; si < mesh.contacts.size(); ++si) {
    const ContactSurface& cs = mesh.contacts[si];

    // Refresh facet geometry and build the spatial hash (cheap vs the node
    // loop; kept serial like EPX's bucket build).
    std::vector<Vec3> centers(cs.facets.size());
    std::vector<Vec3> normals(cs.facets.size());
    double avg_size = 0.0;
    for (std::size_t fi = 0; fi < cs.facets.size(); ++fi) {
      const Facet& f = cs.facets[fi];
      if (f.nodes[0] < 0) {
        centers[fi] = f.center;  // rigid facet: static geometry
        normals[fi] = f.normal;
        avg_size += 2.0 * cs.gap_tolerance;
        continue;
      }
      Vec3 c;
      for (int n : f.nodes) {
        const Vec3& p = mesh.x[static_cast<std::size_t>(n)];
        c.x += 0.25 * p.x;
        c.y += 0.25 * p.y;
        c.z += 0.25 * p.z;
      }
      centers[fi] = c;
      // Normal from the two diagonals.
      const Vec3 d1 = sub(mesh.x[static_cast<std::size_t>(f.nodes[2])],
                          mesh.x[static_cast<std::size_t>(f.nodes[0])]);
      const Vec3 d2 = sub(mesh.x[static_cast<std::size_t>(f.nodes[3])],
                          mesh.x[static_cast<std::size_t>(f.nodes[1])]);
      Vec3 nrm{d1.y * d2.z - d1.z * d2.y, d1.z * d2.x - d1.x * d2.z,
               d1.x * d2.y - d1.y * d2.x};
      const double len =
          std::sqrt(nrm.x * nrm.x + nrm.y * nrm.y + nrm.z * nrm.z);
      if (len > 0.0) {
        nrm.x /= len;
        nrm.y /= len;
        nrm.z /= len;
      }
      normals[fi] = nrm;
      avg_size += std::sqrt(len);  // ~facet edge scale
    }
    avg_size = cs.facets.empty() ? 1.0 : avg_size / static_cast<double>(cs.facets.size());

    FlatGrid grid;
    grid.build(centers, std::max(avg_size, 1.5 * cs.gap_tolerance));

    // The independent slave-node loop: probe 27 cells, compute distances,
    // keep close candidates, sort by (distance, facet).
    const double radius2 = 1.5 * grid.cell * 1.5 * grid.cell;
    const auto nslaves = static_cast<std::int64_t>(cs.slave_nodes.size());
    run(nslaves, [&, slot_base, si](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t s = lo; s < hi; ++s) {
        const int node = cs.slave_nodes[static_cast<std::size_t>(s)];
        const Vec3& p = mesh.x[static_cast<std::size_t>(node)];
        auto& list = out.candidates[slot_base + static_cast<std::size_t>(s)];
        list.clear();
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const std::vector<int>* cell = grid.cell_at(p, dx, dy, dz);
              if (cell == nullptr) continue;
              for (int fi : *cell) {
                const Vec3 d = sub(p, centers[static_cast<std::size_t>(fi)]);
                const double d2 = dot(d, d);
                if (d2 < radius2) {
                  list.push_back(ContactCandidate{node, static_cast<int>(si),
                                                  fi, std::sqrt(d2)});
                }
              }
            }
          }
        }
        std::sort(list.begin(), list.end(),
                  [](const ContactCandidate& a, const ContactCandidate& b) {
                    return a.distance != b.distance ? a.distance < b.distance
                                                    : a.facet < b.facet;
                  });
      }
    });
    for (std::size_t s = 0; s < cs.slave_nodes.size(); ++s) {
      out.total += out.candidates[slot_base + s].size();
    }
    slot_base += cs.slave_nodes.size();
  }
}

std::vector<Constraint> select_constraints(const Mesh& mesh,
                                           const ReperaState& candidates) {
  std::vector<Constraint> active;
  // Recover (surface, slave index) from the flat slot layout of repera().
  std::vector<std::size_t> slot_bases;
  std::size_t base = 0;
  for (const ContactSurface& cs : mesh.contacts) {
    slot_bases.push_back(base);
    base += cs.slave_nodes.size();
  }
  for (std::size_t slot = 0; slot < candidates.candidates.size(); ++slot) {
    const auto& list = candidates.candidates[slot];
    if (list.empty()) continue;
    const ContactCandidate& best = list.front();
    const ContactSurface& cs =
        mesh.contacts[static_cast<std::size_t>(best.surface)];
    const std::size_t slave_idx =
        slot - slot_bases[static_cast<std::size_t>(best.surface)];
    const Facet& f = cs.facets[static_cast<std::size_t>(best.facet)];
    // Signed gap along the facet normal.
    Vec3 center = f.center;
    if (f.nodes[0] >= 0) {
      center = Vec3{};
      for (int n : f.nodes) {
        const Vec3& p = mesh.x[static_cast<std::size_t>(n)];
        center.x += 0.25 * p.x;
        center.y += 0.25 * p.y;
        center.z += 0.25 * p.z;
      }
    }
    const Vec3& p = mesh.x[static_cast<std::size_t>(best.node)];
    const double gap = (p.x - center.x) * f.normal.x +
                       (p.y - center.y) * f.normal.y +
                       (p.z - center.z) * f.normal.z;
    if (gap < cs.gap_tolerance) {
      Constraint c;
      c.node = best.node;
      c.normal = f.normal;
      c.facet_nodes = f.nodes;
      c.gap = gap;
      c.partner =
          cs.slave_partners.empty() ? -1 : cs.slave_partners[slave_idx];
      c.sort_key = cs.slave_sort_keys.empty()
                       ? static_cast<long>(best.node)
                       : cs.slave_sort_keys[slave_idx];
      active.push_back(c);
    }
  }
  return active;
}

}  // namespace xk::epx
