#include "epx/material.hpp"

#include <cmath>

namespace xk::epx {

const Material& material(int id) {
  static const Material kSteel{2.1e11, 8.0e10, 1.6e11, 2.5e8, 1.0e9};
  static const Material kPly{7.0e10, 2.6e10, 5.0e10, 6.0e8, 2.0e9};
  return id == 0 ? kSteel : kPly;
}

double material_update(const Material& mat, ElemState& state,
                       const std::array<double, 6>& dstrain, int return_iters) {
  // Elastic predictor: sigma += lambda tr(de) I + 2 mu de.
  const double tr = dstrain[0] + dstrain[1] + dstrain[2];
  const double lambda = mat.bulk - 2.0 / 3.0 * mat.shear;
  for (int c = 0; c < 3; ++c) {
    state.stress[static_cast<std::size_t>(c)] +=
        lambda * tr + 2.0 * mat.shear * dstrain[static_cast<std::size_t>(c)];
  }
  for (int c = 3; c < 6; ++c) {
    state.stress[static_cast<std::size_t>(c)] +=
        mat.shear * dstrain[static_cast<std::size_t>(c)];
  }

  // Deviatoric stress and von-Mises norm.
  const double p =
      (state.stress[0] + state.stress[1] + state.stress[2]) / 3.0;
  double dev[6];
  for (int c = 0; c < 3; ++c) dev[c] = state.stress[static_cast<std::size_t>(c)] - p;
  for (int c = 3; c < 6; ++c) dev[c] = state.stress[static_cast<std::size_t>(c)];
  double j2 = 0.0;
  for (int c = 0; c < 3; ++c) j2 += dev[c] * dev[c];
  for (int c = 3; c < 6; ++c) j2 += 2.0 * dev[c] * dev[c];
  double vm = std::sqrt(1.5 * j2);

  const double yield = mat.yield0 + mat.hardening * state.eps_plastic;
  if (vm <= yield || vm == 0.0) return vm;

  // Radial return with hardening: iterate the plastic multiplier (the
  // fixed-point converges fast; `return_iters` fixes the cost).
  double dgamma = 0.0;
  for (int it = 0; it < return_iters; ++it) {
    const double resid = vm - 3.0 * mat.shear * dgamma -
                         (mat.yield0 +
                          mat.hardening * (state.eps_plastic + dgamma));
    const double slope = 3.0 * mat.shear + mat.hardening;
    dgamma += resid / slope;
    if (dgamma < 0.0) dgamma = 0.0;
  }
  const double scale = (vm - 3.0 * mat.shear * dgamma) / vm;
  for (int c = 0; c < 3; ++c) {
    state.stress[static_cast<std::size_t>(c)] = dev[c] * scale + p;
  }
  for (int c = 3; c < 6; ++c) {
    state.stress[static_cast<std::size_t>(c)] = dev[c] * scale;
  }
  state.eps_plastic += dgamma;
  return vm * scale;
}

}  // namespace xk::epx
