// The two loop kernels that, with the sparse Cholesky, account for ~70 % of
// an EPX run (§I, §IV):
//
//  LOOPELM — "independent loop on finite elements to compute nodal internal
//            forces from local mechanical behaviour". Two parallel phases:
//            per-element force computation (gather 8 nodes, strain-rate
//            proxy, material update, 24 force components) and per-node
//            assembly over the incidence table. The element phase is
//            memory-heavy (gather/scatter dominates for cheap materials —
//            the paper's "memory intensive character" on MEPPEN); the
//            assembly phase is bandwidth-bound by construction.
//
//  REPERA  — "independent loop to sort candidates for node_to_facet
//            unilateral contact". A spatial hash over master facets is
//            rebuilt, then each slave node probes neighbouring cells,
//            computes distances (sqrt/dot-heavy) and sorts its candidates —
//            the compute-intensive kernel with good speedup in Fig. 6.
//
// Both kernels take a LoopRunner so the same code runs sequentially, under
// X-Kaapi's adaptive foreach, or under the OpenMP-model LoopTeam (Fig. 3
// compares exactly these on the two EPX loops).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "epx/material.hpp"
#include "epx/mesh.hpp"

namespace xk::epx {

/// Runs `body` over chunked [0, n). Implementations: serial, X-Kaapi
/// parallel_for, LoopTeam static/dynamic/guided.
using LoopRunner = std::function<void(
    std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t)>& body)>;

LoopRunner seq_runner();
LoopRunner xkaapi_runner(std::int64_t grain = 0);

/// Persistent LOOPELM storage (element states + staging for assembly).
struct LoopelmState {
  std::vector<ElemState> elem_state;
  std::vector<std::array<double, 24>> elem_force;  // 8 corners x 3 comps

  void resize(int nelems) {
    elem_state.assign(static_cast<std::size_t>(nelems), ElemState{});
    elem_force.assign(static_cast<std::size_t>(nelems), {});
  }
};

/// Internal force computation: fills mesh.f_int deterministically
/// (assembly iterates the incidence table in fixed order).
void loopelm(Mesh& mesh, LoopelmState& state, double dt, int material_iters,
             const LoopRunner& run);

/// One node-facet candidate produced by REPERA.
struct ContactCandidate {
  int node = -1;
  int surface = -1;
  int facet = -1;
  double distance = 0.0;
};

/// Per-slave-node candidate lists, ordered by distance (stable).
struct ReperaState {
  /// Flattened per (surface, slave-slot) candidate lists.
  std::vector<std::vector<ContactCandidate>> candidates;
  std::size_t total = 0;
};

/// Contact candidate search + sort over every contact surface of the mesh.
void repera(const Mesh& mesh, ReperaState& out, const LoopRunner& run);

/// Selects the active constraints (closest candidate within tolerance per
/// slave node) from a REPERA result. Deterministic.
struct Constraint {
  int node = -1;
  Vec3 normal;
  std::array<int, 4> facet_nodes{-1, -1, -1, -1};  // -1s for rigid facets
  int partner = -1;   // structurally coupled node (ContactSurface doc)
  long sort_key = 0;  // multiplier ordering key (skyline profile)
  double gap = 0.0;
};
std::vector<Constraint> select_constraints(const Mesh& mesh,
                                           const ReperaState& candidates);

}  // namespace xk::epx
