#include "epx/mesh.hpp"

#include <algorithm>
#include <cmath>

namespace xk::epx {

void Mesh::build_incidence() {
  node_elems.assign(x.size(), {});
  for (int e = 0; e < nelems(); ++e) {
    for (int c = 0; c < 8; ++c) {
      node_elems[static_cast<std::size_t>(elems[static_cast<std::size_t>(e)]
                                              [static_cast<std::size_t>(c)])]
          .push_back(Incidence{e, c});
    }
  }
}

double Mesh::min_edge() const {
  double best = 1e300;
  for (const auto& conn : elems) {
    const Vec3& a = x0[static_cast<std::size_t>(conn[0])];
    const Vec3& b = x0[static_cast<std::size_t>(conn[1])];
    const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
    best = std::min(best, std::sqrt(dx * dx + dy * dy + dz * dz));
  }
  return best;
}

Mesh make_box(int nx, int ny, int nz, double h, Vec3 origin, double density) {
  Mesh m;
  const int px = nx + 1, py = ny + 1, pz = nz + 1;
  auto node_id = [&](int i, int j, int k) { return (k * py + j) * px + i; };

  m.x0.resize(static_cast<std::size_t>(px) * py * pz);
  for (int k = 0; k < pz; ++k) {
    for (int j = 0; j < py; ++j) {
      for (int i = 0; i < px; ++i) {
        m.x0[static_cast<std::size_t>(node_id(i, j, k))] =
            Vec3{origin.x + i * h, origin.y + j * h, origin.z + k * h};
      }
    }
  }
  m.x = m.x0;
  m.v.assign(m.x.size(), Vec3{});
  m.f_int.assign(m.x.size(), Vec3{});
  m.f_ext.assign(m.x.size(), Vec3{});
  m.mass.assign(m.x.size(), 0.0);

  m.elems.reserve(static_cast<std::size_t>(nx) * ny * nz);
  const double corner_mass = density * h * h * h / 8.0;
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const std::array<int, 8> conn = {
            node_id(i, j, k),         node_id(i + 1, j, k),
            node_id(i + 1, j + 1, k), node_id(i, j + 1, k),
            node_id(i, j, k + 1),     node_id(i + 1, j, k + 1),
            node_id(i + 1, j + 1, k + 1), node_id(i, j + 1, k + 1)};
        m.elems.push_back(conn);
        m.elem_material.push_back(0);
        for (int c : conn) m.mass[static_cast<std::size_t>(c)] += corner_mass;
      }
    }
  }
  m.build_incidence();
  return m;
}

namespace {

Vec3 facet_center(const Mesh& m, const Facet& f) {
  Vec3 c;
  for (int n : f.nodes) {
    const Vec3& p = m.x[static_cast<std::size_t>(n)];
    c.x += 0.25 * p.x;
    c.y += 0.25 * p.y;
    c.z += 0.25 * p.z;
  }
  return c;
}

}  // namespace

Scenario make_meppen(int scale) {
  Scenario s;
  s.name = "MEPPEN";
  const int nx = 24 * scale, ny = 4 * scale, nz = 4 * scale;
  const double h = 0.05;
  // Start just outside the contact tolerance so impact happens within a few
  // dozen steps (benches and tests run short windows of the crash).
  const double standoff = 0.105;
  s.mesh = make_box(nx, ny, nz, h, Vec3{standoff, 0.0, 0.0}, 7800.0);

  // The missile flies in -x toward a rigid wall at x = 0.
  for (Vec3& vel : s.mesh.v) vel.x = -150.0;

  // Rigid wall: a grid of static facets spanning the impact zone.
  ContactSurface wall;
  const int wn = 8 * scale;
  const double wh = (ny * h * 3.0) / wn;
  for (int j = 0; j < wn; ++j) {
    for (int k = 0; k < wn; ++k) {
      Facet f;
      f.nodes = {-1, -1, -1, -1};
      f.center = Vec3{0.0, (j + 0.5) * wh - wn * wh / 2 + ny * h / 2,
                      (k + 0.5) * wh - wn * wh / 2 + nz * h / 2};
      f.normal = Vec3{1.0, 0.0, 0.0};
      wall.facets.push_back(f);
    }
  }
  // Slave nodes: the front face of the missile (x == min).
  for (int n = 0; n < s.mesh.nnodes(); ++n) {
    if (s.mesh.x0[static_cast<std::size_t>(n)].x < standoff + 1e-9) {
      wall.slave_nodes.push_back(n);
    }
  }
  wall.gap_tolerance = 2.0 * h;
  s.mesh.contacts.push_back(std::move(wall));

  // Strongly plastic material: expensive return mapping, heavy per element.
  s.material_iters = 6;
  s.repera_every = 1;
  s.cholesky_block = 8;
  s.dt = 0.2 * s.mesh.min_edge() / 5000.0;  // CFL-ish vs steel wave speed
  return s;
}

Scenario make_maxplane(int scale, int plies) {
  Scenario s;
  s.name = "MAXPLANE";
  const int nx = 10 * scale, ny = 10 * scale;
  const double h = 0.01;
  // Build plies as one mesh: ply p occupies z in [p*(h+gap), ...], one
  // element thick; contact between consecutive plies.
  Mesh all;
  const double gap = 0.1 * h;
  std::vector<int> node_base(static_cast<std::size_t>(plies) + 1, 0);
  for (int p = 0; p < plies; ++p) {
    Mesh ply = make_box(nx, ny, 1, h, Vec3{0.0, 0.0, p * (h + gap)}, 1600.0);
    node_base[static_cast<std::size_t>(p)] = all.nnodes();
    const int base = all.nnodes();
    const int ebase = all.nelems();
    all.x0.insert(all.x0.end(), ply.x0.begin(), ply.x0.end());
    all.x.insert(all.x.end(), ply.x.begin(), ply.x.end());
    all.v.insert(all.v.end(), ply.v.begin(), ply.v.end());
    all.f_int.resize(all.x.size());
    all.f_ext.resize(all.x.size());
    all.mass.insert(all.mass.end(), ply.mass.begin(), ply.mass.end());
    for (auto conn : ply.elems) {
      for (int& n : conn) n += base;
      all.elems.push_back(conn);
      all.elem_material.push_back(p % 2);  // alternating ply materials
    }
    (void)ebase;
  }
  node_base[static_cast<std::size_t>(plies)] = all.nnodes();
  all.build_incidence();

  // Inter-ply contact: top-face facets of ply p vs bottom nodes of ply p+1.
  const int px = nx + 1, py = ny + 1;
  auto ply_node = [&](int p, int i, int j, int k) {
    return node_base[static_cast<std::size_t>(p)] + (k * py + j) * px + i;
  };
  for (int p = 0; p + 1 < plies; ++p) {
    ContactSurface cs;
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        Facet f;
        f.nodes = {ply_node(p, i, j, 1), ply_node(p, i + 1, j, 1),
                   ply_node(p, i + 1, j + 1, 1), ply_node(p, i, j + 1, 1)};
        f.center = facet_center(all, f);
        f.normal = Vec3{0.0, 0.0, 1.0};
        cs.facets.push_back(f);
      }
    }
    for (int j = 0; j < py; ++j) {
      for (int i = 0; i < px; ++i) {
        cs.slave_nodes.push_back(ply_node(p + 1, i, j, 0));
        // Through-thickness partner: the top node of the same column, which
        // is a facet node of the interface above — chains the interfaces
        // into one condensed system (see ContactSurface::slave_partners).
        cs.slave_partners.push_back(ply_node(p + 1, i, j, 1));
        // Spatial multiplier ordering: all interfaces of a column adjacent.
        cs.slave_sort_keys.push_back(
            (static_cast<long>(j) * px + i) * plies + p);
      }
    }
    // Wide activation window: inter-ply contact stays condensed into H even
    // while the multipliers push the plies a little apart — EPX keeps such
    // persistent links in the system, which is what makes the MAXPLANE H
    // "close to the system stiffness matrix" (§IV).
    cs.gap_tolerance = 5.0 * gap;
    all.contacts.push_back(std::move(cs));
  }

  // Projectile: a downward velocity patch on the top ply ("ice projectile"
  // footprint) plus a mild stack-wide compression so every inter-ply
  // interface carries active contact — that is what makes the condensed H
  // matrix plate-sized and the CHOLESKY phase dominant in the paper's
  // MAXPLANE runs ("the size and filling of the H matrix are close to those
  // of the system stiffness matrix", §IV).
  for (int p = 0; p < plies; ++p) {
    const double vz = -2.0 * static_cast<double>(p);
    for (int k = 0; k <= 1; ++k) {
      for (int j = 0; j < py; ++j) {
        for (int i = 0; i < px; ++i) {
          all.v[static_cast<std::size_t>(ply_node(p, i, j, k))].z = vz;
        }
      }
    }
  }
  for (int j = py / 3; j < 2 * py / 3; ++j) {
    for (int i = px / 3; i < 2 * px / 3; ++i) {
      all.v[static_cast<std::size_t>(ply_node(plies - 1, i, j, 1))].z = -60.0;
    }
  }
  // Sustained crushing load against an anchored foundation: the multiplier
  // impulses push plies apart, the load re-closes them onto the (nearly
  // immovable) bottom ply, so the inter-ply contact system stays condensed
  // and factored essentially every step — the regime in which "the solution
  // procedure is strongly dominated by the condensed system solution, and
  // then by the CHOLESKY algorithm" (§IV).
  for (std::size_t n = 0; n < all.f_ext.size(); ++n) {
    all.f_ext[n].z = -2.0e6 * all.mass[n];
  }
  for (int j = 0; j < py; ++j) {
    for (int i = 0; i < px; ++i) {
      const auto n = static_cast<std::size_t>(ply_node(0, i, j, 0));
      all.mass[n] *= 1.0e9;  // foundation anchor
      all.f_ext[n].z = 0.0;
      all.v[n] = Vec3{};
    }
  }

  s.mesh = std::move(all);
  s.material_iters = 1;  // mostly elastic plies: cheap, regular LOOPELM
  s.repera_every = 8;    // persistent contacts: searches can be cadenced
  s.cholesky_block = 32;  // block grain: keeps steal cost amortized (Fig. 2 lesson)
  s.dt = 0.2 * s.mesh.min_edge() / 3000.0;
  return s;
}

}  // namespace xk::epx
