// The EPX mini-app time loop (§IV): central-difference explicit dynamics
// driving the three instrumented kernels plus the residual "other" work.
//
// Per step:
//   LOOPELM  — internal nodal forces (phase-timed as `loopelm`);
//   REPERA   — contact candidate search, every `repera_every` steps
//              (phase-timed as `repera`);
//   CHOLESKY — condensed H factorization + triangular solves when contacts
//              are active (phase-timed as `cholesky`; "the cost of following
//              triangular system solutions being neglected" — we time them
//              inside the same phase, they are negligible);
//   other    — constraint selection, H assembly, multiplier application,
//              time integration: the sequential ~30 % Amdahl residue the
//              paper's Fig. 8 shows as 'other'.
//
// The whole loop is deterministic: a parallel run reproduces the sequential
// trajectory bit for bit (kernels assemble in fixed order; the task
// factorization executes the same kernel sequence per block).
#pragma once

#include <cstdint>

#include "epx/hmatrix.hpp"
#include "epx/kernels.hpp"
#include "epx/mesh.hpp"

namespace xk {
class Runtime;
}

namespace xk::epx {

/// Per-phase wall-clock accumulation over a run (Fig. 8's bar segments).
struct PhaseTimes {
  double loopelm = 0.0;
  double repera = 0.0;
  double cholesky = 0.0;
  double other = 0.0;
  int steps = 0;
  int factorizations = 0;
  std::int64_t constraints_total = 0;

  double total() const { return loopelm + repera + cholesky + other; }
};

struct SimOptions {
  /// Loop backend for LOOPELM/REPERA (serial when empty).
  LoopRunner loop;
  /// Runtime for the task-parallel H factorization (sequential when null).
  Runtime* rt = nullptr;
  /// Override the scenario's contact-search cadence (0 = keep).
  int repera_every = 0;
};

/// Runs `steps` time steps of the scenario, mutating its mesh. Returns the
/// phase decomposition.
PhaseTimes simulate(Scenario& scenario, int steps, const SimOptions& opt);

/// Checksum of the kinematic state (positions + velocities), for
/// determinism tests across backends.
double state_checksum(const Mesh& mesh);

}  // namespace xk::epx
