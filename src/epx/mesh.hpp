// Synthetic finite-element meshes for the EPX mini-app (§IV).
//
// EUROPLEXUS is proprietary; this mesh layer reproduces the *structure* its
// hot kernels operate on: hex8 elements over structured node grids, a
// node→element incidence table (for deterministic parallel force assembly),
// contact surfaces (slave node sets vs master facet sets), and per-node
// kinematic state. Two scenario builders mirror the paper's instances:
//
//  MEPPEN   — "crash of a large steel missile on a perfectly rigid wall":
//             a long beam flying into a static rigid wall; large plastic
//             strains (elasto-plastic material with expensive return
//             mapping), moderate contact, tiny H matrix. Time splits mainly
//             between LOOPELM and REPERA, as in Fig. 6-left/Fig. 8-top.
//
//  MAXPLANE — "impact of an ice projectile on a composite plate": a stack
//             of plies with contact conditions between every pair of
//             adjacent plies; many persistent contacts condense into a
//             large skyline H whose factorization dominates (≈60 % of the
//             time, §IV-B), as in Fig. 6-right/Fig. 8-bottom.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace xk::epx {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

/// One quadrilateral master facet of a contact surface.
struct Facet {
  std::array<int, 4> nodes;  ///< -1 for rigid (wall) facets
  Vec3 center;               ///< updated from nodes; fixed for rigid facets
  Vec3 normal;
};

/// A contact interface: slave nodes tested against master facets.
struct ContactSurface {
  std::vector<int> slave_nodes;
  std::vector<Facet> facets;
  double gap_tolerance = 0.0;
  /// Optional (parallel to slave_nodes): a structurally-coupled partner
  /// node per slave (e.g. the through-thickness neighbour). The condensed
  /// H row of a constraint includes the partner, reproducing the cross-
  /// interface coupling EPX's condensation introduces (§IV-B: the MAXPLANE
  /// H has "size and filling close to those of the system stiffness
  /// matrix"). Empty = no partners.
  std::vector<int> slave_partners;
  /// Optional (parallel to slave_nodes): multiplier ordering keys. A
  /// spatial ordering keeps the skyline profile tight when several
  /// interfaces couple. Empty = order by node id.
  std::vector<long> slave_sort_keys;
};

struct Mesh {
  // Node state (structure-of-arrays: the LOOPELM gather/scatter pattern).
  std::vector<Vec3> x0;     ///< reference positions
  std::vector<Vec3> x;      ///< current positions
  std::vector<Vec3> v;      ///< velocities
  std::vector<Vec3> f_int;  ///< assembled internal forces
  std::vector<Vec3> f_ext;  ///< external + contact forces
  std::vector<double> mass;

  // Hex8 elements.
  std::vector<std::array<int, 8>> elems;
  std::vector<int> elem_material;

  // Node -> incident (element, local corner) pairs, corner-ordered for
  // deterministic assembly.
  struct Incidence {
    int elem;
    int corner;
  };
  std::vector<std::vector<Incidence>> node_elems;

  std::vector<ContactSurface> contacts;

  int nnodes() const { return static_cast<int>(x.size()); }
  int nelems() const { return static_cast<int>(elems.size()); }

  /// Builds node_elems from elems (call after constructing elements).
  void build_incidence();

  /// Characteristic element edge length (for stable time-step estimates).
  double min_edge() const;
};

/// Structured box mesh: nx x ny x nz elements, spacing h, origin at
/// `origin`; nodes get `density * h^3 / 8`-lumped masses per element corner.
Mesh make_box(int nx, int ny, int nz, double h, Vec3 origin, double density);

struct Scenario {
  Mesh mesh;
  double dt = 0.0;
  int material_iters = 2;      ///< plastic return-mapping iterations
  int repera_every = 1;        ///< contact search cadence (steps)
  int cholesky_block = 16;     ///< BS for the condensed H factorization
  const char* name = "";
};

/// MEPPEN-like: long beam (missile) vs rigid wall. `scale` grows the mesh.
Scenario make_meppen(int scale = 1);

/// MAXPLANE-like: `plies` stacked plates with inter-ply contact. `scale`
/// grows the in-plane resolution.
Scenario make_maxplane(int scale = 1, int plies = 4);

}  // namespace xk::epx
