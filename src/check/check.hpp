// xk_check — the dynamic half of the repo's concurrency analysis pass
// (the static half is scripts/check_atomics.py + .clang-tidy; see
// docs/ANALYSIS.md).
//
// The lock-free machinery (MPMC ring shards, epoch retirement, the
// service token state machine) rests on state machines that TSan cannot
// validate — TSan sees data races, not protocol violations. A checked
// build (-DXK_CHECK=ON) compiles XK_EXPECT assertions into the seams of
// readylist/worker/runtime/service/ring; the default build compiles every
// hook to nothing, mirroring the XK_OBS=OFF stub discipline in
// obs/trace.hpp, so the hot paths the paper measures stay untouched.
//
// Violation policy (XK_CHECK_MODE):
//   abort (default) — print the invariant, its registry description and
//                     the seam location, then std::abort(). CI runs the
//                     full ctest battery in this mode: zero violations or
//                     the leg goes red with a precise message.
//   count           — count per-invariant (and record on the obs trace
//                     ring, when one is bound) and continue. For tests
//                     that deliberately provoke violations, and for
//                     soak runs where one abort would hide the rest.
//
// The XK_EXPECT condition is NOT evaluated in unchecked builds (same
// contract as assert under NDEBUG); guard any setup computed only for a
// check with `if constexpr (xk::check::kEnabled)`.
#pragma once

#include <cstdint>

#include "check/invariants.hpp"

namespace xk::check {

enum class Mode {
  kAbort,  ///< first violation reports and aborts (the CI leg's mode)
  kCount,  ///< violations count and execution continues (test mode)
};

#if defined(XK_CHECK_ON)

inline constexpr bool kEnabled = true;

/// Resolved XK_CHECK_MODE (read once, overridable by set_mode).
Mode mode();
/// Test override; wins over the environment from the call onward.
void set_mode(Mode m);

std::uint64_t violations(Inv i);
std::uint64_t violations_total();
void reset_violations();

/// Reports one violation: bumps the invariant's counter, records a
/// check.violation event on the calling thread's obs trace ring (when
/// bound), prints the registry entry + seam to stderr, and aborts in
/// Mode::kAbort. Cold by design — never on a hot path unless broken.
void fail(Inv inv, const char* cond, const char* file, int line,
          std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0);

/// Seam assertion: evaluates `cond` only in checked builds. Extra
/// arguments (up to three integers) are carried into the report and the
/// obs event.
#define XK_EXPECT(inv, cond, ...)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::xk::check::fail(::xk::check::Inv::inv, #cond, __FILE__, __LINE__, \
                        ##__VA_ARGS__);                                   \
    }                                                                     \
  } while (0)

#else  // !XK_CHECK_ON: every hook compiles to nothing (the default build)

inline constexpr bool kEnabled = false;

inline Mode mode() { return Mode::kCount; }
inline void set_mode(Mode) {}
inline std::uint64_t violations(Inv) { return 0; }
inline std::uint64_t violations_total() { return 0; }
inline void reset_violations() {}
inline void fail(Inv, const char*, const char*, int, std::uint64_t = 0,
                 std::uint64_t = 0, std::uint64_t = 0) {}

#define XK_EXPECT(inv, cond, ...) ((void)0)

#endif  // XK_CHECK_ON

}  // namespace xk::check
