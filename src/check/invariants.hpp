// The invariant registry of the xk_check subsystem: every dynamic
// concurrency invariant the checked build (-DXK_CHECK=ON) asserts, in one
// X-macro table.
//
// Each entry is X(name, family, "what a violation means"). The enum, the
// name/description tables, the per-invariant violation counters and the
// registry-completeness static_asserts are all generated from this single
// list (the same pattern as XK_WORKER_COUNTERS in core/stats.hpp), so
// adding an invariant is one line here plus the XK_EXPECT at the seam.
//
// Families group the invariants by the state machine they guard:
//
//   task    — the Task::state claim/commit machine (core/task.hpp):
//             Init -> {RunOwner | StolenClaim -> RunThief} -> BodyDone*
//             -> (CommitReady) -> Term, one claimer per task.
//   ready   — the ReadyList accelerating structure (core/readylist.*):
//             gauge accounting, paired npred edges, epoch-deferred
//             interval retirement.
//   service — the JobStatus machine (core/service.hpp): terminal states
//             are mutually exclusive and settle exactly once.
//   section — Runtime::begin()/end() master-slot balance and the
//             exactly-once observability drain per section batch.
//   ring    — the MpmcRing slot/sequence protocol (support/ring.hpp).
#pragma once

#include <cstddef>

namespace xk::check {

// clang-format off
#define XK_CHECK_INVARIANTS(X)                                                \
  X(task_transition, task,                                                    \
    "task state moved along an edge outside the claim/commit machine")        \
  X(task_claim_state, task,                                                   \
    "task claim CAS targeted a state that is not a claim state")              \
  X(rl_accounting, ready,                                                     \
    "nready_ != entries summed over rings+deques at a quiesced fold point")   \
  X(rl_npred_underflow, ready,                                                \
    "npred decrement without a matching coverage-edge increment")             \
  X(rl_retire_incomplete, ready,                                              \
    "live interval retired before its node's completed flag was set")         \
  X(rl_retire_unsettled, ready,                                               \
    "retired node still held a shard gauge contribution")                     \
  X(job_transition, service,                                                  \
    "job status moved along an edge outside the service state machine")       \
  X(job_settle_twice, service,                                                \
    "job settled to a terminal status more than once")                        \
  X(section_underflow, section,                                               \
    "section close without a matching open")                                  \
  X(section_drain, section,                                                   \
    "observability drained with sections open, or not once per batch")        \
  X(ring_overflow, ring,                                                      \
    "MPMC ring claim ticket ran ahead of the consumers by > capacity")
// clang-format on

/// Invariant ids, one per registry entry (stable within a build only).
enum class Inv : unsigned {
#define X(name, family, what) name,
  XK_CHECK_INVARIANTS(X)
#undef X
      kCount_  // sentinel
};

inline constexpr std::size_t kInvariantCount =
    static_cast<std::size_t>(Inv::kCount_);

struct InvariantInfo {
  const char* name;    ///< registry id, e.g. "task_transition"
  const char* family;  ///< state machine it guards, e.g. "task"
  const char* what;    ///< one-line meaning of a violation
};

/// Static metadata, indexed by Inv. Order matches the enum by generation.
inline constexpr InvariantInfo kInvariantInfo[kInvariantCount] = {
#define X(name, family, what) {#name, #family, what},
    XK_CHECK_INVARIANTS(X)
#undef X
};

inline constexpr const InvariantInfo& invariant_info(Inv i) {
  return kInvariantInfo[static_cast<std::size_t>(i)];
}

}  // namespace xk::check
