// Violation accounting and reporting for the checked build. This file is
// compiled only under -DXK_CHECK=ON (src/check/CMakeLists.txt builds the
// module as INTERFACE otherwise), so the registry state costs the default
// build nothing at all.
#include "check/check.hpp"

#ifdef XK_CHECK_ON

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.hpp"

namespace xk::check {

namespace {

std::atomic<std::uint64_t> g_violations[kInvariantCount] = {};

// -1 = unresolved; otherwise a Mode value. Resolution reads the
// environment exactly once (first violation or first mode() query);
// set_mode stores unconditionally and wins from then on. getenv directly,
// not xk::env_string: check sits below support in the link order (support
// headers hook into it), so it must not call into the support library.
std::atomic<int> g_mode{-1};

Mode resolve_mode() {
  int m = g_mode.load(std::memory_order_acquire);
  if (m >= 0) return static_cast<Mode>(m);
  Mode resolved = Mode::kAbort;
  if (const char* raw = std::getenv("XK_CHECK_MODE")) {
    if (std::strcmp(raw, "count") == 0) {
      resolved = Mode::kCount;
    } else if (raw[0] != '\0' && std::strcmp(raw, "abort") != 0) {
      std::fprintf(stderr, "xk_check: ignoring unknown XK_CHECK_MODE=%s "
                           "(abort|count)\n", raw);
    }
  }
  // Racing resolvers agree (same environment); either store wins.
  g_mode.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

}  // namespace

Mode mode() { return resolve_mode(); }

void set_mode(Mode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_release);
}

std::uint64_t violations(Inv i) {
  return g_violations[static_cast<std::size_t>(i)].load(
      std::memory_order_relaxed);
}

std::uint64_t violations_total() {
  std::uint64_t total = 0;
  for (const auto& c : g_violations) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

void reset_violations() {
  for (auto& c : g_violations) c.store(0, std::memory_order_relaxed);
}

void fail(Inv inv, const char* cond, const char* file, int line,
          std::uint64_t a0, std::uint64_t a1, std::uint64_t a2) {
  const InvariantInfo& info = invariant_info(inv);
  g_violations[static_cast<std::size_t>(inv)].fetch_add(
      1, std::memory_order_relaxed);
  // Violations ride the obs trace ring (when the thread has one bound):
  // a checked trace run places each violation on the worker timeline next
  // to the task/steal/ready spans that led up to it.
  obs::emit(obs::Ev::kCheckViolation, static_cast<std::uint64_t>(inv), a0,
            a1);
  std::fprintf(stderr,
               "xk_check: VIOLATION %s [%s]: %s\n"
               "  failed: %s\n"
               "  at %s:%d  args=[%llu, %llu, %llu]\n",
               info.name, info.family, info.what, cond, file, line,
               static_cast<unsigned long long>(a0),
               static_cast<unsigned long long>(a1),
               static_cast<unsigned long long>(a2));
  if (resolve_mode() == Mode::kAbort) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace xk::check

#endif  // XK_CHECK_ON
