// Sequential BLAS-like kernels for the tiled/blocked Cholesky factorizations
// (the paper's potrf/trsm/syrk/gemm, §III-B and Fig. 7 pseudo-code).
//
// Column-major with explicit leading dimensions. The update kernels hardcode
// the Cholesky signature alpha = -1, beta = 1 (C := C - A·op(B)) — that is
// the only combination the factorizations use. All kernels are single-
// threaded; parallelism comes from the runtimes scheduling them as tasks.
#pragma once

namespace xk::linalg {

/// In-place lower Cholesky of the leading n x n of A (column-major, lda).
/// Returns 0 on success, j+1 when the j-th pivot is not positive.
int potrf_lower(int n, double* a, int lda);

/// B := B * L^{-T} for lower-triangular L (n x n); B is m x n.
/// (PLASMA's dtrsm RIGHT/LOWER/TRANS/NONUNIT as used by tile Cholesky.)
void trsm_right_lower_trans(int m, int n, const double* l, int ldl, double* b,
                            int ldb);

/// C := C - A * A^T on the lower triangle only; C is n x n, A is n x k.
void syrk_lower(int n, int k, const double* a, int lda, double* c, int ldc);

/// C := C - A * B^T; C is m x n, A is m x k, B is n x k.
void gemm_nt(int m, int n, int k, const double* a, int lda, const double* b,
             int ldb, double* c, int ldc);

/// x := L^{-1} x for lower-triangular L (n x n), forward substitution.
void trsv_lower_notrans(int n, const double* l, int ldl, double* x);

/// x := L^{-T} x for lower-triangular L (n x n), backward substitution.
void trsv_lower_trans(int n, const double* l, int ldl, double* x);

/// y := y - A * x; A is m x n.
void gemv_minus(int m, int n, const double* a, int lda, const double* x,
                double* y);

/// y := y - A^T * x; A is m x n (so y has n entries, x has m).
void gemv_minus_trans(int m, int n, const double* a, int lda, const double* x,
                      double* y);

// Naive reference implementations (tests compare the kernels against these).
namespace ref {
int potrf_lower(int n, double* a, int lda);
void trsm_right_lower_trans(int m, int n, const double* l, int ldl, double* b,
                            int ldb);
void syrk_lower(int n, int k, const double* a, int lda, double* c, int ldc);
void gemm_nt(int m, int n, int k, const double* a, int lda, const double* b,
             int ldb, double* c, int ldc);
}  // namespace ref

}  // namespace xk::linalg
