// Tiled symmetric matrix in PLASMA tile layout: NT x NT tiles of NB x NB
// doubles, each tile contiguous in memory (column-major inside the tile).
// Contiguous tiles are exactly what makes the dataflow access regions of the
// tiled Cholesky precise one-tile regions (§III-B).
#pragma once

#include <cstdint>
#include <vector>

namespace xk::linalg {

class TiledMatrix {
 public:
  /// Builds an n x n matrix with tile size nb (n rounded up to a multiple
  /// of nb; the logical dimension keeps the requested n).
  TiledMatrix(int n, int nb);

  int n() const { return n_; }
  int nb() const { return nb_; }
  int nt() const { return nt_; }

  /// Pointer to tile (i, j), 0-based tile indices; a contiguous nb*nb block.
  double* tile(int i, int j) {
    return data_.data() +
           (static_cast<std::size_t>(j) * nt_ + i) * tile_elems();
  }
  const double* tile(int i, int j) const {
    return data_.data() +
           (static_cast<std::size_t>(j) * nt_ + i) * tile_elems();
  }

  std::size_t tile_elems() const {
    return static_cast<std::size_t>(nb_) * nb_;
  }

  /// Element access through the tile layout (slow; tests / verification).
  double get(int i, int j) const;
  void set(int i, int j, double v);

  /// Fills the lower triangle (and mirrors the diagonal blocks) with a
  /// deterministic symmetric positive-definite matrix:
  /// A = R + n·I with R symmetric, entries in [-1, 1] from `seed`.
  void fill_spd(std::uint64_t seed);

  /// Dense column-major copy of the full symmetric matrix (from the lower
  /// triangle), for verification.
  std::vector<double> to_dense_symmetric() const;

 private:
  int n_;
  int nb_;
  int nt_;
  std::vector<double> data_;
};

/// Frobenius-norm residual ||A0 - L·L^T||_F / ||A0||_F, where `factored`
/// holds L in its lower triangle and `dense0` is the original symmetric
/// matrix (column-major n x n from to_dense_symmetric()).
double cholesky_residual(const TiledMatrix& factored,
                         const std::vector<double>& dense0);

}  // namespace xk::linalg
