#include "linalg/cholesky.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "core/xkaapi.hpp"
#include "linalg/blas.hpp"
#include "quark/quark.h"

namespace xk::linalg {

double cholesky_flops(int n) {
  const double nd = n;
  return nd * nd * nd / 3.0 + nd * nd / 2.0 + nd / 6.0;
}

// ---------------------------------------------------------------------------
// Sequential.
// ---------------------------------------------------------------------------

int cholesky_sequential(TiledMatrix& a) {
  const int nt = a.nt();
  const int nb = a.nb();
  for (int k = 0; k < nt; ++k) {
    const int info = potrf_lower(nb, a.tile(k, k), nb);
    if (info != 0) return k * nb + info;
    for (int m = k + 1; m < nt; ++m) {
      trsm_right_lower_trans(nb, nb, a.tile(k, k), nb, a.tile(m, k), nb);
    }
    for (int m = k + 1; m < nt; ++m) {
      syrk_lower(nb, nb, a.tile(m, k), nb, a.tile(m, m), nb);
      for (int n = k + 1; n < m; ++n) {
        gemm_nt(nb, nb, nb, a.tile(m, k), nb, a.tile(n, k), nb, a.tile(m, n),
                nb);
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// X-Kaapi dataflow: one task per kernel, accesses are whole tiles.
// ---------------------------------------------------------------------------

int cholesky_xkaapi(TiledMatrix& a, Runtime& rt) {
  const int nt = a.nt();
  const int nb = a.nb();
  const std::size_t te = a.tile_elems();
  std::atomic<int> info{0};

  rt.run([&] {
    for (int k = 0; k < nt; ++k) {
      xk::spawn(
          [nb, k, &info](double* akk) {
            const int r = potrf_lower(nb, akk, nb);
            if (r != 0) {
              int expected = 0;
              info.compare_exchange_strong(expected, k * nb + r,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed);
            }
          },
          xk::rw(a.tile(k, k), te));
      for (int m = k + 1; m < nt; ++m) {
        xk::spawn(
            [nb](const double* akk, double* amk) {
              trsm_right_lower_trans(nb, nb, akk, nb, amk, nb);
            },
            xk::read(a.tile(k, k), te), xk::rw(a.tile(m, k), te));
      }
      for (int m = k + 1; m < nt; ++m) {
        xk::spawn(
            [nb](const double* amk, double* amm) {
              syrk_lower(nb, nb, amk, nb, amm, nb);
            },
            xk::read(a.tile(m, k), te), xk::rw(a.tile(m, m), te));
        for (int n = k + 1; n < m; ++n) {
          xk::spawn(
              [nb](const double* amk, const double* ank, double* amn) {
                gemm_nt(nb, nb, nb, amk, nb, ank, nb, amn, nb);
              },
              xk::read(a.tile(m, k), te), xk::read(a.tile(n, k), te),
              xk::rw(a.tile(m, n), te));
        }
      }
    }
    xk::sync();
  });
  // Relaxed: the sync/join above already ordered every CAS.
  return info.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// QUARK ABI variant (backend picked by the Quark handle).
// ---------------------------------------------------------------------------

namespace {

struct QuarkCholeskyShared {
  std::atomic<int>* info;
};

void quark_potrf(Quark* q) {
  int nb = 0, kblock = 0;
  double* akk = nullptr;
  std::atomic<int>* info = nullptr;
  quark_unpack_args_4(q, nb, kblock, akk, info);
  const int r = potrf_lower(nb, akk, nb);
  if (r != 0) {
    int expected = 0;
    info->compare_exchange_strong(expected, kblock * nb + r);
  }
}

void quark_trsm(Quark* q) {
  int nb = 0;
  double* akk = nullptr;
  double* amk = nullptr;
  quark_unpack_args_3(q, nb, akk, amk);
  trsm_right_lower_trans(nb, nb, akk, nb, amk, nb);
}

void quark_syrk(Quark* q) {
  int nb = 0;
  double* amk = nullptr;
  double* amm = nullptr;
  quark_unpack_args_3(q, nb, amk, amm);
  syrk_lower(nb, nb, amk, nb, amm, nb);
}

void quark_gemm(Quark* q) {
  int nb = 0;
  double* amk = nullptr;
  double* ank = nullptr;
  double* amn = nullptr;
  quark_unpack_args_4(q, nb, amk, ank, amn);
  gemm_nt(nb, nb, nb, amk, nb, ank, nb, amn, nb);
}

}  // namespace

int cholesky_quark(TiledMatrix& a, quark_s* quark) {
  const int nt = a.nt();
  const int nb = a.nb();
  const std::size_t tb = a.tile_elems() * sizeof(double);
  std::atomic<int> info{0};
  std::atomic<int>* info_ptr = &info;
  const Quark_Task_Flags flags;

  for (int k = 0; k < nt; ++k) {
    QUARK_Insert_Task(quark, quark_potrf, &flags,
                      sizeof(int), &nb, QUARK_VALUE,
                      sizeof(int), &k, QUARK_VALUE,
                      tb, a.tile(k, k), QUARK_INOUT,
                      sizeof(info_ptr), &info_ptr, QUARK_VALUE,
                      std::size_t{0});
    for (int m = k + 1; m < nt; ++m) {
      QUARK_Insert_Task(quark, quark_trsm, &flags,
                        sizeof(int), &nb, QUARK_VALUE,
                        tb, a.tile(k, k), QUARK_INPUT,
                        tb, a.tile(m, k), QUARK_INOUT,
                        std::size_t{0});
    }
    for (int m = k + 1; m < nt; ++m) {
      QUARK_Insert_Task(quark, quark_syrk, &flags,
                        sizeof(int), &nb, QUARK_VALUE,
                        tb, a.tile(m, k), QUARK_INPUT,
                        tb, a.tile(m, m), QUARK_INOUT,
                        std::size_t{0});
      for (int n = k + 1; n < m; ++n) {
        QUARK_Insert_Task(quark, quark_gemm, &flags,
                          sizeof(int), &nb, QUARK_VALUE,
                          tb, a.tile(m, k), QUARK_INPUT,
                          tb, a.tile(n, k), QUARK_INPUT,
                          tb, a.tile(m, n), QUARK_INOUT,
                          std::size_t{0});
      }
    }
  }
  QUARK_Barrier(quark);
  // Relaxed: the sync/join above already ordered every CAS.
  return info.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Static pipeline: row-cyclic ownership, left-looking order, progress flags.
// ---------------------------------------------------------------------------

namespace {

struct StaticProgress {
  std::vector<std::atomic<int>> potrf_done;  // [k]
  std::vector<std::atomic<int>> trsm_done;   // [m * nt + k]

  explicit StaticProgress(int nt)
      : potrf_done(static_cast<std::size_t>(nt)),
        trsm_done(static_cast<std::size_t>(nt) * nt) {
    // xk-order: pre-publication init — the worker threads that read these
    // flags are spawned after the constructor returns.
    for (auto& f : potrf_done) f.store(0, std::memory_order_relaxed);
    for (auto& f : trsm_done) f.store(0, std::memory_order_relaxed);
  }

  static void wait(const std::atomic<int>& flag) {
    int spins = 0;
    while (flag.load(std::memory_order_acquire) == 0) {
      if (++spins > 128) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
};

}  // namespace

int cholesky_static(TiledMatrix& a, unsigned nthreads) {
  const int nt = a.nt();
  const int nb = a.nb();
  if (nthreads == 0) nthreads = 1;
  StaticProgress progress(nt);
  std::atomic<int> info{0};

  auto worker = [&](unsigned self) {
    for (int m = static_cast<int>(self); m < nt;
         m += static_cast<int>(nthreads)) {
      // Left-looking over columns n of row m. All waits reference rows
      // n < m, i.e. strictly earlier positions in the global order.
      for (int n = 0; n < m; ++n) {
        for (int k = 0; k < n; ++k) {
          StaticProgress::wait(
              progress.trsm_done[static_cast<std::size_t>(n) * nt + k]);
          // trsm(m, k) is our own earlier step in this row.
          gemm_nt(nb, nb, nb, a.tile(m, k), nb, a.tile(n, k), nb, a.tile(m, n),
                  nb);
        }
        StaticProgress::wait(progress.potrf_done[static_cast<std::size_t>(n)]);
        trsm_right_lower_trans(nb, nb, a.tile(n, n), nb, a.tile(m, n), nb);
        progress.trsm_done[static_cast<std::size_t>(m) * nt + n].store(
            1, std::memory_order_release);
      }
      for (int k = 0; k < m; ++k) {
        syrk_lower(nb, nb, a.tile(m, k), nb, a.tile(m, m), nb);
      }
      const int r = potrf_lower(nb, a.tile(m, m), nb);
      if (r != 0) {
        int expected = 0;
        info.compare_exchange_strong(expected, m * nb + r,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      progress.potrf_done[static_cast<std::size_t>(m)].store(
          1, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(nthreads - 1);
  for (unsigned t = 1; t < nthreads; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : threads) t.join();
  // Relaxed: the sync/join above already ordered every CAS.
  return info.load(std::memory_order_relaxed);
}

}  // namespace xk::linalg
