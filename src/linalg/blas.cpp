#include "linalg/blas.hpp"

#include <cmath>

namespace xk::linalg {

int potrf_lower(int n, double* a, int lda) {
  for (int j = 0; j < n; ++j) {
    double d = a[j + j * lda];
    for (int k = 0; k < j; ++k) {
      const double ljk = a[j + k * lda];
      d -= ljk * ljk;
    }
    if (d <= 0.0) return j + 1;
    d = std::sqrt(d);
    a[j + j * lda] = d;
    const double inv = 1.0 / d;
    for (int i = j + 1; i < n; ++i) {
      double s = a[i + j * lda];
      for (int k = 0; k < j; ++k) {
        s -= a[i + k * lda] * a[j + k * lda];
      }
      a[i + j * lda] = s * inv;
    }
  }
  return 0;
}

void trsm_right_lower_trans(int m, int n, const double* l, int ldl, double* b,
                            int ldb) {
  // Solve X * L^T = B column by column: X[:,j] depends on X[:,k<j].
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < j; ++k) {
      const double ljk = l[j + k * ldl];
      if (ljk == 0.0) continue;
      const double* xk = b + k * ldb;
      double* xj = b + j * ldb;
      for (int i = 0; i < m; ++i) xj[i] -= xk[i] * ljk;
    }
    const double inv = 1.0 / l[j + j * ldl];
    double* xj = b + j * ldb;
    for (int i = 0; i < m; ++i) xj[i] *= inv;
  }
}

void syrk_lower(int n, int k, const double* a, int lda, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int l = 0; l < k; ++l) {
      const double ajl = a[j + l * lda];
      if (ajl == 0.0) continue;
      const double* col = a + l * lda;
      double* cj = c + j * ldc;
      for (int i = j; i < n; ++i) cj[i] -= col[i] * ajl;
    }
  }
}

void gemm_nt(int m, int n, int k, const double* a, int lda, const double* b,
             int ldb, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    for (int l = 0; l < k; ++l) {
      const double bjl = b[j + l * ldb];
      if (bjl == 0.0) continue;
      const double* al = a + l * lda;
      for (int i = 0; i < m; ++i) cj[i] -= al[i] * bjl;
    }
  }
}

void trsv_lower_notrans(int n, const double* l, int ldl, double* x) {
  for (int j = 0; j < n; ++j) {
    x[j] /= l[j + j * ldl];
    const double xj = x[j];
    for (int i = j + 1; i < n; ++i) x[i] -= l[i + j * ldl] * xj;
  }
}

void trsv_lower_trans(int n, const double* l, int ldl, double* x) {
  for (int j = n - 1; j >= 0; --j) {
    double s = x[j];
    for (int i = j + 1; i < n; ++i) s -= l[i + j * ldl] * x[i];
    x[j] = s / l[j + j * ldl];
  }
}

void gemv_minus(int m, int n, const double* a, int lda, const double* x,
                double* y) {
  for (int j = 0; j < n; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    const double* col = a + j * lda;
    for (int i = 0; i < m; ++i) y[i] -= col[i] * xj;
  }
}

void gemv_minus_trans(int m, int n, const double* a, int lda, const double* x,
                      double* y) {
  for (int j = 0; j < n; ++j) {
    const double* col = a + j * lda;
    double s = 0.0;
    for (int i = 0; i < m; ++i) s += col[i] * x[i];
    y[j] -= s;
  }
}

namespace ref {

int potrf_lower(int n, double* a, int lda) {
  // Textbook jik version, structured differently from the optimized one.
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < j; ++k) {
      for (int i = j; i < n; ++i) {
        a[i + j * lda] -= a[i + k * lda] * a[j + k * lda];
      }
    }
    if (a[j + j * lda] <= 0.0) return j + 1;
    const double d = std::sqrt(a[j + j * lda]);
    a[j + j * lda] = d;
    for (int i = j + 1; i < n; ++i) a[i + j * lda] /= d;
  }
  return 0;
}

void trsm_right_lower_trans(int m, int n, const double* l, int ldl, double* b,
                            int ldb) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = b[i + j * ldb];
      for (int k = 0; k < j; ++k) s -= b[i + k * ldb] * l[j + k * ldl];
      b[i + j * ldb] = s / l[j + j * ldl];
    }
  }
}

void syrk_lower(int n, int k, const double* a, int lda, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += a[i + l * lda] * a[j + l * lda];
      c[i + j * ldc] -= s;
    }
  }
}

void gemm_nt(int m, int n, int k, const double* a, int lda, const double* b,
             int ldb, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += a[i + l * lda] * b[j + l * ldb];
      c[i + j * ldc] -= s;
    }
  }
}

}  // namespace ref

}  // namespace xk::linalg
