#include "linalg/tiled.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace xk::linalg {

TiledMatrix::TiledMatrix(int n, int nb) : n_(n), nb_(nb) {
  nt_ = (n + nb - 1) / nb;
  data_.assign(static_cast<std::size_t>(nt_) * nt_ * tile_elems(), 0.0);
}

double TiledMatrix::get(int i, int j) const {
  const int ti = i / nb_, tj = j / nb_;
  return tile(ti, tj)[(i % nb_) + (j % nb_) * nb_];
}

void TiledMatrix::set(int i, int j, double v) {
  const int ti = i / nb_, tj = j / nb_;
  tile(ti, tj)[(i % nb_) + (j % nb_) * nb_] = v;
}

void TiledMatrix::fill_spd(std::uint64_t seed) {
  // Symmetric with entries in [-1, 1]; padded rows/cols get identity so the
  // factorization stays well-defined on the rounded-up size.
  const int padded = nt_ * nb_;
  Rng rng(seed);
  for (int j = 0; j < padded; ++j) {
    for (int i = j; i < padded; ++i) {
      double v;
      if (i >= n_ || j >= n_) {
        v = (i == j) ? 1.0 : 0.0;
      } else if (i == j) {
        v = rng.next_double(-1.0, 1.0) + static_cast<double>(n_);
      } else {
        v = rng.next_double(-1.0, 1.0);
      }
      set(i, j, v);
      set(j, i, v);
    }
  }
}

std::vector<double> TiledMatrix::to_dense_symmetric() const {
  const std::size_t n = static_cast<std::size_t>(n_);
  std::vector<double> dense(n * n);
  for (int j = 0; j < n_; ++j) {
    for (int i = j; i < n_; ++i) {
      const double v = get(i, j);
      dense[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n] = v;
      dense[static_cast<std::size_t>(j) + static_cast<std::size_t>(i) * n] = v;
    }
  }
  return dense;
}

double cholesky_residual(const TiledMatrix& factored,
                         const std::vector<double>& dense0) {
  // Matvec-based residual, O(n^2): with a deterministic probe vector x,
  // compare y = A0 x against z = L (L^T x). ||y - z|| / ||y|| bounds the
  // factorization error along x; random x makes a wrong factor essentially
  // impossible to miss while keeping verification cheap at bench sizes.
  const int n = factored.n();
  const auto nn = static_cast<std::size_t>(n);

  // Dense copy of L (lower triangle of the factored matrix).
  std::vector<double> l(nn * nn, 0.0);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      l[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * nn] =
          factored.get(i, j);
    }
  }
  Rng rng(0xfeedface);
  std::vector<double> x(nn), t(nn, 0.0), z(nn, 0.0), y(nn, 0.0);
  for (double& v : x) v = rng.next_double(-1.0, 1.0);

  // t = L^T x ; z = L t ; y = A0 x.
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    const double* col = l.data() + static_cast<std::size_t>(j) * nn;
    for (int i = j; i < n; ++i) s += col[i] * x[static_cast<std::size_t>(i)];
    t[static_cast<std::size_t>(j)] = s;
  }
  for (int j = 0; j < n; ++j) {
    const double tj = t[static_cast<std::size_t>(j)];
    const double* col = l.data() + static_cast<std::size_t>(j) * nn;
    for (int i = j; i < n; ++i) z[static_cast<std::size_t>(i)] += col[i] * tj;
  }
  for (int j = 0; j < n; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    const double* col = dense0.data() + static_cast<std::size_t>(j) * nn;
    for (int i = 0; i < n; ++i) y[static_cast<std::size_t>(i)] += col[i] * xj;
  }
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < nn; ++i) {
    num += (y[i] - z[i]) * (y[i] - z[i]);
    den += y[i] * y[i];
  }
  return std::sqrt(num) / (den > 0.0 ? std::sqrt(den) : 1.0);
}

}  // namespace xk::linalg
