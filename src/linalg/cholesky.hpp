// Tiled Cholesky factorization — the PLASMA dpotrf_Tile algorithm (§III-B)
// in four scheduling variants:
//
//   sequential : plain loop nest over the kernels (the baseline timing);
//   xkaapi     : one dataflow task per kernel on the X-Kaapi runtime —
//                accesses are the (contiguous) tiles, dependencies implicit;
//   quark      : the same task stream through the QUARK ABI (backend chosen
//                by the Quark handle: central list = "PLASMA/Quark" of
//                Fig. 2, xkaapi backend = the paper's ported library);
//   static     : statically scheduled pipeline with per-tile progress flags
//                and no task management at all ("PLASMA/static" of Fig. 2) —
//                row-cyclic ownership, left-looking order, spin-waits on
//                producer flags.
//
// All variants factor the lower triangle in place (A = L·L^T) and return 0
// on success or a nonzero pivot index on failure.
#pragma once

#include "linalg/tiled.hpp"

struct quark_s;

namespace xk {
class Runtime;
}

namespace xk::linalg {

int cholesky_sequential(TiledMatrix& a);
int cholesky_xkaapi(TiledMatrix& a, Runtime& rt);
int cholesky_quark(TiledMatrix& a, quark_s* quark);
int cholesky_static(TiledMatrix& a, unsigned nthreads);

/// Flop count of an n x n Cholesky (n^3/3 + lower order), for GFlop/s.
double cholesky_flops(int n);

}  // namespace xk::linalg
