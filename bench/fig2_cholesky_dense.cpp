// Figure 2 — Dense tiled Cholesky, GFlop/s vs matrix size, two tile sizes.
//
// Paper (48 cores, PLASMA 2.4.6): at NB=128 (fine grain) XKaapi clearly
// outperforms QUARK — QUARK's centralized ready list is the contention
// point; at NB=224 the gap narrows (task management amortized); XKaapi
// tracks the statically scheduled PLASMA closely; at size 3000, NB=128
// reaches ~150 GFlop/s while NB=224 drops to ~105 (less parallelism).
//
// Variants here (same kernel stream everywhere, see linalg/cholesky.hpp):
//   XKaapi        — dataflow tasks on this runtime,
//   QUARK-central — QUARK ABI on the centralized-list backend,
//   static        — progress-table pipeline, no task management.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "core/xkaapi.hpp"
#include "linalg/cholesky.hpp"
#include "quark/quark.h"

int main() {
  xkbench::json_begin("fig2_cholesky_dense");
  xkbench::preamble("Figure 2",
                    "Tiled Cholesky GFlop/s vs matrix size (NB = fine/coarse)");
  const unsigned cores = static_cast<unsigned>(
      xk::env_int("XKREPRO_CHOL_CORES",
                  static_cast<std::int64_t>(xkbench::core_counts().back())));
  // Paper sizes go to 10000+; defaults stay laptop-sized. NB pair keeps the
  // paper's fine/coarse contrast at the scaled-down sizes.
  const std::int64_t scale = xk::env_int("XKREPRO_CHOL_MAX", 1024);
  std::vector<int> sizes;
  for (std::int64_t s = 256; s <= scale; s += 256) {
    sizes.push_back(static_cast<int>(s));
  }
  const int nb_fine = static_cast<int>(xk::env_int("XKREPRO_NB_FINE", 64));
  const int nb_coarse = static_cast<int>(xk::env_int("XKREPRO_NB_COARSE", 128));

  xk::Table table({"NB", "n", "variant", "time(s)", "GFlop/s", "residual-ok"});

  for (int nb : {nb_fine, nb_coarse}) {
    for (int n : sizes) {
      const double flops = xk::linalg::cholesky_flops(n);

      auto bench_variant = [&](const char* name, auto&& factor) {
        xk::linalg::TiledMatrix a(n, nb);
        double t = 1e300;
        int info = 0;
        const unsigned nworkers =
            std::string(name) == "sequential" ? 1 : cores;
        xkbench::json_context(std::string(name) + "/NB=" + std::to_string(nb) +
                                  "/n=" + std::to_string(n),
                              nworkers, flops);
        for (std::size_t rep = 0; rep < xkbench::reps(); ++rep) {
          a.fill_spd(7);
          xk::Timer timer;
          info = factor(a);
          const double dt = timer.seconds();
          xkbench::json_record_one(dt);
          t = std::min(t, dt);
        }
        if (info != 0) xkbench::json_drop_current();
        table.add_row({std::to_string(nb), std::to_string(n), name,
                       xk::Table::num(t, 4),
                       xk::Table::num(flops / t / 1e9, 2),
                       info == 0 ? "yes" : "NO"});
      };

      bench_variant("sequential", [&](xk::linalg::TiledMatrix& a) {
        return xk::linalg::cholesky_sequential(a);
      });
      {
        xk::Config cfg;
        cfg.nworkers = cores;
        xk::Runtime rt(cfg);
        bench_variant("XKaapi", [&](xk::linalg::TiledMatrix& a) {
          return xk::linalg::cholesky_xkaapi(a, rt);
        });
      }
      {
        Quark* q = QUARK_New_Backend(static_cast<int>(cores),
                                     QUARK_BACKEND_CENTRAL);
        bench_variant("QUARK-central", [&](xk::linalg::TiledMatrix& a) {
          return xk::linalg::cholesky_quark(a, q);
        });
        QUARK_Delete(q);
      }
      bench_variant("static", [&](xk::linalg::TiledMatrix& a) {
        return xk::linalg::cholesky_static(a, cores);
      });
    }
  }
  std::printf("cores=%u (paper: fixed 48)\n\n", cores);
  table.print_auto(std::cout);
  return 0;
}
