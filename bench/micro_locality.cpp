// Micro — NUMA-partitioned foreach: domain-partitioned vs interleaved deal.
//
// The workload is a bandwidth-shaped sweep over a large double array
// (axpy-like update per element) executed with xk::parallel_for under two
// reserved-slice partitions:
//
//  * partitioned — ForeachPartition::kDomain: each locality domain owns one
//    contiguous sub-range; the array is first-touched under the same
//    partition, so on a real NUMA machine every domain streams its own
//    node's pages and adaptive splitting drains domain-local remainder
//    queues before crossing the boundary.
//  * interleaved — ForeachPartition::kFlat under a *scatter* placement:
//    worker-id-ordered slices alternate domains across the range, the
//    topology-blind deal this bench exists to measure against.
//
// Workers are placed with XK_PLACE=scatter so the two deals actually
// differ (under compact placement worker ids are already domain-grouped
// and the flat deal is accidentally contiguous). On single-node boxes the
// default synthetic shape (XK_TOPO unset => 2x4 here) exercises the
// partitioning code paths; the *ratio* only becomes meaningful on real
// multi-socket hardware. steals_local/steals_remote land in the schema-v1
// "counters" object of BENCH_micro_locality.json.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/xkaapi.hpp"

namespace {

std::vector<std::pair<std::string, std::uint64_t>> counter_set(
    const xk::WorkerStats& s) {
  return {
      {"steal_attempts", s.steal_attempts},
      {"steals_ok", s.steals_ok},
      {"steals_local", s.steals_local},
      {"steals_remote", s.steals_remote},
      {"steal_tasks", s.steal_tasks},
      {"splitter_calls", s.splitter_calls},
      {"foreach_chunks", s.foreach_chunks},
      {"shard_hits", s.shard_hits},
      {"shard_misses", s.shard_misses},
      {"starvation_escalations", s.starvation_escalations},
      {"parks", s.parks},
  };
}

void sweep_once(double* data, std::int64_t n, xk::ForeachPartition mode) {
  xk::ForeachOptions opt;
  opt.partition = mode;
  xk::parallel_for(
      0, n,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          data[i] = data[i] * 1.0000001 + 0.5;
        }
      },
      opt);
}

/// First touch under the measured partition: the array arrives as
/// *untouched* virgin pages (default-initialized new[], nothing written),
/// so on a first-touch NUMA system this write homes each page to the node
/// of the worker the deal assigned its range to. Touching the pages any
/// earlier (e.g. a value-initializing vector on the main thread) would
/// home everything to one node and erase the very difference this bench
/// measures.
void first_touch(double* data, std::int64_t n, xk::ForeachPartition mode) {
  xk::ForeachOptions opt;
  opt.partition = mode;
  xk::parallel_for(
      0, n,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) data[i] = 1.0;
      },
      opt);
}

}  // namespace

int main() {
  xkbench::json_begin("micro_locality");
  xkbench::preamble("Micro (foreach locality)",
                    "domain-partitioned vs interleaved foreach deal "
                    "(scatter placement)");
  const auto n = static_cast<std::int64_t>(
      xk::env_int("XKREPRO_LOC_N", 1 << 22));
  const auto passes =
      static_cast<int>(xk::env_int("XKREPRO_LOC_PASSES", 8));

  xk::Table table({"mode", "cores", "time(s)", "steals-ok", "local",
                   "remote", "splits", "chunks"});

  struct Mode {
    const char* name;
    xk::ForeachPartition partition;
    bool pin_rl_global;
  };
  // The rl-global ablation row pins the foreach path's independence from
  // the ready-list lock split (XK_RL_LOCK): slice claims are per-slice
  // atomic exchanges that share only the hit/miss *counters* with the
  // sharded ready lists, never their locks, so partitioned-rl-global must
  // track partitioned within noise. Only that named row forces the lock
  // mode — the two main series follow XK_RL_LOCK from the environment
  // like every other knob.
  const Mode modes[] = {
      {"partitioned", xk::ForeachPartition::kDomain, false},
      {"interleaved", xk::ForeachPartition::kFlat, false},
      {"partitioned-rl-global", xk::ForeachPartition::kDomain, true},
  };

  for (unsigned cores : xkbench::core_counts()) {
    for (const Mode& mode : modes) {
      xk::Config cfg = xk::Config::from_env();
      cfg.nworkers = cores;
      if (mode.pin_rl_global) cfg.rl_lock = xk::RlLockMode::kGlobal;
      if (!xk::env_string("XK_PLACE")) cfg.place = "scatter";
      if (cfg.topo.empty() && xk::Topology::discover().nnodes() < 2) {
        // Flat box: a synthetic two-node shape keeps the domain paths hot
        // (placement, per-domain remainder queues, hierarchical steal).
        cfg.topo = "2x4";
      }
      xk::Runtime rt(cfg);

      // Untouched allocation + in-runtime first touch (see first_touch).
      std::unique_ptr<double[]> data(new double[static_cast<std::size_t>(n)]);
      rt.run([&] { first_touch(data.get(), n, mode.partition); });

      rt.reset_stats();
      xkbench::json_context(mode.name, cores,
                            static_cast<double>(n) * passes);
      const double t = xkbench::time_best([&] {
        rt.run([&] {
          for (int p = 0; p < passes; ++p) {
            sweep_once(data.get(), n, mode.partition);
          }
        });
      });
      const xk::WorkerStats s = rt.stats_snapshot();
      xkbench::json_counters(counter_set(s));
      table.add_row({mode.name, std::to_string(cores), xk::Table::num(t, 4),
                     std::to_string(s.steals_ok),
                     std::to_string(s.steals_local),
                     std::to_string(s.steals_remote),
                     std::to_string(s.splitter_calls),
                     std::to_string(s.foreach_chunks)});
    }
  }
  table.print_auto(std::cout);
  return 0;
}
