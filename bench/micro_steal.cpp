// Micro — steal-path contention: N thieves vs 1 victim.
//
// The ROADMAP gap this closes: "the steal path has TSan coverage but no
// contention benchmark CI trend yet". Two workload shapes stress the two
// halves of the thief-side hot path:
//
//  * fib-tail — a fork-join recursion (each node spawns one child with a
//    Write access and recurses inline). Work per task is near zero, so the
//    run time is dominated by spawn + steal protocol cost: request posting,
//    combiner election, batched replies, and idle parking once the tree
//    thins out.
//  * dataflow-grid — `rows` independent RW chains of length `steps`,
//    interleaved in program order. Steal-time readiness computation has to
//    skip blocked candidates, so this shape measures the incremental scan
//    cache and (at small ready-list thresholds) the accelerated pop path.
//
// All worker counts run the same total work on the same machine; the
// *shape* of the curve (flat ≈ healthy steal path on an oversubscribed box,
// exploding ≈ contention) plus the emitted scheduler counters are the
// regression signal. Counters land in BENCH_micro_steal.json as the
// optional schema-v1 "counters" object.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/xkaapi.hpp"

namespace {

void fib_tail(std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  xk::spawn(fib_tail, xk::write(&r1), n - 1);
  fib_tail(&r2, n - 2);
  xk::sync();
  *r = r1 + r2;
}

void dataflow_grid(std::vector<double>& cells, int rows, int steps,
                   int work) {
  for (int step = 0; step < steps; ++step) {
    for (int row = 0; row < rows; ++row) {
      xk::spawn(
          [work](double* c) {
            double x = *c;
            for (int i = 0; i < work; ++i) x = x * 1.0000001 + 1e-9;
            *c = x;
          },
          xk::rw(&cells[static_cast<std::size_t>(row)]));
    }
  }
  xk::sync();
}

void add_counter_row(xk::Table& table, const char* shape, unsigned cores,
                     double t, const xk::WorkerStats& s) {
  const double per_round =
      s.combiner_rounds != 0
          ? static_cast<double>(s.requests_served) /
                static_cast<double>(s.combiner_rounds)
          : 0.0;
  table.add_row({shape, std::to_string(cores), xk::Table::num(t, 4),
                 std::to_string(s.steal_attempts),
                 std::to_string(s.steals_ok), std::to_string(s.steal_tasks),
                 std::to_string(s.combiner_rounds), xk::Table::num(per_round, 2),
                 std::to_string(s.scan_entries),
                 std::to_string(s.parks), std::to_string(s.park_wakes)});
}

}  // namespace

int main() {
  xkbench::json_begin("micro_steal");
  xkbench::preamble("Micro (steal contention)",
                    "N thieves vs 1 victim: fib-tail and dataflow-grid");
  const int fib_n = static_cast<int>(xk::env_int("XKREPRO_STEAL_FIB_N", 24));
  const int rows = static_cast<int>(xk::env_int("XKREPRO_STEAL_ROWS", 48));
  const int steps = static_cast<int>(xk::env_int("XKREPRO_STEAL_STEPS", 32));
  const int work = static_cast<int>(xk::env_int("XKREPRO_STEAL_WORK", 200));

  xk::Table table({"shape", "cores", "time(s)", "attempts", "steals-ok",
                   "steal-tasks", "combiner-rounds", "served/round",
                   "scan-entries", "parks", "park-wakes"});

  // Unrecorded process warmup so the first swept core count doesn't absorb
  // the cold start (page faults, thread spawn, frequency ramp).
  {
    xk::Runtime rt;
    std::uint64_t r = 0;
    rt.run([&] {
      fib_tail(&r, fib_n > 4 ? fib_n - 4 : fib_n);
      xk::sync();
    });
    std::vector<double> cells(static_cast<std::size_t>(rows), 1.0);
    rt.run([&] { dataflow_grid(cells, rows, steps > 4 ? steps / 4 : steps,
                               work); });
  }

  for (unsigned cores : xkbench::core_counts()) {
    // from_env so topology/placement knobs (XK_TOPO, XK_PLACE, ...) shape
    // this run like any production one (the topo CI leg sets XK_TOPO and
    // checks the steals_local/steals_remote split emitted below).
    xk::Config cfg = xk::Config::from_env();
    cfg.nworkers = cores;
    xk::Runtime rt(cfg);

    rt.reset_stats();
    std::uint64_t r = 0;
    xkbench::json_context("fib-tail", cores);
    const double t_fib = xkbench::time_best([&] {
      r = 0;
      rt.run([&] {
        fib_tail(&r, fib_n);
        xk::sync();
      });
    });
    xk::WorkerStats s = rt.stats_snapshot();
    xkbench::json_counters(rt.metrics_snapshot());
    add_counter_row(table, "fib-tail", cores, t_fib, s);

    rt.reset_stats();
    std::vector<double> cells(static_cast<std::size_t>(rows), 1.0);
    xkbench::json_context("dataflow-grid", cores);
    const double t_grid = xkbench::time_best(
        [&] { rt.run([&] { dataflow_grid(cells, rows, steps, work); }); });
    s = rt.stats_snapshot();
    xkbench::json_counters(rt.metrics_snapshot());
    add_counter_row(table, "dataflow-grid", cores, t_grid, s);
  }

  // Ready-list lock ablation (XK_RL_LOCK): the dataflow grid again, under
  // the pre-split single mutex, the two-level graph/shard locking, and the
  // lock-free ring scheme. A near-zero attach threshold plus a wider grid
  // (more rows = more blocked candidates per scan) pushes steal rounds
  // onto the accelerated pop path even at smoke sizes, so these series
  // measure the list's locking — not whether a scan ever got expensive
  // enough to attach one. All series run the identical workload; only the
  // lock mode differs. CI gates split-must-not-lose-to-global and
  // lockfree-must-not-lose-to-split on them (scripts/check_scaling.py
  // --baseline-series).
  const int abl_rows = rows * 2;
  struct RlMode {
    const char* name;
    xk::RlLockMode mode;
  };
  const RlMode rl_modes[] = {
      {"dataflow-grid-rl-global", xk::RlLockMode::kGlobal},
      {"dataflow-grid-rl-split", xk::RlLockMode::kSplit},
      {"dataflow-grid-rl-lockfree", xk::RlLockMode::kLockFree},
  };
  for (unsigned cores : xkbench::core_counts()) {
    for (const RlMode& m : rl_modes) {
      xk::Config cfg = xk::Config::from_env();
      cfg.nworkers = cores;
      cfg.rl_lock = m.mode;
      cfg.ready_list_threshold = 4;
      xk::Runtime rt(cfg);
      rt.reset_stats();
      std::vector<double> cells(static_cast<std::size_t>(abl_rows), 1.0);
      xkbench::json_context(m.name, cores);
      const double t = xkbench::time_best([&] {
        rt.run([&] { dataflow_grid(cells, abl_rows, steps, work); });
      });
      const xk::WorkerStats s = rt.stats_snapshot();
      xkbench::json_counters(rt.metrics_snapshot());
      add_counter_row(table, m.name, cores, t, s);
    }
  }
  // Steal-width ablation (XK_STEAL_ADAPTIVE): the dataflow grid under the
  // feedback-sized adaptive protocol vs the fixed XK_STEAL_BATCH deal. The
  // identical workload runs in both modes; the adaptive series must not
  // lose to fixed (CI gates it at 8 workers with check_scaling.py
  // --baseline-series, the same pattern as the rl-split gate). The
  // adaptive counters (steals_half / adaptive_flips / probes_skipped)
  // land in the JSON alongside the timing.
  for (unsigned cores : xkbench::core_counts()) {
    for (const bool adaptive : {false, true}) {
      xk::Config cfg = xk::Config::from_env();
      cfg.nworkers = cores;
      cfg.steal_adaptive = adaptive;
      xk::Runtime rt(cfg);
      rt.reset_stats();
      std::vector<double> cells(static_cast<std::size_t>(rows), 1.0);
      const char* name = adaptive ? "dataflow-grid-steal-adaptive"
                                  : "dataflow-grid-steal-fixed";
      xkbench::json_context(name, cores);
      const double t = xkbench::time_best(
          [&] { rt.run([&] { dataflow_grid(cells, rows, steps, work); }); });
      const xk::WorkerStats s = rt.stats_snapshot();
      xkbench::json_counters(rt.metrics_snapshot());
      add_counter_row(table, name, cores, t, s);
    }
  }
  table.print_auto(std::cout);
  return 0;
}
