// Ablation — adaptive loops (§II-D/E) vs eager task creation vs OpenMP-model
// scheduling, across grain sizes.
//
// The paper's argument: performance-portable task code must create many more
// tasks than cores, whose management is pure overhead; adaptive tasks create
// work *on demand* instead. Expected shape: pre-split tasking degrades as
// the grain shrinks (task count explodes) while the adaptive foreach stays
// flat (splits only happen when a thief arrives).
#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/loop_schedulers.hpp"
#include "bench/common.hpp"
#include "core/xkaapi.hpp"

namespace {

// The loop body: a small flop kernel per index.
inline double body_work(std::int64_t i) {
  double x = static_cast<double>(i % 97) + 1.0;
  for (int k = 0; k < 40; ++k) x = x * 1.0001 + 0.5 / x;
  return x;
}

}  // namespace

int main() {
  xkbench::json_begin("ablation_adaptive");
  xkbench::preamble("Ablation (adaptive loops)",
                    "adaptive foreach vs pre-split tasks vs loop team");
  const std::int64_t n = xk::env_int("XKREPRO_ABL_N", 1 << 20);
  const unsigned cores = static_cast<unsigned>(xk::env_int(
      "XKREPRO_ABL_CORES",
      static_cast<std::int64_t>(xkbench::core_counts().back())));

  std::vector<double> out(static_cast<std::size_t>(n));
  auto chunk_body = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      out[static_cast<std::size_t>(i)] = body_work(i);
    }
  };

  xkbench::json_context("sequential", 1, static_cast<double>(n));
  const double t_seq = xkbench::time_best([&] { chunk_body(0, n); });
  std::printf("n=%ld, sequential: %.4fs\n\n", static_cast<long>(n), t_seq);

  xk::Table table(
      {"strategy", "grain", "tasks/chunks", "time(s)", "speedup"});

  for (std::int64_t grain : {64, 256, 1024, 4096, 16384}) {
    // 1. Adaptive foreach (tasks created on demand).
    {
      xk::Config cfg;
      cfg.nworkers = cores;
      xk::Runtime rt(cfg);
      rt.reset_stats();
      double t = 0.0;
      xkbench::json_context("adaptive-foreach/grain=" + std::to_string(grain),
                            cores, static_cast<double>(n));
      rt.run([&] {
        t = xkbench::time_best([&] {
          xk::ForeachOptions opt;
          opt.grain = grain;
          xk::parallel_for(0, n, chunk_body, opt);
        });
      });
      table.add_row({"adaptive-foreach", std::to_string(grain),
                     std::to_string(rt.stats_snapshot().foreach_chunks),
                     xk::Table::num(t, 4), xk::Table::num(t_seq / t, 2)});
    }
    // 2. Pre-split: one spawned task per grain-sized chunk (eager creation —
    //    what the adaptive model avoids).
    {
      xk::Config cfg;
      cfg.nworkers = cores;
      xk::Runtime rt(cfg);
      rt.reset_stats();
      double t = 0.0;
      xkbench::json_context("pre-split-tasks/grain=" + std::to_string(grain),
                            cores, static_cast<double>(n));
      rt.run([&] {
        t = xkbench::time_best([&] {
          for (std::int64_t lo = 0; lo < n; lo += grain) {
            const std::int64_t hi = std::min(n, lo + grain);
            xk::spawn([&chunk_body, lo, hi] { chunk_body(lo, hi); });
          }
          xk::sync();
        });
      });
      table.add_row({"pre-split-tasks", std::to_string(grain),
                     std::to_string(rt.stats_snapshot().tasks_spawned),
                     xk::Table::num(t, 4), xk::Table::num(t_seq / t, 2)});
    }
    // 3. OpenMP-model dynamic schedule at the same chunk size.
    {
      xk::baseline::LoopTeam team(cores);
      xkbench::json_context("omp-dynamic/grain=" + std::to_string(grain),
                            cores, static_cast<double>(n));
      const double t = xkbench::time_best([&] {
        team.run(0, n, xk::baseline::LoopSchedule::kDynamic, grain,
                 [&](std::int64_t lo, std::int64_t hi, unsigned) {
                   chunk_body(lo, hi);
                 });
      });
      table.add_row({"omp-dynamic", std::to_string(grain),
                     std::to_string((n + grain - 1) / grain),
                     xk::Table::num(t, 4), xk::Table::num(t_seq / t, 2)});
    }
  }
  table.print_auto(std::cout);
  return 0;
}
