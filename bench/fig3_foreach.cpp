// Figure 3 — Parallel-loop speedup (Tseq / Tpar) vs core count.
//
// Paper: the two parallel loops of the EPX application under OpenMP/static,
// OpenMP/dynamic and X-Kaapi's kaapic_foreach. Static and dynamic OpenMP
// coincide; X-Kaapi matches them and pulls ahead past ~25 cores.
//
// Here: the same two EPX loops (LOOPELM + REPERA on the MEPPEN instance)
// run under the LoopTeam static/dynamic/guided schedulers and under
// xk::parallel_for (adaptive task + reserved slices + aggregated splits).
#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/loop_schedulers.hpp"
#include "bench/common.hpp"
#include "core/xkaapi.hpp"
#include "epx/kernels.hpp"
#include "epx/simulation.hpp"

namespace {

using namespace xk::epx;

constexpr int kInner = 5;  // amplify the measured region above timer noise

// One measured unit: both EPX loops back to back on a prepared state.
double run_loops(Scenario& s, LoopelmState& elm, ReperaState& rep,
                 const LoopRunner& runner, std::size_t reps) {
  std::vector<double> samples;
  for (std::size_t r = 0; r < reps + 1; ++r) {  // first is warmup
    xk::Timer t;
    for (int i = 0; i < kInner; ++i) {
      loopelm(s.mesh, elm, s.dt, s.material_iters, runner);
      repera(s.mesh, rep, runner);
    }
    const double dt = t.seconds();
    if (r > 0) samples.push_back(dt);
  }
  xkbench::json_record(samples);
  return *std::min_element(samples.begin(), samples.end());
}

}  // namespace

int main() {
  xkbench::json_begin("fig3_foreach");
  xkbench::preamble("Figure 3",
                    "EPX parallel loops: speedup vs cores, OpenMP-model "
                    "schedulers vs XKaapi foreach");
  const int scale = static_cast<int>(xk::env_int("XKREPRO_LOOP_SCALE", 4));
  Scenario s = make_meppen(scale);
  LoopelmState elm;
  elm.resize(s.mesh.nelems());
  ReperaState rep;
  std::printf("instance: MEPPEN x%d (%d elements, %d nodes, %zu slave nodes)\n\n",
              scale, s.mesh.nelems(), s.mesh.nnodes(),
              s.mesh.contacts[0].slave_nodes.size());

  // One measured sample covers kInner runs of loopelm (nelems elements)
  // plus repera (every contact surface's slave nodes).
  std::size_t nslaves = 0;
  for (const auto& cs : s.mesh.contacts) nslaves += cs.slave_nodes.size();
  const double loop_items =
      static_cast<double>(kInner) *
      (static_cast<double>(s.mesh.nelems()) + static_cast<double>(nslaves));
  xkbench::json_context("sequential", 1, loop_items);
  const double t_seq = run_loops(s, elm, rep, seq_runner(), xkbench::reps());
  std::printf("sequential loops time: %.4fs\n\n", t_seq);

  xk::Table table({"scheduler", "cores", "time(s)", "speedup(Tseq/Tpar)"});

  for (unsigned cores : xkbench::core_counts()) {
    {
      xk::baseline::LoopTeam team(cores);
      auto runner = [&team](std::int64_t n, const auto& body) {
        team.run(0, n, xk::baseline::LoopSchedule::kStatic, 0,
                 [&body](std::int64_t lo, std::int64_t hi, unsigned) {
                   body(lo, hi);
                 });
      };
      xkbench::json_context("OpenMP/static", cores, loop_items);
      const double t = run_loops(s, elm, rep, runner, xkbench::reps());
      table.add_row({"OpenMP/static", std::to_string(cores),
                     xk::Table::num(t, 4), xk::Table::num(t_seq / t, 2)});
    }
    {
      xk::baseline::LoopTeam team(cores);
      auto runner = [&team](std::int64_t n, const auto& body) {
        team.run(0, n, xk::baseline::LoopSchedule::kDynamic, 64,
                 [&body](std::int64_t lo, std::int64_t hi, unsigned) {
                   body(lo, hi);
                 });
      };
      xkbench::json_context("OpenMP/dynamic", cores, loop_items);
      const double t = run_loops(s, elm, rep, runner, xkbench::reps());
      table.add_row({"OpenMP/dynamic", std::to_string(cores),
                     xk::Table::num(t, 4), xk::Table::num(t_seq / t, 2)});
    }
    {
      xk::Config cfg;
      cfg.nworkers = cores;
      xk::Runtime rt(cfg);
      double t = 0.0;
      xkbench::json_context("XKaapi", cores, loop_items);
      rt.run([&] { t = run_loops(s, elm, rep, xkaapi_runner(), xkbench::reps()); });
      table.add_row({"XKaapi", std::to_string(cores), xk::Table::num(t, 4),
                     xk::Table::num(t_seq / t, 2)});
    }
  }
  table.print_auto(std::cout);
  return 0;
}
