// Micro — service-mode tail latency: open-loop job submission.
//
// The service runtime's contract is "submit() from anywhere, jobs finish
// soon"; the honest way to measure "soon" is an *open-loop* driver. A
// seeded Poisson process schedules arrival times in advance and the
// submitter sticks to that clock no matter how the runtime is doing —
// unlike a closed loop, a slow runtime cannot throttle its own load, so
// queueing delay shows up in the tail instead of hiding in a depressed
// throughput number (coordinated omission).
//
// Per-job latency = completion stamp - *scheduled* arrival stamp (not the
// actual submit call, which may itself be late when the driver falls
// behind). Each job's latency lands in the JSON report as one sample, so
// the schema-v1 median_s/p95_s/p99_s fields are true per-job latency
// quantiles over thousands of jobs — not quantiles over a handful of
// whole-run repetitions. CI gates p95_s via scripts/check_scaling.py
// --metric p95_s --max-seconds.
//
// Knobs: XKREPRO_SVC_JOBS (arrivals per sweep point), XKREPRO_SVC_RATE
// (offered load, jobs/s), XKREPRO_SVC_WORK (spin iterations per job),
// XKREPRO_SVC_TENANTS (round-robin tenant spread), XKREPRO_SVC_SEED.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/xkaapi.hpp"
#include "support/timing.hpp"

namespace {

/// Spin kernel: enough arithmetic that a job is real work, small enough
/// that queueing (not service time) dominates the tail at smoke sizes.
double job_work(int iters) {
  double x = 1.0;
  for (int i = 0; i < iters; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

}  // namespace

int main() {
  xkbench::json_begin("micro_service");
  xkbench::preamble("Micro (service tail latency)",
                    "open-loop Poisson arrivals into Runtime::submit()");
  const std::size_t jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(1, xk::env_int("XKREPRO_SVC_JOBS", 2000)));
  const double rate =
      static_cast<double>(std::max<std::int64_t>(
          1, xk::env_int("XKREPRO_SVC_RATE", 10000)));  // jobs per second
  const int work =
      static_cast<int>(xk::env_int("XKREPRO_SVC_WORK", 2000));
  const unsigned tenants = static_cast<unsigned>(
      std::max<std::int64_t>(1, xk::env_int("XKREPRO_SVC_TENANTS", 2)));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(xk::env_int("XKREPRO_SVC_SEED", 42));

  xk::Table table({"cores", "offered(1/s)", "achieved(1/s)", "p50(us)",
                   "p95(us)", "p99(us)", "max(us)", "rejected"});

  for (unsigned cores : xkbench::core_counts()) {
    xk::Config cfg = xk::Config::from_env();
    cfg.nworkers = cores;
    xk::Runtime rt(cfg);

    // Warmup: spin up the dispatcher thread and fault in the pool before
    // the measured arrival clock starts.
    {
      std::vector<xk::JobToken> warm;
      warm.reserve(128);
      for (int i = 0; i < 128; ++i) {
        warm.push_back(rt.submit([work] { job_work(work); }));
      }
      for (auto& t : warm) t.wait();
    }
    rt.reset_stats();
    // ServiceStats counters are cumulative (reset_stats covers worker
    // counters only): diff against the post-warmup baseline.
    const xk::ServiceStats s0 = rt.service_stats();

    // Pre-draw the whole arrival schedule (exponential gaps = Poisson
    // process) so the hot loop does no RNG work.
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> gap(rate);
    std::vector<std::uint64_t> sched_ns(jobs);
    double t_arrival = 0.0;
    for (std::size_t i = 0; i < jobs; ++i) {
      t_arrival += gap(rng);
      sched_ns[i] = static_cast<std::uint64_t>(t_arrival * 1e9);
    }

    // One slot per job, written exactly once by the job body; 0 marks a
    // rejected (never-run) job. kCancelled/kFailed cannot happen here.
    std::vector<std::uint64_t> done_ns(jobs, 0);
    std::vector<xk::JobToken> tokens(jobs);

    const std::uint64_t t0 = xk::monotonic_ns();
    for (std::size_t i = 0; i < jobs; ++i) {
      // Open loop: busy-wait until the *scheduled* instant; never let a
      // late completion push the arrival clock (sleep_for is too coarse
      // at 10k/s gaps, and the spin is the driver's cost, not the
      // runtime's).
      while (xk::monotonic_ns() - t0 < sched_ns[i]) {
      }
      xk::SubmitOptions opts;
      opts.tenant = static_cast<unsigned>(i) % tenants;
      std::uint64_t* slot = &done_ns[i];
      tokens[i] = rt.submit([slot, work] {
        job_work(work);
        *slot = xk::monotonic_ns();
      }, opts);
    }
    for (auto& t : tokens) t.wait();
    const std::uint64_t t_end = xk::monotonic_ns();

    std::vector<double> lat_s;
    lat_s.reserve(jobs);
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < jobs; ++i) {
      if (done_ns[i] == 0) {
        ++rejected;
        continue;
      }
      const std::uint64_t abs_sched = t0 + sched_ns[i];
      lat_s.push_back(done_ns[i] > abs_sched
                          ? static_cast<double>(done_ns[i] - abs_sched) * 1e-9
                          : 0.0);
    }
    if (lat_s.empty()) {
      std::fprintf(stderr, "micro_service: every job rejected at %u cores\n",
                   cores);
      return 1;
    }
    xkbench::json_context("open-loop", cores);
    xkbench::json_record(lat_s);
    xkbench::json_counters(rt.metrics_snapshot());

    std::vector<double> sorted = lat_s;
    std::sort(sorted.begin(), sorted.end());
    auto q = [&](double p) {
      const std::size_t idx = static_cast<std::size_t>(
          p * static_cast<double>(sorted.size() - 1));
      return sorted[idx] * 1e6;
    };
    const double span_s = static_cast<double>(t_end - t0) * 1e-9;
    const double achieved =
        span_s > 0.0 ? static_cast<double>(lat_s.size()) / span_s : 0.0;
    table.add_row({std::to_string(cores), xk::Table::num(rate, 0),
                   xk::Table::num(achieved, 0), xk::Table::num(q(0.50), 1),
                   xk::Table::num(q(0.95), 1), xk::Table::num(q(0.99), 1),
                   xk::Table::num(sorted.back() * 1e6, 1),
                   std::to_string(rejected)});

    const xk::ServiceStats s = rt.service_stats();
    if (s.completed - s0.completed != lat_s.size() ||
        s.rejected - s0.rejected != rejected) {
      std::fprintf(stderr,
                   "micro_service: accounting mismatch at %u cores "
                   "(completed=%llu lat=%zu rejected=%llu/%zu)\n",
                   cores,
                   static_cast<unsigned long long>(s.completed - s0.completed),
                   lat_s.size(),
                   static_cast<unsigned long long>(s.rejected - s0.rejected),
                   rejected);
      xkbench::json_drop_current();
      return 1;
    }
  }

  table.print_auto(std::cout);
  return 0;
}
