// Ablation — the two §II-C optimizations, isolated:
//
//  * steal-request aggregation: k pending requests served by one elected
//    combiner ("a reduction of the total steal request number", [26]);
//  * the ready-list accelerating structure: steal cost drops from a stack
//    traversal to a pop.
//
// Workloads: fib (fork-join, aggregation-sensitive: many simultaneous
// thieves) and a wide dataflow grid (readiness-scan-heavy: the traversal
// cost the ready list amortizes). Reported: wall time + scheduler counters.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "core/xkaapi.hpp"

namespace {

void fib_xk(std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  xk::spawn(fib_xk, xk::write(&r1), n - 1);
  fib_xk(&r2, n - 2);
  xk::sync();
  *r = r1 + r2;
}

// Wide dataflow grid: `rows` independent RW chains of length `len`,
// interleaved in program order so readiness scans must skip blocked tasks.
void dataflow_grid(std::vector<double>& cells, int rows, int len) {
  for (int step = 0; step < len; ++step) {
    for (int row = 0; row < rows; ++row) {
      xk::spawn(
          [](double* c) {
            double x = *c;
            for (int i = 0; i < 2000; ++i) x = x * 1.0000001 + 1e-9;
            *c = x;
          },
          xk::rw(&cells[static_cast<std::size_t>(row)]));
    }
  }
  xk::sync();
}

struct Variant {
  const char* name;
  bool aggregation;
  std::size_t readylist_threshold;
  bool adaptive;
};

}  // namespace

int main() {
  xkbench::json_begin("ablation_steal");
  xkbench::preamble("Ablation (steal path)",
                    "request aggregation and ready-list, isolated");
  const int fib_n = static_cast<int>(xk::env_int("XKREPRO_FIB_N", 25));
  const unsigned cores = static_cast<unsigned>(xk::env_int(
      "XKREPRO_ABL_CORES",
      static_cast<std::int64_t>(xkbench::core_counts().back())));

  // The four historical variants pin steal_adaptive off so their series
  // stay comparable across the PR trajectory (fixed XK_STEAL_BATCH deals,
  // the pre-adaptive protocol); the fifth turns the feedback-sized
  // steal-one/steal-half protocol on over the full configuration.
  const Variant variants[] = {
      {"full (agg+RL)", true, 256, false},
      {"no-aggregation", false, 256, false},
      {"no-readylist", true, 0, false},
      {"neither", false, 0, false},
      {"adaptive (agg+RL)", true, 256, true},
  };

  // Unrecorded process warmup: the first variant otherwise pays the cold
  // start (page faults, thread spawn, frequency ramp) and the fixed variant
  // order would bias the comparison against it.
  {
    xk::Config cfg;
    cfg.nworkers = cores;
    xk::Runtime rt(cfg);
    std::uint64_t r = 0;
    rt.run([&] {
      fib_xk(&r, fib_n > 4 ? fib_n - 4 : fib_n);
      xk::sync();
    });
    std::vector<double> cells(64, 1.0);
    rt.run([&] { dataflow_grid(cells, 64, 10); });
  }

  xk::Table table({"workload", "variant", "time(s)", "steal-attempts",
                   "steals-ok", "combiner-rounds", "aggregated-replies",
                   "rl-attach", "rl-pops", "scan-visited"});

  for (const Variant& v : variants) {
    xk::Config cfg;
    cfg.nworkers = cores;
    cfg.steal_aggregation = v.aggregation;
    cfg.ready_list_threshold = v.readylist_threshold;
    cfg.steal_adaptive = v.adaptive;
    xk::Runtime rt(cfg);

    // Workload 1: fib.
    rt.reset_stats();
    std::uint64_t r = 0;
    xkbench::json_context(std::string("fib/") + v.name, cores);
    const double t_fib = xkbench::time_best([&] {
      r = 0;
      rt.run([&] {
        fib_xk(&r, fib_n);
        xk::sync();
      });
    });
    auto s = rt.stats_snapshot();
    xkbench::json_counters({{"steal_attempts", s.steal_attempts},
                            {"steals_ok", s.steals_ok},
                            {"steal_tasks", s.steal_tasks},
                            {"combiner_rounds", s.combiner_rounds},
                            {"requests_aggregated", s.requests_aggregated},
                            {"scan_visited", s.scan_visited},
                            {"scan_entries", s.scan_entries},
                            {"readylist_pops", s.readylist_pops},
                            {"parks", s.parks},
                            {"park_wakes", s.park_wakes},
                            {"steals_half", s.steals_half},
                            {"adaptive_flips", s.adaptive_flips},
                            {"probes_skipped", s.probes_skipped},
                            {"quiesce_folds", s.quiesce_folds},
                            {"join_wakes", s.join_wakes}});
    table.add_row({"fib", v.name, xk::Table::num(t_fib, 4),
                   std::to_string(s.steal_attempts),
                   std::to_string(s.steals_ok),
                   std::to_string(s.combiner_rounds),
                   std::to_string(s.requests_aggregated),
                   std::to_string(s.readylist_attach),
                   std::to_string(s.readylist_pops),
                   std::to_string(s.scan_visited)});

    // Workload 2: dataflow grid.
    rt.reset_stats();
    std::vector<double> cells(64, 1.0);
    xkbench::json_context(std::string("dataflow-grid/") + v.name, cores);
    const double t_grid = xkbench::time_best([&] {
      rt.run([&] { dataflow_grid(cells, 64, 40); });
    });
    s = rt.stats_snapshot();
    xkbench::json_counters({{"steal_attempts", s.steal_attempts},
                            {"steals_ok", s.steals_ok},
                            {"steal_tasks", s.steal_tasks},
                            {"combiner_rounds", s.combiner_rounds},
                            {"requests_aggregated", s.requests_aggregated},
                            {"scan_visited", s.scan_visited},
                            {"scan_entries", s.scan_entries},
                            {"readylist_pops", s.readylist_pops},
                            {"parks", s.parks},
                            {"park_wakes", s.park_wakes},
                            {"steals_half", s.steals_half},
                            {"adaptive_flips", s.adaptive_flips},
                            {"probes_skipped", s.probes_skipped},
                            {"quiesce_folds", s.quiesce_folds},
                            {"join_wakes", s.join_wakes}});
    table.add_row({"dataflow-grid", v.name, xk::Table::num(t_grid, 4),
                   std::to_string(s.steal_attempts),
                   std::to_string(s.steals_ok),
                   std::to_string(s.combiner_rounds),
                   std::to_string(s.requests_aggregated),
                   std::to_string(s.readylist_attach),
                   std::to_string(s.readylist_pops),
                   std::to_string(s.scan_visited)});
  }
  table.print_auto(std::cout);
  return 0;
}
