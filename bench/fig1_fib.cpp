// Figure 1 — Fibonacci task-creation microbenchmark.
//
// Paper (48-core Magny-Cours, fib(35), seq 0.091 s):
//   1 core : Cilk+ 1.063s (x11.7)  TBB 2.356s (x26)  Kaapi 0.728s (x8)
//            OpenMP 2.429s (x27)
//   scaling: all work-stealers scale to 48 cores; OpenMP *diverges*
//            (51s on 8 cores, stopped after 5 min on >= 32).
//
// Stand-ins (Cilk+/TBB are proprietary; see DESIGN.md §2):
//   XKaapi        — this runtime (one spawned child + inline call per node);
//   WS-pooled     — classic deque work stealing, pooled records (Cilk-like);
//   WS-heap       — same scheduler, heap + std::function records (TBB-like);
//   GOMP-throttle — central-queue task pool with libGOMP's 64x cutoff;
//   GOMP-raw      — the same without the cutoff: the diverging OpenMP line.
//
// Expected shape: XKaapi lowest 1-core overhead; WS-heap a few x heavier
// than WS-pooled; GOMP-raw far heavier and degrading as threads contend on
// the central queue ("(no time)" when a run exceeds XKREPRO_TIMEOUT).
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "baselines/gomp_pool.hpp"
#include "baselines/ws_classic.hpp"
#include "bench/common.hpp"
#include "core/xkaapi.hpp"

namespace {

std::uint64_t fib_seq(int n) {
  return n < 2 ? static_cast<std::uint64_t>(n)
               : fib_seq(n - 1) + fib_seq(n - 2);
}

void fib_xk(std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  xk::spawn(fib_xk, xk::write(&r1), n - 1);
  fib_xk(&r2, n - 2);
  xk::sync();
  *r = r1 + r2;
}

void fib_ws(xk::baseline::ClassicWS& ws, std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  ws.spawn([&ws, &r1, n] { fib_ws(ws, &r1, n - 1); });
  fib_ws(ws, &r2, n - 2);
  ws.taskwait();
  *r = r1 + r2;
}

void fib_gomp(xk::baseline::GompLikePool& pool, std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  pool.spawn([&pool, &r1, n] { fib_gomp(pool, &r1, n - 1); });
  fib_gomp(pool, &r2, n - 2);
  pool.taskwait();
  *r = r1 + r2;
}

}  // namespace

int main() {
  xkbench::json_begin("fig1_fib");
  xkbench::preamble("Figure 1", "Fibonacci task-creation overhead");
  const int n = static_cast<int>(xk::env_int("XKREPRO_FIB_N", 27));
  const double timeout = xk::env_double("XKREPRO_TIMEOUT", 20.0);
  const std::uint64_t expect = fib_seq(n);

  xkbench::json_context("sequential", 1);
  const double t_seq = xkbench::time_best([&] {
    volatile std::uint64_t r = fib_seq(n);
    (void)r;
  });
  std::printf("fib(%d) sequential time: %.4fs\n\n", n, t_seq);

  xk::Table table({"runtime", "cores", "time(s)", "slowdown@1",
                   "speedup-vs-seq", "ok"});

  auto run_xk = [](unsigned cores, int depth, std::uint64_t want) {
    // from_env so topology/placement knobs (XK_TOPO, XK_PLACE, ...) shape
    // this run like any production one.
    xk::Config cfg = xk::Config::from_env();
    cfg.nworkers = cores;
    xk::Runtime rt(cfg);
    std::uint64_t r = 0;
    const double t = xkbench::time_best([&] {
      r = 0;
      rt.run([&] {
        fib_xk(&r, depth);
        xk::sync();
      });
    });
    return r == want ? t : -1.0;
  };
  auto run_ws_pooled = [](unsigned cores, int depth, std::uint64_t want) {
    xk::baseline::ClassicWS ws(cores);
    std::uint64_t r = 0;
    const double t = xkbench::time_best([&] {
      r = 0;
      ws.parallel([&] { fib_ws(ws, &r, depth); });
    });
    return r == want ? t : -1.0;
  };
  auto run_ws_heap = [](unsigned cores, int depth, std::uint64_t want) {
    xk::baseline::WsOptions opt;
    opt.pooled_tasks = false;
    xk::baseline::ClassicWS ws(cores, opt);
    std::uint64_t r = 0;
    const double t = xkbench::time_best([&] {
      r = 0;
      ws.parallel([&] { fib_ws(ws, &r, depth); });
    });
    return r == want ? t : -1.0;
  };
  auto run_gomp_throttle = [](unsigned cores, int depth, std::uint64_t want) {
    xk::baseline::GompLikePool pool(cores);
    std::uint64_t r = 0;
    const double t = xkbench::time_best([&] {
      r = 0;
      pool.parallel([&] { fib_gomp(pool, &r, depth); });
    });
    return r == want ? t : -1.0;
  };
  auto run_gomp_raw = [](unsigned cores, int depth, std::uint64_t want) {
    xk::baseline::GompOptions opt;
    opt.throttle = false;
    xk::baseline::GompLikePool pool(cores, opt);
    std::uint64_t r = 0;
    const double t = xkbench::time_best(
        [&] {
          r = 0;
          pool.parallel([&] { fib_gomp(pool, &r, depth); });
        },
        1);  // single rep: this is the diverging configuration
    return r == want ? t : -1.0;
  };

  struct Entry {
    const char* name;
    std::function<double(unsigned, int, std::uint64_t)> run;
  };
  const Entry entries[] = {
      {"XKaapi", run_xk},
      {"WS-pooled (Cilk-like)", run_ws_pooled},
      {"WS-heap (TBB-like)", run_ws_heap},
      {"GOMP-throttle (OpenMP)", run_gomp_throttle},
      {"GOMP-raw (OpenMP no cutoff)", run_gomp_raw},
  };

  for (const Entry& e : entries) {
    bool timed_out = false;
    double t1 = 0.0;
    for (unsigned cores : xkbench::core_counts()) {
      if (timed_out) {
        table.add_row({e.name, std::to_string(cores), "(no time)", "", "", ""});
        continue;
      }
      xkbench::json_context(e.name, cores);
      const double t = e.run(cores, n, expect);
      if (cores == 1) t1 = t;
      const bool ok = t >= 0.0;
      if (!ok) xkbench::json_drop_current();
      table.add_row({e.name, std::to_string(cores),
                     ok ? xk::Table::num(t, 4) : "wrong-result",
                     cores == 1 && ok ? "x" + xk::Table::num(t / t_seq, 1) : "",
                     ok ? xk::Table::num(t_seq / t, 2) : "",
                     ok ? "yes" : "no"});
      if (t > timeout) timed_out = true;  // the paper's "(no time)" rows
    }
    (void)t1;
  }
  table.print_auto(std::cout);
  return 0;
}
