// Shared harness pieces for the per-figure benchmark binaries.
//
// Conventions:
//  * every binary runs with no arguments and finishes in seconds on a
//    laptop-class box; XKREPRO_* environment variables scale runs up to
//    paper-sized instances;
//  * XKREPRO_CORES="1,2,4,8" selects the thread counts swept (the paper
//    uses 1..48 on the 48-core Magny-Cours; counts beyond the visible
//    cores oversubscribe, which is expected on small machines);
//  * results print as fixed-width tables (XKREPRO_CSV=1 for CSV).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "support/cpu.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace xkbench {

/// Thread counts to sweep: XKREPRO_CORES as a comma list, else {1,2,4,8}
/// clipped to 2x the visible cores (so default runs stay sane in CI) but
/// always containing at least {1, hardware}.
inline std::vector<unsigned> core_counts() {
  std::vector<unsigned> counts;
  if (auto env = xk::env_string("XKREPRO_CORES")) {
    std::string s = *env;
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::string tok = s.substr(pos, comma - pos);
      if (!tok.empty()) {
        counts.push_back(static_cast<unsigned>(std::stoul(tok)));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (counts.empty()) {
    const unsigned hw = xk::hardware_cores();
    for (unsigned c : {1u, 2u, 4u, 8u}) {
      if (c <= std::max(2 * hw, 8u)) counts.push_back(c);
    }
    if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
      counts.push_back(hw);
      std::sort(counts.begin(), counts.end());
    }
  }
  return counts;
}

/// Repetitions per measurement (paper: averaged over 30 runs; default 3
/// here — XKREPRO_REPS raises it).
inline std::size_t reps() {
  return static_cast<std::size_t>(xk::env_int("XKREPRO_REPS", 3));
}

/// Best-of-N wall time of `fn` (min over reps; one warmup).
template <typename Fn>
double time_best(Fn&& fn, std::size_t n = reps()) {
  const xk::RunStats stats = xk::time_repeated(fn, n, /*warmups=*/1);
  return stats.min;
}

/// Mean-of-N wall time (for noisy long runs).
template <typename Fn>
double time_mean(Fn&& fn, std::size_t n = reps()) {
  const xk::RunStats stats = xk::time_repeated(fn, n, /*warmups=*/1);
  return stats.mean;
}

inline void preamble(const char* figure, const char* description) {
  std::printf("== %s ==\n%s\n", figure, description);
  std::printf("machine: %u visible core(s); sweep:", xk::hardware_cores());
  for (unsigned c : core_counts()) std::printf(" %u", c);
  std::printf(" threads; reps=%zu\n", reps());
  std::printf(
      "note: thread counts above the visible cores oversubscribe; the\n"
      "      reported *shape* (who wins / ratios), not absolute speedup,\n"
      "      is the reproduction target (see EXPERIMENTS.md).\n\n");
}

}  // namespace xkbench
