// Shared harness pieces for the per-figure benchmark binaries.
//
// Conventions:
//  * every binary runs with no arguments and finishes in seconds on a
//    laptop-class box; XKREPRO_* environment variables scale runs up to
//    paper-sized instances;
//  * XKREPRO_CORES="1,2,4,8" selects the thread counts swept (the paper
//    uses 1..48 on the 48-core Magny-Cours; counts beyond the visible
//    cores oversubscribe, which is expected on small machines);
//  * results print as fixed-width tables (XKREPRO_CSV=1 for CSV);
//  * XKREPRO_JSON=<path> additionally writes a machine-readable report
//    (see JsonReport below) — scripts/run_bench.sh uses this to produce
//    the BENCH_fig*.json perf-trajectory files.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "support/cpu.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace xkbench {

/// Thread counts to sweep: XKREPRO_CORES as a comma list, else {1,2,4,8}
/// clipped to 2x the visible cores (so default runs stay sane in CI) but
/// always containing at least {1, hardware}.
inline std::vector<unsigned> core_counts() {
  std::vector<unsigned> counts;
  if (auto env = xk::env_string("XKREPRO_CORES")) {
    std::string s = *env;
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::string tok = s.substr(pos, comma - pos);
      if (!tok.empty()) {
        counts.push_back(static_cast<unsigned>(std::stoul(tok)));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (counts.empty()) {
    const unsigned hw = xk::hardware_cores();
    for (unsigned c : {1u, 2u, 4u, 8u}) {
      if (c <= std::max(2 * hw, 8u)) counts.push_back(c);
    }
    if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
      counts.push_back(hw);
      std::sort(counts.begin(), counts.end());
    }
  }
  return counts;
}

/// Repetitions per measurement (paper: averaged over 30 runs; default 3
/// here — XKREPRO_REPS raises it, clamped to at least one sample).
inline std::size_t reps() {
  return static_cast<std::size_t>(
      std::max<std::int64_t>(1, xk::env_int("XKREPRO_REPS", 3)));
}

// ---------------------------------------------------------------------------
// JSON perf-trajectory emission.
//
// When XKREPRO_JSON names a file, every measurement taken after a
// json_context() call is aggregated per (name, nworkers) and written on
// exit as:
//
//   { "schema_version": 1,
//     "benchmark": "<binary id, e.g. fig1_fib>",
//     "results": [
//       { "name": "<series, e.g. XKaapi or MEPPEN/LOOPELM>",
//         "nworkers": <worker count>,
//         "reps": <sample count>,
//         "median_s": <median wall seconds>, "p95_s": <p95 wall seconds>,
//         "p99_s": <p99 wall seconds>, "min_s": ..., "mean_s": ...,
//         "throughput": <items-per-rep / median_s; items defaults to 1,
//                        so plain series report runs-per-second>,
//         "counters": {"<name>": <integer>, ...}   // optional } ] }
//
// `counters` is an optional, additive field (schema still v1): scheduler
// telemetry recorded via json_counters() — steal/combiner/park counts that
// keep regressions like the aggregation-inversion diagnosable from the
// committed trajectory files alone.
//
// The schema is the contract with scripts/run_bench.sh and the BENCH_*
// trajectory files; bump schema_version on any incompatible change.
// ---------------------------------------------------------------------------
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  /// Names the report (once, from main) and latches XKREPRO_JSON.
  void begin(std::string benchmark) {
    benchmark_ = std::move(benchmark);
    if (auto env = xk::env_string("XKREPRO_JSON")) path_ = *env;
  }

  bool active() const { return !path_.empty(); }

  /// Subsequent record() calls account to (name, nworkers); `items` is the
  /// work per repetition used for the throughput field.
  void context(std::string name, unsigned nworkers, double items = 1.0) {
    ctx_ = {std::move(name), nworkers, items};
    have_ctx_ = true;
  }

  /// Appends wall-time samples (seconds) to the current context's series.
  void record(const std::vector<double>& samples) {
    if (!active() || !have_ctx_ || samples.empty()) return;
    Entry* e = nullptr;
    for (Entry& cand : entries_) {
      if (cand.name == ctx_.name && cand.nworkers == ctx_.nworkers) {
        e = &cand;
        break;
      }
    }
    if (!e) {
      entries_.push_back({ctx_.name, ctx_.nworkers, ctx_.items, {}, {}});
      e = &entries_.back();
    }
    e->items = ctx_.items;
    e->samples.insert(e->samples.end(), samples.begin(), samples.end());
  }

  void record_one(double seconds) { record(std::vector<double>{seconds}); }

  /// Attaches (replacing any previous set) telemetry counters to the
  /// current context's series; emitted as the optional "counters" object.
  /// Counters without recorded samples are dropped: an entry with no
  /// timings has no row to hang them on (and would corrupt the stats).
  void counters(std::vector<std::pair<std::string, std::uint64_t>> kv) {
    if (!active() || !have_ctx_) return;
    for (Entry& cand : entries_) {
      if (cand.name == ctx_.name && cand.nworkers == ctx_.nworkers) {
        cand.counters = std::move(kv);
        return;
      }
    }
  }

  /// Discards everything recorded against the current context — for runs
  /// whose result turned out wrong, so their timings never enter the
  /// trajectory as valid-looking data.
  void drop_current() {
    if (!have_ctx_) return;
    std::erase_if(entries_, [&](const Entry& e) {
      return e.name == ctx_.name && e.nworkers == ctx_.nworkers;
    });
  }

  ~JsonReport() { write(); }

 private:
  struct Context {
    std::string name;
    unsigned nworkers = 1;
    double items = 1.0;
  };
  struct Entry {
    std::string name;
    unsigned nworkers;
    double items;
    std::vector<double> samples;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
  };

  JsonReport() = default;

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  /// Nearest-rank quantile of a sorted, non-empty sample vector.
  static double quantile(const std::vector<double>& sorted, double q) {
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const std::size_t idx =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  void write() const {
    if (!active() || entries_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f,
                 "{\n  \"schema_version\": 1,\n  \"benchmark\": \"%s\",\n"
                 "  \"results\": [\n",
                 escape(benchmark_).c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.samples.empty()) continue;  // defensive: stats need >= 1 sample
      std::vector<double> sorted = e.samples;
      std::sort(sorted.begin(), sorted.end());
      const double median = quantile(sorted, 0.5);
      const double p95 = quantile(sorted, 0.95);
      const double p99 = quantile(sorted, 0.99);
      double mean = 0.0;
      for (double s : sorted) mean += s;
      mean /= static_cast<double>(sorted.size());
      const double throughput = median > 0.0 ? e.items / median : 0.0;
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"nworkers\": %u, \"reps\": %zu, "
                   "\"median_s\": %.9g, \"p95_s\": %.9g, \"p99_s\": %.9g, "
                   "\"min_s\": %.9g, "
                   "\"mean_s\": %.9g, \"throughput\": %.9g",
                   escape(e.name).c_str(), e.nworkers, sorted.size(), median,
                   p95, p99, sorted.front(), mean, throughput);
      if (!e.counters.empty()) {
        std::fprintf(f, ", \"counters\": {");
        for (std::size_t c = 0; c < e.counters.size(); ++c) {
          std::fprintf(f, "\"%s\": %llu%s", escape(e.counters[c].first).c_str(),
                       static_cast<unsigned long long>(e.counters[c].second),
                       c + 1 < e.counters.size() ? ", " : "");
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  std::string benchmark_ = "unnamed";
  std::string path_;
  Context ctx_;
  bool have_ctx_ = false;
  std::vector<Entry> entries_;
};

/// Names this binary's JSON report; call once at the top of main.
inline void json_begin(const char* benchmark) {
  JsonReport::instance().begin(benchmark);
}

/// Routes subsequent measurements to series `name` at `nworkers` workers.
inline void json_context(std::string name, unsigned nworkers,
                         double items = 1.0) {
  JsonReport::instance().context(std::move(name), nworkers, items);
}

/// Records raw wall-time samples against the current context.
inline void json_record(const std::vector<double>& samples) {
  JsonReport::instance().record(samples);
}

inline void json_record_one(double seconds) {
  JsonReport::instance().record_one(seconds);
}

/// Drops the current context's series (call when the run's result was wrong).
inline void json_drop_current() { JsonReport::instance().drop_current(); }

/// Attaches telemetry counters to the current context's series.
inline void json_counters(
    std::vector<std::pair<std::string, std::uint64_t>> kv) {
  JsonReport::instance().counters(std::move(kv));
}

/// Same, from a runtime metrics snapshot (Runtime::metrics_snapshot()):
/// embeds every scheduler counter, not a hand-picked subset.
inline void json_counters(const xk::obs::MetricsSnapshot& m) {
  JsonReport::instance().counters(m.counters);
}

/// Per-repetition wall times of `fn` (after `warmups` unmeasured runs).
template <typename Fn>
std::vector<double> time_samples(Fn&& fn, std::size_t n = reps(),
                                 std::size_t warmups = 1) {
  return xk::time_samples(fn, n, warmups);
}

/// Best-of-N wall time of `fn` (min over reps; one warmup). Samples feed
/// the JSON report when a context is active.
template <typename Fn>
double time_best(Fn&& fn, std::size_t n = reps()) {
  const std::vector<double> samples = time_samples(fn, n);
  json_record(samples);
  return xk::RunStats::from_samples(samples).min;
}

/// Mean-of-N wall time (for noisy long runs).
template <typename Fn>
double time_mean(Fn&& fn, std::size_t n = reps()) {
  const std::vector<double> samples = time_samples(fn, n);
  json_record(samples);
  return xk::RunStats::from_samples(samples).mean;
}

inline void preamble(const char* figure, const char* description) {
  std::printf("== %s ==\n%s\n", figure, description);
  std::printf("machine: %u visible core(s); sweep:", xk::hardware_cores());
  for (unsigned c : core_counts()) std::printf(" %u", c);
  std::printf(" threads; reps=%zu\n", reps());
  std::printf(
      "note: thread counts above the visible cores oversubscribe; the\n"
      "      reported *shape* (who wins / ratios), not absolute speedup,\n"
      "      is the reproduction target (see EXPERIMENTS.md).\n\n");
}

}  // namespace xkbench
