// §III-A microbenchmarks (google-benchmark): the per-task costs behind
// Figure 1 — the ~10-cycle push (§II-B), full spawn+sync round trips, and
// the same costs on the baseline runtimes.
#include <benchmark/benchmark.h>

#include <atomic>

#include "baselines/central_queue.hpp"
#include "baselines/gomp_pool.hpp"
#include "baselines/ws_classic.hpp"
#include "core/xkaapi.hpp"

namespace {

void noop_body() {}

/// Spawn N empty tasks + sync, on one worker (pure creation/execution cost,
/// no stealing): the paper's task-creation overhead axis.
void BM_XkSpawnSyncBatch(benchmark::State& state) {
  xk::Config cfg;
  cfg.nworkers = 1;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);
  const auto batch = static_cast<int>(state.range(0));
  // One section per iteration: the root frame (and its arena) recycles, so
  // this measures the spawn/dispatch path rather than cold-cache streaming
  // through an ever-growing frame.
  for (auto _ : state) {
    rt.run([&] {
      for (int i = 0; i < batch; ++i) xk::spawn(noop_body);
      xk::sync();
    });
  }
  state.counters["nworkers"] = 1;
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_XkSpawnSyncBatch)->Arg(64)->Arg(1024);

/// Dataflow spawn: one access declaration per task.
void BM_XkSpawnDataflowBatch(benchmark::State& state) {
  xk::Config cfg;
  cfg.nworkers = 1;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);
  const auto batch = static_cast<int>(state.range(0));
  double slot = 0.0;
  for (auto _ : state) {
    rt.run([&] {
      for (int i = 0; i < batch; ++i) {
        xk::spawn([](double* d) { *d += 1.0; }, xk::rw(&slot));
      }
      xk::sync();
    });
  }
  benchmark::DoNotOptimize(slot);
  state.counters["nworkers"] = 1;
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_XkSpawnDataflowBatch)->Arg(64)->Arg(1024);

void BM_GompSpawnBatch(benchmark::State& state) {
  // Throttle off: with it, spawns past 64 degenerate to inline calls and
  // the "per-task cost" would measure an empty function call.
  xk::baseline::GompOptions opt;
  opt.throttle = false;
  xk::baseline::GompLikePool pool(1, opt);
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pool.parallel([&] {
      for (int i = 0; i < batch; ++i) pool.spawn(noop_body);
      pool.taskwait();
    });
  }
  state.counters["nworkers"] = 1;
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GompSpawnBatch)->Arg(64)->Arg(1024);

void BM_WsSpawnBatch(benchmark::State& state) {
  xk::baseline::ClassicWS ws(1);
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ws.parallel([&] {
      for (int i = 0; i < batch; ++i) ws.spawn(noop_body);
      ws.taskwait();
    });
  }
  state.counters["nworkers"] = 1;
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WsSpawnBatch)->Arg(64)->Arg(1024);

void BM_CentralQueueInsertBatch(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    xk::baseline::CentralQueueRuntime rt(1);
    state.ResumeTiming();
    for (int i = 0; i < batch; ++i) rt.insert(noop_body);
    rt.barrier();
  }
  state.counters["nworkers"] = 1;
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CentralQueueInsertBatch)->Arg(64)->Arg(1024);

/// foreach chunk-dispatch overhead on an empty body.
void BM_XkForeachEmpty(benchmark::State& state) {
  xk::Config cfg;
  cfg.nworkers = 2;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);
  const auto n = static_cast<std::int64_t>(state.range(0));
  rt.begin();
  for (auto _ : state) {
    xk::parallel_for(0, n, [](std::int64_t, std::int64_t) {});
  }
  rt.end();
  state.counters["nworkers"] = 2;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_XkForeachEmpty)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
