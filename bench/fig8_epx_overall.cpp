// Figure 8 — EPX end-to-end: time decomposition vs cores, both scenarios.
//
// Paper: stacked bars (repera / loopelm / Cholesky / other) for 1..48 cores
// on MEPPEN and MAXPLANE. The parallel phases shrink with cores while
// 'other' (~30 %) stays constant — Amdahl's law; on MAXPLANE the Cholesky
// segment dominates (~60 % sequential share), on MEPPEN the loops do.
//
// Here: the full mini-app time loop with every phase instrumented. The
// parallel configuration uses X-Kaapi for the loops *and* the dataflow
// factorization; 'other' stays sequential exactly as in EPX.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "core/xkaapi.hpp"
#include "epx/simulation.hpp"

namespace {

using namespace xk::epx;

void bench_scenario(const char* name, int scale, int plies, int steps,
                    xk::Table& table) {
  auto fresh = [&] {
    return std::string(name) == "MEPPEN" ? make_meppen(scale)
                                         : make_maxplane(scale, plies);
  };

  auto record_phases = [&](unsigned cores, const PhaseTimes& t) {
    const std::string prefix(name);
    xkbench::json_context(prefix + "/total", cores);
    xkbench::json_record_one(t.total());
    xkbench::json_context(prefix + "/repera", cores);
    xkbench::json_record_one(t.repera);
    xkbench::json_context(prefix + "/loopelm", cores);
    xkbench::json_record_one(t.loopelm);
    xkbench::json_context(prefix + "/cholesky", cores);
    xkbench::json_record_one(t.cholesky);
    xkbench::json_context(prefix + "/other", cores);
    xkbench::json_record_one(t.other);
  };

  // Sequential baseline.
  {
    Scenario s = fresh();
    SimOptions opt;
    const PhaseTimes t = simulate(s, steps, opt);
    record_phases(1, t);
    table.add_row({name, "1(seq)", xk::Table::num(t.repera, 3),
                   xk::Table::num(t.loopelm, 3), xk::Table::num(t.cholesky, 3),
                   xk::Table::num(t.other, 3), xk::Table::num(t.total(), 3),
                   std::to_string(t.factorizations)});
  }
  for (unsigned cores : xkbench::core_counts()) {
    if (cores == 1) continue;
    Scenario s = fresh();
    xk::Config cfg;
    cfg.nworkers = cores;
    xk::Runtime rt(cfg);
    SimOptions opt;
    opt.loop = xkaapi_runner();
    opt.rt = &rt;
    const PhaseTimes t = simulate(s, steps, opt);
    record_phases(cores, t);
    table.add_row({name, std::to_string(cores), xk::Table::num(t.repera, 3),
                   xk::Table::num(t.loopelm, 3), xk::Table::num(t.cholesky, 3),
                   xk::Table::num(t.other, 3), xk::Table::num(t.total(), 3),
                   std::to_string(t.factorizations)});
  }
}

}  // namespace

int main() {
  xkbench::json_begin("fig8_epx_overall");
  xkbench::preamble("Figure 8",
                    "EPX overall: per-phase time decomposition vs cores");
  const int scale = static_cast<int>(xk::env_int("XKREPRO_EPX_SCALE", 2));
  const int steps = static_cast<int>(xk::env_int("XKREPRO_EPX_STEPS", 30));
  std::printf("steps per run: %d, mesh scale: x%d\n\n", steps, scale);

  xk::Table table({"instance", "cores", "repera(s)", "loopelm(s)",
                   "cholesky(s)", "other(s)", "total(s)", "#factor"});
  bench_scenario("MEPPEN", scale, 0, steps, table);
  bench_scenario("MAXPLANE", scale, 6, steps, table);
  table.print_auto(std::cout);
  return 0;
}
