// Figure 6 — LOOPELM and REPERA speedups on MEPPEN and MAXPLANE.
//
// Paper: on MEPPEN, LOOPELM has *limited* speedup (memory-intensive
// gather/scatter with a cheap-per-element material mix) while REPERA scales
// well (compute-intensive distance tests); MAXPLANE shows both closer to
// ideal. Both kernels run under X-Kaapi's foreach.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "core/xkaapi.hpp"
#include "epx/kernels.hpp"
#include "epx/simulation.hpp"

namespace {

using namespace xk::epx;

template <typename Kernel>
double time_kernel(Kernel&& kernel, std::size_t reps) {
  constexpr int kInner = 5;  // amplify the measured region above timer noise
  std::vector<double> samples;
  for (std::size_t r = 0; r < reps + 1; ++r) {
    xk::Timer t;
    for (int i = 0; i < kInner; ++i) kernel();
    if (r > 0) samples.push_back(t.seconds());
  }
  xkbench::json_record(samples);
  return *std::min_element(samples.begin(), samples.end());
}

void bench_scenario(const char* name, Scenario& s, xk::Table& table) {
  LoopelmState elm;
  elm.resize(s.mesh.nelems());
  ReperaState rep;

  const std::string prefix(name);
  xkbench::json_context(prefix + "/LOOPELM/seq", 1);
  const double t_loopelm_seq = time_kernel(
      [&] { loopelm(s.mesh, elm, s.dt, s.material_iters, seq_runner()); },
      xkbench::reps());
  xkbench::json_context(prefix + "/REPERA/seq", 1);
  const double t_repera_seq =
      time_kernel([&] { repera(s.mesh, rep, seq_runner()); }, xkbench::reps());

  for (unsigned cores : xkbench::core_counts()) {
    xk::Config cfg;
    cfg.nworkers = cores;
    xk::Runtime rt(cfg);
    double t_loopelm = 0.0, t_repera = 0.0;
    rt.run([&] {
      xkbench::json_context(prefix + "/LOOPELM", cores);
      t_loopelm = time_kernel(
          [&] { loopelm(s.mesh, elm, s.dt, s.material_iters, xkaapi_runner()); },
          xkbench::reps());
      xkbench::json_context(prefix + "/REPERA", cores);
      t_repera = time_kernel([&] { repera(s.mesh, rep, xkaapi_runner()); },
                             xkbench::reps());
    });
    table.add_row({name, "LOOPELM", std::to_string(cores),
                   xk::Table::num(t_loopelm, 4),
                   xk::Table::num(t_loopelm_seq / t_loopelm, 2)});
    table.add_row({name, "REPERA", std::to_string(cores),
                   xk::Table::num(t_repera, 4),
                   xk::Table::num(t_repera_seq / t_repera, 2)});
  }
}

}  // namespace

int main() {
  xkbench::json_begin("fig6_epx_loops");
  xkbench::preamble("Figure 6",
                    "LOOPELM / REPERA speedups on MEPPEN and MAXPLANE "
                    "(XKaapi foreach)");
  const int scale = static_cast<int>(xk::env_int("XKREPRO_LOOP_SCALE", 4));

  xk::Table table({"instance", "kernel", "cores", "time(s)", "speedup"});
  {
    Scenario s = make_meppen(scale);
    std::printf("MEPPEN x%d: %d elements, plastic material_iters=%d\n", scale,
                s.mesh.nelems(), s.material_iters);
    bench_scenario("MEPPEN", s, table);
  }
  {
    Scenario s = make_maxplane(scale, 6);
    std::printf("MAXPLANE x%d: %d elements, material_iters=%d\n\n", scale,
                s.mesh.nelems(), s.material_iters);
    bench_scenario("MAXPLANE", s, table);
  }
  table.print_auto(std::cout);
  return 0;
}
