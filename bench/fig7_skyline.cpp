// Figure 7 — Sparse (skyline) blocked Cholesky speedup, XKaapi vs OpenMP.
//
// Paper: a 59462-dof H matrix from MAXPLANE, 3.59 % nonzero, BS = 88,
// sequential time 47.79 s. The X-Kaapi dataflow version (implicit
// dependencies between potrf/trsm/syrk/gemm block tasks) clearly beats the
// OpenMP version, whose taskwait barriers after each trsm and update phase
// serialize the k-steps ("the OpenMP parallel model imposes synchronizations
// that limits the speedup").
//
// Default instance is scaled down (n=12288, walk target 0.08 -> measured ~3.6 %, BS=64);
// XKREPRO_SKY_N=59462 XKREPRO_SKY_BS=88 reproduces the paper's instance.
#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/gomp_pool.hpp"
#include "bench/common.hpp"
#include "core/xkaapi.hpp"
#include "skyline/factor.hpp"
#include "skyline/skyline.hpp"

namespace {

/// Hardware-independent reproduction of the Fig. 7 gap: the *available
/// parallelism* (total work / critical path, unit costs in bs^3 flops:
/// potrf 1/3, trsm 1, syrk 1, gemm 2) of the two synchronization models.
/// The dataflow critical path follows true block dependencies; the OpenMP
/// model inserts a barrier after each trsm phase and each update phase
/// (the paper's taskwaits after lines 8 and 19).
void print_parallelism_analysis(const xk::skyline::BlockSkylineMatrix& a) {
  const int nbk = a.nbk();
  constexpr double kPotrf = 1.0 / 3.0, kTrsm = 1.0, kSyrk = 1.0, kGemm = 2.0;
  double work = 0.0;

  // Dataflow: DP over per-block completion times (last writer + inputs).
  std::vector<double> done(static_cast<std::size_t>(nbk) *
                               static_cast<std::size_t>(nbk),
                           0.0);
  auto at = [&](int i, int j) -> double& {
    return done[static_cast<std::size_t>(i) * nbk + j];
  };
  double cp_dataflow = 0.0;
  // OpenMP model: phase barriers accumulate the per-phase maxima.
  double cp_omp = 0.0;
  for (int k = 0; k < nbk; ++k) {
    at(k, k) += kPotrf;
    work += kPotrf;
    cp_omp += kPotrf;  // potrf runs on the master between barriers
    double phase_max = 0.0;
    for (int m = k + 1; m < nbk; ++m) {
      if (a.is_empty(m, k)) continue;
      at(m, k) = std::max(at(m, k), at(k, k)) + kTrsm;
      work += kTrsm;
      phase_max = std::max(phase_max, kTrsm);
    }
    cp_omp += phase_max;  // taskwait after the trsm loop
    phase_max = 0.0;
    for (int m = k + 1; m < nbk; ++m) {
      if (a.is_empty(m, k)) continue;
      at(m, m) = std::max(at(m, m), at(m, k)) + kSyrk;
      work += kSyrk;
      phase_max = std::max(phase_max, kSyrk);
      for (int n = k + 1; n < m; ++n) {
        if (a.is_empty(n, k) || a.is_empty(m, n)) continue;
        at(m, n) =
            std::max({at(m, n), at(m, k), at(n, k)}) + kGemm;
        work += kGemm;
        phase_max = std::max(phase_max, kGemm);
      }
    }
    cp_omp += phase_max;  // taskwait after the update loop
  }
  for (double d : done) cp_dataflow = std::max(cp_dataflow, d);

  std::printf(
      "available parallelism (work / critical path, unit block costs):\n"
      "  dataflow (XKaapi implicit deps) : %8.1f\n"
      "  OpenMP  (taskwait per phase)    : %8.1f\n"
      "  => the dataflow model exposes %.1fx more parallelism; on a machine\n"
      "     with enough cores this bounds the Fig.7 speedup gap.\n\n",
      work / cp_dataflow, work / cp_omp, cp_omp / cp_dataflow);
}

}  // namespace

int main() {
  xkbench::json_begin("fig7_skyline");
  xkbench::preamble("Figure 7",
                    "Blocked skyline Cholesky: XKaapi dataflow vs "
                    "OpenMP-taskwait model");
  const int n = static_cast<int>(xk::env_int("XKREPRO_SKY_N", 12288));
  const int bs = static_cast<int>(xk::env_int("XKREPRO_SKY_BS", 64));
  const double density = xk::env_double("XKREPRO_SKY_DENSITY", 0.08);

  auto profile = xk::skyline::make_fem_like(n, bs, density, 2024);
  std::printf("matrix: n=%d  BS=%d  density=%.2f%%  (paper: n=59462, BS=88, "
              "3.59%%)  flops=%.2e\n\n",
              n, bs, 100.0 * profile.density(),
              xk::skyline::factor_flops(profile));
  print_parallelism_analysis(profile);

  // Sequential reference.
  const double flops = xk::skyline::factor_flops(profile);
  auto a = profile;
  double t_seq = 1e300;
  xkbench::json_context("sequential", 1, flops);
  for (std::size_t r = 0; r < xkbench::reps(); ++r) {
    a.fill_spd(5);
    xk::Timer t;
    const int info = xk::skyline::factor_sequential(a);
    if (info != 0) {
      std::printf("sequential factorization failed: %d\n", info);
      return 1;
    }
    const double dt = t.seconds();
    xkbench::json_record_one(dt);
    t_seq = std::min(t_seq, dt);
  }
  std::printf("sequential time: %.4fs (paper: 47.79s at full size)\n\n", t_seq);

  xk::Table table({"variant", "cores", "time(s)", "speedup(Tseq/Tpar)"});
  for (unsigned cores : xkbench::core_counts()) {
    {
      xk::Config cfg;
      cfg.nworkers = cores;
      xk::Runtime rt(cfg);
      double best = 1e300;
      xkbench::json_context("XKaapi", cores, flops);
      for (std::size_t r = 0; r < xkbench::reps(); ++r) {
        a.fill_spd(5);
        xk::Timer t;
        xk::skyline::factor_xkaapi(a, rt);
        const double dt = t.seconds();
        xkbench::json_record_one(dt);
        best = std::min(best, dt);
      }
      table.add_row({"XKaapi", std::to_string(cores), xk::Table::num(best, 4),
                     xk::Table::num(t_seq / best, 2)});
    }
    {
      xk::baseline::GompLikePool pool(cores);
      double best = 1e300;
      xkbench::json_context("OpenMP(taskwait)", cores, flops);
      for (std::size_t r = 0; r < xkbench::reps(); ++r) {
        a.fill_spd(5);
        xk::Timer t;
        xk::skyline::factor_gomp(a, pool);
        const double dt = t.seconds();
        xkbench::json_record_one(dt);
        best = std::min(best, dt);
      }
      table.add_row({"OpenMP(taskwait)", std::to_string(cores),
                     xk::Table::num(best, 4), xk::Table::num(t_seq / best, 2)});
    }
  }
  table.print_auto(std::cout);
  return 0;
}
