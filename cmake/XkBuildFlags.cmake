# Shared compile/link settings for every xk_* module, test, bench, and
# example target. Applied through the xk::build_flags interface target so
# per-directory lists stay declarative.

include(CheckIPOSupported)

add_library(xk_build_flags INTERFACE)
add_library(xk::build_flags ALIAS xk_build_flags)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(xk_build_flags INTERFACE
    -Wall -Wextra -Wshadow -Wnon-virtual-dtor)
  if(XK_WERROR)
    target_compile_options(xk_build_flags INTERFACE -Werror)
  endif()
  if(XK_NATIVE)
    target_compile_options(xk_build_flags INTERFACE -march=native)
  endif()
endif()

if(XK_SANITIZE)
  if(NOT XK_SANITIZE MATCHES "^(address|thread|undefined)$")
    message(FATAL_ERROR
      "XK_SANITIZE must be one of: address, thread, undefined "
      "(got '${XK_SANITIZE}')")
  endif()
  target_compile_options(xk_build_flags INTERFACE
    -fsanitize=${XK_SANITIZE} -fno-omit-frame-pointer -g)
  target_link_options(xk_build_flags INTERFACE -fsanitize=${XK_SANITIZE})
endif()

if(XK_LTO)
  check_ipo_supported(RESULT xk_ipo_ok OUTPUT xk_ipo_msg LANGUAGES CXX)
  if(xk_ipo_ok)
    set(CMAKE_INTERPROCEDURAL_OPTIMIZATION ON)
  else()
    message(WARNING "XK_LTO requested but IPO is unsupported: ${xk_ipo_msg}")
  endif()
endif()

if(NOT XK_OBS)
  # Turns every obs emit/span helper into an empty inline (src/obs/trace.hpp)
  # — the instrumentation-free baseline the CI overhead gate compares against.
  target_compile_definitions(xk_build_flags INTERFACE XK_OBS_OFF)
endif()

if(XK_CHECK)
  # Compiles the XK_EXPECT invariant assertions into the scheduler seams
  # (src/check/check.hpp). Off by default: the unchecked build defines
  # nothing and every hook is an empty macro, so the hot paths are
  # byte-identical to a tree without the checker.
  target_compile_definitions(xk_build_flags INTERFACE XK_CHECK_ON)
endif()

find_package(Threads REQUIRED)
target_link_libraries(xk_build_flags INTERFACE Threads::Threads)

# Defines one static library per runtime module with the shared flags and
# include layout. Usage: xk_add_module(<name> SOURCES ... DEPENDS ...)
function(xk_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPENDS" ${ARGN})
  add_library(${name} STATIC ${ARG_SOURCES})
  add_library(xk::${name} ALIAS ${name})
  target_include_directories(${name} PUBLIC "${XK_SRC_INCLUDE_DIR}")
  target_link_libraries(${name} PUBLIC xk::build_flags ${ARG_DEPENDS})
endfunction()
