// Quickstart: the three paradigms of the X-Kaapi programming model in one
// file — fork-join tasks, dataflow tasks, and adaptive parallel loops.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/xkaapi.hpp"

namespace {

// A dataflow task is a plain function; wrappers at the spawn site declare
// how each argument is accessed (§II-B).
void scale(const double* in, double* out, int n, double factor) {
  for (int i = 0; i < n; ++i) out[i] = in[i] * factor;
}

void offset(double* data, int n, double delta) {
  for (int i = 0; i < n; ++i) data[i] += delta;
}

}  // namespace

int main() {
  // One worker per core; every knob has an XK_* env override.
  xk::Runtime rt;
  std::printf("quickstart: %u workers\n", rt.nworkers());

  rt.run([&] {
    // --- 1. Fork-join tasks (Cilk-style) --------------------------------
    int left = 0, right = 0;
    xk::spawn([&left] { left = 21; });
    xk::spawn([&right] { right = 21; });
    xk::sync();  // children complete here
    std::printf("fork-join: %d\n", left + right);

    // --- 2. Dataflow tasks (implicit dependencies) ----------------------
    constexpr int kN = 1 << 16;
    std::vector<double> a(kN, 1.0), b(kN, 0.0);
    // RAW chain a -> b -> b: the runtime orders these by the declared
    // accesses; no explicit synchronization between them.
    xk::spawn(scale, xk::read(a.data(), kN), xk::write(b.data(), kN), kN, 2.0);
    xk::spawn(offset, xk::rw(b.data(), kN), kN, 0.5);
    double checksum = 0.0;
    xk::spawn(
        [](const double* v, int n, double* out) {
          double s = 0.0;
          for (int i = 0; i < n; ++i) s += v[i];
          *out = s;
        },
        xk::read(b.data(), kN), kN, xk::write(&checksum));
    xk::sync();
    std::printf("dataflow: checksum=%.1f (expect %.1f)\n", checksum,
                kN * 2.5);

    // --- 3. Adaptive parallel loop (§II-E) -------------------------------
    std::vector<double> v(1 << 20, 1.0);
    xk::parallel_for(0, static_cast<std::int64_t>(v.size()),
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         v[static_cast<std::size_t>(i)] *= 3.0;
                       }
                     });
    const double total = xk::parallel_sum<double>(
        0, static_cast<std::int64_t>(v.size()),
        [&](std::int64_t i) { return v[static_cast<std::size_t>(i)]; });
    std::printf("parallel loop: sum=%.1f (expect %.1f)\n", total,
                3.0 * static_cast<double>(v.size()));
  });

  const auto stats = rt.stats_snapshot();
  std::printf("scheduler: %llu tasks spawned, %llu steals, %llu splits\n",
              static_cast<unsigned long long>(stats.tasks_spawned),
              static_cast<unsigned long long>(stats.steals_ok),
              static_cast<unsigned long long>(stats.splitter_calls));
  return 0;
}
