// Dataflow pipeline demo: a multi-stage image-like pipeline over row bands
// where every stage declares read/write regions and the runtime extracts
// the wavefront parallelism implicitly — the §II-B model on a workload
// shaped like the paper's motivating "mixed paradigm" codes. Also shows
// cumulative-write (reduction) accesses and strided regions.
//
//   $ ./examples/dataflow_pipeline
#include <cstdio>
#include <vector>

#include "core/xkaapi.hpp"

namespace {

constexpr int kRows = 64;
constexpr int kCols = 4096;
constexpr int kBand = 8;  // rows per task

double* row(std::vector<double>& img, int r) { return img.data() + r * kCols; }

}  // namespace

int main() {
  xk::Runtime rt;
  std::vector<double> img(kRows * kCols, 1.0);
  std::vector<double> tmp(kRows * kCols, 0.0);
  double total = 0.0;

  rt.run([&] {
    for (int r = 0; r < kRows; r += kBand) {
      const std::size_t band = kBand * kCols;
      // Stage 1: blur band r of img into tmp (reads the band + halo row).
      const int halo_lo = r > 0 ? r - 1 : r;
      const int halo_rows = std::min(kRows, r + kBand + 1) - halo_lo;
      xk::spawn(
          [r](const double* in, double* out) {
            for (int i = 0; i < kBand * kCols; ++i) {
              out[i] = 0.5 * in[i] + 0.5;
            }
            (void)r;
          },
          xk::read(row(img, halo_lo), halo_rows * kCols),
          xk::write(row(tmp, r), band));
      // Stage 2: sharpen tmp band in place (RAW on stage 1).
      xk::spawn(
          [](double* data) {
            for (int i = 0; i < kBand * kCols; ++i) {
              data[i] = data[i] * 1.25 - 0.25;
            }
          },
          xk::rw(row(tmp, r), band));
      // Stage 3: reduce the band into a global sum. CW accesses commute:
      // all bands' stage-3 tasks are mutually independent; the runtime
      // serializes only their bodies (per-region guard).
      xk::spawn(
          [](const double* data, double* acc) {
            double s = 0.0;
            for (int i = 0; i < kBand * kCols; ++i) s += data[i];
            *acc += s;
          },
          xk::read(row(tmp, r), band), xk::cw(&total));
    }
    xk::sync();
  });

  // Every element: 1.0 -> 1.0 (blur: 0.5+0.5) -> 1.0 (sharpen: 1.25-0.25).
  std::printf("pipeline sum = %.1f (expect %.1f)\n", total,
              static_cast<double>(kRows) * kCols);

  // Strided access demo: columns of a row-major matrix as one region.
  rt.run([&] {
    xk::spawn(
        [](double* col) {
          for (int r = 0; r < kRows; ++r) col[r * kCols] = -1.0;
        },
        xk::rw_strided(img.data(), 1, kRows, kCols));
    xk::spawn(
        [](const double* col, double* out) {
          double s = 0.0;
          for (int r = 0; r < kRows; ++r) s += col[r * kCols];
          *out = s;  // ordered after the column writer by overlap
        },
        xk::read_strided(img.data(), 1, kRows, kCols), xk::write(&total));
    xk::sync();
  });
  std::printf("strided column sum = %.1f (expect %.1f)\n", total,
              -static_cast<double>(kRows));
  return 0;
}
