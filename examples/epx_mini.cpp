// The EPX mini-app (§IV) end to end: runs the MEPPEN (missile vs rigid
// wall) and MAXPLANE (ice projectile vs composite plate stack) scenarios
// and prints the per-phase time decomposition — the textual analog of the
// paper's Figures 4/5 (scenario renders) and 8 (phase bars).
//
//   $ ./examples/epx_mini [steps] [scale]     (default 50, 1)
#include <cstdio>
#include <cstdlib>

#include "core/xkaapi.hpp"
#include "epx/simulation.hpp"

namespace {

void describe(const xk::epx::Scenario& s) {
  std::printf(
      "%s: %d hex elements, %d nodes, %zu contact surface(s), dt=%.2e s\n",
      s.name, s.mesh.nelems(), s.mesh.nnodes(), s.mesh.contacts.size(), s.dt);
  std::size_t slaves = 0, facets = 0;
  for (const auto& cs : s.mesh.contacts) {
    slaves += cs.slave_nodes.size();
    facets += cs.facets.size();
  }
  std::printf("  contact: %zu slave nodes vs %zu master facets\n", slaves,
              facets);
}

void report(const char* label, const xk::epx::PhaseTimes& t) {
  const double total = t.total();
  std::printf("  %-18s total %.3fs over %d steps, %d factorization(s), "
              "%lld constraints\n",
              label, total, t.steps, t.factorizations,
              static_cast<long long>(t.constraints_total));
  std::printf("    loopelm  %.3fs (%4.1f%%)\n    repera   %.3fs (%4.1f%%)\n"
              "    cholesky %.3fs (%4.1f%%)\n    other    %.3fs (%4.1f%%)\n",
              t.loopelm, 100 * t.loopelm / total, t.repera,
              100 * t.repera / total, t.cholesky, 100 * t.cholesky / total,
              t.other, 100 * t.other / total);
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 50;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 1;

  for (const char* which : {"MEPPEN", "MAXPLANE"}) {
    const bool meppen = std::string(which) == "MEPPEN";
    std::printf("\n=== %s ===\n", which);

    // Sequential run.
    xk::epx::Scenario s_seq =
        meppen ? xk::epx::make_meppen(scale) : xk::epx::make_maxplane(scale, 6);
    describe(s_seq);
    xk::epx::SimOptions seq_opt;
    const auto t_seq = xk::epx::simulate(s_seq, steps, seq_opt);
    report("sequential", t_seq);

    // Parallel run (X-Kaapi loops + dataflow factorization).
    xk::epx::Scenario s_par =
        meppen ? xk::epx::make_meppen(scale) : xk::epx::make_maxplane(scale, 6);
    xk::Runtime rt;
    xk::epx::SimOptions par_opt;
    par_opt.loop = xk::epx::xkaapi_runner();
    par_opt.rt = &rt;
    const auto t_par = xk::epx::simulate(s_par, steps, par_opt);
    report("XKaapi", t_par);

    const bool identical = xk::epx::state_checksum(s_seq.mesh) ==
                           xk::epx::state_checksum(s_par.mesh);
    std::printf("  trajectories bit-identical: %s\n",
                identical ? "yes" : "NO");
  }
  return 0;
}
