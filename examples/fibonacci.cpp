// The paper's Figure-1 program: recursive fork-join Fibonacci with one
// spawned child and one inline call per node, synchronized by xk::sync().
//
//   $ ./examples/fibonacci [n]     (default 30)
#include <cstdio>
#include <cstdlib>

#include "core/xkaapi.hpp"
#include "support/timing.hpp"

namespace {

void fibonacci(std::uint64_t* result, int n) {
  if (n < 2) {
    *result = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  // #pragma kaapi task write(&r1)  -- the paper's annotation form
  xk::spawn(fibonacci, xk::write(&r1), n - 1);
  fibonacci(&r2, n - 2);
  // #pragma kaapi sync
  xk::sync();
  *result = r1 + r2;
}

std::uint64_t fib_seq(int n) {
  return n < 2 ? static_cast<std::uint64_t>(n)
               : fib_seq(n - 1) + fib_seq(n - 2);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 30;

  xk::Timer t_seq;
  const std::uint64_t expect = fib_seq(n);
  const double seq_time = t_seq.seconds();

  xk::Runtime rt;
  std::uint64_t result = 0;
  xk::Timer t_par;
  rt.run([&] {
    fibonacci(&result, n);
    xk::sync();
  });
  const double par_time = t_par.seconds();

  const auto stats = rt.stats_snapshot();
  std::printf("fib(%d) = %llu (%s)\n", n,
              static_cast<unsigned long long>(result),
              result == expect ? "correct" : "WRONG");
  std::printf("sequential: %.4fs   parallel (%u workers): %.4fs\n", seq_time,
              rt.nworkers(), par_time);
  std::printf("tasks: %llu spawned, %llu executed by thieves (%.1f%%)\n",
              static_cast<unsigned long long>(stats.tasks_spawned),
              static_cast<unsigned long long>(stats.tasks_run_thief),
              stats.tasks_spawned != 0
                  ? 100.0 * static_cast<double>(stats.tasks_run_thief) /
                        static_cast<double>(stats.tasks_spawned)
                  : 0.0);
  return result == expect ? 0 : 1;
}
