// Tiled dense Cholesky through the public dataflow API and through the
// QUARK compatibility layer — the §III-B experiment as a runnable demo.
//
//   $ ./examples/dense_cholesky [n] [nb]     (default 768, 64)
#include <cstdio>
#include <cstdlib>

#include "core/xkaapi.hpp"
#include "linalg/cholesky.hpp"
#include "quark/quark.h"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 768;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 64;
  std::printf("dense Cholesky: n=%d, tile NB=%d (%d x %d tiles)\n", n, nb,
              (n + nb - 1) / nb, (n + nb - 1) / nb);

  auto run = [&](const char* name, auto&& factor) {
    xk::linalg::TiledMatrix a(n, nb);
    a.fill_spd(2024);
    const auto dense0 = a.to_dense_symmetric();
    xk::Timer t;
    const int info = factor(a);
    const double secs = t.seconds();
    const double resid = xk::linalg::cholesky_residual(a, dense0);
    std::printf("  %-22s %.4fs  %6.2f GFlop/s  info=%d  residual=%.2e\n",
                name, secs, xk::linalg::cholesky_flops(n) / secs / 1e9, info,
                resid);
  };

  run("sequential", [](xk::linalg::TiledMatrix& a) {
    return xk::linalg::cholesky_sequential(a);
  });
  {
    xk::Runtime rt;
    run("XKaapi dataflow", [&rt](xk::linalg::TiledMatrix& a) {
      return xk::linalg::cholesky_xkaapi(a, rt);
    });
  }
  {
    Quark* q = QUARK_New_Backend(0, QUARK_BACKEND_XKAAPI);
    run("QUARK ABI on XKaapi", [q](xk::linalg::TiledMatrix& a) {
      return xk::linalg::cholesky_quark(a, q);
    });
    QUARK_Delete(q);
  }
  {
    Quark* q = QUARK_New_Backend(0, QUARK_BACKEND_CENTRAL);
    run("QUARK central list", [q](xk::linalg::TiledMatrix& a) {
      return xk::linalg::cholesky_quark(a, q);
    });
    QUARK_Delete(q);
  }
  run("static pipeline", [](xk::linalg::TiledMatrix& a) {
    return xk::linalg::cholesky_static(a, xk::default_worker_count());
  });
  return 0;
}
