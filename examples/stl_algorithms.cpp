// The adaptive STL-like algorithm layer (§II-D / [27]): transform, reduce,
// prefix sum, find and sort over a realistic text-statistics workload.
//
//   $ ./examples/stl_algorithms
#include <cstdio>
#include <vector>

#include "algo/algo.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

int main() {
  constexpr std::int64_t kN = 1 << 21;
  xk::Rng rng(7);
  std::vector<std::int64_t> values(kN);
  for (auto& v : values) v = static_cast<std::int64_t>(rng.next_below(1000));

  xk::Runtime rt;
  rt.run([&] {
    xk::Timer t;

    // transform: squared values.
    std::vector<std::int64_t> squares(kN);
    xk::algo::transform(values.data(), squares.data(), kN,
                        [](std::int64_t v) { return v * v; });

    // reduce: mean of squares.
    const auto sum_sq = xk::algo::accumulate(squares.data(), kN,
                                             std::int64_t{0});

    // count_if: multiples of 9.
    const auto nines = xk::algo::count_if(
        values.data(), kN, [](std::int64_t v) { return v % 9 == 0; });

    // prefix sum: cumulative histogram offsets.
    std::vector<std::int64_t> offsets(kN);
    xk::algo::prefix_sum_exclusive(values.data(), offsets.data(), kN);

    // find_first: first value equal to 999.
    const auto first999 = xk::algo::find_first(
        values.data(), kN, [](std::int64_t v) { return v == 999; });

    // sort (fork-join merge sort).
    auto sorted = values;
    xk::algo::sort(sorted.data(), kN);

    std::printf("n=%lld  mean-of-squares=%.1f  multiples-of-9=%lld\n",
                static_cast<long long>(kN),
                static_cast<double>(sum_sq) / static_cast<double>(kN),
                static_cast<long long>(nines));
    std::printf("prefix total=%lld  first 999 at index %lld\n",
                static_cast<long long>(offsets[kN - 1] + values[kN - 1]),
                static_cast<long long>(first999));
    std::printf("sorted: min=%lld max=%lld  (%.3fs total on %u workers)\n",
                static_cast<long long>(sorted.front()),
                static_cast<long long>(sorted.back()), t.seconds(),
                rt.nworkers());
  });
  return 0;
}
