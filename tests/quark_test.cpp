// QUARK ABI layer: argument packing/unpacking, dependency semantics on both
// backends, barrier, scratch arguments.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "quark/quark.h"

namespace {

struct Payload {
  std::atomic<int>* counter;
};

void count_task(Quark* q) {
  std::atomic<int>* counter = nullptr;
  quark_unpack_args_1(q, counter);
  counter->fetch_add(1);
}

void value_echo_task(Quark* q) {
  int v = 0;
  double d = 0.0;
  double* out = nullptr;
  quark_unpack_args_3(q, v, d, out);
  out[0] = v + d;
}

void chain_task(Quark* q) {
  int inc = 0;
  long* slot = nullptr;
  quark_unpack_args_2(q, inc, slot);
  *slot = *slot * 10 + inc;
}

void scratch_task(Quark* q) {
  double* scratch = nullptr;
  double* out = nullptr;
  int n = 0;
  quark_unpack_args_3(q, n, scratch, out);
  for (int i = 0; i < n; ++i) scratch[i] = i + 1.0;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += scratch[i];
  *out = s;
}

class QuarkBothBackends : public ::testing::TestWithParam<QuarkBackend> {};

TEST_P(QuarkBothBackends, IndependentTasks) {
  Quark* q = QUARK_New_Backend(3, GetParam());
  std::atomic<int> counter{0};
  std::atomic<int>* cptr = &counter;
  const Quark_Task_Flags flags;
  for (int i = 0; i < 100; ++i) {
    QUARK_Insert_Task(q, count_task, &flags,
                      sizeof(cptr), &cptr, QUARK_VALUE,
                      std::size_t{0});
  }
  QUARK_Barrier(q);
  EXPECT_EQ(counter.load(), 100);
  QUARK_Delete(q);
}

TEST_P(QuarkBothBackends, ValueArgumentsCopied) {
  Quark* q = QUARK_New_Backend(2, GetParam());
  const Quark_Task_Flags flags;
  double out = 0.0;
  int v = 40;
  double d = 2.5;
  QUARK_Insert_Task(q, value_echo_task, &flags,
                    sizeof(int), &v, QUARK_VALUE,
                    sizeof(double), &d, QUARK_VALUE,
                    sizeof(double), &out, QUARK_INOUT,
                    std::size_t{0});
  v = -1;   // mutated after insert: the task must have its own copies
  d = -1.0;
  QUARK_Barrier(q);
  EXPECT_DOUBLE_EQ(out, 42.5);
  QUARK_Delete(q);
}

TEST_P(QuarkBothBackends, InoutChainPreservesOrder) {
  Quark* q = QUARK_New_Backend(4, GetParam());
  const Quark_Task_Flags flags;
  long slot = 0;
  for (int i = 1; i <= 6; ++i) {
    QUARK_Insert_Task(q, chain_task, &flags,
                      sizeof(int), &i, QUARK_VALUE,
                      sizeof(long), &slot, QUARK_INOUT,
                      std::size_t{0});
  }
  QUARK_Barrier(q);
  EXPECT_EQ(slot, 123456L);  // digits in insertion order
  QUARK_Delete(q);
}

TEST_P(QuarkBothBackends, ScratchBufferProvided) {
  Quark* q = QUARK_New_Backend(2, GetParam());
  const Quark_Task_Flags flags;
  double out = 0.0;
  int n = 10;
  QUARK_Insert_Task(q, scratch_task, &flags,
                    sizeof(int), &n, QUARK_VALUE,
                    sizeof(double) * 10, nullptr, QUARK_SCRATCH,
                    sizeof(double), &out, QUARK_OUTPUT,
                    std::size_t{0});
  QUARK_Barrier(q);
  EXPECT_DOUBLE_EQ(out, 55.0);
  QUARK_Delete(q);
}

TEST_P(QuarkBothBackends, BarrierReusable) {
  Quark* q = QUARK_New_Backend(2, GetParam());
  const Quark_Task_Flags flags;
  std::atomic<int> counter{0};
  std::atomic<int>* cptr = &counter;
  for (int phase = 0; phase < 4; ++phase) {
    for (int i = 0; i < 25; ++i) {
      QUARK_Insert_Task(q, count_task, &flags,
                        sizeof(cptr), &cptr, QUARK_VALUE,
                        std::size_t{0});
    }
    QUARK_Barrier(q);
    EXPECT_EQ(counter.load(), (phase + 1) * 25);
  }
  QUARK_Delete(q);
}

INSTANTIATE_TEST_SUITE_P(Backends, QuarkBothBackends,
                         ::testing::Values(QUARK_BACKEND_XKAAPI,
                                           QUARK_BACKEND_CENTRAL));

TEST(QuarkApi, ThreadCount) {
  Quark* q = QUARK_New_Backend(3, QUARK_BACKEND_CENTRAL);
  EXPECT_EQ(QUARK_Thread_Count(q), 3);
  QUARK_Delete(q);
}

TEST(QuarkApi, EnvBackendSelection) {
  ::setenv("XK_QUARK_BACKEND", "central", 1);
  Quark* q = QUARK_New(2);
  ASSERT_NE(q, nullptr);
  QUARK_Delete(q);
  ::unsetenv("XK_QUARK_BACKEND");
}

}  // namespace
