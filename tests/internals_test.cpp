// White-box unit tests of the scheduler's building blocks: the frame arena,
// the chunked task list, scan hints, the ready-list dependence graph, and
// the steal-request slot protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/arena.hpp"
#include "core/frame.hpp"
#include "core/readylist.hpp"
#include "core/xkaapi.hpp"
#include "support/parker.hpp"

namespace {

TEST(Arena, AlignmentRespected) {
  xk::Arena arena;
  for (std::size_t align : {1ul, 8ul, 16ul, 64ul, 128ul}) {
    void* p = arena.allocate(13, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(Arena, GrowsAcrossBlocks) {
  xk::Arena arena;
  // Allocate far beyond one 16 KiB block; every pointer stays usable.
  std::vector<unsigned char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<unsigned char*>(arena.allocate(1000, 8));
    std::memset(p, i, 1000);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][0],
              static_cast<unsigned char>(i));
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][999],
              static_cast<unsigned char>(i));
  }
}

TEST(Arena, LargeSingleAllocation) {
  xk::Arena arena;
  void* big = arena.allocate(1 << 20, 64);  // > default block size
  std::memset(big, 0xab, 1 << 20);
  EXPECT_NE(big, nullptr);
}

TEST(Arena, ResetRecyclesMemory) {
  xk::Arena arena;
  arena.allocate(8 * 1024, 8);
  arena.allocate(8 * 1024, 8);  // forces a second block
  const std::size_t footprint = arena.bytes_allocated();
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    arena.allocate(8 * 1024, 8);
    arena.allocate(8 * 1024, 8);
  }
  // Recycling must not grow the footprint.
  EXPECT_EQ(arena.bytes_allocated(), footprint);
}

xk::Task* make_task(xk::Arena& arena) {
  auto* t = new (arena.allocate(sizeof(xk::Task), alignof(xk::Task)))
      xk::Task();
  t->body = [](void*, xk::Worker&) {};
  return t;
}

TEST(FrameTest, PushAndIterateAcrossChunks) {
  xk::Frame frame;
  std::vector<xk::Task*> tasks;
  const std::uint32_t n = xk::Frame::kChunkTasks * 3 + 17;
  for (std::uint32_t i = 0; i < n; ++i) {
    xk::Task* t = make_task(frame.arena);
    tasks.push_back(t);
    frame.push_task(t);
  }
  EXPECT_EQ(frame.size_acquire(), n);
  xk::Frame::Iterator it(frame);
  for (std::uint32_t i = 0; i < n; ++i, it.advance()) {
    ASSERT_EQ(it.get(), tasks[i]) << i;
    ASSERT_EQ(it.index(), i);
  }
}

TEST(FrameTest, IteratorSeek) {
  xk::Frame frame;
  const std::uint32_t n = xk::Frame::kChunkTasks * 2 + 5;
  std::vector<xk::Task*> tasks;
  for (std::uint32_t i = 0; i < n; ++i) {
    tasks.push_back(make_task(frame.arena));
    frame.push_task(tasks.back());
  }
  xk::Frame::Iterator it(frame);
  it.seek(xk::Frame::kChunkTasks + 3);
  EXPECT_EQ(it.get(), tasks[xk::Frame::kChunkTasks + 3]);
  EXPECT_EQ(frame.task_at(n - 1), tasks[n - 1]);
}

TEST(FrameTest, ResetClearsEverythingAndBumpsEpoch) {
  xk::Frame frame;
  const std::uint64_t epoch0 = frame.epoch();
  for (int i = 0; i < 10; ++i) frame.push_task(make_task(frame.arena));
  for (int i = 0; i < 10; ++i) frame.exec_advance();
  frame.reset();
  EXPECT_EQ(frame.size_acquire(), 0u);
  EXPECT_EQ(frame.exec_cursor(), 0u);
  // A recycle must advance the incarnation so combiner scan caches notice.
  EXPECT_GT(frame.epoch(), epoch0);
  // Reusable after reset.
  frame.push_task(make_task(frame.arena));
  EXPECT_EQ(frame.size_acquire(), 1u);
}

TEST(FrameTest, ExecCursorCrossesChunks) {
  xk::Frame frame;
  const std::uint32_t n = xk::Frame::kChunkTasks * 2 + 3;
  std::vector<xk::Task*> tasks;
  for (std::uint32_t i = 0; i < n; ++i) {
    tasks.push_back(make_task(frame.arena));
    frame.push_task(tasks.back());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(frame.exec_cursor(), i);
    ASSERT_EQ(frame.exec_current(), tasks[i]) << i;
    frame.exec_advance();
  }
  EXPECT_EQ(frame.exec_cursor(), n);
}

// ---------------------------------------------------------------------------
// ReadyList white-box tests.
// ---------------------------------------------------------------------------

struct RlFixture {
  xk::Frame frame;
  std::vector<xk::Access> accesses;  // stable storage

  RlFixture() { accesses.reserve(64); }

  xk::Task* add(const void* region_base, std::size_t bytes,
                xk::AccessMode mode) {
    xk::Task* t = make_task(frame.arena);
    accesses.push_back(xk::Access{
        xk::MemRegion::contiguous(region_base, bytes), mode, 0,
        xk::kNoArgOffset});
    t->accesses = &accesses.back();
    t->naccesses = 1;
    frame.push_task(t);
    return t;
  }
};

TEST(ReadyListTest, RawChainReleasesInOrder) {
  RlFixture fx;
  double slot = 0.0;
  xk::Task* t0 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  xk::Task* t1 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  xk::Task* t2 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);

  xk::ReadyList rl(fx.frame);
  rl.extend();
  EXPECT_EQ(rl.covered(), 3u);
  // Only the head of the chain is ready.
  xk::Task* got = rl.pop_ready_claimed();
  ASSERT_EQ(got, t0);
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);
  // Completing t0 releases t1 (notify then Term, as the runtime does).
  rl.on_complete(t0);
  t0->state.store(xk::TaskState::kTerm);
  got = rl.pop_ready_claimed();
  ASSERT_EQ(got, t1);
  rl.on_complete(t1);
  t1->state.store(xk::TaskState::kTerm);
  EXPECT_EQ(rl.pop_ready_claimed(), t2);
}

TEST(ReadyListTest, IndependentTasksAllReady) {
  RlFixture fx;
  double a = 0, b = 0, c = 0;
  fx.add(&a, 8, xk::AccessMode::kWrite);
  fx.add(&b, 8, xk::AccessMode::kWrite);
  fx.add(&c, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame);
  rl.extend();
  EXPECT_EQ(rl.ready_size(), 3u);
  int popped = 0;
  while (rl.pop_ready_claimed() != nullptr) ++popped;
  EXPECT_EQ(popped, 3);
}

TEST(ReadyListTest, ReadersShareWritersOrder) {
  RlFixture fx;
  double slot = 0.0;
  xk::Task* w = fx.add(&slot, 8, xk::AccessMode::kWrite);
  xk::Task* r1 = fx.add(&slot, 8, xk::AccessMode::kRead);
  xk::Task* r2 = fx.add(&slot, 8, xk::AccessMode::kRead);
  xk::ReadyList rl(fx.frame);
  rl.extend();
  EXPECT_EQ(rl.pop_ready_claimed(), w);
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);  // readers blocked by writer
  rl.on_complete(w);
  w->state.store(xk::TaskState::kTerm);
  // Both readers release together (R vs R does not conflict).
  xk::Task* a = rl.pop_ready_claimed();
  xk::Task* b = rl.pop_ready_claimed();
  EXPECT_TRUE((a == r1 && b == r2) || (a == r2 && b == r1));
}

TEST(ReadyListTest, EarlyCompletionBeforeCoverage) {
  RlFixture fx;
  double slot = 0.0;
  xk::Task* t0 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  xk::Task* t1 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  xk::ReadyList rl(fx.frame);
  // t0 completes before the list ever covered it.
  rl.on_complete(t0);
  t0->state.store(xk::TaskState::kTerm);
  rl.extend();
  // t1 must be immediately ready: its only predecessor already completed.
  EXPECT_EQ(rl.pop_ready_claimed(), t1);
}

TEST(ReadyListTest, SweepCatchesMissedNotification) {
  RlFixture fx;
  double slot = 0.0;
  xk::Task* t0 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  xk::Task* t1 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  xk::ReadyList rl(fx.frame);
  rl.extend();
  ASSERT_EQ(rl.pop_ready_claimed(), t0);
  // Simulate the attach race: t0 reaches Term *without* notifying the list.
  t0->state.store(xk::TaskState::kTerm);
  // The empty-pop sweep must fold the completion in and release t1.
  EXPECT_EQ(rl.pop_ready_claimed(), t1);
}

TEST(ReadyListTest, ClaimedTasksSkippedOnPop) {
  RlFixture fx;
  double a = 0, b = 0;
  xk::Task* t0 = fx.add(&a, 8, xk::AccessMode::kWrite);
  xk::Task* t1 = fx.add(&b, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame);
  rl.extend();
  // The owner claims t0 through the FIFO path first.
  ASSERT_TRUE(t0->try_claim(xk::TaskState::kRunOwner));
  EXPECT_EQ(rl.pop_ready_claimed(), t1);  // t0 skipped, not returned
  // The skipped claim is not dropped on the floor: it moves to the watch
  // list so a silent (unnotified) termination still gets folded in.
  EXPECT_GE(rl.watched_size(), 1u);
}

TEST(ReadyListTest, BatchPopClaimsUpToMaxOldestFirst) {
  RlFixture fx;
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  xk::Task* t0 = fx.add(&s0, 8, xk::AccessMode::kWrite);
  xk::Task* t1 = fx.add(&s1, 8, xk::AccessMode::kWrite);
  xk::Task* t2 = fx.add(&s2, 8, xk::AccessMode::kWrite);
  fx.add(&s3, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame);
  rl.extend();
  xk::Task* out[3] = {};
  // One lock acquisition hands back up to `max` claimed tasks, FIFO order.
  ASSERT_EQ(rl.pop_ready_claimed_batch(out, 3), 3u);
  EXPECT_EQ(out[0], t0);
  EXPECT_EQ(out[1], t1);
  EXPECT_EQ(out[2], t2);
  for (xk::Task* t : out) {
    EXPECT_EQ(t->load_state(), xk::TaskState::kStolenClaim);
  }
  // The fourth stays ready for the next batch.
  EXPECT_EQ(rl.ready_size(), 1u);
}

TEST(ReadyListTest, ClaimedElsewhereTermFoldsInOrder) {
  // FIFO fairness under contention: t0 (oldest) is claimed by the owner
  // and terminates *without* notifying (simulating the attach race). The
  // pop that encounters it must fold the completion immediately so t0's
  // successor is released ahead of younger independent tasks.
  RlFixture fx;
  double chain = 0, other = 0;
  xk::Task* t0 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
  xk::Task* t1 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
  xk::Task* t2 = fx.add(&other, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame);
  rl.extend();
  ASSERT_TRUE(t0->try_claim(xk::TaskState::kRunOwner));
  t0->state.store(xk::TaskState::kTerm);  // silent: no on_complete
  // Pop order: t0 folds (releasing t1 behind t2, which was already ready).
  xk::Task* a = rl.pop_ready_claimed();
  xk::Task* b = rl.pop_ready_claimed();
  EXPECT_EQ(a, t2);
  EXPECT_EQ(b, t1);
  EXPECT_GE(rl.missed_folds(), 1u);
}

TEST(ReadyListTest, LazySweepReleasesWatchedChainUnderLoad) {
  // A longer claimed-elsewhere chain: every link terminates silently; the
  // lazy watch sweep must keep folding completions until the whole chain
  // has been released, never stranding a successor.
  RlFixture fx;
  double slot = 0.0;
  constexpr int kLen = 16;
  std::vector<xk::Task*> chain;
  for (int i = 0; i < kLen; ++i) {
    chain.push_back(fx.add(&slot, 8, xk::AccessMode::kReadWrite));
  }
  xk::ReadyList rl(fx.frame);
  rl.extend();
  for (int i = 0; i < kLen; ++i) {
    xk::Task* got = rl.pop_ready_claimed();
    ASSERT_EQ(got, chain[static_cast<std::size_t>(i)]) << i;
    // Terminate silently: the next pop has to recover via the sweep.
    got->state.store(xk::TaskState::kTerm);
  }
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);  // all folded and done
}

// ---------------------------------------------------------------------------
// Domain-sharded ready lists.
// ---------------------------------------------------------------------------

TEST(ReadyListShard, LocalShardFirstPopOrder) {
  RlFixture fx;
  double chain = 0, other = 0;
  xk::Task* t0 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
  xk::Task* t1 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
  xk::Task* t2 = fx.add(&other, 8, xk::AccessMode::kWrite);

  xk::ReadyList rl(fx.frame, /*nshards=*/2);
  EXPECT_EQ(rl.nshards(), 2u);
  rl.extend(/*shard=*/0);  // covering combiner ran in domain 0
  EXPECT_EQ(rl.shard_ready_size(0), 2u);  // t0 and the independent t2
  EXPECT_EQ(rl.shard_ready_size(1), 0u);
  // The per-shard live-depth gauge (the board mirror, maintained even
  // without a board) tracks the queue.
  EXPECT_EQ(rl.shard_live_depth(0), 2);
  EXPECT_EQ(rl.shard_live_depth(1), 0);

  xk::Task* out[1] = {};
  std::uint64_t hits = 0, misses = 0;
  ASSERT_EQ(rl.pop_ready_claimed_batch(out, 1, /*shard=*/0, &hits, &misses),
            1u);
  EXPECT_EQ(out[0], t0);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 0u);

  // t0 completes on a domain-1 worker: its successor t1 is released into
  // shard 1 (producer-side routing — the finisher just wrote t1's input).
  rl.on_complete(t0, /*shard=*/1);
  t0->state.store(xk::TaskState::kTerm);
  EXPECT_EQ(rl.shard_ready_size(1), 1u);

  // A domain-1 popper takes its own shard's t1 first although t2 (shard 0)
  // is older in program order: locality beats global FIFO across shards.
  hits = misses = 0;
  ASSERT_EQ(rl.pop_ready_claimed_batch(out, 1, /*shard=*/1, &hits, &misses),
            1u);
  EXPECT_EQ(out[0], t1);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 0u);

  // Own shard dry: the pop crosses into shard 0 and counts a miss.
  hits = misses = 0;
  ASSERT_EQ(rl.pop_ready_claimed_batch(out, 1, /*shard=*/1, &hits, &misses),
            1u);
  EXPECT_EQ(out[0], t2);
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(rl.ready_size(), 0u);
  EXPECT_EQ(rl.shard_live_depth(0), 0);
  EXPECT_EQ(rl.shard_live_depth(1), 0);
}

TEST(ReadyListShard, SingleShardKeepsGlobalFifo) {
  // The flat collapse: one shard, every producer/popper shard argument
  // clamps to it, order is the original global FIFO.
  RlFixture fx;
  double a = 0, b = 0;
  xk::Task* t0 = fx.add(&a, 8, xk::AccessMode::kWrite);
  xk::Task* t1 = fx.add(&b, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame, /*nshards=*/1);
  rl.extend(/*shard=*/7);  // out-of-range shard ids clamp, not crash
  EXPECT_EQ(rl.pop_ready_claimed(/*shard=*/3), t0);
  EXPECT_EQ(rl.pop_ready_claimed(), t1);
}

TEST(ReadyListShard, BoardTracksShardDepths) {
  xk::StarvationBoard board;
  board.init(2);
  RlFixture fx;
  double a = 0, b = 0, c = 0;
  fx.add(&a, 8, xk::AccessMode::kWrite);
  xk::Task* t1 = fx.add(&b, 8, xk::AccessMode::kWrite);
  fx.add(&c, 8, xk::AccessMode::kWrite);
  {
    xk::ReadyList rl(fx.frame, 2, &board);
    rl.extend(/*shard=*/1);
    EXPECT_EQ(board.ready_depth(1), 3);
    EXPECT_EQ(board.ready_depth(0), 0);
    xk::Task* out[1] = {};
    ASSERT_EQ(rl.pop_ready_claimed_batch(out, 1, 1), 1u);
    EXPECT_EQ(board.ready_depth(1), 2);
    // Owner FIFO claims and finishes t1 while its id still sits in the
    // shard deque: the gauge contribution must return at completion, not
    // wait for a combiner to pop the dead id — phantom depth would veto
    // real starvation verdicts.
    ASSERT_TRUE(t1->try_claim(xk::TaskState::kRunOwner));
    rl.on_complete(t1, /*shard=*/1);
    t1->state.store(xk::TaskState::kTerm);
    EXPECT_EQ(board.ready_depth(1), 1);
    // The shard's own live-depth gauge mirrors the board at every step
    // (they are updated together: push under the shard lock, settle via
    // the same atomic exchange).
    EXPECT_EQ(rl.shard_live_depth(1), board.ready_depth(1));
    // rl destroyed with one live task still queued (plus t1's dead id):
    // the destructor returns exactly the live contribution.
  }
  EXPECT_EQ(board.ready_depth(1), 0);
}

// ---------------------------------------------------------------------------
// Two-level (graph/shard) locking vs the global-mutex ablation.
// ---------------------------------------------------------------------------

// Replays the claim-race fold scenario of ClaimedElsewhereTermFoldsInOrder
// under XK_RL_LOCK=global and asserts the exact pre-split pop order: the
// whole batch under one lock, inline folds, folded successors released
// behind already-ready younger tasks. Split mode must produce the same
// order in a single-threaded replay (the locking changed, the routing did
// not) — both are pinned so an accidental semantic divergence between the
// two pop implementations fails loudly.
TEST(ReadyListLock, GlobalAndSplitAgreeOnPopOrder) {
  for (xk::RlLockMode mode :
       {xk::RlLockMode::kGlobal, xk::RlLockMode::kSplit,
        xk::RlLockMode::kLockFree}) {
    RlFixture fx;
    double chain = 0, other = 0;
    xk::Task* t0 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
    xk::Task* t1 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
    xk::Task* t2 = fx.add(&other, 8, xk::AccessMode::kWrite);
    xk::ReadyList rl(fx.frame, 1, nullptr, mode);
    ASSERT_EQ(rl.lock_mode(), mode);
    rl.extend();
    ASSERT_TRUE(t0->try_claim(xk::TaskState::kRunOwner));
    t0->state.store(xk::TaskState::kTerm);  // silent: no on_complete
    EXPECT_EQ(rl.pop_ready_claimed(), t2) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(rl.pop_ready_claimed(), t1) << "mode " << static_cast<int>(mode);
    EXPECT_GE(rl.missed_folds(), 1u);
    EXPECT_EQ(rl.pop_ready_claimed(), nullptr);
  }
}

TEST(ReadyListLock, GlobalModeShardRoutingUnchanged) {
  // The local-shard-first contract of ReadyListShard.LocalShardFirstPopOrder
  // under the global single mutex: lock mode selects the locking, never
  // the routing.
  RlFixture fx;
  double chain = 0, other = 0;
  xk::Task* t0 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
  xk::Task* t1 = fx.add(&chain, 8, xk::AccessMode::kReadWrite);
  xk::Task* t2 = fx.add(&other, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame, 2, nullptr, xk::RlLockMode::kGlobal);
  rl.extend(/*shard=*/0);
  xk::Task* out[1] = {};
  std::uint64_t hits = 0, misses = 0;
  ASSERT_EQ(rl.pop_ready_claimed_batch(out, 1, 0, &hits, &misses), 1u);
  EXPECT_EQ(out[0], t0);
  rl.on_complete(t0, /*shard=*/1);
  t0->state.store(xk::TaskState::kTerm);
  ASSERT_EQ(rl.pop_ready_claimed_batch(out, 1, 1, &hits, &misses), 1u);
  EXPECT_EQ(out[0], t1);  // own shard beats the older cross-shard t2
  ASSERT_EQ(rl.pop_ready_claimed_batch(out, 1, 1, &hits, &misses), 1u);
  EXPECT_EQ(out[0], t2);
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(misses, 1u);
}

// The lock-free mode's bounded ring spills to the mutex-guarded side deque
// when full, and the side-nonempty divert rule keeps the combined order
// FIFO: once anything sits in the side deque, later pushes go there too,
// so ring entries always predate side entries. This covers the whole
// overflow story in one shot — spill on push, FIFO across the boundary,
// ring-first/side-second drain on pop, and the spill/side telemetry.
TEST(ReadyListLockFree, RingOverflowSpillsToSideDequeInFifoOrder) {
  constexpr std::size_t kTasks = xk::ReadyList::kRingCapacity + 96;
  RlFixture fx;
  fx.accesses.reserve(kTasks);  // stable storage for every access record
  std::vector<double> slots(kTasks, 0.0);
  std::vector<xk::Task*> tasks;
  tasks.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back(fx.add(&slots[i], 8, xk::AccessMode::kWrite));
  }
  xk::ReadyList rl(fx.frame, 1, nullptr, xk::RlLockMode::kLockFree);
  rl.extend();
  EXPECT_EQ(rl.ready_size(), kTasks);
  // Everything past the ring's capacity had to spill.
  EXPECT_GE(rl.ring_spills(), kTasks - xk::ReadyList::kRingCapacity);
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(rl.pop_ready_claimed(), tasks[i]) << "index " << i;
  }
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);
  EXPECT_GE(rl.side_pops(), kTasks - xk::ReadyList::kRingCapacity);
  EXPECT_EQ(rl.ready_size(), 0u);
}

// Regression: the lock-free index's grow path used to rehash from the
// authoritative task->node map, which also holds every node that was
// already completed when coverage reached it (those skip the table on
// purpose). On owner-heavy frames — a 1-worker run where the owner FIFO
// retires most tasks before extend() covers them — the map can exceed
// any capacity derived from the table's own occupancy, so the rehash
// overfilled the fresh table and the open-addressed probe spun forever.
// 2200 pre-completed covers + 800 live inserts crosses the first grow
// (at 716 live) with a map bigger than the 2048-slot table it used to
// rehash into; pre-fix this test hangs.
TEST(ReadyListLockFree, IndexGrowWithManyPreCompletedCoveredTasks) {
  constexpr std::size_t kDone = 2200;
  constexpr std::size_t kLive = 800;
  RlFixture fx;
  fx.accesses.reserve(kDone + kLive);
  std::vector<double> slots(kDone + kLive, 0.0);
  std::vector<xk::Task*> live;
  live.reserve(kLive);
  for (std::size_t i = 0; i < kDone; ++i) {
    xk::Task* t = fx.add(&slots[i], 8, xk::AccessMode::kWrite);
    t->state.store(xk::TaskState::kTerm);  // retired before coverage
  }
  for (std::size_t i = 0; i < kLive; ++i) {
    live.push_back(fx.add(&slots[kDone + i], 8, xk::AccessMode::kWrite));
  }
  xk::ReadyList rl(fx.frame, 1, nullptr, xk::RlLockMode::kLockFree);
  // Coverage is capped at 2048 tasks per round; two rounds cover all 3000.
  rl.extend();
  rl.extend();
  EXPECT_EQ(rl.ready_size(), kLive);
  for (std::size_t i = 0; i < kLive; ++i) {
    xk::Task* t = rl.pop_ready_claimed();
    ASSERT_EQ(t, live[i]) << "index " << i;
    // Complete through the lock-free lookup so every probe walks the
    // grown table (not just the insert path).
    rl.on_complete(t);
    t->state.store(xk::TaskState::kTerm);
  }
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);
  EXPECT_EQ(rl.ready_size(), 0u);
}

// Single-pop shard telemetry (PR 7 satellite): the convenience single-task
// pop_ready_claimed must attribute its cross-shard fallback exactly like
// the batch form — a pop served by the home shard is a hit, one served by
// another rank is a miss. It used to drop both counters on the floor.
TEST(ReadyListShard, SinglePopRecordsShardHitAndMiss) {
  RlFixture fx;
  double a = 0, b = 0;
  xk::Task* t0 = fx.add(&a, 8, xk::AccessMode::kWrite);
  xk::Task* t1 = fx.add(&b, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame, 2);
  rl.extend(/*shard=*/0);  // both tasks land in shard 0
  std::uint64_t hits = 0, misses = 0;
  EXPECT_EQ(rl.pop_ready_claimed(0, &hits, &misses), t0);
  EXPECT_EQ(hits, 1u);    // served by the home shard
  EXPECT_EQ(misses, 0u);
  EXPECT_EQ(rl.pop_ready_claimed(1, &hits, &misses), t1);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);  // shard 1 was empty; shard 0 served the pop
}

// ---------------------------------------------------------------------------
// Ready-list correctness regressions (PR 5 satellites).
// ---------------------------------------------------------------------------

TEST(ReadyListTest, EarlyCompletionsClearedOnFrameRecycle) {
  // Regression: early_completions_ entries used to be erased only when the
  // task was later covered, so a section ending before extend() reached
  // full coverage leaked them into the next incarnation of a recycled
  // frame — where they alias freshly bump-allocated tasks at the same
  // arena addresses and can mark a brand-new task "already completed".
  RlFixture fx;
  double slot = 0.0;
  xk::ReadyList rl(fx.frame);
  for (int cycle = 0; cycle < 4; ++cycle) {
    xk::Task* ta = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
    xk::Task* tb = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
    // ta terminates before the list ever covers it: an early-completion
    // record is the only trace. The section then "ends" — coverage never
    // reaches ta or tb.
    ASSERT_TRUE(ta->try_claim(xk::TaskState::kRunOwner));
    rl.on_complete(ta);
    ta->state.store(xk::TaskState::kTerm);
    EXPECT_EQ(rl.early_completion_count(), 1u) << "cycle " << cycle;
    (void)tb;
    // Frame recycles; the arena hands the next cycle's tasks the same
    // storage. The epoch check must drop the stale record instead of
    // letting it accumulate (or worse, match an aliased new task).
    fx.frame.reset();
    fx.accesses.clear();
    xk::Task* fresh = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
    rl.extend();
    EXPECT_EQ(rl.early_completion_count(), 0u) << "cycle " << cycle;
    EXPECT_EQ(rl.covered(), 1u) << "cycle " << cycle;
    // The aliased new task must be poppable — a leaked record would have
    // marked it completed at coverage and stranded it forever.
    EXPECT_EQ(rl.pop_ready_claimed(), fresh) << "cycle " << cycle;
    fresh->state.store(xk::TaskState::kTerm);
    fx.frame.reset();
    fx.accesses.clear();
  }
}

TEST(ReadyListTest, PopAfterFrameRecycleServesNoStaleEntries) {
  // The pop paths must honor the recycle contract too: a pop issued
  // before the new incarnation's first extend()/on_complete() must not
  // serve a prior-incarnation queue entry whose task pointer aliases
  // freshly recycled arena storage.
  for (xk::RlLockMode mode :
       {xk::RlLockMode::kGlobal, xk::RlLockMode::kSplit,
        xk::RlLockMode::kLockFree}) {
    RlFixture fx;
    double slot = 0.0;
    xk::ReadyList rl(fx.frame, 1, nullptr, mode);
    fx.add(&slot, 8, xk::AccessMode::kWrite);
    rl.extend();
    ASSERT_EQ(rl.ready_size(), 1u);  // queued, never popped
    fx.frame.reset();
    fx.accesses.clear();
    xk::Task* fresh = fx.add(&slot, 8, xk::AccessMode::kWrite);
    // First contact with the recycled frame is a *pop*: it must drop the
    // stale entry (the fresh task is not covered yet) rather than claim
    // through the aliased pointer.
    EXPECT_EQ(rl.pop_ready_claimed(), nullptr)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(rl.ready_size(), 0u);
    EXPECT_EQ(fresh->load_state(), xk::TaskState::kInit);
    rl.extend();
    EXPECT_EQ(rl.pop_ready_claimed(), fresh);
  }
}

TEST(ReadyListTest, WatchRecycledAcrossFrameReset) {
  // The watch deque is part of the coverage state: entries watched in one
  // incarnation point at dead nodes and must not survive a recycle.
  RlFixture fx;
  double slot = 0.0;
  xk::ReadyList rl(fx.frame);
  xk::Task* t0 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  ASSERT_TRUE(t0->try_claim(xk::TaskState::kRunOwner));  // claimed pre-coverage
  rl.extend();
  EXPECT_EQ(rl.watched_size(), 1u);
  fx.frame.reset();
  fx.accesses.clear();
  rl.extend();
  EXPECT_EQ(rl.watched_size(), 0u);
}

TEST(ReadyListTest, WatchedEntriesDeduplicated) {
  // Regression: a node covered while already claimed was pushed onto the
  // watch deque at add_node and could be pushed *again* on the pop-path
  // claim-race branch once its predecessors released it into a shard —
  // doubling lazy-sweep work for every such claim. The per-node watched
  // flag keeps watched_size() bounded by the number of claims in flight.
  RlFixture fx;
  double slot = 0.0;
  xk::Task* t0 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  xk::Task* t1 = fx.add(&slot, 8, xk::AccessMode::kReadWrite);
  // t1 is claimed by the owner's FIFO before coverage: add_node watches it.
  ASSERT_TRUE(t1->try_claim(xk::TaskState::kRunOwner));
  xk::ReadyList rl(fx.frame);
  rl.extend();
  EXPECT_EQ(rl.watched_size(), 1u);  // t1, covered-while-claimed
  // Pop + claim t0; completing it releases t1 into the ready shard even
  // though t1 is claimed (release tracks the graph, not the claim).
  ASSERT_EQ(rl.pop_ready_claimed(), t0);
  rl.on_complete(t0);
  t0->state.store(xk::TaskState::kTerm);
  // The pop now hits t1's dead-claim entry: the claim-race branch would
  // have watched it a second time without the dedupe flag.
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);
  // Exactly two claims are in flight (t0 StolenClaim via the pop, t1
  // RunOwner) — the watch deque must hold at most one entry each.
  EXPECT_LE(rl.watched_size(), 2u);
  // Repeated empty pops keep sweeping but never duplicate entries.
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);
  EXPECT_LE(rl.watched_size(), 2u);
  // Both claims settle; the sweep drains the watch deque to empty.
  t1->state.store(xk::TaskState::kTerm);
  EXPECT_EQ(rl.pop_ready_claimed(), nullptr);  // sweep folds the silent Term
  EXPECT_EQ(rl.watched_size(), 0u);
}

#ifdef NDEBUG
TEST(ReadyListShard, OutOfRangeRankWrapsByModulo) {
  // Regression (release builds only — debug builds assert instead): an
  // out-of-range domain rank used to fold silently onto shard 0,
  // mis-crediting shard 0's depth and the hit/miss telemetry. It now
  // wraps by modulo.
  RlFixture fx;
  double a = 0;
  fx.add(&a, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame, /*nshards=*/3);
  rl.extend(/*shard=*/5);  // 5 % 3 == 2, not 0
  EXPECT_EQ(rl.shard_ready_size(2), 1u);
  EXPECT_EQ(rl.shard_ready_size(0), 0u);
}
#else
TEST(ReadyListShardDeathTest, OutOfRangeRankAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RlFixture fx;
  double a = 0;
  fx.add(&a, 8, xk::AccessMode::kWrite);
  xk::ReadyList rl(fx.frame, /*nshards=*/3);
  // A rank at or past nshards with real shards is an upstream routing bug;
  // the single-shard collapse (nshards == 1) legitimately accepts any rank.
  EXPECT_DEATH(rl.extend(/*shard=*/5), "routing bug");
}
#endif

// ---------------------------------------------------------------------------
// Starvation board.
// ---------------------------------------------------------------------------

TEST(StarvationBoardTest, ThresholdProgressAndReadyVeto) {
  xk::StarvationBoard b;
  b.init(2);
  EXPECT_FALSE(b.starving(1, 2));
  b.record_failed_round(1);
  EXPECT_FALSE(b.starving(1, 2));
  b.record_failed_round(1);
  EXPECT_TRUE(b.starving(1, 2));
  EXPECT_FALSE(b.starving(0, 2));  // per-domain: domain 0 untouched
  // Progress (any successful steal by a domain thief) clears the gauge.
  b.record_progress(1);
  EXPECT_FALSE(b.starving(1, 2));
  // Queued ready work in the domain's shards vetoes the verdict even past
  // the failed-round threshold.
  b.record_failed_round(1);
  b.record_failed_round(1);
  b.add_ready(1, 1);
  EXPECT_FALSE(b.starving(1, 2));
  b.add_ready(1, -1);
  EXPECT_TRUE(b.starving(1, 2));
  // Threshold 0 disables the signal outright.
  EXPECT_FALSE(b.starving(1, 0));
  // Section-boundary reset (Runtime::begin): failed rounds clear, ready
  // depths are real state and survive.
  b.add_ready(0, 3);
  b.reset_rounds();
  EXPECT_FALSE(b.starving(1, 2));
  EXPECT_EQ(b.ready_depth(0), 3);
}

TEST(StarvationBoardTest, UninitializedBoardIsInert) {
  xk::StarvationBoard b;
  b.record_failed_round(0);
  b.add_ready(0, 5);
  EXPECT_FALSE(b.starving(0, 1));
  EXPECT_EQ(b.ready_depth(0), 0);
  // The occupancy side is equally inert without init_occupancy().
  EXPECT_EQ(b.publish_occupied(0, true), 0u);
  EXPECT_FALSE(b.occupied(0));
  EXPECT_EQ(b.root_occupied(), 0);
}

// ---------------------------------------------------------------------------
// Occupancy bits + the quiescence fold (the victim-hint / termination side
// of the board).
// ---------------------------------------------------------------------------

TEST(StarvationBoardTest, OccupancyBitsFoldUpDomainAndRoot) {
  xk::StarvationBoard b;
  b.init(2);
  b.init_occupancy({0, 0, 1});  // workers 0,1 -> domain 0; worker 2 -> domain 1
  EXPECT_FALSE(b.occupied(0));
  EXPECT_EQ(b.root_occupied(), 0);

  // First worker of a domain climbs two levels: its bit + the domain count
  // (the root rise rides the same call but is not a firing edge).
  EXPECT_EQ(b.publish_occupied(0, true), 2u);
  EXPECT_TRUE(b.occupied(0));
  EXPECT_EQ(b.domain_occupied(0), 1);
  EXPECT_EQ(b.root_occupied(), 1);
  // Idempotent republish: no transition, no fold.
  EXPECT_EQ(b.publish_occupied(0, true), 0u);
  // Second worker of an already-occupied domain: bit only.
  EXPECT_EQ(b.publish_occupied(1, true), 1u);
  EXPECT_EQ(b.domain_occupied(0), 2);
  EXPECT_EQ(b.root_occupied(), 1);
  // First worker of the other domain: bit + domain (root 1 -> 2).
  EXPECT_EQ(b.publish_occupied(2, true), 2u);
  EXPECT_EQ(b.domain_occupied(1), 1);
  EXPECT_EQ(b.root_occupied(), 2);

  // Clearing folds back down symmetrically.
  EXPECT_EQ(b.publish_occupied(1, false), 1u);  // domain 0 still has worker 0
  EXPECT_EQ(b.publish_occupied(0, false), 2u);  // domain 0 empties, root 2 -> 1
  EXPECT_EQ(b.root_occupied(), 1);
  // The machine-wide 1 -> 0 edge is the quiescence level: three folds.
  EXPECT_EQ(b.publish_occupied(2, false), 3u);
  EXPECT_EQ(b.root_occupied(), 0);
  EXPECT_EQ(b.domain_occupied(0), 0);
  EXPECT_EQ(b.domain_occupied(1), 0);

  // Out-of-range worker ids are inert, not UB.
  EXPECT_EQ(b.publish_occupied(7, true), 0u);
  EXPECT_FALSE(b.occupied(7));
}

TEST(StarvationBoardTest, QuiesceFiresExactlyOnceAndDisarms) {
  xk::StarvationBoard b;
  b.init(1);
  b.init_occupancy({0});
  xk::Parker work, progress;
  b.arm_quiesce(&work, &progress);
  EXPECT_TRUE(b.quiesce_armed());
  // A root rise never fires.
  b.publish_occupied(0, true);
  EXPECT_TRUE(b.quiesce_armed());
  // The root 1 -> 0 edge fires and consumes both parker registrations.
  EXPECT_EQ(b.publish_occupied(0, false), 3u);
  EXPECT_FALSE(b.quiesce_armed());
  // A later cycle still counts its folds but has nothing left to fire.
  b.publish_occupied(0, true);
  EXPECT_EQ(b.publish_occupied(0, false), 3u);
  EXPECT_FALSE(b.quiesce_armed());
  // disarm_quiesce drops an unfired arming.
  b.arm_quiesce(&work, &progress);
  EXPECT_TRUE(b.quiesce_armed());
  b.disarm_quiesce();
  EXPECT_FALSE(b.quiesce_armed());
}

TEST(StarvationBoardTest, QuiesceWakesParkedWaiterByNotification) {
  xk::StarvationBoard b;
  b.init(1);
  b.init_occupancy({0});
  xk::Parker work, progress;
  b.publish_occupied(0, true);
  b.arm_quiesce(&work, &progress);
  std::atomic<bool> notified{false};
  std::thread sleeper([&] {
    const std::uint32_t epoch = work.prepare();
    work.announce();
    // Generous timeout: the assertion is that the *notification* (not the
    // backstop) ends the park.
    notified.store(work.park(epoch, std::chrono::seconds(30)));
    work.retract();
  });
  while (!work.has_waiters()) std::this_thread::yield();
  b.publish_occupied(0, false);  // quiescence: must wake the sleeper
  sleeper.join();
  EXPECT_TRUE(notified.load());
  EXPECT_FALSE(b.quiesce_armed());
}

// ---------------------------------------------------------------------------
// Steal-request slot protocol.
// ---------------------------------------------------------------------------

TEST(StealSlot, StatusLifecycle) {
  xk::StealRequest slot;
  EXPECT_EQ(slot.status.load(), xk::StealRequest::kEmpty);
  slot.status.store(xk::StealRequest::kPosted);
  slot.nreplies = 0;
  slot.status.store(xk::StealRequest::kFailed);
  EXPECT_EQ(slot.status.load(), xk::StealRequest::kFailed);
}

TEST(Stats, AggregationAccumulates) {
  xk::WorkerStats a, b;
  a.tasks_spawned = 3;
  a.steals_ok = 1;
  b.tasks_spawned = 4;
  b.renames = 2;
  b.steals_local = 5;
  b.steals_remote = 1;
  a += b;
  EXPECT_EQ(a.tasks_spawned, 7u);
  EXPECT_EQ(a.steals_ok, 1u);
  EXPECT_EQ(a.renames, 2u);
  EXPECT_EQ(a.steals_local, 5u);
  EXPECT_EQ(a.steals_remote, 1u);
}

// ---------------------------------------------------------------------------
// Hierarchical (locality-aware) stealing.
// ---------------------------------------------------------------------------

namespace {

void counter_fib(std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  xk::spawn(counter_fib, xk::write(&r1), n - 1);
  counter_fib(&r2, n - 2);
  xk::sync();
  *r = r1 + r2;
}

}  // namespace

TEST(TopoSteal, WorkersSnapshotLocalBeforeRemoteOrder) {
  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.sections = 1;       // pool-only geometry: no extra master slots
  cfg.topo = "2x2";      // two domains of two cores
  cfg.place = "compact";  // pin: the domain assertions below assume it
  xk::Runtime rt(cfg);
  ASSERT_EQ(rt.ndomains(), 2u);
  for (unsigned i = 0; i < 4; ++i) {
    xk::Worker& w = rt.worker(i);
    EXPECT_EQ(w.domain(), i / 2) << i;
    ASSERT_EQ(w.victim_order().size(), 3u) << i;
    EXPECT_EQ(w.nlocal_victims(), 1u) << i;
    // Local tier strictly precedes every remote entry; self never appears.
    for (unsigned k = 0; k < w.victim_order().size(); ++k) {
      const unsigned v = w.victim_order()[k];
      EXPECT_NE(v, i);
      const bool local = rt.worker(v).domain() == w.domain();
      EXPECT_EQ(local, k < w.nlocal_victims()) << "worker " << i << " k " << k;
    }
  }
}

TEST(TopoSteal, MasterSlotsJoinVictimOrdersWithPoolPlacement) {
  // With XK_SECTIONS > 1 the extra master slots (ids >= nworkers) are
  // full Worker instances sharing a pool slot's placement: every worker's
  // victim order spans them (their root frames are stealable), the
  // local-before-remote tiering still holds, and the pool placement /
  // domain count is unchanged.
  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.sections = 3;  // two extra master slots: ids 4 (slot 0), 5 (slot 1)
  cfg.topo = "2x2";
  cfg.place = "compact";
  xk::Runtime rt(cfg);
  ASSERT_EQ(rt.nworkers(), 4u);
  ASSERT_EQ(rt.nworkers_total(), 6u);
  ASSERT_EQ(rt.ndomains(), 2u);
  EXPECT_EQ(rt.worker(4).domain(), rt.worker(0).domain());
  EXPECT_EQ(rt.worker(5).domain(), rt.worker(1).domain());
  for (unsigned i = 0; i < rt.nworkers_total(); ++i) {
    xk::Worker& w = rt.worker(i);
    ASSERT_EQ(w.victim_order().size(), rt.nworkers_total() - 1) << i;
    for (unsigned k = 0; k < w.victim_order().size(); ++k) {
      const unsigned v = w.victim_order()[k];
      EXPECT_NE(v, i);
      const bool local = rt.worker(v).domain() == w.domain();
      EXPECT_EQ(local, k < w.nlocal_victims()) << "worker " << i << " k " << k;
    }
  }
}

TEST(TopoSteal, LocalRemoteCountersAccountForEverySteal) {
  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.topo = "2x2";
  xk::Runtime rt(cfg);
  // On a 1-core CI box the whole tree can drain before any pool worker is
  // ever scheduled; rerun (accumulating counters) until a steal happened.
  xk::WorkerStats s;
  for (int attempt = 0; attempt < 20; ++attempt) {
    std::uint64_t r = 0;
    rt.run([&] {
      counter_fib(&r, 24);
      xk::sync();
    });
    EXPECT_EQ(r, 46368u);
    s = rt.stats_snapshot();
    if (s.steals_ok > 0) break;
  }
  // Every successful steal is attributed to exactly one tier.
  EXPECT_EQ(s.steals_ok, s.steals_local + s.steals_remote);
  EXPECT_GT(s.steals_ok, 0u);
}

TEST(TopoSteal, StarvationSignalEscalatesAsymmetricShape) {
  // Asymmetric machine, work rooted in the small domain: domain 1's six
  // thieves can only reach it across the boundary, and with the per-thief
  // local-tries budget set out of reach only the shared starvation signal
  // can get them there early.
  xk::Config cfg;
  cfg.nworkers = 8;
  cfg.topo = "1x2+1x6";
  cfg.place = "compact";       // w0,w1 -> domain 0; w2..w7 -> domain 1
  cfg.steal_local_tries = 1 << 20;  // per-thief escalation: effectively never
  cfg.starve_rounds = 2;            // the domain-wide signal must do it
  xk::Runtime rt(cfg);
  ASSERT_EQ(rt.ndomains(), 2u);
  EXPECT_EQ(rt.worker(0).domain(), 0u);
  EXPECT_EQ(rt.worker(1).domain(), 0u);
  for (unsigned i = 2; i < 8; ++i) EXPECT_EQ(rt.worker(i).domain(), 1u) << i;
  EXPECT_EQ(rt.worker(7).domain_rank(), 1u);

  // On a 1-core CI box the tree can drain before the pool workers are ever
  // scheduled; rerun (accumulating counters) until the signal fired.
  xk::WorkerStats s;
  for (int attempt = 0; attempt < 20; ++attempt) {
    std::uint64_t r = 0;
    rt.run([&] {
      counter_fib(&r, 24);
      xk::sync();
    });
    EXPECT_EQ(r, 46368u);
    s = rt.stats_snapshot();
    if (s.starvation_escalations > 0 && s.steals_remote > 0) break;
  }
  EXPECT_GT(s.starvation_escalations, 0u);
  EXPECT_GT(s.steals_remote, 0u);
  EXPECT_EQ(s.steals_ok, s.steals_local + s.steals_remote);
}

TEST(TopoSteal, FlatMachineCountsEverythingLocal) {
  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.topo = "1x4";  // one domain: the flat draw, no remote tier
  xk::Runtime rt(cfg);
  ASSERT_EQ(rt.ndomains(), 1u);
  std::uint64_t r = 0;
  rt.run([&] {
    counter_fib(&r, 20);
    xk::sync();
  });
  const xk::WorkerStats s = rt.stats_snapshot();
  EXPECT_EQ(s.steals_remote, 0u);
  EXPECT_EQ(s.steals_ok, s.steals_local);
}

// ---------------------------------------------------------------------------
// Adaptive steal width (XK_STEAL_ADAPTIVE): the pure feedback/cap functions
// pinned exactly, plus runtime-level invariants.
// ---------------------------------------------------------------------------

TEST(AdaptiveSteal, NextStealhalfFlipConditions) {
  // No successful reply since the last evaluation: keep the current width
  // (a failed round says nothing about how a reply fans out).
  EXPECT_FALSE(xk::next_stealhalf(/*current=*/false, /*received=*/0,
                                  /*executed=*/0));
  EXPECT_TRUE(xk::next_stealhalf(true, 0, 7));
  // Executing no more than the reply means the thief is re-begging
  // immediately: flip (or stay) to steal-half.
  EXPECT_TRUE(xk::next_stealhalf(false, 1, 0));
  EXPECT_TRUE(xk::next_stealhalf(false, 4, 4));
  EXPECT_TRUE(xk::next_stealhalf(true, 8, 8));
  // Executing more than the reply means it seeded enough local work: flip
  // (or stay) back to steal-one.
  EXPECT_FALSE(xk::next_stealhalf(true, 1, 2));
  EXPECT_FALSE(xk::next_stealhalf(true, 4, 100));
  EXPECT_FALSE(xk::next_stealhalf(false, 4, 5));
}

TEST(AdaptiveSteal, TakeCapVsShardDepthPins) {
  // Empty (or stale-negative) depth gauge: one probing pop iff a thief is
  // actually waiting — a lagging gauge must not fail a thief outright.
  EXPECT_EQ(xk::adaptive_take_cap(/*depth=*/0, /*npending=*/0), 0u);
  EXPECT_EQ(xk::adaptive_take_cap(0, 4), 1u);
  EXPECT_EQ(xk::adaptive_take_cap(-3, 4), 1u);
  // One-each floor, then the thieves take half the remainder (the victim
  // keeps the other half): steal-half semantics over the live depth.
  EXPECT_EQ(xk::adaptive_take_cap(8, 2), 5u);   // 2 + (8-2)/2
  EXPECT_EQ(xk::adaptive_take_cap(9, 1), 5u);   // 1 + (9-1)/2
  EXPECT_EQ(xk::adaptive_take_cap(1, 1), 1u);   // nothing beyond the floor
  // Depth at or below the pending count: exactly one each, never zero for
  // a waiting thief, never more than the list holds.
  EXPECT_EQ(xk::adaptive_take_cap(8, 8), 8u);
  EXPECT_EQ(xk::adaptive_take_cap(2, 8), 2u);
}

TEST(AdaptiveSteal, ModesProduceIdenticalResults) {
  // The adaptive protocol and the occupancy hint change reply sizes and
  // victim draws, never which tasks run or in what dependence order.
  for (const bool adaptive : {false, true}) {
    for (const bool occ : {false, true}) {
      xk::Config cfg;
      cfg.nworkers = 4;
      cfg.topo = "2x2";
      cfg.steal_adaptive = adaptive;
      cfg.occupancy_hint = occ;
      xk::Runtime rt(cfg);
      std::uint64_t r = 0;
      std::int64_t chain = 0;
      rt.run([&] {
        counter_fib(&r, 22);
        for (int i = 0; i < 64; ++i) {
          xk::spawn([](std::int64_t* c) { *c = *c * 3 + 1; }, xk::rw(&chain));
        }
        xk::sync();
      });
      EXPECT_EQ(r, 17711u) << "adaptive=" << adaptive << " occ=" << occ;
      std::int64_t expect = 0;
      for (int i = 0; i < 64; ++i) expect = expect * 3 + 1;
      EXPECT_EQ(chain, expect) << "adaptive=" << adaptive << " occ=" << occ;
    }
  }
}

TEST(Occupancy, MasterBitTracksRootFrameAndQuiesceArming) {
  xk::Config cfg;
  cfg.nworkers = 2;
  cfg.topo = "1x2";
  xk::Runtime rt(cfg);
  const xk::StarvationBoard& b = rt.starvation();
  EXPECT_FALSE(b.occupied(0));
  EXPECT_EQ(b.root_occupied(), 0);
  EXPECT_FALSE(b.quiesce_armed());
  rt.run([&] {
    // The master's root frame publishes its bit for the whole section, so
    // the machine-wide count stays >= 1 and the armed quiescence event
    // cannot fire early.
    EXPECT_TRUE(b.occupied(0));
    EXPECT_GE(b.domain_occupied(0), 1);
    EXPECT_GE(b.root_occupied(), 1);
    EXPECT_TRUE(b.quiesce_armed());
  });
  // Section closed: the root-frame pop cleared the bit, folded the counts
  // to zero and consumed the arming (the quiescence fire).
  EXPECT_FALSE(b.occupied(0));
  EXPECT_EQ(b.root_occupied(), 0);
  EXPECT_FALSE(b.quiesce_armed());
}

TEST(Occupancy, SectionsReuseCleanlyAcrossRuns) {
  // Arm/fire must stay exactly-once *per section* across many sections.
  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.topo = "2x2";
  xk::Runtime rt(cfg);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    rt.run([&] {
      for (int i = 0; i < 20; ++i) xk::spawn([&hits] { hits.fetch_add(1); });
      xk::sync();
    });
    ASSERT_EQ(hits.load(), 20) << round;
    ASSERT_EQ(rt.starvation().root_occupied(), 0) << round;
    ASSERT_FALSE(rt.starvation().quiesce_armed()) << round;
  }
}

TEST(AdaptiveSteal, StolenJoinWakesWaiterExactlyOnce) {
  // Quiescence regression: a task stolen to a remote-domain thief must
  // wake its suspended joiner through the targeted join parker — exactly
  // one wake per stolen join, no completion broadcast. The choreography
  // forces the shape: the master runs A (which spins until B was picked
  // up elsewhere), so B can only run via a steal; B then lingers long
  // enough for the master to register as its join waiter and park.
  xk::Config cfg;
  cfg.nworkers = 8;
  cfg.topo = "1x2+1x6";
  cfg.place = "compact";  // master in the small domain; thieves mostly remote
  xk::Runtime rt(cfg);
  for (int attempt = 0; attempt < 40; ++attempt) {
    rt.reset_stats();
    std::atomic<bool> b_started{false}, a_done{false};
    rt.run([&] {
      xk::spawn([&] {
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
        while (!b_started.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < until) {
          std::this_thread::yield();
        }
        a_done.store(true, std::memory_order_release);
      });
      xk::spawn([&] {
        b_started.store(true, std::memory_order_release);
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
        while (!a_done.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < until) {
          std::this_thread::yield();
        }
        // Linger so the master reaches its registered join wait before the
        // final state store — widening the window where the wake matters.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
      xk::sync();
    });
    const xk::WorkerStats s = rt.stats_snapshot();
    // Only A and B exist, so at most two stolen joins; a double-wake of a
    // single registration would break these bounds.
    ASSERT_LE(s.join_wakes, 2u);
    if (s.steal_tasks == 1) {
      ASSERT_LE(s.join_wakes, 1u);
    }
    if (s.join_wakes >= 1) {
      SUCCEED();
      return;
    }
  }
  // On a 1-core box the join may always resolve before the waiter parks
  // its registration; completing every section correctly is then all this
  // machine can demonstrate (the TSan topo legs run the real race).
  SUCCEED();
}

}  // namespace
