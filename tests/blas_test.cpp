// Kernel tests: optimized BLAS-like kernels against naive references over a
// parameterized size sweep, plus algebraic identities.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/blas.hpp"
#include "support/rng.hpp"

namespace {

using namespace xk::linalg;

std::vector<double> random_matrix(int rows, int cols, std::uint64_t seed) {
  xk::Rng rng(seed);
  std::vector<double> m(static_cast<std::size_t>(rows) * cols);
  for (double& v : m) v = rng.next_double(-1.0, 1.0);
  return m;
}

std::vector<double> random_spd(int n, std::uint64_t seed) {
  auto m = random_matrix(n, n, seed);
  // Symmetrize + diagonal dominance.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) {
      m[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n] =
          m[static_cast<std::size_t>(j) + static_cast<std::size_t>(i) * n];
    }
    m[static_cast<std::size_t>(j) * (n + 1)] += n;
  }
  return m;
}

void expect_near_all(const std::vector<double>& a, const std::vector<double>& b,
                     double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

class KernelSizes : public ::testing::TestWithParam<int> {};

TEST_P(KernelSizes, PotrfMatchesReference) {
  const int n = GetParam();
  auto a = random_spd(n, 11 + n);
  auto b = a;
  EXPECT_EQ(potrf_lower(n, a.data(), n), 0);
  EXPECT_EQ(ref::potrf_lower(n, b.data(), n), 0);
  // Compare lower triangles only (upper is untouched input).
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      ASSERT_NEAR(a[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n],
                  b[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n],
                  1e-9);
    }
  }
}

TEST_P(KernelSizes, TrsmMatchesReference) {
  const int n = GetParam();
  auto lfull = random_spd(n, 77 + n);
  EXPECT_EQ(potrf_lower(n, lfull.data(), n), 0);
  auto b1 = random_matrix(n, n, 123);
  auto b2 = b1;
  trsm_right_lower_trans(n, n, lfull.data(), n, b1.data(), n);
  ref::trsm_right_lower_trans(n, n, lfull.data(), n, b2.data(), n);
  expect_near_all(b1, b2, 1e-9);
}

TEST_P(KernelSizes, SyrkMatchesReference) {
  const int n = GetParam();
  auto a = random_matrix(n, n, 5 + n);
  auto c1 = random_spd(n, 6 + n);
  auto c2 = c1;
  syrk_lower(n, n, a.data(), n, c1.data(), n);
  ref::syrk_lower(n, n, a.data(), n, c2.data(), n);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      ASSERT_NEAR(c1[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n],
                  c2[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n],
                  1e-9);
    }
  }
}

TEST_P(KernelSizes, GemmMatchesReference) {
  const int n = GetParam();
  auto a = random_matrix(n, n, 31 + n);
  auto b = random_matrix(n, n, 32 + n);
  auto c1 = random_matrix(n, n, 33 + n);
  auto c2 = c1;
  gemm_nt(n, n, n, a.data(), n, b.data(), n, c1.data(), n);
  ref::gemm_nt(n, n, n, a.data(), n, b.data(), n, c2.data(), n);
  expect_near_all(c1, c2, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31, 64));

TEST(Kernels, PotrfDetectsNonSpd) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // indefinite 2x2
  EXPECT_NE(potrf_lower(2, a.data(), 2), 0);
}

TEST(Kernels, PotrfReconstructs) {
  const int n = 24;
  auto a0 = random_spd(n, 99);
  auto a = a0;
  ASSERT_EQ(potrf_lower(n, a.data(), n), 0);
  // L L^T == A0 (lower triangle check).
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double s = 0.0;
      for (int k = 0; k <= j; ++k) {
        s += a[static_cast<std::size_t>(i) + static_cast<std::size_t>(k) * n] *
             a[static_cast<std::size_t>(j) + static_cast<std::size_t>(k) * n];
      }
      ASSERT_NEAR(
          s, a0[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n],
          1e-8);
    }
  }
}

TEST(Kernels, TrsvRoundTrip) {
  const int n = 16;
  auto l = random_spd(n, 13);
  ASSERT_EQ(potrf_lower(n, l.data(), n), 0);
  xk::Rng rng(4);
  std::vector<double> x0(n), b(n, 0.0);
  for (double& v : x0) v = rng.next_double(-1.0, 1.0);
  // b = L L^T x0, then solve both sweeps and compare.
  std::vector<double> t(n, 0.0);
  for (int j = 0; j < n; ++j) {  // t = L^T x0
    for (int i = j; i < n; ++i) {
      t[j] += l[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n] * x0[static_cast<std::size_t>(i)];
    }
  }
  for (int i = 0; i < n; ++i) {  // b = L t
    for (int j = 0; j <= i; ++j) {
      b[static_cast<std::size_t>(i)] += l[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n] * t[static_cast<std::size_t>(j)];
    }
  }
  trsv_lower_notrans(n, l.data(), n, b.data());
  trsv_lower_trans(n, l.data(), n, b.data());
  for (int i = 0; i < n; ++i) ASSERT_NEAR(b[static_cast<std::size_t>(i)], x0[static_cast<std::size_t>(i)], 1e-8);
}

TEST(Kernels, GemvMinusBothShapes) {
  const int m = 8, n = 5;
  auto a = random_matrix(m, n, 21);
  std::vector<double> x(n, 1.0), y(m, 0.0);
  gemv_minus(m, n, a.data(), m, x.data(), y.data());
  for (int i = 0; i < m; ++i) {
    double s = 0.0;
    for (int j = 0; j < n; ++j) s += a[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * m];
    ASSERT_NEAR(y[static_cast<std::size_t>(i)], -s, 1e-12);
  }
  std::vector<double> xm(m, 1.0), yn(n, 0.0);
  gemv_minus_trans(m, n, a.data(), m, xm.data(), yn.data());
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    for (int i = 0; i < m; ++i) s += a[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * m];
    ASSERT_NEAR(yn[static_cast<std::size_t>(j)], -s, 1e-12);
  }
}

}  // namespace
