// Skyline storage + blocked factorization tests: profile algebra, density
// calibration, all factorization variants vs dense reference, solves.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/gomp_pool.hpp"
#include "core/xkaapi.hpp"
#include "linalg/blas.hpp"
#include "skyline/factor.hpp"
#include "skyline/skyline.hpp"
#include "support/rng.hpp"

namespace {

using xk::skyline::BlockSkylineMatrix;
using xk::skyline::make_fem_like;

TEST(Skyline, StorageAndProfile) {
  // 4 block rows, bandwidths 1,2,2,4 (bjmin = 0,0,1,0).
  BlockSkylineMatrix a(16, 4, {0, 0, 1, 0});
  EXPECT_EQ(a.nbk(), 4);
  EXPECT_FALSE(a.is_empty(0, 0));
  EXPECT_FALSE(a.is_empty(1, 0));
  EXPECT_TRUE(a.is_empty(2, 0));
  EXPECT_FALSE(a.is_empty(2, 1));
  EXPECT_TRUE(a.is_empty(0, 1));  // upper triangle
  EXPECT_EQ(a.stored_blocks(), 1u + 2u + 2u + 4u);
}

TEST(Skyline, RejectsBadProfile) {
  EXPECT_THROW(BlockSkylineMatrix(16, 4, {0, 2}), std::invalid_argument);
  EXPECT_THROW(BlockSkylineMatrix(64, 4, {0, 0}), std::invalid_argument);
}

TEST(Skyline, GetOutsideProfileIsZero) {
  BlockSkylineMatrix a(16, 4, {0, 1, 2, 3});  // diagonal blocks only
  a.fill_spd(5);
  EXPECT_EQ(a.get(12, 0), 0.0);
  EXPECT_NE(a.get(1, 1), 0.0);
  EXPECT_EQ(a.get(0, 12), 0.0);  // symmetric query
}

TEST(Skyline, DensityCalibration) {
  const auto a = make_fem_like(4000, 40, 0.036, 99);
  // The random-walk profile should land near the target (loose band).
  EXPECT_GT(a.density(), 0.018);
  EXPECT_LT(a.density(), 0.072);
}

TEST(Skyline, MatvecMatchesDense) {
  auto a = make_fem_like(200, 8, 0.2, 7);
  a.fill_spd(3);
  const auto dense = a.to_dense();
  const int n = a.n();
  xk::Rng rng(11);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> y(static_cast<std::size_t>(n));
  a.matvec(x.data(), y.data());
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int j = 0; j < n; ++j) {
      s += dense[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * n] *
           x[static_cast<std::size_t>(j)];
    }
    ASSERT_NEAR(y[static_cast<std::size_t>(i)], s, 1e-9);
  }
}

struct FactorParams {
  int n;
  int bs;
  double density;
  unsigned workers;
};

class SkylineFactor : public ::testing::TestWithParam<FactorParams> {};

// Factor + solve + residual ||A x - b|| / ||b||.
double factor_solve_residual(BlockSkylineMatrix& a, int variant,
                             unsigned workers) {
  auto a0 = a;  // keep the unfactored matrix for the residual matvec
  int info = -1;
  switch (variant) {
    case 0:
      info = xk::skyline::factor_sequential(a);
      break;
    case 1: {
      xk::Config cfg;
      cfg.nworkers = workers;
      cfg.bind_threads = false;
      xk::Runtime rt(cfg);
      info = xk::skyline::factor_xkaapi(a, rt);
      break;
    }
    case 2: {
      xk::baseline::GompLikePool pool(workers);
      info = xk::skyline::factor_gomp(a, pool);
      break;
    }
    default:
      break;
  }
  EXPECT_EQ(info, 0);
  const int n = a.n();
  xk::Rng rng(17);
  std::vector<double> xref(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  for (double& v : xref) v = rng.next_double(-1.0, 1.0);
  a0.matvec(xref.data(), b.data());
  std::vector<double> x(static_cast<std::size_t>(n));
  xk::skyline::solve_factored(a, b.data(), x.data());
  double num = 0.0, den = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = x[static_cast<std::size_t>(i)] - xref[static_cast<std::size_t>(i)];
    num += d * d;
    den += xref[static_cast<std::size_t>(i)] * xref[static_cast<std::size_t>(i)];
  }
  return std::sqrt(num / den);
}

TEST_P(SkylineFactor, SequentialFactorSolve) {
  const auto p = GetParam();
  auto a = make_fem_like(p.n, p.bs, p.density, 31);
  a.fill_spd(8);
  EXPECT_LT(factor_solve_residual(a, 0, p.workers), 1e-8);
}

TEST_P(SkylineFactor, XkaapiFactorSolve) {
  const auto p = GetParam();
  auto a = make_fem_like(p.n, p.bs, p.density, 31);
  a.fill_spd(8);
  EXPECT_LT(factor_solve_residual(a, 1, p.workers), 1e-8);
}

TEST_P(SkylineFactor, GompFactorSolve) {
  const auto p = GetParam();
  auto a = make_fem_like(p.n, p.bs, p.density, 31);
  a.fill_spd(8);
  EXPECT_LT(factor_solve_residual(a, 2, p.workers), 1e-8);
}

TEST_P(SkylineFactor, VariantsBitwiseAgree) {
  const auto p = GetParam();
  auto a_seq = make_fem_like(p.n, p.bs, p.density, 31);
  a_seq.fill_spd(8);
  auto a_xk = a_seq;
  auto a_gomp = a_seq;
  ASSERT_EQ(xk::skyline::factor_sequential(a_seq), 0);
  {
    xk::Config cfg;
    cfg.nworkers = p.workers;
    cfg.bind_threads = false;
    xk::Runtime rt(cfg);
    ASSERT_EQ(xk::skyline::factor_xkaapi(a_xk, rt), 0);
  }
  {
    xk::baseline::GompLikePool pool(p.workers);
    ASSERT_EQ(xk::skyline::factor_gomp(a_gomp, pool), 0);
  }
  for (int i = 0; i < p.n; ++i) {
    for (int j = 0; j <= i; ++j) {
      ASSERT_EQ(a_seq.get(i, j), a_xk.get(i, j)) << i << "," << j;
      ASSERT_EQ(a_seq.get(i, j), a_gomp.get(i, j)) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineFactor,
    ::testing::Values(FactorParams{64, 8, 0.5, 2},
                      FactorParams{128, 16, 0.3, 4},
                      FactorParams{200, 16, 0.2, 4},
                      FactorParams{300, 24, 0.1, 3},
                      FactorParams{333, 32, 0.15, 8}));

TEST(SkylineFactor, FlopsPositiveAndMonotone) {
  auto sparse = make_fem_like(400, 16, 0.05, 1);
  auto denser = make_fem_like(400, 16, 0.4, 1);
  EXPECT_GT(xk::skyline::factor_flops(sparse), 0.0);
  EXPECT_GT(xk::skyline::factor_flops(denser),
            xk::skyline::factor_flops(sparse));
}

TEST(SkylineFactor, DiagonalOnlyProfile) {
  // Block-diagonal matrix: factorization reduces to independent potrfs.
  BlockSkylineMatrix a(32, 8, {0, 1, 2, 3});
  a.fill_spd(2);
  auto a0 = a;
  ASSERT_EQ(xk::skyline::factor_sequential(a), 0);
  xk::Rng rng(5);
  std::vector<double> xref(32), b(32), x(32);
  for (double& v : xref) v = rng.next_double(-1.0, 1.0);
  a0.matvec(xref.data(), b.data());
  xk::skyline::solve_factored(a, b.data(), x.data());
  for (int i = 0; i < 32; ++i) ASSERT_NEAR(x[static_cast<std::size_t>(i)], xref[static_cast<std::size_t>(i)], 1e-9);
}

}  // namespace
