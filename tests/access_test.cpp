// Unit tests for the access-mode / memory-region algebra (§II-B vocabulary).
#include <gtest/gtest.h>

#include <array>

#include "core/access.hpp"

namespace {

using xk::Access;
using xk::AccessMode;
using xk::MemRegion;

char buffer[4096];

MemRegion contig(std::size_t off, std::size_t bytes) {
  return MemRegion::contiguous(buffer + off, bytes);
}

TEST(MemRegion, ContiguousBounds) {
  const MemRegion r = contig(16, 32);
  EXPECT_EQ(r.hi() - r.lo(), 32u);
  EXPECT_EQ(r.total_bytes(), 32u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(MemRegion::contiguous(buffer, 0).empty());
}

TEST(MemRegion, ContiguousOverlap) {
  EXPECT_TRUE(xk::regions_overlap(contig(0, 16), contig(8, 16)));
  EXPECT_TRUE(xk::regions_overlap(contig(8, 16), contig(0, 16)));
  EXPECT_FALSE(xk::regions_overlap(contig(0, 16), contig(16, 16)));  // adjacent
  EXPECT_FALSE(xk::regions_overlap(contig(0, 16), contig(100, 16)));
  EXPECT_TRUE(xk::regions_overlap(contig(0, 100), contig(50, 1)));  // nested
}

TEST(MemRegion, StridedBounds) {
  // 4 runs of 8 bytes, 32 bytes apart: covers [0,8) [32,40) [64,72) [96,104).
  const MemRegion s = MemRegion::strided(buffer, 8, 4, 32);
  EXPECT_EQ(s.lo(), reinterpret_cast<std::uintptr_t>(buffer));
  EXPECT_EQ(s.hi() - s.lo(), 3u * 32 + 8);
  EXPECT_EQ(s.total_bytes(), 32u);
}

TEST(MemRegion, StridedVsContiguous) {
  const MemRegion s = MemRegion::strided(buffer, 8, 4, 32);
  EXPECT_TRUE(xk::regions_overlap(s, contig(0, 4)));     // inside run 0
  EXPECT_FALSE(xk::regions_overlap(s, contig(8, 24)));   // gap after run 0
  EXPECT_TRUE(xk::regions_overlap(s, contig(32, 8)));    // run 1 exactly
  EXPECT_TRUE(xk::regions_overlap(s, contig(30, 4)));    // straddles into run 1
  EXPECT_FALSE(xk::regions_overlap(s, contig(104, 50))); // past the end
  EXPECT_TRUE(xk::regions_overlap(s, contig(0, 4096)));  // interval covers all
}

TEST(MemRegion, StridedVsStrided) {
  // Two interleaved column-like patterns that never touch.
  const MemRegion a = MemRegion::strided(buffer, 8, 8, 32);       // offset 0
  const MemRegion b = MemRegion::strided(buffer + 16, 8, 8, 32);  // offset 16
  EXPECT_FALSE(xk::regions_overlap(a, b));
  // Shift b onto a's runs.
  const MemRegion c = MemRegion::strided(buffer + 4, 8, 8, 32);
  EXPECT_TRUE(xk::regions_overlap(a, c));
}

TEST(MemRegion, SelfOverlap) {
  const MemRegion s = MemRegion::strided(buffer, 8, 4, 32);
  EXPECT_TRUE(xk::regions_overlap(s, s));
}

Access make(AccessMode m, std::size_t off, std::size_t bytes) {
  Access a;
  a.mode = m;
  a.region = contig(off, bytes);
  return a;
}

TEST(AccessConflict, ReadReadIndependent) {
  EXPECT_FALSE(xk::accesses_conflict(make(AccessMode::kRead, 0, 8),
                                     make(AccessMode::kRead, 0, 8)));
}

TEST(AccessConflict, RawWarWaw) {
  const Access w = make(AccessMode::kWrite, 0, 8);
  const Access r = make(AccessMode::kRead, 4, 8);
  const Access x = make(AccessMode::kReadWrite, 0, 8);
  EXPECT_TRUE(xk::accesses_conflict(w, r));   // RAW
  EXPECT_TRUE(xk::accesses_conflict(r, w));   // WAR
  EXPECT_TRUE(xk::accesses_conflict(w, w));   // WAW
  EXPECT_TRUE(xk::accesses_conflict(x, r));
  EXPECT_TRUE(xk::accesses_conflict(r, x));
}

TEST(AccessConflict, DisjointRegionsNeverConflict) {
  EXPECT_FALSE(xk::accesses_conflict(make(AccessMode::kWrite, 0, 8),
                                     make(AccessMode::kWrite, 64, 8)));
}

TEST(AccessConflict, CumulWritesCommute) {
  const Access a = make(AccessMode::kCumulWrite, 0, 8);
  const Access b = make(AccessMode::kCumulWrite, 0, 8);
  EXPECT_FALSE(xk::accesses_conflict(a, b));
  // ...but CW still orders against plain reads and writes.
  EXPECT_TRUE(xk::accesses_conflict(a, make(AccessMode::kRead, 0, 8)));
  EXPECT_TRUE(xk::accesses_conflict(make(AccessMode::kWrite, 0, 8), a));
}

TEST(AccessConflict, ScratchNeverConflicts) {
  const Access s = make(AccessMode::kScratch, 0, 8);
  EXPECT_FALSE(xk::accesses_conflict(s, make(AccessMode::kWrite, 0, 8)));
  EXPECT_FALSE(xk::accesses_conflict(make(AccessMode::kWrite, 0, 8), s));
}

TEST(AccessConflict, FalseDependencyClassification) {
  const Access w1 = make(AccessMode::kWrite, 0, 8);
  const Access w2 = make(AccessMode::kWrite, 0, 8);
  const Access r = make(AccessMode::kRead, 0, 8);
  const Access rw = make(AccessMode::kReadWrite, 0, 8);
  EXPECT_TRUE(xk::conflict_is_false_dependency(w1, w2));   // WAW
  EXPECT_TRUE(xk::conflict_is_false_dependency(r, w1));    // WAR
  EXPECT_FALSE(xk::conflict_is_false_dependency(w1, r));   // RAW is true
  EXPECT_FALSE(xk::conflict_is_false_dependency(w1, rw));  // RW reads
  // Disjoint: no conflict at all => not a false dependency either.
  EXPECT_FALSE(xk::conflict_is_false_dependency(
      make(AccessMode::kWrite, 0, 8), make(AccessMode::kWrite, 64, 8)));
}

TEST(AccessConflict, ModeHelpers) {
  EXPECT_TRUE(xk::mode_writes(AccessMode::kWrite));
  EXPECT_TRUE(xk::mode_writes(AccessMode::kReadWrite));
  EXPECT_TRUE(xk::mode_writes(AccessMode::kCumulWrite));
  EXPECT_FALSE(xk::mode_writes(AccessMode::kRead));
  EXPECT_TRUE(xk::mode_reads(AccessMode::kRead));
  EXPECT_TRUE(xk::mode_reads(AccessMode::kReadWrite));
  EXPECT_FALSE(xk::mode_reads(AccessMode::kWrite));
}

}  // namespace
