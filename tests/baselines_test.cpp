// Baseline runtimes: central queue dataflow, GOMP-like pool (+throttle),
// classic work stealing, loop schedulers.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <vector>

#include "baselines/central_queue.hpp"
#include "baselines/gomp_pool.hpp"
#include "baselines/loop_schedulers.hpp"
#include "baselines/ws_classic.hpp"

namespace {

using namespace xk::baseline;

// ---------------------------------------------------------------------------
// CentralQueueRuntime
// ---------------------------------------------------------------------------

TEST(CentralQueue, IndependentTasksAllRun) {
  CentralQueueRuntime rt(4);
  std::atomic<int> hits{0};
  for (int i = 0; i < 500; ++i) rt.insert([&] { hits.fetch_add(1); });
  rt.barrier();
  EXPECT_EQ(hits.load(), 500);
  EXPECT_EQ(rt.executed(), 500u);
}

TEST(CentralQueue, RawChainSerializes) {
  CentralQueueRuntime rt(4);
  int value = 0;
  const xk::MemRegion region = xk::MemRegion::contiguous(&value, sizeof(value));
  for (int i = 0; i < 200; ++i) {
    rt.insert([&value] { ++value; },
              {CqAccess{region, xk::AccessMode::kReadWrite}});
  }
  rt.barrier();
  EXPECT_EQ(value, 200);
}

TEST(CentralQueue, ProducerConsumer) {
  CentralQueueRuntime rt(4);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> a(128, 0.0);
    double sum = 0.0;
    rt.insert(
        [&a] {
          for (std::size_t i = 0; i < a.size(); ++i) a[i] = 1.0;
        },
        {CqAccess{xk::MemRegion::contiguous(a.data(), a.size() * 8),
                  xk::AccessMode::kWrite}});
    rt.insert(
        [&a, &sum] { sum = std::accumulate(a.begin(), a.end(), 0.0); },
        {CqAccess{xk::MemRegion::contiguous(a.data(), a.size() * 8),
                  xk::AccessMode::kRead},
         CqAccess{xk::MemRegion::contiguous(&sum, 8), xk::AccessMode::kWrite}});
    rt.barrier();
    EXPECT_DOUBLE_EQ(sum, 128.0);
  }
}

TEST(CentralQueue, BarrierReusable) {
  CentralQueueRuntime rt(2);
  std::atomic<int> phase_sum{0};
  for (int phase = 0; phase < 5; ++phase) {
    for (int i = 0; i < 50; ++i) rt.insert([&] { phase_sum.fetch_add(1); });
    rt.barrier();
    EXPECT_EQ(phase_sum.load(), (phase + 1) * 50);
  }
}

// ---------------------------------------------------------------------------
// GompLikePool
// ---------------------------------------------------------------------------

std::uint64_t fib_seq(int n) {
  return n < 2 ? static_cast<std::uint64_t>(n)
               : fib_seq(n - 1) + fib_seq(n - 2);
}

void gomp_fib(GompLikePool& pool, std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  pool.spawn([&pool, &r1, n] { gomp_fib(pool, &r1, n - 1); });
  gomp_fib(pool, &r2, n - 2);
  pool.taskwait();
  *r = r1 + r2;
}

TEST(GompPool, FibCorrect) {
  GompLikePool pool(4);
  std::uint64_t r = 0;
  pool.parallel([&] { gomp_fib(pool, &r, 16); });
  EXPECT_EQ(r, fib_seq(16));
}

TEST(GompPool, ThrottleLimitsQueueAndStaysCorrect) {
  GompLikePool::Options opt;
  opt.throttle = true;
  opt.throttle_factor = 4;
  GompLikePool pool(2, opt);
  std::uint64_t r = 0;
  pool.parallel([&] { gomp_fib(pool, &r, 18); });
  EXPECT_EQ(r, fib_seq(18));
}

TEST(GompPool, TaskwaitWaitsDirectChildren) {
  GompLikePool pool(4);
  pool.parallel([&] {
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i) {
      pool.spawn([&done] {
        volatile int x = 0;
        for (int j = 0; j < 10000; ++j) x = x + j;
        done.fetch_add(1);
      });
    }
    pool.taskwait();
    EXPECT_EQ(done.load(), 20);
  });
}

TEST(GompPool, ImplicitBarrierAtRegionEnd) {
  GompLikePool pool(4);
  std::atomic<int> done{0};
  pool.parallel([&] {
    for (int i = 0; i < 100; ++i) pool.spawn([&done] { done.fetch_add(1); });
    // no taskwait: the region's implicit barrier must drain everything
  });
  EXPECT_EQ(done.load(), 100);
}

// ---------------------------------------------------------------------------
// ClassicWS
// ---------------------------------------------------------------------------

void ws_fib(ClassicWS& ws, std::uint64_t* r, int n) {
  if (n < 2) {
    *r = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  ws.spawn([&ws, &r1, n] { ws_fib(ws, &r1, n - 1); });
  ws_fib(ws, &r2, n - 2);
  ws.taskwait();
  *r = r1 + r2;
}

TEST(ClassicWsTest, FibCorrectPooled) {
  ClassicWS ws(4);
  std::uint64_t r = 0;
  ws.parallel([&] { ws_fib(ws, &r, 18); });
  EXPECT_EQ(r, fib_seq(18));
}

TEST(ClassicWsTest, FibCorrectHeap) {
  WsOptions opt;
  opt.pooled_tasks = false;
  ClassicWS ws(4, opt);
  std::uint64_t r = 0;
  ws.parallel([&] { ws_fib(ws, &r, 16); });
  EXPECT_EQ(r, fib_seq(16));
}

TEST(ClassicWsTest, ManyRegions) {
  ClassicWS ws(2);
  for (int rep = 0; rep < 10; ++rep) {
    std::atomic<int> hits{0};
    ws.parallel([&] {
      for (int i = 0; i < 100; ++i) ws.spawn([&hits] { hits.fetch_add(1); });
    });
    EXPECT_EQ(hits.load(), 100);
  }
}

// ---------------------------------------------------------------------------
// LoopTeam
// ---------------------------------------------------------------------------

class LoopSchedulerTest
    : public ::testing::TestWithParam<std::tuple<LoopSchedule, unsigned>> {};

TEST_P(LoopSchedulerTest, EveryIndexExactlyOnce) {
  const auto [sched, threads] = GetParam();
  LoopTeam team(threads);
  constexpr std::int64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  team.run(0, kN, sched, 64,
           [&](std::int64_t lo, std::int64_t hi, unsigned) {
             for (std::int64_t i = lo; i < hi; ++i) {
               hits[static_cast<std::size_t>(i)].fetch_add(
                   1, std::memory_order_relaxed);
             }
           });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoopSchedulerTest,
    ::testing::Combine(::testing::Values(LoopSchedule::kStatic,
                                         LoopSchedule::kDynamic,
                                         LoopSchedule::kGuided),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(LoopTeamTest, MemberIdsInRange) {
  LoopTeam team(4);
  std::atomic<bool> bad{false};
  team.run(0, 10000, LoopSchedule::kDynamic, 16,
           [&](std::int64_t, std::int64_t, unsigned member) {
             if (member >= 4) bad.store(true);
           });
  EXPECT_FALSE(bad.load());
}

TEST(LoopTeamTest, ConsecutiveLoopsAndEmptyRange) {
  LoopTeam team(3);
  std::atomic<std::int64_t> total{0};
  for (int pass = 0; pass < 8; ++pass) {
    team.run(0, 1000, LoopSchedule::kGuided, 8,
             [&](std::int64_t lo, std::int64_t hi, unsigned) {
               total.fetch_add(hi - lo);
             });
  }
  team.run(5, 5, LoopSchedule::kStatic, 1,
           [&](std::int64_t, std::int64_t, unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8000);
}

TEST(LoopTeamTest, StaticBlocksAreContiguousAndBalanced) {
  LoopTeam team(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(4);
  team.run(0, 103, LoopSchedule::kStatic, 0,
           [&](std::int64_t lo, std::int64_t hi, unsigned member) {
             ranges[member] = {lo, hi};
           });
  std::int64_t covered = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_LE(hi - lo, 26);
    EXPECT_GE(hi - lo, 25);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 103);
}

}  // namespace
