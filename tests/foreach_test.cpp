// Parallel loop (adaptive task, §II-E) tests: exactly-once coverage under
// random parameters, reductions, nesting, exceptions, splitter stats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/xkaapi.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

TEST(Foreach, EmptyAndTinyRanges) {
  xk::Runtime rt(cfg(4));
  rt.run([&] {
    int hits = 0;
    xk::parallel_for(0, 0, [&](std::int64_t, std::int64_t) { ++hits; });
    EXPECT_EQ(hits, 0);
    std::atomic<int> one{0};
    xk::parallel_for(5, 6, [&](std::int64_t lo, std::int64_t hi) {
      one += static_cast<int>(hi - lo);
    });
    EXPECT_EQ(one.load(), 1);
  });
}

TEST(Foreach, NegativeRangeIsNoop) {
  xk::Runtime rt(cfg(2));
  rt.run([&] {
    int hits = 0;
    xk::parallel_for(10, 3, [&](std::int64_t, std::int64_t) { ++hits; });
    EXPECT_EQ(hits, 0);
  });
}

struct CoverParams {
  unsigned workers;
  std::int64_t n;
  std::int64_t grain;
};

class ForeachCoverage : public ::testing::TestWithParam<CoverParams> {};

TEST_P(ForeachCoverage, EveryIndexExactlyOnce) {
  const auto p = GetParam();
  xk::Runtime rt(cfg(p.workers));
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(p.n));
  for (auto& h : hits) h.store(0);
  rt.run([&] {
    xk::ForeachOptions opt;
    opt.grain = p.grain;
    xk::parallel_for(
        0, p.n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                        std::memory_order_relaxed);
          }
        },
        opt);
  });
  for (std::int64_t i = 0; i < p.n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForeachCoverage,
    ::testing::Values(CoverParams{1, 1000, 0}, CoverParams{2, 1000, 1},
                      CoverParams{2, 100000, 0}, CoverParams{4, 99991, 7},
                      CoverParams{4, 1 << 17, 64}, CoverParams{8, 12345, 0},
                      CoverParams{3, 17, 1}, CoverParams{16, 50000, 16}));

TEST(Foreach, NonZeroBasedRange) {
  xk::Runtime rt(cfg(4));
  std::atomic<std::int64_t> sum{0};
  rt.run([&] {
    xk::parallel_for(1000, 2000, [&](std::int64_t lo, std::int64_t hi) {
      std::int64_t local = 0;
      for (std::int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
  });
  EXPECT_EQ(sum.load(), (1000 + 1999) * 1000 / 2);
}

TEST(Foreach, WorkerIdWithinBounds) {
  xk::Runtime rt(cfg(4));
  std::atomic<bool> bad{false};
  rt.run([&] {
    xk::parallel_for(0, 50000,
                     [&](std::int64_t, std::int64_t, unsigned wid) {
                       if (wid >= 4) bad.store(true);
                     });
  });
  EXPECT_FALSE(bad.load());
}

TEST(Foreach, SerialFallbackOutsideRuntime) {
  long sum = 0;
  xk::parallel_for(0, 100, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

TEST(Foreach, ParallelForIndex) {
  xk::Runtime rt(cfg(4));
  std::vector<int> v(10000, 0);
  rt.run([&] {
    xk::parallel_for_index(0, static_cast<std::int64_t>(v.size()),
                           [&](std::int64_t i) {
                             v[static_cast<std::size_t>(i)] =
                                 static_cast<int>(i % 7);
                           });
  });
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i], static_cast<int>(i % 7));
  }
}

TEST(Foreach, SequentialLoopsBackToBack) {
  xk::Runtime rt(cfg(4));
  std::vector<double> a(50000, 1.0);
  rt.run([&] {
    for (int pass = 0; pass < 5; ++pass) {
      xk::parallel_for(0, static_cast<std::int64_t>(a.size()),
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) {
                           a[static_cast<std::size_t>(i)] *= 2.0;
                         }
                       });
    }
  });
  for (double v : a) ASSERT_DOUBLE_EQ(v, 32.0);
}

TEST(Foreach, NestedParallelFor) {
  xk::Runtime rt(cfg(4));
  constexpr std::int64_t kOuter = 8, kInner = 1000;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  rt.run([&] {
    xk::parallel_for(0, kOuter, [&](std::int64_t olo, std::int64_t ohi) {
      for (std::int64_t o = olo; o < ohi; ++o) {
        xk::parallel_for(0, kInner, [&, o](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            hits[static_cast<std::size_t>(o * kInner + i)].fetch_add(1);
          }
        });
      }
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Foreach, ExceptionCancelsAndRethrows) {
  xk::Runtime rt(cfg(4));
  rt.run([&] {
    std::atomic<std::int64_t> before{0};
    EXPECT_THROW(
        xk::parallel_for(0, 1 << 20,
                         [&](std::int64_t lo, std::int64_t hi) {
                           if (lo == 0) throw std::runtime_error("loop-fail");
                           before.fetch_add(hi - lo);
                         }),
        std::runtime_error);
    // Cancellation is cooperative: far fewer iterations than the range ran.
    EXPECT_LT(before.load(), (std::int64_t{1} << 20));
  });
}

TEST(Foreach, RuntimeUsableAfterLoopException) {
  xk::Runtime rt(cfg(4));
  rt.run([&] {
    EXPECT_THROW(xk::parallel_for(0, 10000,
                                  [&](std::int64_t, std::int64_t) {
                                    throw std::logic_error("x");
                                  }),
                 std::logic_error);
    std::atomic<std::int64_t> n{0};
    xk::parallel_for(0, 10000, [&](std::int64_t lo, std::int64_t hi) {
      n.fetch_add(hi - lo);
    });
    EXPECT_EQ(n.load(), 10000);
  });
}

TEST(Reduce, SumMatchesClosedForm) {
  xk::Runtime rt(cfg(4));
  rt.run([&] {
    const auto sum = xk::parallel_reduce(
        0, 1000000, std::int64_t{0},
        [](std::int64_t lo, std::int64_t hi, std::int64_t& acc) {
          for (std::int64_t i = lo; i < hi; ++i) acc += i;
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(sum, 999999LL * 1000000 / 2);
  });
}

TEST(Reduce, MaxReduction) {
  xk::Runtime rt(cfg(4));
  std::vector<int> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>((i * 2654435761u) % 1000003);
  }
  const int expected = *std::max_element(v.begin(), v.end());
  rt.run([&] {
    const int got = xk::parallel_reduce(
        0, static_cast<std::int64_t>(v.size()), 0,
        [&](std::int64_t lo, std::int64_t hi, int& acc) {
          for (std::int64_t i = lo; i < hi; ++i) {
            acc = std::max(acc, v[static_cast<std::size_t>(i)]);
          }
        },
        [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(got, expected);
  });
}

TEST(Reduce, ParallelSumHelper) {
  xk::Runtime rt(cfg(3));
  rt.run([&] {
    const auto s = xk::parallel_sum<long>(
        0, 10000, [](std::int64_t i) { return static_cast<long>(i % 10); });
    EXPECT_EQ(s, 45000L);
  });
}

TEST(Foreach, ChunkStatsRecorded) {
  xk::Runtime rt(cfg(2));
  rt.reset_stats();
  rt.run([&] {
    xk::parallel_for(0, 100000, [](std::int64_t, std::int64_t) {});
  });
  EXPECT_GT(rt.stats_snapshot().foreach_chunks, 0u);
}

TEST(Foreach, DomainPartitionCoversExactlyOnce) {
  // Domain-partitioned deal on a synthetic two-domain machine: every index
  // is still visited exactly once, for every explicit partition mode.
  xk::Config c = cfg(4);
  c.topo = "2x2";
  xk::Runtime rt(c);
  ASSERT_EQ(rt.ndomains(), 2u);
  for (xk::ForeachPartition mode :
       {xk::ForeachPartition::kAuto, xk::ForeachPartition::kFlat,
        xk::ForeachPartition::kDomain}) {
    const std::int64_t n = 100000;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    xk::ForeachOptions opt;
    opt.partition = mode;
    opt.grain = 64;  // small grain: force splits and slice claims
    rt.run([&] {
      xk::parallel_for(
          0, n,
          [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i) {
              hits[static_cast<std::size_t>(i)].fetch_add(
                  1, std::memory_order_relaxed);
            }
          },
          opt);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "mode " << static_cast<int>(mode) << " index " << i;
    }
  }
}

}  // namespace
