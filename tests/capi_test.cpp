// kaapic-flavor C API tests (core/capi.h).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/capi.h"

namespace {

std::atomic<int> g_counter{0};

void bump(void*) { g_counter.fetch_add(1); }

void fill_range(int64_t lo, int64_t hi, int32_t /*tid*/, void* arg) {
  auto* v = static_cast<std::vector<int>*>(arg);
  for (int64_t i = lo; i < hi; ++i) (*v)[static_cast<std::size_t>(i)] = 1;
}

TEST(CApi, LifecycleAndErrors) {
  EXPECT_EQ(kaapic_get_concurrency(), 0);
  EXPECT_NE(kaapic_spawn(bump, nullptr), 0);  // not initialized
  EXPECT_NE(kaapic_finalize(), 0);

  ASSERT_EQ(kaapic_init(2), 0);
  EXPECT_EQ(kaapic_get_concurrency(), 2);
  EXPECT_NE(kaapic_init(2), 0);  // double init rejected
  ASSERT_EQ(kaapic_finalize(), 0);
  EXPECT_EQ(kaapic_get_concurrency(), 0);
}

TEST(CApi, SpawnAndSync) {
  ASSERT_EQ(kaapic_init(2), 0);
  g_counter.store(0);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(kaapic_spawn(bump, nullptr), 0);
  EXPECT_EQ(kaapic_sync(), 0);
  EXPECT_EQ(g_counter.load(), 64);
  ASSERT_EQ(kaapic_finalize(), 0);
}

TEST(CApi, DataflowChain) {
  ASSERT_EQ(kaapic_init(2), 0);
  double value = 1.0;
  auto doubler = [](void* p) { *static_cast<double*>(p) *= 2.0; };
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(kaapic_spawn_1(doubler, &value, sizeof(value), KAAPIC_MODE_RW),
              0);
  }
  EXPECT_EQ(kaapic_sync(), 0);
  EXPECT_DOUBLE_EQ(value, 1024.0);
  ASSERT_EQ(kaapic_finalize(), 0);
}

TEST(CApi, Foreach) {
  ASSERT_EQ(kaapic_init(4), 0);
  std::vector<int> v(100000, 0);
  EXPECT_EQ(kaapic_foreach(0, static_cast<int64_t>(v.size()), &v, fill_range),
            0);
  for (int x : v) ASSERT_EQ(x, 1);
  ASSERT_EQ(kaapic_finalize(), 0);
}

}  // namespace
