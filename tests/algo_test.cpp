// STL-like adaptive algorithms vs their std:: counterparts.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "algo/algo.hpp"
#include "support/rng.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

std::vector<std::int64_t> random_values(std::int64_t n, std::uint64_t seed) {
  xk::Rng rng(seed);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next_below(1000000));
  return v;
}

class AlgoTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlgoTest, Transform) {
  xk::Runtime rt(cfg(GetParam()));
  const auto in = random_values(50000, 1);
  std::vector<std::int64_t> out(in.size());
  rt.run([&] {
    xk::algo::transform(in.data(), out.data(),
                        static_cast<std::int64_t>(in.size()),
                        [](std::int64_t v) { return v * 2 + 1; });
  });
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(out[i], in[i] * 2 + 1);
  }
}

TEST_P(AlgoTest, Accumulate) {
  xk::Runtime rt(cfg(GetParam()));
  const auto in = random_values(100000, 2);
  const auto expected =
      std::accumulate(in.begin(), in.end(), std::int64_t{100});
  std::int64_t got = 0;
  rt.run([&] {
    got = xk::algo::accumulate(in.data(),
                               static_cast<std::int64_t>(in.size()),
                               std::int64_t{100});
  });
  EXPECT_EQ(got, expected);
}

TEST_P(AlgoTest, CountIf) {
  xk::Runtime rt(cfg(GetParam()));
  const auto in = random_values(80000, 3);
  const auto expected = std::count_if(in.begin(), in.end(),
                                      [](std::int64_t v) { return v % 7 == 0; });
  std::int64_t got = 0;
  rt.run([&] {
    got = xk::algo::count_if(in.data(), static_cast<std::int64_t>(in.size()),
                             [](std::int64_t v) { return v % 7 == 0; });
  });
  EXPECT_EQ(got, expected);
}

TEST_P(AlgoTest, FindFirst) {
  xk::Runtime rt(cfg(GetParam()));
  std::vector<std::int64_t> in(100000, 0);
  in[70001] = 42;
  in[90000] = 42;
  std::int64_t got = -1;
  rt.run([&] {
    got = xk::algo::find_first(in.data(),
                               static_cast<std::int64_t>(in.size()),
                               [](std::int64_t v) { return v == 42; });
  });
  EXPECT_EQ(got, 70001);
}

TEST_P(AlgoTest, FindFirstAbsent) {
  xk::Runtime rt(cfg(GetParam()));
  std::vector<std::int64_t> in(5000, 1);
  std::int64_t got = -1;
  rt.run([&] {
    got = xk::algo::find_first(in.data(),
                               static_cast<std::int64_t>(in.size()),
                               [](std::int64_t v) { return v == 42; });
  });
  EXPECT_EQ(got, 5000);
}

TEST_P(AlgoTest, PrefixSumExclusive) {
  xk::Runtime rt(cfg(GetParam()));
  const auto in = random_values(65537, 4);  // non power of two
  std::vector<std::int64_t> out(in.size());
  rt.run([&] {
    xk::algo::prefix_sum_exclusive(in.data(), out.data(),
                                   static_cast<std::int64_t>(in.size()));
  });
  std::int64_t run = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(out[i], run) << i;
    run += in[i];
  }
}

TEST_P(AlgoTest, Sort) {
  xk::Runtime rt(cfg(GetParam()));
  auto v = random_values(200000, 5);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  rt.run([&] {
    xk::algo::sort(v.data(), static_cast<std::int64_t>(v.size()));
  });
  EXPECT_EQ(v, expected);
}

TEST_P(AlgoTest, SortDescendingComparator) {
  xk::Runtime rt(cfg(GetParam()));
  auto v = random_values(50000, 6);
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<>());
  rt.run([&] {
    xk::algo::sort(v.data(), static_cast<std::int64_t>(v.size()),
                   std::greater<>());
  });
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Workers, AlgoTest, ::testing::Values(1u, 2u, 4u, 8u));

TEST(AlgoEdge, EmptyInputs) {
  xk::Runtime rt(cfg(2));
  rt.run([&] {
    std::vector<int> v;
    xk::algo::sort(v.data(), 0);
    int x = 5;
    xk::algo::prefix_sum_exclusive(&x, &x, 0);
    EXPECT_EQ(xk::algo::count_if(v.data(), 0, [](int) { return true; }), 0);
    EXPECT_EQ(xk::algo::find_first(v.data(), 0, [](int) { return true; }), 0);
  });
}

TEST(AlgoEdge, WorksOutsideRuntime) {
  std::vector<std::int64_t> in{3, 1, 2};
  std::vector<std::int64_t> out(3);
  xk::algo::prefix_sum_exclusive(in.data(), out.data(), 3);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 4);
  xk::algo::sort(in.data(), 3);
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
}

}  // namespace
