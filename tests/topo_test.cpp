// Unit tests of the topology subsystem: cpulist parsing, synthetic XK_TOPO
// shapes, sysfs discovery against real-format fixture trees written to a
// temp dir, placement policies, and the hierarchical victim ordering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/cpu.hpp"
#include "topo/topology.hpp"

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// cpulist parsing.
// ---------------------------------------------------------------------------

TEST(CpuList, SingleAndRanges) {
  auto v = xk::parse_cpulist("0-3,8,10-11");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(CpuList, SortsAndDeduplicates) {
  auto v = xk::parse_cpulist("5,1,3-5,1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (std::vector<unsigned>{1, 3, 4, 5}));
}

TEST(CpuList, Malformed) {
  EXPECT_FALSE(xk::parse_cpulist("").has_value());
  EXPECT_FALSE(xk::parse_cpulist("a").has_value());
  EXPECT_FALSE(xk::parse_cpulist("3-1").has_value());
  EXPECT_FALSE(xk::parse_cpulist("1,,2").has_value());
  EXPECT_FALSE(xk::parse_cpulist("1-").has_value());
  EXPECT_FALSE(xk::parse_cpulist("-2").has_value());
  // Ids past the Linux NR_CPUS ceiling are typos, and gigantic ranges must
  // be rejected before the eager expansion (not abort on bad_alloc).
  EXPECT_FALSE(xk::parse_cpulist("0-4294967295").has_value());
  EXPECT_FALSE(xk::parse_cpulist("0-4000000000").has_value());
  EXPECT_FALSE(xk::parse_cpulist("100000").has_value());
}

// ---------------------------------------------------------------------------
// Synthetic XK_TOPO shapes.
// ---------------------------------------------------------------------------

TEST(TopoSpec, TwoNodesFourCores) {
  auto t = xk::Topology::parse_spec("2x4");
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->is_synthetic());
  EXPECT_EQ(t->ncpus(), 8u);
  EXPECT_EQ(t->nnodes(), 2u);
  EXPECT_EQ(t->ncores(), 8u);
  // Node-major enumeration: cpus 0-3 in node 0, 4-7 in node 1.
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(t->cpu(i).node, i / 4) << i;
    EXPECT_EQ(t->cpu(i).smt, 0u) << i;
  }
  EXPECT_EQ(t->node_cpus(0).size(), 4u);
  EXPECT_EQ(t->node_cpus(1).size(), 4u);
}

TEST(TopoSpec, SmtShape) {
  auto t = xk::Topology::parse_spec("4x2x2");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ncpus(), 16u);
  EXPECT_EQ(t->nnodes(), 4u);
  EXPECT_EQ(t->ncores(), 8u);
  // Within a node: core 0 smt 0, core 0 smt 1, core 1 smt 0, core 1 smt 1.
  EXPECT_EQ(t->cpu(0).core, t->cpu(1).core);
  EXPECT_EQ(t->cpu(0).smt, 0u);
  EXPECT_EQ(t->cpu(1).smt, 1u);
  EXPECT_NE(t->cpu(1).core, t->cpu(2).core);
  EXPECT_EQ(t->cpu(4).node, 1u);
}

TEST(TopoSpec, Malformed) {
  for (const char* spec : {"", "8", "0x4", "2x0", "ax2", "2x", "x4",
                           "2x4x2x2", "2x4x0", "2 x 4"}) {
    EXPECT_FALSE(xk::Topology::parse_spec(spec).has_value()) << spec;
  }
}

// ---------------------------------------------------------------------------
// Asymmetric '+' shapes.
// ---------------------------------------------------------------------------

TEST(TopoSpec, AsymmetricBareCoreShorthand) {
  // "2+6": one 2-core node plus one 6-core node (bare numbers are one-node
  // groups once a '+' appears).
  auto t = xk::Topology::parse_spec("2+6");
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->is_synthetic());
  EXPECT_EQ(t->ncpus(), 8u);
  EXPECT_EQ(t->nnodes(), 2u);
  EXPECT_EQ(t->ncores(), 8u);
  EXPECT_EQ(t->node_cpus(0).size(), 2u);
  EXPECT_EQ(t->node_cpus(1).size(), 6u);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(t->cpu(i).node, i < 2 ? 0u : 1u) << i;
    EXPECT_EQ(t->cpu(i).smt, 0u) << i;
  }
}

TEST(TopoSpec, AsymmetricExplicitEqualsShorthand) {
  auto a = xk::Topology::parse_spec("1x2+1x6");
  auto b = xk::Topology::parse_spec("2+6");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->ncpus(), b->ncpus());
  EXPECT_EQ(a->nnodes(), b->nnodes());
  EXPECT_EQ(a->ncores(), b->ncores());
  for (unsigned i = 0; i < a->ncpus(); ++i) {
    EXPECT_EQ(a->cpu(i).os_id, b->cpu(i).os_id) << i;
    EXPECT_EQ(a->cpu(i).node, b->cpu(i).node) << i;
  }
}

TEST(TopoSpec, AsymmetricMixedGroupsWithSmt) {
  // Two 2-core nodes, then one node of 4 cores x 2 threads: groups compose
  // with the full "<nodes>x<cores>[x<smt>]" grammar, node ids continuing
  // across the '+'.
  auto t = xk::Topology::parse_spec("2x2+1x4x2");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ncpus(), 12u);
  EXPECT_EQ(t->nnodes(), 3u);
  EXPECT_EQ(t->ncores(), 8u);
  EXPECT_EQ(t->node_cpus(0).size(), 2u);
  EXPECT_EQ(t->node_cpus(1).size(), 2u);
  EXPECT_EQ(t->node_cpus(2).size(), 8u);
  // The SMT group's siblings pair up on shared cores.
  const unsigned first = t->node_cpus(2)[0];
  EXPECT_EQ(t->cpu(first).smt, 0u);
  EXPECT_EQ(t->cpu(first + 1).smt, 1u);
  EXPECT_EQ(t->cpu(first).core, t->cpu(first + 1).core);
}

TEST(TopoSpec, AsymmetricMalformed) {
  for (const char* spec : {"+", "2+", "+6", "2++6", "2+0", "0+4", "2x+4",
                           "2+6x", "2 + 6", "2+6+", "1x2+x6", "2+6+0x2"}) {
    EXPECT_FALSE(xk::Topology::parse_spec(spec).has_value()) << spec;
  }
}

TEST(TopoFlat, SingleDomain) {
  xk::Topology t = xk::Topology::flat(4);
  EXPECT_FALSE(t.is_synthetic());
  EXPECT_EQ(t.ncpus(), 4u);
  EXPECT_EQ(t.nnodes(), 1u);
  EXPECT_EQ(t.ncores(), 4u);
}

// ---------------------------------------------------------------------------
// Sysfs discovery against fixture trees (real /sys file formats).
// ---------------------------------------------------------------------------

class SysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) / "xk_topo_fixture" / info->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void add_cpu(unsigned os_id, unsigned package, unsigned core_id) {
    const fs::path dir = root_ / "devices/system/cpu" /
                         ("cpu" + std::to_string(os_id)) / "topology";
    fs::create_directories(dir);
    write(dir / "physical_package_id", std::to_string(package) + "\n");
    write(dir / "core_id", std::to_string(core_id) + "\n");
  }

  void add_node(unsigned node, const std::string& cpulist) {
    const fs::path dir =
        root_ / "devices/system/node" / ("node" + std::to_string(node));
    fs::create_directories(dir);
    write(dir / "cpulist", cpulist + "\n");
  }

  static void write(const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content;
  }

  fs::path root_;
};

TEST_F(SysfsFixture, TwoSocketsTwoNodes) {
  for (unsigned c = 0; c < 4; ++c) add_cpu(c, 0, c);
  for (unsigned c = 0; c < 4; ++c) add_cpu(4 + c, 1, c);
  add_node(0, "0-3");
  add_node(1, "4-7");

  xk::Topology t = xk::Topology::discover(root_.string());
  EXPECT_FALSE(t.is_synthetic());
  EXPECT_EQ(t.ncpus(), 8u);
  EXPECT_EQ(t.nnodes(), 2u);
  EXPECT_EQ(t.npackages(), 2u);
  // core_id repeats per package; global core indexes must not collide.
  EXPECT_EQ(t.ncores(), 8u);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(t.cpu(i).node, t.cpu(i).os_id < 4 ? 0u : 1u) << i;
  }
}

TEST_F(SysfsFixture, SmtSiblingsShareCore) {
  // cpu0/cpu2 are core 0, cpu1/cpu3 are core 1 (interleaved sibling ids,
  // the common Linux enumeration).
  add_cpu(0, 0, 0);
  add_cpu(1, 0, 1);
  add_cpu(2, 0, 0);
  add_cpu(3, 0, 1);
  add_node(0, "0-3");

  xk::Topology t = xk::Topology::discover(root_.string());
  EXPECT_EQ(t.ncpus(), 4u);
  EXPECT_EQ(t.ncores(), 2u);
  // Canonical order groups siblings: (core0: 0,2), (core1: 1,3).
  EXPECT_EQ(t.cpu(0).os_id, 0u);
  EXPECT_EQ(t.cpu(1).os_id, 2u);
  EXPECT_EQ(t.cpu(0).core, t.cpu(1).core);
  EXPECT_EQ(t.cpu(1).smt, 1u);
  EXPECT_EQ(t.cpu(2).os_id, 1u);
  EXPECT_EQ(t.cpu(2).smt, 0u);
}

TEST_F(SysfsFixture, NoNodeTreeCollapsesToOneDomain) {
  for (unsigned c = 0; c < 4; ++c) add_cpu(c, 0, c);
  xk::Topology t = xk::Topology::discover(root_.string());
  EXPECT_EQ(t.ncpus(), 4u);
  EXPECT_EQ(t.nnodes(), 1u);
}

TEST(TopoDiscover, MissingRootFallsBackToFlat) {
  xk::Topology t = xk::Topology::discover("/nonexistent/sysfs/root");
  EXPECT_EQ(t.ncpus(), xk::hardware_cores());
  EXPECT_EQ(t.nnodes(), 1u);
  EXPECT_FALSE(t.is_synthetic());
}

// ---------------------------------------------------------------------------
// Placement policies.
// ---------------------------------------------------------------------------

TEST(Placement, CompactPacksNodeBeforeSpilling) {
  auto t = xk::Topology::parse_spec("2x4");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::compute(*t, 8, xk::PlacePolicy::kCompact);
  ASSERT_EQ(p.slots.size(), 8u);
  for (unsigned w = 0; w < 8; ++w) {
    EXPECT_EQ(p.slots[w].domain, w / 4) << w;
    EXPECT_EQ(p.slots[w].cpu_os_id, w) << w;
  }
  EXPECT_EQ(p.ndomains, 2u);
  EXPECT_TRUE(p.deterministic);

  // Fewer workers than one node: everyone lands in domain 0.
  xk::Placement small =
      xk::Placement::compute(*t, 3, xk::PlacePolicy::kCompact);
  EXPECT_EQ(small.ndomains, 1u);
}

TEST(Placement, ScatterRoundRobinsNodes) {
  auto t = xk::Topology::parse_spec("2x4");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::compute(*t, 4, xk::PlacePolicy::kScatter);
  ASSERT_EQ(p.slots.size(), 4u);
  EXPECT_EQ(p.slots[0].domain, 0u);
  EXPECT_EQ(p.slots[1].domain, 1u);
  EXPECT_EQ(p.slots[2].domain, 0u);
  EXPECT_EQ(p.slots[3].domain, 1u);
  EXPECT_EQ(p.ndomains, 2u);
}

TEST(Placement, CompactUsesDistinctCoresBeforeSmt) {
  auto t = xk::Topology::parse_spec("2x2x2");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::compute(*t, 4, xk::PlacePolicy::kCompact);
  // Node 0 fills first, distinct cores before SMT siblings: two smt-0
  // threads on different cores, then their siblings — never two workers
  // on one core while another core sits idle.
  std::vector<std::pair<unsigned, unsigned>> core_smt;
  for (const auto& s : p.slots) {
    const auto idx = t->index_of_os_id(s.cpu_os_id);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(t->cpu(*idx).node, 0u);
    core_smt.emplace_back(t->cpu(*idx).core, t->cpu(*idx).smt);
  }
  EXPECT_EQ(core_smt[0].second, 0u);
  EXPECT_EQ(core_smt[1].second, 0u);
  EXPECT_NE(core_smt[0].first, core_smt[1].first);
  EXPECT_EQ(core_smt[2].second, 1u);
  EXPECT_EQ(core_smt[3].second, 1u);
}

TEST(Placement, ScatterUsesDistinctCoresBeforeSmt) {
  auto t = xk::Topology::parse_spec("2x2x2");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::compute(*t, 4, xk::PlacePolicy::kScatter);
  // 4 workers on 2 nodes x 2 cores x 2 smt: all land on smt-0 threads of
  // distinct cores.
  std::vector<unsigned> cores;
  for (const auto& s : p.slots) {
    const auto idx = t->index_of_os_id(s.cpu_os_id);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(t->cpu(*idx).smt, 0u);
    cores.push_back(t->cpu(*idx).core);
  }
  std::sort(cores.begin(), cores.end());
  EXPECT_EQ(cores, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(Placement, OversubscriptionWraps) {
  auto t = xk::Topology::parse_spec("2x2");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::compute(*t, 8, xk::PlacePolicy::kCompact);
  ASSERT_EQ(p.slots.size(), 8u);
  EXPECT_EQ(p.slots[4].cpu_os_id, p.slots[0].cpu_os_id);
  EXPECT_EQ(p.slots[4].domain, p.slots[0].domain);
}

TEST(Placement, AsymmetricCompactFollowsNodeSizes) {
  auto t = xk::Topology::parse_spec("1x2+1x6");
  ASSERT_TRUE(t.has_value());
  xk::Placement p = xk::Placement::compute(*t, 8, xk::PlacePolicy::kCompact);
  ASSERT_EQ(p.slots.size(), 8u);
  for (unsigned w = 0; w < 8; ++w) {
    EXPECT_EQ(p.slots[w].domain, w < 2 ? 0u : 1u) << w;
    EXPECT_EQ(p.slots[w].domain_rank, p.slots[w].domain) << w;
  }
  EXPECT_EQ(p.ndomains, 2u);
}

TEST(Placement, AsymmetricScatterDrainsSmallNodeFirst) {
  // Scatter round-robins nodes until a node runs out of cpus; the small
  // node contributes its two, the big one absorbs the rest.
  auto t = xk::Topology::parse_spec("2+6");
  ASSERT_TRUE(t.has_value());
  xk::Placement p = xk::Placement::compute(*t, 8, xk::PlacePolicy::kScatter);
  std::vector<unsigned> domains;
  for (const auto& s : p.slots) domains.push_back(s.domain);
  EXPECT_EQ(domains, (std::vector<unsigned>{0, 1, 0, 1, 1, 1, 1, 1}));
  EXPECT_EQ(p.ndomains, 2u);
}

TEST(Placement, DomainRankIsDenseUnderSparseNodeIds) {
  // A cpuset touching only nodes 0 and 2 of a three-node shape: node ids
  // keep their sysfs values, ranks compact to {0, 1} (the shard key).
  auto t = xk::Topology::parse_spec("3x2");
  ASSERT_TRUE(t.has_value());
  xk::Placement p = xk::Placement::from_cpuset(*t, {0, 4}, 2);
  ASSERT_EQ(p.slots.size(), 2u);
  EXPECT_EQ(p.slots[0].domain, 0u);
  EXPECT_EQ(p.slots[0].domain_rank, 0u);
  EXPECT_EQ(p.slots[1].domain, 2u);
  EXPECT_EQ(p.slots[1].domain_rank, 1u);
  EXPECT_EQ(p.ndomains, 2u);
}

TEST(Placement, CpusetOverridesPolicy) {
  auto t = xk::Topology::parse_spec("2x4");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::from_cpuset(*t, {4, 5, 0, 1}, 4);
  ASSERT_EQ(p.slots.size(), 4u);
  EXPECT_EQ(p.slots[0].cpu_os_id, 4u);
  EXPECT_EQ(p.slots[0].domain, 1u);
  EXPECT_EQ(p.slots[2].cpu_os_id, 0u);
  EXPECT_EQ(p.slots[2].domain, 0u);
  EXPECT_EQ(p.ndomains, 2u);
}

// ---------------------------------------------------------------------------
// Hierarchical victim ordering.
// ---------------------------------------------------------------------------

TEST(VictimOrder, LocalTierFirstRemoteGrouped) {
  auto t = xk::Topology::parse_spec("2x4");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::compute(*t, 8, xk::PlacePolicy::kCompact);

  xk::VictimOrder v0 = xk::steal_victim_order(p, 0);
  EXPECT_EQ(v0.nlocal, 3u);
  EXPECT_EQ(v0.order,
            (std::vector<unsigned>{1, 2, 3, 4, 5, 6, 7}));

  // Local tier rotates to start just after self.
  xk::VictimOrder v5 = xk::steal_victim_order(p, 5);
  EXPECT_EQ(v5.nlocal, 3u);
  EXPECT_EQ(v5.order,
            (std::vector<unsigned>{6, 7, 4, 0, 1, 2, 3}));
}

TEST(VictimOrder, NeverContainsSelf) {
  auto t = xk::Topology::parse_spec("4x2");
  ASSERT_TRUE(t.has_value());
  xk::Placement p =
      xk::Placement::compute(*t, 8, xk::PlacePolicy::kScatter);
  for (unsigned self = 0; self < 8; ++self) {
    xk::VictimOrder v = xk::steal_victim_order(p, self);
    EXPECT_EQ(v.order.size(), 7u) << self;
    for (unsigned w : v.order) EXPECT_NE(w, self);
    // Every local-tier entry shares self's domain; every later entry
    // does not.
    for (unsigned i = 0; i < v.order.size(); ++i) {
      const bool local = p.slots[v.order[i]].domain == p.slots[self].domain;
      EXPECT_EQ(local, i < v.nlocal) << "self=" << self << " i=" << i;
    }
  }
}

TEST(VictimOrder, SingleDomainAllLocal) {
  xk::Placement p = xk::Placement::compute(xk::Topology::flat(4), 4,
                                           xk::PlacePolicy::kCompact);
  xk::VictimOrder v = xk::steal_victim_order(p, 2);
  EXPECT_EQ(v.nlocal, 3u);
  EXPECT_EQ(v.order, (std::vector<unsigned>{3, 0, 1}));
}

}  // namespace
