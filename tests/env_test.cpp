// Env-knob parsing hardening: malformed, out-of-range and hostile values
// in the environment must degrade to compiled-in defaults (with a stderr
// note), never to UB. The interesting regressions this suite pins:
//
//  * Config::from_env used to static_cast env_int() straight into
//    unsigned/size_t fields, so XK_SECTIONS=-1 became 4294967295 master
//    slots and XK_SVC_QUEUE_CAP=-1 an effectively unbounded admission
//    queue — sign-wraps a fuzzer (or a typo) reaches trivially.
//  * XK_SVC_WEIGHTS entries above 2^32 narrowed to 0, silently starving
//    the tenant the operator meant to boost.
//
// The CI UBSan leg runs this suite: the bad casts themselves are the kind
// of implementation-defined narrowing -fsanitize=undefined flags.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/runtime.hpp"
#include "support/env.hpp"

namespace {

/// setenv/unsetenv with restore-on-destruction, so a failing assertion
/// cannot leak a hostile value into later suites in the same process.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_ = false;
};

const xk::Config kDefaults{};  // compiled-in fallbacks

// ---- support/env.cpp primitives -------------------------------------------

TEST(EnvParse, IntGarbageFallsBack) {
  ScopedEnv e("XK_TEST_INT", "not-a-number");
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 17), 17);
}

TEST(EnvParse, IntTrailingGarbageFallsBack) {
  ScopedEnv e("XK_TEST_INT", "12abc");
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 17), 17);
}

TEST(EnvParse, IntEmptyFallsBack) {
  ScopedEnv e("XK_TEST_INT", "");
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 17), 17);
}

TEST(EnvParse, IntOverflowFallsBack) {
  // Past INT64_MAX: std::stoll throws out_of_range, env_int catches.
  ScopedEnv e("XK_TEST_INT", "99999999999999999999999999");
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 17), 17);
}

TEST(EnvParse, IntNegativeIsAValue) {
  // env_int itself is signed; range policy lives in Config::from_env.
  ScopedEnv e("XK_TEST_INT", "-5");
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 17), -5);
}

TEST(EnvParse, BoolVariants) {
  for (const char* yes : {"1", "true", "YES", "On"}) {
    ScopedEnv e("XK_TEST_BOOL", yes);
    EXPECT_TRUE(xk::env_bool("XK_TEST_BOOL", false)) << yes;
  }
  for (const char* no : {"0", "false", "NO", "off"}) {
    ScopedEnv e("XK_TEST_BOOL", no);
    EXPECT_FALSE(xk::env_bool("XK_TEST_BOOL", true)) << no;
  }
  ScopedEnv e("XK_TEST_BOOL", "maybe");
  EXPECT_TRUE(xk::env_bool("XK_TEST_BOOL", true));
  EXPECT_FALSE(xk::env_bool("XK_TEST_BOOL", false));
}

TEST(EnvParse, DoubleGarbageFallsBack) {
  ScopedEnv e("XK_TEST_DBL", "1.5x");
  EXPECT_EQ(xk::env_double("XK_TEST_DBL", 2.5), 2.5);
}

// ---- Config::from_env range policy ----------------------------------------

TEST(ConfigFromEnv, NegativeSectionsFallsBack) {
  ScopedEnv e("XK_SECTIONS", "-1");
  EXPECT_EQ(xk::Config::from_env().sections, kDefaults.sections);
}

TEST(ConfigFromEnv, HugeSectionsFallsBack) {
  // Every section past the first allocates a Worker; 10^9 of them is a
  // wrap/typo, not a tuning.
  ScopedEnv e("XK_SECTIONS", "1000000000");
  EXPECT_EQ(xk::Config::from_env().sections, kDefaults.sections);
}

TEST(ConfigFromEnv, GarbageSectionsFallsBack) {
  ScopedEnv e("XK_SECTIONS", "two");
  EXPECT_EQ(xk::Config::from_env().sections, kDefaults.sections);
}

TEST(ConfigFromEnv, ValidSectionsParses) {
  ScopedEnv e("XK_SECTIONS", "3");
  EXPECT_EQ(xk::Config::from_env().sections, 3u);
}

TEST(ConfigFromEnv, NegativeQueueCapFallsBack) {
  ScopedEnv e("XK_SVC_QUEUE_CAP", "-1");
  EXPECT_EQ(xk::Config::from_env().svc_queue_cap, kDefaults.svc_queue_cap);
}

TEST(ConfigFromEnv, NegativeNcpuFallsBack) {
  ScopedEnv e("XK_NCPU", "-3");
  EXPECT_EQ(xk::Config::from_env().nworkers, kDefaults.nworkers);
}

TEST(ConfigFromEnv, NegativeIdleUsFallsBack) {
  ScopedEnv e("XK_SVC_IDLE_US", "-200");
  EXPECT_EQ(xk::Config::from_env().svc_idle_us, kDefaults.svc_idle_us);
}

TEST(ConfigFromEnv, NegativeStealBatchFallsBack) {
  ScopedEnv e("XK_STEAL_BATCH", "-8");
  EXPECT_EQ(xk::Config::from_env().steal_batch, kDefaults.steal_batch);
}

TEST(ConfigFromEnv, NegativeTraceCapFallsBack) {
  ScopedEnv e("XK_TRACE_CAP", "-1");
  EXPECT_EQ(xk::Config::from_env().trace_cap, kDefaults.trace_cap);
}

// ---- XK_SVC_WEIGHTS (parsed at first submit, in the ServiceState ctor) ----

TEST(ConfigFromEnv, MalformedWeightsAreSkippedNotFatal) {
  // Tenant 1's "x", tenant 2's "-2" and tenant 3's 2^33 (which a bare
  // narrowing would wrap to weight 0) must all be skipped; the runtime
  // still dispatches jobs for every tenant afterwards.
  ScopedEnv e("XK_SVC_WEIGHTS", "4,x,-2,8589934592,2");
  xk::Config cfg = xk::Config::from_env();
  cfg.nworkers = 2;
  xk::Runtime rt(cfg);
  for (unsigned tenant = 0; tenant < 5; ++tenant) {
    xk::SubmitOptions opts;
    opts.tenant = tenant;
    xk::JobToken t = rt.submit([] {}, opts);
    t.wait();
    EXPECT_EQ(t.status(), xk::JobStatus::kDone) << "tenant " << tenant;
  }
}

TEST(ConfigFromEnv, EmptyWeightSpecIsDefault) {
  ScopedEnv e("XK_SVC_WEIGHTS", ",,,");
  xk::Config cfg = xk::Config::from_env();
  cfg.nworkers = 1;
  xk::Runtime rt(cfg);
  xk::JobToken t = rt.submit([] {});
  t.wait();
  EXPECT_EQ(t.status(), xk::JobStatus::kDone);
}

}  // namespace
