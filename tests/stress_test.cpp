// Stress and failure-injection suites: oversubscription, frame-chunk
// boundaries, arena recycling across sections, mixed paradigms under churn,
// exception storms, runtime reuse.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "core/frame.hpp"
#include "core/readylist.hpp"
#include "core/xkaapi.hpp"
#include "support/rng.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

TEST(Stress, ManySectionsReuseFrames) {
  // Arena/frame recycling across many begin/end cycles must not leak or
  // corrupt (the arena never runs destructors; trampolines must).
  xk::Runtime rt(cfg(3));
  for (int section = 0; section < 200; ++section) {
    std::atomic<int> hits{0};
    rt.run([&] {
      for (int i = 0; i < 50; ++i) {
        std::vector<int> payload(16, section);
        xk::spawn([payload, &hits] {
          hits.fetch_add(payload[0] >= 0 ? 1 : 0);
        });
      }
      xk::sync();
    });
    ASSERT_EQ(hits.load(), 50);
  }
}

TEST(Stress, FrameChunkBoundaries) {
  // Spawn counts straddling the 128-task chunk size of Frame.
  xk::Runtime rt(cfg(2));
  for (int count : {127, 128, 129, 255, 256, 257, 1024}) {
    std::atomic<int> hits{0};
    rt.run([&] {
      for (int i = 0; i < count; ++i) xk::spawn([&hits] { hits.fetch_add(1); });
      xk::sync();
    });
    ASSERT_EQ(hits.load(), count) << "count=" << count;
  }
}

TEST(Stress, HeavyOversubscription) {
  // 24 workers on (likely) far fewer cores: progress + correctness only.
  xk::Runtime rt(cfg(24));
  std::atomic<std::int64_t> sum{0};
  rt.run([&] {
    xk::parallel_for(0, 100000, [&](std::int64_t lo, std::int64_t hi) {
      std::int64_t local = 0;
      for (std::int64_t i = lo; i < hi; ++i) local += i % 13;
      sum.fetch_add(local);
    });
  });
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < 100000; ++i) expect += i % 13;
  EXPECT_EQ(sum.load(), expect);
}

TEST(Stress, MixedParadigmChurn) {
  // Fork-join recursion + dataflow chains + loops, interleaved repeatedly.
  xk::Runtime rt(cfg(4));
  xk::Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    long chain = 0;
    std::atomic<long> loop_sum{0};
    std::atomic<int> leaves{0};
    rt.run([&] {
      std::function<void(int)> tree = [&](int d) {
        if (d == 0) {
          leaves.fetch_add(1);
          return;
        }
        xk::spawn([&tree, d] { tree(d - 1); });
        xk::spawn([&tree, d] { tree(d - 1); });
        xk::sync();
      };
      tree(6);
      for (int i = 0; i < 32; ++i) {
        xk::spawn([](long* c) { *c = *c * 3 + 1; }, xk::rw(&chain));
      }
      xk::parallel_for(0, 20000, [&](std::int64_t lo, std::int64_t hi) {
        loop_sum.fetch_add(hi - lo);
      });
      xk::sync();
    });
    ASSERT_EQ(leaves.load(), 64);
    ASSERT_EQ(loop_sum.load(), 20000);
    long expect = 0;
    for (int i = 0; i < 32; ++i) expect = expect * 3 + 1;
    ASSERT_EQ(chain, expect);
  }
}

TEST(Stress, ExceptionStorm) {
  // Many failing tasks across many sections: the runtime must stay usable
  // and never lose the first exception.
  xk::Runtime rt(cfg(4));
  for (int round = 0; round < 20; ++round) {
    bool threw = false;
    try {
      rt.run([&] {
        for (int i = 0; i < 100; ++i) {
          xk::spawn([i] {
            if (i % 3 == 0) throw std::runtime_error("storm");
          });
        }
        xk::sync();
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    ASSERT_TRUE(threw);
  }
  int ok = 0;
  rt.run([&] { ok = 1; });
  EXPECT_EQ(ok, 1);
}

TEST(Stress, ExceptionInsideNestedTask) {
  xk::Runtime rt(cfg(3));
  EXPECT_THROW(rt.run([&] {
    xk::spawn([] {
      xk::spawn([] {
        xk::spawn([] { throw std::logic_error("deep"); });
        xk::sync();
      });
      // implicit sync at body end propagates upward
    });
    xk::sync();
  }),
               std::logic_error);
}

TEST(Stress, RenamingUnderChurn) {
  xk::Config c = cfg(4);
  c.renaming = true;
  xk::Runtime rt(c);
  for (int round = 0; round < 10; ++round) {
    std::vector<int> slots(8, 0);
    rt.run([&] {
      // Interleaved independent WAW chains over few slots: heavy renaming
      // opportunity; program order must still win per slot.
      for (int step = 0; step < 50; ++step) {
        for (std::size_t s = 0; s < slots.size(); ++s) {
          xk::spawn(
              [](int* p, int v) {
                volatile int spin = 0;
                for (int i = 0; i < 50; ++i) spin = spin + i;
                *p = v;
              },
              xk::write(&slots[s]), step);
        }
      }
      xk::sync();
    });
    for (int v : slots) ASSERT_EQ(v, 49);
  }
}

TEST(Stress, TinyReadyListThreshold) {
  // Threshold 1 forces the accelerating structure on nearly every blocked
  // scan; correctness must be unaffected.
  xk::Config c = cfg(4);
  c.ready_list_threshold = 1;
  xk::Runtime rt(c);
  std::int64_t acc = 0;
  rt.run([&] {
    for (int i = 0; i < 500; ++i) {
      xk::spawn(
          [](std::int64_t* a) {
            volatile int spin = 0;
            for (int j = 0; j < 200; ++j) spin = spin + j;
            *a += 1;
          },
          xk::rw(&acc));
    }
    xk::sync();
  });
  EXPECT_EQ(acc, 500);
}

TEST(Stress, ParkWakeChurn) {
  // Idle-parking stress: an oversubscribed pool alternates between famine
  // (everyone parks) and bursts of spawns (the spawn/park race). A lost
  // wakeup beyond the Parker's timeout backstop would hang the section;
  // completing all sections with correct results is the assertion, and the
  // aggressive park threshold forces the park path to actually run.
  xk::Config c = cfg(8);
  c.park_threshold = 17;  // park at the minimum: right after the spin phase
  xk::Runtime rt(c);
  std::atomic<std::int64_t> sum{0};
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    rt.run([&] {
      // Famine: one wall-clock-slow task (longer than a scheduler timeslice,
      // so idle workers actually get CPU to rack up failed steals and park
      // even when threads far outnumber cores).
      xk::spawn([&sum] {
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
        while (std::chrono::steady_clock::now() < until) {
        }
        sum.fetch_add(1);
      });
      xk::sync();
      // Burst: publication must wake parked thieves promptly.
      for (int i = 0; i < 200; ++i) {
        xk::spawn([&sum] { sum.fetch_add(1); });
      }
      xk::sync();
    });
  }
  EXPECT_EQ(sum.load(), kRounds * 201);
  // The aggressive threshold on an oversubscribed pool must have exercised
  // the parking path at least once across the famine phases.
  EXPECT_GT(rt.stats_snapshot().parks, 0u);
}

TEST(Stress, LongDataflowPipelines) {
  // Several long independent RW chains; checks steal-time readiness with
  // many blocked candidates and scan-hint advancement.
  xk::Runtime rt(cfg(4));
  constexpr int kChains = 8, kLen = 300;
  std::vector<std::uint64_t> lanes(kChains, 1);
  rt.run([&] {
    for (int step = 0; step < kLen; ++step) {
      for (int c = 0; c < kChains; ++c) {
        xk::spawn(
            [](std::uint64_t* v) { *v = *v * 6364136223846793005ULL + 1; },
            xk::rw(&lanes[static_cast<std::size_t>(c)]));
      }
    }
    xk::sync();
  });
  std::uint64_t expect = 1;
  for (int step = 0; step < kLen; ++step) {
    expect = expect * 6364136223846793005ULL + 1;
  }
  for (auto v : lanes) ASSERT_EQ(v, expect);
}

// ---------------------------------------------------------------------------
// Two-level ready-list locking (PR 5): concurrent hammer suites. These run
// in the TSan CI leg (the sanitizer job runs every label), which is the
// real gate for the graph-mutex / shard-mutex split.
// ---------------------------------------------------------------------------

// White-box hammer: one frame's ReadyList under concurrent extend() +
// cross-shard pop_ready_claimed_batch + on_complete from several threads,
// while the owner thread keeps publishing tasks and silently terminating
// some claims (exercising the claim-race fold and the lazy watch sweep).
// This is deliberately *stricter* than production — there, a steal mutex
// serializes poppers per victim; here several poppers race each other on
// purpose so the per-shard locks and the atomic npred release chain carry
// the whole load.
void readylist_lock_hammer(xk::RlLockMode mode) {
  constexpr std::uint32_t kTasks = 4096;
  constexpr std::uint32_t kSlots = 64;   // kSlots RW chains of kTasks/kSlots
  constexpr unsigned kShards = 2;        // the 1x2+1x6 shape: two domains
  constexpr int kPoppers = 4;

  xk::Frame frame;
  xk::StarvationBoard board;
  board.init(kShards);
  std::vector<double> slots(kSlots, 0.0);
  std::vector<xk::Access> accesses;
  accesses.reserve(kTasks);  // stable storage: tasks keep pointers into it
  std::vector<xk::Task*> tasks;
  tasks.reserve(kTasks);

  std::atomic<std::uint32_t> terminated{0};
  std::atomic<std::uint64_t> popped{0};
  {
    xk::ReadyList rl(frame, kShards, &board, mode);

    auto publish_one = [&](std::uint32_t i) {
      auto* t = new (frame.arena.allocate(sizeof(xk::Task), alignof(xk::Task)))
          xk::Task();
      t->body = [](void*, xk::Worker&) {};
      accesses.push_back(xk::Access{
          xk::MemRegion::contiguous(&slots[i % kSlots], sizeof(double)),
          xk::AccessMode::kReadWrite, 0, xk::kNoArgOffset});
      t->accesses = &accesses.back();
      t->naccesses = 1;
      tasks.push_back(t);
      frame.push_task(t);
    };

    std::vector<std::thread> poppers;
    for (int p = 0; p < kPoppers; ++p) {
      poppers.emplace_back([&, p] {
        const unsigned home = static_cast<unsigned>(p) % kShards;
        xk::Rng rng(static_cast<std::uint64_t>(p) * 977 + 11);
        xk::Task* out[8];
        std::uint64_t hits = 0, misses = 0;
        while (terminated.load(std::memory_order_acquire) < kTasks) {
          rl.extend(home);
          // Mostly the home shard; sometimes the other rank, to force
          // cross-shard try_lock traffic both ways.
          const unsigned rank =
              rng.next() % 8 == 0 ? (home + 1) % kShards : home;
          const std::size_t got =
              rl.pop_ready_claimed_batch(out, 1 + rng.next() % 8, rank,
                                         &hits, &misses);
          if (got == 0) {
            std::this_thread::yield();
            continue;
          }
          popped.fetch_add(got, std::memory_order_relaxed);
          for (std::size_t k = 0; k < got; ++k) {
            // Run the claim like a thief: notify, then Term.
            rl.on_complete(out[k], rank);
            out[k]->state.store(xk::TaskState::kTerm,
                                std::memory_order_release);
            terminated.fetch_add(1, std::memory_order_acq_rel);
          }
        }
      });
    }

    // Owner: publish in waves; between waves, steal a few claims back via
    // the FIFO path and terminate them *silently* (no on_complete) — the
    // attach-race shape the watch sweep and the pop-path fold must absorb.
    xk::Rng rng(42);
    std::uint32_t published = 0;
    while (published < kTasks) {
      const std::uint32_t wave =
          std::min<std::uint32_t>(256, kTasks - published);
      for (std::uint32_t i = 0; i < wave; ++i) publish_one(published + i);
      published += wave;
      for (int grabs = 0; grabs < 8; ++grabs) {
        xk::Task* t = tasks[rng.next() % published];
        if (t->try_claim(xk::TaskState::kRunOwner)) {
          t->state.store(xk::TaskState::kTerm, std::memory_order_release);
          terminated.fetch_add(1, std::memory_order_acq_rel);
        }
      }
      std::this_thread::yield();
    }
    for (auto& th : poppers) th.join();

    ASSERT_EQ(terminated.load(), kTasks);
    // Every task was claimed exactly once: owner grabs + popper claims.
    ASSERT_LE(popped.load(), kTasks);
    for (xk::Task* t : tasks) {
      ASSERT_EQ(t->load_state(), xk::TaskState::kTerm);
    }
    // The per-shard live-depth gauges mirror the board exactly — they are
    // updated together under the same locks/exchanges, and any drift here
    // means a settle was lost or double-counted in the storm above.
    for (unsigned s = 0; s < kShards; ++s) {
      ASSERT_EQ(rl.shard_live_depth(s), board.ready_depth(s)) << "shard " << s;
    }
  }
  // The list is gone: every live gauge contribution must have been
  // returned (settled at completion, at pop, or by the destructor).
  EXPECT_EQ(board.ready_depth(0), 0);
  EXPECT_EQ(board.ready_depth(1), 0);
}

TEST(Stress, ReadyListSplitLockHammer) {
  readylist_lock_hammer(xk::RlLockMode::kSplit);
}

TEST(Stress, ReadyListGlobalLockHammer) {
  readylist_lock_hammer(xk::RlLockMode::kGlobal);
}

// Lock-free leg (PR 7): the same storm, but pops drain the MPMC rings, the
// completion path resolves nodes through the lock-free index, and the
// npred release chain runs without any shard lock. The 4096-task waves
// exceed kRingCapacity * kShards, so the side-deque spill path and its
// FIFO divert rule get hammered too — under TSan this is the primary gate
// for the ring's seq-counter release/acquire edges and the per-node edge
// spinlock.
TEST(Stress, ReadyListLockFreeHammer) {
  readylist_lock_hammer(xk::RlLockMode::kLockFree);
}

// End-to-end: dataflow chains on the asymmetric 1x2+1x6 shape with a tiny
// attach threshold, so real steal rounds attach, extend, pop and complete
// sharded ready lists across both domains — under both lock modes. (The CI
// topo matrix also runs this whole suite with XK_TOPO exported; the
// explicit Config fields here make the shape deterministic even without.)
void readylist_runtime_hammer(xk::RlLockMode mode) {
  xk::Config c = cfg(8);
  c.topo = "1x2+1x6";
  c.place = "scatter";
  c.ready_list_threshold = 8;
  c.rl_lock = mode;
  xk::Runtime rt(c);
  constexpr int kRows = 16, kSteps = 40, kSections = 3;
  std::vector<double> cells(kRows, 0.0);
  for (int round = 0; round < kSections; ++round) {
    rt.run([&] {
      for (int step = 0; step < kSteps; ++step) {
        for (int r = 0; r < kRows; ++r) {
          xk::spawn([](double* cell) { *cell += 1.0; },
                    xk::rw(&cells[static_cast<std::size_t>(r)]));
        }
      }
      xk::sync();
    });
  }
  for (double v : cells) ASSERT_EQ(v, 1.0 * kSteps * kSections);
}

TEST(Stress, ReadyListSplitLockAsymmetricTopo) {
  readylist_runtime_hammer(xk::RlLockMode::kSplit);
}

TEST(Stress, ReadyListGlobalLockAsymmetricTopo) {
  readylist_runtime_hammer(xk::RlLockMode::kGlobal);
}

TEST(Stress, ReadyListLockFreeAsymmetricTopo) {
  readylist_runtime_hammer(xk::RlLockMode::kLockFree);
}

// ---------------------------------------------------------------------------
// Adaptive steal protocol + occupancy/quiescence (PR 6): TSan hammer. Many
// tiny back-to-back sections maximize the hot edges of the new machinery —
// occupancy bits flipping on 0<->1 frame-depth transitions, the quiescence
// fold firing at every section close (a lost wake would hang a section past
// the Parker's 1.6 ms backstop; a double-fire or a data race is TSan's to
// catch), targeted join wakes racing final state stores, and steal-half
// replies racing the feedback flip. Runs both XK_STEAL_ADAPTIVE modes under
// flat, SMT and asymmetric shapes — the sanitizer CI job (which runs every
// label) and the topo-matrix stress leg are the real gates.
// ---------------------------------------------------------------------------

void adaptive_steal_hammer(bool adaptive, const char* topo) {
  xk::Config c = cfg(8);
  c.topo = topo;
  c.place = "scatter";  // spread the few workers across every domain
  c.steal_adaptive = adaptive;
  c.park_threshold = 18;  // park aggressively: the wake paths must carry it
  constexpr int kSections = 12, kRows = 8, kSteps = 12;
  xk::Runtime rt(c);
  std::vector<double> cells(kRows, 0.0);
  std::atomic<std::int64_t> forks{0};
  for (int round = 0; round < kSections; ++round) {
    rt.run([&] {
      // Fork-join burst: stolen joins + adaptive feedback on the replies.
      std::function<void(int)> tree = [&](int d) {
        if (d == 0) {
          forks.fetch_add(1);
          return;
        }
        xk::spawn([&tree, d] { tree(d - 1); });
        tree(d - 1);
        xk::sync();
      };
      tree(5);
      // Dataflow chains: ready-list pours under the adaptive take cap.
      for (int step = 0; step < kSteps; ++step) {
        for (int r = 0; r < kRows; ++r) {
          xk::spawn([](double* cell) { *cell += 1.0; },
                    xk::rw(&cells[static_cast<std::size_t>(r)]));
        }
      }
      xk::sync();
    });
  }
  EXPECT_EQ(forks.load(), kSections * 32);
  for (double v : cells) ASSERT_EQ(v, 1.0 * kSteps * kSections);
  // Every section must have closed through the quiescence fire, leaving
  // the board folded flat and nothing armed.
  EXPECT_EQ(rt.starvation().root_occupied(), 0);
  EXPECT_FALSE(rt.starvation().quiesce_armed());
}

TEST(Stress, AdaptiveStealFlatHammer) {
  adaptive_steal_hammer(/*adaptive=*/true, "1x8");
}

TEST(Stress, AdaptiveStealSmtTopoHammer) {
  adaptive_steal_hammer(/*adaptive=*/true, "4x2x2");
}

TEST(Stress, AdaptiveStealAsymmetricTopoHammer) {
  adaptive_steal_hammer(/*adaptive=*/true, "1x2+1x6");
}

TEST(Stress, FixedStealFlatHammer) {
  adaptive_steal_hammer(/*adaptive=*/false, "1x8");
}

TEST(Stress, FixedStealSmtTopoHammer) {
  adaptive_steal_hammer(/*adaptive=*/false, "4x2x2");
}

TEST(Stress, FixedStealAsymmetricTopoHammer) {
  adaptive_steal_hammer(/*adaptive=*/false, "1x2+1x6");
}

}  // namespace
