// xk_check invariant-registry tests. The suite compiles (and passes) in
// BOTH build flavors, asserting both halves of the contract:
//
//  * XK_CHECK=OFF — every hook is a stub: kEnabled is false, XK_EXPECT
//    does not evaluate its condition, the counters read zero.
//  * XK_CHECK=ON  — the registry metadata is coherent, count-mode records
//    violations per invariant (the negative test: a checker that cannot
//    fire is not a gate), abort-mode dies loudly, and a full spawn/sync +
//    service + foreach workout over every seam reports zero violations.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "check/check.hpp"
#include "core/xkaapi.hpp"

namespace {

TEST(CheckRegistry, TableIsCoherent) {
  EXPECT_GT(xk::check::kInvariantCount, 0u);
  for (std::size_t i = 0; i < xk::check::kInvariantCount; ++i) {
    const auto& info =
        xk::check::invariant_info(static_cast<xk::check::Inv>(i));
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.family, nullptr);
    EXPECT_NE(info.what, nullptr);
    EXPECT_GT(std::strlen(info.name), 0u);
    EXPECT_GT(std::strlen(info.what), 0u);
  }
}

TEST(CheckRegistry, FamiliesCoverEverySubsystem) {
  bool task = false, ready = false, service = false, section = false,
       ring = false;
  for (std::size_t i = 0; i < xk::check::kInvariantCount; ++i) {
    const char* fam =
        xk::check::invariant_info(static_cast<xk::check::Inv>(i)).family;
    task |= std::strcmp(fam, "task") == 0;
    ready |= std::strcmp(fam, "ready") == 0;
    service |= std::strcmp(fam, "service") == 0;
    section |= std::strcmp(fam, "section") == 0;
    ring |= std::strcmp(fam, "ring") == 0;
  }
  EXPECT_TRUE(task && ready && service && section && ring);
}

TEST(CheckStubs, DisabledBuildCompilesHooksToNothing) {
  if constexpr (!xk::check::kEnabled) {
    // XK_EXPECT must not evaluate its condition (assert-under-NDEBUG
    // contract): a side-effecting condition would change unchecked-build
    // behavior.
    int evaluated = 0;
    XK_EXPECT(ring_overflow, (++evaluated, true));
    XK_EXPECT(ring_overflow, (++evaluated, false));
    EXPECT_EQ(evaluated, 0);
    EXPECT_EQ(xk::check::violations_total(), 0u);
  } else {
    GTEST_SKIP() << "XK_CHECK=ON build: stubs not in play";
  }
}

TEST(CheckCountMode, SeededViolationIsRecorded) {
  if constexpr (xk::check::kEnabled) {
    // The negative test the acceptance criteria ask for: prove the
    // checker fires on a violation, per invariant, without aborting.
    xk::check::set_mode(xk::check::Mode::kCount);
    xk::check::reset_violations();
    XK_EXPECT(ring_overflow, false, 123u);
    XK_EXPECT(job_settle_twice, 1 + 1 == 3);
    XK_EXPECT(job_settle_twice, false);
    EXPECT_EQ(xk::check::violations(xk::check::Inv::ring_overflow), 1u);
    EXPECT_EQ(xk::check::violations(xk::check::Inv::job_settle_twice), 2u);
    EXPECT_EQ(xk::check::violations(xk::check::Inv::task_transition), 0u);
    EXPECT_EQ(xk::check::violations_total(), 3u);
    xk::check::reset_violations();
    EXPECT_EQ(xk::check::violations_total(), 0u);
  } else {
    GTEST_SKIP() << "requires -DXK_CHECK=ON";
  }
}

TEST(CheckCountMode, TrueConditionRecordsNothing) {
  if constexpr (xk::check::kEnabled) {
    xk::check::set_mode(xk::check::Mode::kCount);
    xk::check::reset_violations();
    XK_EXPECT(rl_accounting, 2 + 2 == 4);
    EXPECT_EQ(xk::check::violations_total(), 0u);
  } else {
    GTEST_SKIP() << "requires -DXK_CHECK=ON";
  }
}

TEST(CheckAbortModeDeathTest, SeededViolationAborts) {
  if constexpr (xk::check::kEnabled) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    xk::check::set_mode(xk::check::Mode::kAbort);
    EXPECT_DEATH(
        { XK_EXPECT(section_underflow, false, 7u); },
        "xk_check: VIOLATION section_underflow");
    // The parent process never executed the failing XK_EXPECT.
    EXPECT_EQ(xk::check::violations(xk::check::Inv::section_underflow), 0u);
  } else {
    GTEST_SKIP() << "requires -DXK_CHECK=ON";
  }
}

// Drive every hooked seam — spawn/sync plain stores, steal claims, the
// ready-list dataflow path (all three lock modes), ring pushes, service
// settles, overlapping sections with the drain-once rule — and require a
// spotless run. This is the in-tree miniature of the CI XK_CHECK=ON leg.
TEST(CheckWorkout, FullSeamSweepIsViolationFree) {
  if constexpr (xk::check::kEnabled) {
    xk::check::set_mode(xk::check::Mode::kCount);
    xk::check::reset_violations();
    for (const xk::RlLockMode mode :
         {xk::RlLockMode::kGlobal, xk::RlLockMode::kSplit,
          xk::RlLockMode::kLockFree}) {
      xk::Config cfg;
      cfg.nworkers = 4;
      cfg.rl_lock = mode;
      xk::Runtime rt(cfg);
      rt.run([&] {
        std::atomic<int> sum{0};
        for (int i = 0; i < 256; ++i) {
          xk::spawn([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
        }
        xk::sync();
        EXPECT_EQ(sum.load(std::memory_order_relaxed), 256);
      });
      xk::JobToken t = rt.submit([] {});
      t.wait();
      EXPECT_EQ(t.status(), xk::JobStatus::kDone);
    }
    EXPECT_EQ(xk::check::violations_total(), 0u)
        << "seam sweep tripped an invariant";
  } else {
    GTEST_SKIP() << "requires -DXK_CHECK=ON";
  }
}

}  // namespace
