// Service-mode concurrency hammer: N external submitter threads racing
// cancellation against execution while M client threads open and close
// overlapping sections on the same runtime — under all three ready-list
// lock modes. The sanitizer CI job (which runs every label) is the real
// gate: TSan must see clean happens-before edges across the job state
// machine (submit -> CAS -> finish -> token wait), the section-lifecycle
// lock (master slot claim, quiesce arm/fire, obs drain), and the WRR
// queue, with ASan guarding the job-body/shared_ptr lifetimes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/xkaapi.hpp"
#include "support/rng.hpp"

namespace {

constexpr int kSubmitters = 3;
constexpr int kJobsPerSubmitter = 200;
constexpr int kClients = 2;
constexpr int kClientSections = 8;
constexpr int kSpawnsPerSection = 64;

/// Polls service_stats() until every admitted job's accounting has settled
/// executor-side (cancel-after-queue settles only when the dispatcher pops
/// the corpse, so token-terminal does not imply stats-terminal).
bool wait_stats_settled(xk::Runtime& rt, std::chrono::seconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    const xk::ServiceStats s = rt.service_stats();
    if (s.completed + s.failed + s.cancelled == s.submitted &&
        s.queued == 0) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= until) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void service_hammer(xk::RlLockMode mode) {
  xk::Config c;
  c.nworkers = 4;
  c.sections = 3;  // dispatcher + two client masters, all overlapping
  c.bind_threads = false;
  c.rl_lock = mode;
  c.svc_queue_cap = 0;  // unbounded: every submit must turn terminal
  xk::Runtime rt(c);

  std::atomic<std::int64_t> job_work{0};
  std::atomic<std::int64_t> client_work{0};
  std::atomic<int> done_tokens{0};
  std::atomic<int> cancelled_tokens{0};
  std::atomic<int> failed_tokens{0};

  std::vector<std::thread> threads;

  // Submitters: every job either bumps the shared counter or throws; every
  // third token gets a cancel() racing the executor's claim, and every
  // seventh job cooperates with mid-flight cancellation requests.
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      xk::Rng rng(static_cast<std::uint64_t>(s) * 7919 + 13);
      for (int i = 0; i < kJobsPerSubmitter; ++i) {
        xk::SubmitOptions opts;
        opts.tenant = static_cast<unsigned>(rng.next() % 3);
        xk::JobToken tok;
        if (i % 11 == 5) {
          tok = rt.submit([] { throw std::runtime_error("hammer"); }, opts);
        } else if (i % 7 == 3) {
          tok = rt.submit(
              [&job_work](xk::JobContext& ctx) {
                for (int spin = 0; spin < 64; ++spin) {
                  if (ctx.cancel_requested()) break;
                  std::this_thread::yield();
                }
                job_work.fetch_add(1, std::memory_order_relaxed);
              },
              opts);
          tok.request_cancel();  // cooperative: job still finishes kDone
        } else {
          tok = rt.submit(
              [&job_work] {
                job_work.fetch_add(1, std::memory_order_relaxed);
              },
              opts);
        }
        if (i % 3 == 0) tok.cancel();  // race the executor's kRunning CAS
        if (i % 5 == 0) {
          tok.wait();
        } else if (i % 5 == 1) {
          tok.wait_for(std::chrono::microseconds(rng.next() % 200));
        }
        switch (tok.status()) {
          case xk::JobStatus::kDone: done_tokens.fetch_add(1); break;
          case xk::JobStatus::kCancelled: cancelled_tokens.fetch_add(1); break;
          case xk::JobStatus::kFailed: failed_tokens.fetch_add(1); break;
          default: break;  // still queued/running: settled below via wait()
        }
      }
    });
  }

  // Clients: overlapping begin()/end() sections with fork-join bursts, so
  // the dispatcher's sections and the client masters share the pool, the
  // StarvationBoard, and the parker wake paths the whole time.
  for (int cidx = 0; cidx < kClients; ++cidx) {
    threads.emplace_back([&] {
      for (int round = 0; round < kClientSections; ++round) {
        for (;;) {
          try {
            rt.begin();
            break;
          } catch (const std::logic_error&) {
            // All master slots busy: the other client + dispatcher hold
            // them. Back off and retry; slot release is the thing under
            // test here, not fairness.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
        for (int i = 0; i < kSpawnsPerSection; ++i) {
          xk::spawn([&client_work] {
            client_work.fetch_add(1, std::memory_order_relaxed);
          });
        }
        xk::sync();
        rt.end();
      }
    });
  }

  for (auto& t : threads) t.join();

  // Every admitted job must settle executor-side even though submitters
  // only waited on a sample of their tokens.
  ASSERT_TRUE(wait_stats_settled(rt, std::chrono::seconds(30)));

  const xk::ServiceStats stats = rt.service_stats();
  EXPECT_EQ(stats.submitted + stats.rejected,
            static_cast<std::uint64_t>(kSubmitters * kJobsPerSubmitter));
  EXPECT_EQ(stats.rejected, 0u);  // unbounded queue: admission never fails
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled,
            stats.submitted);
  // Done jobs and the shared counter agree: no job ran twice or vanished.
  EXPECT_EQ(job_work.load(), static_cast<std::int64_t>(stats.completed));
  EXPECT_EQ(client_work.load(),
            static_cast<std::int64_t>(kClients) * kClientSections *
                kSpawnsPerSection);
  // All sections close: the dispatcher holds its own open for an idle
  // grace (svc_idle_us) after the last job, so poll for the fold. Once
  // flat, nothing may stay armed and no gauge bleed from the overlap.
  const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (rt.starvation().root_occupied() != 0 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rt.starvation().root_occupied(), 0);
  EXPECT_FALSE(rt.starvation().quiesce_armed());
}

TEST(ServiceHammer, SplitLockSubmittersVsOverlappingSections) {
  service_hammer(xk::RlLockMode::kSplit);
}

TEST(ServiceHammer, GlobalLockSubmittersVsOverlappingSections) {
  service_hammer(xk::RlLockMode::kGlobal);
}

TEST(ServiceHammer, LockFreeSubmittersVsOverlappingSections) {
  service_hammer(xk::RlLockMode::kLockFree);
}

// Shutdown drain: destroy the runtime with hundreds of jobs still queued
// and none of their tokens waited. Admission is a promise — the stopping
// dispatcher must drain every admitted job before joining, every token
// must be terminal the moment ~Runtime returns, and the tokens (which
// outlive the runtime via their shared state) must stay safe to query and
// wait on afterwards (ASan's gate).
TEST(ServiceHammer, ShutdownDrainsQueuedJobsTokensOutliveRuntime) {
  for (int round = 0; round < 4; ++round) {
    constexpr int kJobs = 300;
    std::atomic<int> ran{0};
    std::vector<xk::JobToken> tokens;
    tokens.reserve(kJobs);
    {
      xk::Config c;
      c.nworkers = 2;
      c.bind_threads = false;
      xk::Runtime rt(c);
      for (int i = 0; i < kJobs; ++i) {
        tokens.push_back(rt.submit([&ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      // No waits: ~Runtime races the dispatcher mid-burst.
    }
    int done = 0;
    for (xk::JobToken& tok : tokens) {
      tok.wait();  // must return immediately: state is already terminal
      ASSERT_NE(tok.status(), xk::JobStatus::kQueued);
      ASSERT_NE(tok.status(), xk::JobStatus::kRunning);
      if (tok.status() == xk::JobStatus::kDone) ++done;
    }
    EXPECT_EQ(done, kJobs);
    EXPECT_EQ(ran.load(), kJobs);
  }
}

}  // namespace
