// Adaptive task model (§II-D): custom splitters, the single-concurrent-
// splitter guarantee, disarming, heap-task lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/xkaapi.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

// A hand-written adaptive task: consumes a shared atomic counter range and
// publishes a splitter that hands half the remaining range to a thief.
struct CounterWork {
  std::atomic<std::int64_t> next{0};
  std::int64_t end = 0;
  std::atomic<std::int64_t> done{0};
  std::atomic<int> splitter_concurrency{0};
  std::atomic<int> max_splitter_concurrency{0};
  std::atomic<int> outstanding{0};
};

void counter_loop(CounterWork& w) {
  for (;;) {
    const std::int64_t i = w.next.fetch_add(1, std::memory_order_acq_rel);
    if (i >= w.end) break;
    w.done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void counter_splitter(void* state, xk::SplitContext& sc) {
  auto* w = static_cast<CounterWork*>(state);
  // Track the paper's invariant: at most one splitter runs concurrently on
  // a given task (the victim's steal mutex enforces it).
  const int conc = w->splitter_concurrency.fetch_add(1) + 1;
  int prev_max = w->max_splitter_concurrency.load();
  while (conc > prev_max &&
         !w->max_splitter_concurrency.compare_exchange_weak(prev_max, conc)) {
  }
  // Hand each requester a worker that drains the same shared counter (the
  // work itself is structurally splittable).
  while (sc.size() > 0) {
    w->outstanding.fetch_add(1);
    sc.reply([w](xk::Worker&) {
      counter_loop(*w);
      w->outstanding.fetch_sub(1);
    });
  }
  w->splitter_concurrency.fetch_sub(1);
}

TEST(Adaptive, CustomSplitterCompletesAllWork) {
  xk::Runtime rt(cfg(4));
  CounterWork w;
  w.end = 200000;
  rt.run([&] {
    xk::Worker* self = xk::this_worker();
    auto* t = new (self->frame_alloc(sizeof(xk::Task), alignof(xk::Task)))
        xk::Task();
    t->body = [](void* a, xk::Worker&) {
      counter_loop(*static_cast<CounterWork*>(a));
    };
    t->args = &w;
    xk::arm_splitter(*t, &counter_splitter, &w);
    self->push_task(t);
    xk::sync();
    self->steal_until([&] {
      return w.done.load() == w.end && w.outstanding.load() == 0;
    });
    self->scan_barrier();
  });
  EXPECT_EQ(w.done.load(), w.end);
  // The runtime must never run two splitters of one task concurrently.
  EXPECT_LE(w.max_splitter_concurrency.load(), 1);
}

TEST(Adaptive, DisarmedTaskIsNotSplit) {
  xk::Runtime rt(cfg(4));
  std::atomic<int> splits{0};
  CounterWork w;
  w.end = 100000;
  rt.run([&] {
    xk::Worker* self = xk::this_worker();
    auto* t = new (self->frame_alloc(sizeof(xk::Task), alignof(xk::Task)))
        xk::Task();
    struct Ctx {
      CounterWork* w;
      std::atomic<int>* splits;
      xk::Task* self_task;
    };
    auto* ctx = static_cast<Ctx*>(
        self->frame_alloc(sizeof(Ctx), alignof(Ctx)));
    ctx->w = &w;
    ctx->splits = &splits;
    ctx->self_task = t;
    t->body = [](void* a, xk::Worker&) {
      auto* c = static_cast<Ctx*>(a);
      // Disarm before doing the work: no splitter call may happen after
      // the scan barrier below.
      c->self_task->splitter_armed.store(false, std::memory_order_release);
      counter_loop(*c->w);
    };
    t->args = ctx;
    xk::arm_splitter(
        *t,
        [](void* a, xk::SplitContext&) {
          static_cast<Ctx*>(a)->splits->fetch_add(1);
        },
        ctx);
    // Keep it disarmed from the start for determinism of this test.
    t->splitter_armed.store(false, std::memory_order_release);
    self->push_task(t);
    xk::sync();
  });
  EXPECT_EQ(w.done.load(), w.end);
  EXPECT_EQ(splits.load(), 0);
}

TEST(Adaptive, HeapTaskLifecycle) {
  // make_heap_task boxes run and are deleted by the hosting frame; the
  // functor's destructor must run exactly once.
  static std::atomic<int> live{0};
  struct Probe {
    bool armed = true;
    Probe() { live.fetch_add(1); }
    Probe(Probe&& o) noexcept {
      live.fetch_add(1);
      o.armed = false;
    }
    ~Probe() { live.fetch_sub(1); }
    void operator()(xk::Worker&) {}
  };
  {
    xk::Task* t = xk::make_heap_task(Probe{});
    EXPECT_GE(live.load(), 1);
    t->heap_deleter(t->heap_box);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Adaptive, SplitContextRespectsCapacity) {
  xk::StealRequest slots[2];
  xk::StealRequest* ptrs[2] = {&slots[0], &slots[1]};
  for (auto& s : slots) s.status.store(xk::StealRequest::kPosted);
  xk::SplitContext sc(ptrs, 2);
  EXPECT_EQ(sc.size(), 2u);
  EXPECT_TRUE(sc.reply([](xk::Worker&) {}));
  EXPECT_EQ(sc.size(), 1u);
  EXPECT_TRUE(sc.reply([](xk::Worker&) {}));
  EXPECT_EQ(sc.size(), 0u);
  EXPECT_FALSE(sc.reply([](xk::Worker&) {}));
  EXPECT_EQ(sc.replied(), 2u);
  // Clean up the two heap tasks we never executed.
  for (auto& s : slots) {
    ASSERT_EQ(s.status.load(), xk::StealRequest::kServed);
    ASSERT_EQ(s.nreplies, 1u);
    s.reply[0]->heap_deleter(s.reply[0]->heap_box);
  }
}

}  // namespace
