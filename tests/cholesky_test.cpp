// Tiled Cholesky: all four scheduling variants must agree with each other
// and reconstruct the input (residual check) across size/tile sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "core/xkaapi.hpp"
#include "linalg/cholesky.hpp"
#include "quark/quark.h"

namespace {

using namespace xk::linalg;

struct CholParams {
  int n;
  int nb;
  unsigned workers;
};

class TiledCholesky : public ::testing::TestWithParam<CholParams> {};

constexpr double kTol = 1e-10;

TEST_P(TiledCholesky, SequentialResidual) {
  const auto p = GetParam();
  TiledMatrix a(p.n, p.nb);
  a.fill_spd(42);
  const auto dense0 = a.to_dense_symmetric();
  ASSERT_EQ(cholesky_sequential(a), 0);
  EXPECT_LT(cholesky_residual(a, dense0), kTol);
}

TEST_P(TiledCholesky, XkaapiResidual) {
  const auto p = GetParam();
  xk::Config cfg;
  cfg.nworkers = p.workers;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);
  TiledMatrix a(p.n, p.nb);
  a.fill_spd(42);
  const auto dense0 = a.to_dense_symmetric();
  ASSERT_EQ(cholesky_xkaapi(a, rt), 0);
  EXPECT_LT(cholesky_residual(a, dense0), kTol);
}

TEST_P(TiledCholesky, QuarkCentralResidual) {
  const auto p = GetParam();
  Quark* q = QUARK_New_Backend(static_cast<int>(p.workers),
                               QUARK_BACKEND_CENTRAL);
  TiledMatrix a(p.n, p.nb);
  a.fill_spd(42);
  const auto dense0 = a.to_dense_symmetric();
  ASSERT_EQ(cholesky_quark(a, q), 0);
  QUARK_Delete(q);
  EXPECT_LT(cholesky_residual(a, dense0), kTol);
}

TEST_P(TiledCholesky, QuarkXkaapiResidual) {
  const auto p = GetParam();
  Quark* q = QUARK_New_Backend(static_cast<int>(p.workers),
                               QUARK_BACKEND_XKAAPI);
  TiledMatrix a(p.n, p.nb);
  a.fill_spd(42);
  const auto dense0 = a.to_dense_symmetric();
  ASSERT_EQ(cholesky_quark(a, q), 0);
  QUARK_Delete(q);
  EXPECT_LT(cholesky_residual(a, dense0), kTol);
}

TEST_P(TiledCholesky, StaticResidual) {
  const auto p = GetParam();
  TiledMatrix a(p.n, p.nb);
  a.fill_spd(42);
  const auto dense0 = a.to_dense_symmetric();
  ASSERT_EQ(cholesky_static(a, p.workers), 0);
  EXPECT_LT(cholesky_residual(a, dense0), kTol);
}

TEST_P(TiledCholesky, VariantsBitwiseAgree) {
  // Same kernel sequence per tile => identical floating-point results.
  const auto p = GetParam();
  TiledMatrix a_seq(p.n, p.nb), a_par(p.n, p.nb);
  a_seq.fill_spd(7);
  a_par.fill_spd(7);
  ASSERT_EQ(cholesky_sequential(a_seq), 0);
  xk::Config cfg;
  cfg.nworkers = p.workers;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);
  ASSERT_EQ(cholesky_xkaapi(a_par, rt), 0);
  for (int j = 0; j < p.n; ++j) {
    for (int i = j; i < p.n; ++i) {
      ASSERT_EQ(a_seq.get(i, j), a_par.get(i, j))
          << "tile mismatch at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TiledCholesky,
    ::testing::Values(CholParams{16, 4, 2}, CholParams{64, 16, 2},
                      CholParams{96, 32, 4}, CholParams{100, 32, 4},
                      CholParams{128, 16, 4}, CholParams{200, 64, 3},
                      CholParams{256, 32, 8}));

TEST(TiledCholesky, NonSpdDetected) {
  TiledMatrix a(32, 8);
  a.fill_spd(1);
  a.set(5, 5, -100.0);  // break positive definiteness
  EXPECT_NE(cholesky_sequential(a), 0);
}

TEST(TiledCholesky, FlopsFormula) {
  EXPECT_NEAR(cholesky_flops(1), 1.0, 1e-12);
  EXPECT_GT(cholesky_flops(1000), 1e9 / 3.0);
}

TEST(TiledMatrixTest, GetSetRoundTrip) {
  TiledMatrix a(50, 16);
  a.set(49, 3, 2.5);
  EXPECT_DOUBLE_EQ(a.get(49, 3), 2.5);
  EXPECT_EQ(a.nt(), 4);
  EXPECT_EQ(a.tile_elems(), 256u);
}

TEST(TiledMatrixTest, SpdFillIsSymmetric) {
  TiledMatrix a(40, 8);
  a.fill_spd(3);
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 40; ++j) {
      ASSERT_EQ(a.get(i, j), a.get(j, i));
    }
  }
}

}  // namespace
