// Dataflow task tests: RAW/WAR/WAW ordering under concurrency, reductions,
// renaming, random-DAG equivalence with sequential execution, ready-list
// behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/xkaapi.hpp"
#include "support/rng.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

// Busy work to widen race windows.
void spin(int iters) {
  volatile int x = 0;
  for (int i = 0; i < iters; ++i) x = x + i;
}

TEST(Dataflow, RawChainExecutesInOrder) {
  xk::Runtime rt(cfg(4));
  for (int rep = 0; rep < 20; ++rep) {
    int value = 0;
    rt.run([&] {
      for (int i = 0; i < 50; ++i) {
        xk::spawn(
            [](int* v) {
              spin(200);
              *v = *v + 1;
            },
            xk::rw(&value));
      }
      xk::sync();
    });
    EXPECT_EQ(value, 50);
  }
}

TEST(Dataflow, ProducerConsumerRaw) {
  xk::Runtime rt(cfg(4));
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> a(64, 0.0), b(64, 0.0);
    rt.run([&] {
      xk::spawn(
          [](double* out) {
            spin(500);
            for (int i = 0; i < 64; ++i) out[i] = i;
          },
          xk::write(a.data(), a.size()));
      xk::spawn(
          [](const double* in, double* out) {
            for (int i = 0; i < 64; ++i) out[i] = 2 * in[i];
          },
          xk::read(a.data(), a.size()), xk::write(b.data(), b.size()));
      xk::sync();
    });
    for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(b[i], 2.0 * i);
  }
}

TEST(Dataflow, IndependentWritersRunAnyOrder) {
  xk::Runtime rt(cfg(4));
  std::vector<int> data(256, 0);
  rt.run([&] {
    for (int i = 0; i < 256; ++i) {
      xk::spawn([](int* slot, int v) { *slot = v; }, xk::write(&data[i]), i);
    }
    xk::sync();
  });
  for (int i = 0; i < 256; ++i) EXPECT_EQ(data[i], i);
}

TEST(Dataflow, DiamondDependency) {
  // a -> (b, c) -> d ; b and c may run concurrently, d sees both.
  xk::Runtime rt(cfg(4));
  for (int rep = 0; rep < 50; ++rep) {
    int a = 0, b = 0, c = 0, d = 0;
    rt.run([&] {
      xk::spawn(
          [](int* pa) {
            spin(300);
            *pa = 1;
          },
          xk::write(&a));
      xk::spawn(
          [](const int* pa, int* pb) {
            spin(100);
            *pb = *pa + 10;
          },
          xk::read(&a), xk::write(&b));
      xk::spawn(
          [](const int* pa, int* pc) { *pc = *pa + 20; }, xk::read(&a),
          xk::write(&c));
      xk::spawn(
          [](const int* pb, const int* pc, int* pd) { *pd = *pb + *pc; },
          xk::read(&b), xk::read(&c), xk::write(&d));
      xk::sync();
    });
    EXPECT_EQ(d, 32);
  }
}

TEST(Dataflow, CumulativeWritesAccumulateExactly) {
  xk::Runtime rt(cfg(4));
  long total = 0;
  rt.run([&] {
    for (int i = 0; i < 200; ++i) {
      // CW tasks are mutually independent; the runtime serializes bodies.
      xk::spawn([](long* t, int v) { *t += v; }, xk::cw(&total), i);
    }
    // A reader after the CW group must see the full sum (CW vs R conflicts).
    long snapshot = -1;
    xk::spawn([](const long* t, long* s) { *s = *t; }, xk::read(&total),
              xk::write(&snapshot));
    xk::sync();
    EXPECT_EQ(snapshot, 19900);
  });
  EXPECT_EQ(total, 19900);
}

TEST(Dataflow, ScratchDoesNotOrder) {
  xk::Runtime rt(cfg(2));
  std::vector<double> tmp(32);
  std::atomic<int> ran{0};
  rt.run([&] {
    for (int i = 0; i < 16; ++i) {
      xk::spawn(
          [&ran](double* t) {
            t[0] = 1.0;
            ran.fetch_add(1);
          },
          xk::scratch(tmp.data(), tmp.size()));
    }
    xk::sync();
  });
  EXPECT_EQ(ran.load(), 16);
}

// ---------------------------------------------------------------------------
// Property test: random dataflow DAGs over a small variable set must produce
// exactly the sequential result, for any worker count / feature flags.
// ---------------------------------------------------------------------------

struct DagParams {
  unsigned workers;
  bool renaming;
  std::size_t readylist_threshold;
};

class RandomDagTest : public ::testing::TestWithParam<DagParams> {};

// One step: out = f(in1, in2) with a cheap deterministic mix.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a * 0x9e3779b97f4a7c15ULL + (b ^ 0xda942042e4dd58b5ULL);
  z ^= z >> 29;
  return z * 0xbf58476d1ce4e5b9ULL;
}

TEST_P(RandomDagTest, MatchesSequentialExecution) {
  const DagParams p = GetParam();
  xk::Config c = cfg(p.workers);
  c.renaming = p.renaming;
  c.ready_list_threshold = p.readylist_threshold;

  constexpr int kVars = 12;
  constexpr int kTasks = 300;
  xk::Rng rng(2024);

  struct Step {
    int in1, in2, out;
  };
  std::vector<Step> steps;
  steps.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    Step s{};
    s.in1 = static_cast<int>(rng.next_below(kVars));
    s.in2 = static_cast<int>(rng.next_below(kVars));
    s.out = static_cast<int>(rng.next_below(kVars));
    steps.push_back(s);
  }

  // Sequential reference.
  std::vector<std::uint64_t> ref(kVars);
  std::iota(ref.begin(), ref.end(), 1);
  for (const Step& s : steps) {
    ref[static_cast<std::size_t>(s.out)] =
        mix(ref[static_cast<std::size_t>(s.in1)],
            ref[static_cast<std::size_t>(s.in2)]);
  }

  // Parallel dataflow execution.
  std::vector<std::uint64_t> vars(kVars);
  std::iota(vars.begin(), vars.end(), 1);
  {
    xk::Runtime rt(c);
    rt.run([&] {
      for (const Step& s : steps) {
        // NOTE: out may alias in1/in2; declare out as rw to keep the body
        // read of inputs ordered even when renaming is on (renaming applies
        // to kWrite only).
        xk::spawn(
            [](const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* o) {
              spin(50);
              *o = mix(*a, *b);
            },
            xk::read(&vars[static_cast<std::size_t>(s.in1)]),
            xk::read(&vars[static_cast<std::size_t>(s.in2)]),
            xk::rw(&vars[static_cast<std::size_t>(s.out)]));
      }
      xk::sync();
    });
  }
  EXPECT_EQ(vars, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDagTest,
    ::testing::Values(DagParams{1, false, 256}, DagParams{2, false, 256},
                      DagParams{4, false, 256}, DagParams{4, true, 256},
                      DagParams{4, false, 8},   // force ready-list attach
                      DagParams{8, true, 8}));

// ---------------------------------------------------------------------------
// Renaming: WAW chains over the same variable must still produce the last
// value, and renaming must actually trigger.
// ---------------------------------------------------------------------------

TEST(Renaming, WawChainCorrectUnderRenaming) {
  xk::Config c = cfg(4);
  c.renaming = true;
  xk::Runtime rt(c);
  rt.reset_stats();
  int slot = -1;
  int observed = -1;
  rt.run([&] {
    for (int i = 0; i < 64; ++i) {
      xk::spawn(
          [](int* s, int v) {
            spin(200);
            *s = v;
          },
          xk::write(&slot), i);
    }
    xk::spawn([](const int* s, int* o) { *o = *s; }, xk::read(&slot),
              xk::write(&observed));
    xk::sync();
  });
  EXPECT_EQ(slot, 63);      // program order: last writer wins
  EXPECT_EQ(observed, 63);  // reader is ordered after all writers
}

TEST(Dataflow, ReadyListAttachesOnBlockedScans) {
  xk::Config c = cfg(4);
  c.ready_list_threshold = 4;  // attach quickly
  xk::Runtime rt(c);
  rt.reset_stats();
  int chain = 0;
  rt.run([&] {
    for (int i = 0; i < 400; ++i) {
      xk::spawn(
          [](int* v) {
            spin(100);
            *v = *v + 1;
          },
          xk::rw(&chain));
    }
    xk::sync();
  });
  EXPECT_EQ(chain, 400);
  // With several thieves hammering a serial chain the accelerating structure
  // should engage (not guaranteed on a 1-core box, so this is a soft check).
  SUCCEED() << "readylist attaches=" << rt.stats_snapshot().readylist_attach;
}

TEST(Dataflow, MixedForkJoinAndDataflow) {
  // The multi-paradigm claim: recursive fork-join children spawning dataflow
  // tasks on disjoint slots, all under one runtime.
  xk::Runtime rt(cfg(4));
  std::vector<long> slots(64, 0);
  std::function<void(int, int)> recurse = [&](int lo, int hi) {
    if (hi - lo <= 8) {
      for (int i = lo; i < hi; ++i) {
        xk::spawn([](long* s) { *s += 7; }, xk::rw(&slots[i]));
      }
      xk::sync();
      return;
    }
    const int mid = (lo + hi) / 2;
    xk::spawn([&recurse, lo, mid] { recurse(lo, mid); });
    xk::spawn([&recurse, mid, hi] { recurse(mid, hi); });
    xk::sync();
  };
  rt.run([&] {
    recurse(0, 64);
    xk::sync();
  });
  for (long v : slots) EXPECT_EQ(v, 7);
}

}  // namespace
