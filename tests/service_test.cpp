// Service-mode tests: the submit/token lifecycle (completion waiting,
// cancellation before and during execution, result and exception
// propagation, admission rejection), overlapping sections, and the
// deterministic seeded admission/priority battery over the tenant
// scheduler. Everything here runs in ctest tier-1 (label "unit"); the
// oversubscribed racing variants live in service_hammer.cpp.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/xkaapi.hpp"

namespace {

xk::Config cfg(unsigned nworkers, unsigned sections = 2) {
  xk::Config c;
  c.nworkers = nworkers;
  c.sections = sections;
  c.bind_threads = false;  // CI boxes are small; don't fight the scheduler
  return c;
}

}  // namespace

// ---- token lifecycle ------------------------------------------------------

TEST(Service, SubmitFromNonWorkerThreadCompletes) {
  xk::Runtime rt(cfg(2));
  std::atomic<int> ran{0};
  xk::JobToken t = rt.submit([&] { ran.fetch_add(1); });
  ASSERT_TRUE(t.valid());
  t.wait();
  EXPECT_EQ(t.status(), xk::JobStatus::kDone);
  EXPECT_EQ(ran.load(), 1);
}

TEST(Service, ResultPropagatesThroughCapture) {
  xk::Runtime rt(cfg(2));
  std::atomic<std::uint64_t> result{0};
  xk::JobToken t = rt.submit([&] {
    std::uint64_t acc = 0;
    for (int i = 1; i <= 100; ++i) acc += static_cast<std::uint64_t>(i);
    result.store(acc);
  });
  t.get();  // kDone => no throw
  EXPECT_EQ(result.load(), 5050u);
}

TEST(Service, ManyJobsAllComplete) {
  xk::Runtime rt(cfg(4));
  constexpr int kJobs = 500;
  std::atomic<int> ran{0};
  std::vector<xk::JobToken> tokens;
  tokens.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    tokens.push_back(rt.submit([&] { ran.fetch_add(1); }));
  }
  for (auto& t : tokens) t.wait();
  EXPECT_EQ(ran.load(), kJobs);
  const xk::ServiceStats s = rt.service_stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(s.rejected, 0u);
}

TEST(Service, SubmittersOnManyExternalThreads) {
  xk::Runtime rt(cfg(2));
  constexpr int kThreads = 4, kPer = 50;
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int s = 0; s < kThreads; ++s) {
    threads.emplace_back([&] {
      std::vector<xk::JobToken> tokens;
      tokens.reserve(kPer);
      for (int i = 0; i < kPer; ++i) {
        tokens.push_back(rt.submit([&] { ran.fetch_add(1); }));
      }
      for (auto& t : tokens) t.wait();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ran.load(), kThreads * kPer);
}

TEST(Service, ExceptionPropagatesThroughGet) {
  xk::Runtime rt(cfg(2));
  xk::JobToken t =
      rt.submit([] { throw std::runtime_error("job body failed"); });
  t.wait();
  EXPECT_EQ(t.status(), xk::JobStatus::kFailed);
  EXPECT_THROW(t.get(), std::runtime_error);
  // A failed job must not leak its exception into the dispatcher's
  // section: later jobs run normally.
  xk::JobToken ok = rt.submit([] {});
  ok.get();
  EXPECT_EQ(ok.status(), xk::JobStatus::kDone);
}

TEST(Service, WaitForTimesOutThenCompletes) {
  xk::Runtime rt(cfg(2));
  std::atomic<bool> release{false};
  xk::JobToken t = rt.submit([&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  EXPECT_FALSE(t.wait_for(std::chrono::milliseconds(20)));
  release.store(true, std::memory_order_release);
  EXPECT_TRUE(t.wait_for(std::chrono::seconds(30)));
  EXPECT_EQ(t.status(), xk::JobStatus::kDone);
}

// ---- cancellation ---------------------------------------------------------

TEST(Service, CancelBeforeExecutionWins) {
  // One pool worker and a blocking first job: the dispatcher executes
  // inline (solo mode), so the jobs queued behind the blocker provably
  // have not started when cancel() lands.
  xk::Runtime rt(cfg(1));
  std::atomic<bool> entered{false}, release{false};
  xk::JobToken blocker = rt.submit([&] {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();
  std::atomic<int> ran{0};
  xk::JobToken victim = rt.submit([&] { ran.fetch_add(1); });
  EXPECT_TRUE(victim.cancel());
  EXPECT_EQ(victim.status(), xk::JobStatus::kCancelled);
  victim.wait();  // already terminal: returns immediately
  EXPECT_FALSE(victim.cancel());  // second cancel cannot win again
  release.store(true, std::memory_order_release);
  blocker.wait();
  EXPECT_EQ(blocker.status(), xk::JobStatus::kDone);
  EXPECT_EQ(ran.load(), 0);  // the cancelled body never ran
}

TEST(Service, CancelAfterCompletionLoses) {
  xk::Runtime rt(cfg(2));
  xk::JobToken t = rt.submit([] {});
  t.wait();
  EXPECT_FALSE(t.cancel());
  EXPECT_EQ(t.status(), xk::JobStatus::kDone);
}

TEST(Service, CooperativeCancelDuringExecution) {
  xk::Runtime rt(cfg(2));
  std::atomic<bool> running{false};
  std::atomic<bool> observed{false};
  xk::JobToken t = rt.submit([&](xk::JobContext& ctx) {
    running.store(true, std::memory_order_release);
    while (!ctx.cancel_requested()) std::this_thread::yield();
    observed.store(true, std::memory_order_release);
  });
  while (!running.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_FALSE(t.cancel());  // too late to stop it starting...
  t.wait();                  // ...but the body sees the request and returns
  EXPECT_TRUE(observed.load());
  EXPECT_EQ(t.status(), xk::JobStatus::kDone);
  EXPECT_TRUE(t.cancel_requested());
}

// ---- admission control ----------------------------------------------------

TEST(Service, FullLaneRejectsAtTheDoor) {
  xk::Config c = cfg(1);
  c.svc_queue_cap = 4;
  xk::Runtime rt(c);
  std::atomic<bool> entered{false}, release{false};
  xk::JobToken blocker = rt.submit([&] {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();
  // The blocker already left the queue; fill the lane to its cap, then
  // overflow it.
  std::vector<xk::JobToken> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(rt.submit([] {}));
  xk::JobToken over = rt.submit([] {});
  EXPECT_EQ(over.status(), xk::JobStatus::kRejected);
  EXPECT_TRUE(over.done());
  over.wait();  // terminal: returns immediately
  EXPECT_THROW(over.get(), std::runtime_error);
  // Other tenants' lanes are unaffected by tenant 0's backlog.
  xk::SubmitOptions other;
  other.tenant = 1;
  xk::JobToken t1 = rt.submit([] {}, other);
  EXPECT_NE(t1.status(), xk::JobStatus::kRejected);
  release.store(true, std::memory_order_release);
  blocker.wait();
  for (auto& t : queued) t.wait();
  t1.wait();
  const xk::ServiceStats s = rt.service_stats();
  EXPECT_GE(s.rejected, 1u);
  EXPECT_LE(s.max_queued, 5u);  // cap + one same-batch tenant-1 job
}

// ---- overlapping sections -------------------------------------------------

TEST(Service, OverlappingClientSections) {
  // Two external threads hold begin()/end() sections open concurrently;
  // both spawn real work. With sections = 2 both must be admitted.
  xk::Runtime rt(cfg(2, /*sections=*/2));
  std::atomic<int> phase{0};
  std::atomic<std::uint64_t> sum{0};
  std::thread a([&] {
    rt.begin();
    phase.fetch_add(1);
    while (phase.load() < 2) std::this_thread::yield();  // b's section open
    std::uint64_t local = 0;
    for (int i = 0; i < 64; ++i) {
      xk::spawn([&local, i] { local += static_cast<std::uint64_t>(i); });
    }
    xk::sync();
    sum.fetch_add(local);
    rt.end();
  });
  std::thread b([&] {
    while (phase.load() < 1) std::this_thread::yield();  // a's section open
    rt.begin();
    phase.fetch_add(1);
    std::uint64_t local = 0;
    for (int i = 0; i < 64; ++i) {
      xk::spawn([&local, i] { local += static_cast<std::uint64_t>(i); });
    }
    xk::sync();
    sum.fetch_add(local);
    rt.end();
  });
  a.join();
  b.join();
  EXPECT_EQ(sum.load(), 2u * (64u * 63u / 2u));
  EXPECT_FALSE(rt.in_section());
  // Quiescence settled exactly once for the whole overlapping batch.
  EXPECT_EQ(rt.starvation().root_occupied(), 0);
  EXPECT_FALSE(rt.starvation().quiesce_armed());
}

TEST(Service, SectionSlotExhaustionThrows) {
  xk::Runtime rt(cfg(2, /*sections=*/1));
  rt.begin();
  std::thread t([&] {
    EXPECT_THROW(rt.begin(), std::logic_error);  // the only slot is busy
  });
  t.join();
  rt.end();
  // Slot released: a fresh section opens fine.
  rt.run([] {});
}

TEST(Service, SubmitWhileClientSectionOpen) {
  // submit() keeps working while a client holds a section open — the
  // dispatcher claims the other master slot and both proceed.
  xk::Runtime rt(cfg(2, /*sections=*/2));
  rt.begin();
  std::atomic<int> ran{0};
  std::vector<xk::JobToken> tokens;
  for (int i = 0; i < 32; ++i) {
    tokens.push_back(rt.submit([&] { ran.fetch_add(1); }));
  }
  for (auto& t : tokens) t.wait();
  EXPECT_EQ(ran.load(), 32);
  xk::spawn([] {});
  xk::sync();
  rt.end();
}

TEST(Service, NestedBeginOnSameThreadStillThrows) {
  // Overlap is per-thread-slot, not nesting: a bound thread cannot open a
  // second section even when free slots remain.
  xk::Runtime rt(cfg(2, /*sections=*/4));
  rt.begin();
  EXPECT_THROW(rt.begin(), std::logic_error);
  rt.end();
}

// ---- deterministic seeded admission + priority battery --------------------

TEST(ServicePriority, SmoothWrrPickSequenceIsDeterministic) {
  // Pure queue-engine replay: weights 4/2/1, all lanes kept non-empty.
  // Smooth WRR must give tenant 0 four of every seven picks, tenant 1
  // two, tenant 2 one — and the exact sequence must be reproducible.
  xk::ServiceQueue q(/*cap=*/0);
  q.set_weight(0, 4);
  q.set_weight(1, 2);
  q.set_weight(2, 1);
  auto mk = [](unsigned tenant) {
    auto st = std::make_shared<xk::detail::JobState>();
    st->tenant = tenant;
    return st;
  };
  for (int round = 0; round < 7; ++round) {
    for (unsigned t = 0; t < 3; ++t) q.push(mk(t));
  }
  std::vector<unsigned> picks;
  while (auto job = q.pop()) picks.push_back(job->tenant);
  ASSERT_EQ(picks.size(), 21u);
  // A full drain always returns 7 per tenant — the weights shape the
  // *order*. While every lane is backlogged (the first weight-sum picks),
  // each weight-7 cycle must hand tenant 0 four slots, tenant 1 two,
  // tenant 2 one — which also proves no tenant waits out a full cycle.
  unsigned first7[3] = {0, 0, 0};
  for (std::size_t i = 0; i < 7; ++i) first7[picks[i]]++;
  EXPECT_EQ(first7[0], 4u);
  EXPECT_EQ(first7[1], 2u);
  EXPECT_EQ(first7[2], 1u);
  unsigned count[3] = {0, 0, 0};
  for (std::size_t i = 0; i < picks.size(); ++i) count[picks[i]]++;
  EXPECT_EQ(count[0], 7u);
  EXPECT_EQ(count[1], 7u);
  EXPECT_EQ(count[2], 7u);
  // Determinism: a second identical replay yields the identical sequence.
  xk::ServiceQueue q2(0);
  q2.set_weight(0, 4);
  q2.set_weight(1, 2);
  q2.set_weight(2, 1);
  for (int round = 0; round < 7; ++round) {
    for (unsigned t = 0; t < 3; ++t) q2.push(mk(t));
  }
  std::vector<unsigned> picks2;
  while (auto job = q2.pop()) picks2.push_back(job->tenant);
  EXPECT_EQ(picks, picks2);
}

TEST(ServicePriority, SeededStressNoStarvationBoundedQueues) {
  // End-to-end seeded stress: three tenants with weights 4/2/1 and a
  // bounded lane cap, a fixed-seed submission storm, and the accounting
  // identity submitted == completed + cancelled + rejected (+ failed)
  // checked at the end. The low-priority tenant must finish work (no
  // starvation) and no lane may ever exceed its cap.
  xk::Config c = cfg(2);
  c.svc_queue_cap = 64;
  c.svc_weights = "4,2,1";
  xk::Runtime rt(c);
  std::mt19937 rng(0xC0FFEEu);  // fixed seed: deterministic tenant pattern
  constexpr int kJobs = 900;
  std::atomic<std::uint64_t> ran_per_tenant[3] = {{0}, {0}, {0}};
  std::vector<xk::JobToken> tokens;
  std::vector<unsigned> tenants;
  tokens.reserve(kJobs);
  tenants.reserve(kJobs);
  std::uint64_t accepted = 0, rejected = 0, cancel_wins = 0;
  for (int i = 0; i < kJobs; ++i) {
    const unsigned tenant = rng() % 3;
    xk::SubmitOptions opts;
    opts.tenant = tenant;
    xk::JobToken t = rt.submit(
        [&ran_per_tenant, tenant] { ran_per_tenant[tenant].fetch_add(1); },
        opts);
    if (t.status() == xk::JobStatus::kRejected) {
      ++rejected;
    } else {
      ++accepted;
      // Deterministically cancel every 97th accepted job; wins only count
      // when the CAS beat execution.
      if (accepted % 97 == 0 && t.cancel()) ++cancel_wins;
    }
    tokens.push_back(std::move(t));
    tenants.push_back(tenant);
  }
  for (auto& t : tokens) t.wait();
  std::uint64_t done = 0, cancelled = 0, failed = 0, rej = 0;
  for (auto& t : tokens) {
    switch (t.status()) {
      case xk::JobStatus::kDone: ++done; break;
      case xk::JobStatus::kCancelled: ++cancelled; break;
      case xk::JobStatus::kFailed: ++failed; break;
      case xk::JobStatus::kRejected: ++rej; break;
      default: FAIL() << "non-terminal token after wait";
    }
  }
  EXPECT_EQ(done + cancelled + failed + rej, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(rej, rejected);
  EXPECT_EQ(cancelled, cancel_wins);
  EXPECT_EQ(failed, 0u);
  // Every accepted-and-not-cancelled job ran exactly once.
  EXPECT_EQ(ran_per_tenant[0] + ran_per_tenant[1] + ran_per_tenant[2], done);
  // No starvation of the weight-1 tenant: it was offered ~300 jobs; a
  // scheduler that starved it would show (near-)zero completions.
  EXPECT_GT(ran_per_tenant[2].load(), 0u);
  // Bounded queues: the high-water mark cannot exceed the per-tenant cap
  // times the tenant count.
  const xk::ServiceStats s = rt.service_stats();
  EXPECT_LE(s.max_queued, 3u * c.svc_queue_cap);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.submitted, accepted);
  EXPECT_EQ(s.rejected, rejected);
}

TEST(ServicePriority, WeightedTenantsDrainWithoutStarvation) {
  // Live-runtime ordering probe at one pool worker: a heavy backlog on
  // the weight-8 tenant must not stop the weight-1 tenant's jobs from
  // completing promptly among them.
  xk::Config c = cfg(1);
  c.svc_weights = "8,1";
  xk::Runtime rt(c);
  std::atomic<bool> entered{false}, release{false};
  xk::JobToken blocker = rt.submit([&] {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();
  // Backlog both lanes while the dispatcher is pinned in the blocker.
  std::vector<unsigned> completion_order;
  std::mutex order_mu;
  std::vector<xk::JobToken> tokens;
  for (int i = 0; i < 40; ++i) {
    const unsigned tenant = i < 32 ? 0u : 1u;  // 32 heavy, 8 light
    xk::SubmitOptions opts;
    opts.tenant = tenant;
    tokens.push_back(rt.submit(
        [&completion_order, &order_mu, tenant] {
          std::lock_guard lock(order_mu);
          completion_order.push_back(tenant);
        },
        opts));
  }
  release.store(true, std::memory_order_release);
  for (auto& t : tokens) t.wait();
  ASSERT_EQ(completion_order.size(), 40u);
  // The first light-tenant completion must come well before the heavy
  // lane drains: smooth WRR at 8:1 interleaves one light job at least
  // every 9 picks.
  std::size_t first_light = completion_order.size();
  for (std::size_t i = 0; i < completion_order.size(); ++i) {
    if (completion_order[i] == 1u) {
      first_light = i;
      break;
    }
  }
  EXPECT_LT(first_light, 16u);
}
