// Unit tests for the bounded MPMC ring (support/ring.hpp) — the primary
// per-shard ready queue under XK_RL_LOCK=lockfree. Single-threaded tests
// pin the sequencing protocol's observable contract (FIFO, bounded, full
// and empty reported as false — never blocking); the concurrent smoke
// hammers producers against consumers and checks linearizability the cheap
// way: every pushed value is popped exactly once, and per-producer streams
// are consumed in their push order (per-producer FIFO is what the ready
// list actually relies on for its release chains).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/ring.hpp"

namespace {

TEST(MpmcRing, FifoWithinCapacity) {
  xk::MpmcRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_push(i));
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));  // empty again
}

TEST(MpmcRing, FullRingRefusesPush) {
  xk::MpmcRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  // Full: the push must fail immediately (the ready list spills to its
  // side deque on this return), never block or overwrite.
  EXPECT_FALSE(ring.try_push(99));
  int v = -1;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 0);
  // One slot freed: pushes work again and FIFO order holds across the gap.
  EXPECT_TRUE(ring.try_push(99));
  for (int expect : {1, 2, 3, 99}) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, expect);
  }
}

TEST(MpmcRing, EmptyRingRefusesPop) {
  xk::MpmcRing<std::uint64_t> ring(2);
  std::uint64_t v = 0;
  EXPECT_FALSE(ring.try_pop(v));
  ASSERT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(MpmcRing, WraparoundManyTimes) {
  // Cursors keep counting up (they are never masked back down), so slot
  // sequence numbers must be re-armed on every lap. Push/pop far more
  // items than the capacity to cross the wrap boundary repeatedly.
  xk::MpmcRing<int> ring(4);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    // Variable batch sizes so head/tail hit every slot phase.
    const int batch = 1 + round % 4;
    for (int i = 0; i < batch; ++i) {
      ASSERT_TRUE(ring.try_push(next_push));
      ++next_push;
    }
    int v = -1;
    for (int i = 0; i < batch; ++i) {
      ASSERT_TRUE(ring.try_pop(v));
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(ring.approx_size(), 0u);
}

TEST(MpmcRing, ApproxSizeTracksOccupancy) {
  xk::MpmcRing<int> ring(8);
  EXPECT_EQ(ring.approx_size(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.approx_size(), 5u);  // exact when quiescent
  int v;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(ring.approx_size(), 4u);
}

// Concurrent push/pop smoke: kProducers threads each push a disjoint value
// range while kConsumers threads drain. Checks (a) nothing lost, nothing
// duplicated, (b) each producer's values are consumed in push order when
// the per-consumer observation streams are merged — the linearizability
// facet a seq-counter bug (double-grant of a slot, missed re-arm) breaks
// first. Runs under the sanitizer CI legs, where TSan additionally checks
// the release/acquire edges of the slot handoff.
TEST(MpmcRing, ConcurrentPushPopSmoke) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  xk::MpmcRing<std::uint64_t> ring(64);  // small: forces full/empty churn

  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<std::uint64_t>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t v = 0;
      while (consumed.load(std::memory_order_relaxed) <
             kPerProducer * kProducers) {
        if (ring.try_pop(v)) {
          seen[static_cast<std::size_t>(c)].push_back(v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      // Value = producer tag in the high bits, per-producer sequence low.
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(consumed.load(), kPerProducer * kProducers);
  std::uint64_t next_seq[kProducers] = {};
  std::vector<std::uint64_t> all;
  for (int c = 0; c < kConsumers; ++c) {
    // Within one consumer's stream, each producer's values must appear in
    // push order (a single consumer's pops are totally ordered, and pops
    // respect push order per producer).
    std::uint64_t last[kProducers];
    std::fill(std::begin(last), std::end(last), ~std::uint64_t{0});
    for (std::uint64_t v : seen[static_cast<std::size_t>(c)]) {
      const auto p = static_cast<std::size_t>(v >> 32);
      const std::uint64_t seq = v & 0xffffffffu;
      ASSERT_LT(p, static_cast<std::size_t>(kProducers));
      if (last[p] != ~std::uint64_t{0}) {
        ASSERT_GT(seq, last[p]);
      }
      last[p] = seq;
      all.push_back(v);
    }
  }
  (void)next_seq;
  // Nothing lost, nothing duplicated across all consumers.
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kPerProducer * kProducers);
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_NE(all[i], all[i - 1]);
  }
}

}  // namespace
