// Runtime lifecycle tests: pool creation, sections, nesting rules, stats.
#include <gtest/gtest.h>

#include <atomic>

#include "core/xkaapi.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

TEST(Runtime, CreateDestroyVariousSizes) {
  for (unsigned n : {1u, 2u, 4u, 8u}) {
    xk::Runtime rt(cfg(n));
    EXPECT_EQ(rt.nworkers(), n);
  }
}

TEST(Runtime, RunExecutesOnCallerThread) {
  xk::Runtime rt(cfg(2));
  const auto caller = std::this_thread::get_id();
  std::thread::id inside;
  rt.run([&] { inside = std::this_thread::get_id(); });
  EXPECT_EQ(inside, caller);
}

TEST(Runtime, SequentialSections) {
  xk::Runtime rt(cfg(3));
  int sum = 0;
  for (int i = 0; i < 10; ++i) rt.run([&] { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(Runtime, BeginEndStyle) {
  xk::Runtime rt(cfg(2));
  rt.begin();
  EXPECT_TRUE(rt.in_section());
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) {
    xk::spawn([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  xk::sync();
  EXPECT_EQ(hits.load(), 100);
  rt.end();
  EXPECT_FALSE(rt.in_section());
}

TEST(Runtime, NestedBeginThrows) {
  xk::Runtime rt(cfg(2));
  rt.begin();
  EXPECT_THROW(rt.begin(), std::logic_error);
  rt.end();
}

TEST(Runtime, EndWithoutBeginThrows) {
  xk::Runtime rt(cfg(2));
  EXPECT_THROW(rt.end(), std::logic_error);
}

TEST(Runtime, ThisWorkerBinding) {
  xk::Runtime rt(cfg(2));
  EXPECT_EQ(xk::this_worker(), nullptr);
  rt.run([&] {
    ASSERT_NE(xk::this_worker(), nullptr);
    EXPECT_EQ(xk::this_worker()->id(), 0u);
  });
  EXPECT_EQ(xk::this_worker(), nullptr);
}

TEST(Runtime, StatsCountSpawnedTasks) {
  xk::Runtime rt(cfg(2));
  rt.reset_stats();
  rt.run([&] {
    for (int i = 0; i < 50; ++i) xk::spawn([] {});
    xk::sync();
  });
  const auto s = rt.stats_snapshot();
  EXPECT_EQ(s.tasks_spawned, 50u);
  EXPECT_EQ(s.tasks_run_owner + s.tasks_run_thief, 50u);
}

TEST(Runtime, ExceptionFromRunPropagates) {
  xk::Runtime rt(cfg(2));
  EXPECT_THROW(rt.run([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The runtime remains usable afterwards.
  int ok = 0;
  rt.run([&] { ok = 1; });
  EXPECT_EQ(ok, 1);
}

TEST(Runtime, SingleWorkerRuntimeWorks) {
  xk::Runtime rt(cfg(1));
  std::atomic<int> hits{0};
  rt.run([&] {
    for (int i = 0; i < 20; ++i) xk::spawn([&] { hits.fetch_add(1); });
    xk::sync();
  });
  EXPECT_EQ(hits.load(), 20);
}

TEST(Runtime, SpawnOutsideSectionRunsInline) {
  int x = 0;
  xk::spawn([&] { x = 42; });
  EXPECT_EQ(x, 42);
  xk::sync();  // no-op
  EXPECT_EQ(x, 42);
}

TEST(Runtime, ConfigFromEnvDefaults) {
  const xk::Config c = xk::Config::from_env();
  EXPECT_TRUE(c.workers() >= 1);
}

}  // namespace
