// Unit tests for the support layer: padding, env parsing, RNG determinism,
// timing statistics, barrier, table rendering.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include <atomic>
#include <chrono>

#include "support/barrier.hpp"
#include "support/cache.hpp"
#include "support/env.hpp"
#include "support/parker.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace {

TEST(Cache, PaddedElementsDontShareCacheLines) {
  std::vector<xk::Padded<int>> v(4);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&v[i - 1].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&v[i].value);
    EXPECT_GE(b - a, xk::kCacheLine);
  }
}

TEST(Cache, RoundUp) {
  EXPECT_EQ(xk::round_up(0, 64), 0u);
  EXPECT_EQ(xk::round_up(1, 64), 64u);
  EXPECT_EQ(xk::round_up(64, 64), 64u);
  EXPECT_EQ(xk::round_up(65, 64), 128u);
  EXPECT_EQ(xk::round_up(13, 8), 16u);
}

TEST(Env, IntParsingAndFallback) {
  ::setenv("XK_TEST_INT", "42", 1);
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 7), 42);
  ::setenv("XK_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 7), 7);
  ::setenv("XK_TEST_INT", "12abc", 1);
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 7), 7);
  ::unsetenv("XK_TEST_INT");
  EXPECT_EQ(xk::env_int("XK_TEST_INT", 7), 7);
}

TEST(Env, BoolParsing) {
  ::setenv("XK_TEST_BOOL", "true", 1);
  EXPECT_TRUE(xk::env_bool("XK_TEST_BOOL", false));
  ::setenv("XK_TEST_BOOL", "OFF", 1);
  EXPECT_FALSE(xk::env_bool("XK_TEST_BOOL", true));
  ::setenv("XK_TEST_BOOL", "banana", 1);
  EXPECT_TRUE(xk::env_bool("XK_TEST_BOOL", true));
  ::unsetenv("XK_TEST_BOOL");
}

TEST(Env, DoubleParsing) {
  ::setenv("XK_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(xk::env_double("XK_TEST_DBL", 1.0), 2.5);
  ::unsetenv("XK_TEST_DBL");
  EXPECT_DOUBLE_EQ(xk::env_double("XK_TEST_DBL", 1.0), 1.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  xk::Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  xk::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  xk::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  xk::Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Parker (timed eventcount for idle parking).
// ---------------------------------------------------------------------------

TEST(Parker, NotifyBetweenPrepareAndParkIsNotLost) {
  // A notification landing after prepare() must make park() return
  // immediately as "notified" — the no-lost-wakeup core of the protocol.
  xk::Parker p;
  const std::uint32_t e = p.prepare();
  p.notify_one();
  p.announce();
  EXPECT_TRUE(p.park(e, std::chrono::seconds(10)));
  p.retract();
}

TEST(Parker, TimeoutExpiresWithoutNotify) {
  xk::Parker p;
  const std::uint32_t e = p.prepare();
  p.announce();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.park(e, std::chrono::milliseconds(5)));
  p.retract();
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(4));
}

TEST(Parker, NoLostWakeupUnderSpawnParkRace) {
  // The spawn/park race: a publisher that observes the announce must wake
  // the sleeper. The announce is published before `ready` flips, so every
  // notify_one here happens-after the waiter registered — park() must never
  // sleep out the (long) timeout.
  xk::Parker p;
  constexpr int kRounds = 200;
  // Round-stamped handshake (a plain bool would let the fast side lap the
  // slow one and desynchronize the phases): `armed` == i+1 means the
  // round-i waiter has announced; `acked` == i+1 means it woke.
  std::atomic<int> armed{0};
  std::atomic<int> acked{0};
  std::atomic<int> notified_count{0};

  std::thread waiter([&] {
    for (int i = 0; i < kRounds; ++i) {
      const std::uint32_t e = p.prepare();
      p.announce();
      armed.store(i + 1, std::memory_order_release);
      if (p.park(e, std::chrono::seconds(30))) {
        notified_count.fetch_add(1, std::memory_order_relaxed);
      }
      p.retract();
      acked.store(i + 1, std::memory_order_release);
    }
  });
  std::thread publisher([&] {
    for (int i = 0; i < kRounds; ++i) {
      while (armed.load(std::memory_order_acquire) < i + 1) {
        std::this_thread::yield();
      }
      p.notify_one();
      // Wait until the round-i waiter actually woke before the next round.
      while (acked.load(std::memory_order_acquire) < i + 1) {
        std::this_thread::yield();
      }
    }
  });
  waiter.join();
  publisher.join();
  // Every park was preceded (per the ready handshake) by announce, and
  // every notify happened while the waiter was registered: no round may
  // have timed out.
  EXPECT_EQ(notified_count.load(), kRounds);
}

TEST(Parker, NotifyAllWakesEveryWaiter) {
  xk::Parker p;
  constexpr int kWaiters = 4;
  std::atomic<int> woken{0};
  std::atomic<int> announced{0};
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      const std::uint32_t e = p.prepare();
      p.announce();
      announced.fetch_add(1);
      if (p.park(e, std::chrono::seconds(30))) woken.fetch_add(1);
      p.retract();
    });
  }
  while (announced.load() < kWaiters) std::this_thread::yield();
  p.notify_all();
  for (auto& t : threads) t.join();
  EXPECT_EQ(woken.load(), kWaiters);
  EXPECT_EQ(p.waiters(), 0u);
}

TEST(Stats, FromSamples) {
  const auto s = xk::RunStats::from_samples({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(xk::RunStats::from_samples({}).count, 0u);
  const auto s = xk::RunStats::from_samples({5.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Barrier, ManyThreadsManyRounds) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  xk::SenseBarrier barrier(kThreads);
  std::vector<int> counters(kThreads, 0);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        counters[t] = r + 1;
        barrier.arrive_and_wait();
        // Everyone must observe all counters at r+1 between barriers.
        for (int u = 0; u < kThreads; ++u) {
          if (counters[u] != r + 1) mismatches.fetch_add(1);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Table, PrettyAndCsv) {
  xk::Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});
  std::ostringstream pretty;
  t.print(pretty);
  EXPECT_NE(pretty.str().find("333"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bb\n1,2\n333,\n");
  EXPECT_EQ(xk::Table::num(1.23456, 2), "1.23");
}

}  // namespace
