// Observability subsystem tests: trace rings, the emit API, the Chrome
// trace-file round trip, metrics snapshots, and the StarvationBoard
// occupancy fold's snapshot consistency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/xkaapi.hpp"
#include "obs/chrome_writer.hpp"
#include "obs/trace.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(xk::obs::TraceRing(1).capacity(), 8u);
  EXPECT_EQ(xk::obs::TraceRing(8).capacity(), 8u);
  EXPECT_EQ(xk::obs::TraceRing(9).capacity(), 16u);
  EXPECT_EQ(xk::obs::TraceRing(16384).capacity(), 16384u);
}

TEST(TraceRing, DrainReturnsOldestFirst) {
  xk::obs::TraceRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.record(xk::obs::Ev::kRlPush, i);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<xk::obs::TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].arg[0], i);
    EXPECT_EQ(out[i].seq, static_cast<std::uint32_t>(i));
  }
  // Instants at increasing record times: timestamps never go backwards.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].ts, out[i - 1].ts);
  }
}

TEST(TraceRing, WrapKeepsNewest) {
  xk::obs::TraceRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record(xk::obs::Ev::kRlPop, i);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<xk::obs::TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].arg[0], 12 + i);  // oldest retained is #12
  }
}

TEST(TraceRing, ClearForgetsButKeepsCapacity) {
  xk::obs::TraceRing ring(16);
  ring.record(xk::obs::Ev::kPark);
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<xk::obs::TraceEvent> out;
  ring.drain(out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ring.capacity(), 16u);
}

TEST(TraceRing, SpanDurationNeverUnderflows) {
  xk::obs::TraceRing ring(8);
  // A t0 in the future (clock weirdness) clamps dur to 0, not to a huge
  // unsigned value that would wreck a timeline viewer.
  ring.record_span(xk::obs::Ev::kTaskOwner,
                   xk::monotonic_ns() + 1'000'000'000ull);
  std::vector<xk::obs::TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dur, 0u);
}

// ---------------------------------------------------------------------------
// The emit API (TLS binding)
// ---------------------------------------------------------------------------

#ifndef XK_OBS_OFF

TEST(TraceEmit, UnboundThreadRecordsNothing) {
  xk::obs::bind_thread_ring(nullptr);
  EXPECT_EQ(xk::obs::thread_ring(), nullptr);
  // No ring: span_begin reads no clock (returns the 0 sentinel) and the
  // emits are no-ops rather than crashes.
  EXPECT_EQ(xk::obs::span_begin(), 0u);
  xk::obs::emit(xk::obs::Ev::kRlPush, 1, 2, 3);
  xk::obs::emit_span(xk::obs::Ev::kTaskOwner, 0);
}

TEST(TraceEmit, BoundThreadRecords) {
  xk::obs::TraceRing ring(8);
  xk::obs::bind_thread_ring(&ring);
  const std::uint64_t t0 = xk::obs::span_begin();
  EXPECT_NE(t0, 0u);
  xk::obs::emit(xk::obs::Ev::kRlPush, 7);
  xk::obs::emit_span(xk::obs::Ev::kTaskOwner, t0, 42);
  xk::obs::bind_thread_ring(nullptr);
  xk::obs::emit(xk::obs::Ev::kRlPush, 8);  // after unbind: dropped
  EXPECT_EQ(ring.recorded(), 2u);
  std::vector<xk::obs::TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, static_cast<std::uint32_t>(xk::obs::Ev::kRlPush));
  EXPECT_EQ(out[0].arg[0], 7u);
  EXPECT_EQ(out[1].kind, static_cast<std::uint32_t>(xk::obs::Ev::kTaskOwner));
  EXPECT_EQ(out[1].arg[0], 42u);
  EXPECT_GE(out[1].ts, t0);
}

TEST(TraceEmit, DisabledRuntimeLeavesRingsNullAndRecordsNothing) {
  // No trace_path, no XK_TRACE: the runtime allocates no rings, and a
  // full section leaves the caller's thread unbound.
  xk::Runtime rt(cfg(2));
  EXPECT_FALSE(rt.tracing());
  EXPECT_EQ(rt.trace_ring(0), nullptr);
  std::atomic<int> hits{0};
  rt.run([&] {
    for (int i = 0; i < 64; ++i) {
      xk::spawn([&] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    xk::sync();
  });
  EXPECT_EQ(hits.load(), 64);
  EXPECT_EQ(xk::obs::thread_ring(), nullptr);
}

// ---------------------------------------------------------------------------
// Trace-file round trip
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// One trace-file test per process: the writer is a process-global
// singleton and the first configured path owns the file. This one test
// therefore covers the whole drain surface — a plain run() section, two
// client sections held open *concurrently* from external threads, and
// service-mode jobs (the dispatcher's own overlapping section) — because
// the drain-at-last-close rule is exactly what overlap could corrupt.
TEST(TraceFile, RoundTripValidates) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "xk_obs_test_trace.json")
          .string();
  std::remove(path.c_str());
  {
    xk::Config c = cfg(2);
    c.trace_path = path;
    c.trace_cap = 4096;
    c.sections = 3;  // two client masters + the service dispatcher
    xk::Runtime rt(c);
    EXPECT_TRUE(rt.tracing());
    ASSERT_NE(rt.trace_ring(0), nullptr);
    std::atomic<std::int64_t> sum{0};
    rt.run([&] {
      for (int i = 0; i < 256; ++i) {
        xk::spawn([&] { sum.fetch_add(1, std::memory_order_relaxed); });
      }
      xk::sync();
      xk::parallel_for(0, 10000, [&](std::int64_t lo, std::int64_t hi) {
        sum.fetch_add(hi - lo, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 256 + 10000);

    // Overlap phase: both clients hold their sections open at once (the
    // handshake guarantees it) while service jobs flow through the
    // dispatcher's section. Every ring drains exactly once, at the last
    // close — duplicated or dropped spans would fail the validator's
    // per-lane monotonicity below.
    std::atomic<int> open_clients{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
      clients.emplace_back([&] {
        rt.begin();
        open_clients.fetch_add(1, std::memory_order_acq_rel);
        while (open_clients.load(std::memory_order_acquire) < 2) {
          std::this_thread::yield();
        }
        for (int i = 0; i < 64; ++i) {
          xk::spawn([&] { sum.fetch_add(1, std::memory_order_relaxed); });
        }
        xk::sync();
        rt.end();
      });
    }
    std::vector<xk::JobToken> tokens;
    for (int i = 0; i < 32; ++i) {
      tokens.push_back(rt.submit([&] {
        sum.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& t : clients) t.join();
    for (auto& tok : tokens) tok.wait();
    EXPECT_EQ(sum.load(), 256 + 10000 + 2 * 64 + 32);
  }
  xk::obs::ChromeTraceWriter::instance().flush();

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "no trace written to " << path;
  // Shape, without a JSON parser: the object format's required key, the
  // span/metadata phases, some known event names, and the metrics side.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"task.owner\""), std::string::npos);
  EXPECT_NE(text.find("\"foreach.chunk\""), std::string::npos);
  EXPECT_NE(text.find("\"section\""), std::string::npos);
  EXPECT_NE(text.find("\"job\""), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"tasks_spawned\""), std::string::npos);

  // Full validation (well-formed JSON, span nesting, category coverage)
  // through the same script CI runs, when the source tree is reachable.
  const std::filesystem::path script = std::filesystem::path(__FILE__)
                                           .parent_path()
                                           .parent_path() /
                                       "scripts" / "check_trace.py";
  if (!std::filesystem::exists(script)) {
    GTEST_SKIP() << "check_trace.py not reachable from " << __FILE__;
  }
  const std::string cmd = "python3 \"" + script.string() + "\" \"" + path +
                          "\" --require-cats task,section,foreach,job "
                          "--require-metrics";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::remove(path.c_str());
}

#endif  // !XK_OBS_OFF

// ---------------------------------------------------------------------------
// Metrics snapshot
// ---------------------------------------------------------------------------

TEST(Metrics, SnapshotCoversEveryCounter) {
  xk::Runtime rt(cfg(2));
  std::atomic<int> hits{0};
  rt.run([&] {
    for (int i = 0; i < 100; ++i) {
      xk::spawn([&] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    xk::sync();
  });
  const xk::obs::MetricsSnapshot m = rt.metrics_snapshot();
  EXPECT_EQ(m.nworkers, 2u);
  ASSERT_EQ(m.counters.size(), xk::kWorkerStatCount);
  // Declaration order, and the values the aggregated WorkerStats holds.
  xk::WorkerStats total = rt.stats_snapshot();
  std::size_t i = 0;
  total.for_each([&](const char* name, std::uint64_t v) {
    EXPECT_EQ(m.counters[i].first, name);
    EXPECT_EQ(m.counters[i].second, v) << name;
    ++i;
  });
  EXPECT_GE(m.domains.size(), 1u);
  // Quiesced between sections: nothing is occupied.
  EXPECT_EQ(m.root_occupied, 0);
}

TEST(Metrics, ToJsonShape) {
  xk::obs::MetricsSnapshot m;
  m.nworkers = 3;
  m.root_occupied = 1;
  m.counters = {{"tasks_spawned", 42}, {"parks", 7}};
  m.domains.push_back({0, 5, 2, 1});
  const std::string j = m.to_json();
  EXPECT_NE(j.find("\"nworkers\": 3"), std::string::npos);
  EXPECT_NE(j.find("\"tasks_spawned\": 42"), std::string::npos);
  EXPECT_NE(j.find("\"parks\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"domains\""), std::string::npos);
  EXPECT_NE(j.find("\"ready\": 5"), std::string::npos);
  std::ostringstream os;
  m.dump(os);
  EXPECT_NE(os.str().find("tasks_spawned=42"), std::string::npos);
  EXPECT_NE(os.str().find("rank=0"), std::string::npos);
}

TEST(Metrics, OperatorStreamListsEveryCounter) {
  // Satellite regression guard: the WorkerStats dump must contain every
  // counter the struct declares — a field added to the struct but not the
  // X-macro fails the static_assert; one added to both lands here free.
  xk::WorkerStats s;
  s.steal_tasks = 3;
  s.foreach_chunks = 9;
  std::ostringstream os;
  os << s;
  std::size_t fields = 0;
  s.for_each([&](const char* name, std::uint64_t) {
    EXPECT_NE(os.str().find(name), std::string::npos) << name;
    ++fields;
  });
  EXPECT_EQ(fields, xk::kWorkerStatCount);
  EXPECT_NE(os.str().find("steal_tasks=3"), std::string::npos);
  EXPECT_NE(os.str().find("foreach_chunks=9"), std::string::npos);
}

// ---------------------------------------------------------------------------
// StarvationBoard snapshot consistency
// ---------------------------------------------------------------------------

TEST(StarvationBoardObs, OccupancyFoldCountsMatchSnapshot) {
  xk::StarvationBoard b;
  b.init(2);
  b.init_occupancy({0, 0, 1, 1});  // workers 0,1 -> domain 0; 2,3 -> domain 1

  EXPECT_EQ(b.publish_occupied(0, true), 2u);   // bit + domain 0->1 (root stays)
  EXPECT_EQ(b.publish_occupied(0, true), 0u);   // no transition
  EXPECT_EQ(b.publish_occupied(1, true), 1u);   // bit only (domain 1->2)
  EXPECT_EQ(b.publish_occupied(2, true), 2u);   // bit + domain fold
  EXPECT_EQ(b.domain_occupied(0), 2);
  EXPECT_EQ(b.domain_occupied(1), 1);
  EXPECT_EQ(b.root_occupied(), 2);
  EXPECT_TRUE(b.occupied(0));
  EXPECT_TRUE(b.occupied(2));
  EXPECT_FALSE(b.occupied(3));

  EXPECT_EQ(b.publish_occupied(1, false), 1u);  // domain 2->1
  EXPECT_EQ(b.publish_occupied(0, false), 2u);  // domain 1->0, root 2->1
  EXPECT_EQ(b.publish_occupied(2, false), 3u);  // last: root 1->0 (quiesce)
  EXPECT_EQ(b.domain_occupied(0), 0);
  EXPECT_EQ(b.domain_occupied(1), 0);
  EXPECT_EQ(b.root_occupied(), 0);
}

TEST(StarvationBoardObs, ConcurrentPublishSettlesConsistent) {
  // One owner thread per bit (the board's write contract); after all the
  // toggling, the folded counts must equal the sum of the final bits —
  // the gauges the metrics snapshot exports can never drift.
  constexpr unsigned kWorkers = 8;
  constexpr int kToggles = 2000;
  xk::StarvationBoard b;
  b.init(2);
  std::vector<unsigned> ranks(kWorkers);
  for (unsigned w = 0; w < kWorkers; ++w) ranks[w] = w % 2;
  b.init_occupancy(ranks);

  std::vector<std::thread> threads;
  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&b, w] {
      for (int i = 0; i < kToggles; ++i) {
        b.publish_occupied(w, true);
        b.publish_occupied(w, false);
      }
      // Odd workers end occupied, even workers end idle.
      if (w % 2 == 1) b.publish_occupied(w, true);
    });
  }
  for (auto& t : threads) t.join();

  std::int64_t expect_domain[2] = {0, 0};
  for (unsigned w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(b.occupied(w), w % 2 == 1);
    if (w % 2 == 1) expect_domain[w % 2]++;
  }
  EXPECT_EQ(b.domain_occupied(0), expect_domain[0]);
  EXPECT_EQ(b.domain_occupied(1), expect_domain[1]);
  const int occupied_domains = (expect_domain[0] != 0 ? 1 : 0) +
                               (expect_domain[1] != 0 ? 1 : 0);
  EXPECT_EQ(b.root_occupied(), occupied_domains);
}

TEST(StarvationBoardObs, GaugesRoundTripThroughRuntimeSnapshot) {
  xk::Runtime rt(cfg(4));
  rt.run([&] {
    for (int i = 0; i < 500; ++i) {
      xk::spawn([] {});
    }
    xk::sync();
  });
  const xk::obs::MetricsSnapshot m = rt.metrics_snapshot();
  ASSERT_FALSE(m.domains.empty());
  std::int64_t occupied_domains = 0;
  for (const auto& d : m.domains) {
    EXPECT_GE(d.ready, 0);       // settled shards between sections
    EXPECT_EQ(d.occupied, 0);    // quiesced pool: nobody holds a frame
    if (d.occupied != 0) ++occupied_domains;
  }
  EXPECT_EQ(m.root_occupied, occupied_domains);
}

}  // namespace
