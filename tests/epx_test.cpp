// EPX mini-app tests: mesh construction, material model invariants, kernel
// determinism across loop backends, condensed-system algebra, and the
// integration property that a parallel simulation reproduces the sequential
// trajectory exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/loop_schedulers.hpp"
#include "core/xkaapi.hpp"
#include "epx/simulation.hpp"
#include "skyline/factor.hpp"

namespace {

using namespace xk::epx;

TEST(EpxMesh, BoxCountsAndMass) {
  Mesh m = make_box(4, 3, 2, 0.1, Vec3{}, 1000.0);
  EXPECT_EQ(m.nelems(), 24);
  EXPECT_EQ(m.nnodes(), 5 * 4 * 3);
  double total = 0.0;
  for (double mass : m.mass) total += mass;
  // Total mass = density * volume.
  EXPECT_NEAR(total, 1000.0 * 24 * 0.1 * 0.1 * 0.1, 1e-9);
  // Interior nodes touch 8 elements, corners touch 1.
  EXPECT_EQ(m.node_elems[0].size(), 1u);
}

TEST(EpxMesh, IncidenceIsConsistent) {
  Mesh m = make_box(3, 3, 3, 0.1, Vec3{}, 1.0);
  std::size_t total = 0;
  for (const auto& list : m.node_elems) total += list.size();
  EXPECT_EQ(total, static_cast<std::size_t>(m.nelems()) * 8u);
  for (int n = 0; n < m.nnodes(); ++n) {
    for (const auto& inc : m.node_elems[static_cast<std::size_t>(n)]) {
      EXPECT_EQ(m.elems[static_cast<std::size_t>(inc.elem)]
                       [static_cast<std::size_t>(inc.corner)],
                n);
    }
  }
}

TEST(EpxMesh, ScenarioBuildersProduceContacts) {
  Scenario meppen = make_meppen(1);
  EXPECT_GT(meppen.mesh.nelems(), 100);
  ASSERT_EQ(meppen.mesh.contacts.size(), 1u);
  EXPECT_GT(meppen.mesh.contacts[0].slave_nodes.size(), 0u);
  EXPECT_GT(meppen.dt, 0.0);

  Scenario maxplane = make_maxplane(1, 4);
  EXPECT_EQ(maxplane.mesh.contacts.size(), 3u);  // plies-1 interfaces
  EXPECT_GT(maxplane.mesh.nelems(), 300);
}

TEST(EpxMaterial, ElasticBelowYield) {
  ElemState s;
  const Material& mat = material(0);
  const double vm = material_update(mat, s, {1e-6, 0, 0, 0, 0, 0}, 4);
  EXPECT_GT(vm, 0.0);
  EXPECT_EQ(s.eps_plastic, 0.0);  // tiny strain: stays elastic
}

TEST(EpxMaterial, PlasticFlowAboveYield) {
  ElemState s;
  const Material& mat = material(0);
  // Large deviatoric strain drives the stress past yield.
  material_update(mat, s, {5e-3, -2e-3, -2e-3, 0, 0, 0}, 8);
  EXPECT_GT(s.eps_plastic, 0.0);
  // After return mapping the stress sits near the hardened yield surface.
  const double p = (s.stress[0] + s.stress[1] + s.stress[2]) / 3.0;
  double j2 = 0.0;
  for (int c = 0; c < 3; ++c) {
    j2 += (s.stress[static_cast<std::size_t>(c)] - p) *
          (s.stress[static_cast<std::size_t>(c)] - p);
  }
  for (int c = 3; c < 6; ++c) {
    j2 += 2.0 * s.stress[static_cast<std::size_t>(c)] *
          s.stress[static_cast<std::size_t>(c)];
  }
  const double vm = std::sqrt(1.5 * j2);
  const double yield_now = mat.yield0 + mat.hardening * s.eps_plastic;
  EXPECT_NEAR(vm, yield_now, 0.02 * yield_now);
}

TEST(EpxMaterial, DeterministicUpdate) {
  ElemState a, b;
  const Material& mat = material(1);
  for (int i = 0; i < 50; ++i) {
    const double e = 1e-4 * (i % 7);
    material_update(mat, a, {e, -e / 2, 0, e / 3, 0, 0}, 3);
    material_update(mat, b, {e, -e / 2, 0, e / 3, 0, 0}, 3);
  }
  EXPECT_EQ(a.stress, b.stress);
  EXPECT_EQ(a.eps_plastic, b.eps_plastic);
}

TEST(EpxLoopelm, EquilibriumAtRest) {
  // No motion => no strain increment => zero internal forces.
  Scenario s = make_meppen(1);
  for (Vec3& v : s.mesh.v) v = Vec3{};
  LoopelmState st;
  st.resize(s.mesh.nelems());
  loopelm(s.mesh, st, s.dt, s.material_iters, seq_runner());
  for (const Vec3& f : s.mesh.f_int) {
    EXPECT_EQ(f.x, 0.0);
    EXPECT_EQ(f.y, 0.0);
    EXPECT_EQ(f.z, 0.0);
  }
}

TEST(EpxLoopelm, UniformCompressionBalances) {
  // Uniform compression along x: internal forces on interior nodes cancel.
  Scenario s = make_meppen(1);
  for (std::size_t n = 0; n < s.mesh.v.size(); ++n) {
    s.mesh.v[n] = Vec3{-s.mesh.x0[n].x, 0.0, 0.0};  // linear field
  }
  LoopelmState st;
  st.resize(s.mesh.nelems());
  loopelm(s.mesh, st, s.dt, s.material_iters, seq_runner());
  // Total internal force must vanish (action = reaction within the mesh).
  Vec3 total{};
  for (const Vec3& f : s.mesh.f_int) {
    total.x += f.x;
    total.y += f.y;
    total.z += f.z;
  }
  EXPECT_NEAR(total.x, 0.0, 1e-6);
  EXPECT_NEAR(total.y, 0.0, 1e-6);
  EXPECT_NEAR(total.z, 0.0, 1e-6);
}

TEST(EpxKernels, ParallelMatchesSequentialBitwise) {
  Scenario s_seq = make_meppen(1);
  Scenario s_par = make_meppen(1);
  LoopelmState e1, e2;
  e1.resize(s_seq.mesh.nelems());
  e2.resize(s_par.mesh.nelems());

  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);

  loopelm(s_seq.mesh, e1, s_seq.dt, s_seq.material_iters, seq_runner());
  rt.run([&] {
    loopelm(s_par.mesh, e2, s_par.dt, s_par.material_iters, xkaapi_runner());
  });
  for (int n = 0; n < s_seq.mesh.nnodes(); ++n) {
    const auto i = static_cast<std::size_t>(n);
    ASSERT_EQ(s_seq.mesh.f_int[i].x, s_par.mesh.f_int[i].x) << n;
    ASSERT_EQ(s_seq.mesh.f_int[i].y, s_par.mesh.f_int[i].y) << n;
    ASSERT_EQ(s_seq.mesh.f_int[i].z, s_par.mesh.f_int[i].z) << n;
  }
}

TEST(EpxRepera, FindsWallCandidatesOnlyWhenClose) {
  Scenario s = make_meppen(1);
  ReperaState rep;
  repera(s.mesh, rep, seq_runner());
  // Missile starts 0.2 m from the wall with gap tolerance 0.1: gaps close
  // enough to produce candidates exist but no penetration yet.
  const auto constraints0 = select_constraints(s.mesh, rep);
  // Move the missile into the wall and search again.
  for (Vec3& p : s.mesh.x) p.x -= 0.25;
  ReperaState rep2;
  repera(s.mesh, rep2, seq_runner());
  const auto constraints1 = select_constraints(s.mesh, rep2);
  EXPECT_GT(constraints1.size(), constraints0.size());
  EXPECT_GT(rep2.total, 0u);
}

TEST(EpxRepera, CandidatesSortedByDistance) {
  Scenario s = make_maxplane(1, 2);
  ReperaState rep;
  repera(s.mesh, rep, seq_runner());
  for (const auto& list : rep.candidates) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      ASSERT_LE(list[i - 1].distance, list[i].distance);
    }
  }
}

TEST(EpxRepera, ParallelMatchesSequential) {
  Scenario s = make_maxplane(1, 3);
  ReperaState r1, r2;
  repera(s.mesh, r1, seq_runner());
  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);
  rt.run([&] { repera(s.mesh, r2, xkaapi_runner()); });
  ASSERT_EQ(r1.total, r2.total);
  ASSERT_EQ(r1.candidates.size(), r2.candidates.size());
  for (std::size_t i = 0; i < r1.candidates.size(); ++i) {
    ASSERT_EQ(r1.candidates[i].size(), r2.candidates[i].size());
    for (std::size_t k = 0; k < r1.candidates[i].size(); ++k) {
      ASSERT_EQ(r1.candidates[i][k].facet, r2.candidates[i][k].facet);
      ASSERT_EQ(r1.candidates[i][k].distance, r2.candidates[i][k].distance);
    }
  }
}

TEST(EpxHmatrix, CondensedSystemIsSpdAndSolvable) {
  Scenario s = make_maxplane(1, 3);
  // Drive the plies together so constraints activate.
  for (int step = 0; step < 3; ++step) {
    for (std::size_t n = 0; n < s.mesh.x.size(); ++n) {
      s.mesh.x[n].z += s.dt * s.mesh.v[n].z;
    }
  }
  ReperaState rep;
  repera(s.mesh, rep, seq_runner());
  auto constraints = select_constraints(s.mesh, rep);
  ASSERT_GT(constraints.size(), 0u);
  CondensedSystem sys =
      build_condensed_system(s.mesh, constraints, 8, s.dt);
  const int info = xk::skyline::factor_sequential(sys.h);
  EXPECT_EQ(info, 0);
  std::vector<double> lambda(sys.rhs.size(), 0.0);
  xk::skyline::solve_factored(sys.h, sys.rhs.data(), lambda.data());
  for (double l : lambda) EXPECT_TRUE(std::isfinite(l));
}

// ---------------------------------------------------------------------------
// Integration: full simulation determinism across backends.
// ---------------------------------------------------------------------------

class EpxSimDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(EpxSimDeterminism, ParallelTrajectoryMatchesSequential) {
  const bool meppen = std::string(GetParam()) == "meppen";
  Scenario s_seq = meppen ? make_meppen(1) : make_maxplane(1, 3);
  Scenario s_par = meppen ? make_meppen(1) : make_maxplane(1, 3);
  const int steps = 10;

  SimOptions seq_opt;  // defaults: serial everything
  const PhaseTimes t_seq = simulate(s_seq, steps, seq_opt);

  xk::Config cfg;
  cfg.nworkers = 4;
  cfg.bind_threads = false;
  xk::Runtime rt(cfg);
  SimOptions par_opt;
  par_opt.loop = xkaapi_runner();
  par_opt.rt = &rt;
  const PhaseTimes t_par = simulate(s_par, steps, par_opt);

  EXPECT_EQ(t_seq.steps, t_par.steps);
  EXPECT_EQ(t_seq.factorizations, t_par.factorizations);
  EXPECT_EQ(t_seq.constraints_total, t_par.constraints_total);
  EXPECT_EQ(state_checksum(s_seq.mesh), state_checksum(s_par.mesh));
}

INSTANTIATE_TEST_SUITE_P(Scenarios, EpxSimDeterminism,
                         ::testing::Values("meppen", "maxplane"));

TEST(EpxSim, MeppenImpactsAndDissipates) {
  Scenario s = make_meppen(1);
  SimOptions opt;
  const double v0 = s.mesh.v[0].x;
  const PhaseTimes t = simulate(s, 40, opt);
  EXPECT_EQ(t.steps, 40);
  EXPECT_GT(t.loopelm, 0.0);
  EXPECT_GT(t.repera, 0.0);
  // The missile must have been decelerated by wall contact at some point.
  EXPECT_GT(t.factorizations, 0);
  double max_vx = -1e300;
  for (const Vec3& v : s.mesh.v) max_vx = std::max(max_vx, v.x);
  EXPECT_GT(max_vx, v0);  // some nodes bounced back / slowed down
}

TEST(EpxSim, MaxplaneCholeskyShareDominatesMeppen) {
  // The defining contrast of §IV: MAXPLANE's time is dominated by the
  // condensed solve, MEPPEN's by the loops.
  Scenario meppen = make_meppen(1);
  Scenario maxplane = make_maxplane(1, 4);
  SimOptions opt;
  const PhaseTimes tm = simulate(meppen, 20, opt);
  const PhaseTimes tx = simulate(maxplane, 20, opt);
  const double share_meppen = tm.cholesky / tm.total();
  const double share_maxplane = tx.cholesky / tx.total();
  EXPECT_GT(share_maxplane, share_meppen);
}

}  // namespace
