// Fork-join task tests: recursion (fib), nesting, sync semantics, argument
// passing, exceptions, stress under oversubscription.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/xkaapi.hpp"

namespace {

xk::Config cfg(unsigned n) {
  xk::Config c;
  c.nworkers = n;
  c.bind_threads = false;
  return c;
}

std::uint64_t fib_seq(int n) {
  return n < 2 ? static_cast<std::uint64_t>(n)
               : fib_seq(n - 1) + fib_seq(n - 2);
}

// The paper's figure-1 program shape: one spawned child + one inline call.
void fib_task(std::uint64_t* result, int n) {
  if (n < 2) {
    *result = static_cast<std::uint64_t>(n);
    return;
  }
  std::uint64_t r1 = 0, r2 = 0;
  xk::spawn(fib_task, xk::write(&r1), n - 1);
  fib_task(&r2, n - 2);
  xk::sync();
  *result = r1 + r2;
}

class SpawnFibTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpawnFibTest, FibMatchesSequential) {
  xk::Runtime rt(cfg(GetParam()));
  std::uint64_t result = 0;
  rt.run([&] {
    fib_task(&result, 20);
    xk::sync();
  });
  EXPECT_EQ(result, fib_seq(20));
}

INSTANTIATE_TEST_SUITE_P(Workers, SpawnFibTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Spawn, ValueArgumentsAreCopied) {
  xk::Runtime rt(cfg(2));
  std::atomic<long> sum{0};
  rt.run([&] {
    for (int i = 0; i < 100; ++i) {
      xk::spawn([&sum](int v) { sum.fetch_add(v); }, i);
    }
    xk::sync();
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(Spawn, LambdaCapturesByValueSurviveCaller) {
  xk::Runtime rt(cfg(2));
  std::atomic<int> total{0};
  rt.run([&] {
    for (int i = 0; i < 32; ++i) {
      std::vector<int> payload(64, i);  // moved/copied into the task
      xk::spawn([payload, &total] {
        total.fetch_add(std::accumulate(payload.begin(), payload.end(), 0));
      });
    }
    xk::sync();
  });
  int expected = 0;
  for (int i = 0; i < 32; ++i) expected += 64 * i;
  EXPECT_EQ(total.load(), expected);
}

TEST(Spawn, DeepNesting) {
  xk::Runtime rt(cfg(2));
  std::atomic<int> depth_sum{0};
  std::function<void(int)> nest = [&](int d) {
    depth_sum.fetch_add(1);
    if (d > 0) {
      xk::spawn([&, d] { nest(d - 1); });
      xk::sync();
    }
  };
  rt.run([&] {
    nest(100);
    xk::sync();
  });
  EXPECT_EQ(depth_sum.load(), 101);
}

TEST(Spawn, WideFanout) {
  xk::Runtime rt(cfg(4));
  constexpr int kTasks = 20000;  // crosses many frame chunks
  std::vector<std::uint8_t> hit(kTasks, 0);
  rt.run([&] {
    for (int i = 0; i < kTasks; ++i) {
      xk::spawn([&hit, i] { hit[static_cast<std::size_t>(i)] = 1; });
    }
    xk::sync();
  });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), kTasks);
}

TEST(Spawn, SyncInsideBodyThenMoreSpawns) {
  xk::Runtime rt(cfg(2));
  std::vector<int> order;
  rt.run([&] {
    xk::spawn([&] {
      std::vector<int> local;
      xk::spawn([&local] { local.push_back(1); });
      xk::sync();  // child 1 done
      local.push_back(2);
      xk::spawn([&local] { local.push_back(3); });
      xk::sync();  // child 2 done
      order = local;
    });
    xk::sync();
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(Spawn, ImplicitSyncAtBodyEnd) {
  // A task's children complete before the task is Term: the parent's sync
  // must observe grandchildren effects.
  xk::Runtime rt(cfg(3));
  std::atomic<int> leaves{0};
  rt.run([&] {
    for (int i = 0; i < 8; ++i) {
      xk::spawn([&] {
        for (int j = 0; j < 8; ++j) {
          xk::spawn([&] { leaves.fetch_add(1); });
        }
        // no explicit sync: body end is an implicit one
      });
    }
    xk::sync();
    EXPECT_EQ(leaves.load(), 64);
  });
}

TEST(Spawn, ExceptionPropagatesToSync) {
  xk::Runtime rt(cfg(2));
  rt.run([&] {
    xk::spawn([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(xk::sync(), std::runtime_error);
  });
}

TEST(Spawn, FirstExceptionWinsAndAllTasksComplete) {
  xk::Runtime rt(cfg(4));
  std::atomic<int> completed{0};
  rt.run([&] {
    for (int i = 0; i < 20; ++i) {
      xk::spawn([&completed, i] {
        completed.fetch_add(1);
        if (i % 5 == 0) throw std::runtime_error("boom");
      });
    }
    EXPECT_THROW(xk::sync(), std::runtime_error);
    // Exceptions don't cancel siblings (propagate-after-drain semantics).
    EXPECT_EQ(completed.load(), 20);
  });
}

TEST(Spawn, ExceptionFromStolenTaskReachesParent) {
  xk::Runtime rt(cfg(4));
  EXPECT_THROW(rt.run([&] {
    for (int i = 0; i < 200; ++i) {
      xk::spawn([i] {
        if (i == 137) throw std::logic_error("stolen-boom");
        volatile int x = 0;
        for (int j = 0; j < 1000; ++j) x = x + j;
      });
    }
    xk::sync();
  }),
               std::logic_error);
}

TEST(Spawn, OversubscriptionStress) {
  // Many more workers than cores: correctness must not depend on parallelism.
  xk::Runtime rt(cfg(16));
  std::uint64_t result = 0;
  rt.run([&] {
    fib_task(&result, 18);
    xk::sync();
  });
  EXPECT_EQ(result, fib_seq(18));
}

TEST(Spawn, StealsHappenWithMultipleWorkers) {
  xk::Runtime rt(cfg(4));
  rt.reset_stats();
  std::uint64_t result = 0;
  rt.run([&] {
    fib_task(&result, 22);
    xk::sync();
  });
  EXPECT_EQ(result, fib_seq(22));
  const auto s = rt.stats_snapshot();
  EXPECT_GT(s.tasks_spawned, 0u);
  // On a 1-core CI box thieves may rarely win races, so only require the
  // machinery to have engaged when any steal succeeded.
  EXPECT_EQ(s.tasks_run_owner + s.tasks_run_thief, s.tasks_spawned);
}

}  // namespace
