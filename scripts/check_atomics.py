#!/usr/bin/env python3
"""Memory-order lint for the concurrency core (no toolchain required).

The codebase's atomics discipline is documented in docs/ANALYSIS.md; this
script enforces the mechanical parts of it over the lint scope (src/core,
src/quark, src/support/ring.hpp — the files where a silently-wrong order
is a scheduler bug, not a stale counter):

  R1 explicit-order   Every std::atomic operation must pass an explicit
                      std::memory_order argument. A bare `.load()` compiles
                      to seq_cst, which both hides the author's intent and
                      costs a full fence on weaker ISAs; in this tree every
                      default is treated as an unreviewed ordering decision.

  R2 justified-relaxed  A relaxed *publish* (`.store(..., relaxed)` or
                      `.exchange(..., relaxed)`) is the single most
                      error-prone idiom in the tree: it is correct only
                      when some *other* edge orders the write. Each one
                      must carry an `// xk-order:` comment (same line or
                      the lines directly above) naming that edge.

  R3 lock-order       Lock acquisitions in src/core/readylist.cpp must
                      respect the declared order
                          graph_mu_ (1) -> edge spinlock (2) -> shard/side
                          mutex (3)
                      (see the lock-order comment block in readylist.hpp).
                      Functions named `*_graph_held` are analysed as
                      entering with graph_mu_ already held.

The lint is lexical on purpose: the container toolchain has no libclang,
so the script scrubs comments/strings and parses balanced-paren argument
lists (orders often sit on continuation lines). Known blind spots, kept
out of scope deliberately and documented in docs/ANALYSIS.md: operator
forms (`atomic++`, `atomic = v`) and orders forwarded through a variable.
The tree avoids the former in lint scope; clang-tidy covers the rest.

Usage:
  python3 scripts/check_atomics.py              # lint the default scope
  python3 scripts/check_atomics.py FILE...      # lint specific files
  python3 scripts/check_atomics.py --self-test  # prove the rules fire
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# ---------------------------------------------------------------------------
# Lint scope

SCOPE_GLOBS = [
    "src/core/*.hpp",
    "src/core/*.cpp",
    "src/quark/*.hpp",
    "src/quark/*.cpp",
    "src/quark/*.h",
    "src/support/ring.hpp",
]

# Atomic member operations that accept a memory_order argument. `.wait`,
# `.notify_*` and `.clear` are excluded: the first two collide with
# condition_variable/Parker methods and the tree uses no std::atomic wait;
# `.clear` collides with every container.
ATOMIC_OPS = (
    "load",
    "store",
    "exchange",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
)

OP_RE = re.compile(r"\.(" + "|".join(ATOMIC_OPS) + r")\s*\(")
FENCE_RE = re.compile(r"\batomic_thread_fence\s*\(")

JUSTIFY_TAG = "xk-order:"
# How far above a relaxed publish the justification may sit. Generous
# enough for a publish under a multi-line comment block, small enough that
# a stray tag cannot blanket a whole function.
JUSTIFY_WINDOW = 6

# ---------------------------------------------------------------------------
# R3 lock-order table. Higher level = acquired later. The table mirrors the
# "Lock order gains one leaf level" comment in readylist.hpp; change both
# together.
LOCK_ORDER_FILE = "src/core/readylist.cpp"
LOCK_LEVELS = {
    "graph_mu_": 1,
    "edge spinlock": 2,
    "shard/side mutex": 3,
}

# RAII acquisitions: (regex, lock name). Matched against scrubbed source.
RAII_ACQUIRE = [
    (re.compile(r"\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock)\b"
                r"[^;(]*\(\s*graph_mu_"), "graph_mu_"),
    (re.compile(r"\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock)\b"
                r"[^;(]*\([^;)]*\.mu\b"), "shard/side mutex"),
    (re.compile(r"\bShardGuard\s+\w+\s*\("), "shard/side mutex"),
]
# Explicit (non-RAII) acquire/release pairs.
EXPLICIT_ACQUIRE = re.compile(r"(?<!:)\bedge_lock_acquire\s*\(")
EXPLICIT_RELEASE = re.compile(r"(?<!:)\bedge_lock_release\s*\(")
GRAPH_HELD_FN = re.compile(r"\b(\w+_graph_held)\s*\([^;]*\)\s*(?:const\s*)?\{")


class Violation:
    def __init__(self, path: str, line: int, rule: str, msg: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


# ---------------------------------------------------------------------------
# Source scrubbing: blank out comments and string/char literals (preserving
# every newline, so offsets map back to line numbers) — an order named in a
# comment must not satisfy R1, and `//` inside a string must not hide code.


def scrub(text: str) -> str:
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def balanced_args(text: str, open_paren: int) -> tuple[str, int]:
    """Returns (argument text, index one past the closing paren) for the
    call whose '(' sits at `open_paren`. Scrubbed input: no strings or
    comments can unbalance the scan."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:j], j + 1
    return text[open_paren + 1:], len(text)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# R1 + R2


def check_orders(path: str, raw: str, scrubbed: str) -> list[Violation]:
    out: list[Violation] = []
    raw_lines = raw.splitlines()

    def justified(first_line: int, last_line: int) -> bool:
        lo = max(0, first_line - 1 - JUSTIFY_WINDOW)
        window = raw_lines[lo:last_line]
        return any(JUSTIFY_TAG in ln for ln in window)

    for m in OP_RE.finditer(scrubbed):
        op = m.group(1)
        args, end = balanced_args(scrubbed, m.end() - 1)
        first = line_of(scrubbed, m.start())
        last = line_of(scrubbed, end - 1)
        # A bare identifier named `order` is the forwarding-wrapper idiom
        # (Task::load_state passes its defaulted std::memory_order through);
        # the order is explicit at the wrapper's caller, which is in scope.
        if "memory_order" not in args and \
                not re.search(r"\border\b", args):
            out.append(Violation(
                path, first, "R1",
                f".{op}() without an explicit std::memory_order "
                "(silent seq_cst)"))
            continue
        if op in ("store", "exchange") and "memory_order_relaxed" in args:
            if not justified(first, last):
                out.append(Violation(
                    path, first, "R2",
                    f"relaxed .{op}() publish without an `// {JUSTIFY_TAG}` "
                    "justification (same line or directly above)"))
    for m in FENCE_RE.finditer(scrubbed):
        args, _ = balanced_args(scrubbed, scrubbed.index("(", m.start()))
        if "memory_order" not in args:
            out.append(Violation(
                path, line_of(scrubbed, m.start()), "R1",
                "atomic_thread_fence() without an explicit order"))
    return out


# ---------------------------------------------------------------------------
# R3: lexical per-function lock-order tracking. Brace depth delimits RAII
# guard lifetimes; edge_lock_acquire/release are explicit events. The
# analysis is intra-procedural — a caller's held locks are invisible —
# except for the `_graph_held` naming convention, which the tree uses
# precisely so that holding graph_mu_ is visible in the signature.


def check_lock_order(path: str, scrubbed: str) -> list[Violation]:
    out: list[Violation] = []

    events = []  # (offset, kind, lockname) kind in {raii, acq, rel}
    for rx, name in RAII_ACQUIRE:
        for m in rx.finditer(scrubbed):
            events.append((m.start(), "raii", name))
    for m in EXPLICIT_ACQUIRE.finditer(scrubbed):
        events.append((m.start(), "acq", "edge spinlock"))
    for m in EXPLICIT_RELEASE.finditer(scrubbed):
        events.append((m.start(), "rel", "edge spinlock"))
    for m in GRAPH_HELD_FN.finditer(scrubbed):
        # Entering a *_graph_held body: graph_mu_ is held by contract.
        events.append((m.end() - 1, "enter_held", "graph_mu_"))
    events.sort()

    held: list[tuple[int, str, int]] = []  # (depth_acquired, lock, level)
    depth = 0
    ei = 0
    for off, ch in enumerate(scrubbed):
        while ei < len(events) and events[ei][0] == off:
            _, kind, name = events[ei]
            ei += 1
            level = LOCK_LEVELS[name]
            if kind == "rel":
                for k in range(len(held) - 1, -1, -1):
                    if held[k][1] == name:
                        del held[k]
                        break
                continue
            for _, held_name, held_level in held:
                if held_level > level:
                    out.append(Violation(
                        path, line_of(scrubbed, off), "R3",
                        f"acquires {name} (level {level}) while holding "
                        f"{held_name} (level {held_level}); declared order "
                        "is graph_mu_ -> edge spinlock -> shard/side "
                        "mutex"))
            # Registers at the current depth, so a guard (or a held-on-entry
            # contract) dies when its enclosing brace closes.
            held.append((depth, name, level))
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            held = [h for h in held if h[0] < depth]
    return out


# ---------------------------------------------------------------------------


def lint_file(p: pathlib.Path) -> list[Violation]:
    raw = p.read_text(encoding="utf-8", errors="replace")
    scrubbed = scrub(raw)
    rel = str(p.relative_to(REPO)) if p.is_absolute() and REPO in p.parents \
        else str(p)
    out = check_orders(rel, raw, scrubbed)
    if rel.replace("\\", "/").endswith(LOCK_ORDER_FILE):
        out += check_lock_order(rel, scrubbed)
    return out


def lint_text(name: str, raw: str, lock_order: bool = False):
    scrubbed = scrub(raw)
    out = check_orders(name, raw, scrubbed)
    if lock_order:
        out += check_lock_order(name, scrubbed)
    return out


# ---------------------------------------------------------------------------
# Self-test: the negative mode the CI job runs first. Each BAD snippet must
# produce exactly the named rule; each GOOD snippet must be clean. A lint
# that cannot fail is not a gate.

GOOD_SNIPPETS = {
    "explicit orders + justified relaxed": """
void f(std::atomic<int>& a) {
  a.load(std::memory_order_acquire);
  a.fetch_add(1, std::memory_order_acq_rel);
  // xk-order: init-before-publish; the flag handoff provides the edge.
  a.store(1, std::memory_order_relaxed);
  a.compare_exchange_strong(x, y,
                            std::memory_order_acq_rel,
                            std::memory_order_relaxed);
}
""",
    "orders on continuation lines": """
void f(std::atomic<int>& a) {
  a.store(compute_something(long_argument_one, long_argument_two),
          std::memory_order_release);
}
""",
    "forwarded order parameter": """
TaskState load_state(std::memory_order order = std::memory_order_acquire)
    const {
  return state.load(order);
}
""",
    "comment text does not satisfy R1": """
void f(std::vector<int>& v) {
  v.clear();  // .load() in a comment is not an atomic op
}
""",
    "lock order respected": """
void ReadyList::extend() {
  std::lock_guard lock(graph_mu_);
  ShardGuard guard(shards_[shard], split_);
}
void ReadyList::complete_lockfree(Node* n) {
  edge_lock_acquire(n);
  edge_lock_release(n);
  std::lock_guard lock(shards_[s].mu);
}
""",
}

BAD_SNIPPETS = {
    # rule -> snippet
    "R1 bare load": ("R1", """
void f(std::atomic<int>& a) { int x = a.load(); }
"""),
    "R1 bare store": ("R1", """
void f(std::atomic<int>& a) { a.store(42); }
"""),
    "R1 order only in comment": ("R1", """
void f(std::atomic<int>& a) {
  a.store(42 /* std::memory_order_release */);
}
"""),
    "R2 unjustified relaxed store": ("R2", """
void f(std::atomic<int>& a) {
  a.store(1, std::memory_order_relaxed);
}
"""),
    "R2 unjustified relaxed exchange": ("R2", """
void f(std::atomic<int>& a) {
  int old = a.exchange(1, std::memory_order_relaxed);
}
"""),
    "R3 shard before graph": ("R3", """
void ReadyList::wrong() {
  ShardGuard guard(shards_[shard], split_);
  std::lock_guard lock(graph_mu_);
}
"""),
    "R3 graph under edge spinlock": ("R3", """
void ReadyList::wrong2(Node* n) {
  edge_lock_acquire(n);
  std::lock_guard lock(graph_mu_);
  edge_lock_release(n);
}
"""),
}


def self_test() -> int:
    failures = 0
    for name, snippet in GOOD_SNIPPETS.items():
        got = lint_text("<good>", snippet, lock_order=True)
        if got:
            failures += 1
            print(f"self-test FAIL (good snippet flagged): {name}")
            for v in got:
                print(f"  {v}")
    for name, (rule, snippet) in BAD_SNIPPETS.items():
        got = lint_text("<bad>", snippet, lock_order=True)
        if not any(v.rule == rule for v in got):
            failures += 1
            print(f"self-test FAIL (violation not caught): {name} "
                  f"(wanted {rule}, got {[v.rule for v in got]})")
    if failures == 0:
        total = len(GOOD_SNIPPETS) + len(BAD_SNIPPETS)
        print(f"self-test OK ({total} snippets: every seeded violation "
              "caught, no false positives)")
        return 0
    return 1


# ---------------------------------------------------------------------------


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: the declared scope)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded good/bad snippets and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if args.files:
        paths = [pathlib.Path(f) for f in args.files]
    else:
        paths = sorted(p for g in SCOPE_GLOBS for p in REPO.glob(g))
    if not paths:
        print("check_atomics: no files in scope", file=sys.stderr)
        return 2

    violations: list[Violation] = []
    for p in paths:
        violations += lint_file(p)
    for v in violations:
        print(v)
    if violations:
        print(f"check_atomics: {len(violations)} violation(s) in "
              f"{len(paths)} file(s)", file=sys.stderr)
        return 1
    print(f"check_atomics: {len(paths)} files clean "
          f"(R1 explicit-order, R2 justified-relaxed, R3 lock-order)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
