#!/usr/bin/env python3
"""Scaling-smoke gate: fail when the multi-worker median is not faster.

Reads a schema-v1 BENCH_*.json (see bench/common.hpp) and asserts that one
series' median at `--fast` workers is below its median at `--slow` workers
(optionally scaled by --max-ratio). Used by CI to guard against the fib
scaling curve flattening again (the steal/idle path regressing to the point
where extra workers stop paying for themselves).

A second mode gates one series against another at the *same* worker count:
with --baseline-series the check becomes

    median(--series @ --fast) / median(--baseline-series @ --fast)
        <= --max-ratio

(<=, not <: a tie passes — "must not lose", not "must win"). CI uses this
for the ready-list lock ablation: the XK_RL_LOCK=split series must not lose
to the =global baseline.

A third mode gates across *files*: --baseline-file reads the baseline
series from a second schema-v1 report instead of the same one. Combined
with the default --baseline-series (the series itself), this compares the
same series between two builds — CI's trace-off overhead gate runs
micro_spawn from an instrumented build against an XK_OBS=OFF build and
requires the ratio to stay under 1.05.

A fourth mode gates an *absolute* value: --max-seconds fails when the
gated metric at --fast workers exceeds the bound, with no baseline at
all. CI uses this with --metric p95_s for the service-mode tail-latency
smoke, where a ratio against the 1-worker series would be meaningless on
a noisy single-core runner but "p95 under a generous absolute ceiling"
still catches a dispatcher that stops overlapping submission with
execution.

--metric selects which schema-v1 field every mode reads (default
median_s; p95_s and p99_s are the tail-latency fields micro_service
emits per-job samples for).

Exit codes: 0 ok, 1 scaling regression, 2 malformed/missing input.

Examples:
  scripts/check_scaling.py BENCH_fig1_fib.json --series XKaapi \
      --slow 1 --fast 8 --max-ratio 1.0
  scripts/check_scaling.py BENCH_micro_steal.json \
      --series dataflow-grid-rl-split \
      --baseline-series dataflow-grid-rl-global --fast 8 --max-ratio 1.05
  scripts/check_scaling.py BENCH_spawn_obs.json --series "BM_spawn/8" \
      --baseline-file BENCH_spawn_noobs.json --fast 8 --max-ratio 1.05
  scripts/check_scaling.py BENCH_micro_service.json --series open-loop \
      --metric p95_s --fast 2 --max-seconds 0.5
"""

import argparse
import json
import sys


def series_values(doc, series, metric):
    values = {}
    for r in doc.get("results", []):
        if r.get("name") == series:
            if metric not in r:
                print(f"error: series '{series}' @{r.get('nworkers')}w "
                      f"lacks metric '{metric}'", file=sys.stderr)
                raise SystemExit(2)
            values[int(r["nworkers"])] = float(r[metric])
    return values


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_file", help="schema-v1 BENCH_*.json to check")
    ap.add_argument("--series", default="XKaapi", help="series name")
    ap.add_argument("--baseline-series", default=None,
                    help="compare --series against this series at --fast "
                         "workers instead of scaling --series across worker "
                         "counts (ablation mode; passes on a tie)")
    ap.add_argument("--baseline-file", default=None,
                    help="read the baseline series from this schema-v1 file "
                         "instead of json_file (cross-build mode; implies "
                         "ablation mode with --baseline-series defaulting "
                         "to --series)")
    ap.add_argument("--slow", type=int, default=1,
                    help="baseline worker count (default 1; ignored in "
                         "ablation mode)")
    ap.add_argument("--fast", type=int, default=8,
                    help="scaled worker count (default 8)")
    ap.add_argument("--metric", default="median_s",
                    help="schema-v1 result field every mode gates on "
                         "(default median_s; e.g. p95_s, p99_s, mean_s)")
    ap.add_argument("--max-seconds", type=float, default=None,
                    help="absolute mode: fail when --metric of --series at "
                         "--fast workers exceeds this many seconds")
    ap.add_argument("--max-ratio", type=float, default=1.0,
                    help="scaling mode: fail when median(fast)/median(slow) "
                         ">= this (default 1.0: fast must be strictly "
                         "faster). Ablation mode: fail when "
                         "median(series)/median(baseline) > this")
    args = ap.parse_args()

    try:
        with open(args.json_file) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.json_file}: {exc}", file=sys.stderr)
        return 2
    if doc.get("schema_version") != 1:
        print("error: unexpected schema_version", file=sys.stderr)
        return 2

    medians = series_values(doc, args.series, args.metric)

    if args.max_seconds is not None:
        if args.fast not in medians:
            print(f"error: series '{args.series}' lacks worker count "
                  f"{args.fast} (have {sorted(medians)})", file=sys.stderr)
            return 2
        value = medians[args.fast]
        ok = value <= args.max_seconds
        verdict = "ok" if ok else "REGRESSION"
        print(f"{args.series} @{args.fast}w: {args.metric}="
              f"{value * 1e3:.3f}ms (limit {args.max_seconds * 1e3:.3f}ms) "
              f"-> {verdict}")
        if not ok:
            print(f"error: {args.metric} of '{args.series}' at {args.fast} "
                  f"workers exceeds the {args.max_seconds}s ceiling",
                  file=sys.stderr)
            return 1
        return 0

    if args.baseline_series is not None or args.baseline_file is not None:
        base_doc = doc
        if args.baseline_file is not None:
            try:
                with open(args.baseline_file) as fh:
                    base_doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: cannot read {args.baseline_file}: {exc}",
                      file=sys.stderr)
                return 2
            if base_doc.get("schema_version") != 1:
                print("error: unexpected schema_version in baseline file",
                      file=sys.stderr)
                return 2
        base_name = args.baseline_series or args.series
        base_label = base_name if base_doc is doc else \
            f"{base_name} ({args.baseline_file})"
        base = series_values(base_doc, base_name, args.metric)
        if args.fast not in medians or args.fast not in base:
            print(f"error: need worker count {args.fast} in both "
                  f"'{args.series}' (have {sorted(medians)}) and "
                  f"'{base_label}' (have {sorted(base)})",
                  file=sys.stderr)
            return 2
        base_s, new_s = base[args.fast], medians[args.fast]
        ratio = new_s / base_s if base_s > 0 else float("inf")
        ok = ratio <= args.max_ratio
        verdict = "ok" if ok else "REGRESSION"
        print(f"{args.series} vs {base_label} @{args.fast}w "
              f"[{args.metric}]: "
              f"{new_s * 1e3:.3f}ms vs {base_s * 1e3:.3f}ms "
              f"ratio={ratio:.3f} (limit {args.max_ratio}) -> {verdict}")
        if not ok:
            print(f"error: '{args.series}' must not lose to "
                  f"'{base_label}' by more than "
                  f"{args.max_ratio}x at {args.fast} workers",
                  file=sys.stderr)
            return 1
        return 0

    missing = [n for n in (args.slow, args.fast) if n not in medians]
    if missing:
        print(f"error: series '{args.series}' lacks worker counts {missing} "
              f"(have {sorted(medians)})", file=sys.stderr)
        return 2

    slow_s, fast_s = medians[args.slow], medians[args.fast]
    ratio = fast_s / slow_s if slow_s > 0 else float("inf")
    verdict = "ok" if ratio < args.max_ratio else "REGRESSION"
    print(f"{args.series}: {args.metric}@{args.slow}w={slow_s * 1e3:.3f}ms "
          f"{args.metric}@{args.fast}w={fast_s * 1e3:.3f}ms ratio={ratio:.3f} "
          f"(limit {args.max_ratio}) -> {verdict}")
    if ratio >= args.max_ratio:
        print(f"error: {args.fast}-worker {args.metric} must stay below "
              f"{args.max_ratio} x the {args.slow}-worker median — the "
              "scaling curve re-flattened", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
